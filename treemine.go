// Package treemine is the public API of this library: a Go implementation
// of the cousin-pair tree-mining system of Shasha, Wang & Zhang,
// "Unordered Tree Mining with Applications to Phylogeny" (ICDE 2004).
//
// The library mines rooted unordered labeled trees — phylogenies in
// particular — for cousin pairs: pairs of labeled nodes sharing a parent
// (distance 0), an aunt–niece relation (0.5), a grandparent (1), and so
// on. On top of mining it provides the paper's phylogenetic applications:
// frequent-pattern discovery across multiple trees, a similarity score
// for ranking consensus trees, cousin-based tree distances that work for
// trees over different taxa, kernel-tree selection from groups of
// phylogenies, and the free-tree (unrooted) extension.
//
// # Quick start
//
//	t1, _ := treemine.ParseNewick("((a,b),(c,d));")
//	items := treemine.Mine(t1, treemine.DefaultOptions())
//	for _, it := range items.Items() {
//	    fmt.Println(it) // (a, b, 0, 1) …
//	}
//
// The implementation packages live under internal/; this package
// re-exports the supported surface. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction of every table and
// figure in the paper.
package treemine

import (
	"context"
	"io"

	"treemine/internal/consensus"
	"treemine/internal/core"
	"treemine/internal/kernel"
	"treemine/internal/newick"
	"treemine/internal/tree"
)

// Core tree types.
type (
	// Tree is an immutable rooted unordered labeled tree.
	Tree = tree.Tree
	// NodeID identifies a node within one Tree.
	NodeID = tree.NodeID
	// Builder incrementally constructs a Tree.
	Builder = tree.Builder
)

// Mining types.
type (
	// Dist is a cousin distance in half units: Dist(1) is 0.5.
	Dist = core.Dist
	// Key is a canonical (labelA ≤ labelB, distance) item key.
	Key = core.Key
	// Item is one cousin pair item (labelA, labelB, dist, occur).
	Item = core.Item
	// ItemSet is the multiset of cousin pair items of a tree.
	ItemSet = core.ItemSet
	// Options configure single-tree mining (maxdist, minoccur).
	Options = core.Options
	// ForestOptions configure multi-tree mining (adds minsup).
	ForestOptions = core.ForestOptions
	// FrequentPair is a cousin pair with its cross-tree support.
	FrequentPair = core.FrequentPair
	// Variant selects a cousin-based tree-distance measure.
	Variant = core.Variant
	// Pair is one concrete cousin node pair occurrence.
	Pair = core.Pair
)

// ConsensusMethod identifies one of the five classical consensus
// methods.
type ConsensusMethod = consensus.Method

// KernelConfig tunes kernel-tree search; see DefaultKernelConfig.
type KernelConfig = kernel.Config

// KernelResult is the outcome of a kernel-tree search.
type KernelResult = kernel.Result

// Wildcard and distance constructors.
const (
	// DistWild is the paper's "*" distance wildcard.
	DistWild = core.DistWild
)

// Tree-distance variants (§5.3 of the paper).
const (
	VariantLabel     = core.VariantLabel
	VariantDist      = core.VariantDist
	VariantOccur     = core.VariantOccur
	VariantDistOccur = core.VariantDistOccur
)

// Consensus methods (§5.2 of the paper).
const (
	Strict     = consensus.MethodStrict
	SemiStrict = consensus.MethodSemiStrict
	Majority   = consensus.MethodMajority
	Nelson     = consensus.MethodNelson
	Adams      = consensus.MethodAdams
)

// NewBuilder returns an empty tree builder.
func NewBuilder() *Builder { return tree.NewBuilder() }

// Isomorphic reports whether two trees are equal as rooted unordered
// labeled trees.
func Isomorphic(a, b *Tree) bool { return tree.Isomorphic(a, b) }

// D returns the Dist for a number of half units: D(0)=0, D(1)=0.5,
// D(3)=1.5.
func D(halves int) Dist { return core.D(halves) }

// ParseDist parses "0", "0.5", "1.5", or "*".
func ParseDist(s string) (Dist, error) { return core.ParseDist(s) }

// ParseNewick parses one tree in Newick format.
func ParseNewick(s string) (*Tree, error) { return newick.Parse(s) }

// ParseNewickAll parses a stream of semicolon-terminated Newick trees.
func ParseNewickAll(r io.Reader) ([]*Tree, error) { return newick.ParseAll(r) }

// WriteNewick serializes a tree in Newick format.
func WriteNewick(t *Tree) string { return newick.Write(t) }

// DefaultOptions returns the paper's Table 2 mining defaults
// (maxdist 1.5, minoccur 1).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultForestOptions returns the Table 2 defaults with minsup 2.
func DefaultForestOptions() ForestOptions { return core.DefaultForestOptions() }

// Mine is Single_Tree_Mining: all cousin pair items of t within the
// options' distance and occurrence bounds.
func Mine(t *Tree, opts Options) ItemSet { return core.Mine(t, opts) }

// MinePairs returns the concrete cousin node pairs of t.
func MinePairs(t *Tree, opts Options) []Pair { return core.MinePairs(t, opts) }

// MineForest is Multiple_Tree_Mining: the cousin pairs frequent across
// the trees, sorted by decreasing support.
func MineForest(trees []*Tree, opts ForestOptions) []FrequentPair {
	return core.MineForest(trees, opts)
}

// Support counts the trees containing the label pair at distance d
// (DistWild for any distance).
func Support(trees []*Tree, l1, l2 string, d Dist, opts Options) int {
	return core.Support(trees, l1, l2, d, opts)
}

// Sim is the paper's consensus-quality similarity score σ(C, T).
func Sim(c, t *Tree, opts Options) float64 { return core.Sim(c, t, opts) }

// AvgSim is the average similarity score of a consensus tree against the
// source trees it summarizes.
func AvgSim(c *Tree, set []*Tree, opts Options) float64 {
	return core.AvgSim(c, set, opts)
}

// TDist is the cousin-based tree distance of Eq. 6 under the variant.
func TDist(t1, t2 *Tree, v Variant, opts Options) float64 {
	return core.TDist(t1, t2, v, opts)
}

// Consensus computes the consensus of a set of phylogenies over the same
// taxa with the given method.
func Consensus(m ConsensusMethod, trees []*Tree) (*Tree, error) {
	return consensus.Compute(m, trees)
}

// ConsensusMethods lists the five supported methods.
func ConsensusMethods() []ConsensusMethod { return consensus.Methods() }

// DefaultKernelConfig mirrors the paper's kernel experiment settings.
func DefaultKernelConfig() KernelConfig { return kernel.DefaultConfig() }

// KernelTrees selects one tree per group minimizing the average pairwise
// cousin-based distance among the selections (§5.3).
func KernelTrees(groups [][]*Tree, cfg KernelConfig) (*KernelResult, error) {
	return kernel.Find(groups, cfg)
}

// KernelTreesCtx is KernelTrees under a context: cancellation is
// observed between profiling units, matrix rows, search branches, and
// descent restarts.
func KernelTreesCtx(ctx context.Context, groups [][]*Tree, cfg KernelConfig) (*KernelResult, error) {
	return kernel.FindCtx(ctx, groups, cfg)
}
