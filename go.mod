module treemine

go 1.22
