package treemine_test

import (
	"strings"
	"testing"

	"treemine"
)

func mk(t *testing.T, s string) *treemine.Tree {
	t.Helper()
	tr, err := treemine.ParseNewick(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBaselineDistancesFacade(t *testing.T) {
	t1 := mk(t, "((a,b),(c,d));")
	t2 := mk(t, "((a,c),(b,d));")
	if d, err := treemine.RF(t1, t2); err != nil || d != 4 {
		t.Errorf("RF = %d, %v", d, err)
	}
	if d, err := treemine.RFNormalized(t1, t2); err != nil || d != 1 {
		t.Errorf("RFNormalized = %v, %v", d, err)
	}
	if d, err := treemine.TripletDistance(t1, t2); err != nil || d <= 0 {
		t.Errorf("TripletDistance = %v, %v", d, err)
	}
	if d := treemine.UpDownDistance(t1, t2); d <= 0 {
		t.Errorf("UpDownDistance = %v", d)
	}
	if d := treemine.UpDownDistance(t1, t1.Clone()); d != 0 {
		t.Errorf("UpDownDistance identity = %v", d)
	}
	if d := treemine.EditDistance(t1, t1.Clone()); d != 0 {
		t.Errorf("EditDistance identity = %d", d)
	}
	if d := treemine.EditDistance(t1, t2); d <= 0 {
		t.Errorf("EditDistance = %d", d)
	}
	if n := treemine.EditDistanceNormalized(t1, t2); n <= 0 || n > 1 {
		t.Errorf("EditDistanceNormalized = %v", n)
	}
}

func TestSupertreeFacade(t *testing.T) {
	s1 := mk(t, "((a,b),(c,d));")
	s2 := mk(t, "((c,d),e);")
	st, err := treemine.Supertree([]*treemine.Tree{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.LeafLabels()); got != 5 {
		t.Fatalf("supertree taxa = %d", got)
	}
}

func TestRestrictAndRelabelFacade(t *testing.T) {
	tr := mk(t, "((a,b),((c,d),e));")
	r := treemine.Restrict(tr, []string{"a", "c", "d"})
	if r == nil || len(r.LeafLabels()) != 3 {
		t.Fatalf("Restrict = %v", r)
	}
	up := treemine.Relabel(tr, strings.ToUpper)
	if got := up.LeafLabels()[0]; got != "A" {
		t.Fatalf("Relabel = %v", up.LeafLabels())
	}
	if treemine.Restrict(tr, []string{"zz"}) != nil {
		t.Fatal("empty restriction should be nil")
	}
}

func TestClusteringFacade(t *testing.T) {
	a := mk(t, "((a,b),(c,d));")
	b := mk(t, "((a,c),(b,d));")
	trees := []*treemine.Tree{a, a.Clone(), b, b.Clone()}
	m := treemine.TDistMatrix(trees, treemine.VariantDistOccur, treemine.DefaultOptions())
	assign, medoids, err := treemine.ClusterKMedoids(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(medoids) != 2 {
		t.Fatalf("medoids = %v", medoids)
	}
	if assign[0] != assign[1] || assign[2] != assign[3] || assign[0] == assign[2] {
		t.Fatalf("assignment = %v", assign)
	}
	if _, _, err := treemine.ClusterKMedoids(m, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMineDPFacade(t *testing.T) {
	tr := mk(t, "((a,b),(c,d));")
	opts := treemine.DefaultOptions()
	a := treemine.Mine(tr, opts)
	b := treemine.MineDP(tr, opts)
	if len(a) != len(b) {
		t.Fatalf("MineDP differs: %v vs %v", a.Items(), b.Items())
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("MineDP[%v] = %d, want %d", k, b[k], n)
		}
	}
}

func TestNexusFacade(t *testing.T) {
	in := "#NEXUS\nBEGIN TAXA;\nTAXLABELS a b c;\nEND;\nBEGIN TREES;\nTREE t = ((a,b),c);\nEND;\n"
	taxa, entries, err := treemine.ParseNexus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(taxa) != 3 || len(entries) != 1 || entries[0].Name != "t" {
		t.Fatalf("ParseNexus = %v, %v", taxa, entries)
	}
	var out strings.Builder
	if err := treemine.WriteNexus(&out, entries); err != nil {
		t.Fatal(err)
	}
	_, back, err := treemine.ParseNexus(strings.NewReader(out.String()))
	if err != nil || len(back) != 1 {
		t.Fatalf("round trip: %v, %d entries", err, len(back))
	}
	if !treemine.Isomorphic(entries[0].Tree, back[0].Tree) {
		t.Fatal("NEXUS round trip lost structure")
	}
}
