package triplet

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestResolveBasic(t *testing.T) {
	r := newResolver(parse(t, "((a,b),c);"))
	if got := r.resolve("a", "b", "c"); got != AB {
		t.Fatalf("resolve = %v, want ab|c", got)
	}
	r = newResolver(parse(t, "((a,c),b);"))
	if got := r.resolve("a", "b", "c"); got != AC {
		t.Fatalf("resolve = %v, want ac|b", got)
	}
	r = newResolver(parse(t, "(a,(b,c));"))
	if got := r.resolve("a", "b", "c"); got != BC {
		t.Fatalf("resolve = %v, want bc|a", got)
	}
	r = newResolver(parse(t, "(a,b,c);"))
	if got := r.resolve("a", "b", "c"); got != Unresolved {
		t.Fatalf("resolve = %v, want unresolved", got)
	}
}

func TestResolutionString(t *testing.T) {
	for r, want := range map[Resolution]string{
		Unresolved: "unresolved", AB: "ab|c", AC: "ac|b", BC: "bc|a",
		Resolution(7): "Resolution(7)",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", int(r), r.String())
		}
	}
}

func TestCompareIdentical(t *testing.T) {
	tr := parse(t, "((a,b),((c,d),e));")
	res, err := Compare(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Shared != 5 || res.Total != 10 || res.Different != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Distance() != 0 {
		t.Fatalf("Distance = %v", res.Distance())
	}
}

func TestCompareKnownValue(t *testing.T) {
	// ((a,b),c) vs ((a,c),b): the single triple flips.
	d, err := Distance(parse(t, "((a,b),c);"), parse(t, "((a,c),b);"))
	if err != nil || d != 1 {
		t.Fatalf("Distance = %v, %v; want 1", d, err)
	}
	// Resolved vs star: also different.
	d, err = Distance(parse(t, "((a,b),c);"), parse(t, "(a,b,c);"))
	if err != nil || d != 1 {
		t.Fatalf("Distance vs star = %v, %v; want 1", d, err)
	}
}

func TestComparePartialOverlap(t *testing.T) {
	// Shared taxa {a,b,c}; x and y are private to one tree each. The
	// measure works where Robinson–Foulds is undefined.
	t1 := parse(t, "(((a,b),c),x);")
	t2 := parse(t, "(((a,b),y),c);")
	res, err := Compare(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shared != 3 || res.Total != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Different != 0 {
		t.Fatalf("both trees resolve ab|c: %+v", res)
	}
}

func TestCompareTooFewShared(t *testing.T) {
	t1 := parse(t, "((a,b),z);")
	t2 := parse(t, "((a,b),w);")
	if _, err := Compare(t1, t2); !errors.Is(err, ErrTooFewTaxa) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompareDuplicateLabels(t *testing.T) {
	t1 := parse(t, "((a,a),b);")
	t2 := parse(t, "((a,b),c);")
	if _, err := Compare(t1, t2); err == nil {
		t.Fatal("duplicate labels accepted")
	}
}

func TestDistanceSymmetricAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	taxa := treegen.Alphabet(9)
	for trial := 0; trial < 15; trial++ {
		t1 := treegen.Yule(rng, taxa)
		t2 := treegen.Yule(rng, taxa)
		d12, err1 := Distance(t1, t2)
		d21, err2 := Distance(t2, t1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d12 != d21 {
			t.Fatalf("not symmetric: %v vs %v", d12, d21)
		}
		if d12 < 0 || d12 > 1 {
			t.Fatalf("out of range: %v", d12)
		}
	}
}

func TestCompareCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	taxa := treegen.Alphabet(8)
	t1 := treegen.Yule(rng, taxa)
	t2 := treegen.Yule(rng, taxa)
	res, err := Compare(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Same+res.Different != res.Total {
		t.Fatalf("counts inconsistent: %+v", res)
	}
	if res.Total != 8*7*6/6 {
		t.Fatalf("Total = %d, want C(8,3)=56", res.Total)
	}
}
