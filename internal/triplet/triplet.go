// Package triplet implements the rooted triplet distance, the classic
// COMPONENT-era measure for comparing rooted phylogenies (Critchlow,
// Pearl & Qian 1996; one of the [31] distances the paper's §5.3 and §7
// position the cousin-based measure against). Every 3-subset of taxa is
// resolved by a rooted tree as one of ab|c, ac|b, bc|a, or left
// unresolved; the distance counts triples the two trees resolve
// differently. Unlike Robinson–Foulds it degrades gracefully to the
// taxa the trees share, so it can serve as a secondary baseline in the
// unequal-taxa setting the kernel-tree experiment uses.
package triplet

import (
	"errors"
	"fmt"
	"sort"

	"treemine/internal/lca"
	"treemine/internal/tree"
)

// ErrTooFewTaxa is returned when the trees share fewer than three taxa.
var ErrTooFewTaxa = errors.New("triplet: trees share fewer than 3 taxa")

// Resolution is how a rooted tree arranges a taxon triple {a, b, c}
// (with a < b < c lexicographically).
type Resolution int

const (
	// Unresolved means the three taxa hang off a single node.
	Unresolved Resolution = iota
	// AB means a and b are siblings relative to c: ab|c.
	AB
	// AC means ac|b.
	AC
	// BC means bc|a.
	BC
)

// String names the resolution.
func (r Resolution) String() string {
	switch r {
	case Unresolved:
		return "unresolved"
	case AB:
		return "ab|c"
	case AC:
		return "ac|b"
	case BC:
		return "bc|a"
	default:
		return fmt.Sprintf("Resolution(%d)", int(r))
	}
}

// Result breaks down a triplet comparison.
type Result struct {
	Shared    int // taxa common to both trees
	Total     int // triples examined: C(Shared, 3)
	Same      int // triples resolved identically
	Different int // triples resolved differently
}

// Distance returns Different/Total in [0, 1]; 0 when no triples exist.
func (r Result) Distance() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Different) / float64(r.Total)
}

// resolver answers triple-resolution queries for one tree.
type resolver struct {
	t    *tree.Tree
	idx  *lca.Index
	leaf map[string]tree.NodeID
}

func newResolver(t *tree.Tree) *resolver {
	r := &resolver{t: t, leaf: make(map[string]tree.NodeID)}
	for _, n := range t.Leaves() {
		if l, ok := t.Label(n); ok {
			r.leaf[l] = n
		}
	}
	r.idx = lca.New(t)
	return r
}

// resolve returns the resolution of the triple (a < b < c by name).
func (r *resolver) resolve(a, b, c string) Resolution {
	na, nb, nc := r.leaf[a], r.leaf[b], r.leaf[c]
	dab := r.t.Depth(r.idx.LCA(na, nb))
	dac := r.t.Depth(r.idx.LCA(na, nc))
	dbc := r.t.Depth(r.idx.LCA(nb, nc))
	switch {
	case dab > dac && dab > dbc:
		return AB
	case dac > dab && dac > dbc:
		return AC
	case dbc > dab && dbc > dac:
		return BC
	default:
		return Unresolved
	}
}

// Compare evaluates every triple of taxa shared by t1 and t2. Duplicate
// leaf labels within a tree make triples ill-defined and produce an
// error. Θ(k³) in the shared taxon count k — exact and simple; the
// phylogeny workloads here keep k modest.
func Compare(t1, t2 *tree.Tree) (Result, error) {
	r1 := newResolver(t1)
	r2 := newResolver(t2)
	if len(r1.leaf) != len(t1.Leaves()) {
		return Result{}, fmt.Errorf("triplet: duplicate or missing leaf labels in first tree")
	}
	if len(r2.leaf) != len(t2.Leaves()) {
		return Result{}, fmt.Errorf("triplet: duplicate or missing leaf labels in second tree")
	}
	var shared []string
	for l := range r1.leaf {
		if _, ok := r2.leaf[l]; ok {
			shared = append(shared, l)
		}
	}
	sort.Strings(shared)
	res := Result{Shared: len(shared)}
	if len(shared) < 3 {
		return res, ErrTooFewTaxa
	}
	for i := 0; i < len(shared); i++ {
		for j := i + 1; j < len(shared); j++ {
			for k := j + 1; k < len(shared); k++ {
				res.Total++
				q1 := r1.resolve(shared[i], shared[j], shared[k])
				q2 := r2.resolve(shared[i], shared[j], shared[k])
				if q1 == q2 {
					res.Same++
				} else {
					res.Different++
				}
			}
		}
	}
	return res, nil
}

// Distance is shorthand for Compare(...).Distance().
func Distance(t1, t2 *tree.Tree) (float64, error) {
	r, err := Compare(t1, t2)
	if err != nil {
		return 0, err
	}
	return r.Distance(), nil
}
