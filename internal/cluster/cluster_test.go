package cluster

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(4)
	m.Set(0, 3, 1.5)
	m.Set(3, 1, 2.5) // symmetric set
	if m.At(3, 0) != 1.5 || m.At(0, 3) != 1.5 {
		t.Fatalf("At(0,3) = %v", m.At(0, 3))
	}
	if m.At(1, 3) != 2.5 {
		t.Fatalf("At(1,3) = %v", m.At(1, 3))
	}
	if m.At(2, 2) != 0 {
		t.Fatalf("diagonal = %v", m.At(2, 2))
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set on diagonal should panic")
		}
	}()
	m.Set(1, 1, 1)
}

// twoBlobs builds a matrix with two clear groups: {0,1,2} and {3,4,5}.
func twoBlobs() *Matrix {
	m := NewMatrix(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if (i < 3) == (j < 3) {
				m.Set(i, j, 0.1)
			} else {
				m.Set(i, j, 1.0)
			}
		}
	}
	return m
}

func TestKMedoidsTwoBlobs(t *testing.T) {
	res, err := KMedoids(twoBlobs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != res.Assignment[1] || res.Assignment[1] != res.Assignment[2] {
		t.Fatalf("first blob split: %v", res.Assignment)
	}
	if res.Assignment[3] != res.Assignment[4] || res.Assignment[4] != res.Assignment[5] {
		t.Fatalf("second blob split: %v", res.Assignment)
	}
	if res.Assignment[0] == res.Assignment[3] {
		t.Fatalf("blobs merged: %v", res.Assignment)
	}
	// Cost: each non-medoid point sits 0.1 from its blob's medoid.
	if res.Cost != 0.4 {
		t.Fatalf("Cost = %v, want 0.4", res.Cost)
	}
}

func TestKMedoidsErrors(t *testing.T) {
	m := twoBlobs()
	if _, err := KMedoids(m, 0, 1); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := KMedoids(m, 7, 1); !errors.Is(err, ErrBadK) {
		t.Errorf("k=7 err = %v", err)
	}
}

func TestKMedoidsKEqualsN(t *testing.T) {
	res, err := KMedoids(twoBlobs(), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("k=n cost = %v", res.Cost)
	}
}

func TestAgglomerateTwoBlobs(t *testing.T) {
	for _, l := range []Linkage{Single, Complete, Average} {
		d := Agglomerate(twoBlobs(), l)
		if len(d.Merges) != 5 {
			t.Fatalf("%s: merges = %d", l, len(d.Merges))
		}
		got, err := d.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 0, 0, 1, 1, 1}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: Cut(2) = %v", l, got)
			}
		}
		// The last merge joins the two blobs at distance 1 (single),
		// 1 (complete — all cross distances are 1), 1 (average).
		if d.Merges[4].Dist != 1 {
			t.Fatalf("%s: final merge dist = %v", l, d.Merges[4].Dist)
		}
		// Earlier merges happen within blobs at 0.1.
		if d.Merges[0].Dist != 0.1 {
			t.Fatalf("%s: first merge dist = %v", l, d.Merges[0].Dist)
		}
	}
}

func TestCutBounds(t *testing.T) {
	d := Agglomerate(twoBlobs(), Average)
	if _, err := d.Cut(0); !errors.Is(err, ErrBadK) {
		t.Errorf("Cut(0) err = %v", err)
	}
	if _, err := d.Cut(7); !errors.Is(err, ErrBadK) {
		t.Errorf("Cut(7) err = %v", err)
	}
	one, err := d.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range one {
		if l != 0 {
			t.Fatalf("Cut(1) = %v", one)
		}
	}
	all, err := d.Cut(6)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range all {
		seen[l] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Cut(n) = %v", all)
	}
}

func TestLinkageString(t *testing.T) {
	if Single.String() != "single" || Complete.String() != "complete" ||
		Average.String() != "average" || Linkage(9).String() != "Linkage(9)" {
		t.Fatal("Linkage names wrong")
	}
}

func TestTDistMatrixClustersTopologies(t *testing.T) {
	// Six trees: three clones of topology A, three of topology B over
	// the same taxa. The tdist matrix must separate them perfectly.
	rng := rand.New(rand.NewSource(9))
	taxa := treegen.Alphabet(12)
	a := treegen.Yule(rng, taxa)
	b := treegen.Yule(rng, taxa)
	trees := []*tree.Tree{a, a.Clone(), a.Clone(), b, b.Clone(), b.Clone()}
	m := TDistMatrix(trees, core.VariantDistOccur, core.DefaultOptions())
	if m.At(0, 1) != 0 || m.At(3, 5) != 0 {
		t.Fatalf("clones not at distance 0: %v %v", m.At(0, 1), m.At(3, 5))
	}
	if m.At(0, 3) == 0 {
		t.Fatal("distinct topologies at distance 0")
	}
	res, err := KMedoids(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Fatalf("clone clustering cost = %v, want 0", res.Cost)
	}
	if res.Assignment[0] == res.Assignment[3] {
		t.Fatalf("assignment merged topologies: %v", res.Assignment)
	}
	d := Agglomerate(m, Average)
	cut, err := d.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if cut[0] != cut[1] || cut[0] != cut[2] || cut[3] != cut[4] || cut[3] != cut[5] || cut[0] == cut[3] {
		t.Fatalf("hierarchical cut = %v", cut)
	}
}

func TestAgglomerateEmpty(t *testing.T) {
	d := Agglomerate(NewMatrix(0), Single)
	if len(d.Merges) != 0 {
		t.Fatal("empty matrix produced merges")
	}
}

// kMedoidsRef is the pre-engine descent, verbatim: every swap candidate
// evaluated by a full O(n·k) assignCost recomputation. The incremental
// kMedoidsOnce must reach the same medoids from the same seed.
func kMedoidsRef(m *Matrix, k int, seed int64) *KMedoidsResult {
	rng := rand.New(rand.NewSource(seed))
	var best *KMedoidsResult
	for restart := 0; restart < 4; restart++ {
		n := m.Len()
		medoids := rng.Perm(n)[:k]
		isMedoid := make([]bool, n)
		for _, md := range medoids {
			isMedoid[md] = true
		}
		cost := assignCost(m, medoids)
		for improved := true; improved; {
			improved = false
			for mi := 0; mi < k && !improved; mi++ {
				for cand := 0; cand < n; cand++ {
					if isMedoid[cand] {
						continue
					}
					old := medoids[mi]
					medoids[mi] = cand
					if c := assignCost(m, medoids); c < cost-1e-15 {
						cost = c
						isMedoid[old] = false
						isMedoid[cand] = true
						improved = true
						break
					}
					medoids[mi] = old
				}
			}
		}
		sort.Ints(medoids)
		res := &KMedoidsResult{Medoids: medoids, Assignment: make([]int, n), Cost: cost}
		for i := 0; i < n; i++ {
			bestD, bestM := math.Inf(1), 0
			for mi, md := range medoids {
				if d := m.At(i, md); d < bestD {
					bestD, bestM = d, mi
				}
			}
			res.Assignment[i] = bestM
		}
		if best == nil || res.Cost < best.Cost {
			best = res
		}
	}
	return best
}

// randMatrix builds a random symmetric distance matrix in [0, 1).
func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	return m
}

// TestKMedoidsIncrementalDifferential is the satellite pin: on random
// matrices, the incremental (nearest/second-nearest, PAM-style) swap
// evaluation reaches the same medoid set, the same assignment, and the
// same final cost (±1e-12) as the full-recompute descent from the same
// seed. Seeds are fixed so the comparison is deterministic.
func TestKMedoidsIncrementalDifferential(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(28) + 2
		k := rng.Intn(n) + 1
		m := randMatrix(rng, n)
		got, err := KMedoids(m, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := kMedoidsRef(m, k, seed)
		if !reflect.DeepEqual(got.Medoids, want.Medoids) {
			t.Fatalf("seed=%d n=%d k=%d: medoids %v != %v", seed, n, k, got.Medoids, want.Medoids)
		}
		if !reflect.DeepEqual(got.Assignment, want.Assignment) {
			t.Fatalf("seed=%d n=%d k=%d: assignment %v != %v", seed, n, k, got.Assignment, want.Assignment)
		}
		if diff := math.Abs(got.Cost - want.Cost); diff > 1e-12 {
			t.Fatalf("seed=%d n=%d k=%d: cost %v != %v (|Δ| = %g)", seed, n, k, got.Cost, want.Cost, diff)
		}
	}
}

// TestTDistMatrixMatchesPairwiseMining pins the profile-engine delegate
// against the pre-engine fill (string-keyed Mine + per-pair TDistItems),
// across the packable boundary and all variants — the regression gate on
// the "TDistMatrix pays the string penalty even for packable options"
// bug this matrix used to have.
func TestTDistMatrixMatchesPairwiseMining(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	taxa := treegen.Alphabet(10)
	trees := make([]*tree.Tree, 9)
	for i := range trees {
		trees[i] = treegen.Yule(rng, taxa[:rng.Intn(6)+4])
	}
	variants := []core.Variant{core.VariantLabel, core.VariantDist, core.VariantOccur, core.VariantDistOccur}
	for _, maxD := range []core.Dist{core.D(3), core.MaxPackedDist + 4} {
		opts := core.Options{MaxDist: maxD, MinOccur: 1}
		items := make([]core.ItemSet, len(trees))
		for i, tr := range trees {
			items[i] = core.Mine(tr, opts)
		}
		for _, v := range variants {
			m := TDistMatrix(trees, v, opts)
			for i := 0; i < len(trees); i++ {
				for j := i + 1; j < len(trees); j++ {
					if got, want := m.At(i, j), core.TDistItems(items[i], items[j], v); got != want {
						t.Fatalf("maxD=%v %v: At(%d,%d) = %v, want %v", maxD, v, i, j, got, want)
					}
				}
			}
		}
	}
}
