// Package cluster groups phylogenies by structural similarity — the
// paper's §7 future-work item (ii), "finding different types of patterns
// in the trees and using them in phylogenetic data clustering", and the
// post-processing Stockham, Wang & Warnow (reference [37]) apply before
// building per-cluster consensus trees. Distances come from the
// cousin-based tree distance of §5.3, which works even when the trees'
// taxa differ; two standard clusterers are provided: k-medoids (PAM-style
// swap descent) and agglomerative hierarchical clustering with
// single/complete/average linkage.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// Matrix is a symmetric pairwise-distance matrix with a zero diagonal.
type Matrix struct {
	n int
	d []float64 // row-major upper triangle, condensed
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, d: make([]float64, n*(n-1)/2)}
}

// Len returns the number of points.
func (m *Matrix) Len() int { return m.n }

func (m *Matrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of (i, j), i < j, in the condensed upper triangle.
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// Set stores the distance between points i and j (i ≠ j).
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		panic("cluster: Set on the diagonal")
	}
	m.d[m.idx(i, j)] = v
}

// At returns the distance between points i and j; the diagonal is 0.
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.d[m.idx(i, j)]
}

// TDistMatrix mines every tree once and fills the pairwise cousin-based
// distance matrix under the given variant. It delegates to the profile
// engine in internal/core: one shared symbol table, frozen posting-list
// profiles, and a parallel merge-join fill — so packable options (the
// defaults) never pay the string-keyed path, and large collections use
// every core. The values are identical to mining each pair directly.
func TDistMatrix(trees []*tree.Tree, v core.Variant, opts core.Options) *Matrix {
	dm := core.TDistMatrixParallel(trees, v, opts, 0)
	// core.DistMatrix shares this package's condensed upper-triangle
	// layout, so the backing slice transfers without copying.
	return &Matrix{n: dm.Len(), d: dm.Condensed()}
}

// TDistMatrixCtx is TDistMatrix under a context: cancellation is
// observed within one tree (profiling) or one matrix row (fill), and a
// panicking worker surfaces as an error instead of crashing.
func TDistMatrixCtx(ctx context.Context, trees []*tree.Tree, v core.Variant, opts core.Options) (*Matrix, error) {
	dm, err := core.TDistMatrixParallelCtx(ctx, trees, v, opts, 0)
	if err != nil {
		return nil, err
	}
	return &Matrix{n: dm.Len(), d: dm.Condensed()}, nil
}

// ErrBadK is returned when the requested cluster count is out of range.
var ErrBadK = errors.New("cluster: k out of range")

// KMedoidsResult describes a k-medoids clustering.
type KMedoidsResult struct {
	Medoids    []int // indices of the k representative points
	Assignment []int // Assignment[i] = index into Medoids for point i
	Cost       float64
}

// KMedoids clusters the points of m into k groups by PAM-style swap
// descent from a deterministic seeded start, returning the best of a few
// restarts. The medoid trees are natural "representatives" of phylogeny
// clusters — the single-cluster case degenerates to the kernel-tree idea
// of §5.3.
func KMedoids(m *Matrix, k int, seed int64) (*KMedoidsResult, error) {
	n := m.Len()
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w (k=%d, n=%d)", ErrBadK, k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	var best *KMedoidsResult
	for restart := 0; restart < 4; restart++ {
		res := kMedoidsOnce(m, k, rng)
		if best == nil || res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

// kMedoidsOnce runs one PAM-style descent from a random start. Swap
// candidates are evaluated incrementally: with each point's distance to
// its nearest and second-nearest current medoid cached, the cost change
// of swapping medoid mi for candidate c is a single O(n) pass —
//
//	Δ = Σ_i min(d(i,c), fallback_i) − nearest_i
//
// where fallback_i is second_i when i's nearest medoid is the one being
// removed, and nearest_i otherwise — instead of the O(n·k) full
// reassignment the pre-engine descent recomputed per candidate. Accepted
// swaps (same first-improvement order as before) refresh the cost and
// the caches from scratch, so float drift never accumulates; the
// equivalence with full recomputation is pinned by the differential test
// in cluster_test.go.
func kMedoidsOnce(m *Matrix, k int, rng *rand.Rand) *KMedoidsResult {
	n := m.Len()
	medoids := rng.Perm(n)[:k]
	isMedoid := make([]bool, n)
	for _, md := range medoids {
		isMedoid[md] = true
	}
	// nearD/secD hold each point's distance to its nearest and
	// second-nearest medoid; near holds the index (into medoids) of the
	// nearest. secD is +Inf when k == 1.
	near := make([]int, n)
	nearD := make([]float64, n)
	secD := make([]float64, n)
	rebuild := func() {
		for i := 0; i < n; i++ {
			bi, bd, sd := 0, math.Inf(1), math.Inf(1)
			for mi, md := range medoids {
				d := m.At(i, md)
				if d < bd {
					bi, bd, sd = mi, d, bd
				} else if d < sd {
					sd = d
				}
			}
			near[i], nearD[i], secD[i] = bi, bd, sd
		}
	}
	rebuild()
	cost := assignCost(m, medoids)
	for improved := true; improved; {
		improved = false
		for mi := 0; mi < k && !improved; mi++ {
			for cand := 0; cand < n; cand++ {
				if isMedoid[cand] {
					continue
				}
				delta := 0.0
				for i := 0; i < n; i++ {
					d := m.At(i, cand)
					fallback := nearD[i]
					if near[i] == mi {
						fallback = secD[i]
					}
					if d < fallback {
						fallback = d
					}
					delta += fallback - nearD[i]
				}
				if delta < -1e-15 {
					isMedoid[medoids[mi]] = false
					isMedoid[cand] = true
					medoids[mi] = cand
					rebuild()
					cost = assignCost(m, medoids)
					improved = true
					break
				}
			}
		}
	}
	sort.Ints(medoids)
	res := &KMedoidsResult{Medoids: medoids, Assignment: make([]int, n), Cost: cost}
	for i := 0; i < n; i++ {
		bestD, bestM := math.Inf(1), 0
		for mi, md := range medoids {
			if d := m.At(i, md); d < bestD {
				bestD, bestM = d, mi
			}
		}
		res.Assignment[i] = bestM
	}
	return res
}

// assignCost is the full O(n·k) clustering cost: each point's distance
// to its nearest medoid, summed. The descent recomputes it only on
// accepted swaps; tests use it as the ground truth the incremental
// deltas must agree with.
func assignCost(m *Matrix, medoids []int) float64 {
	total := 0.0
	for i := 0; i < m.Len(); i++ {
		best := math.Inf(1)
		for _, md := range medoids {
			if d := m.At(i, md); d < best {
				best = d
			}
		}
		total += best
	}
	return total
}

// Linkage selects the inter-cluster distance for agglomerative
// clustering.
type Linkage int

const (
	// Single linkage merges on the minimum pairwise distance.
	Single Linkage = iota
	// Complete linkage merges on the maximum pairwise distance.
	Complete
	// Average linkage (UPGMA) merges on the mean pairwise distance.
	Average
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge is one agglomeration step: clusters A and B (identified by
// scipy-style ids: 0..n-1 are points, n+i is the cluster born at step i)
// joined at the given distance.
type Merge struct {
	A, B int
	Dist float64
}

// Dendrogram is the full merge history of an agglomerative clustering.
type Dendrogram struct {
	n      int
	Merges []Merge
}

// Agglomerate builds the dendrogram of m under the linkage by the
// straightforward O(n³) algorithm (fine at phylogeny-collection sizes).
func Agglomerate(m *Matrix, l Linkage) *Dendrogram {
	n := m.Len()
	d := &Dendrogram{n: n}
	if n == 0 {
		return d
	}
	type cl struct {
		id     int
		points []int
	}
	clusters := make([]cl, n)
	for i := range clusters {
		clusters[i] = cl{id: i, points: []int{i}}
	}
	linkDist := func(a, b cl) float64 {
		switch l {
		case Single:
			best := math.Inf(1)
			for _, x := range a.points {
				for _, y := range b.points {
					if v := m.At(x, y); v < best {
						best = v
					}
				}
			}
			return best
		case Complete:
			worst := math.Inf(-1)
			for _, x := range a.points {
				for _, y := range b.points {
					if v := m.At(x, y); v > worst {
						worst = v
					}
				}
			}
			return worst
		default: // Average
			sum := 0.0
			for _, x := range a.points {
				for _, y := range b.points {
					sum += m.At(x, y)
				}
			}
			return sum / float64(len(a.points)*len(b.points))
		}
	}
	nextID := n
	for len(clusters) > 1 {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if v := linkDist(clusters[i], clusters[j]); v < bd {
					bi, bj, bd = i, j, v
				}
			}
		}
		d.Merges = append(d.Merges, Merge{A: clusters[bi].id, B: clusters[bj].id, Dist: bd})
		merged := cl{id: nextID, points: append(append([]int(nil),
			clusters[bi].points...), clusters[bj].points...)}
		nextID++
		clusters[bj] = clusters[len(clusters)-1]
		clusters = clusters[:len(clusters)-1]
		clusters[bi] = merged
	}
	return d
}

// Cut returns the assignment of points to k clusters by undoing the last
// k−1 merges. Labels are 0..k-1 in order of each cluster's smallest
// point.
func (d *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > d.n {
		return nil, fmt.Errorf("%w (k=%d, n=%d)", ErrBadK, k, d.n)
	}
	parent := make([]int, d.n+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// Apply all but the last k−1 merges.
	for i := 0; i < len(d.Merges)-(k-1); i++ {
		mrg := d.Merges[i]
		id := d.n + i
		parent[find(mrg.A)] = id
		parent[find(mrg.B)] = id
	}
	// Root of each point → label, in order of first appearance by point.
	label := map[int]int{}
	out := make([]int, d.n)
	for i := 0; i < d.n; i++ {
		r := find(i)
		if _, ok := label[r]; !ok {
			label[r] = len(label)
		}
		out[i] = label[r]
	}
	return out, nil
}
