package tree

import (
	"errors"
	"fmt"
)

// ErrEmptyTree is returned by Builder.Build when no root was added.
var ErrEmptyTree = errors.New("tree: empty tree")

// Builder incrementally constructs a Tree. The first node added must be
// the root; every other node is attached to an existing parent. Builders
// are not safe for concurrent use. A Builder must not be reused after
// Build.
type Builder struct {
	t     Tree
	built bool
}

// NewBuilder returns a Builder with no nodes.
func NewBuilder() *Builder { return &Builder{} }

// Root adds the root with the given label and returns its ID (always 0).
// It panics if a root was already added.
func (b *Builder) Root(label string) NodeID { return b.root(label, true) }

// RootUnlabeled adds an unlabeled root and returns its ID (always 0).
func (b *Builder) RootUnlabeled() NodeID { return b.root("", false) }

func (b *Builder) root(label string, labeled bool) NodeID {
	if b.t.Size() != 0 {
		panic("tree: Builder.Root called twice")
	}
	return b.add(None, label, labeled)
}

// Child adds a labeled child of parent and returns its ID. It panics if
// parent is not a node previously returned by this builder.
func (b *Builder) Child(parent NodeID, label string) NodeID {
	return b.add(parent, label, true)
}

// ChildUnlabeled adds an unlabeled child of parent and returns its ID.
func (b *Builder) ChildUnlabeled(parent NodeID) NodeID {
	return b.add(parent, "", false)
}

// Path adds a chain of labeled nodes under parent, one per label, each the
// child of the previous, and returns the ID of the last node added. With
// no labels it returns parent.
func (b *Builder) Path(parent NodeID, labels ...string) NodeID {
	for _, l := range labels {
		parent = b.Child(parent, l)
	}
	return parent
}

// Size returns the number of nodes added so far.
func (b *Builder) Size() int { return b.t.Size() }

func (b *Builder) add(parent NodeID, label string, labeled bool) NodeID {
	if b.built {
		panic("tree: Builder reused after Build")
	}
	if parent == None && b.t.Size() != 0 {
		panic("tree: node without parent added to non-empty builder")
	}
	if parent != None && (parent < 0 || int(parent) >= b.t.Size()) {
		panic(fmt.Sprintf("tree: unknown parent node %d", parent))
	}
	id := NodeID(b.t.Size())
	b.t.parent = append(b.t.parent, parent)
	b.t.children = append(b.t.children, nil)
	b.t.labels = append(b.t.labels, label)
	b.t.labeled = append(b.t.labeled, labeled)
	if parent == None {
		b.t.depth = append(b.t.depth, 0)
	} else {
		b.t.children[parent] = append(b.t.children[parent], id)
		b.t.depth = append(b.t.depth, b.t.depth[parent]+1)
	}
	return id
}

// Build finalizes and returns the tree. It returns ErrEmptyTree if no
// nodes were added. After Build the builder must not be used again.
func (b *Builder) Build() (*Tree, error) {
	if b.t.Size() == 0 {
		return nil, ErrEmptyTree
	}
	b.built = true
	t := b.t
	return &t, nil
}

// MustBuild is Build for static trees in tests and examples; it panics on
// error.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
