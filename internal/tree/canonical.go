package tree

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// canonicalEncoding returns a string that uniquely identifies the subtree
// rooted at n up to unordered isomorphism with labels (AHU-style encoding
// with sorted child encodings). Labels are length-prefixed so that label
// boundaries cannot be confused with structure characters.
func (t *Tree) canonicalEncoding(n NodeID) string {
	var b strings.Builder
	t.encode(n, &b)
	return b.String()
}

func (t *Tree) encode(n NodeID, b *strings.Builder) {
	b.WriteByte('(')
	if t.labeled[n] {
		l := t.labels[n]
		b.WriteString(strconv.Itoa(len(l)))
		b.WriteByte(':')
		b.WriteString(l)
	} else {
		b.WriteByte('_')
	}
	if kids := t.children[n]; len(kids) > 0 {
		encs := make([]string, len(kids))
		for i, k := range kids {
			var kb strings.Builder
			t.encode(k, &kb)
			encs[i] = kb.String()
		}
		sort.Strings(encs)
		for _, e := range encs {
			b.WriteString(e)
		}
	}
	b.WriteByte(')')
}

// Canonical returns the canonical encoding of the whole tree. Two trees
// have equal canonical encodings exactly when they are isomorphic as
// rooted unordered labeled trees.
func (t *Tree) Canonical() string {
	if t.Size() == 0 {
		return ""
	}
	return t.canonicalEncoding(0)
}

// Isomorphic reports whether a and b are isomorphic rooted unordered
// labeled trees (same shape and labels, ignoring sibling order and node
// IDs).
func Isomorphic(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	return a.Canonical() == b.Canonical()
}

// Hash returns a 64-bit hash of the tree's canonical encoding, suitable
// for deduplicating trees (e.g. sets of equally parsimonious trees).
// Isomorphic trees always hash equal; distinct trees collide with the
// usual 64-bit FNV probability.
func (t *Tree) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.Canonical()))
	return h.Sum64()
}
