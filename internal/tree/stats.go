package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a tree's shape — the quantities the paper's Table 3
// and §4 workload descriptions are phrased in (node count, fanout,
// label usage).
type Stats struct {
	Nodes         int
	Leaves        int
	Internal      int
	Labeled       int
	DistinctLabel int
	Height        int
	MaxArity      int
	// ArityHist[k] = number of internal nodes with k children.
	ArityHist map[int]int
}

// StatsOf computes the statistics in one pass.
func StatsOf(t *Tree) Stats {
	s := Stats{ArityHist: map[int]int{}, Height: t.Height(), Nodes: t.Size()}
	labels := map[string]bool{}
	t.Walk(func(n NodeID) bool {
		if t.IsLeaf(n) {
			s.Leaves++
		} else {
			s.Internal++
			k := t.NumChildren(n)
			s.ArityHist[k]++
			if k > s.MaxArity {
				s.MaxArity = k
			}
		}
		if l, ok := t.Label(n); ok {
			s.Labeled++
			labels[l] = true
		}
		return true
	})
	s.DistinctLabel = len(labels)
	return s
}

// String renders the stats on one line, with the arity histogram in
// ascending arity order.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d leaves=%d internal=%d labeled=%d distinct=%d height=%d",
		s.Nodes, s.Leaves, s.Internal, s.Labeled, s.DistinctLabel, s.Height)
	if len(s.ArityHist) > 0 {
		arities := make([]int, 0, len(s.ArityHist))
		for k := range s.ArityHist {
			arities = append(arities, k)
		}
		sort.Ints(arities)
		b.WriteString(" arity[")
		for i, k := range arities {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%d", k, s.ArityHist[k])
		}
		b.WriteByte(']')
	}
	return b.String()
}
