package tree

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// TaxonSet indexes a fixed universe of taxon names so that leaf clusters
// can be represented as bitsets. Build one with NewTaxonSet over the union
// of the leaf labels of the trees being compared.
type TaxonSet struct {
	names []string
	index map[string]int
}

// NewTaxonSet builds a TaxonSet over the given names (duplicates are
// collapsed). The names are kept in sorted order, so bit i always refers
// to the i-th smallest name.
func NewTaxonSet(names []string) *TaxonSet {
	uniq := make(map[string]bool, len(names))
	for _, n := range names {
		uniq[n] = true
	}
	sorted := make([]string, 0, len(uniq))
	for n := range uniq {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	idx := make(map[string]int, len(sorted))
	for i, n := range sorted {
		idx[n] = i
	}
	return &TaxonSet{names: sorted, index: idx}
}

// TaxaOf builds a TaxonSet over the union of leaf labels of the trees.
func TaxaOf(trees ...*Tree) *TaxonSet {
	var all []string
	for _, t := range trees {
		all = append(all, t.LeafLabels()...)
	}
	return NewTaxonSet(all)
}

// Len returns the number of taxa in the set.
func (ts *TaxonSet) Len() int { return len(ts.names) }

// Name returns the name of taxon i.
func (ts *TaxonSet) Name(i int) string { return ts.names[i] }

// Names returns all taxon names in sorted order. The slice is owned by
// the TaxonSet and must not be modified.
func (ts *TaxonSet) Names() []string { return ts.names }

// Index returns the bit index of name and whether it is in the set.
func (ts *TaxonSet) Index(name string) (int, bool) {
	i, ok := ts.index[name]
	return i, ok
}

// Cluster is a set of taxa represented as a bitset relative to a
// TaxonSet. Clusters are comparable via Key for use as map keys.
type Cluster []uint64

// NewCluster returns an empty cluster sized for ts.
func (ts *TaxonSet) NewCluster() Cluster {
	return make(Cluster, (len(ts.names)+63)/64)
}

// ClusterOf returns the cluster containing exactly the given names. Names
// not in the TaxonSet are ignored.
func (ts *TaxonSet) ClusterOf(names ...string) Cluster {
	c := ts.NewCluster()
	for _, n := range names {
		if i, ok := ts.index[n]; ok {
			c.Set(i)
		}
	}
	return c
}

// Full returns the cluster containing every taxon in ts.
func (ts *TaxonSet) Full() Cluster {
	c := ts.NewCluster()
	for i := 0; i < len(ts.names); i++ {
		c.Set(i)
	}
	return c
}

// Set adds taxon i to the cluster.
func (c Cluster) Set(i int) { c[i/64] |= 1 << (i % 64) }

// Has reports whether taxon i is in the cluster.
func (c Cluster) Has(i int) bool { return c[i/64]&(1<<(i%64)) != 0 }

// Count returns the number of taxa in the cluster.
func (c Cluster) Count() int {
	n := 0
	for _, w := range c {
		n += bits.OnesCount64(w)
	}
	return n
}

// Key returns a string form of the bitset usable as a map key.
func (c Cluster) Key() string {
	var b strings.Builder
	for _, w := range c {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// Clone returns a copy of the cluster.
func (c Cluster) Clone() Cluster { return append(Cluster(nil), c...) }

// Union returns c ∪ d in a fresh cluster.
func (c Cluster) Union(d Cluster) Cluster {
	out := c.Clone()
	for i := range out {
		out[i] |= d[i]
	}
	return out
}

// Intersect returns c ∩ d in a fresh cluster.
func (c Cluster) Intersect(d Cluster) Cluster {
	out := c.Clone()
	for i := range out {
		out[i] &= d[i]
	}
	return out
}

// Minus returns c \ d in a fresh cluster.
func (c Cluster) Minus(d Cluster) Cluster {
	out := c.Clone()
	for i := range out {
		out[i] &^= d[i]
	}
	return out
}

// Empty reports whether the cluster contains no taxa.
func (c Cluster) Empty() bool {
	for _, w := range c {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether c and d contain exactly the same taxa.
func (c Cluster) Equal(d Cluster) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every taxon of c is in d.
func (c Cluster) SubsetOf(d Cluster) bool {
	for i := range c {
		if c[i]&^d[i] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether c and d share no taxa.
func (c Cluster) Disjoint(d Cluster) bool {
	for i := range c {
		if c[i]&d[i] != 0 {
			return false
		}
	}
	return true
}

// CompatibleWith reports whether c and d can occur in the same tree: they
// are compatible when one contains the other or they are disjoint.
func (c Cluster) CompatibleWith(d Cluster) bool {
	return c.SubsetOf(d) || d.SubsetOf(c) || c.Disjoint(d)
}

// Members returns the taxon indices in the cluster in increasing order.
func (c Cluster) Members() []int {
	var out []int
	for wi, w := range c {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// NamesIn returns the names of the cluster's taxa relative to ts, sorted.
func (c Cluster) NamesIn(ts *TaxonSet) []string {
	idx := c.Members()
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = ts.Name(j)
	}
	return out
}

// Clusters returns, for each node of t that has at least one labeled leaf
// below it (counting labeled leaves only), the cluster of leaf labels in
// its subtree relative to ts. The result maps NodeID to cluster. Leaves
// labeled with names outside ts contribute nothing.
func Clusters(t *Tree, ts *TaxonSet) map[NodeID]Cluster {
	out := make(map[NodeID]Cluster, t.Size())
	t.PostOrder(func(n NodeID) {
		c := ts.NewCluster()
		if t.IsLeaf(n) {
			if l, ok := t.Label(n); ok {
				if i, ok := ts.Index(l); ok {
					c.Set(i)
				}
			}
		} else {
			for _, k := range t.Children(n) {
				if kc, ok := out[k]; ok {
					c = c.Union(kc)
				}
			}
		}
		if !c.Empty() {
			out[n] = c
		}
	})
	return out
}

// InternalClusters returns the deduplicated set of clusters induced by the
// internal (non-leaf) nodes of t, excluding the trivial full cluster of
// the root, keyed by Cluster.Key. This is the cluster set consensus
// methods and Robinson–Foulds operate on.
func InternalClusters(t *Tree, ts *TaxonSet) map[string]Cluster {
	all := Clusters(t, ts)
	full := all[t.Root()]
	out := make(map[string]Cluster)
	for n, c := range all {
		if t.IsLeaf(n) || c.Count() <= 1 {
			continue
		}
		if full != nil && c.Equal(full) {
			continue
		}
		out[c.Key()] = c
	}
	return out
}
