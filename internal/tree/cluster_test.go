package tree

import (
	"reflect"
	"testing"
)

func TestTaxonSetBasics(t *testing.T) {
	ts := NewTaxonSet([]string{"b", "a", "c", "a"})
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	if got := ts.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Names = %v", got)
	}
	if i, ok := ts.Index("b"); !ok || i != 1 {
		t.Fatalf("Index(b) = (%d,%v)", i, ok)
	}
	if _, ok := ts.Index("zz"); ok {
		t.Fatal("Index(zz) should miss")
	}
	if ts.Name(2) != "c" {
		t.Fatalf("Name(2) = %q", ts.Name(2))
	}
}

func TestClusterOps(t *testing.T) {
	names := make([]string, 130) // spans multiple words
	for i := range names {
		names[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
	}
	ts := NewTaxonSet(names)
	c := ts.NewCluster()
	c.Set(0)
	c.Set(64)
	c.Set(129)
	if c.Count() != 3 {
		t.Fatalf("Count = %d, want 3", c.Count())
	}
	if !c.Has(64) || c.Has(63) {
		t.Fatal("Has wrong across word boundary")
	}
	if got := c.Members(); !reflect.DeepEqual(got, []int{0, 64, 129}) {
		t.Fatalf("Members = %v", got)
	}

	d := ts.NewCluster()
	d.Set(64)
	d.Set(65)
	if got := c.Intersect(d).Members(); !reflect.DeepEqual(got, []int{64}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := c.Union(d).Count(); got != 4 {
		t.Fatalf("Union count = %d, want 4", got)
	}
	if got := c.Minus(d).Members(); !reflect.DeepEqual(got, []int{0, 129}) {
		t.Fatalf("Minus = %v", got)
	}
	if c.Empty() || !ts.NewCluster().Empty() {
		t.Fatal("Empty wrong")
	}
	if !c.Equal(c.Clone()) || c.Equal(d) {
		t.Fatal("Equal wrong")
	}
	sub := ts.NewCluster()
	sub.Set(0)
	if !sub.SubsetOf(c) || c.SubsetOf(sub) {
		t.Fatal("SubsetOf wrong")
	}
	dj := ts.NewCluster()
	dj.Set(7)
	if !dj.Disjoint(c) || d.Disjoint(c) {
		t.Fatal("Disjoint wrong")
	}
	if c.Key() == d.Key() || c.Key() != c.Clone().Key() {
		t.Fatal("Key not injective/stable")
	}
}

func TestClusterCompatibility(t *testing.T) {
	ts := NewTaxonSet([]string{"a", "b", "c", "d"})
	ab := ts.ClusterOf("a", "b")
	abc := ts.ClusterOf("a", "b", "c")
	cd := ts.ClusterOf("c", "d")
	bc := ts.ClusterOf("b", "c")
	if !ab.CompatibleWith(abc) { // nested
		t.Error("nested clusters should be compatible")
	}
	if !ab.CompatibleWith(cd) { // disjoint
		t.Error("disjoint clusters should be compatible")
	}
	if ab.CompatibleWith(bc) { // overlapping, neither contains the other
		t.Error("overlapping clusters should be incompatible")
	}
}

// phyloSample builds ((a,b),(c,d)) with unlabeled internals.
func phyloSample() *Tree {
	b := NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	b.Child(l, "a")
	b.Child(l, "b")
	rr := b.ChildUnlabeled(r)
	b.Child(rr, "c")
	b.Child(rr, "d")
	return b.MustBuild()
}

func TestClustersExtraction(t *testing.T) {
	tr := phyloSample()
	ts := TaxaOf(tr)
	if ts.Len() != 4 {
		t.Fatalf("taxa = %d, want 4", ts.Len())
	}
	all := Clusters(tr, ts)
	if got := all[tr.Root()].Count(); got != 4 {
		t.Fatalf("root cluster size = %d, want 4", got)
	}
	ic := InternalClusters(tr, ts)
	if len(ic) != 2 {
		t.Fatalf("internal clusters = %d, want 2 ({a,b} and {c,d})", len(ic))
	}
	ab := ts.ClusterOf("a", "b")
	cd := ts.ClusterOf("c", "d")
	if _, ok := ic[ab.Key()]; !ok {
		t.Error("missing {a,b} cluster")
	}
	if _, ok := ic[cd.Key()]; !ok {
		t.Error("missing {c,d} cluster")
	}
	for _, c := range ic {
		if got := c.NamesIn(ts); len(got) != 2 {
			t.Errorf("cluster names = %v", got)
		}
	}
}

func TestInternalClustersExcludesTrivial(t *testing.T) {
	// A root with an extra unary internal node above the leaves: the
	// unary node induces the same full cluster as the root and must be
	// excluded; single-leaf clusters are excluded too.
	b := NewBuilder()
	r := b.RootUnlabeled()
	mid := b.ChildUnlabeled(r)
	b.Child(mid, "a")
	b.Child(mid, "b")
	tr := b.MustBuild()
	ts := TaxaOf(tr)
	ic := InternalClusters(tr, ts)
	if len(ic) != 0 {
		t.Fatalf("internal clusters = %d, want 0 (full cluster is trivial)", len(ic))
	}
}

func TestClustersIgnoreUnknownTaxa(t *testing.T) {
	tr := phyloSample()
	ts := NewTaxonSet([]string{"a", "b"}) // c,d outside universe
	all := Clusters(tr, ts)
	if got := all[tr.Root()].Count(); got != 2 {
		t.Fatalf("root cluster size = %d, want 2", got)
	}
}

func TestFullCluster(t *testing.T) {
	ts := NewTaxonSet([]string{"a", "b", "c"})
	if got := ts.Full().Count(); got != 3 {
		t.Fatalf("Full count = %d", got)
	}
}
