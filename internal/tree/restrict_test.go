package tree

import (
	"reflect"
	"testing"
)

// buildPhylo builds ((a,b),((c,d),e)) with unlabeled internals.
func buildPhylo() *Tree {
	b := NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	b.Child(l, "a")
	b.Child(l, "b")
	rr := b.ChildUnlabeled(r)
	cd := b.ChildUnlabeled(rr)
	b.Child(cd, "c")
	b.Child(cd, "d")
	b.Child(rr, "e")
	return b.MustBuild()
}

func TestRestrictDropsAndCollapses(t *testing.T) {
	tr := buildPhylo()
	got := RestrictTo(tr, []string{"a", "c", "d"})
	if got == nil {
		t.Fatal("nil restriction")
	}
	// a's sibling b is gone, so the (a,b) node collapses: a hangs off
	// the root directly; (c,d) survives as a cluster.
	if want := []string{"a", "c", "d"}; !reflect.DeepEqual(got.LeafLabels(), want) {
		t.Fatalf("leaves = %v", got.LeafLabels())
	}
	ts := TaxaOf(got)
	ic := InternalClusters(got, ts)
	if _, ok := ic[ts.ClusterOf("c", "d").Key()]; !ok {
		t.Fatalf("{c,d} lost: %v", got)
	}
	// No unary nodes survive.
	for _, n := range got.Nodes() {
		if !got.IsLeaf(n) && got.NumChildren(n) < 2 {
			t.Fatalf("unary node survived: %v", got)
		}
	}
}

func TestRestrictSingleLeaf(t *testing.T) {
	tr := buildPhylo()
	got := RestrictTo(tr, []string{"e"})
	if got == nil || got.Size() != 1 || got.MustLabel(got.Root()) != "e" {
		t.Fatalf("single-leaf restriction = %v", got)
	}
}

func TestRestrictNothingSurvives(t *testing.T) {
	tr := buildPhylo()
	if got := RestrictTo(tr, []string{"zzz"}); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestRestrictEverything(t *testing.T) {
	tr := buildPhylo()
	got := Restrict(tr, func(string) bool { return true })
	if !Isomorphic(tr, got) {
		t.Fatalf("full restriction differs: %v vs %v", got, tr)
	}
}

func TestRestrictPreservesNesting(t *testing.T) {
	// Dropping e from ((a,b),((c,d),e)) collapses the ((c,d),e) node:
	// result is ((a,b),(c,d)).
	tr := buildPhylo()
	got := RestrictTo(tr, []string{"a", "b", "c", "d"})
	b := NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	b.Child(l, "a")
	b.Child(l, "b")
	rr := b.ChildUnlabeled(r)
	b.Child(rr, "c")
	b.Child(rr, "d")
	want := b.MustBuild()
	if !Isomorphic(got, want) {
		t.Fatalf("restriction = %v, want %v", got, want)
	}
}

func TestRelabel(t *testing.T) {
	tr := buildPhylo()
	up := Relabel(tr, func(l string) string { return l + "!" })
	if got := up.LeafLabels(); got[0] != "a!" {
		t.Fatalf("relabel = %v", got)
	}
	// Original untouched.
	if got := tr.LeafLabels(); got[0] != "a" {
		t.Fatalf("original mutated: %v", got)
	}
	// Unlabeled nodes stay unlabeled.
	if up.Labeled(up.Root()) {
		t.Fatal("unlabeled root gained a label")
	}
}
