package tree

import (
	"strings"
	"testing"
)

func TestStatsOf(t *testing.T) {
	tr, _ := sample(t) // r(a(c,d), b, u(e)) with u unlabeled
	s := StatsOf(tr)
	if s.Nodes != 7 || s.Leaves != 4 || s.Internal != 3 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.Labeled != 6 || s.DistinctLabel != 6 {
		t.Fatalf("labels wrong: %+v", s)
	}
	if s.Height != 2 || s.MaxArity != 3 {
		t.Fatalf("shape wrong: %+v", s)
	}
	if s.ArityHist[3] != 1 || s.ArityHist[2] != 1 || s.ArityHist[1] != 1 {
		t.Fatalf("arity hist wrong: %v", s.ArityHist)
	}
	out := s.String()
	for _, want := range []string{"nodes=7", "leaves=4", "height=2", "arity[1:1 2:1 3:1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q: %s", want, out)
		}
	}
}

func TestStatsSingleNode(t *testing.T) {
	b := NewBuilder()
	b.Root("x")
	s := StatsOf(b.MustBuild())
	if s.Nodes != 1 || s.Leaves != 1 || s.Internal != 0 || s.MaxArity != 0 {
		t.Fatalf("single-node stats: %+v", s)
	}
	if strings.Contains(s.String(), "arity[") {
		t.Fatalf("empty arity hist printed: %s", s.String())
	}
}

func TestStatsDuplicateLabels(t *testing.T) {
	b := NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "x")
	s := StatsOf(b.MustBuild())
	if s.Labeled != 2 || s.DistinctLabel != 1 {
		t.Fatalf("dup labels: %+v", s)
	}
}
