package tree

import (
	"fmt"
	"strings"
)

// Sketch renders the tree as indented ASCII art, one node per line —
// the quick-look format the CLI tools print for humans:
//
//	└─ (root)
//	   ├─ Human
//	   └─ (…)
//	      ├─ Chimp
//	      └─ Gorilla
//
// Unlabeled nodes print as "(…)". Children appear in ID order.
func Sketch(t *Tree) string {
	if t.Size() == 0 {
		return ""
	}
	var b strings.Builder
	var rec func(n NodeID, prefix string, last bool)
	rec = func(n NodeID, prefix string, last bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		name := "(…)"
		if l, ok := t.Label(n); ok {
			name = l
		}
		fmt.Fprintf(&b, "%s%s%s\n", prefix, connector, name)
		kids := t.Children(n)
		for i, k := range kids {
			rec(k, childPrefix, i == len(kids)-1)
		}
	}
	rec(t.Root(), "", true)
	return b.String()
}
