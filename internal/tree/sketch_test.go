package tree

import (
	"strings"
	"testing"
)

func TestSketch(t *testing.T) {
	b := NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "Human")
	x := b.ChildUnlabeled(r)
	b.Child(x, "Chimp")
	b.Child(x, "Gorilla")
	out := Sketch(b.MustBuild())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "└─ (…)" {
		t.Errorf("root line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "├─ Human") {
		t.Errorf("first child line = %q", lines[1])
	}
	if !strings.Contains(lines[4], "└─ Gorilla") {
		t.Errorf("last line = %q", lines[4])
	}
	// Continuation bars only under non-last children.
	if strings.Contains(lines[3], "│") {
		t.Errorf("unexpected bar under last child: %q", lines[3])
	}
}

func TestSketchSingleAndEmpty(t *testing.T) {
	b := NewBuilder()
	b.Root("solo")
	if got := Sketch(b.MustBuild()); got != "└─ solo\n" {
		t.Fatalf("single = %q", got)
	}
	if got := Sketch(&Tree{}); got != "" {
		t.Fatalf("empty = %q", got)
	}
}
