package tree

// Restrict returns t pruned to the leaves whose labels satisfy keep:
// non-matching leaves are removed, internal nodes left with a single
// child are collapsed (their child is spliced into their place), and
// internal labels are preserved on surviving nodes. It returns nil when
// no leaf survives. Restriction is how a phylogeny is projected onto a
// taxon subset — the operation behind supertree inputs, per-window
// kernel groups, and Adams-style reasoning.
func Restrict(t *Tree, keep func(label string) bool) *Tree {
	type pruned struct {
		id   NodeID // original node, for label lookup
		kids []*pruned
	}
	var rec func(n NodeID) *pruned
	rec = func(n NodeID) *pruned {
		if t.IsLeaf(n) {
			if l, ok := t.Label(n); ok && keep(l) {
				return &pruned{id: n}
			}
			return nil
		}
		var kids []*pruned
		for _, k := range t.Children(n) {
			if p := rec(k); p != nil {
				kids = append(kids, p)
			}
		}
		switch len(kids) {
		case 0:
			return nil
		case 1:
			return kids[0]
		default:
			return &pruned{id: n, kids: kids}
		}
	}
	root := rec(t.Root())
	if root == nil {
		return nil
	}
	b := NewBuilder()
	var emit func(p *pruned, parent NodeID)
	emit = func(p *pruned, parent NodeID) {
		var id NodeID
		if l, ok := t.Label(p.id); ok {
			if parent == None {
				id = b.Root(l)
			} else {
				id = b.Child(parent, l)
			}
		} else {
			if parent == None {
				id = b.RootUnlabeled()
			} else {
				id = b.ChildUnlabeled(parent)
			}
		}
		for _, k := range p.kids {
			emit(k, id)
		}
	}
	emit(root, None)
	return b.MustBuild()
}

// RestrictTo is Restrict with an explicit allow-set of labels.
func RestrictTo(t *Tree, labels []string) *Tree {
	set := make(map[string]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return Restrict(t, func(l string) bool { return set[l] })
}
