package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsomorphicSiblingOrder(t *testing.T) {
	// ((a b) c) vs (c (b a)) under an unlabeled root.
	b1 := NewBuilder()
	r := b1.RootUnlabeled()
	x := b1.ChildUnlabeled(r)
	b1.Child(x, "a")
	b1.Child(x, "b")
	b1.Child(r, "c")
	t1 := b1.MustBuild()

	b2 := NewBuilder()
	r = b2.RootUnlabeled()
	b2.Child(r, "c")
	x = b2.ChildUnlabeled(r)
	b2.Child(x, "b")
	b2.Child(x, "a")
	t2 := b2.MustBuild()

	if !Isomorphic(t1, t2) {
		t.Fatal("sibling reorder should be isomorphic")
	}
	if t1.Hash() != t2.Hash() {
		t.Fatal("isomorphic trees must hash equal")
	}
}

func TestNotIsomorphic(t *testing.T) {
	mk := func(labels ...string) *Tree {
		b := NewBuilder()
		r := b.Root("r")
		for _, l := range labels {
			b.Child(r, l)
		}
		return b.MustBuild()
	}
	if Isomorphic(mk("a", "b"), mk("a", "c")) {
		t.Fatal("different labels must not be isomorphic")
	}
	if Isomorphic(mk("a", "b"), mk("a", "b", "c")) {
		t.Fatal("different sizes must not be isomorphic")
	}
	// Labeled vs unlabeled node differ.
	b := NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "a")
	b.Child(r, "b")
	unl := b.MustBuild()
	if Isomorphic(mk("a", "b"), unl) {
		t.Fatal("labeled root vs unlabeled root must not be isomorphic")
	}
}

func TestCanonicalLabelBoundaries(t *testing.T) {
	// Labels "ab"+"c" vs "a"+"bc" must not collide in the encoding.
	mk := func(l1, l2 string) *Tree {
		b := NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, l1)
		b.Child(r, l2)
		return b.MustBuild()
	}
	if mk("ab", "c").Canonical() == mk("a", "bc").Canonical() {
		t.Fatal("label boundary collision in canonical encoding")
	}
}

// randTree builds a random labeled tree with n nodes using rng, attaching
// each new node to a uniformly random existing node.
func randTree(rng *rand.Rand, n int, labels []string) *Tree {
	b := NewBuilder()
	b.Root(labels[rng.Intn(len(labels))])
	for i := 1; i < n; i++ {
		p := NodeID(rng.Intn(i))
		if rng.Intn(4) == 0 {
			b.ChildUnlabeled(p)
		} else {
			b.Child(p, labels[rng.Intn(len(labels))])
		}
	}
	return b.MustBuild()
}

// shuffleTree rebuilds t with children inserted in a random order,
// producing a tree isomorphic to t with different node IDs.
func shuffleTree(rng *rand.Rand, t *Tree) *Tree {
	b := NewBuilder()
	var rec func(old, parent NodeID)
	rec = func(old, parent NodeID) {
		var id NodeID
		if l, ok := t.Label(old); ok {
			if parent == None {
				id = b.Root(l)
			} else {
				id = b.Child(parent, l)
			}
		} else {
			if parent == None {
				id = b.RootUnlabeled()
			} else {
				id = b.ChildUnlabeled(parent)
			}
		}
		kids := append([]NodeID(nil), t.Children(old)...)
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		for _, k := range kids {
			rec(k, id)
		}
	}
	rec(t.Root(), None)
	return b.MustBuild()
}

func TestCanonicalInvariantUnderShuffle(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%40 + 1
		tr := randTree(rng, n, labels)
		sh := shuffleTree(rng, tr)
		return Isomorphic(tr, sh) && tr.String() == sh.String()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
