// Package tree implements rooted unordered labeled trees, the data model
// underlying the cousin-pair mining algorithms of Shasha, Wang & Zhang
// (ICDE 2004) and all of their phylogenetic applications.
//
// A tree is a set of nodes identified by dense integer IDs. Each node may
// carry a label (in phylogenies, usually only the leaves do); the
// left-to-right order among siblings carries no meaning. Trees are
// immutable once built: construct them with a Builder, the newick package,
// or one of the generators in internal/treegen.
package tree

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Tree. IDs are dense: a tree of
// n nodes uses IDs 0..n-1, with the root always at ID 0. IDs are not
// comparable across trees.
type NodeID int

// None is the sentinel returned where no node applies (e.g. the parent of
// the root).
const None NodeID = -1

// Tree is an immutable rooted unordered labeled tree.
//
// The zero value is an empty tree with no nodes; use a Builder to create
// non-empty trees.
type Tree struct {
	parent   []NodeID
	children [][]NodeID
	labels   []string
	labeled  []bool
	depth    []int
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return len(t.parent) }

// Root returns the root node, or None for an empty tree.
func (t *Tree) Root() NodeID {
	if t.Size() == 0 {
		return None
	}
	return 0
}

// Parent returns the parent of n, or None if n is the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.parent[n] }

// Children returns the children of n. The returned slice is owned by the
// tree and must not be modified.
func (t *Tree) Children(n NodeID) []NodeID { return t.children[n] }

// NumChildren returns the number of children of n.
func (t *Tree) NumChildren(n NodeID) int { return len(t.children[n]) }

// IsLeaf reports whether n has no children.
func (t *Tree) IsLeaf(n NodeID) bool { return len(t.children[n]) == 0 }

// Label returns the label of n and whether n is labeled. Unlabeled nodes
// (common for internal nodes of phylogenies) return ("", false).
func (t *Tree) Label(n NodeID) (string, bool) {
	if !t.labeled[n] {
		return "", false
	}
	return t.labels[n], true
}

// MustLabel returns the label of n, or the empty string if n is unlabeled.
func (t *Tree) MustLabel(n NodeID) string { return t.labels[n] }

// Labeled reports whether n carries a label.
func (t *Tree) Labeled(n NodeID) bool { return t.labeled[n] }

// Depth returns the number of edges on the path from the root to n; the
// root has depth 0.
func (t *Tree) Depth(n NodeID) int { return t.depth[n] }

// Height returns the number of edges on the longest root-to-leaf path.
// An empty tree has height -1; a single node has height 0.
func (t *Tree) Height() int {
	h := -1
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// Nodes returns all node IDs in preorder (root first). The result is a
// fresh slice the caller may modify.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, 0, t.Size())
	t.Walk(func(n NodeID) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Walk visits nodes in preorder, calling visit for each. If visit returns
// false the subtree below that node is skipped (the walk continues with
// siblings).
func (t *Tree) Walk(visit func(NodeID) bool) {
	if t.Size() == 0 {
		return
	}
	stack := []NodeID{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !visit(n) {
			continue
		}
		kids := t.children[n]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
}

// PostOrder visits nodes in postorder (children before parents).
func (t *Tree) PostOrder(visit func(NodeID)) {
	var rec func(NodeID)
	rec = func(n NodeID) {
		for _, c := range t.children[n] {
			rec(c)
		}
		visit(n)
	}
	if t.Size() > 0 {
		rec(0)
	}
}

// Leaves returns the IDs of all leaves in preorder.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	t.Walk(func(n NodeID) bool {
		if t.IsLeaf(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// LeafLabels returns the labels of all labeled leaves, sorted and
// deduplicated.
func (t *Tree) LeafLabels() []string {
	seen := make(map[string]bool)
	for _, n := range t.Leaves() {
		if l, ok := t.Label(n); ok {
			seen[l] = true
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LabeledNodes returns the IDs of all labeled nodes in preorder.
func (t *Tree) LabeledNodes() []NodeID {
	var out []NodeID
	t.Walk(func(n NodeID) bool {
		if t.labeled[n] {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Ancestors returns the proper ancestors of n ordered from parent to root.
func (t *Tree) Ancestors(n NodeID) []NodeID {
	var out []NodeID
	for p := t.parent[n]; p != None; p = t.parent[p] {
		out = append(out, p)
	}
	return out
}

// IsAncestor reports whether a is a proper ancestor of n.
func (t *Tree) IsAncestor(a, n NodeID) bool {
	if t.depth[a] >= t.depth[n] {
		return false
	}
	for p := t.parent[n]; p != None && t.depth[p] >= t.depth[a]; p = t.parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

// AncestorAt returns the ancestor of n that is exactly up edges above n,
// or None when n is fewer than up edges below the root. AncestorAt(n, 0)
// is n itself.
func (t *Tree) AncestorAt(n NodeID, up int) NodeID {
	for ; up > 0 && n != None; up-- {
		n = t.parent[n]
	}
	return n
}

// LCA returns the least common ancestor of u and v by walking parent
// pointers; O(depth). For bulk queries use internal/lca, which answers in
// O(1) after preprocessing.
func (t *Tree) LCA(u, v NodeID) NodeID {
	for t.depth[u] > t.depth[v] {
		u = t.parent[u]
	}
	for t.depth[v] > t.depth[u] {
		v = t.parent[v]
	}
	for u != v {
		u = t.parent[u]
		v = t.parent[v]
	}
	return u
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		parent:   append([]NodeID(nil), t.parent...),
		children: make([][]NodeID, len(t.children)),
		labels:   append([]string(nil), t.labels...),
		labeled:  append([]bool(nil), t.labeled...),
		depth:    append([]int(nil), t.depth...),
	}
	for i, kids := range t.children {
		c.children[i] = append([]NodeID(nil), kids...)
	}
	return c
}

// String renders the tree in a compact nested form, with children sorted
// by canonical encoding so that isomorphic trees print identically. It is
// intended for debugging and test output, not serialization; use the
// newick package for interchange.
func (t *Tree) String() string {
	if t.Size() == 0 {
		return "()"
	}
	var b strings.Builder
	var rec func(NodeID)
	rec = func(n NodeID) {
		if t.labeled[n] {
			fmt.Fprintf(&b, "%q", t.labels[n])
		} else {
			b.WriteByte('.')
		}
		if len(t.children[n]) == 0 {
			return
		}
		kids := append([]NodeID(nil), t.children[n]...)
		enc := make(map[NodeID]string, len(kids))
		for _, k := range kids {
			enc[k] = t.canonicalEncoding(k)
		}
		sort.Slice(kids, func(i, j int) bool { return enc[kids[i]] < enc[kids[j]] })
		b.WriteByte('(')
		for i, k := range kids {
			if i > 0 {
				b.WriteByte(' ')
			}
			rec(k)
		}
		b.WriteByte(')')
	}
	rec(0)
	return b.String()
}
