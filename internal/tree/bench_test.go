package tree

import (
	"math/rand"
	"testing"
)

func benchTree(n int) *Tree {
	rng := rand.New(rand.NewSource(1))
	labels := []string{"a", "b", "c", "d", "e"}
	b := NewBuilder()
	b.Root(labels[0])
	for i := 1; i < n; i++ {
		b.Child(NodeID(rng.Intn(i)), labels[rng.Intn(len(labels))])
	}
	return b.MustBuild()
}

func BenchmarkCanonical(b *testing.B) {
	t := benchTree(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Canonical()
	}
}

func BenchmarkWalk(b *testing.B) {
	t := benchTree(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		t.Walk(func(NodeID) bool { count++; return true })
		if count != 2000 {
			b.Fatal("walk miscount")
		}
	}
}

func BenchmarkClusters(b *testing.B) {
	t := benchTree(500)
	ts := TaxaOf(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Clusters(t, ts)
	}
}

func BenchmarkLCAWalking(b *testing.B) {
	t := benchTree(1000)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.LCA(NodeID(rng.Intn(1000)), NodeID(rng.Intn(1000)))
	}
}

func BenchmarkRestrict(b *testing.B) {
	t := benchTree(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Restrict(t, func(l string) bool { return l < "c" })
	}
}
