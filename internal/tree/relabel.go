package tree

// Relabel returns a copy of t with every label rewritten by f. Unlabeled
// nodes stay unlabeled; structure and node IDs are preserved. Relabeling
// is how NEXUS translate tables and taxon-renaming workflows are applied
// without mutating shared trees.
func Relabel(t *Tree, f func(string) string) *Tree {
	c := t.Clone()
	for i := range c.labels {
		if c.labeled[i] {
			c.labels[i] = f(c.labels[i])
		}
	}
	return c
}
