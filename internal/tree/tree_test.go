package tree

import (
	"reflect"
	"testing"
)

// caterpillar builds root -> a -> b -> c ... as a labeled chain.
func chain(t *testing.T, labels ...string) *Tree {
	t.Helper()
	b := NewBuilder()
	n := b.Root(labels[0])
	for _, l := range labels[1:] {
		n = b.Child(n, l)
	}
	return b.MustBuild()
}

// sample builds the tree
//
//	     r
//	   / | \
//	  a  b  .
//	 /|     |
//	c d     e
//
// where "." is unlabeled, and returns it with the IDs of its nodes.
func sample(t *testing.T) (*Tree, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	ids := map[string]NodeID{}
	ids["r"] = b.Root("r")
	ids["a"] = b.Child(ids["r"], "a")
	ids["b"] = b.Child(ids["r"], "b")
	ids["u"] = b.ChildUnlabeled(ids["r"])
	ids["c"] = b.Child(ids["a"], "c")
	ids["d"] = b.Child(ids["a"], "d")
	ids["e"] = b.Child(ids["u"], "e")
	return b.MustBuild(), ids
}

func TestBuilderBasics(t *testing.T) {
	tr, ids := sample(t)
	if got := tr.Size(); got != 7 {
		t.Fatalf("Size = %d, want 7", got)
	}
	if tr.Root() != ids["r"] {
		t.Errorf("Root = %d, want %d", tr.Root(), ids["r"])
	}
	if tr.Parent(ids["r"]) != None {
		t.Errorf("root parent = %d, want None", tr.Parent(ids["r"]))
	}
	if tr.Parent(ids["c"]) != ids["a"] {
		t.Errorf("parent(c) = %d, want a", tr.Parent(ids["c"]))
	}
	if got := tr.NumChildren(ids["r"]); got != 3 {
		t.Errorf("NumChildren(r) = %d, want 3", got)
	}
	if !tr.IsLeaf(ids["e"]) || tr.IsLeaf(ids["a"]) {
		t.Error("IsLeaf wrong for e or a")
	}
	if l, ok := tr.Label(ids["u"]); ok || l != "" {
		t.Errorf("unlabeled node Label = (%q,%v), want (\"\",false)", l, ok)
	}
	if l, ok := tr.Label(ids["d"]); !ok || l != "d" {
		t.Errorf("Label(d) = (%q,%v)", l, ok)
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err != ErrEmptyTree {
		t.Fatalf("Build on empty builder: err = %v, want ErrEmptyTree", err)
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("double root", func() {
		b := NewBuilder()
		b.Root("x")
		b.Root("y")
	})
	mustPanic("bad parent", func() {
		b := NewBuilder()
		b.Root("x")
		b.Child(99, "y")
	})
	mustPanic("reuse after build", func() {
		b := NewBuilder()
		b.Root("x")
		b.MustBuild()
		b.Child(0, "y")
	})
}

func TestBuilderPath(t *testing.T) {
	b := NewBuilder()
	r := b.Root("r")
	end := b.Path(r, "x", "y", "z")
	tr := b.MustBuild()
	if got := tr.MustLabel(end); got != "z" {
		t.Fatalf("Path end label = %q, want z", got)
	}
	if tr.Depth(end) != 3 {
		t.Fatalf("Path end depth = %d, want 3", tr.Depth(end))
	}
	if got := b2l(tr, tr.Parent(end)); got != "y" {
		t.Fatalf("parent of end = %q, want y", got)
	}
}

func b2l(t *Tree, n NodeID) string { return t.MustLabel(n) }

func TestDepthHeight(t *testing.T) {
	tr, ids := sample(t)
	wantDepth := map[string]int{"r": 0, "a": 1, "b": 1, "u": 1, "c": 2, "d": 2, "e": 2}
	for name, d := range wantDepth {
		if got := tr.Depth(ids[name]); got != d {
			t.Errorf("Depth(%s) = %d, want %d", name, got, d)
		}
	}
	if h := tr.Height(); h != 2 {
		t.Errorf("Height = %d, want 2", h)
	}
	one := chain(t, "solo")
	if h := one.Height(); h != 0 {
		t.Errorf("single-node Height = %d, want 0", h)
	}
	empty := &Tree{}
	if h := empty.Height(); h != -1 {
		t.Errorf("empty Height = %d, want -1", h)
	}
}

func TestWalkPreorder(t *testing.T) {
	tr, _ := sample(t)
	var order []string
	tr.Walk(func(n NodeID) bool {
		if l, ok := tr.Label(n); ok {
			order = append(order, l)
		} else {
			order = append(order, ".")
		}
		return true
	})
	want := []string{"r", "a", "c", "d", "b", ".", "e"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("preorder = %v, want %v", order, want)
	}
}

func TestWalkPrune(t *testing.T) {
	tr, ids := sample(t)
	var visited []NodeID
	tr.Walk(func(n NodeID) bool {
		visited = append(visited, n)
		return n != ids["a"] // skip a's subtree
	})
	for _, n := range visited {
		if n == ids["c"] || n == ids["d"] {
			t.Fatalf("pruned node %d visited", n)
		}
	}
	if len(visited) != 5 {
		t.Fatalf("visited %d nodes, want 5", len(visited))
	}
}

func TestPostOrder(t *testing.T) {
	tr, ids := sample(t)
	pos := map[NodeID]int{}
	i := 0
	tr.PostOrder(func(n NodeID) { pos[n] = i; i++ })
	if i != tr.Size() {
		t.Fatalf("postorder visited %d nodes, want %d", i, tr.Size())
	}
	for _, n := range tr.Nodes() {
		for _, k := range tr.Children(n) {
			if pos[k] > pos[n] {
				t.Errorf("child %d after parent %d in postorder", k, n)
			}
		}
	}
	_ = ids
}

func TestLeavesAndLabels(t *testing.T) {
	tr, _ := sample(t)
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("len(Leaves) = %d, want 4", got)
	}
	want := []string{"b", "c", "d", "e"}
	if got := tr.LeafLabels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("LeafLabels = %v, want %v", got, want)
	}
	if got := len(tr.LabeledNodes()); got != 6 {
		t.Fatalf("len(LabeledNodes) = %d, want 6", got)
	}
}

func TestAncestors(t *testing.T) {
	tr, ids := sample(t)
	anc := tr.Ancestors(ids["c"])
	if len(anc) != 2 || anc[0] != ids["a"] || anc[1] != ids["r"] {
		t.Fatalf("Ancestors(c) = %v", anc)
	}
	if len(tr.Ancestors(ids["r"])) != 0 {
		t.Fatal("root has ancestors")
	}
	if !tr.IsAncestor(ids["r"], ids["e"]) {
		t.Error("r should be ancestor of e")
	}
	if tr.IsAncestor(ids["a"], ids["e"]) {
		t.Error("a should not be ancestor of e")
	}
	if tr.IsAncestor(ids["c"], ids["c"]) {
		t.Error("node is not its own proper ancestor")
	}
	if got := tr.AncestorAt(ids["c"], 2); got != ids["r"] {
		t.Errorf("AncestorAt(c,2) = %d, want root", got)
	}
	if got := tr.AncestorAt(ids["c"], 0); got != ids["c"] {
		t.Errorf("AncestorAt(c,0) = %d, want c", got)
	}
	if got := tr.AncestorAt(ids["c"], 5); got != None {
		t.Errorf("AncestorAt(c,5) = %d, want None", got)
	}
}

func TestLCA(t *testing.T) {
	tr, ids := sample(t)
	cases := []struct{ u, v, want string }{
		{"c", "d", "a"},
		{"c", "e", "r"},
		{"a", "c", "a"},
		{"b", "e", "r"},
		{"r", "r", "r"},
	}
	for _, c := range cases {
		if got := tr.LCA(ids[c.u], ids[c.v]); got != ids[c.want] {
			t.Errorf("LCA(%s,%s) = %d, want %s", c.u, c.v, got, c.want)
		}
		if got := tr.LCA(ids[c.v], ids[c.u]); got != ids[c.want] {
			t.Errorf("LCA(%s,%s) = %d, want %s (symmetric)", c.v, c.u, got, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	tr, ids := sample(t)
	cl := tr.Clone()
	if !Isomorphic(tr, cl) {
		t.Fatal("clone not isomorphic to original")
	}
	// Mutating the clone's internals must not affect the original.
	cl.labels[ids["a"]] = "zz"
	if l := tr.MustLabel(ids["a"]); l != "a" {
		t.Fatalf("original mutated through clone: label(a) = %q", l)
	}
}

func TestStringDeterministic(t *testing.T) {
	// Two trees differing only in sibling insertion order print the same.
	b1 := NewBuilder()
	r1 := b1.Root("r")
	b1.Child(r1, "x")
	b1.Child(r1, "y")
	t1 := b1.MustBuild()

	b2 := NewBuilder()
	r2 := b2.Root("r")
	b2.Child(r2, "y")
	b2.Child(r2, "x")
	t2 := b2.MustBuild()

	if t1.String() != t2.String() {
		t.Fatalf("String not order independent: %q vs %q", t1, t2)
	}
	if (&Tree{}).String() != "()" {
		t.Fatalf("empty String = %q", (&Tree{}).String())
	}
}
