package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// brute computes the optimum by trying all permutations (n ≤ 8).
func brute(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestSolveKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	asg, total := Solve(cost)
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5", total)
	}
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range asg {
		if seen[j] {
			t.Fatal("column assigned twice")
		}
		seen[j] = true
		sum += cost[i][j]
	}
	if sum != total {
		t.Fatalf("assignment sums to %v, reported %v", sum, total)
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	if asg, total := Solve(nil); len(asg) != 0 || total != 0 {
		t.Fatal("empty matrix wrong")
	}
	if asg, total := Solve([][]float64{{7}}); asg[0] != 0 || total != 7 {
		t.Fatalf("1x1: %v %v", asg, total)
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total := Solve(cost)
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func TestSolveNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve([][]float64{{1, 2}, {3}})
}

func TestSolveAgainstBruteForce(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := int(size)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(41) - 20)
			}
		}
		_, got := Solve(cost)
		want := brute(cost)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveIsValidPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	asg, _ := Solve(cost)
	seen := make([]bool, n)
	for _, j := range asg {
		if j < 0 || j >= n || seen[j] {
			t.Fatalf("invalid assignment %v", asg)
		}
		seen[j] = true
	}
}
