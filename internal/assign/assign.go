// Package assign solves the minimum-cost assignment problem (Hungarian
// algorithm with potentials, O(n³)). It is the matching substrate of the
// constrained unordered tree edit distance in internal/editdist: at every
// pair of internal nodes the children's subtrees must be matched at
// minimum total cost.
package assign

import (
	"fmt"
	"math"
)

// Solve returns a minimum-cost perfect assignment for the square cost
// matrix: result[i] = column assigned to row i, plus the total cost.
// Solve panics when the matrix is not square; an empty matrix yields an
// empty assignment at cost 0. Costs may be any finite float64s,
// including negative; +Inf marks forbidden pairs (allowed as long as a
// finite perfect assignment exists).
func Solve(cost [][]float64) ([]int, float64) {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			panic(fmt.Sprintf("assign: row %d has %d entries, want %d", i, len(row), n))
		}
	}
	if n == 0 {
		return nil, 0
	}
	// Hungarian algorithm with row/column potentials and 1-based
	// internal indexing (classical e-maxx formulation).
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	result := make([]int, n)
	total := 0.0
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			result[p[j]-1] = j - 1
			total += cost[p[j]-1][j-1]
		}
	}
	return result, total
}
