package core

import (
	"treemine/internal/tree"
)

// MineDP computes the same ItemSet as Mine with the dynamic-programming
// strategy the paper's §7 proposes investigating: a single postorder pass
// maintains, for every node, a histogram of labeled-descendant counts by
// relative depth (up to the deepest level any qualified pair can reach).
// When the pass leaves a node, the histograms of its child subtrees are
// combined — cross products between different children at the depth
// combination each distance dictates — and then merged (shifted one level
// down) into the node's own histogram.
//
// Compared to Mine it never materializes node pairs and never walks
// ancestor chains, trading the O(pairs) enumeration for
// O(n · maxLevel · |labels at a level|) histogram arithmetic; on trees
// with many repeated labels (phylogenies mined at the Table 2 defaults)
// it does strictly less work. The histograms run on interned symbol IDs
// and the items accumulate under packed keys; distances beyond
// MaxPackedDist fall back to Mine. The result is always identical to
// Mine's — property-tested in dp_test.go.
func MineDP(t *tree.Tree, opts Options) ItemSet {
	if !packable(opts.MaxDist) {
		return Mine(t, opts)
	}
	if opts.MaxDist < 0 || t.Size() == 0 {
		return make(ItemSet)
	}
	syms := NewSymbols()
	syms.InternTree(t)
	_, maxJ := opts.MaxDist.Levels()
	d := &dpMiner{t: t, opts: opts, syms: syms, maxJ: maxJ, items: make(ISet)}
	d.visit(t.Root())
	return d.items.ToItemSet(syms, opts.MinOccur)
}

// depthHist[d] maps symbol → count of labeled descendants at relative
// depth d+1 (depth 0 of the slice is one edge below the owner).
type depthHist []map[uint32]int32

type dpMiner struct {
	t     *tree.Tree
	opts  Options
	syms  *Symbols
	maxJ  int
	items ISet
}

// visit returns the depth histogram of n's subtree, relative to n,
// truncated to maxJ levels: index 0 holds the labels of n's children,
// index k the labels k+1 edges below n. n's own label is the caller's
// concern (it enters the parent's histogram at index 0).
func (d *dpMiner) visit(n tree.NodeID) depthHist {
	kids := d.t.Children(n)
	if len(kids) == 0 {
		return nil
	}
	hists := make([]depthHist, len(kids))
	for i, k := range kids {
		sub := d.visit(k)
		// Shift down one level: k itself lands at depth 1 below n.
		h := make(depthHist, 0, d.maxJ)
		top := map[uint32]int32{}
		if l, ok := d.t.Label(k); ok {
			id, _ := d.syms.Lookup(l)
			top[id] = 1
		}
		h = append(h, top)
		for depth := 0; depth < len(sub) && len(h) < d.maxJ; depth++ {
			h = append(h, sub[depth])
		}
		hists[i] = h
	}
	d.combine(hists)
	return d.merge(hists)
}

// combine counts, for every distance d ≤ maxdist, the symbol pairs formed
// between depth-i entries of one child histogram and depth-j entries of
// another (i, j as Dist.Levels dictates).
func (d *dpMiner) combine(hists []depthHist) {
	if len(hists) < 2 {
		return
	}
	for _, dist := range ValidDistances(d.opts.MaxDist) {
		i, j := dist.Levels()
		for c1 := 0; c1 < len(hists); c1++ {
			h1 := hists[c1].at(i)
			if h1 == nil {
				continue
			}
			start := 0
			if i == j {
				start = c1 + 1
			}
			for c2 := start; c2 < len(hists); c2++ {
				if c2 == c1 {
					continue
				}
				h2 := hists[c2].at(j)
				if h2 == nil {
					continue
				}
				for s1, n1 := range h1 {
					for s2, n2 := range h2 {
						d.items[NewIKey(s1, s2, dist)] += n1 * n2
					}
				}
			}
		}
	}
}

// at returns the histogram at 1-based depth, or nil when out of range or
// empty.
func (h depthHist) at(depth int) map[uint32]int32 {
	if depth < 1 || depth > len(h) || len(h[depth-1]) == 0 {
		return nil
	}
	return h[depth-1]
}

// merge folds the child histograms into one, reusing the largest child's
// maps where possible.
func (d *dpMiner) merge(hists []depthHist) depthHist {
	// Merge into the deepest histogram to minimize map copying.
	best := 0
	for i := range hists {
		if len(hists[i]) > len(hists[best]) {
			best = i
		}
	}
	out := hists[best]
	for i, h := range hists {
		if i == best {
			continue
		}
		for depth := range h {
			if len(h[depth]) == 0 {
				continue
			}
			if len(out[depth]) == 0 {
				out[depth] = h[depth]
				continue
			}
			for s, c := range h[depth] {
				out[depth][s] += c
			}
		}
	}
	return out
}
