package core

import "math/bits"

// accum accumulates per-item counts over interned symbol pairs. For small
// alphabets it is a flat dense table indexed by (dist, symA, symB) with
// distance-major layout and rows padded to whole 64-symbol words — cell
// (dc·l + a)·rowLen + b with rowLen = 64·⌈l/64⌉ — so the symbol-vector
// sweeps of levelvec.go write consecutive cells of one row, and a row's
// 64-cell segments align exactly with the occupancy bitset words the
// sweeps walk (which is what lets their inner loops index segments with
// a provably-in-range masked bit offset, free of bounds checks). Larger
// alphabets fall back to a map keyed by packed IKey. Both modes reuse
// their storage across init calls, which is what lets a pooled miner do
// near-zero allocation on repeat mining.
//
// Dense cells are tracked for O(distinct) drain by two mechanisms that
// coexist in one pass:
//
//   - add (the pair-enumeration and merge path) appends each cell to a
//     touched list, decoded at drain time with precomputed magic
//     dividers (Granlund–Montgomery) instead of hardware divisions;
//   - the blocked sweeps mark whole rows at once by OR-ing their masked
//     occupancy words into a per-row cell bitmap (rows, nw words per
//     row), with a dirty-row list for the drain scan. Row and bit
//     position recover (dist, a, b) with shifts only — no division.
//
// Drain consumes every cell it reads, so a cell visited by both
// mechanisms is reported once and zero cells are skipped either way.
type accum struct {
	l, nd   int     // symbol count and distance-slot count of the dense table
	nw      int     // bitmap words per row: ceil(l/64)
	rowLen  int     // padded dense row length: nw*64
	dense   []int32 // len l*nd*rowLen when dense, nil when in map mode
	touched []int32 // cells recorded by add that may hold a nonzero count
	rows    []uint64
	dirty   []int32 // dirty rows as dc<<16|a (l ≤ 1024 in dense mode)
	rowBits []uint64
	divRow  divider // magic divider by rowLen for touched-cell decode
	divL    divider // magic divider by l
	m       ISet    // map mode storage
}

// maxDenseCells caps the dense table size (4 MiB of int32 cells); beyond
// it the accumulator switches to map mode.
const maxDenseCells = 1 << 20

// init prepares the accumulator for an alphabet of l symbols and nd
// distance slots. Storage is reused when capacity allows. The dense
// table, row bitmap, and dirty tracking all rely on the invariant that
// drain and discard zero everything they visited, so reused buffers are
// already clear.
func (ac *accum) init(l, nd int) {
	ac.l, ac.nd = l, nd
	ac.touched = ac.touched[:0]
	ac.dirty = ac.dirty[:0]
	ac.nw = (l + 63) / 64
	ac.rowLen = ac.nw * 64
	cells := int64(l) * int64(nd) * int64(ac.rowLen)
	if cells <= maxDenseCells {
		if int64(cap(ac.dense)) < cells {
			ac.dense = make([]int32, cells)
		}
		ac.dense = ac.dense[:cells]
		nrw := l * nd * ac.nw
		if cap(ac.rows) < nrw {
			ac.rows = make([]uint64, nrw)
		}
		ac.rows = ac.rows[:nrw]
		nrb := (l*nd + 63) / 64
		if cap(ac.rowBits) < nrb {
			ac.rowBits = make([]uint64, nrb)
		}
		ac.rowBits = ac.rowBits[:nrb]
		ac.divRow = newDivider(uint32(ac.rowLen))
		ac.divL = newDivider(uint32(l))
		ac.m = nil
		return
	}
	ac.dense = nil
	if ac.m == nil {
		ac.m = make(ISet)
	} else {
		clear(ac.m)
	}
}

// add accumulates n occurrences of the unordered symbol pair (a, b) at
// distance slot dc. In map mode dc must be at most MaxPackedDist (as a
// distance); dense mode has no such limit.
func (ac *accum) add(a, b uint32, dc int, n int32) {
	if ac.m != nil {
		ac.m[NewIKey(a, b, Dist(dc))] += n
		return
	}
	if b < a {
		a, b = b, a
	}
	cell := (dc*ac.l+int(a))*ac.rowLen + int(b)
	old := ac.dense[cell]
	if old == 0 {
		ac.touched = append(ac.touched, int32(cell))
	}
	ac.dense[cell] = old + n
}

// bump subtracts (or adds) directly into a dense cell that the current
// level-pair's totals sweep has already marked. It is the symbol-vector
// path's same-child correction and MUST run after the sweep: every
// correction cell is covered by the sweep's occupancy pattern, so bump
// can skip the bitmap and dirty bookkeeping entirely. A cell reduced
// back to zero is skipped by drain.
func (ac *accum) bump(a, b uint32, dc int, n int32) {
	if b < a {
		a, b = b, a
	}
	ac.dense[(dc*ac.l+int(a))*ac.rowLen+int(b)] += n
}

// markRow records a dirty bitmap row exactly once per drain cycle.
func (ac *accum) markRow(row, dc int, a uint32) {
	w := &ac.rowBits[row>>6]
	if bit := uint64(1) << (row & 63); *w&bit == 0 {
		*w |= bit
		ac.dirty = append(ac.dirty, int32(dc)<<16|int32(a))
	}
}

// drain calls f once per item with a nonzero count and resets the
// accumulator. The touched list may carry duplicates (a cell that
// dropped back to zero and was re-added) and may overlap the bitmap
// rows; consuming each cell as it is read makes both harmless.
func (ac *accum) drain(f func(a, b uint32, dc int, n int32)) {
	if ac.m != nil {
		for k, n := range ac.m {
			if n != 0 {
				a, b := k.Syms()
				f(a, b, int(k.Dist()), n)
			}
		}
		clear(ac.m)
		return
	}
	for _, cell := range ac.touched {
		n := ac.dense[cell]
		if n == 0 {
			continue
		}
		ac.dense[cell] = 0
		c := uint32(cell)
		row := ac.divRow.div(c)
		dc := ac.divL.div(row)
		f(row-dc*uint32(ac.l), c-row*uint32(ac.rowLen), int(dc), n)
	}
	ac.touched = ac.touched[:0]
	for _, e := range ac.dirty {
		dc, a := int(e>>16), uint32(e&0xffff)
		row := dc*ac.l + int(a)
		ac.rowBits[row>>6] &^= 1 << (row & 63)
		base, start := row*ac.nw, row*ac.rowLen
		for w := 0; w < ac.nw; w++ {
			bw := ac.rows[base+w]
			if bw == 0 {
				continue
			}
			ac.rows[base+w] = 0
			for bw != 0 {
				b := uint32(w<<6 + bits.TrailingZeros64(bw))
				bw &= bw - 1
				cell := start + int(b)
				if n := ac.dense[cell]; n != 0 {
					ac.dense[cell] = 0
					f(a, b, dc, n)
				}
			}
		}
	}
	ac.dirty = ac.dirty[:0]
}

// discard resets the accumulator without reporting its contents. Unlike
// drain it never decodes cells: touched cells are zeroed directly and
// dirty bitmap rows are cleared with one memclr per row.
func (ac *accum) discard() {
	if ac.m != nil {
		clear(ac.m)
		return
	}
	for _, cell := range ac.touched {
		ac.dense[cell] = 0
	}
	ac.touched = ac.touched[:0]
	for _, e := range ac.dirty {
		row := int(e>>16)*ac.l + int(e&0xffff)
		ac.rowBits[row>>6] &^= 1 << (row & 63)
		base, start := row*ac.nw, row*ac.rowLen
		// Clear only the 64-cell segments whose bitmap word has bits:
		// a row is rarely dirty across its whole width.
		for w := 0; w < ac.nw; w++ {
			if ac.rows[base+w] == 0 {
				continue
			}
			ac.rows[base+w] = 0
			o := start + w<<6
			clear(ac.dense[o : o+64])
		}
	}
	ac.dirty = ac.dirty[:0]
}

// divider divides a uint32 by a fixed divisor with a multiply and a
// shift (Granlund–Montgomery round-up method): for d not a power of
// two, m = ⌊2^s/d⌋+1 with s = 31+⌈log₂ d⌉ satisfies m·d ∈ [2^s, 2^s+2^ℓ],
// which makes (n·m)>>s exact for all n < 2³¹. Powers of two shift
// directly (mul 0 flags that mode).
type divider struct {
	mul   uint64
	shift uint
}

func newDivider(d uint32) divider {
	if d == 0 {
		return divider{mul: 0, shift: 0} // unused; guards the l=0 degenerate table
	}
	if d&(d-1) == 0 {
		return divider{mul: 0, shift: uint(bits.TrailingZeros32(d))}
	}
	s := 31 + uint(bits.Len32(d-1))
	return divider{mul: (uint64(1)<<s)/uint64(d) + 1, shift: s}
}

func (dv divider) div(n uint32) uint32 {
	if dv.mul == 0 {
		return n >> dv.shift
	}
	return uint32((uint64(n) * dv.mul) >> dv.shift)
}
