package core

// accum accumulates per-item counts over interned symbol pairs. For small
// alphabets it is a flat dense table indexed by (symA, symB, dist) with a
// touched-cell list, so one add is an array increment and draining or
// resetting costs O(distinct items) rather than O(table). Larger
// alphabets fall back to a map keyed by packed IKey. Both modes reuse
// their storage across init calls, which is what lets a pooled miner do
// near-zero allocation on repeat mining.
type accum struct {
	l, nd   int     // symbol count and distance-slot count of the dense table
	dense   []int32 // len l*l*nd when dense, nil when in map mode
	touched []int32 // dense cells that may hold a nonzero count
	m       ISet    // map mode storage
}

// maxDenseCells caps the dense table size (4 MiB of int32 cells); beyond
// it the accumulator switches to map mode.
const maxDenseCells = 1 << 20

// init prepares the accumulator for an alphabet of l symbols and nd
// distance slots. Storage is reused when capacity allows. The dense table
// relies on the invariant that drain zeroes every cell it visited, so a
// reused buffer is already clear.
func (ac *accum) init(l, nd int) {
	ac.l, ac.nd = l, nd
	ac.touched = ac.touched[:0]
	cells := int64(l) * int64(l) * int64(nd)
	if cells <= maxDenseCells {
		if int64(cap(ac.dense)) < cells {
			ac.dense = make([]int32, cells)
		}
		ac.dense = ac.dense[:cells]
		ac.m = nil
		return
	}
	ac.dense = nil
	if ac.m == nil {
		ac.m = make(ISet)
	} else {
		clear(ac.m)
	}
}

// add accumulates n occurrences of the unordered symbol pair (a, b) at
// distance slot dc. In map mode dc must be at most MaxPackedDist (as a
// distance); dense mode has no such limit.
func (ac *accum) add(a, b uint32, dc int, n int32) {
	if ac.m != nil {
		ac.m[NewIKey(a, b, Dist(dc))] += n
		return
	}
	if b < a {
		a, b = b, a
	}
	cell := (int(a)*ac.l+int(b))*ac.nd + dc
	old := ac.dense[cell]
	if old == 0 {
		ac.touched = append(ac.touched, int32(cell))
	}
	ac.dense[cell] = old + n
}

// drain calls f once per item with a nonzero count and resets the
// accumulator. The touched list may carry duplicates (a cell that dropped
// back to zero and was re-added); consuming each cell as it is read makes
// the duplicates harmless.
func (ac *accum) drain(f func(a, b uint32, dc int, n int32)) {
	if ac.m != nil {
		for k, n := range ac.m {
			if n != 0 {
				a, b := k.Syms()
				f(a, b, int(k.Dist()), n)
			}
		}
		clear(ac.m)
		return
	}
	for _, cell := range ac.touched {
		n := ac.dense[cell]
		if n == 0 {
			continue
		}
		ac.dense[cell] = 0
		c := int(cell)
		pair := c / ac.nd
		f(uint32(pair/ac.l), uint32(pair%ac.l), c%ac.nd, n)
	}
	ac.touched = ac.touched[:0]
}

// discard resets the accumulator without reporting its contents.
func (ac *accum) discard() {
	ac.drain(func(uint32, uint32, int, int32) {})
}
