package core

import (
	"fmt"
	"sort"
	"sync"

	"treemine/internal/tree"
)

// SupportShard is a mergeable partial result of Multiple_Tree_Mining: the
// per-pair support counts of some subset of a forest, together with the
// shard's own incrementally grown symbol table. Shards are the unit of
// streamed and distributed forest mining — workers each fold their slice
// of the stream into a private shard, shards merge pairwise (symbol IDs
// are remapped through labels, so shards built over disjoint label sets
// combine correctly), and Finalize renders the merged counts into the
// same sorted FrequentPair output MineForest produces. Partial shards
// serialize through internal/store's version-3 format, which is what
// lets a long mining run checkpoint and resume.
//
// All methods are safe for concurrent use; AddTree from many goroutines
// contends on one mutex, so for throughput prefer private shards merged
// afterwards (what MineForestStream does internally).
type SupportShard struct {
	mu    sync.Mutex
	opts  ForestOptions
	trees int

	// Packed mode (opts.MaxDist ≤ MaxPackedDist): counts keyed by IKey
	// over the shard-local symbol table.
	syms *Symbols
	sup  map[IKey]int64

	// Generic mode (beyond MaxPackedDist): counts keyed by string Key.
	gsup map[Key]int64
}

// NewSupportShard returns an empty shard accumulating support under opts.
// Every shard that will ever be merged with it must be built with equal
// options.
func NewSupportShard(opts ForestOptions) *SupportShard {
	sh := &SupportShard{opts: opts}
	if packable(opts.MaxDist) {
		sh.syms = NewSymbols()
		sh.sup = make(map[IKey]int64)
	} else {
		sh.gsup = make(map[Key]int64)
	}
	return sh
}

// Options returns the mining options the shard accumulates under.
func (sh *SupportShard) Options() ForestOptions { return sh.opts }

// Trees returns the number of trees folded into the shard so far,
// including trees contributed by merged shards.
func (sh *SupportShard) Trees() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.trees
}

// Len returns the number of distinct support entries currently held —
// the quantity that bounds a shard's memory, independent of how many
// trees streamed through it.
func (sh *SupportShard) Len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup != nil {
		return len(sh.sup)
	}
	return len(sh.gsup)
}

// AddTree mines t under the shard's options and folds its qualifying
// items into the support counts: +1 per item t contains with occurrence
// ≥ MinOccur, de-duplicated per label pair when IgnoreDist is set. New
// labels are interned into the shard's own symbol table as they appear —
// no up-front whole-forest symbol pass is needed, which is what makes
// shards streamable.
func (sh *SupportShard) AddTree(t *tree.Tree) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.trees++
	if sh.sup != nil {
		sh.addTreePacked(t)
		return
	}
	items := Mine(t, sh.opts.Options)
	if sh.opts.IgnoreDist {
		items = items.IgnoreDist()
	}
	for k := range items {
		sh.gsup[k]++
	}
}

// addTreePacked is the interned hot path: intern t's labels, mine through
// a pooled miner sharing the shard's table, and fold the per-tree items
// into sup.
func (sh *SupportShard) addTreePacked(t *tree.Tree) {
	sh.syms.InternTree(t)
	m := getMiner(t, sh.opts.Options, sh.syms)
	defer m.release()
	if m.maxJ == 0 {
		return
	}
	m.acc.init(sh.syms.Len(), m.nd)
	m.accumulate(&m.acc)
	minOccur := sh.opts.MinOccur
	sup := sh.sup
	if sh.opts.IgnoreDist {
		// Collapse the tree's distances first so each label pair counts
		// one support regardless of how many distances realize it.
		m.wild.init(sh.syms.Len(), 1)
		wild := &m.wild
		m.acc.drain(func(a, b uint32, dc int, n int32) {
			if int(n) >= minOccur {
				wild.add(a, b, 0, 1)
			}
		})
		wild.drain(func(a, b uint32, dc int, n int32) {
			sup[NewIKey(a, b, DistWild)]++
		})
		return
	}
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		if int(n) >= minOccur {
			sup[NewIKey(a, b, Dist(dc))]++
		}
	})
}

// Merge folds other's counts and tree tally into sh. The two shards'
// options must be equal; symbol IDs are remapped through their labels
// (cross-table symbol translation), so the shards may have been built
// over different (even disjoint) label sets in any order — Merge is
// commutative and associative in the final counts. other is read under
// its own lock and left unchanged; the two locks are never held
// together, so concurrent AddTree and Merge calls on any shard
// arrangement cannot deadlock.
//
// Merge is the in-memory half of distributed mining: worker processes
// each mine a tree range into a private shard, and the coordinator folds
// them — in any association order — into one master whose canonical
// Snapshot is identical to a single-process run's.
func (sh *SupportShard) Merge(other *SupportShard) error {
	if other.opts != sh.opts {
		return fmt.Errorf("core: merging shards with different options (%+v vs %+v)", other.opts, sh.opts)
	}
	otherTrees, labels, items := other.snapshotLocal()
	return sh.FoldTranslated(otherTrees, labels, items)
}

// FoldTranslated folds support entries coded against a foreign label
// table into sh: trees is added to the tally, and each item's symbol
// indices are translated through labels into sh's own table. It is the
// primitive Merge and the spill/merge streaming paths share — a batch
// folds under one lock acquisition, with the label translation vector
// built once per call. Items referencing labels out of range are
// rejected (the batch may have come from a corrupt file), though entries
// folded before the offending one remain — callers treating a fold error
// as fatal should discard sh.
func (sh *SupportShard) FoldTranslated(trees int, labels []string, items []ShardItem) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.trees += trees
	if sh.sup != nil {
		trans := make([]uint32, len(labels))
		for i, l := range labels {
			trans[i] = sh.syms.Intern(l)
		}
		for _, it := range items {
			if int(it.A) >= len(labels) || int(it.B) >= len(labels) {
				return fmt.Errorf("core: fold: symbol id out of range (%d labels)", len(labels))
			}
			sh.sup[NewIKey(trans[it.A], trans[it.B], it.D)] += it.N
		}
		return nil
	}
	for _, it := range items {
		if int(it.A) >= len(labels) || int(it.B) >= len(labels) {
			return fmt.Errorf("core: fold: symbol id out of range (%d labels)", len(labels))
		}
		sh.gsup[NewKey(labels[it.A], labels[it.B], it.D)] += it.N
	}
	return nil
}

// snapshotLocal exports the shard's state without canonicalizing: labels
// in intern order, items in map order coded against them. It is the O(n)
// export Merge uses — the canonical Snapshot sorts twice, which matters
// when merging every round of a streaming run.
func (sh *SupportShard) snapshotLocal() (trees int, labels []string, items []ShardItem) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	trees = sh.trees
	if sh.sup != nil {
		labels = make([]string, sh.syms.Len())
		for id := range labels {
			labels[id] = sh.syms.Label(uint32(id))
		}
		items = make([]ShardItem, 0, len(sh.sup))
		for k, n := range sh.sup {
			a, b := k.Syms()
			items = append(items, ShardItem{A: a, B: b, D: k.Dist(), N: n})
		}
		return trees, labels, items
	}
	syms := NewSymbols()
	items = make([]ShardItem, 0, len(sh.gsup))
	for k, n := range sh.gsup {
		items = append(items, ShardItem{A: syms.Intern(k.A), B: syms.Intern(k.B), D: k.D, N: n})
	}
	labels = make([]string, syms.Len())
	for id := range labels {
		labels[id] = syms.Label(uint32(id))
	}
	return trees, labels, items
}

// DrainSorted exports and clears the shard's current support entries:
// the items come back coded against the shard's own symbol table, sorted
// by (A, B, D), and the count map is reset while the symbol table and
// tree tally stay — so symbol IDs remain stable across successive
// drains. This is the spill primitive: an out-of-core accumulator drains
// the resident counts to a sorted on-disk run whenever they grow past
// its budget, and the union of all drained runs (summed per key) equals
// the counts an undrained shard would hold. Only packed shards
// (MaxDist ≤ MaxPackedDist) support draining: a generic shard has no
// persistent table to keep IDs stable against.
func (sh *SupportShard) DrainSorted() ([]ShardItem, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.sup == nil {
		return nil, fmt.Errorf("core: drain: shard mined past MaxPackedDist has no stable symbol table")
	}
	items := make([]ShardItem, 0, len(sh.sup))
	for k, n := range sh.sup {
		a, b := k.Syms()
		items = append(items, ShardItem{A: a, B: b, D: k.Dist(), N: n})
	}
	sortShardItems(items)
	clear(sh.sup)
	return items, nil
}

// LocalLabels returns the shard's label table in intern (symbol ID)
// order — the table DrainSorted items are coded against. Generic shards
// return nil (they keep string keys, not a table).
func (sh *SupportShard) LocalLabels() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.syms == nil {
		return nil
	}
	labels := make([]string, sh.syms.Len())
	for id := range labels {
		labels[id] = sh.syms.Label(uint32(id))
	}
	return labels
}

// Finalize renders the accumulated counts into the public result: the
// pairs with support ≥ minsup, sorted by decreasing support then key —
// exactly MineForest's output shape. The shard is left intact, so a
// streaming pipeline can checkpoint intermediate results and keep
// mining. minsup ≤ 1 reports every accumulated pair.
func (sh *SupportShard) Finalize(minsup int) []FrequentPair {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var out []FrequentPair
	if sh.sup != nil {
		for k, n := range sh.sup {
			if int(n) >= minsup {
				out = append(out, FrequentPair{Key: k.Key(sh.syms), Support: int(n)})
			}
		}
	} else {
		for k, n := range sh.gsup {
			if int(n) >= minsup {
				out = append(out, FrequentPair{Key: k, Support: int(n)})
			}
		}
	}
	SortFrequentPairs(out)
	return out
}

// ShardItem is one serialized support entry: two indices into the
// snapshot's label table, a distance (DistWild under IgnoreDist), and
// the tree count.
type ShardItem struct {
	A, B uint32
	D    Dist
	N    int64
}

// Snapshot exports the shard's state for serialization in canonical
// form: its options, tree tally, the label table sorted
// lexicographically, and the support entries re-coded against that
// sorted table, ordered by (A, B, D). Canonicalizing erases intern
// order — which depends on tree arrival order, worker interleaving, and
// merge association — so two shards holding the same logical counts
// snapshot identically no matter how they were assembled. That is the
// invariant distributed mining's differential proof rests on: a master
// merged from any partitioning serializes to the same v3 bytes as a
// single-process run.
func (sh *SupportShard) Snapshot() (opts ForestOptions, trees int, labels []string, items []ShardItem) {
	var local []string
	opts = sh.opts
	trees, local, items = sh.snapshotLocal()
	labels, trans := canonicalLabels(local)
	for i := range items {
		a, b := trans[items[i].A], trans[items[i].B]
		if b < a {
			a, b = b, a
		}
		items[i].A, items[i].B = a, b
	}
	sortShardItems(items)
	return opts, trees, labels, items
}

// canonicalLabels sorts a label table lexicographically and returns the
// translation vector from old IDs to canonical ranks.
func canonicalLabels(local []string) (sorted []string, trans []uint32) {
	sorted = append([]string(nil), local...)
	sort.Strings(sorted)
	rank := make(map[string]uint32, len(sorted))
	for i, l := range sorted {
		rank[l] = uint32(i)
	}
	trans = make([]uint32, len(local))
	for i, l := range local {
		trans[i] = rank[l]
	}
	return sorted, trans
}

func sortShardItems(items []ShardItem) {
	sort.Slice(items, func(i, j int) bool {
		x, y := items[i], items[j]
		if x.A != y.A {
			return x.A < y.A
		}
		if x.B != y.B {
			return x.B < y.B
		}
		return x.D < y.D
	})
}

// RestoreShard rebuilds a shard from a Snapshot-shaped export, validating
// every reference so corrupt serialized input surfaces as an error and
// never as a panic or an invalid shard.
func RestoreShard(opts ForestOptions, trees int, labels []string, items []ShardItem) (*SupportShard, error) {
	if trees < 0 {
		return nil, fmt.Errorf("core: restore shard: negative tree count %d", trees)
	}
	if len(labels) > MaxSymbols {
		return nil, fmt.Errorf("core: restore shard: %d labels exceed the symbol space", len(labels))
	}
	sh := NewSupportShard(opts)
	sh.trees = trees
	if sh.sup != nil {
		for i, l := range labels {
			if id := sh.syms.Intern(l); id != uint32(i) {
				return nil, fmt.Errorf("core: restore shard: duplicate label %q", l)
			}
		}
	}
	for _, it := range items {
		if int(it.A) >= len(labels) || int(it.B) >= len(labels) {
			return nil, fmt.Errorf("core: restore shard: symbol id out of range")
		}
		if it.N < 1 {
			return nil, fmt.Errorf("core: restore shard: non-positive count %d", it.N)
		}
		if opts.IgnoreDist != it.D.IsWild() {
			return nil, fmt.Errorf("core: restore shard: distance %s inconsistent with IgnoreDist=%v", it.D, opts.IgnoreDist)
		}
		if !it.D.IsWild() && (it.D < 0 || it.D > opts.MaxDist) {
			return nil, fmt.Errorf("core: restore shard: distance %s beyond maxdist %s", it.D, opts.MaxDist)
		}
		if sh.sup != nil {
			sh.sup[NewIKey(it.A, it.B, it.D)] += it.N
		} else {
			sh.gsup[NewKey(labels[it.A], labels[it.B], it.D)] += it.N
		}
	}
	return sh, nil
}
