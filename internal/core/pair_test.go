package core

import (
	"reflect"
	"testing"
)

func TestNewKeyCanonical(t *testing.T) {
	k1 := NewKey("b", "a", D(1))
	k2 := NewKey("a", "b", D(1))
	if k1 != k2 {
		t.Fatalf("keys differ: %v vs %v", k1, k2)
	}
	if k1.A != "a" || k1.B != "b" {
		t.Fatalf("labels not sorted: %v", k1)
	}
	if got := k1.String(); got != "(a, b, 0.5)" {
		t.Fatalf("Key.String = %q", got)
	}
}

func TestItemString(t *testing.T) {
	it := Item{Key: NewKey("a", "c", D(1)), Occur: 2}
	if got := it.String(); got != "(a, c, 0.5, 2)" {
		t.Fatalf("Item.String = %q", got)
	}
}

func TestItemsSorted(t *testing.T) {
	s := ItemSet{
		NewKey("b", "a", D(0)): 1,
		NewKey("a", "a", D(2)): 3,
		NewKey("a", "b", D(2)): 2,
	}
	items := s.Items()
	want := []Item{
		{NewKey("a", "a", D(2)), 3},
		{NewKey("a", "b", D(0)), 1},
		{NewKey("a", "b", D(2)), 2},
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Items = %v, want %v", items, want)
	}
}

func TestViews(t *testing.T) {
	// Mirrors the paper's example: a pair occurring once at distance 0
	// and once at distance 1 yields (pair, *, 2) when the distance is
	// ignored and (pair, d, *) singletons when occurrences are ignored.
	s := ItemSet{
		NewKey("a", "c", D(0)): 1,
		NewKey("a", "c", D(2)): 1,
		NewKey("b", "c", D(0)): 3,
	}
	id := s.IgnoreDist()
	if got := id[Key{"a", "c", DistWild}]; got != 2 {
		t.Errorf("IgnoreDist (a,c,*) = %d, want 2", got)
	}
	if got := id[Key{"b", "c", DistWild}]; got != 3 {
		t.Errorf("IgnoreDist (b,c,*) = %d, want 3", got)
	}
	io := s.IgnoreOccur()
	if len(io) != 3 {
		t.Errorf("IgnoreOccur size = %d, want 3", len(io))
	}
	for k, n := range io {
		if n != 1 {
			t.Errorf("IgnoreOccur[%v] = %d, want 1", k, n)
		}
	}
	lp := s.LabelPairs()
	if len(lp) != 2 {
		t.Errorf("LabelPairs size = %d, want 2", len(lp))
	}
	if got := lp[Key{"a", "c", DistWild}]; got != 1 {
		t.Errorf("LabelPairs (a,c) = %d, want 1", got)
	}
}

func TestFilterMinOccur(t *testing.T) {
	s := ItemSet{
		NewKey("a", "b", D(0)): 1,
		NewKey("a", "c", D(0)): 3,
	}
	f := s.FilterMinOccur(2)
	if len(f) != 1 {
		t.Fatalf("filtered size = %d, want 1", len(f))
	}
	if _, ok := f[NewKey("a", "c", D(0))]; !ok {
		t.Fatal("surviving item missing")
	}
}

func TestMultisetOps(t *testing.T) {
	// Footnote 2 of the paper: ∩ keeps min counts, ∪ keeps max counts.
	s1 := ItemSet{NewKey("a", "c", D(1)): 2, NewKey("x", "y", D(0)): 1}
	s2 := ItemSet{NewKey("a", "c", D(1)): 1, NewKey("p", "q", D(0)): 4}
	inter := s1.Intersect(s2)
	if len(inter) != 1 || inter[NewKey("a", "c", D(1))] != 1 {
		t.Fatalf("Intersect = %v", inter)
	}
	union := s1.Union(s2)
	if len(union) != 3 || union[NewKey("a", "c", D(1))] != 2 ||
		union[NewKey("p", "q", D(0))] != 4 {
		t.Fatalf("Union = %v", union)
	}
	if got := union.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if got := (ItemSet{}).Total(); got != 0 {
		t.Fatalf("empty Total = %d", got)
	}
}

func TestMinDistOf(t *testing.T) {
	s := ItemSet{
		NewKey("a", "c", D(3)): 1,
		NewKey("a", "c", D(1)): 1,
		NewKey("b", "c", D(0)): 1,
	}
	if d, ok := s.MinDistOf("c", "a"); !ok || d != D(1) {
		t.Fatalf("MinDistOf(c,a) = (%v,%v), want (0.5,true)", d, ok)
	}
	if _, ok := s.MinDistOf("a", "z"); ok {
		t.Fatal("MinDistOf on absent pair should miss")
	}
}
