package core

import (
	"testing"
)

func TestDistString(t *testing.T) {
	cases := []struct {
		d    Dist
		want string
	}{
		{D(0), "0"}, {D(1), "0.5"}, {D(2), "1"}, {D(3), "1.5"},
		{D(4), "2"}, {D(5), "2.5"}, {DistWild, "*"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Dist(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestDistFromFloat(t *testing.T) {
	for f, want := range map[float64]Dist{0: 0, 0.5: 1, 1: 2, 1.5: 3, 2: 4} {
		got, err := DistFromFloat(f)
		if err != nil || got != want {
			t.Errorf("DistFromFloat(%v) = %v, %v; want %v", f, got, err, want)
		}
	}
	for _, bad := range []float64{-1, 0.25, 1.7} {
		if _, err := DistFromFloat(bad); err == nil {
			t.Errorf("DistFromFloat(%v): expected error", bad)
		}
	}
}

func TestParseDist(t *testing.T) {
	cases := map[string]Dist{"0": 0, "0.5": 1, " 1.5 ": 3, "*": DistWild, " * ": DistWild}
	for s, want := range cases {
		got, err := ParseDist(s)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-0.5", "0.3"} {
		if _, err := ParseDist(bad); err == nil {
			t.Errorf("ParseDist(%q): expected error", bad)
		}
	}
}

func TestDistHalfAndWild(t *testing.T) {
	if D(0).Half() || !D(1).Half() || D(2).Half() || !D(3).Half() {
		t.Error("Half wrong")
	}
	if !DistWild.IsWild() || D(0).IsWild() {
		t.Error("IsWild wrong")
	}
	if DistWild.Half() {
		t.Error("wildcard is not half")
	}
}

func TestLevels(t *testing.T) {
	// Paper Eq. 1–3: distance 0 → (1,1); 0.5 → (1,2); 1 → (2,2);
	// 1.5 → (2,3); 2 → (3,3).
	cases := []struct{ d, i, j int }{
		{0, 1, 1}, {1, 1, 2}, {2, 2, 2}, {3, 2, 3}, {4, 3, 3}, {5, 3, 4},
	}
	for _, c := range cases {
		i, j := D(c.d).Levels()
		if i != c.i || j != c.j {
			t.Errorf("Dist(%s).Levels() = (%d,%d), want (%d,%d)", D(c.d), i, j, c.i, c.j)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Levels on wildcard should panic")
		}
	}()
	DistWild.Levels()
}

func TestDistOf(t *testing.T) {
	cases := []struct {
		hu, hv int
		want   Dist
		ok     bool
	}{
		{1, 1, D(0), true},  // siblings
		{1, 2, D(1), true},  // aunt–niece
		{2, 1, D(1), true},  // symmetric
		{2, 2, D(2), true},  // first cousins
		{2, 3, D(3), true},  // first cousins once removed
		{3, 3, D(4), true},  // second cousins
		{3, 4, D(5), true},  // second cousins once removed
		{1, 3, 0, false},    // twice removed: undefined
		{4, 1, 0, false},
	}
	for _, c := range cases {
		got, ok := DistOf(c.hu, c.hv)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("DistOf(%d,%d) = (%v,%v), want (%v,%v)", c.hu, c.hv, got, ok, c.want, c.ok)
		}
	}
}

func TestLevelsRoundTrip(t *testing.T) {
	// Levels and DistOf are inverse: DistOf(Levels(d)) == d.
	for d := Dist(0); d <= 10; d++ {
		i, j := d.Levels()
		got, ok := DistOf(i, j)
		if !ok || got != d {
			t.Errorf("DistOf(Levels(%s)) = (%v,%v)", d, got, ok)
		}
	}
}

func TestValidDistances(t *testing.T) {
	got := ValidDistances(D(3))
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("ValidDistances(1.5) = %v", got)
	}
	if got := ValidDistances(DistWild); got != nil {
		t.Fatalf("ValidDistances(wild) = %v, want nil", got)
	}
}

func TestDefaultOptions(t *testing.T) {
	// Table 2 of the paper.
	o := DefaultOptions()
	if o.MaxDist != D(3) || o.MinOccur != 1 {
		t.Fatalf("DefaultOptions = %+v, want maxdist 1.5, minoccur 1", o)
	}
	fo := DefaultForestOptions()
	if fo.MinSup != 2 || fo.MaxDist != D(3) || fo.MinOccur != 1 {
		t.Fatalf("DefaultForestOptions = %+v", fo)
	}
}
