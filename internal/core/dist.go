// Package core implements the cousin-pair mining algorithms of Shasha,
// Wang & Zhang, "Unordered Tree Mining with Applications to Phylogeny"
// (ICDE 2004): cousin distances, cousin pair items, Single_Tree_Mining
// and Multiple_Tree_Mining, and the derived similarity and tree-distance
// measures used in the paper's phylogenetic applications.
//
// # Cousin distance
//
// For two labeled nodes u, v of a rooted unordered labeled tree, neither
// an ancestor of the other, let a = lca(u,v) and let hu, hv be the depths
// of u and v below a. The cousin distance is
//
//	hu − 1            if hu = hv
//	min(hu,hv) − 0.5  if |hu − hv| = 1
//	undefined         otherwise
//
// so siblings are at distance 0, aunt–niece pairs at 0.5, first cousins
// at 1, and so on. Distances are half-integer; the Dist type stores twice
// the distance in an int so all arithmetic stays exact.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Dist is a cousin distance stored as twice its value: Dist(0) is
// distance 0 (siblings), Dist(1) is 0.5 (aunt–niece), Dist(2) is 1
// (first cousins), Dist(3) is 1.5, …
type Dist int

// DistWild marks the "don't care" distance used when aggregating cousin
// pair items across distances (the paper's "*" placeholder).
const DistWild Dist = -1

// D returns the Dist for the given number of distance halves; D(2*k)
// is distance k, D(2*k+1) is k+0.5. It is a readable literal constructor
// for tests and examples: D(0)=0, D(1)=0.5, D(3)=1.5.
func D(halves int) Dist { return Dist(halves) }

// DistFromFloat converts a float distance (0, 0.5, 1, 1.5, …) to a Dist.
// It returns an error when f is negative or not a multiple of 0.5.
func DistFromFloat(f float64) (Dist, error) {
	h := f * 2
	if h < 0 || h != float64(int(h)) {
		return 0, fmt.Errorf("core: invalid cousin distance %v (must be a non-negative multiple of 0.5)", f)
	}
	return Dist(int(h)), nil
}

// ParseDist parses a distance string such as "0", "0.5", "1.5", or "*"
// (wildcard).
func ParseDist(s string) (Dist, error) {
	if strings.TrimSpace(s) == "*" {
		return DistWild, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("core: invalid cousin distance %q: %w", s, err)
	}
	return DistFromFloat(f)
}

// Float returns the distance as a float64; DistWild returns NaN-free -0.5
// which callers should never see if they check IsWild first.
func (d Dist) Float() float64 { return float64(d) / 2 }

// IsWild reports whether d is the wildcard distance.
func (d Dist) IsWild() bool { return d < 0 }

// Half reports whether d is a "removed" (half-integer) distance such as
// 0.5 or 1.5, i.e. the two cousins are one generation apart.
func (d Dist) Half() bool { return d >= 0 && d%2 == 1 }

// String formats the distance the way the paper prints it: "0", "0.5",
// "1", "1.5", or "*" for the wildcard.
func (d Dist) String() string {
	if d.IsWild() {
		return "*"
	}
	if d%2 == 0 {
		return strconv.Itoa(int(d / 2))
	}
	return strconv.Itoa(int(d/2)) + ".5"
}

// Levels returns the paper's my_level and my_cousin_level for distance d:
// the number of edges i to walk up from the first cousin to the LCA, and
// the number of edges j to walk down to the second cousin. For integer
// distances i = j = d+1; for half distances j = i+1 (Eq. 1–3 of the
// paper). Levels panics on the wildcard distance.
func (d Dist) Levels() (i, j int) {
	if d.IsWild() {
		panic("core: Levels on wildcard distance")
	}
	i = int(d)/2 + 1
	j = i
	if d.Half() {
		j++
	}
	return i, j
}

// DistOf returns the cousin distance of two nodes whose depths below
// their LCA are hu and hv (both ≥ 1), and whether it is defined: the
// distance is undefined when the generations differ by more than one.
func DistOf(hu, hv int) (Dist, bool) {
	if hu > hv {
		hu, hv = hv, hu
	}
	switch hv - hu {
	case 0:
		return Dist(2 * (hu - 1)), true
	case 1:
		return Dist(2*(hu-1) + 1), true
	default:
		return 0, false
	}
}

// ValidDistances returns all defined distance values 0, 0.5, 1, …, up to
// and including maxDist.
func ValidDistances(maxDist Dist) []Dist {
	if maxDist < 0 {
		return nil
	}
	out := make([]Dist, maxDist+1)
	for i := range out {
		out[i] = Dist(i)
	}
	return out
}
