package core

import (
	"fmt"
	"sort"
)

// Posting is one entry of a Profile: a packed item key and its projected
// occurrence count.
type Posting struct {
	Key IKey
	N   int32
}

// keyPosting is Posting's string-keyed twin for option sets beyond the
// packable range.
type keyPosting struct {
	Key Key
	N   int32
}

// Profile is a tree's cousin-pair item multiset projected under one
// Variant and frozen into a sorted posting list with a cached total.
// Freezing happens once per tree; after that, the tree distance between
// two profiles is a single allocation-free linear merge-join
// (TDistProfiles) instead of the per-pair map rebuilds and hash probes
// that TDistItems/TDistISets pay. This is the flat per-object summary
// that all-pairs work wants: TreeMiner's scope lists and FREQT's
// per-tree occurrence lists play the same role.
//
// A profile is either packed (posting list of IKeys over a Symbols
// table) or string-keyed (beyond MaxPackedDist); the two kinds cannot be
// compared against each other. Profiles are immutable once built and
// safe for concurrent reads.
type Profile struct {
	posts  []Posting    // packed postings, sorted ascending by Key
	sposts []keyPosting // string-keyed postings, sorted by CompareKeys
	packed bool
	total  int64 // multiset cardinality of the projected view
}

// Len returns the number of distinct postings.
func (p *Profile) Len() int {
	if p.packed {
		return len(p.posts)
	}
	return len(p.sposts)
}

// Total returns the multiset cardinality of the projected view (the
// |cpi(T)| the tdist denominator uses).
func (p *Profile) Total() int64 { return p.total }

// NewProfileISet freezes an interned item multiset (all keys from one
// Symbols table) into a packed profile under the variant. The projection
// mirrors ISet.view but lands directly in the sorted posting list, with
// no intermediate map.
func NewProfileISet(s ISet, v Variant) *Profile {
	p := &Profile{packed: true}
	if len(s) == 0 {
		return p
	}
	posts := make([]Posting, 0, len(s))
	for k, n := range s {
		switch v {
		case VariantLabel, VariantOccur:
			a, b := k.Syms()
			c := n
			if v == VariantLabel {
				c = 1
			}
			posts = append(posts, Posting{Key: NewIKey(a, b, DistWild), N: c})
		case VariantDist:
			posts = append(posts, Posting{Key: k, N: 1})
		case VariantDistOccur:
			posts = append(posts, Posting{Key: k, N: n})
		default:
			panic(fmt.Sprintf("core: unknown variant %d", int(v)))
		}
	}
	sort.Slice(posts, func(i, j int) bool { return posts[i].Key < posts[j].Key })
	// Compact runs of equal keys (distinct distances collapsing onto one
	// wildcard key): counts sum, and set-valued views clamp to 1 —
	// exactly the IgnoreDist/IgnoreOccur composition of Variant.view.
	out := posts[:0]
	for _, pt := range posts {
		if len(out) > 0 && out[len(out)-1].Key == pt.Key {
			out[len(out)-1].N += pt.N
			continue
		}
		out = append(out, pt)
	}
	if v == VariantLabel {
		for i := range out {
			out[i].N = 1
		}
	}
	p.posts = out
	for _, pt := range out {
		p.total += int64(pt.N)
	}
	return p
}

// NewProfileItems freezes a string-keyed item set into a profile under
// the variant — the fallback for option sets packed keys cannot
// represent.
func NewProfileItems(s ItemSet, v Variant) *Profile {
	p := &Profile{}
	view := v.view(s)
	if len(view) == 0 {
		return p
	}
	p.sposts = make([]keyPosting, 0, len(view))
	for k, n := range view {
		p.sposts = append(p.sposts, keyPosting{Key: k, N: int32(n)})
		p.total += int64(n)
	}
	sort.Slice(p.sposts, func(i, j int) bool {
		return CompareKeys(p.sposts[i].Key, p.sposts[j].Key) < 0
	})
	return p
}

// TDistProfiles is the cousin-based tree distance of Eq. 6 computed from
// two frozen profiles of the same variant by a linear merge-join over
// their sorted posting lists: Σ min over shared keys gives |∩|, and
// |∪| = total₁ + total₂ − |∩|. It allocates nothing and never hashes —
// the all-pairs hot path of TDistMatrixParallel and the kernel search
// runs entirely here. Both profiles must come from the same engine
// (same Symbols table when packed); mixing a packed and a string-keyed
// profile panics unless one side is empty.
func TDistProfiles(p, q *Profile) float64 {
	var inter int64
	switch {
	case p.Len() == 0 || q.Len() == 0:
		// Nothing shared; fall through to the union check.
	case p.packed != q.packed:
		panic("core: TDistProfiles on profiles of different key kinds")
	case p.packed:
		a, b := p.posts, q.posts
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			ka, kb := a[i].Key, b[j].Key
			switch {
			case ka < kb:
				i++
			case ka > kb:
				j++
			default:
				n := a[i].N
				if b[j].N < n {
					n = b[j].N
				}
				inter += int64(n)
				i++
				j++
			}
		}
	default:
		a, b := p.sposts, q.sposts
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch CompareKeys(a[i].Key, b[j].Key) {
			case -1:
				i++
			case 1:
				j++
			default:
				n := a[i].N
				if b[j].N < n {
					n = b[j].N
				}
				inter += int64(n)
				i++
				j++
			}
		}
	}
	union := p.total + q.total - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}
