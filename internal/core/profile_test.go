package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestProfileTDistDifferential pins the merge-join distance to both
// existing implementations: for random tree pairs, across all four
// variants and a MaxDist sweep crossing the packable boundary,
// TDistProfiles ≡ TDistItems ≡ TDistISets ≡ TDist, bit for bit (all
// four compute 1 − |∩|/|∪| from exact integer cardinalities, so float
// equality is the correct assertion).
func TestProfileTDistDifferential(t *testing.T) {
	f := func(seed int64, size1, size2, alpha, maxD, minOcc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := randAlphaTree(rng, int(size1)%40+1, int(alpha)%6+1)
		t2 := randAlphaTree(rng, int(size2)%40+1, int(alpha)%6+1)
		opts := Options{MaxDist: Dist(int(maxD) % 20), MinOccur: int(minOcc)%3 + 1}
		s1, s2 := Mine(t1, opts), Mine(t2, opts)
		for _, v := range allVariants {
			want := TDistItems(s1, s2, v)
			if got := TDist(t1, t2, v, opts); got != want {
				t.Logf("%v opts=%+v: TDist %v != TDistItems %v", v, opts, got, want)
				return false
			}
			if got := TDistProfiles(NewProfileItems(s1, v), NewProfileItems(s2, v)); got != want {
				t.Logf("%v opts=%+v: string profiles %v != TDistItems %v", v, opts, got, want)
				return false
			}
			if !packable(opts.MaxDist) {
				continue
			}
			syms := NewSymbols()
			syms.InternTree(t1)
			syms.InternTree(t2)
			i1, i2 := MineISet(t1, opts, syms), MineISet(t2, opts, syms)
			if got := TDistISets(i1, i2, v); got != want {
				t.Logf("%v opts=%+v: TDistISets %v != TDistItems %v", v, opts, got, want)
				return false
			}
			if got := TDistProfiles(NewProfileISet(i1, v), NewProfileISet(i2, v)); got != want {
				t.Logf("%v opts=%+v: packed profiles %v != TDistItems %v", v, opts, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestProfileTotalsMatchViews checks the cached totals against the view
// maps they replace, and that posting lists are sorted and duplicate-free
// (the merge-join's invariants).
func TestProfileTotalsMatchViews(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		tr := randAlphaTree(rng, rng.Intn(50)+2, rng.Intn(5)+1)
		opts := DefaultOptions()
		syms := NewSymbols()
		syms.InternTree(tr)
		is := MineISet(tr, opts, syms)
		items := Mine(tr, opts)
		for _, v := range allVariants {
			p := NewProfileISet(is, v)
			if want := int64(v.view(items).Total()); p.Total() != want {
				t.Fatalf("%v: Total %d != view total %d", v, p.Total(), want)
			}
			if want := len(v.view(items)); p.Len() != want {
				t.Fatalf("%v: Len %d != view len %d", v, p.Len(), want)
			}
			for i := 1; i < len(p.posts); i++ {
				if p.posts[i-1].Key >= p.posts[i].Key {
					t.Fatalf("%v: postings not strictly sorted at %d", v, i)
				}
			}
			sp := NewProfileItems(items, v)
			for i := 1; i < len(sp.sposts); i++ {
				if CompareKeys(sp.sposts[i-1].Key, sp.sposts[i].Key) >= 0 {
					t.Fatalf("%v: string postings not strictly sorted at %d", v, i)
				}
			}
		}
	}
}

// TestTDistProfilesZeroAlloc is the regression gate on the pairwise
// inner loop: one profile-to-profile distance must allocate nothing, on
// both the packed and the string-keyed kinds. This is what keeps
// cluster.TDistMatrix and the kernel search from drifting back onto
// per-pair map rebuilds.
func TestTDistProfilesZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	t1 := randAlphaTree(rng, 60, 4)
	t2 := randAlphaTree(rng, 60, 4)
	packedOpts := DefaultOptions()
	syms := NewSymbols()
	syms.InternTree(t1)
	syms.InternTree(t2)
	p1 := NewProfileISet(MineISet(t1, packedOpts, syms), VariantDistOccur)
	p2 := NewProfileISet(MineISet(t2, packedOpts, syms), VariantDistOccur)
	if p1.Len() == 0 || p2.Len() == 0 {
		t.Fatal("fixture mined empty profiles")
	}
	if n := testing.AllocsPerRun(100, func() { TDistProfiles(p1, p2) }); n != 0 {
		t.Errorf("packed TDistProfiles allocates %v per op, want 0", n)
	}
	stringOpts := Options{MaxDist: MaxPackedDist + 2, MinOccur: 1}
	q1 := NewProfileItems(Mine(t1, stringOpts), VariantDistOccur)
	q2 := NewProfileItems(Mine(t2, stringOpts), VariantDistOccur)
	if n := testing.AllocsPerRun(100, func() { TDistProfiles(q1, q2) }); n != 0 {
		t.Errorf("string TDistProfiles allocates %v per op, want 0", n)
	}
}

// TestTDistProfilesKindMismatch: comparing a packed against a
// string-keyed profile is a programming error and must panic — unless
// one side is empty, in which case the distance is well defined without
// looking at any key.
func TestTDistProfilesKindMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randAlphaTree(rng, 30, 3)
	syms := NewSymbols()
	syms.InternTree(tr)
	packed := NewProfileISet(MineISet(tr, DefaultOptions(), syms), VariantDistOccur)
	str := NewProfileItems(Mine(tr, DefaultOptions()), VariantDistOccur)
	if packed.Len() == 0 || str.Len() == 0 {
		t.Fatal("fixture mined empty profiles")
	}
	if got := TDistProfiles(packed, &Profile{}); got != 1 {
		t.Fatalf("packed vs empty = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mixed-kind TDistProfiles did not panic")
		}
	}()
	TDistProfiles(packed, str)
}
