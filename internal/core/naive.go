package core

import (
	"treemine/internal/tree"
	"treemine/internal/lca"
)

// NaiveMine computes the same ItemSet as Mine by brute force: it examines
// every unordered pair of labeled nodes, computes their LCA with an LCA
// index, derives the cousin distance from the two depths, and filters.
// It is Θ(n²) regardless of output size and exists as the correctness
// oracle for Mine/MineCounts (the paper's §7 contrasts this "take random
// pairs and see what kind of cousins they are" approach with the guided
// enumeration the miner uses) and as the baseline in the ablation
// benchmarks.
func NaiveMine(t *tree.Tree, opts Options) ItemSet {
	items := make(ItemSet)
	nodes := t.LabeledNodes()
	if len(nodes) < 2 {
		return items
	}
	idx := lca.New(t)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			u, v := nodes[i], nodes[j]
			a := idx.LCA(u, v)
			if a == u || a == v {
				continue // one is an ancestor of the other
			}
			hu := t.Depth(u) - t.Depth(a)
			hv := t.Depth(v) - t.Depth(a)
			d, ok := DistOf(hu, hv)
			if !ok || d > opts.MaxDist {
				continue
			}
			items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
		}
	}
	return items.FilterMinOccur(opts.MinOccur)
}
