package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

// handTree builds the fully hand-analyzed example
//
//	        r(unlabeled)
//	       /     |    \
//	      a      b     u(unlabeled)
//	     / \     |      \
//	    c   d    e       f
//	    |
//	    g
func handTree(t *testing.T) *tree.Tree {
	t.Helper()
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	a := b.Child(r, "a")
	bb := b.Child(r, "b")
	u := b.ChildUnlabeled(r)
	c := b.Child(a, "c")
	b.Child(a, "d")
	b.Child(bb, "e")
	b.Child(u, "f")
	b.Child(c, "g")
	return b.MustBuild()
}

// handItems is the complete expected item set for handTree with
// maxdist = 2, derived by hand in the test file.
func handItems() ItemSet {
	return ItemSet{
		NewKey("a", "b", D(0)): 1,
		NewKey("c", "d", D(0)): 1,
		NewKey("a", "e", D(1)): 1,
		NewKey("a", "f", D(1)): 1,
		NewKey("b", "c", D(1)): 1,
		NewKey("b", "d", D(1)): 1,
		NewKey("b", "f", D(1)): 1,
		NewKey("d", "g", D(1)): 1,
		NewKey("c", "e", D(2)): 1,
		NewKey("d", "e", D(2)): 1,
		NewKey("c", "f", D(2)): 1,
		NewKey("d", "f", D(2)): 1,
		NewKey("e", "f", D(2)): 1,
		NewKey("e", "g", D(3)): 1,
		NewKey("f", "g", D(3)): 1,
	}
}

func TestMineHandExample(t *testing.T) {
	tr := handTree(t)
	got := Mine(tr, Options{MaxDist: D(4), MinOccur: 1})
	if want := handItems(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Mine = %v\nwant %v", got.Items(), want.Items())
	}
}

func TestMineMaxDistCutoff(t *testing.T) {
	tr := handTree(t)
	got := Mine(tr, Options{MaxDist: D(1), MinOccur: 1})
	for k := range got {
		if k.D > D(1) {
			t.Errorf("item %v beyond maxdist", k)
		}
	}
	// All distance-0 and 0.5 items from the hand set must be present.
	want := 0
	for k := range handItems() {
		if k.D <= D(1) {
			want++
			if _, ok := got[k]; !ok {
				t.Errorf("missing item %v", k)
			}
		}
	}
	if len(got) != want {
		t.Errorf("got %d items, want %d", len(got), want)
	}
}

func TestMineUnlabeledExcluded(t *testing.T) {
	// Unlabeled siblings must produce no items.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.ChildUnlabeled(r)
	b.ChildUnlabeled(r)
	b.Child(r, "x")
	tr := b.MustBuild()
	got := Mine(tr, Options{MaxDist: D(4), MinOccur: 1})
	if len(got) != 0 {
		t.Fatalf("Mine = %v, want empty", got.Items())
	}
}

func TestMineRepeatedLabels(t *testing.T) {
	// Three siblings labeled "x": C(3,2)=3 sibling pairs aggregate to
	// (x,x,0,3).
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "x")
	b.Child(r, "x")
	tr := b.MustBuild()
	got := Mine(tr, DefaultOptions())
	want := ItemSet{NewKey("x", "x", D(0)): 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Mine = %v, want %v", got.Items(), want.Items())
	}
}

func TestMineMinOccurFilters(t *testing.T) {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "x")
	b.Child(r, "y")
	tr := b.MustBuild()
	// (x,x,0,1), (x,y,0,2): with minoccur 2 only (x,y) survives.
	got := Mine(tr, Options{MaxDist: D(3), MinOccur: 2})
	want := ItemSet{NewKey("x", "y", D(0)): 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Mine = %v, want %v", got.Items(), want.Items())
	}
}

func TestMineSingleNode(t *testing.T) {
	b := tree.NewBuilder()
	b.Root("solo")
	tr := b.MustBuild()
	if got := Mine(tr, DefaultOptions()); len(got) != 0 {
		t.Fatalf("Mine(single) = %v", got.Items())
	}
}

func TestMineParentChildExcluded(t *testing.T) {
	// A labeled chain has no cousin pairs at all: every pair is an
	// ancestor–descendant pair, which the paper excludes.
	b := tree.NewBuilder()
	b.Path(b.Root("a"), "b", "c", "d")
	tr := b.MustBuild()
	if got := Mine(tr, Options{MaxDist: D(10), MinOccur: 1}); len(got) != 0 {
		t.Fatalf("Mine(chain) = %v, want empty", got.Items())
	}
}

func TestMineTwiceRemovedUndefined(t *testing.T) {
	// u at depth 1 and v at depth 3 below their LCA differ by two
	// generations: no cousin distance is defined for them.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "u")
	side := b.ChildUnlabeled(r)
	deep := b.ChildUnlabeled(side)
	b.Child(deep, "v")
	tr := b.MustBuild()
	if got := Mine(tr, Options{MaxDist: D(10), MinOccur: 1}); len(got) != 0 {
		t.Fatalf("Mine = %v, want empty (twice removed)", got.Items())
	}
}

func TestMinePairsMatchesMine(t *testing.T) {
	tr := handTree(t)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	pairs := MinePairs(tr, opts)
	agg := make(ItemSet)
	seen := map[[2]tree.NodeID]bool{}
	for _, p := range pairs {
		u, v := p.U, p.V
		if v < u {
			u, v = v, u
		}
		if seen[[2]tree.NodeID{u, v}] {
			t.Fatalf("node pair (%d,%d) emitted twice", u, v)
		}
		seen[[2]tree.NodeID{u, v}] = true
		agg[NewKey(tr.MustLabel(p.U), tr.MustLabel(p.V), p.D)]++
	}
	if want := Mine(tr, opts); !reflect.DeepEqual(agg, want) {
		t.Fatalf("aggregated pairs %v != Mine %v", agg.Items(), want.Items())
	}
}

// randLabeledTree builds a random tree with labels drawn from a small
// alphabet (forcing collisions) and ~20% unlabeled nodes.
func randLabeledTree(rng *rand.Rand, n int) *tree.Tree {
	labels := []string{"a", "b", "c", "d"}
	b := tree.NewBuilder()
	if rng.Intn(2) == 0 {
		b.RootUnlabeled()
	} else {
		b.Root(labels[rng.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		p := tree.NodeID(rng.Intn(i))
		if rng.Intn(5) == 0 {
			b.ChildUnlabeled(p)
		} else {
			b.Child(p, labels[rng.Intn(len(labels))])
		}
	}
	return b.MustBuild()
}

func TestMineEquivalentToNaiveOracle(t *testing.T) {
	f := func(seed int64, size uint8, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%50 + 1
		tr := randLabeledTree(rng, n)
		opts := Options{MaxDist: Dist(maxD % 8), MinOccur: 1}
		fast := Mine(tr, opts)
		slow := NaiveMine(tr, opts)
		if !reflect.DeepEqual(fast, slow) {
			t.Logf("seed=%d n=%d maxdist=%s\nfast=%v\nslow=%v",
				seed, n, opts.MaxDist, fast.Items(), slow.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMineCountsEquivalentToMine(t *testing.T) {
	f := func(seed int64, size uint8, maxD uint8, minOcc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%60 + 1
		tr := randLabeledTree(rng, n)
		opts := Options{MaxDist: Dist(maxD % 8), MinOccur: int(minOcc%3) + 1}
		a := Mine(tr, opts)
		b := MineCounts(tr, opts)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed=%d n=%d opts=%+v\nmine=%v\ncounts=%v",
				seed, n, opts, a.Items(), b.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMineDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randLabeledTree(rng, 80)
	a := Mine(tr, DefaultOptions())
	b := Mine(tr, DefaultOptions())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mine not deterministic")
	}
}
