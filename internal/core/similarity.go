package core

import (
	"sort"

	"treemine/internal/tree"
)

// Sim is the paper's similarity score σ(C, T) between a consensus tree C
// and a source tree T (Eq. 4): over all cousin pairs cp whose label pair
// occurs in both trees,
//
//	σ(C, T) = Σ 1 / (1 + |cdist_C(cp) − cdist_T(cp)|)
//
// A shared pair at identical distances contributes 1; pairs at diverging
// distances contribute less. When a label pair occurs at several
// distances within one tree, the smallest distance represents it (the
// paper's worked example uses each pair once; the minimum is the closest
// kinship the tree asserts for the pair).
func Sim(c, t *tree.Tree, opts Options) float64 {
	if packable(opts.MaxDist) {
		syms := NewSymbols()
		syms.InternTree(c)
		syms.InternTree(t)
		return simISets(MineISet(c, opts, syms), MineISet(t, opts, syms))
	}
	ci := Mine(c, opts)
	ti := Mine(t, opts)
	return SimItems(ci, ti)
}

// SimItems computes σ from two pre-mined item sets; use it when scoring
// one consensus tree against many source trees to avoid re-mining the
// consensus tree each time.
func SimItems(ci, ti ItemSet) float64 {
	cMin := minDistIndex(ci)
	tMin := minDistIndex(ti)
	// Collect the per-pair contributions and sum them in sorted order so
	// the result is independent of map iteration order (float addition is
	// not associative) and σ(C,T) == σ(T,C) exactly.
	var terms []float64
	for pair, dc := range cMin {
		dt, ok := tMin[pair]
		if !ok {
			continue
		}
		diff := (dc - dt).Float()
		if diff < 0 {
			diff = -diff
		}
		terms = append(terms, 1/(1+diff))
	}
	sort.Float64s(terms)
	sum := 0.0
	for _, v := range terms {
		sum += v
	}
	return sum
}

// minDistIndex maps each label pair of s to its smallest cousin distance.
func minDistIndex(s ItemSet) map[[2]string]Dist {
	out := make(map[[2]string]Dist, len(s))
	for k := range s {
		if k.D.IsWild() {
			continue
		}
		p := [2]string{k.A, k.B}
		if d, ok := out[p]; !ok || k.D < d {
			out[p] = k.D
		}
	}
	return out
}

// simISets is SimItems on interned item sets sharing one symbol table:
// the per-pair minimum distances and the matching run on packed keys, so
// scoring allocates only the index maps and the term slice.
func simISets(ci, ti ISet) float64 {
	cMin := minDistISet(ci)
	tMin := minDistISet(ti)
	var terms []float64
	for pair, dc := range cMin {
		dt, ok := tMin[pair]
		if !ok {
			continue
		}
		diff := (dc - dt).Float()
		if diff < 0 {
			diff = -diff
		}
		terms = append(terms, 1/(1+diff))
	}
	sort.Float64s(terms)
	sum := 0.0
	for _, v := range terms {
		sum += v
	}
	return sum
}

// minDistISet maps each symbol pair of s (keyed with the wildcard
// distance) to its smallest concrete cousin distance.
func minDistISet(s ISet) map[IKey]Dist {
	out := make(map[IKey]Dist, len(s))
	for k := range s {
		kd := k.Dist()
		if kd.IsWild() {
			continue
		}
		a, b := k.Syms()
		p := NewIKey(a, b, DistWild)
		if d, ok := out[p]; !ok || kd < d {
			out[p] = kd
		}
	}
	return out
}

// AvgSim is the paper's average similarity score σ̄(C, S) of a consensus
// tree C with respect to the set S of source trees it was derived from
// (Eq. 5): the mean of σ(C, T) over T ∈ S. Higher is better; the paper
// uses this to rank the five classical consensus methods. AvgSim returns
// 0 for an empty set.
func AvgSim(c *tree.Tree, set []*tree.Tree, opts Options) float64 {
	if len(set) == 0 {
		return 0
	}
	if packable(opts.MaxDist) {
		syms := NewSymbols()
		syms.InternTree(c)
		for _, t := range set {
			syms.InternTree(t)
		}
		ci := MineISet(c, opts, syms)
		sum := 0.0
		for _, t := range set {
			sum += simISets(ci, MineISet(t, opts, syms))
		}
		return sum / float64(len(set))
	}
	ci := Mine(c, opts)
	sum := 0.0
	for _, t := range set {
		sum += SimItems(ci, Mine(t, opts))
	}
	return sum / float64(len(set))
}
