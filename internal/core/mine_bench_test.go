package core

import (
	"math/rand"
	"runtime"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// benchTree builds the paper's Fig6-shaped synthetic tree (Table 3
// defaults: 200 nodes, fanout 5, alphabet 200), a label-dense variant
// with a small alphabet, or a hub variant (high fanout, small alphabet)
// where wide sibling sets with repeated labels let the symbol-vector
// identity collapse many node pairs into one multiply-accumulate.
func benchTree(shape string) *tree.Tree {
	rng := rand.New(rand.NewSource(42))
	p := treegen.DefaultParams()
	switch shape {
	case "dense":
		p.AlphabetSize = 8
	case "hub":
		p.Fanout = 50
		p.AlphabetSize = 16
	}
	return treegen.Fanout(rng, p)
}

// benchAccumulate times one accumulate strategy over a warmed miner
// with a pre-interned shared symbol table (the forest configuration):
// the per-op cost is one full mining pass (bucket build included) with
// results discarded, exactly the per-tree unit of forest mining.
func benchAccumulate(b *testing.B, shape string, run func(m *miner, ac *accum)) {
	t := benchTree(shape)
	syms := NewSymbols()
	syms.InternTree(t)
	opts := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := getMiner(t, opts, syms)
		m.acc.init(m.syms.Len(), m.nd)
		run(m, &m.acc)
		m.acc.discard()
		m.release()
	}
}

// seedAccum, seedMiner, and seedAccumulatePairs below are faithful
// replicas of the pre-§48 mining unit — symbol-major accumulator cell
// layout (a·l+b)·nd+dc with a division-decoding drain, pointer-chasing
// bucket build, and per-node-pair enumeration — kept in this test file
// so the `seed` benchmark leg measures the true baseline. The §48
// rework also sped up the shared infrastructure (accumulator layout and
// drain, SoA reset), so running the seed algorithm on the reworked
// support code would understate the PR's win.
type seedAccum struct {
	l, nd   int
	dense   []int32
	touched []int32
}

func (ac *seedAccum) init(l, nd int) {
	ac.l, ac.nd = l, nd
	ac.touched = ac.touched[:0]
	cells := l * l * nd
	if cap(ac.dense) < cells {
		ac.dense = make([]int32, cells)
	}
	ac.dense = ac.dense[:cells]
}

func (ac *seedAccum) add(a, b uint32, dc int, n int32) {
	if b < a {
		a, b = b, a
	}
	cell := (int(a)*ac.l+int(b))*ac.nd + dc
	old := ac.dense[cell]
	if old == 0 {
		ac.touched = append(ac.touched, int32(cell))
	}
	ac.dense[cell] = old + n
}

// drain is a verbatim copy of the original: full decode with hardware
// divisions and an indirect per-cell callback.
func (ac *seedAccum) drain(f func(a, b uint32, dc int, n int32)) {
	for _, cell := range ac.touched {
		n := ac.dense[cell]
		if n == 0 {
			continue
		}
		ac.dense[cell] = 0
		c := int(cell)
		pair := c / ac.nd
		f(uint32(pair/ac.l), uint32(pair%ac.l), c%ac.nd, n)
	}
	ac.touched = ac.touched[:0]
}

// discard mirrors the original discard, which was drain with a no-op
// callback (the decode is not eliminable through the indirect call).
func (ac *seedAccum) discard() {
	ac.drain(func(uint32, uint32, int, int32) {})
}

// seedMiner replicates the pre-§48 miner state: AoS tree access (Parent
// pointer chasing, a separate Height walk) and the counting + fill
// bucket passes, exactly as the seed reset built them.
type seedMiner struct {
	t           *tree.Tree
	opts        Options
	maxJ, nd    int
	nodeSym     []uint32
	bucketStart []int32
	bucketFill  []int32
	flat        []tree.NodeID
}

func (m *seedMiner) reset(t *tree.Tree, opts Options, syms *Symbols) {
	m.t, m.opts = t, opts
	m.maxJ, m.nd = 0, 0
	if opts.MaxDist < 0 || t.Size() == 0 {
		return
	}
	m.nd = int(opts.MaxDist) + 1
	_, maxJ := opts.MaxDist.Levels()
	if h := t.Height(); maxJ > h {
		maxJ = h
	}
	m.maxJ = maxJ
	if maxJ == 0 {
		return
	}
	n := t.Size()
	m.nodeSym = growU32(m.nodeSym, n)
	nb := n * maxJ
	m.bucketStart = grow32(m.bucketStart, nb+1)
	m.bucketFill = grow32(m.bucketFill, nb)
	counts := m.bucketFill
	for i := range counts {
		counts[i] = 0
	}
	total := int32(0)
	for v := tree.NodeID(0); v < tree.NodeID(n); v++ {
		if !t.Labeled(v) {
			continue
		}
		id, ok := syms.Lookup(t.MustLabel(v))
		if !ok {
			panic("benchmark: label missing from shared table")
		}
		m.nodeSym[v] = id
		child, a := v, t.Parent(v)
		for depth := 1; depth <= maxJ && a != tree.None; depth++ {
			counts[int(child)*maxJ+depth-1]++
			total++
			child, a = a, t.Parent(a)
		}
	}
	m.bucketStart[0] = 0
	for i := 0; i < nb; i++ {
		m.bucketStart[i+1] = m.bucketStart[i] + counts[i]
		m.bucketFill[i] = m.bucketStart[i]
	}
	m.flat = growNodeID(m.flat, int(total))
	for v := tree.NodeID(0); v < tree.NodeID(n); v++ {
		if !t.Labeled(v) {
			continue
		}
		child, a := v, t.Parent(v)
		for depth := 1; depth <= maxJ && a != tree.None; depth++ {
			b := int(child)*maxJ + depth - 1
			m.flat[m.bucketFill[b]] = v
			m.bucketFill[b]++
			child, a = a, t.Parent(a)
		}
	}
}

func (m *seedMiner) bucket(c tree.NodeID, depth int) []tree.NodeID {
	b := int(c)*m.maxJ + depth - 1
	return m.flat[m.bucketStart[b]:m.bucketStart[b+1]]
}

// seedAccumulatePairs is the seed per-pair enumeration (the body of the
// original accumulate) against the replica accumulator.
func seedAccumulatePairs(m *seedMiner, ac *seedAccum) {
	if m.maxJ == 0 {
		return
	}
	t, nodeSym := m.t, m.nodeSym
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break
			}
			dc := int(d)
			for x1, c1 := range kids {
				us := m.bucket(c1, i)
				if len(us) == 0 {
					continue
				}
				start := 0
				if i == j {
					start = x1 + 1
				}
				for x2 := start; x2 < len(kids); x2++ {
					if x2 == x1 {
						continue
					}
					vs := m.bucket(kids[x2], j)
					if len(vs) == 0 {
						continue
					}
					for _, u := range us {
						su := nodeSym[u]
						for _, v := range vs {
							ac.add(su, nodeSym[v], dc, 1)
						}
					}
				}
			}
		}
	}
}

// BenchmarkMineCore is the ablation suite of the §48 rework: seed
// pair enumeration (against the replica of the original accumulator)
// vs symbol-vector counting vs the word-blocked sweep, at the Fig6
// shape (mostly distinct labels — the hard case for the counting
// identity) and a label-dense shape (its best case).
func BenchmarkMineCore(b *testing.B) {
	for _, shape := range []string{"fig6", "dense", "hub"} {
		b.Run(shape+"/seed", func(b *testing.B) {
			t := benchTree(shape)
			syms := NewSymbols()
			syms.InternTree(t)
			opts := DefaultOptions()
			var sm seedMiner
			var sac seedAccum
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sm.reset(t, opts, syms)
				sac.init(syms.Len(), sm.nd)
				seedAccumulatePairs(&sm, &sac)
				sac.discard()
			}
		})
		b.Run(shape+"/symvec", func(b *testing.B) {
			benchAccumulate(b, shape, func(m *miner, ac *accum) { m.accumulateSymVec(ac) })
		})
		b.Run(shape+"/blocked", func(b *testing.B) {
			benchAccumulate(b, shape, func(m *miner, ac *accum) { m.accumulateBlocked(ac) })
		})
	}
}

// BenchmarkMineCoreForest measures forest-scale throughput of the full
// entry points over a 200-tree Fig6 pool, serial and parallel at 1, 4,
// and GOMAXPROCS workers.
func BenchmarkMineCoreForest(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	trees := make([]*tree.Tree, 200)
	for i := range trees {
		trees[i] = treegen.Fanout(rng, treegen.DefaultParams())
	}
	opts := DefaultForestOptions()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MineForest(trees, opts)
		}
	})
	workers := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		b.Run("parallel/"+itoa(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MineForestParallel(trees, opts, w)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
