package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"treemine/internal/tree"
)

// TestSupportShardMatchesMineForest folds a forest into one shard
// serially and checks the finalized output against MineForest, in both
// key modes and under IgnoreDist.
func TestSupportShardMatchesMineForest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	forest := randForest(rng, 20, 40, 5)
	for _, maxD := range []Dist{D(3), MaxPackedDist + 3} {
		for _, ignore := range []bool{false, true} {
			opts := ForestOptions{
				Options:    Options{MaxDist: maxD, MinOccur: 1},
				MinSup:     2,
				IgnoreDist: ignore,
			}
			sh := buildShard(forest, opts)
			if got, want := sh.Finalize(opts.MinSup), MineForest(forest, opts); !reflect.DeepEqual(got, want) {
				t.Fatalf("maxD=%v ignore=%v: shard %v != MineForest %v", maxD, ignore, got, want)
			}
			if sh.Trees() != len(forest) {
				t.Fatalf("Trees() = %d, want %d", sh.Trees(), len(forest))
			}
			if sh.Len() == 0 {
				t.Fatal("Len() = 0 on a mined shard")
			}
		}
	}
}

// TestSupportShardMergeRejectsMismatchedOptions pins the guard against
// combining shards mined under different parameters.
func TestSupportShardMergeRejectsMismatchedOptions(t *testing.T) {
	a := NewSupportShard(ForestOptions{Options: Options{MaxDist: D(3), MinOccur: 1}, MinSup: 2})
	b := NewSupportShard(ForestOptions{Options: Options{MaxDist: D(5), MinOccur: 1}, MinSup: 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across different options accepted")
	}
}

// TestSupportShardConcurrentAddTree hammers one shard with AddTree from
// many goroutines — the mutex must serialize symbol interning and count
// updates so the result is exactly the serial one. Run under -race this
// is the shard half of the `make race` gate.
func TestSupportShardConcurrentAddTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	forest := randForest(rng, 64, 40, 6)
	opts := ForestOptions{Options: Options{MaxDist: D(3), MinOccur: 1}, MinSup: 2}
	want := MineForest(forest, opts)

	sh := NewSupportShard(opts)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(forest); i += workers {
				sh.AddTree(forest[i])
			}
		}(w)
	}
	wg.Wait()
	if got := sh.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent AddTree diverged: %d vs %d pairs", len(got), len(want))
	}
	if sh.Trees() != len(forest) {
		t.Fatalf("Trees() = %d, want %d", sh.Trees(), len(forest))
	}
}

// TestSupportShardConcurrentMergeAndAddTree interleaves Merge into a
// master shard with direct AddTree calls on it from other goroutines —
// the mixed write pattern a streaming checkpoint pipeline produces.
func TestSupportShardConcurrentMergeAndAddTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	forest := randForest(rng, 60, 35, 5)
	opts := ForestOptions{Options: Options{MaxDist: D(3), MinOccur: 1}, MinSup: 2}
	want := MineForest(forest, opts)

	// First 20 trees go in directly; the rest arrive as 8 merged shards.
	master := NewSupportShard(opts)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			master.AddTree(forest[i])
		}(i)
	}
	rest := forest[20:]
	const parts = 8
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sh := NewSupportShard(opts)
			for i := p; i < len(rest); i += parts {
				sh.AddTree(rest[i])
			}
			if err := master.Merge(sh); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	if got := master.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent merge+add diverged: %d vs %d pairs", len(got), len(want))
	}
	if master.Trees() != len(forest) {
		t.Fatalf("Trees() = %d, want %d", master.Trees(), len(forest))
	}
}

// genIterator deterministically generates trees on demand — a corpus
// that never exists in memory as a whole, for the bounded-memory and
// streaming tests.
type genIterator struct {
	rng   *rand.Rand
	n, i  int
	size  int
	alpha int
}

func newGenIterator(seed int64, n, size, alpha int) *genIterator {
	return &genIterator{rng: rand.New(rand.NewSource(seed)), n: n, size: size, alpha: alpha}
}

func (g *genIterator) Next() (*tree.Tree, error) {
	if g.i >= g.n {
		return nil, io.EOF
	}
	g.i++
	return randAlphaTree(g.rng, g.size, g.alpha), nil
}

// TestMineForestStreamGenerator checks the streamed miner over a
// generated corpus against materialize-then-MineForest, at the scale the
// acceptance gate names (≥ 5000 trees when not -short).
func TestMineForestStreamGenerator(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 600
	}
	const seed, size, alpha = 99, 60, 40
	opts := DefaultForestOptions()

	streamFP, err := MineForestStream(newGenIterator(seed, n, size, alpha), opts, 4)
	if err != nil {
		t.Fatal(err)
	}

	it := newGenIterator(seed, n, size, alpha)
	forest := make([]*tree.Tree, 0, n)
	for {
		tr, err := it.Next()
		if err != nil {
			break
		}
		forest = append(forest, tr)
	}
	want := MineForest(forest, opts)
	if !reflect.DeepEqual(streamFP, want) {
		t.Fatalf("stream over %d generated trees: %d pairs != %d pairs", n, len(streamFP), len(want))
	}
}

// liveHeap returns the live heap after a full GC.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestMineForestStreamBoundedMemory is the acceptance gate for the
// streaming pipeline's memory claim: over a ≥5000-tree forest the
// streamed miner's peak live heap (sampled at checkpoints, after the
// round's trees are released) must stay well below the heap the
// materialized forest itself occupies, while the output stays byte-
// identical to MineForest's. The measured ratio is logged and recorded
// in BENCH_2.json.
func TestMineForestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-bound measurement needs the full 5000-tree run")
	}
	const n, seed, size, alpha = 5000, 41, 100, 50
	opts := DefaultForestOptions()

	base := liveHeap()
	var peak uint64
	cfg := StreamConfig{
		Workers:         4,
		BatchSize:       32,
		CheckpointEvery: 500,
		Checkpoint: func(*SupportShard) error {
			if h := liveHeap(); h > peak {
				peak = h
			}
			return nil
		},
	}
	sh, err := MineForestStreamShard(newGenIterator(seed, n, size, alpha), opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamFP := sh.Finalize(opts.MinSup)
	streamPeak := int64(peak) - int64(base)
	if streamPeak < 0 {
		streamPeak = 0
	}

	// Now materialize the same corpus and measure what the in-memory
	// approach must hold live before mining even starts.
	it := newGenIterator(seed, n, size, alpha)
	forest := make([]*tree.Tree, 0, n)
	for {
		tr, err := it.Next()
		if err != nil {
			break
		}
		forest = append(forest, tr)
	}
	forestHeap := int64(liveHeap()) - int64(base)
	want := MineForest(forest, opts)
	runtime.KeepAlive(forest)

	if !reflect.DeepEqual(streamFP, want) {
		t.Fatalf("streamed output differs from MineForest: %d vs %d pairs", len(streamFP), len(want))
	}
	if forestHeap <= 0 {
		t.Fatalf("implausible forest heap measurement %d", forestHeap)
	}
	ratio := float64(streamPeak) / float64(forestHeap)
	t.Logf("stream peak live heap %d B, materialized forest %d B, ratio %.3f", streamPeak, forestHeap, ratio)
	if ratio > 0.5 {
		t.Fatalf("stream peak live heap %.3f of the materialized forest; want ≤ 0.5 (bounded by shard size)", ratio)
	}
}

// TestMineForestStreamCheckpointResume cuts a stream off midway,
// round-trips the partial shard through Snapshot/Restore (what the store
// checkpoint file does), and finishes on a fresh iterator with SkipTrees
// — the result must equal the uninterrupted run.
func TestMineForestStreamCheckpointResume(t *testing.T) {
	const n, seed, size, alpha = 300, 13, 30, 6
	opts := DefaultForestOptions()
	want, err := MineForestStream(newGenIterator(seed, n, size, alpha), opts, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: consume only the first 140 trees.
	firstHalf := newGenIterator(seed, 140, size, alpha)
	partial, err := MineForestStreamShard(firstHalf, opts, StreamConfig{Workers: 2, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Trees() != 140 {
		t.Fatalf("partial shard holds %d trees, want 140", partial.Trees())
	}
	o, trees, labels, items := partial.Snapshot()
	restored, err := RestoreShard(o, trees, labels, items)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: replay the whole stream, skipping what phase 1 mined.
	sh, err := MineForestStreamShard(newGenIterator(seed, n, size, alpha), opts, StreamConfig{
		Workers:   2,
		BatchSize: 16,
		Resume:    restored,
		SkipTrees: restored.Trees(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Trees() != n {
		t.Fatalf("resumed shard holds %d trees, want %d", sh.Trees(), n)
	}
	if got := sh.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed run differs: %d vs %d pairs", len(got), len(want))
	}
}

// TestMineForestStreamResumeOptionsMismatch pins the guard that a resume
// shard mined under different options is rejected up front.
func TestMineForestStreamResumeOptionsMismatch(t *testing.T) {
	shard := NewSupportShard(ForestOptions{Options: Options{MaxDist: D(5), MinOccur: 1}, MinSup: 2})
	_, err := MineForestStreamShard(NewSliceIterator(nil), DefaultForestOptions(), StreamConfig{Resume: shard})
	if err == nil {
		t.Fatal("mismatched resume options accepted")
	}
}

// TestStreamCheckpointCadence counts checkpoint callbacks: one per
// CheckpointEvery trees plus the final flush, and the error path aborts
// the stream.
func TestStreamCheckpointCadence(t *testing.T) {
	const n = 100
	opts := DefaultForestOptions()
	calls := 0
	_, err := MineForestStreamShard(newGenIterator(3, n, 20, 5), opts, StreamConfig{
		Workers:         1,
		BatchSize:       10,
		CheckpointEvery: 30,
		Checkpoint:      func(sh *SupportShard) error { calls++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds of 10 trees, checkpoint every ≥30: at 30, 60, 90, and the
	// final 100.
	if calls != 4 {
		t.Fatalf("checkpoint calls = %d, want 4", calls)
	}

	wantErr := fmt.Errorf("disk full")
	_, err = MineForestStreamShard(newGenIterator(3, n, 20, 5), opts, StreamConfig{
		Workers:         1,
		BatchSize:       10,
		CheckpointEvery: 30,
		Checkpoint:      func(sh *SupportShard) error { return wantErr },
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("checkpoint error not propagated: %v", err)
	}
}
