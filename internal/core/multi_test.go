package core

import (
	"math/rand"
	"testing"

	"treemine/internal/tree"
)

func TestMineForestEmpty(t *testing.T) {
	if got := MineForest(nil, DefaultForestOptions()); len(got) != 0 {
		t.Fatalf("MineForest(nil) = %v", got)
	}
}

func TestMineForestMinSupOne(t *testing.T) {
	// With minsup 1 every item of every tree appears.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "y")
	t1 := b.MustBuild()
	opts := DefaultForestOptions()
	opts.MinSup = 1
	got := MineForest([]*tree.Tree{t1}, opts)
	if len(got) != 1 || got[0].Key != NewKey("x", "y", D(0)) || got[0].Support != 1 {
		t.Fatalf("MineForest = %v", got)
	}
}

func TestMineForestSortedBySupport(t *testing.T) {
	mk := func(labels ...string) *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		for _, l := range labels {
			b.Child(r, l)
		}
		return b.MustBuild()
	}
	forest := []*tree.Tree{
		mk("p", "q", "r"), // pairs pq, pr, qr
		mk("p", "q"),      // pq
		mk("p", "q"),      // pq
		mk("q", "r"),      // qr
	}
	opts := DefaultForestOptions()
	got := MineForest(forest, opts)
	if len(got) != 2 {
		t.Fatalf("MineForest = %v, want pq(3), qr(2)", got)
	}
	if got[0].Key != NewKey("p", "q", D(0)) || got[0].Support != 3 {
		t.Errorf("first = %v, want (p,q,0) support 3", got[0])
	}
	if got[1].Key != NewKey("q", "r", D(0)) || got[1].Support != 2 {
		t.Errorf("second = %v, want (q,r,0) support 2", got[1])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Support > got[i-1].Support {
			t.Fatal("not sorted by support")
		}
	}
}

func TestMineForestMinOccurInteraction(t *testing.T) {
	// minoccur applies within each tree before support counting: a tree
	// containing a pair only once does not support it when minoccur = 2.
	mkOnce := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "x")
		b.Child(r, "y")
		return b.MustBuild()
	}
	mkTwice := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "x")
		b.Child(r, "x")
		b.Child(r, "y")
		return b.MustBuild()
	}
	forest := []*tree.Tree{mkOnce(), mkTwice(), mkTwice()}
	opts := DefaultForestOptions()
	opts.MinOccur = 2
	got := MineForest(forest, opts)
	// Only (x,y,0) with occurrence 2 inside the two mkTwice trees counts.
	if len(got) != 1 || got[0].Key != NewKey("x", "y", D(0)) || got[0].Support != 2 {
		t.Fatalf("MineForest = %v", got)
	}
}

func TestSupportConsistentWithMineForest(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var forest []*tree.Tree
	for i := 0; i < 8; i++ {
		forest = append(forest, randLabeledTree(rng, 30))
	}
	opts := DefaultForestOptions()
	opts.MinSup = 1
	for _, fp := range MineForest(forest, opts) {
		if got := Support(forest, fp.Key.A, fp.Key.B, fp.Key.D, opts.Options); got != fp.Support {
			t.Fatalf("Support(%v) = %d, MineForest said %d", fp.Key, got, fp.Support)
		}
	}
}
