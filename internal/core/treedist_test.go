package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

var allVariants = []Variant{VariantLabel, VariantDist, VariantOccur, VariantDistOccur}

func TestVariantString(t *testing.T) {
	want := map[Variant]string{
		VariantLabel:     "tdist_label",
		VariantDist:      "tdist_dist",
		VariantOccur:     "tdist_occ",
		VariantDistOccur: "tdist_{occ,dist}",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), s)
		}
	}
	if Variant(99).String() != "Variant(99)" {
		t.Errorf("unknown variant String = %q", Variant(99).String())
	}
}

func TestTDistIdentity(t *testing.T) {
	tr := handTree(t)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	for _, v := range allVariants {
		if got := TDist(tr, tr, v, opts); got != 0 {
			t.Errorf("%s(T,T) = %v, want 0", v, got)
		}
	}
}

func TestTDistDisjoint(t *testing.T) {
	mk := func(l1, l2 string) *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, l1)
		b.Child(r, l2)
		return b.MustBuild()
	}
	t1, t2 := mk("a", "b"), mk("x", "y")
	for _, v := range allVariants {
		if got := TDist(t1, t2, v, DefaultOptions()); got != 1 {
			t.Errorf("%s(disjoint) = %v, want 1", v, got)
		}
	}
}

func TestTDistEmptyItemSets(t *testing.T) {
	b := tree.NewBuilder()
	b.Root("solo")
	t1 := b.MustBuild()
	for _, v := range allVariants {
		if got := TDist(t1, t1, v, DefaultOptions()); got != 0 {
			t.Errorf("%s(empty,empty) = %v, want 0", v, got)
		}
	}
}

func TestTDistWorkedExample(t *testing.T) {
	// Footnote-2 style worked case: cpi(T1) = {(a,b,0,1)}, cpi(T2) =
	// {(a,b,0,2), (a,c,0,1)} with occurrence counts.
	//   label view:      ∩ = {(a,b)},        ∪ = {(a,b),(a,c)}      → 1 − 1/2 = 0.5
	//   occ view:        ∩ = {(a,b)·1},      ∪ = {(a,b)·2,(a,c)·1}  → 1 − 1/3 = 2/3
	t1 := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "a")
		b.Child(r, "b")
		return b.MustBuild()
	}()
	t2 := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "a")
		b.Child(r, "b")
		b.Child(r, "b")
		x := b.ChildUnlabeled(r)
		b.Child(x, "a")
		b.Child(x, "c")
		return b.MustBuild()
	}()
	opts := Options{MaxDist: D(0), MinOccur: 1}
	// Check the premise first.
	i1, i2 := Mine(t1, opts), Mine(t2, opts)
	if i1[NewKey("a", "b", D(0))] != 1 || len(i1) != 1 {
		t.Fatalf("cpi(T1) = %v", i1.Items())
	}
	if i2[NewKey("a", "b", D(0))] != 2 || i2[NewKey("a", "c", D(0))] != 1 ||
		i2[NewKey("b", "b", D(0))] != 1 || len(i2) != 3 {
		t.Fatalf("cpi(T2) = %v", i2.Items())
	}
	// b–b sibling pair in T2 joins the union on every variant.
	// label: ∩=1, ∪=3 → 2/3; occ: ∩=1, ∪=4 → 3/4.
	if got := TDist(t1, t2, VariantLabel, opts); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("tdist_label = %v, want 2/3", got)
	}
	if got := TDist(t1, t2, VariantOccur, opts); math.Abs(got-3.0/4) > 1e-12 {
		t.Errorf("tdist_occ = %v, want 3/4", got)
	}
	if got := TDist(t1, t2, VariantDist, opts); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("tdist_dist = %v, want 2/3", got)
	}
	if got := TDist(t1, t2, VariantDistOccur, opts); math.Abs(got-3.0/4) > 1e-12 {
		t.Errorf("tdist_{occ,dist} = %v, want 3/4", got)
	}
}

func TestTDistVariantsDifferWhenDistancesDiffer(t *testing.T) {
	// Same label pair at different cousin distances: the label variant
	// sees identical trees, the distance variant does not.
	sib := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "a")
		b.Child(r, "b")
		return b.MustBuild()
	}()
	cousins := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		l := b.ChildUnlabeled(r)
		rr := b.ChildUnlabeled(r)
		b.Child(l, "a")
		b.Child(rr, "b")
		return b.MustBuild()
	}()
	opts := DefaultOptions()
	if got := TDist(sib, cousins, VariantLabel, opts); got != 0 {
		t.Errorf("tdist_label = %v, want 0 (same label pairs)", got)
	}
	if got := TDist(sib, cousins, VariantDist, opts); got != 1 {
		t.Errorf("tdist_dist = %v, want 1 (no shared (pair,dist))", got)
	}
}

func TestTDistProperties(t *testing.T) {
	f := func(seed int64, vi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := randLabeledTree(rng, 30)
		t2 := randLabeledTree(rng, 30)
		v := allVariants[int(vi)%len(allVariants)]
		opts := DefaultOptions()
		d12 := TDist(t1, t2, v, opts)
		d21 := TDist(t2, t1, v, opts)
		d11 := TDist(t1, t1, v, opts)
		return d12 == d21 && d11 == 0 && d12 >= 0 && d12 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTDistIsomorphicTreesAtZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	t1 := randLabeledTree(rng, 40)
	t2 := t1.Clone()
	for _, v := range allVariants {
		if got := TDist(t1, t2, v, DefaultOptions()); got != 0 {
			t.Errorf("%s(clone) = %v, want 0", v, got)
		}
	}
}

func TestVariantViewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown variant")
		}
	}()
	Variant(42).view(ItemSet{})
}
