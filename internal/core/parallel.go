package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"treemine/internal/faults"
	"treemine/internal/guard"
	"treemine/internal/tree"
)

// MineForestParallel is MineForest with per-tree mining fanned out over
// a worker pool. Mining is embarrassingly parallel across trees — each
// tree's item set is independent — so support counting is the only
// synchronization point. One symbol table is built in a single read-only
// pass up front and then shared lock-free by the workers (they only look
// labels up, never intern); each worker mines its strided slice of the
// forest through a pooled arena into a private support accumulator, and
// the privates are merged at the end. The result is identical to
// MineForest's (deterministic, sorted), only faster on large forests.
//
// workers ≤ 0 selects GOMAXPROCS.
func MineForestParallel(trees []*tree.Tree, opts ForestOptions, workers int) []FrequentPair {
	fp, err := MineForestParallelCtx(context.Background(), trees, opts, workers)
	if err != nil {
		// Unreachable without a cancellable context or an armed
		// failpoint: re-raise so the no-error signature keeps its
		// original crash semantics instead of silently dropping work.
		panic(err)
	}
	return fp
}

// MineForestParallelCtx is MineForestParallel under a context: workers
// check ctx between trees and the call returns ctx.Err() promptly, and a
// panicking worker is contained into an error naming the offending tree
// index while the remaining workers drain.
func MineForestParallelCtx(ctx context.Context, trees []*tree.Tree, opts ForestOptions, workers int) ([]FrequentPair, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// More workers than trees would leave the excess idle; clamp, and on
	// forests of ≤ 1 tree take the serial path outright. Either way the
	// output is identical to MineForest's — pinned by the worker-clamp
	// regression test in parallel_test.go.
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers <= 1 {
		var out []FrequentPair
		err := guard.Run(func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := faults.Hit(faults.MineWorker); err != nil {
				return err
			}
			out = MineForest(trees, opts)
			return nil
		})
		if err != nil {
			return nil, wrapWorkerErr(err, "core: mining forest serially")
		}
		return out, nil
	}
	if !packable(opts.MaxDist) {
		return mineForestParallelGeneric(ctx, trees, opts, workers)
	}

	syms := NewSymbols()
	for _, t := range trees {
		syms.InternTree(t)
	}
	slots := supportSlots(opts)
	privates := make([]accum, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sup := &privates[w]
			sup.init(syms.Len(), slots)
			m := minerPool.Get().(*miner)
			healthy := true
			defer func() {
				// A panicking miner may hold a half-updated arena; drop
				// it instead of poisoning the pool.
				if healthy {
					m.release()
				}
			}()
			for i := w; i < len(trees); i += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				err := guard.Run(func() error {
					if err := faults.Hit(faults.MineWorker); err != nil {
						return err
					}
					m.reset(trees[i], opts.Options, syms)
					mineTreeSupport(m, opts, sup)
					return nil
				})
				if err != nil {
					healthy = false
					errs[w] = wrapWorkerErr(err, fmt.Sprintf("core: mining tree %d", i))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return nil, err
	}

	// Merge the worker-private accumulators; wg.Wait orders their writes
	// before these reads.
	sup := &privates[0]
	for w := 1; w < workers; w++ {
		privates[w].drain(func(a, b uint32, dc int, n int32) {
			sup.add(a, b, dc, n)
		})
	}
	return drainSupport(sup, syms, opts), nil
}

// wrapWorkerErr labels a worker failure with what it was doing, but
// passes bare context cancellations through unchanged — callers match
// those against ctx.Err() and gain nothing from a location label.
func wrapWorkerErr(err error, doing string) error {
	if err == context.Canceled || err == context.DeadlineExceeded {
		return err
	}
	return fmt.Errorf("%s: %w", doing, err)
}

// mineForestParallelGeneric mirrors mineForestGeneric for option sets
// the packed keys cannot represent: workers accumulate private
// string-keyed support maps which are merged afterwards.
func mineForestParallelGeneric(ctx context.Context, trees []*tree.Tree, opts ForestOptions, workers int) ([]FrequentPair, error) {
	privates := make([]map[Key]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[Key]int)
			for i := w; i < len(trees); i += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				err := guard.Run(func() error {
					if err := faults.Hit(faults.MineWorker); err != nil {
						return err
					}
					items := Mine(trees[i], opts.Options)
					if opts.IgnoreDist {
						items = items.IgnoreDist()
					}
					for k := range items {
						local[k]++
					}
					return nil
				})
				if err != nil {
					errs[w] = wrapWorkerErr(err, fmt.Sprintf("core: mining tree %d", i))
					return
				}
			}
			privates[w] = local
		}(w)
	}
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return nil, err
	}

	support := make(map[Key]int)
	for _, local := range privates {
		for k, n := range local {
			support[k] += n
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	SortFrequentPairs(out)
	return out, nil
}
