package core

import (
	"runtime"
	"sort"
	"sync"

	"treemine/internal/tree"
)

// MineForestParallel is MineForest with per-tree mining fanned out over
// a worker pool. Mining is embarrassingly parallel across trees — each
// tree's item set is independent — so support counting is the only
// synchronization point; workers merge into shard maps keyed by label
// hash and the shards are combined at the end. The result is identical
// to MineForest's (deterministic, sorted), only faster on large forests.
//
// workers ≤ 0 selects GOMAXPROCS.
func MineForestParallel(trees []*tree.Tree, opts ForestOptions, workers int) []FrequentPair {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers <= 1 {
		return MineForest(trees, opts)
	}

	// Each worker accumulates private support counts over a strided
	// slice of the forest; privates are merged afterwards. This avoids
	// both a global lock and per-key sharding overhead.
	privates := make([]map[Key]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[Key]int)
			for i := w; i < len(trees); i += workers {
				items := Mine(trees[i], opts.Options)
				if opts.IgnoreDist {
					items = items.IgnoreDist()
				}
				for k := range items {
					local[k]++
				}
			}
			privates[w] = local
		}(w)
	}
	wg.Wait()

	support := make(map[Key]int)
	for _, local := range privates {
		for k, n := range local {
			support[k] += n
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		a, b := out[i].Key, out[j].Key
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.D < b.D
	})
	return out
}
