package core

import (
	"runtime"
	"sync"

	"treemine/internal/tree"
)

// MineForestParallel is MineForest with per-tree mining fanned out over
// a worker pool. Mining is embarrassingly parallel across trees — each
// tree's item set is independent — so support counting is the only
// synchronization point. One symbol table is built in a single read-only
// pass up front and then shared lock-free by the workers (they only look
// labels up, never intern); each worker mines its strided slice of the
// forest through a pooled arena into a private support accumulator, and
// the privates are merged at the end. The result is identical to
// MineForest's (deterministic, sorted), only faster on large forests.
//
// workers ≤ 0 selects GOMAXPROCS.
func MineForestParallel(trees []*tree.Tree, opts ForestOptions, workers int) []FrequentPair {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// More workers than trees would leave the excess idle; clamp, and on
	// forests of ≤ 1 tree take the serial path outright. Either way the
	// output is identical to MineForest's — pinned by the worker-clamp
	// regression test in parallel_test.go.
	if workers > len(trees) {
		workers = len(trees)
	}
	if workers <= 1 {
		return MineForest(trees, opts)
	}
	if !packable(opts.MaxDist) {
		return mineForestParallelGeneric(trees, opts, workers)
	}

	syms := NewSymbols()
	for _, t := range trees {
		syms.InternTree(t)
	}
	slots := supportSlots(opts)
	privates := make([]accum, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sup := &privates[w]
			sup.init(syms.Len(), slots)
			m := minerPool.Get().(*miner)
			defer m.release()
			for i := w; i < len(trees); i += workers {
				m.reset(trees[i], opts.Options, syms)
				mineTreeSupport(m, opts, sup)
			}
		}(w)
	}
	wg.Wait()

	// Merge the worker-private accumulators; wg.Wait orders their writes
	// before these reads.
	sup := &privates[0]
	for w := 1; w < workers; w++ {
		privates[w].drain(func(a, b uint32, dc int, n int32) {
			sup.add(a, b, dc, n)
		})
	}
	return drainSupport(sup, syms, opts)
}

// mineForestParallelGeneric mirrors mineForestGeneric for option sets
// the packed keys cannot represent: workers accumulate private
// string-keyed support maps which are merged afterwards.
func mineForestParallelGeneric(trees []*tree.Tree, opts ForestOptions, workers int) []FrequentPair {
	privates := make([]map[Key]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make(map[Key]int)
			for i := w; i < len(trees); i += workers {
				items := Mine(trees[i], opts.Options)
				if opts.IgnoreDist {
					items = items.IgnoreDist()
				}
				for k := range items {
					local[k]++
				}
			}
			privates[w] = local
		}(w)
	}
	wg.Wait()

	support := make(map[Key]int)
	for _, local := range privates {
		for k, n := range local {
			support[k] += n
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	SortFrequentPairs(out)
	return out
}
