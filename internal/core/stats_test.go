package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestDistHistogram(t *testing.T) {
	s := ItemSet{
		NewKey("a", "b", D(0)):            2,
		NewKey("c", "d", D(0)):            1,
		NewKey("a", "c", D(3)):            4,
		{A: "x", B: "y", D: DistWild}:     9, // wildcard excluded
	}
	got := s.DistHistogram()
	want := map[Dist]int{D(0): 3, D(3): 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DistHistogram = %v, want %v", got, want)
	}
}

func TestTopK(t *testing.T) {
	s := ItemSet{
		NewKey("a", "b", D(0)): 1,
		NewKey("c", "d", D(0)): 5,
		NewKey("e", "f", D(2)): 3,
	}
	top := s.TopK(2)
	if len(top) != 2 || top[0].Occur != 5 || top[1].Occur != 3 {
		t.Fatalf("TopK = %v", top)
	}
	all := s.TopK(99)
	if len(all) != 3 {
		t.Fatalf("TopK(99) = %v", all)
	}
	if len(s.TopK(0)) != 0 {
		t.Fatal("TopK(0) not empty")
	}
}

func TestDistJSONRoundTrip(t *testing.T) {
	for _, d := range []Dist{D(0), D(1), D(3), DistWild} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Dist
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != d {
			t.Fatalf("round trip %v → %s → %v", d, b, back)
		}
	}
	// Items marshal with readable distances.
	it := Item{Key: NewKey("a", "c", D(1)), Occur: 2}
	b, err := json.Marshal(it)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"Key":{"A":"a","B":"c","D":"0.5"},"Occur":2}` {
		t.Fatalf("Item JSON = %s", b)
	}
}

func TestDistJSONErrors(t *testing.T) {
	var d Dist
	if err := json.Unmarshal([]byte(`42`), &d); err == nil {
		t.Error("numeric distance accepted")
	}
	if err := json.Unmarshal([]byte(`"zz"`), &d); err == nil {
		t.Error("bad string accepted")
	}
}
