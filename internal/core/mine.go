package core

import (
	"fmt"
	"sync"

	"treemine/internal/tree"
)

// Options configure single-tree mining. The zero value is not useful;
// start from DefaultOptions (the paper's Table 2 defaults).
type Options struct {
	// MaxDist is the largest cousin distance reported (the paper's
	// maxdist, default 1.5).
	MaxDist Dist
	// MinOccur is the smallest within-tree occurrence count reported
	// (the paper's minoccur, default 1).
	MinOccur int
}

// DefaultOptions returns the paper's Table 2 defaults: maxdist = 1.5,
// minoccur = 1.
func DefaultOptions() Options {
	return Options{MaxDist: 3, MinOccur: 1}
}

// Mine is Single_Tree_Mining (Figure 3 of the paper): it returns every
// cousin pair item of t whose distance is at most opts.MaxDist and whose
// occurrence count is at least opts.MinOccur.
//
// The implementation enumerates, for every node a, the labeled
// descendants of a grouped by (child subtree of a, depth below a) and
// pairs groups from different child subtrees at the depths prescribed by
// Dist.Levels. Grouping by distinct child subtrees makes a the exact LCA
// of every generated pair, so no pair is ever double-counted (the paper's
// Step 9 check holds by construction). The running time is O(n²) in the
// worst case, dominated — exactly as the paper observes in its Figure 4
// discussion — by the number of qualified cousin pairs generated.
//
// Internally the pass runs on interned integer labels and a pooled
// arena, so repeat calls allocate little beyond the returned ItemSet;
// labels reappear as strings only in the result.
func Mine(t *tree.Tree, opts Options) ItemSet {
	m := getMiner(t, opts, nil)
	defer m.release()
	items := make(ItemSet)
	if m.maxJ == 0 {
		return items
	}
	if m.packed() {
		m.acc.init(m.syms.Len(), m.nd)
		m.accumulate(&m.acc)
		syms, minOccur := m.syms, opts.MinOccur
		// Drained cells arrive roughly row-major in (a, b), so memoizing
		// the two label lookups turns most cells' string work into a
		// symbol-ID compare.
		lastA, lastB := ^uint32(0), ^uint32(0)
		var la, lb string
		m.acc.drain(func(a, b uint32, dc int, n int32) {
			if int(n) < minOccur {
				return
			}
			if a != lastA {
				la, lastA = syms.Label(a), a
			}
			if b != lastB {
				lb, lastB = syms.Label(b), b
			}
			items[NewKey(la, lb, Dist(dc))] = int(n)
		})
		return items
	}
	// Distances beyond MaxPackedDist: enumerate pairs on string keys,
	// then prune below-minoccur items in place — no second map.
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
	})
	if opts.MinOccur > 1 {
		for k, n := range items {
			if n < opts.MinOccur {
				delete(items, k)
			}
		}
	}
	return items
}

// Pair is one concrete cousin pair occurrence: two node IDs and their
// cousin distance.
type Pair struct {
	U, V tree.NodeID
	D    Dist
}

// MinePairs returns every concrete cousin node pair of t with distance at
// most opts.MaxDist, before label aggregation. Each unordered node pair
// appears exactly once. MinOccur does not apply (it is a property of
// aggregated items).
func MinePairs(t *tree.Tree, opts Options) []Pair {
	m := getMiner(t, opts, nil)
	defer m.release()
	var out []Pair
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		out = append(out, Pair{U: u, V: v, D: d})
	})
	return out
}

// MineISet mines t into an interned item multiset over syms, which must
// already contain every label of t (use Symbols.InternTree). It is the
// forest-scale building block: callers holding one shared symbol table
// mine many trees and compare the results without ever touching strings.
// opts.MaxDist must be at most MaxPackedDist.
func MineISet(t *tree.Tree, opts Options, syms *Symbols) ISet {
	if !packable(opts.MaxDist) {
		panic(fmt.Sprintf("core: MineISet at maxdist %s beyond MaxPackedDist", opts.MaxDist))
	}
	m := getMiner(t, opts, syms)
	defer m.release()
	out := make(ISet)
	if m.maxJ == 0 {
		return out
	}
	m.acc.init(syms.Len(), m.nd)
	m.accumulate(&m.acc)
	minOccur := opts.MinOccur
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		if int(n) >= minOccur {
			out[NewIKey(a, b, Dist(dc))] = n
		}
	})
	return out
}

// miner holds the per-tree state for one mining pass: interned node
// labels plus, for every non-root node c and depth k ≤ maxJ, the bucket
// of labeled descendants of c that sit k edges below c's parent. Buckets
// live in one flat slice indexed through prefix sums, so a pass over a
// same-shaped tree reuses every buffer. Miners are pooled; use getMiner
// and release.
type miner struct {
	t    *tree.Tree
	opts Options
	// syms is the symbol table in use: own (reset per tree) unless a
	// shared forest table was supplied.
	syms   *Symbols
	own    *Symbols
	shared bool
	maxJ   int // deepest bucket level, clamped to the tree height
	nd     int // number of valid distance slots (MaxDist+1, min 0)

	// SoA copies of the tree's per-node structure, filled in one pass so
	// the bucket-building walks touch flat arrays instead of chasing
	// method calls into the tree.
	par         []int32       // parent ID per node (root: -1)
	dep         []int32       // depth per node
	mld         []int32       // deepest labeled descendant depth below each node (-1: none)
	nodeSym     []uint32      // symbol ID per labeled node
	bucketStart []int32       // prefix offsets into flat, len size*maxJ+1
	bucketFill  []int32       // per-bucket counting/fill cursors
	flat        []tree.NodeID // bucket storage

	acc  accum     // item accumulator (also used per tree by forest mining)
	wild accum     // distance-wildcard scratch for IgnoreDist support
	lv   levelVecs // symbol-vector scratch of the blocked path (§48)
}

var minerPool = sync.Pool{New: func() any { return new(miner) }}

// getMiner fetches a pooled miner and builds its buckets for t. A nil
// syms gives the miner its own per-tree symbol table; a non-nil one is
// treated as shared and read-only (every label of t must already be
// interned in it).
func getMiner(t *tree.Tree, opts Options, syms *Symbols) *miner {
	m := minerPool.Get().(*miner)
	m.reset(t, opts, syms)
	return m
}

// release returns the miner to the pool, dropping tree references but
// keeping buffers for reuse. The level-vector scratch is sanitized so a
// pass abandoned mid-LCA (contained panic) cannot poison the pool.
func (m *miner) release() {
	m.acc.discard()
	m.wild.discard()
	m.lv.sanitize()
	m.t = nil
	m.syms = nil
	minerPool.Put(m)
}

// packed reports whether this pass can accumulate into packed integer
// keys.
func (m *miner) packed() bool { return packable(m.opts.MaxDist) }

// reset points the miner at t and rebuilds the buckets in O(n · maxJ):
// every labeled node v is recorded under each of its ≤ maxJ nearest
// ancestors.
func (m *miner) reset(t *tree.Tree, opts Options, syms *Symbols) {
	m.t, m.opts = t, opts
	m.maxJ, m.nd = 0, 0
	if opts.MaxDist < 0 || t.Size() == 0 {
		return
	}
	m.nd = int(opts.MaxDist) + 1

	if syms != nil {
		m.syms, m.shared = syms, true
	} else {
		if m.own == nil {
			m.own = NewSymbols()
		}
		m.own.reset()
		m.syms, m.shared = m.own, false
	}

	n := t.Size()
	m.par = grow32(m.par, n)
	m.dep = grow32(m.dep, n)
	m.mld = grow32(m.mld, n)
	m.nodeSym = growU32(m.nodeSym, n)

	// SoA pass: copy parent and depth per node into flat arrays and
	// intern symbols alongside, so the bucket walks below run on local
	// int32 slices with no tree method calls. The tree height (for the
	// maxJ clamp) falls out of the same pass. The depth bound also
	// replaces the parent != None check in the walks: the ancestor k
	// edges above v exists iff dep[v] ≥ k.
	par, dep, mld := m.par, m.dep, m.mld
	h := 0
	for v := tree.NodeID(0); v < tree.NodeID(n); v++ {
		par[v] = int32(t.Parent(v))
		d := int32(t.Depth(v))
		dep[v] = d
		if int(d) > h {
			h = int(d)
		}
		if !t.Labeled(v) {
			mld[v] = -1
			continue
		}
		mld[v] = 0
		label := t.MustLabel(v)
		if m.shared {
			id, ok := m.syms.Lookup(label)
			if !ok {
				panic(fmt.Sprintf("core: label %q missing from shared symbol table", label))
			}
			m.nodeSym[v] = id
		} else {
			m.nodeSym[v] = m.syms.Intern(label)
		}
	}

	_, maxJ := opts.MaxDist.Levels()
	if maxJ > h {
		maxJ = h // no bucket can be deeper than the tree
	}
	m.maxJ = maxJ
	if maxJ == 0 {
		return
	}

	// Bottom-up pass for the deepest-labeled-descendant depths, used to
	// skip empty deep levels per LCA. Valid in one reverse scan because
	// the Builder assigns every child a higher ID than its parent.
	for v := n - 1; v > 0; v-- {
		if c := mld[v] + 1; c > 0 && c > mld[par[v]] {
			mld[par[v]] = c
		}
	}

	nb := n * maxJ
	m.bucketStart = grow32(m.bucketStart, nb+1)
	m.bucketFill = grow32(m.bucketFill, nb)
	counts := m.bucketFill
	for i := range counts {
		counts[i] = 0
	}

	// Counting pass: how many nodes land in each (path-child, depth)
	// bucket.
	total := int32(0)
	for v := 0; v < n; v++ {
		if !t.Labeled(tree.NodeID(v)) {
			continue
		}
		steps := maxJ
		if d := int(dep[v]); d < steps {
			steps = d
		}
		child := v
		for k := 1; k <= steps; k++ {
			counts[child*maxJ+k-1]++
			child = int(par[child])
		}
		total += int32(steps)
	}

	// Prefix sums, then the fill pass routes every node into its buckets.
	m.bucketStart[0] = 0
	for i := 0; i < nb; i++ {
		m.bucketStart[i+1] = m.bucketStart[i] + counts[i]
		m.bucketFill[i] = m.bucketStart[i]
	}
	m.flat = growNodeID(m.flat, int(total))
	fill := m.bucketFill
	for v := 0; v < n; v++ {
		if !t.Labeled(tree.NodeID(v)) {
			continue
		}
		steps := maxJ
		if d := int(dep[v]); d < steps {
			steps = d
		}
		child := v
		for k := 1; k <= steps; k++ {
			b := child*maxJ + k - 1
			m.flat[fill[b]] = tree.NodeID(v)
			fill[b]++
			child = int(par[child])
		}
	}
}

// bucket returns the labeled descendants of child c sitting depth edges
// below c's parent (depth is 1-based and at most maxJ).
func (m *miner) bucket(c tree.NodeID, depth int) []tree.NodeID {
	b := int(c)*m.maxJ + depth - 1
	return m.flat[m.bucketStart[b]:m.bucketStart[b+1]]
}

// forEachPair invokes visit once per qualified cousin node pair.
func (m *miner) forEachPair(visit func(u, v tree.NodeID, d Dist)) {
	if m.maxJ == 0 {
		return
	}
	t := m.t
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break // j is nondecreasing in d
			}
			// For i == j each unordered child pair is visited once; for
			// i != j the depth roles are distinct so all ordered child
			// pairs are visited.
			for x1, c1 := range kids {
				us := m.bucket(c1, i)
				if len(us) == 0 {
					continue
				}
				start := 0
				if i == j {
					start = x1 + 1
				}
				for x2 := start; x2 < len(kids); x2++ {
					if x2 == x1 {
						continue
					}
					for _, u := range us {
						for _, v := range m.bucket(kids[x2], j) {
							visit(u, v, d)
						}
					}
				}
			}
		}
	}
}

// accumulate routes one interned mining pass into ac. When the
// accumulator is dense it takes the symbol-vector blocked path (§48,
// levelvec.go); in map mode — alphabets too large for a dense table,
// where sizing per-level count vectors to the alphabet would also be
// wasteful — it falls back to the seed pair enumeration.
func (m *miner) accumulate(ac *accum) {
	if ac.dense != nil {
		m.accumulateBlocked(ac)
		return
	}
	m.accumulatePairs(ac)
}

// accumulatePairs is forEachPair specialized to the interned hot path:
// every qualified pair becomes one accumulator increment on symbol IDs,
// with no callback and no string in sight. It is the seed enumeration,
// kept as the map-mode fallback and the ablation baseline; the dense
// production path is accumulateBlocked.
func (m *miner) accumulatePairs(ac *accum) {
	if m.maxJ == 0 {
		return
	}
	t, nodeSym := m.t, m.nodeSym
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break
			}
			dc := int(d)
			for x1, c1 := range kids {
				us := m.bucket(c1, i)
				if len(us) == 0 {
					continue
				}
				start := 0
				if i == j {
					start = x1 + 1
				}
				for x2 := start; x2 < len(kids); x2++ {
					if x2 == x1 {
						continue
					}
					vs := m.bucket(kids[x2], j)
					if len(vs) == 0 {
						continue
					}
					for _, u := range us {
						su := nodeSym[u]
						for _, v := range vs {
							ac.add(su, nodeSym[v], dc, 1)
						}
					}
				}
			}
		}
	}
}

// MineCounts computes the same ItemSet as Mine. Historically it was a
// separate map-based histogram strategy (totals minus a same-child
// correction); that counting identity is now the production path itself
// — the symbol-vector enumeration of levelvec.go (DESIGN.md §48) runs
// it on dense count vectors for every dense-mode mining pass. MineCounts
// is kept as an alias for API compatibility and for the ablation
// harnesses that call the two entry points side by side.
func MineCounts(t *tree.Tree, opts Options) ItemSet {
	return Mine(t, opts)
}

// growU32 returns s resized to n, reusing capacity.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growNodeID(s []tree.NodeID, n int) []tree.NodeID {
	if cap(s) < n {
		return make([]tree.NodeID, n)
	}
	return s[:n]
}
