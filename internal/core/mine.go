package core

import (
	"fmt"
	"sync"

	"treemine/internal/tree"
)

// Options configure single-tree mining. The zero value is not useful;
// start from DefaultOptions (the paper's Table 2 defaults).
type Options struct {
	// MaxDist is the largest cousin distance reported (the paper's
	// maxdist, default 1.5).
	MaxDist Dist
	// MinOccur is the smallest within-tree occurrence count reported
	// (the paper's minoccur, default 1).
	MinOccur int
}

// DefaultOptions returns the paper's Table 2 defaults: maxdist = 1.5,
// minoccur = 1.
func DefaultOptions() Options {
	return Options{MaxDist: 3, MinOccur: 1}
}

// Mine is Single_Tree_Mining (Figure 3 of the paper): it returns every
// cousin pair item of t whose distance is at most opts.MaxDist and whose
// occurrence count is at least opts.MinOccur.
//
// The implementation enumerates, for every node a, the labeled
// descendants of a grouped by (child subtree of a, depth below a) and
// pairs groups from different child subtrees at the depths prescribed by
// Dist.Levels. Grouping by distinct child subtrees makes a the exact LCA
// of every generated pair, so no pair is ever double-counted (the paper's
// Step 9 check holds by construction). The running time is O(n²) in the
// worst case, dominated — exactly as the paper observes in its Figure 4
// discussion — by the number of qualified cousin pairs generated.
//
// Internally the pass runs on interned integer labels and a pooled
// arena, so repeat calls allocate little beyond the returned ItemSet;
// labels reappear as strings only in the result.
func Mine(t *tree.Tree, opts Options) ItemSet {
	m := getMiner(t, opts, nil)
	defer m.release()
	items := make(ItemSet)
	if m.maxJ == 0 {
		return items
	}
	if m.packed() {
		m.acc.init(m.syms.Len(), m.nd)
		m.accumulate(&m.acc)
		syms, minOccur := m.syms, opts.MinOccur
		m.acc.drain(func(a, b uint32, dc int, n int32) {
			if int(n) >= minOccur {
				items[NewKey(syms.Label(a), syms.Label(b), Dist(dc))] = int(n)
			}
		})
		return items
	}
	// Distances beyond MaxPackedDist: enumerate pairs on string keys.
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
	})
	return items.FilterMinOccur(opts.MinOccur)
}

// Pair is one concrete cousin pair occurrence: two node IDs and their
// cousin distance.
type Pair struct {
	U, V tree.NodeID
	D    Dist
}

// MinePairs returns every concrete cousin node pair of t with distance at
// most opts.MaxDist, before label aggregation. Each unordered node pair
// appears exactly once. MinOccur does not apply (it is a property of
// aggregated items).
func MinePairs(t *tree.Tree, opts Options) []Pair {
	m := getMiner(t, opts, nil)
	defer m.release()
	var out []Pair
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		out = append(out, Pair{U: u, V: v, D: d})
	})
	return out
}

// MineISet mines t into an interned item multiset over syms, which must
// already contain every label of t (use Symbols.InternTree). It is the
// forest-scale building block: callers holding one shared symbol table
// mine many trees and compare the results without ever touching strings.
// opts.MaxDist must be at most MaxPackedDist.
func MineISet(t *tree.Tree, opts Options, syms *Symbols) ISet {
	if !packable(opts.MaxDist) {
		panic(fmt.Sprintf("core: MineISet at maxdist %s beyond MaxPackedDist", opts.MaxDist))
	}
	m := getMiner(t, opts, syms)
	defer m.release()
	out := make(ISet)
	if m.maxJ == 0 {
		return out
	}
	m.acc.init(syms.Len(), m.nd)
	m.accumulate(&m.acc)
	minOccur := opts.MinOccur
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		if int(n) >= minOccur {
			out[NewIKey(a, b, Dist(dc))] = n
		}
	})
	return out
}

// miner holds the per-tree state for one mining pass: interned node
// labels plus, for every non-root node c and depth k ≤ maxJ, the bucket
// of labeled descendants of c that sit k edges below c's parent. Buckets
// live in one flat slice indexed through prefix sums, so a pass over a
// same-shaped tree reuses every buffer. Miners are pooled; use getMiner
// and release.
type miner struct {
	t    *tree.Tree
	opts Options
	// syms is the symbol table in use: own (reset per tree) unless a
	// shared forest table was supplied.
	syms   *Symbols
	own    *Symbols
	shared bool
	maxJ   int // deepest bucket level, clamped to the tree height
	nd     int // number of valid distance slots (MaxDist+1, min 0)

	nodeSym     []uint32      // symbol ID per labeled node
	bucketStart []int32       // prefix offsets into flat, len size*maxJ+1
	bucketFill  []int32       // per-bucket counting/fill cursors
	flat        []tree.NodeID // bucket storage

	acc  accum // item accumulator (also used per tree by forest mining)
	wild accum // distance-wildcard scratch for IgnoreDist support

	// MineCounts scratch, reused across LCAs.
	histI, histJ, totalI, totalJ map[uint32]int32
	same                         ISet
}

var minerPool = sync.Pool{New: func() any { return new(miner) }}

// getMiner fetches a pooled miner and builds its buckets for t. A nil
// syms gives the miner its own per-tree symbol table; a non-nil one is
// treated as shared and read-only (every label of t must already be
// interned in it).
func getMiner(t *tree.Tree, opts Options, syms *Symbols) *miner {
	m := minerPool.Get().(*miner)
	m.reset(t, opts, syms)
	return m
}

// release returns the miner to the pool, dropping tree references but
// keeping buffers for reuse.
func (m *miner) release() {
	m.acc.discard()
	m.wild.discard()
	m.t = nil
	m.syms = nil
	minerPool.Put(m)
}

// packed reports whether this pass can accumulate into packed integer
// keys.
func (m *miner) packed() bool { return packable(m.opts.MaxDist) }

// reset points the miner at t and rebuilds the buckets in O(n · maxJ):
// every labeled node v is recorded under each of its ≤ maxJ nearest
// ancestors.
func (m *miner) reset(t *tree.Tree, opts Options, syms *Symbols) {
	m.t, m.opts = t, opts
	m.maxJ, m.nd = 0, 0
	if opts.MaxDist < 0 || t.Size() == 0 {
		return
	}
	m.nd = int(opts.MaxDist) + 1
	_, maxJ := opts.MaxDist.Levels()
	if h := t.Height(); maxJ > h {
		maxJ = h // no bucket can be deeper than the tree
	}
	m.maxJ = maxJ
	if maxJ == 0 {
		return
	}

	if syms != nil {
		m.syms, m.shared = syms, true
	} else {
		if m.own == nil {
			m.own = NewSymbols()
		}
		m.own.reset()
		m.syms, m.shared = m.own, false
	}

	n := t.Size()
	m.nodeSym = growU32(m.nodeSym, n)
	nb := n * maxJ
	m.bucketStart = grow32(m.bucketStart, nb+1)
	m.bucketFill = grow32(m.bucketFill, nb)
	counts := m.bucketFill
	for i := range counts {
		counts[i] = 0
	}

	// Counting pass: how many nodes land in each (path-child, depth)
	// bucket; symbols are interned alongside.
	total := int32(0)
	for v := tree.NodeID(0); v < tree.NodeID(n); v++ {
		if !t.Labeled(v) {
			continue
		}
		label := t.MustLabel(v)
		if m.shared {
			id, ok := m.syms.Lookup(label)
			if !ok {
				panic(fmt.Sprintf("core: label %q missing from shared symbol table", label))
			}
			m.nodeSym[v] = id
		} else {
			m.nodeSym[v] = m.syms.Intern(label)
		}
		child, a := v, t.Parent(v)
		for depth := 1; depth <= maxJ && a != tree.None; depth++ {
			counts[int(child)*maxJ+depth-1]++
			total++
			child, a = a, t.Parent(a)
		}
	}

	// Prefix sums, then the fill pass routes every node into its buckets.
	m.bucketStart[0] = 0
	for i := 0; i < nb; i++ {
		m.bucketStart[i+1] = m.bucketStart[i] + counts[i]
		m.bucketFill[i] = m.bucketStart[i]
	}
	m.flat = growNodeID(m.flat, int(total))
	for v := tree.NodeID(0); v < tree.NodeID(n); v++ {
		if !t.Labeled(v) {
			continue
		}
		child, a := v, t.Parent(v)
		for depth := 1; depth <= maxJ && a != tree.None; depth++ {
			b := int(child)*maxJ + depth - 1
			m.flat[m.bucketFill[b]] = v
			m.bucketFill[b]++
			child, a = a, t.Parent(a)
		}
	}
}

// bucket returns the labeled descendants of child c sitting depth edges
// below c's parent (depth is 1-based and at most maxJ).
func (m *miner) bucket(c tree.NodeID, depth int) []tree.NodeID {
	b := int(c)*m.maxJ + depth - 1
	return m.flat[m.bucketStart[b]:m.bucketStart[b+1]]
}

// forEachPair invokes visit once per qualified cousin node pair.
func (m *miner) forEachPair(visit func(u, v tree.NodeID, d Dist)) {
	if m.maxJ == 0 {
		return
	}
	t := m.t
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break // j is nondecreasing in d
			}
			// For i == j each unordered child pair is visited once; for
			// i != j the depth roles are distinct so all ordered child
			// pairs are visited.
			for x1, c1 := range kids {
				us := m.bucket(c1, i)
				if len(us) == 0 {
					continue
				}
				start := 0
				if i == j {
					start = x1 + 1
				}
				for x2 := start; x2 < len(kids); x2++ {
					if x2 == x1 {
						continue
					}
					for _, u := range us {
						for _, v := range m.bucket(kids[x2], j) {
							visit(u, v, d)
						}
					}
				}
			}
		}
	}
}

// accumulate is forEachPair specialized to the interned hot path: every
// qualified pair becomes one accumulator increment on symbol IDs, with no
// callback and no string in sight.
func (m *miner) accumulate(ac *accum) {
	if m.maxJ == 0 {
		return
	}
	t, nodeSym := m.t, m.nodeSym
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break
			}
			dc := int(d)
			for x1, c1 := range kids {
				us := m.bucket(c1, i)
				if len(us) == 0 {
					continue
				}
				start := 0
				if i == j {
					start = x1 + 1
				}
				for x2 := start; x2 < len(kids); x2++ {
					if x2 == x1 {
						continue
					}
					vs := m.bucket(kids[x2], j)
					if len(vs) == 0 {
						continue
					}
					for _, u := range us {
						su := nodeSym[u]
						for _, v := range vs {
							ac.add(su, nodeSym[v], dc, 1)
						}
					}
				}
			}
		}
	}
}

// MineCounts computes the same ItemSet as Mine without materializing
// individual node pairs: per potential LCA it aggregates label counts by
// depth, then derives cross-child pair counts from the totals minus a
// same-child correction — total(l1)·total(l2) − Σ_c count_c(l1)·count_c(l2)
// — so the cost per node is driven by the number of distinct labels, not
// the number of pairs. On label-dense trees (a star of identical leaves,
// the Table 3 workloads at high fanout) it does asymptotically less work
// than Mine; the benchmark harness uses the two as an ablation pair. The
// result is always identical to Mine's. The histograms run on interned
// symbols; distances beyond MaxPackedDist fall back to pair enumeration.
func MineCounts(t *tree.Tree, opts Options) ItemSet {
	m := getMiner(t, opts, nil)
	defer m.release()
	items := make(ItemSet)
	if m.maxJ == 0 {
		return items
	}
	if !m.packed() {
		m.forEachPair(func(u, v tree.NodeID, d Dist) {
			items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
		})
		return items.FilterMinOccur(opts.MinOccur)
	}
	m.initCountsScratch()
	m.acc.init(m.syms.Len(), m.nd)
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		if t.NumChildren(a) < 2 {
			continue
		}
		for d := Dist(0); d <= opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > m.maxJ {
				break
			}
			m.countsAt(a, i, j, d)
		}
	}
	syms, minOccur := m.syms, opts.MinOccur
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		if int(n) >= minOccur {
			items[NewKey(syms.Label(a), syms.Label(b), Dist(dc))] = int(n)
		}
	})
	return items
}

func (m *miner) initCountsScratch() {
	if m.histI == nil {
		m.histI = make(map[uint32]int32)
		m.histJ = make(map[uint32]int32)
		m.totalI = make(map[uint32]int32)
		m.totalJ = make(map[uint32]int32)
		m.same = make(ISet)
	}
}

// hist fills dst with the symbol histogram of the bucket (c, depth) and
// reports whether it is nonempty.
func (m *miner) hist(dst map[uint32]int32, c tree.NodeID, depth int) bool {
	clear(dst)
	nodes := m.bucket(c, depth)
	for _, n := range nodes {
		dst[m.nodeSym[n]]++
	}
	return len(nodes) > 0
}

// countsAt aggregates, for LCA candidate a and distance d with levels
// (i, j), the cross-child pair counts into m.acc via the totals-minus-
// same-child identity.
func (m *miner) countsAt(a tree.NodeID, i, j int, d Dist) {
	kids := m.t.Children(a)
	clear(m.totalI)
	clear(m.totalJ)
	// Totals across children at each depth, plus the same-child
	// correction: pairs within one child subtree have a deeper LCA and
	// must not be counted here.
	for _, c := range kids {
		okI := m.hist(m.histI, c, i)
		if !okI && i == j {
			continue
		}
		hi, hj := m.histI, m.histI
		okJ := okI
		if i != j {
			okJ = m.hist(m.histJ, c, j)
			hj = m.histJ
		}
		for s, n := range hi {
			m.totalI[s] += n
		}
		if i != j {
			for s, n := range hj {
				m.totalJ[s] += n
			}
		}
		if !okI || !okJ {
			continue
		}
		for s1, n1 := range hi {
			for s2, n2 := range hj {
				if i == j {
					// Count each unordered same-child symbol combination
					// once; the cross-product below is also de-duplicated
					// for i == j.
					if s1 > s2 {
						continue
					}
					prod := n1 * n2
					if s1 == s2 {
						prod = n1 * (n1 - 1) / 2
					}
					m.same[NewIKey(s1, s2, d)] += prod
				} else {
					m.same[NewIKey(s1, s2, d)] += n1 * n2
				}
			}
		}
	}
	totalI, totalJ := m.totalI, m.totalJ
	if i == j {
		totalJ = totalI
	}
	dc := int(d)
	for s1, n1 := range totalI {
		for s2, n2 := range totalJ {
			if i == j && s1 > s2 {
				continue
			}
			var cross int32
			if i == j && s1 == s2 {
				cross = n1 * (n1 - 1) / 2
			} else {
				cross = n1 * n2
			}
			k := NewIKey(s1, s2, d)
			// The same-child correction is keyed unordered and holds
			// both label orientations; consume it exactly once (the
			// second orientation's iteration then subtracts nothing).
			if delta := cross - m.same[k]; delta != 0 {
				m.acc.add(s1, s2, dc, delta)
			}
			delete(m.same, k)
		}
	}
}

// growU32 returns s resized to n, reusing capacity.
func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growNodeID(s []tree.NodeID, n int) []tree.NodeID {
	if cap(s) < n {
		return make([]tree.NodeID, n)
	}
	return s[:n]
}
