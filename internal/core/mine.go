package core

import (
	"treemine/internal/tree"
)

// Options configure single-tree mining. The zero value is not useful;
// start from DefaultOptions (the paper's Table 2 defaults).
type Options struct {
	// MaxDist is the largest cousin distance reported (the paper's
	// maxdist, default 1.5).
	MaxDist Dist
	// MinOccur is the smallest within-tree occurrence count reported
	// (the paper's minoccur, default 1).
	MinOccur int
}

// DefaultOptions returns the paper's Table 2 defaults: maxdist = 1.5,
// minoccur = 1.
func DefaultOptions() Options {
	return Options{MaxDist: 3, MinOccur: 1}
}

// Mine is Single_Tree_Mining (Figure 3 of the paper): it returns every
// cousin pair item of t whose distance is at most opts.MaxDist and whose
// occurrence count is at least opts.MinOccur.
//
// The implementation enumerates, for every node a, the labeled
// descendants of a grouped by (child subtree of a, depth below a) and
// pairs groups from different child subtrees at the depths prescribed by
// Dist.Levels. Grouping by distinct child subtrees makes a the exact LCA
// of every generated pair, so no pair is ever double-counted (the paper's
// Step 9 check holds by construction). The running time is O(n²) in the
// worst case, dominated — exactly as the paper observes in its Figure 4
// discussion — by the number of qualified cousin pairs generated.
func Mine(t *tree.Tree, opts Options) ItemSet {
	m := newMiner(t, opts)
	items := make(ItemSet)
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
	})
	return items.FilterMinOccur(opts.MinOccur)
}

// Pair is one concrete cousin pair occurrence: two node IDs and their
// cousin distance.
type Pair struct {
	U, V tree.NodeID
	D    Dist
}

// MinePairs returns every concrete cousin node pair of t with distance at
// most opts.MaxDist, before label aggregation. Each unordered node pair
// appears exactly once. MinOccur does not apply (it is a property of
// aggregated items).
func MinePairs(t *tree.Tree, opts Options) []Pair {
	m := newMiner(t, opts)
	var out []Pair
	m.forEachPair(func(u, v tree.NodeID, d Dist) {
		out = append(out, Pair{U: u, V: v, D: d})
	})
	return out
}

// miner holds the per-tree state for one mining pass.
type miner struct {
	t    *tree.Tree
	opts Options
	// groups[a] lists, for each child subtree of a, the labeled
	// descendants by depth below a: groups[a][ci][depth-1] is the slice
	// of labeled nodes at that depth inside child ci's subtree.
	groups map[tree.NodeID][][][]tree.NodeID
	maxJ   int
}

func newMiner(t *tree.Tree, opts Options) *miner {
	m := &miner{t: t, opts: opts, groups: make(map[tree.NodeID][][][]tree.NodeID)}
	if opts.MaxDist >= 0 {
		_, m.maxJ = opts.MaxDist.Levels() // deepest level any pair reaches
	}
	m.build()
	return m
}

// build populates groups in O(n · maxJ): every labeled node v is recorded
// under each of its ≤ maxJ nearest ancestors.
func (m *miner) build() {
	if m.maxJ == 0 {
		return
	}
	t := m.t
	// childIndex[v] = position of v within its parent's child list, so a
	// node can be routed to the right child-subtree slot of an ancestor.
	childIndex := make([]int, t.Size())
	for _, n := range t.Nodes() {
		for i, c := range t.Children(n) {
			childIndex[c] = i
		}
	}
	for _, v := range t.Nodes() {
		if !t.Labeled(v) {
			continue
		}
		child := v
		a := t.Parent(v)
		for depth := 1; depth <= m.maxJ && a != tree.None; depth++ {
			g := m.groups[a]
			if g == nil {
				g = make([][][]tree.NodeID, t.NumChildren(a))
				m.groups[a] = g
			}
			ci := childIndex[child]
			for len(g[ci]) < depth {
				g[ci] = append(g[ci], nil)
			}
			g[ci][depth-1] = append(g[ci][depth-1], v)
			child = a
			a = t.Parent(a)
		}
	}
}

// forEachPair invokes visit once per qualified cousin node pair.
func (m *miner) forEachPair(visit func(u, v tree.NodeID, d Dist)) {
	for _, d := range ValidDistances(m.opts.MaxDist) {
		i, j := d.Levels()
		for _, g := range m.groups {
			m.pairsAt(g, i, j, d, visit)
		}
	}
}

// pairsAt emits pairs (u at depth i in one child subtree, v at depth j in
// a different child subtree). For i == j each unordered child pair is
// visited once; for i != j the depth roles are distinct so all ordered
// child pairs are visited.
func (m *miner) pairsAt(g [][][]tree.NodeID, i, j int, d Dist, visit func(u, v tree.NodeID, d Dist)) {
	for c1 := range g {
		if len(g[c1]) < i {
			continue
		}
		us := g[c1][i-1]
		if len(us) == 0 {
			continue
		}
		start := 0
		if i == j {
			start = c1 + 1
		}
		for c2 := start; c2 < len(g); c2++ {
			if c2 == c1 || len(g[c2]) < j {
				continue
			}
			vs := g[c2][j-1]
			for _, u := range us {
				for _, v := range vs {
					visit(u, v, d)
				}
			}
		}
	}
}

// MineCounts computes the same ItemSet as Mine without materializing
// individual node pairs: per potential LCA it aggregates label counts by
// depth, then derives cross-child pair counts from the totals minus a
// same-child correction — total(l1)·total(l2) − Σ_c count_c(l1)·count_c(l2)
// — so the cost per node is driven by the number of distinct labels, not
// the number of pairs. On label-dense trees (a star of identical leaves,
// the Table 3 workloads at high fanout) it does asymptotically less work
// than Mine; the benchmark harness uses the two as an ablation pair. The
// result is always identical to Mine's.
func MineCounts(t *tree.Tree, opts Options) ItemSet {
	m := newMiner(t, opts)
	items := make(ItemSet)
	for _, d := range ValidDistances(opts.MaxDist) {
		i, j := d.Levels()
		for _, g := range m.groups {
			countsAt(t, g, i, j, d, items)
		}
	}
	return items.FilterMinOccur(opts.MinOccur)
}

func countsAt(t *tree.Tree, g [][][]tree.NodeID, i, j int, d Dist, items ItemSet) {
	hist := func(c, depth int) map[string]int {
		if len(g[c]) < depth {
			return nil
		}
		nodes := g[c][depth-1]
		if len(nodes) == 0 {
			return nil
		}
		h := make(map[string]int, len(nodes))
		for _, n := range nodes {
			h[t.MustLabel(n)]++
		}
		return h
	}
	// Totals across children at each depth, plus the same-child
	// correction: pairs within one child subtree have a deeper LCA and
	// must not be counted here.
	totalI := map[string]int{}
	totalJ := map[string]int{}
	same := map[Key]int{}
	for c := range g {
		hi := hist(c, i)
		if hi == nil && i == j {
			continue
		}
		hj := hi
		if i != j {
			hj = hist(c, j)
		}
		for l, n := range hi {
			totalI[l] += n
		}
		if i != j {
			for l, n := range hj {
				totalJ[l] += n
			}
		}
		if hi == nil || hj == nil {
			continue
		}
		for l1, n1 := range hi {
			for l2, n2 := range hj {
				if i == j {
					// Count each unordered same-child label combination
					// once; the cross-product below is also de-duplicated
					// for i == j.
					if l1 > l2 {
						continue
					}
					prod := n1 * n2
					if l1 == l2 {
						prod = n1 * (n1 - 1) / 2
					}
					same[NewKey(l1, l2, d)] += prod
				} else {
					same[NewKey(l1, l2, d)] += n1 * n2
				}
			}
		}
	}
	if i == j {
		totalJ = totalI
	}
	for l1, n1 := range totalI {
		for l2, n2 := range totalJ {
			if i == j && l1 > l2 {
				continue
			}
			var cross int
			if i == j && l1 == l2 {
				cross = n1 * (n1 - 1) / 2
			} else {
				cross = n1 * n2
			}
			k := NewKey(l1, l2, d)
			// The same-child correction is keyed unordered and holds
			// both label orientations; consume it exactly once (the
			// second orientation's iteration then subtracts nothing).
			if delta := cross - same[k]; delta != 0 {
				items[k] += delta
			}
			delete(same, k)
		}
	}
}
