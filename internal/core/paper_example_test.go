package core

// This file reconstructs the paper's Figure 1 running example as closely
// as the available text allows. The published scan of Figure 1 and
// Table 1 is too degraded to recover node-for-node, so the trees below
// are built to satisfy every statement the running text makes about them:
//
//   - In T2, nodes 2 and 3 carry the same label "a" and nodes 5 and 6
//     carry the same label "c" (§2).
//   - "Node 2 and node 6, node 3 and node 5 respectively, is an
//     aunt–niece pair with cousin distance 0.5 … the cousin pair (a, c)
//     with distance 0.5 occurs 2 times totally in tree T2, and hence
//     (a, c, 0.5, 2) is a valid cousin pair item in T2" (§2).
//   - A cousin pair occurring once at distance 0 and once at distance 1
//     in the same tree aggregates to occurrence 2 under the wildcard
//     distance (§2's (l1, l2, *, 2) example).
//   - The support of a label pair at a fixed distance counts only trees
//     realizing that distance, while ignoring the distance raises the
//     support (§2's frequent-pair example: support 2 at distance 1,
//     support 3 with distance ignored).

import (
	"testing"

	"treemine/internal/tree"
)

// paperT2 builds the reconstructed T2:
//
//	     1(unlabeled)
//	     /         \
//	    2:a         3:a
//	     |           |
//	    5:c         6:c
func paperT2() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	n2 := b.Child(r, "a")
	n3 := b.Child(r, "a")
	b.Child(n2, "c")
	b.Child(n3, "c")
	return b.MustBuild()
}

// paperT1 contains (a, c) as first cousins (distance 1) and (b, d) as
// siblings.
func paperT1() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	rr := b.ChildUnlabeled(r)
	b.Child(l, "a")
	b.Child(l, "b")
	b.Child(rr, "c")
	b.Child(rr, "d")
	// Give T1 the (b, d) sibling pair elsewhere.
	x := b.ChildUnlabeled(r)
	b.Child(x, "b")
	b.Child(x, "d")
	return b.MustBuild()
}

// paperT3 contains (a, c) both as siblings (distance 0) and as first
// cousins (distance 1), so its wildcard-distance item is (a, c, *, 2).
func paperT3() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	b.Child(l, "a")
	b.Child(l, "c")
	m := b.ChildUnlabeled(r)
	b.Child(m, "a")
	return b.MustBuild()
}

func TestPaperExampleT2AuntNiece(t *testing.T) {
	items := Mine(paperT2(), DefaultOptions())
	// (a, c, 0.5, 2): the pair of aunt–niece pairs 2–6 and 3–5.
	if got := items[NewKey("a", "c", D(1))]; got != 2 {
		t.Errorf("(a,c,0.5) occurrences = %d, want 2", got)
	}
	// (a, a, 0, 1): nodes 2 and 3 are siblings.
	if got := items[NewKey("a", "a", D(0))]; got != 1 {
		t.Errorf("(a,a,0) occurrences = %d, want 1", got)
	}
	// (c, c, 1, 1): nodes 5 and 6 are first cousins.
	if got := items[NewKey("c", "c", D(2))]; got != 1 {
		t.Errorf("(c,c,1) occurrences = %d, want 1", got)
	}
	if len(items) != 3 {
		t.Errorf("T2 item count = %d, want 3: %v", len(items), items.Items())
	}
}

func TestPaperExampleWildcardAggregation(t *testing.T) {
	// T3 has (a,c,0,1) and (a,c,1,1); ignoring the distance gives
	// (a,c,*,2) exactly as in §2.
	items := Mine(paperT3(), DefaultOptions())
	if got := items[NewKey("a", "c", D(0))]; got != 1 {
		t.Fatalf("(a,c,0) = %d, want 1", got)
	}
	if got := items[NewKey("a", "c", D(2))]; got != 1 {
		t.Fatalf("(a,c,1) = %d, want 1", got)
	}
	agg := items.IgnoreDist()
	if got := agg[Key{"a", "c", DistWild}]; got != 2 {
		t.Fatalf("(a,c,*) = %d, want 2", got)
	}
}

func TestPaperExampleSupport(t *testing.T) {
	forest := []*tree.Tree{paperT1(), paperT2(), paperT3()}
	opts := DefaultOptions()
	// At distance 1 only T1 and T3 contain (a, c): support 2.
	if got := Support(forest, "a", "c", D(2), opts); got != 2 {
		t.Errorf("support of (a,c) at distance 1 = %d, want 2", got)
	}
	// Ignoring the distance all three trees contain (a, c): support 3.
	if got := Support(forest, "a", "c", DistWild, opts); got != 3 {
		t.Errorf("support of (a,c) ignoring distance = %d, want 3", got)
	}
}

func TestPaperExampleMineForest(t *testing.T) {
	forest := []*tree.Tree{paperT1(), paperT2(), paperT3()}
	// Distance-sensitive with the Table 2 default minsup 2.
	fp := MineForest(forest, DefaultForestOptions())
	found := false
	for _, p := range fp {
		if p.Key == NewKey("a", "c", D(2)) {
			found = true
			if p.Support != 2 {
				t.Errorf("(a,c,1) support = %d, want 2", p.Support)
			}
		}
		if p.Support < 2 {
			t.Errorf("pair %v below minsup", p)
		}
	}
	if !found {
		t.Errorf("(a,c,1) not frequent; got %v", fp)
	}

	// Distance-insensitive: (a,c) supported by all three trees.
	opts := DefaultForestOptions()
	opts.IgnoreDist = true
	fp = MineForest(forest, opts)
	if len(fp) == 0 || fp[0].Key != (Key{"a", "c", DistWild}) || fp[0].Support != 3 {
		t.Fatalf("distance-insensitive head = %v, want (a,c,*) support 3", fp)
	}
}
