package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSymbolsInternLookup(t *testing.T) {
	s := NewSymbols()
	a := s.Intern("alpha")
	b := s.Intern("beta")
	if a == b {
		t.Fatal("distinct labels share an ID")
	}
	if got := s.Intern("alpha"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	if id, ok := s.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := s.Lookup("gamma"); ok {
		t.Fatal("Lookup on missing label succeeded")
	}
	if s.Label(a) != "alpha" || s.Label(b) != "beta" {
		t.Fatal("Label round trip failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	// The empty string is a valid label.
	e := s.Intern("")
	if s.Label(e) != "" || s.Len() != 3 {
		t.Fatal("empty label not interned")
	}
	s.reset()
	if s.Len() != 0 {
		t.Fatalf("Len after reset = %d", s.Len())
	}
	if got := s.Intern("beta"); got != 0 {
		t.Fatalf("first ID after reset = %d, want 0", got)
	}
}

func TestSymbolsInternTree(t *testing.T) {
	tr := handTree(t)
	s := NewSymbols()
	s.InternTree(tr)
	// handTree has labels a..g and two unlabeled nodes.
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	for _, l := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		if _, ok := s.Lookup(l); !ok {
			t.Errorf("label %q missing", l)
		}
	}
}

func TestIKeyPackRoundTrip(t *testing.T) {
	cases := []struct {
		a, b uint32
		d    Dist
	}{
		{0, 0, 0},
		{0, 0, DistWild},
		{1, 2, D(3)},
		{2, 1, D(3)}, // canonicalized
		{MaxSymbols - 1, 0, MaxPackedDist},
		{MaxSymbols - 1, MaxSymbols - 1, MaxPackedDist},
		{7, 7, DistWild},
	}
	for _, c := range cases {
		k := NewIKey(c.a, c.b, c.d)
		a, b := k.Syms()
		wantA, wantB := c.a, c.b
		if wantB < wantA {
			wantA, wantB = wantB, wantA
		}
		if a != wantA || b != wantB || k.Dist() != c.d {
			t.Errorf("NewIKey(%d,%d,%s) unpacked to (%d,%d,%s)", c.a, c.b, c.d, a, b, k.Dist())
		}
	}
}

func TestIKeyPackProperty(t *testing.T) {
	f := func(a, b uint32, dh uint8) bool {
		a %= MaxSymbols
		b %= MaxSymbols
		d := Dist(int(dh)%int(MaxPackedDist+2)) - 1 // DistWild .. MaxPackedDist
		k := NewIKey(a, b, d)
		ga, gb := k.Syms()
		if b < a {
			a, b = b, a
		}
		return ga == a && gb == b && k.Dist() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIKeyKeyConversion(t *testing.T) {
	s := NewSymbols()
	// Intern in reverse lexicographic order so symbol order ≠ label order.
	z := s.Intern("z")
	a := s.Intern("a")
	k := NewIKey(z, a, D(1)) // canonical by ID puts z's ID first
	if got, want := k.Key(s), NewKey("a", "z", D(1)); got != want {
		t.Fatalf("Key = %v, want %v (string re-canonicalization)", got, want)
	}
}

func TestISetViewsMatchItemSetViews(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randLabeledTree(rng, 50)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	syms := NewSymbols()
	syms.InternTree(tr)
	is := MineISet(tr, opts, syms)
	items := Mine(tr, opts)
	if !reflect.DeepEqual(is.ToItemSet(syms, 1), items) {
		t.Fatal("MineISet does not match Mine")
	}
	for _, v := range []Variant{VariantLabel, VariantDist, VariantOccur, VariantDistOccur} {
		got := is.view(v).ToItemSet(syms, 0)
		want := v.view(items)
		// ToItemSet with minOccur 0 keeps everything, matching the map copy.
		if !reflect.DeepEqual(got, ItemSet(want)) {
			t.Errorf("%s: interned view %v != string view %v", v, got, want)
		}
	}
}

func TestAccumDenseAndMapModesAgree(t *testing.T) {
	type op struct {
		a, b uint32
		dc   int
		n    int32
	}
	rng := rand.New(rand.NewSource(5))
	var ops []op
	for i := 0; i < 500; i++ {
		ops = append(ops, op{uint32(rng.Intn(8)), uint32(rng.Intn(8)), rng.Intn(3), int32(rng.Intn(7) - 3)})
	}
	collect := func(ac *accum) map[IKey]int32 {
		out := map[IKey]int32{}
		ac.drain(func(a, b uint32, dc int, n int32) { out[NewIKey(a, b, Dist(dc))] = n })
		return out
	}
	var dense, asMap accum
	dense.init(8, 3) // 192 cells: dense
	if dense.m != nil {
		t.Fatal("expected dense mode")
	}
	asMap.init(2048, 3) // over maxDenseCells: map
	if asMap.m == nil {
		t.Fatal("expected map mode")
	}
	for _, o := range ops {
		dense.add(o.a, o.b, o.dc, o.n)
		asMap.add(o.a, o.b, o.dc, o.n)
	}
	d, m := collect(&dense), collect(&asMap)
	if !reflect.DeepEqual(d, m) {
		t.Fatalf("dense %v != map %v", d, m)
	}
	// Draining resets: a second pass over the same ops gives the same
	// answer (cells including transient zeros were fully cleared).
	for _, o := range ops {
		dense.add(o.a, o.b, o.dc, o.n)
	}
	if again := collect(&dense); !reflect.DeepEqual(again, d) {
		t.Fatalf("reused accum %v != first pass %v", again, d)
	}
}

func TestAccumTransientZero(t *testing.T) {
	var ac accum
	ac.init(4, 1)
	ac.add(1, 2, 0, 3)
	ac.add(1, 2, 0, -3) // back to zero
	ac.add(1, 2, 0, 5)  // touched again: duplicate touched entry
	got := map[IKey]int32{}
	ac.drain(func(a, b uint32, dc int, n int32) { got[NewIKey(a, b, Dist(dc))] += n })
	want := map[IKey]int32{NewIKey(1, 2, 0): 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain = %v, want %v", got, want)
	}
}
