package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"treemine/internal/faults"
	"treemine/internal/guard"
	"treemine/internal/tree"
)

// Chaos suite: fault-injection and cancellation tests for the parallel
// and streaming entry points. Every test here runs under `make chaos`
// with -race; the names match the `make race` regex
// (Parallel|Forest|Shard|Stream|Differential) so the standing race gate
// covers them too.

// cancelAfterIterator wraps an iterator and cancels the context after
// yielding k trees — a deterministic "user hits Ctrl-C mid-stream".
type cancelAfterIterator struct {
	inner   TreeIterator
	cancel  context.CancelFunc
	k, seen int
}

func (c *cancelAfterIterator) Next() (*tree.Tree, error) {
	t, err := c.inner.Next()
	if err == nil {
		c.seen++
		if c.seen == c.k {
			c.cancel()
		}
	}
	return t, err
}

// errAtIterator fails with err at tree index k (0-based), yielding the
// underlying trees before that.
type errAtIterator struct {
	inner TreeIterator
	k, i  int
	err   error
}

func (e *errAtIterator) Next() (*tree.Tree, error) {
	if e.i == e.k {
		return nil, e.err
	}
	e.i++
	return e.inner.Next()
}

// waitNoExtraGoroutines retries until the goroutine count returns to
// the baseline (drained pools unwind asynchronously after Wait).
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamShardCancelCheckpointResumeDifferential is the headline
// acceptance test: cancelling MineForestStreamShardCtx mid-stream
// returns context.Canceled promptly, the shard it returns covers an
// exact prefix of the stream, and checkpointing that shard then
// resuming with SkipTrees = Trees() finishes to results identical to an
// uninterrupted run.
func TestStreamShardCancelCheckpointResumeDifferential(t *testing.T) {
	const n, seed, size, alpha = 400, 19, 30, 8
	opts := DefaultForestOptions()
	want, err := MineForestStream(newGenIterator(seed, n, size, alpha), opts, 3)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it := &cancelAfterIterator{inner: newGenIterator(seed, n, size, alpha), cancel: cancel, k: 150}
	partial, err := MineForestStreamShardCtx(ctx, it, opts, StreamConfig{Workers: 3, BatchSize: 16})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream error = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled stream returned no shard to checkpoint")
	}
	p := partial.Trees()
	// Round-atomic cancellation: the prefix can be shorter than the
	// point of cancellation (the in-flight round is discarded), but
	// never longer than one full round past it.
	if p > 150 {
		t.Fatalf("shard covers %d trees, beyond the cancellation point 150", p)
	}

	// Checkpoint = Snapshot/Restore round trip (what the store file does).
	o, trees, labels, items := partial.Snapshot()
	restored, err := RestoreShard(o, trees, labels, items)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := MineForestStreamShardCtx(context.Background(),
		newGenIterator(seed, n, size, alpha), opts,
		StreamConfig{Workers: 3, BatchSize: 16, Resume: restored, SkipTrees: restored.Trees()})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Trees() != n {
		t.Fatalf("resumed shard holds %d trees, want %d", sh.Trees(), n)
	}
	if got := sh.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("resume after cancel diverged: %d vs %d pairs", len(got), len(want))
	}
}

// TestLevelVecCancelledStreamPrefixDifferential pins the §48 blocked
// accumulation path under mid-stream cancellation: every tree of this
// corpus drains through the dense cache-blocked accumulator (the small
// alphabet keeps the miner in dense mode), and the partial shard a
// cancelled MineForestStreamShardCtx returns must still be the EXACT
// support state of a stream prefix — finalizing it equals batch-mining
// the same prefix tree-for-tree.
func TestLevelVecCancelledStreamPrefixDifferential(t *testing.T) {
	const n, seed, size, alpha = 500, 48, 60, 12
	opts := DefaultForestOptions()

	// Sanity: this shape really exercises the blocked path.
	probe := newGenIterator(seed, n, size, alpha)
	tr0, err := probe.Next()
	if err != nil {
		t.Fatal(err)
	}
	syms := NewSymbols()
	syms.InternTree(tr0)
	m := getMiner(tr0, opts.Options, syms)
	m.acc.init(syms.Len(), m.nd)
	if m.acc.dense == nil {
		m.acc.discard()
		m.release()
		t.Fatal("probe tree not in dense mode; corpus would miss the blocked path")
	}
	m.acc.discard()
	m.release()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it := &cancelAfterIterator{inner: newGenIterator(seed, n, size, alpha), cancel: cancel, k: 200}
	partial, err := MineForestStreamShardCtx(ctx, it, opts, StreamConfig{Workers: 3, BatchSize: 16})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream error = %v, want context.Canceled", err)
	}
	p := partial.Trees()
	if p == 0 || p > 200 {
		t.Fatalf("shard covers %d trees, want a nonempty prefix ≤ the cancellation point 200", p)
	}

	fresh := newGenIterator(seed, n, size, alpha)
	forest := make([]*tree.Tree, p)
	for i := range forest {
		if forest[i], err = fresh.Next(); err != nil {
			t.Fatal(err)
		}
	}
	want := MineForest(forest, opts)
	if got := partial.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("cancelled shard diverged from its %d-tree prefix: %d vs %d pairs", p, len(got), len(want))
	}
}

// TestStreamIteratorErrorNamesTreeAndResumes injects an iterator
// failure at tree k: the error must name k, the last checkpoint must
// still load, and resuming from it must finish to the uninterrupted
// result.
func TestStreamIteratorErrorNamesTreeAndResumes(t *testing.T) {
	const n, seed, size, alpha = 300, 23, 30, 8
	const failAt = 137
	opts := DefaultForestOptions()
	want, err := MineForestStream(newGenIterator(seed, n, size, alpha), opts, 2)
	if err != nil {
		t.Fatal(err)
	}

	var lastCkpt *SupportShard
	boom := errors.New("disk detached")
	it := &errAtIterator{inner: newGenIterator(seed, n, size, alpha), k: failAt, err: boom}
	_, err = MineForestStreamShardCtx(context.Background(), it, opts, StreamConfig{
		Workers:         2,
		BatchSize:       16,
		CheckpointEvery: 50,
		Checkpoint: func(sh *SupportShard) error {
			o, trees, labels, items := sh.Snapshot()
			restored, rerr := RestoreShard(o, trees, labels, items)
			if rerr != nil {
				return rerr
			}
			lastCkpt = restored
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("iterator failure error = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("tree %d", failAt)) {
		t.Fatalf("error %q does not name the failing tree %d", err, failAt)
	}
	if lastCkpt == nil {
		t.Fatal("no checkpoint was taken before the failure")
	}
	if lastCkpt.Trees() == 0 || lastCkpt.Trees() >= failAt {
		t.Fatalf("checkpoint covers %d trees, want a nonempty prefix below %d", lastCkpt.Trees(), failAt)
	}

	sh, err := MineForestStreamShardCtx(context.Background(),
		newGenIterator(seed, n, size, alpha), opts,
		StreamConfig{Workers: 2, BatchSize: 16, Resume: lastCkpt, SkipTrees: lastCkpt.Trees()})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
		t.Fatalf("resume after iterator failure diverged: %d vs %d pairs", len(got), len(want))
	}
}

// TestParallelEntryPointsContainWorkerPanics injects a panic into the
// worker of every parallel entry point: each must return an error
// wrapping guard.ErrPanic (naming the work unit), not crash, and leak
// no goroutines.
func TestParallelEntryPointsContainWorkerPanics(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	forest := shardChaosForest(31, 40, 25)
	opts := DefaultForestOptions()

	cases := []struct {
		name  string
		point string
		call  func() error
	}{
		{"MineForestParallelCtx", faults.MineWorker, func() error {
			_, err := MineForestParallelCtx(context.Background(), forest, opts, 4)
			return err
		}},
		{"MineForestStreamCtx", faults.MineWorker, func() error {
			_, err := MineForestStreamCtx(context.Background(), NewSliceIterator(forest), opts, 4)
			return err
		}},
		{"BuildProfilesCtx", faults.ProfileWorker, func() error {
			_, err := BuildProfilesCtx(context.Background(), forest, VariantDistOccur, opts.Options, 4)
			return err
		}},
		{"TDistMatrixParallelCtx", faults.MatrixWorker, func() error {
			_, err := TDistMatrixParallelCtx(context.Background(), forest, VariantDistOccur, opts.Options, 4)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			faults.Reset()
			faults.Enable(tc.point, faults.Spec{Mode: faults.ModePanic, After: 7, Count: 1})
			err := tc.call()
			if err == nil {
				t.Fatalf("%s swallowed an injected worker panic", tc.name)
			}
			if !errors.Is(err, guard.ErrPanic) {
				t.Fatalf("%s error = %v, want wrapped guard.ErrPanic", tc.name, err)
			}
			waitNoExtraGoroutines(t, base)
		})
	}
}

// shardChaosForest builds a deterministic forest via the generator
// iterator (materialized; small enough for the panic-containment runs).
func shardChaosForest(seed int64, n, size int) []*tree.Tree {
	it := newGenIterator(seed, n, size, 8)
	out := make([]*tree.Tree, 0, n)
	for {
		tr, err := it.Next()
		if err == io.EOF {
			return out
		}
		out = append(out, tr)
	}
}

// TestStreamWorkerCountEdgesUnderCancellation sweeps the degenerate
// pool shapes (a single worker; more workers than the batch holds)
// against the cancellation modes: already-cancelled context, expired
// deadline, and cancel-after-first-batch. Every combination must return
// the context's error, never hang, and hand back a prefix shard.
func TestStreamWorkerCountEdgesUnderCancellation(t *testing.T) {
	const n, seed, size, alpha = 200, 29, 25, 8
	opts := DefaultForestOptions()
	for _, workers := range []int{1, 16} {
		batch := 8 // workers=16 > batch=8: more workers than work per round
		for _, mode := range []string{"immediate", "deadline", "after-first-batch"} {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(t *testing.T) {
				var ctx context.Context
				var cancel context.CancelFunc
				it := TreeIterator(newGenIterator(seed, n, size, alpha))
				wantErr := context.Canceled
				switch mode {
				case "immediate":
					ctx, cancel = context.WithCancel(context.Background())
					cancel()
				case "deadline":
					ctx, cancel = context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
					wantErr = context.DeadlineExceeded
				case "after-first-batch":
					ctx, cancel = context.WithCancel(context.Background())
					it = &cancelAfterIterator{inner: it, cancel: cancel, k: workers*batch + 1}
				}
				defer cancel()
				sh, err := MineForestStreamShardCtx(ctx, it, opts,
					StreamConfig{Workers: workers, BatchSize: batch})
				if !errors.Is(err, wantErr) {
					t.Fatalf("error = %v, want %v", err, wantErr)
				}
				if sh == nil {
					t.Fatal("no shard returned")
				}
				if mode != "after-first-batch" && sh.Trees() != 0 {
					t.Fatalf("pre-cancelled stream mined %d trees", sh.Trees())
				}
				// Whatever prefix came back must resume to the full result.
				o, trees, labels, items := sh.Snapshot()
				restored, rerr := RestoreShard(o, trees, labels, items)
				if rerr != nil {
					t.Fatal(rerr)
				}
				full, ferr := MineForestStreamShardCtx(context.Background(),
					newGenIterator(seed, n, size, alpha), opts,
					StreamConfig{Workers: workers, BatchSize: batch, Resume: restored, SkipTrees: restored.Trees()})
				if ferr != nil {
					t.Fatal(ferr)
				}
				if full.Trees() != n {
					t.Fatalf("resumed to %d trees, want %d", full.Trees(), n)
				}
			})
		}
	}
}

// TestParallelCancelledReturnsContextError: the batch (non-streaming)
// parallel entry points also observe cancellation between trees.
func TestParallelCancelledReturnsContextError(t *testing.T) {
	forest := shardChaosForest(37, 30, 25)
	opts := DefaultForestOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineForestParallelCtx(ctx, forest, opts, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineForestParallelCtx error = %v, want Canceled", err)
	}
	if _, err := BuildProfilesCtx(ctx, forest, VariantDistOccur, opts.Options, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildProfilesCtx error = %v, want Canceled", err)
	}
	if _, err := TDistMatrixParallelCtx(ctx, forest, VariantDistOccur, opts.Options, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("TDistMatrixParallelCtx error = %v, want Canceled", err)
	}
}

// TestStreamCheckpointFaultInjection drives the checkpoint failpoint:
// an injected checkpoint failure aborts the stream with a wrapped
// error, and after the failpoint disarms the same run succeeds.
func TestStreamCheckpointFaultInjection(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	opts := DefaultForestOptions()
	faults.Enable(faults.StreamCheckpoint, faults.Spec{Mode: faults.ModeError, Count: 1})
	_, err := MineForestStreamShardCtx(context.Background(),
		newGenIterator(3, 100, 20, 5), opts,
		StreamConfig{Workers: 2, BatchSize: 10, CheckpointEvery: 30,
			Checkpoint: func(*SupportShard) error { return nil }})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("checkpoint fault error = %v, want injected", err)
	}
	if !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("error %q does not name the checkpoint stage", err)
	}

	sh, err := MineForestStreamShardCtx(context.Background(),
		newGenIterator(3, 100, 20, 5), opts,
		StreamConfig{Workers: 2, BatchSize: 10, CheckpointEvery: 30,
			Checkpoint: func(*SupportShard) error { return nil }})
	if err != nil || sh.Trees() != 100 {
		t.Fatalf("post-fault run: %v, trees %d", err, sh.Trees())
	}
}
