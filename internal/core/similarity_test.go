package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func TestSimIdenticalTrees(t *testing.T) {
	tr := handTree(t)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	// Against itself every shared pair contributes exactly 1, so σ equals
	// the number of distinct label pairs.
	pairs := len(Mine(tr, opts).LabelPairs())
	if got := Sim(tr, tr, opts); got != float64(pairs) {
		t.Fatalf("Sim(T,T) = %v, want %d", got, pairs)
	}
}

func TestSimDisjointLabels(t *testing.T) {
	mk := func(l1, l2 string) *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, l1)
		b.Child(r, l2)
		return b.MustBuild()
	}
	if got := Sim(mk("a", "b"), mk("x", "y"), DefaultOptions()); got != 0 {
		t.Fatalf("Sim(disjoint) = %v, want 0", got)
	}
}

func TestSimDistancePenalty(t *testing.T) {
	// (a, b) as siblings vs (a, b) as first cousins: single shared pair
	// with |0 − 1| = 1 difference contributes 1/(1+1) = 0.5.
	sib := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "a")
		b.Child(r, "b")
		return b.MustBuild()
	}()
	cousins := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		l := b.ChildUnlabeled(r)
		rr := b.ChildUnlabeled(r)
		b.Child(l, "a")
		b.Child(rr, "b")
		return b.MustBuild()
	}()
	if got := Sim(sib, cousins, DefaultOptions()); got != 0.5 {
		t.Fatalf("Sim = %v, want 0.5", got)
	}
	// Half-generation difference: siblings vs aunt–niece, 1/(1+0.5) = 2/3.
	aunt := func() *tree.Tree {
		b := tree.NewBuilder()
		r := b.RootUnlabeled()
		b.Child(r, "a")
		x := b.ChildUnlabeled(r)
		b.Child(x, "b")
		return b.MustBuild()
	}()
	if got := Sim(sib, aunt, DefaultOptions()); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Sim = %v, want 2/3", got)
	}
}

func TestSimSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := randLabeledTree(rng, 25)
		t2 := randLabeledTree(rng, 25)
		opts := DefaultOptions()
		return Sim(t1, t2, opts) == Sim(t2, t1, opts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSimUpperBound(t *testing.T) {
	// σ(C,T) never exceeds the number of label pairs shared.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := randLabeledTree(rng, 30)
		t2 := randLabeledTree(rng, 30)
		opts := DefaultOptions()
		s1, s2 := Mine(t1, opts), Mine(t2, opts)
		shared := len(s1.LabelPairs().Intersect(s2.LabelPairs()))
		return SimItems(s1, s2) <= float64(shared)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgSim(t *testing.T) {
	tr := handTree(t)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	set := []*tree.Tree{tr, tr, tr}
	if got, want := AvgSim(tr, set, opts), Sim(tr, tr, opts); got != want {
		t.Fatalf("AvgSim = %v, want %v", got, want)
	}
	if got := AvgSim(tr, nil, opts); got != 0 {
		t.Fatalf("AvgSim(empty) = %v, want 0", got)
	}
}
