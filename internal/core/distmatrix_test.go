package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

// serialMapMatrix is the pre-engine reference fill: string-keyed Mine
// once per tree, then TDistItems (per-pair view rebuilds) over the upper
// triangle — exactly what cluster.TDistMatrix did before the profile
// engine.
func serialMapMatrix(trees []*tree.Tree, v Variant, opts Options) [][]float64 {
	n := len(trees)
	items := make([]ItemSet, n)
	for i, t := range trees {
		items[i] = Mine(t, opts)
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := TDistItems(items[i], items[j], v)
			out[i][j], out[j][i] = d, d
		}
	}
	return out
}

// TestTDistMatrixParallelDifferential pins the engine end to end:
// TDistMatrixParallel at several worker counts (including the serial
// fill) against the map-based per-pair reference, over random forests
// whose MaxDist sweeps the packable boundary and across all four
// variants. Running under -race (the Makefile race target matches
// "Parallel") also exercises the row work-stealing for data races.
func TestTDistMatrixParallelDifferential(t *testing.T) {
	f := func(seed int64, nt, size, alpha, maxD, vsel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := randDifferentialForest(rng, int(nt)%9, int(size)%35+1, int(alpha)%5+1)
		opts := Options{MaxDist: Dist(int(maxD) % 20), MinOccur: 1}
		v := allVariants[int(vsel)%len(allVariants)]
		want := serialMapMatrix(forest, v, opts)
		for _, workers := range []int{1, 2, 5, 0} {
			m := TDistMatrixParallel(forest, v, opts, workers)
			if m.Len() != len(forest) {
				t.Logf("workers=%d: Len %d != %d", workers, m.Len(), len(forest))
				return false
			}
			for i := 0; i < len(forest); i++ {
				for j := 0; j < len(forest); j++ {
					if got := m.At(i, j); got != want[i][j] {
						t.Logf("workers=%d v=%v opts=%+v: At(%d,%d) = %v, want %v",
							workers, v, opts, i, j, got, want[i][j])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTDistMatrixParallelRaceStress drives the work-stealing fill with
// more workers than rows and a forest big enough for real contention;
// its value is under -race, where any overlapping write or unsynchronized
// read in the row claims would trip the detector.
func TestTDistMatrixParallelRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	forest := randForest(rng, 48, 25, 4)
	opts := DefaultOptions()
	serial := TDistMatrixParallel(forest, VariantDistOccur, opts, 1)
	parallel := TDistMatrixParallel(forest, VariantDistOccur, opts, 16)
	for i := 0; i < len(forest); i++ {
		for j := i + 1; j < len(forest); j++ {
			if serial.At(i, j) != parallel.At(i, j) {
				t.Fatalf("At(%d,%d): serial %v != parallel %v", i, j, serial.At(i, j), parallel.At(i, j))
			}
		}
	}
}

// TestDistMatrixEdgeCases: empty and single-tree inputs produce valid,
// empty matrices at any worker count.
func TestDistMatrixEdgeCases(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		m := TDistMatrixParallel(nil, VariantDistOccur, DefaultOptions(), workers)
		if m.Len() != 0 || len(m.Condensed()) != 0 {
			t.Fatalf("workers=%d: empty forest matrix = %d/%d", workers, m.Len(), len(m.Condensed()))
		}
		rng := rand.New(rand.NewSource(1))
		one := randForest(rng, 1, 10, 2)
		m = TDistMatrixParallel(one, VariantDistOccur, DefaultOptions(), workers)
		if m.Len() != 1 || m.At(0, 0) != 0 {
			t.Fatalf("workers=%d: single-tree matrix Len=%d At(0,0)=%v", workers, m.Len(), m.At(0, 0))
		}
	}
}
