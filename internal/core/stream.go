package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"treemine/internal/faults"
	"treemine/internal/guard"
	"treemine/internal/tree"
)

// TreeIterator yields the trees of a forest one at a time. Next returns
// io.EOF after the last tree; any other error aborts the consumer.
// Iterators let forest mining run over corpora that never fit in memory
// — a Newick stream on disk, a generator, a network feed.
type TreeIterator interface {
	Next() (*tree.Tree, error)
}

// sliceIterator adapts an in-memory forest to the TreeIterator interface.
type sliceIterator struct {
	trees []*tree.Tree
	i     int
}

// NewSliceIterator returns a TreeIterator over an in-memory forest.
func NewSliceIterator(trees []*tree.Tree) TreeIterator {
	return &sliceIterator{trees: trees}
}

func (it *sliceIterator) Next() (*tree.Tree, error) {
	if it.i >= len(it.trees) {
		return nil, io.EOF
	}
	t := it.trees[it.i]
	it.i++
	return t, nil
}

// StreamConfig tunes MineForestStreamShard beyond the plain
// MineForestStream entry point. The zero value is usable: GOMAXPROCS
// workers, the default batch size, no checkpointing, a fresh shard.
type StreamConfig struct {
	// Workers is the number of concurrent mining goroutines; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// BatchSize is the number of trees each worker receives per round;
	// Workers × BatchSize trees are resident at a time, which (plus the
	// support shard itself) is the pipeline's whole memory footprint.
	// ≤ 0 selects the default of 64.
	BatchSize int
	// CheckpointEvery invokes Checkpoint after at least this many trees
	// have been folded in since the last checkpoint (and once more at
	// the end of the stream). 0 disables checkpointing.
	CheckpointEvery int
	// Checkpoint receives the master shard between rounds — typically to
	// serialize it through internal/store. The shard is quiescent for
	// the duration of the call. A non-nil error aborts the stream.
	Checkpoint func(*SupportShard) error
	// AfterRound, when non-nil, runs after every mined round while the
	// master shard is quiescent — before any checkpoint due that round.
	// It is the out-of-core hook: a spill accumulator checks the shard's
	// resident entry count here and drains it to disk past its budget. A
	// non-nil error aborts the stream.
	AfterRound func(*SupportShard) error
	// Resume, when non-nil, is the shard to continue into (e.g. one
	// reloaded from a checkpoint file) instead of a fresh one. Its
	// options must equal the mining options.
	Resume *SupportShard
	// SkipTrees discards this many leading trees from the iterator
	// before mining — set it to Resume.Trees() when replaying the same
	// stream a checkpointed run was consuming.
	SkipTrees int
}

const defaultStreamBatch = 64

// MineForestStream is Multiple_Tree_Mining over a tree stream: trees are
// consumed from it in bounded batches, mined concurrently by workers
// holding private SupportShards, and the shards are merged into one
// result. The output is exactly MineForest's — same pairs, same counts,
// same order — but peak memory is bounded by workers × batch trees plus
// the support table, rather than by the corpus, so it scales to forests
// that never fit in memory. workers ≤ 0 selects GOMAXPROCS.
func MineForestStream(it TreeIterator, opts ForestOptions, workers int) ([]FrequentPair, error) {
	return MineForestStreamCtx(context.Background(), it, opts, workers)
}

// MineForestStreamCtx is MineForestStream under a context: cancellation
// is observed within one batch of work and surfaces as ctx.Err().
func MineForestStreamCtx(ctx context.Context, it TreeIterator, opts ForestOptions, workers int) ([]FrequentPair, error) {
	sh, err := MineForestStreamShardCtx(ctx, it, opts, StreamConfig{Workers: workers})
	if err != nil {
		return nil, err
	}
	return sh.Finalize(opts.MinSup), nil
}

// MineForestStreamShard is the configurable streaming core: it returns
// the accumulated SupportShard instead of finalizing, supports
// checkpoint callbacks and resuming from a restored shard, and on error
// returns the shard mined so far alongside the error (so a caller can
// checkpoint even a failed run).
func MineForestStreamShard(it TreeIterator, opts ForestOptions, cfg StreamConfig) (*SupportShard, error) {
	return MineForestStreamShardCtx(context.Background(), it, opts, cfg)
}

// MineForestStreamShardCtx is MineForestStreamShard under a context.
// Cancellation is cooperative and round-atomic: the iterator fill loop
// checks ctx per tree and the mining workers per mined tree, but a
// cancelled round's partial worker shards are discarded rather than
// merged — so the returned shard always covers an exact prefix of the
// stream, its Trees() count names that prefix, and a checkpoint of it
// resumes (SkipTrees = Trees()) to results identical to an uninterrupted
// run. The call returns ctx.Err() within one round (≤ workers × batch
// trees) of cancellation.
//
// A worker panic is contained at the pool boundary: it surfaces as an
// error wrapping guard.ErrPanic naming the offending stream tree index,
// the remaining workers drain, and — like every other mid-stream error —
// the shard mined through the last completed round is still returned.
// Iterator errors are wrapped with the index of the tree that failed.
func MineForestStreamShardCtx(ctx context.Context, it TreeIterator, opts ForestOptions, cfg StreamConfig) (*SupportShard, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = defaultStreamBatch
	}
	master := cfg.Resume
	if master == nil {
		master = NewSupportShard(opts)
	} else if master.Options() != opts {
		return nil, fmt.Errorf("core: resume shard was mined with options %+v, stream wants %+v",
			master.Options(), opts)
	}

	// streamed is the absolute index (within the whole stream) of the
	// next tree the iterator will yield — used to name the offending
	// tree in iterator and worker errors.
	streamed := 0
	for ; streamed < cfg.SkipTrees; streamed++ {
		if err := ctx.Err(); err != nil {
			return master, err
		}
		if _, err := it.Next(); err != nil {
			if err == io.EOF {
				return master, nil
			}
			return master, fmt.Errorf("core: stream: skipping tree %d: %w", streamed, err)
		}
	}

	buf := make([]*tree.Tree, 0, workers*batch)
	sinceCheckpoint := 0
	for {
		buf = buf[:0]
		done := false
		for len(buf) < cap(buf) {
			if err := ctx.Err(); err != nil {
				return master, err
			}
			if err := faults.Hit(faults.StreamNext); err != nil {
				return master, fmt.Errorf("core: stream: tree %d: %w", streamed, err)
			}
			t, err := it.Next()
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				return master, fmt.Errorf("core: stream: tree %d: %w", streamed, err)
			}
			streamed++
			if t == nil {
				continue
			}
			buf = append(buf, t)
		}

		if len(buf) > 0 {
			if err := mineRound(ctx, master, buf, streamed-len(buf), opts, workers); err != nil {
				return master, err
			}
			sinceCheckpoint += len(buf)
			// Drop the tree references before any checkpoint GC so the
			// round's trees are collectible — this is what keeps the live
			// heap bounded by one round.
			for i := range buf {
				buf[i] = nil
			}
			if cfg.AfterRound != nil {
				if err := cfg.AfterRound(master); err != nil {
					return master, fmt.Errorf("core: stream: after round at %d trees: %w", master.Trees(), err)
				}
			}
		}

		if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil && sinceCheckpoint > 0 &&
			(sinceCheckpoint >= cfg.CheckpointEvery || done) {
			if err := faults.Hit(faults.StreamCheckpoint); err != nil {
				return master, fmt.Errorf("core: stream: checkpoint after %d trees: %w", master.Trees(), err)
			}
			if err := cfg.Checkpoint(master); err != nil {
				return master, fmt.Errorf("core: stream: checkpoint after %d trees: %w", master.Trees(), err)
			}
			sinceCheckpoint = 0
		}
		if done {
			return master, nil
		}
	}
}

// mineTreeGuarded folds one tree into sh with the panic containment and
// fault injection every mining pool shares; base+i is the tree's
// absolute index for the error label.
func mineTreeGuarded(sh *SupportShard, t *tree.Tree, base, i int) error {
	err := guard.Run(func() error {
		if err := faults.Hit(faults.MineWorker); err != nil {
			return err
		}
		sh.AddTree(t)
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: stream: mining tree %d: %w", base+i, err)
	}
	return nil
}

// mineRound mines one batch of trees into master: workers fold strided
// slices into private shards, which merge into master in worker order.
// Support counts are additive, so the result is independent of worker
// scheduling — streamed output is deterministic. base is the absolute
// stream index of buf[0].
//
// On cancellation or a contained worker panic the round's partial
// private shards are discarded and master is left untouched, preserving
// the exact-prefix invariant MineForestStreamShardCtx documents. The
// serial path mines straight into master, which is safe for the same
// invariant: it folds trees in buf order, so an early return still
// leaves master covering a prefix.
func mineRound(ctx context.Context, master *SupportShard, buf []*tree.Tree, base int, opts ForestOptions, workers int) error {
	if workers > len(buf) {
		workers = len(buf)
	}
	if workers <= 1 {
		for i, t := range buf {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := mineTreeGuarded(master, t, base, i); err != nil {
				return err
			}
		}
		return nil
	}
	privates := make([]*SupportShard, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := NewSupportShard(opts)
			for i := w; i < len(buf); i += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				if err := mineTreeGuarded(sh, buf[i], base, i); err != nil {
					errs[w] = err
					return
				}
			}
			privates[w] = sh
		}(w)
	}
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return err
	}
	for _, sh := range privates {
		if err := master.Merge(sh); err != nil {
			return err
		}
	}
	return nil
}

