package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"treemine/internal/tree"
)

// TreeIterator yields the trees of a forest one at a time. Next returns
// io.EOF after the last tree; any other error aborts the consumer.
// Iterators let forest mining run over corpora that never fit in memory
// — a Newick stream on disk, a generator, a network feed.
type TreeIterator interface {
	Next() (*tree.Tree, error)
}

// sliceIterator adapts an in-memory forest to the TreeIterator interface.
type sliceIterator struct {
	trees []*tree.Tree
	i     int
}

// NewSliceIterator returns a TreeIterator over an in-memory forest.
func NewSliceIterator(trees []*tree.Tree) TreeIterator {
	return &sliceIterator{trees: trees}
}

func (it *sliceIterator) Next() (*tree.Tree, error) {
	if it.i >= len(it.trees) {
		return nil, io.EOF
	}
	t := it.trees[it.i]
	it.i++
	return t, nil
}

// StreamConfig tunes MineForestStreamShard beyond the plain
// MineForestStream entry point. The zero value is usable: GOMAXPROCS
// workers, the default batch size, no checkpointing, a fresh shard.
type StreamConfig struct {
	// Workers is the number of concurrent mining goroutines; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// BatchSize is the number of trees each worker receives per round;
	// Workers × BatchSize trees are resident at a time, which (plus the
	// support shard itself) is the pipeline's whole memory footprint.
	// ≤ 0 selects the default of 64.
	BatchSize int
	// CheckpointEvery invokes Checkpoint after at least this many trees
	// have been folded in since the last checkpoint (and once more at
	// the end of the stream). 0 disables checkpointing.
	CheckpointEvery int
	// Checkpoint receives the master shard between rounds — typically to
	// serialize it through internal/store. The shard is quiescent for
	// the duration of the call. A non-nil error aborts the stream.
	Checkpoint func(*SupportShard) error
	// Resume, when non-nil, is the shard to continue into (e.g. one
	// reloaded from a checkpoint file) instead of a fresh one. Its
	// options must equal the mining options.
	Resume *SupportShard
	// SkipTrees discards this many leading trees from the iterator
	// before mining — set it to Resume.Trees() when replaying the same
	// stream a checkpointed run was consuming.
	SkipTrees int
}

const defaultStreamBatch = 64

// MineForestStream is Multiple_Tree_Mining over a tree stream: trees are
// consumed from it in bounded batches, mined concurrently by workers
// holding private SupportShards, and the shards are merged into one
// result. The output is exactly MineForest's — same pairs, same counts,
// same order — but peak memory is bounded by workers × batch trees plus
// the support table, rather than by the corpus, so it scales to forests
// that never fit in memory. workers ≤ 0 selects GOMAXPROCS.
func MineForestStream(it TreeIterator, opts ForestOptions, workers int) ([]FrequentPair, error) {
	sh, err := MineForestStreamShard(it, opts, StreamConfig{Workers: workers})
	if err != nil {
		return nil, err
	}
	return sh.Finalize(opts.MinSup), nil
}

// MineForestStreamShard is the configurable streaming core: it returns
// the accumulated SupportShard instead of finalizing, supports
// checkpoint callbacks and resuming from a restored shard, and on error
// returns the shard mined so far alongside the error (so a caller can
// checkpoint even a failed run).
func MineForestStreamShard(it TreeIterator, opts ForestOptions, cfg StreamConfig) (*SupportShard, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = defaultStreamBatch
	}
	master := cfg.Resume
	if master == nil {
		master = NewSupportShard(opts)
	} else if master.Options() != opts {
		return nil, fmt.Errorf("core: resume shard was mined with options %+v, stream wants %+v",
			master.Options(), opts)
	}

	for skipped := 0; skipped < cfg.SkipTrees; skipped++ {
		if _, err := it.Next(); err != nil {
			if err == io.EOF {
				return master, nil
			}
			return master, err
		}
	}

	buf := make([]*tree.Tree, 0, workers*batch)
	sinceCheckpoint := 0
	for {
		buf = buf[:0]
		done := false
		for len(buf) < cap(buf) {
			t, err := it.Next()
			if err == io.EOF {
				done = true
				break
			}
			if err != nil {
				return master, err
			}
			if t == nil {
				continue
			}
			buf = append(buf, t)
		}

		if len(buf) > 0 {
			if err := mineRound(master, buf, opts, workers); err != nil {
				return master, err
			}
			sinceCheckpoint += len(buf)
			// Drop the tree references before any checkpoint GC so the
			// round's trees are collectible — this is what keeps the live
			// heap bounded by one round.
			for i := range buf {
				buf[i] = nil
			}
		}

		if cfg.CheckpointEvery > 0 && cfg.Checkpoint != nil && sinceCheckpoint > 0 &&
			(sinceCheckpoint >= cfg.CheckpointEvery || done) {
			if err := cfg.Checkpoint(master); err != nil {
				return master, err
			}
			sinceCheckpoint = 0
		}
		if done {
			return master, nil
		}
	}
}

// mineRound mines one batch of trees into master: workers fold strided
// slices into private shards, which merge into master in worker order.
// Support counts are additive, so the result is independent of worker
// scheduling — streamed output is deterministic.
func mineRound(master *SupportShard, buf []*tree.Tree, opts ForestOptions, workers int) error {
	if workers > len(buf) {
		workers = len(buf)
	}
	if workers <= 1 {
		for _, t := range buf {
			master.AddTree(t)
		}
		return nil
	}
	privates := make([]*SupportShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := NewSupportShard(opts)
			for i := w; i < len(buf); i += workers {
				sh.AddTree(buf[i])
			}
			privates[w] = sh
		}(w)
	}
	wg.Wait()
	for _, sh := range privates {
		if err := master.Merge(sh); err != nil {
			return err
		}
	}
	return nil
}

