package core

import (
	"fmt"
	"sort"
)

// Key identifies a cousin pair item within one tree: an unordered label
// pair plus a cousin distance. Labels are stored canonically with
// A ≤ B; construct keys with NewKey to maintain the invariant. D may be
// DistWild in aggregated views.
type Key struct {
	A, B string
	D    Dist
}

// NewKey returns the canonical Key for the (possibly unordered) label
// pair and distance.
func NewKey(l1, l2 string, d Dist) Key {
	if l2 < l1 {
		l1, l2 = l2, l1
	}
	return Key{A: l1, B: l2, D: d}
}

// String formats the key like the paper's quadruples, e.g. "(a, c, 0.5)".
func (k Key) String() string { return fmt.Sprintf("(%s, %s, %s)", k.A, k.B, k.D) }

// CompareKeys orders keys lexicographically by (A, B, D) — the one key
// ordering every sorted output in this package and its callers shares. It
// returns -1, 0, or +1 in the manner of strings.Compare.
func CompareKeys(a, b Key) int {
	if a.A != b.A {
		if a.A < b.A {
			return -1
		}
		return 1
	}
	if a.B != b.B {
		if a.B < b.B {
			return -1
		}
		return 1
	}
	switch {
	case a.D < b.D:
		return -1
	case a.D > b.D:
		return 1
	}
	return 0
}

// SortFrequentPairs sorts by decreasing support, ties broken by key
// order — the output order of MineForest, MineForestParallel, and the
// persisted index's Frequent.
func SortFrequentPairs(pairs []FrequentPair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Support != pairs[j].Support {
			return pairs[i].Support > pairs[j].Support
		}
		return CompareKeys(pairs[i].Key, pairs[j].Key) < 0
	})
}

// ItemSet is the multiset of cousin pair items of one tree: each key maps
// to its number of occurrences (distinct node pairs realizing it). An
// ItemSet corresponds to the paper's cpi(T).
type ItemSet map[Key]int

// Items returns the item set as a sorted slice of Item values, ordered by
// (A, B, D) for stable output.
func (s ItemSet) Items() []Item {
	out := make([]Item, 0, len(s))
	for k, n := range s {
		out = append(out, Item{Key: k, Occur: n})
	}
	sort.Slice(out, func(i, j int) bool {
		return CompareKeys(out[i].Key, out[j].Key) < 0
	})
	return out
}

// Item is one cousin pair item: the paper's quadruple
// (label(u), label(v), dist, occur).
type Item struct {
	Key   Key
	Occur int
}

// String formats the item like the paper, e.g. "(a, c, 0.5, 2)".
func (it Item) String() string {
	return fmt.Sprintf("(%s, %s, %s, %d)", it.Key.A, it.Key.B, it.Key.D, it.Occur)
}

// IgnoreDist aggregates the item set across distances, the paper's
// (l1, l2, *, occur) view: occurrences of the same label pair at
// different distances are summed under DistWild.
func (s ItemSet) IgnoreDist() ItemSet {
	out := make(ItemSet, len(s))
	for k, n := range s {
		out[Key{A: k.A, B: k.B, D: DistWild}] += n
	}
	return out
}

// IgnoreOccur flattens the multiset into a set, the paper's
// (l1, l2, dist, *) view: every present key keeps occurrence 1.
func (s ItemSet) IgnoreOccur() ItemSet {
	out := make(ItemSet, len(s))
	for k := range s {
		out[k] = 1
	}
	return out
}

// LabelPairs returns the paper's (l1, l2, *, *) view: the set of label
// pairs that are cousins at any distance.
func (s ItemSet) LabelPairs() ItemSet { return s.IgnoreDist().IgnoreOccur() }

// FilterMinOccur returns the items with occurrence ≥ minOccur.
func (s ItemSet) FilterMinOccur(minOccur int) ItemSet {
	out := make(ItemSet, len(s))
	for k, n := range s {
		if n >= minOccur {
			out[k] = n
		}
	}
	return out
}

// Total returns the multiset cardinality: the sum of all occurrence
// counts.
func (s ItemSet) Total() int {
	n := 0
	for _, c := range s {
		n += c
	}
	return n
}

// Intersect returns the multiset intersection of s and t, keeping each
// shared key with the minimum of the two occurrence counts (footnote 2 of
// the paper).
func (s ItemSet) Intersect(t ItemSet) ItemSet {
	out := make(ItemSet)
	for k, n := range s {
		if m, ok := t[k]; ok {
			if m < n {
				n = m
			}
			out[k] = n
		}
	}
	return out
}

// Union returns the multiset union of s and t, keeping each key with the
// maximum of the two occurrence counts (footnote 2 of the paper).
func (s ItemSet) Union(t ItemSet) ItemSet {
	out := make(ItemSet, len(s)+len(t))
	for k, n := range s {
		out[k] = n
	}
	for k, m := range t {
		if m > out[k] {
			out[k] = m
		}
	}
	return out
}

// MinDistOf returns the smallest cousin distance at which the label pair
// (l1,l2) occurs in s, and whether it occurs at all. Items under the
// wildcard distance are ignored.
func (s ItemSet) MinDistOf(l1, l2 string) (Dist, bool) {
	probe := NewKey(l1, l2, 0)
	best, found := Dist(0), false
	for k := range s {
		if k.A == probe.A && k.B == probe.B && !k.D.IsWild() {
			if !found || k.D < best {
				best, found = k.D, true
			}
		}
	}
	return best, found
}
