package core

import (
	"fmt"
	"sort"
)

// DistHistogram returns, for each concrete distance in the set, the
// total number of cousin pair occurrences at that distance — the
// distribution the paper's Figure 4 discussion reasons about when it
// explains why bushy trees mine slowly.
func (s ItemSet) DistHistogram() map[Dist]int {
	out := make(map[Dist]int)
	for k, n := range s {
		if !k.D.IsWild() {
			out[k.D] += n
		}
	}
	return out
}

// TopK returns the k items with the highest occurrence counts, ties
// broken by key order. k larger than the set returns everything.
func (s ItemSet) TopK(k int) []Item {
	items := s.Items()
	sort.SliceStable(items, func(i, j int) bool {
		return items[i].Occur > items[j].Occur
	})
	if k < len(items) {
		items = items[:k]
	}
	return items
}

// MarshalJSON renders the distance as the string the paper prints
// ("0.5", "*"), keeping JSON output human-readable.
func (d Dist) MarshalJSON() ([]byte, error) {
	return []byte(`"` + d.String() + `"`), nil
}

// UnmarshalJSON accepts the same strings MarshalJSON emits.
func (d *Dist) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("core: invalid distance JSON %s", b)
	}
	v, err := ParseDist(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*d = v
	return nil
}
