package core

import (
	"fmt"

	"treemine/internal/tree"
)

// Variant selects which components of a cousin pair item participate in
// the cousin-based tree distance (§5.3 of the paper): the cousin distance
// and/or the occurrence count may each be wildcarded, giving four
// measures.
type Variant int

const (
	// VariantLabel considers neither cousin distance nor occurrence:
	// items are bare label pairs (the paper's tdist_label).
	VariantLabel Variant = iota
	// VariantDist considers the cousin distance only (tdist_dist).
	VariantDist
	// VariantOccur considers the occurrence count only (tdist_occ).
	VariantOccur
	// VariantDistOccur considers both (tdist_{occ,dist}); this is the
	// variant the paper's kernel-tree experiment uses.
	VariantDistOccur
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantLabel:
		return "tdist_label"
	case VariantDist:
		return "tdist_dist"
	case VariantOccur:
		return "tdist_occ"
	case VariantDistOccur:
		return "tdist_{occ,dist}"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// view projects an item set to the variant's components.
func (v Variant) view(s ItemSet) ItemSet {
	switch v {
	case VariantLabel:
		return s.LabelPairs()
	case VariantDist:
		return s.IgnoreOccur()
	case VariantOccur:
		return s.IgnoreDist()
	case VariantDistOccur:
		return s
	default:
		panic(fmt.Sprintf("core: unknown variant %d", int(v)))
	}
}

// TDist is the cousin-based tree distance of Eq. 6:
//
//	tdist(T1, T2) = 1 − |cpi(T1) ∩ cpi(T2)| / |cpi(T1) ∪ cpi(T2)|
//
// where cpi is the cousin pair item multiset projected per the variant,
// ∩/∪ follow the paper's footnote 2 (min/max of occurrence counts), and
// |·| is the multiset cardinality (sum of counts). The result is in
// [0, 1]: 0 for trees with identical item sets, 1 for trees sharing no
// items. Unlike Robinson–Foulds it is defined for trees over different
// taxa sets, which is what makes it usable for kernel-tree and supertree
// work. Two trees with empty item sets (e.g. single nodes) are at
// distance 0.
func TDist(t1, t2 *tree.Tree, v Variant, opts Options) float64 {
	return TDistItems(Mine(t1, opts), Mine(t2, opts), v)
}

// TDistItems computes the tree distance from pre-mined item sets; use it
// when computing many pairwise distances over the same trees.
func TDistItems(s1, s2 ItemSet, v Variant) float64 {
	a, b := v.view(s1), v.view(s2)
	union := a.Union(b).Total()
	if union == 0 {
		return 0
	}
	inter := a.Intersect(b).Total()
	return 1 - float64(inter)/float64(union)
}
