package core

import (
	"fmt"

	"treemine/internal/tree"
)

// Variant selects which components of a cousin pair item participate in
// the cousin-based tree distance (§5.3 of the paper): the cousin distance
// and/or the occurrence count may each be wildcarded, giving four
// measures.
type Variant int

const (
	// VariantLabel considers neither cousin distance nor occurrence:
	// items are bare label pairs (the paper's tdist_label).
	VariantLabel Variant = iota
	// VariantDist considers the cousin distance only (tdist_dist).
	VariantDist
	// VariantOccur considers the occurrence count only (tdist_occ).
	VariantOccur
	// VariantDistOccur considers both (tdist_{occ,dist}); this is the
	// variant the paper's kernel-tree experiment uses.
	VariantDistOccur
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantLabel:
		return "tdist_label"
	case VariantDist:
		return "tdist_dist"
	case VariantOccur:
		return "tdist_occ"
	case VariantDistOccur:
		return "tdist_{occ,dist}"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// view projects an item set to the variant's components.
func (v Variant) view(s ItemSet) ItemSet {
	switch v {
	case VariantLabel:
		return s.LabelPairs()
	case VariantDist:
		return s.IgnoreOccur()
	case VariantOccur:
		return s.IgnoreDist()
	case VariantDistOccur:
		return s
	default:
		panic(fmt.Sprintf("core: unknown variant %d", int(v)))
	}
}

// TDist is the cousin-based tree distance of Eq. 6:
//
//	tdist(T1, T2) = 1 − |cpi(T1) ∩ cpi(T2)| / |cpi(T1) ∪ cpi(T2)|
//
// where cpi is the cousin pair item multiset projected per the variant,
// ∩/∪ follow the paper's footnote 2 (min/max of occurrence counts), and
// |·| is the multiset cardinality (sum of counts). The result is in
// [0, 1]: 0 for trees with identical item sets, 1 for trees sharing no
// items. Unlike Robinson–Foulds it is defined for trees over different
// taxa sets, which is what makes it usable for kernel-tree and supertree
// work. Two trees with empty item sets (e.g. single nodes) are at
// distance 0.
func TDist(t1, t2 *tree.Tree, v Variant, opts Options) float64 {
	if packable(opts.MaxDist) {
		// Intern both trees into one table so the whole computation —
		// mining, projection, ∩/∪ — runs on integer keys.
		syms := NewSymbols()
		syms.InternTree(t1)
		syms.InternTree(t2)
		return TDistISets(MineISet(t1, opts, syms), MineISet(t2, opts, syms), v)
	}
	return TDistItems(Mine(t1, opts), Mine(t2, opts), v)
}

// TDistItems computes the tree distance from pre-mined item sets; use it
// when computing many pairwise distances over the same trees.
func TDistItems(s1, s2 ItemSet, v Variant) float64 {
	a, b := v.view(s1), v.view(s2)
	// Σ min over shared keys gives |∩|; |∪| follows from
	// min(x,y) + max(x,y) = x + y without materializing either multiset.
	inter := 0
	for k, n := range a {
		if m, ok := b[k]; ok {
			if m < n {
				n = m
			}
			inter += n
		}
	}
	union := a.Total() + b.Total() - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// TDistISets is TDistItems over interned item sets (both projected from
// the same Symbols table): the pairwise-distance hot path of the kernel
// search runs here, on packed integer keys.
func TDistISets(s1, s2 ISet, v Variant) float64 {
	a, b := s1.view(v), s2.view(v)
	var inter int64
	for k, n := range a {
		if m, ok := b[k]; ok {
			if m < n {
				n = m
			}
			inter += int64(n)
		}
	}
	union := a.Total() + b.Total() - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}
