package core

import (
	"testing"
	"time"

	"treemine/internal/tree"
)

// These regression tests pin the miner's asymptotic behavior on the
// pathological shapes: a deep chain must mine in near-linear time (the
// grouping pass touches each node maxJ times and no pairs exist), and a
// wide star's cost must be proportional to its quadratic output, not
// worse.

func TestMineDeepChainFast(t *testing.T) {
	b := tree.NewBuilder()
	n := b.Root("n")
	for i := 0; i < 50_000; i++ {
		n = b.Child(n, "n")
	}
	chain := b.MustBuild()
	start := time.Now()
	items := Mine(chain, DefaultOptions())
	elapsed := time.Since(start)
	if len(items) != 0 {
		t.Fatalf("chain produced %d items", len(items))
	}
	// Generous bound: linear work on 50k nodes must stay well under a
	// second even on slow CI hardware.
	if elapsed > 5*time.Second {
		t.Fatalf("chain mining took %v — asymptotic regression", elapsed)
	}
}

func TestMineWideStarOutputBound(t *testing.T) {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	leaves := 2000
	for i := 0; i < leaves; i++ {
		b.Child(r, "x")
	}
	star := b.MustBuild()
	items := Mine(star, DefaultOptions())
	// All C(2000,2) sibling pairs aggregate into one item.
	want := leaves * (leaves - 1) / 2
	if got := items[NewKey("x", "x", D(0))]; got != want {
		t.Fatalf("star pair count = %d, want %d", got, want)
	}
	if len(items) != 1 {
		t.Fatalf("star items = %d, want 1", len(items))
	}
	// MineCounts must reach the same count without enumerating pairs.
	fast := MineCounts(star, DefaultOptions())
	if fast[NewKey("x", "x", D(0))] != want {
		t.Fatalf("MineCounts star count = %d", fast[NewKey("x", "x", D(0))])
	}
}

func TestMineCountsStarAsymptoticallyCheaper(t *testing.T) {
	// On a single-label star the histogram miner is output-independent:
	// it must beat pair enumeration by a wide margin at scale.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	for i := 0; i < 5000; i++ {
		b.Child(r, "x")
	}
	star := b.MustBuild()
	opts := DefaultOptions()
	tPairs := time.Now()
	Mine(star, opts)
	dPairs := time.Since(tPairs)
	tCounts := time.Now()
	MineCounts(star, opts)
	dCounts := time.Since(tCounts)
	if dCounts > dPairs {
		t.Logf("warning: MineCounts (%v) not faster than Mine (%v) on 5k star", dCounts, dPairs)
	}
	// Hard assertion only on a big ratio failure, to avoid flaky CI.
	if dCounts > 3*dPairs+time.Millisecond {
		t.Fatalf("MineCounts (%v) much slower than Mine (%v) on the star", dCounts, dPairs)
	}
}
