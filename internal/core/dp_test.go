package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func TestMineDPHandExample(t *testing.T) {
	tr := handTree(t)
	opts := Options{MaxDist: D(4), MinOccur: 1}
	got := MineDP(tr, opts)
	if want := handItems(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MineDP = %v\nwant %v", got.Items(), want.Items())
	}
}

func TestMineDPEquivalentToMine(t *testing.T) {
	f := func(seed int64, size uint8, maxD uint8, minOcc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%60 + 1
		tr := randLabeledTree(rng, n)
		opts := Options{MaxDist: Dist(maxD % 9), MinOccur: int(minOcc%3) + 1}
		a := Mine(tr, opts)
		b := MineDP(tr, opts)
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed=%d n=%d opts=%+v\nmine=%v\ndp=%v",
				seed, n, opts, a.Items(), b.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMineDPDeepChain(t *testing.T) {
	// A deep chain with side leaves: exercises histogram truncation at
	// maxJ along a long spine.
	b := tree.NewBuilder()
	spine := b.RootUnlabeled()
	for i := 0; i < 2000; i++ {
		b.Child(spine, "leaf")
		spine = b.ChildUnlabeled(spine)
	}
	b.Child(spine, "leaf")
	tr := b.MustBuild()
	opts := Options{MaxDist: D(3), MinOccur: 1}
	a := Mine(tr, opts)
	c := MineDP(tr, opts)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("deep chain: mine=%v dp=%v", a.Items(), c.Items())
	}
}

func TestMineDPSingleAndEmptyish(t *testing.T) {
	b := tree.NewBuilder()
	b.Root("x")
	tr := b.MustBuild()
	if got := MineDP(tr, DefaultOptions()); len(got) != 0 {
		t.Fatalf("single node: %v", got.Items())
	}
}
