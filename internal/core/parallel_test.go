package core

import (
	"math/rand"
	"reflect"
	"testing"

	"treemine/internal/tree"
)

func randomForest(seed int64, n, size int) []*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tree.Tree, n)
	for i := range out {
		out[i] = randLabeledTree(rng, size)
	}
	return out
}

func TestMineForestParallelMatchesSerial(t *testing.T) {
	forest := randomForest(3, 60, 40)
	opts := DefaultForestOptions()
	opts.MinSup = 1
	serial := MineForest(forest, opts)
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		got := MineForestParallel(forest, opts, workers)
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: parallel result differs (%d vs %d pairs)",
				workers, len(got), len(serial))
		}
	}
}

// TestMineForestParallelWorkerClamp is the regression test for the
// worker-count clamp: workers beyond len(trees) are clamped (and ≤ 1
// workers, including a clamp all the way down on tiny forests, take the
// serial path) — in every case the sorted output must be identical to
// the serial miner's, for both the packed and the string-keyed fallback
// option regions.
func TestMineForestParallelWorkerClamp(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		forest := randomForest(int64(11+n), n, 30)
		for _, opts := range []ForestOptions{
			{Options: Options{MaxDist: D(3), MinOccur: 1}, MinSup: 1},
			{Options: Options{MaxDist: MaxPackedDist + 2, MinOccur: 1}, MinSup: 1},
		} {
			serial := MineForest(forest, opts)
			for _, workers := range []int{0, 1, len(forest), len(forest) + 7} {
				got := MineForestParallel(forest, opts, workers)
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("n=%d maxdist=%s workers=%d: parallel differs (%d vs %d pairs)",
						n, opts.MaxDist, workers, len(got), len(serial))
				}
			}
		}
	}
}

func TestMineForestParallelIgnoreDist(t *testing.T) {
	forest := randomForest(5, 30, 30)
	opts := DefaultForestOptions()
	opts.IgnoreDist = true
	serial := MineForest(forest, opts)
	got := MineForestParallel(forest, opts, 4)
	if !reflect.DeepEqual(got, serial) {
		t.Fatalf("IgnoreDist parallel differs: %v vs %v", got, serial)
	}
}

func TestMineForestParallelEmpty(t *testing.T) {
	if got := MineForestParallel(nil, DefaultForestOptions(), 4); len(got) != 0 {
		t.Fatalf("empty forest = %v", got)
	}
}

func BenchmarkMineForestSerialVsParallel(b *testing.B) {
	forest := randomForest(7, 400, 60)
	opts := DefaultForestOptions()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MineForest(forest, opts)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MineForestParallel(forest, opts, 0)
		}
	})
}
