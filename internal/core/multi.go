package core

import (
	"sort"

	"treemine/internal/tree"
)

// ForestOptions configure Multiple_Tree_Mining over a set of trees.
type ForestOptions struct {
	Options
	// MinSup is the minimum number of trees that must contain a cousin
	// pair for it to be frequent (the paper's minsup, default 2).
	MinSup int
	// IgnoreDist makes support counting distance-insensitive: a tree
	// supports a label pair if the pair occurs at any distance ≤ MaxDist
	// (the paper's example where the support of (a,c) grows from 2 to 3
	// once distances are ignored).
	IgnoreDist bool
}

// DefaultForestOptions returns the paper's Table 2 defaults:
// maxdist = 1.5, minoccur = 1, minsup = 2.
func DefaultForestOptions() ForestOptions {
	return ForestOptions{Options: DefaultOptions(), MinSup: 2}
}

// FrequentPair is a cousin pair frequent across a forest: its key (with
// DistWild when IgnoreDist was set) and the number of trees supporting it.
type FrequentPair struct {
	Key     Key
	Support int
}

// MineForest is Multiple_Tree_Mining: it mines each tree with the
// per-tree options and returns the cousin pairs whose support (number of
// trees containing the pair, with the required distance unless
// IgnoreDist) is at least opts.MinSup. The result is sorted by
// decreasing support, then by key, so the strongest patterns come first.
// Its running time is O(Σ|Ti|²), linear in the number of trees for
// bounded tree size — the paper's Figures 6 and 7.
func MineForest(trees []*tree.Tree, opts ForestOptions) []FrequentPair {
	support := make(map[Key]int)
	for _, t := range trees {
		items := Mine(t, opts.Options)
		if opts.IgnoreDist {
			items = items.IgnoreDist()
		}
		for k := range items {
			support[k]++
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		a, b := out[i].Key, out[j].Key
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.D < b.D
	})
	return out
}

// Support returns the support of a specific label pair at distance d
// (or any distance if d is DistWild) across the forest, using the
// per-tree options.
func Support(trees []*tree.Tree, l1, l2 string, d Dist, opts Options) int {
	k := NewKey(l1, l2, d)
	n := 0
	for _, t := range trees {
		items := Mine(t, opts)
		if d.IsWild() {
			items = items.IgnoreDist()
		}
		if _, ok := items[k]; ok {
			n++
		}
	}
	return n
}
