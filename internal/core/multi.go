package core

import (
	"treemine/internal/tree"
)

// ForestOptions configure Multiple_Tree_Mining over a set of trees.
type ForestOptions struct {
	Options
	// MinSup is the minimum number of trees that must contain a cousin
	// pair for it to be frequent (the paper's minsup, default 2).
	MinSup int
	// IgnoreDist makes support counting distance-insensitive: a tree
	// supports a label pair if the pair occurs at any distance ≤ MaxDist
	// (the paper's example where the support of (a,c) grows from 2 to 3
	// once distances are ignored).
	IgnoreDist bool
}

// DefaultForestOptions returns the paper's Table 2 defaults:
// maxdist = 1.5, minoccur = 1, minsup = 2.
func DefaultForestOptions() ForestOptions {
	return ForestOptions{Options: DefaultOptions(), MinSup: 2}
}

// FrequentPair is a cousin pair frequent across a forest: its key (with
// DistWild when IgnoreDist was set) and the number of trees supporting it.
type FrequentPair struct {
	Key     Key
	Support int
}

// MineForest is Multiple_Tree_Mining: it mines each tree with the
// per-tree options and returns the cousin pairs whose support (number of
// trees containing the pair, with the required distance unless
// IgnoreDist) is at least opts.MinSup. The result is sorted by
// decreasing support, then by key, so the strongest patterns come first.
// Its running time is O(Σ|Ti|²), linear in the number of trees for
// bounded tree size — the paper's Figures 6 and 7.
//
// One symbol table is interned over the whole forest in a read-only
// pass; every per-tree pass and the support accumulation then run on
// integer keys in reused buffers, so the cost per tree after the first
// is pair generation plus O(distinct items) — no string hashing and
// near-zero allocation. Labels come back as strings only in the result.
func MineForest(trees []*tree.Tree, opts ForestOptions) []FrequentPair {
	if !packable(opts.MaxDist) {
		return mineForestGeneric(trees, opts)
	}
	syms := NewSymbols()
	for _, t := range trees {
		syms.InternTree(t)
	}
	var sup accum
	sup.init(syms.Len(), supportSlots(opts))
	m := minerPool.Get().(*miner)
	defer m.release()
	for _, t := range trees {
		m.reset(t, opts.Options, syms)
		mineTreeSupport(m, opts, &sup)
	}
	return drainSupport(&sup, syms, opts)
}

// supportSlots returns the number of distance slots support accumulation
// needs: one per concrete distance, or a single wildcard slot under
// IgnoreDist.
func supportSlots(opts ForestOptions) int {
	if opts.MaxDist < 0 {
		return 0
	}
	if opts.IgnoreDist {
		return 1
	}
	return int(opts.MaxDist) + 1
}

// mineTreeSupport mines the tree the miner is pointed at and folds its
// qualifying items into sup: +1 per item the tree contains with
// occurrence ≥ MinOccur, de-duplicated per label pair under IgnoreDist.
func mineTreeSupport(m *miner, opts ForestOptions, sup *accum) {
	if m.maxJ == 0 {
		return
	}
	m.acc.init(m.syms.Len(), m.nd)
	m.accumulate(&m.acc)
	minOccur := opts.MinOccur
	if opts.IgnoreDist {
		// Collapse the tree's distances first so each label pair counts
		// one support regardless of how many distances realize it.
		m.wild.init(m.syms.Len(), 1)
		wild := &m.wild
		m.acc.drain(func(a, b uint32, dc int, n int32) {
			if int(n) >= minOccur {
				wild.add(a, b, 0, 1)
			}
		})
		wild.drain(func(a, b uint32, dc int, n int32) {
			sup.add(a, b, 0, 1)
		})
		return
	}
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		if int(n) >= minOccur {
			sup.add(a, b, dc, 1)
		}
	})
}

// drainSupport converts accumulated support counts into the sorted
// public result.
func drainSupport(sup *accum, syms *Symbols, opts ForestOptions) []FrequentPair {
	var out []FrequentPair
	sup.drain(func(a, b uint32, dc int, n int32) {
		if int(n) < opts.MinSup {
			return
		}
		d := Dist(dc)
		if opts.IgnoreDist {
			d = DistWild
		}
		out = append(out, FrequentPair{Key: NewKey(syms.Label(a), syms.Label(b), d), Support: int(n)})
	})
	SortFrequentPairs(out)
	return out
}

// mineForestGeneric is the string-keyed fallback (and the reference
// implementation the interned path is property-tested against): mine
// each tree to an ItemSet and count support in one map.
func mineForestGeneric(trees []*tree.Tree, opts ForestOptions) []FrequentPair {
	support := make(map[Key]int)
	for _, t := range trees {
		items := Mine(t, opts.Options)
		if opts.IgnoreDist {
			items = items.IgnoreDist()
		}
		for k := range items {
			support[k]++
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	SortFrequentPairs(out)
	return out
}

// Support returns the support of a specific label pair at distance d
// (or any distance if d is DistWild) across the forest, using the
// per-tree options. For several probes over the same forest, mine once
// and use SupportOf instead.
func Support(trees []*tree.Tree, l1, l2 string, d Dist, opts Options) int {
	sets := make([]ItemSet, len(trees))
	for i, t := range trees {
		sets[i] = Mine(t, opts)
	}
	return SupportOf(sets, l1, l2, d)
}

// SupportOf counts the pre-mined item sets containing the label pair at
// distance d; DistWild counts sets containing the pair at any concrete
// distance. It does the per-probe work of Support without re-mining, so
// callers probing several pairs over one forest mine each tree once.
func SupportOf(sets []ItemSet, l1, l2 string, d Dist) int {
	k := NewKey(l1, l2, d)
	n := 0
	for _, s := range sets {
		if d.IsWild() {
			if _, ok := s.MinDistOf(l1, l2); ok {
				n++
			}
		} else if _, ok := s[k]; ok {
			n++
		}
	}
	return n
}
