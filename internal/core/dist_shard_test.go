package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"treemine/internal/tree"
)

// snapshotOf collects the canonical snapshot into one comparable value.
type snap struct {
	opts   ForestOptions
	trees  int
	labels []string
	items  []ShardItem
}

func snapOf(sh *SupportShard) snap {
	o, n, l, it := sh.Snapshot()
	return snap{opts: o, trees: n, labels: l, items: it}
}

// TestSnapshotCanonical: the snapshot is a pure function of the logical
// counts — shards that interned the same labels in different orders
// (mined tree orders reversed) snapshot identically, in both key modes.
func TestSnapshotCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	forest := randForest(rng, 16, 40, 6)
	rev := make([]*tree.Tree, len(forest))
	for i, tr := range forest {
		rev[len(forest)-1-i] = tr
	}
	for _, maxD := range []Dist{D(3), MaxPackedDist + 3} {
		opts := ForestOptions{Options: Options{MaxDist: maxD, MinOccur: 1}, MinSup: 2}
		a := buildShard(forest, opts)
		b := buildShard(rev, opts)
		sa, sb := snapOf(a), snapOf(b)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("maxD=%v: snapshots differ across mining orders", maxD)
		}
		if !sort.StringsAreSorted(sa.labels) {
			t.Fatalf("maxD=%v: snapshot labels not sorted", maxD)
		}
		for i := 1; i < len(sa.items); i++ {
			x, y := sa.items[i-1], sa.items[i]
			if x.A > y.A || (x.A == y.A && (x.B > y.B || (x.B == y.B && x.D >= y.D))) {
				t.Fatalf("maxD=%v: snapshot items unsorted or duplicated at %d", maxD, i)
			}
		}
	}
}

// TestMergeAssociationBitIdentity is the distributed-mining invariant:
// however a forest is partitioned and however the partial shards are
// merged — left fold, right fold, balanced, shuffled partition order —
// the canonical snapshot equals the single-shard mine's exactly. Run
// under -race this doubles as the merge-path race leg.
func TestMergeAssociationBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	forest := randForest(rng, 24, 40, 6)
	opts := DefaultForestOptions()
	want := snapOf(buildShard(forest, opts))

	parts := func(order []int) []*SupportShard {
		bounds := []int{0, 7, 13, 18, 24}
		out := make([]*SupportShard, 0, 4)
		for _, i := range order {
			out = append(out, buildShard(forest[bounds[i]:bounds[i+1]], opts))
		}
		return out
	}

	merges := []struct {
		name string
		run  func() (*SupportShard, error)
	}{
		{"left fold", func() (*SupportShard, error) {
			shs := parts([]int{0, 1, 2, 3})
			m := NewSupportShard(opts)
			for _, sh := range shs {
				if err := m.Merge(sh); err != nil {
					return nil, err
				}
			}
			return m, nil
		}},
		{"shuffled order", func() (*SupportShard, error) {
			shs := parts([]int{2, 0, 3, 1})
			m := NewSupportShard(opts)
			for _, sh := range shs {
				if err := m.Merge(sh); err != nil {
					return nil, err
				}
			}
			return m, nil
		}},
		{"balanced tree", func() (*SupportShard, error) {
			shs := parts([]int{0, 1, 2, 3})
			if err := shs[0].Merge(shs[1]); err != nil {
				return nil, err
			}
			if err := shs[2].Merge(shs[3]); err != nil {
				return nil, err
			}
			if err := shs[0].Merge(shs[2]); err != nil {
				return nil, err
			}
			return shs[0], nil
		}},
		{"concurrent into master", func() (*SupportShard, error) {
			shs := parts([]int{0, 1, 2, 3})
			m := NewSupportShard(opts)
			errs := make([]error, len(shs))
			var wg sync.WaitGroup
			for i, sh := range shs {
				wg.Add(1)
				go func(i int, sh *SupportShard) {
					defer wg.Done()
					errs[i] = m.Merge(sh)
				}(i, sh)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			return m, nil
		}},
	}
	for _, mc := range merges {
		t.Run(mc.name, func(t *testing.T) {
			m, err := mc.run()
			if err != nil {
				t.Fatal(err)
			}
			if got := snapOf(m); !reflect.DeepEqual(got, want) {
				t.Fatal("merged snapshot differs from the single-shard mine")
			}
		})
	}
}

// TestFoldTranslated: entries coded against a foreign label table fold
// into a shard with a different (even disjoint-prefix) intern order,
// landing on the right labels; out-of-range symbol ids are rejected.
func TestFoldTranslated(t *testing.T) {
	opts := DefaultForestOptions()
	sh := NewSupportShard(opts)
	// Foreign table deliberately ordered unlike anything sh interned.
	labels := []string{"zebra", "apple", "mango"}
	items := []ShardItem{
		{A: 1, B: 0, D: D(2), N: 3}, // (apple, zebra)@1.0 ×3
		{A: 2, B: 2, D: D(0), N: 1}, // (mango, mango)@0 ×1
	}
	if err := sh.FoldTranslated(5, labels, items); err != nil {
		t.Fatal(err)
	}
	if sh.Trees() != 5 {
		t.Fatalf("Trees() = %d, want 5", sh.Trees())
	}
	_, _, slabels, sitems := sh.Snapshot()
	find := func(a, b string, d Dist) int64 {
		for _, it := range sitems {
			if slabels[it.A] == a && slabels[it.B] == b && it.D == d {
				return it.N
			}
		}
		return 0
	}
	if got := find("apple", "zebra", D(2)); got != 3 {
		t.Fatalf("(apple, zebra)@2 = %d, want 3", got)
	}
	if got := find("mango", "mango", D(0)); got != 1 {
		t.Fatalf("(mango, mango)@0 = %d, want 1", got)
	}

	if err := sh.FoldTranslated(0, labels, []ShardItem{{A: 7, B: 0, D: D(0), N: 1}}); err == nil {
		t.Fatal("accepted an out-of-range symbol id")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("error %q does not name the defect", err)
	}
}

// TestDrainSorted: draining empties the counts but keeps the symbol
// table and tree tally; ids stay stable across drains, so summing the
// drained runs per key reconstructs an undrained shard exactly.
func TestDrainSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	forest := randForest(rng, 12, 40, 6)
	opts := DefaultForestOptions()

	whole := buildShard(forest, opts)
	wantItems, err := buildShard(forest, opts).DrainSorted()
	if err != nil {
		t.Fatal(err)
	}

	// Drain in two installments and merge the runs by key.
	sh := buildShard(forest[:6], opts)
	run1, err := sh.DrainSorted()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", sh.Len())
	}
	if sh.Trees() != 6 {
		t.Fatalf("Trees() = %d after drain, want 6", sh.Trees())
	}
	labelsBefore := sh.LocalLabels()
	for _, tr := range forest[6:] {
		sh.AddTree(tr)
	}
	run2, err := sh.DrainSorted()
	if err != nil {
		t.Fatal(err)
	}
	labelsAfter := sh.LocalLabels()
	if !reflect.DeepEqual(labelsBefore, labelsAfter[:len(labelsBefore)]) {
		t.Fatal("drain renumbered existing symbols")
	}

	sum := map[string]int64{}
	key := func(labels []string, it ShardItem) string {
		return fmt.Sprintf("%s|%s|%d", labels[it.A], labels[it.B], it.D)
	}
	for _, it := range run1 {
		sum[key(labelsAfter, it)] += it.N
	}
	for _, it := range run2 {
		sum[key(labelsAfter, it)] += it.N
	}
	wholeSum := map[string]int64{}
	wholeLabels := whole.LocalLabels()
	for _, it := range wantItems {
		wholeSum[key(wholeLabels, it)] += it.N
	}
	if !reflect.DeepEqual(sum, wholeSum) {
		t.Fatal("summed drained runs differ from an undrained shard")
	}

	for i := 1; i < len(run1); i++ {
		x, y := run1[i-1], run1[i]
		if x.A > y.A || (x.A == y.A && (x.B > y.B || (x.B == y.B && x.D >= y.D))) {
			t.Fatalf("drained run unsorted at %d", i)
		}
	}

	generic := NewSupportShard(ForestOptions{
		Options: Options{MaxDist: MaxPackedDist + 3, MinOccur: 1}, MinSup: 2,
	})
	if _, err := generic.DrainSorted(); err == nil {
		t.Fatal("generic shard accepted a drain")
	}
}

// TestLocalLabelsGenericNil pins the generic-mode contract.
func TestLocalLabelsGenericNil(t *testing.T) {
	generic := NewSupportShard(ForestOptions{
		Options: Options{MaxDist: MaxPackedDist + 3, MinOccur: 1}, MinSup: 2,
	})
	if generic.LocalLabels() != nil {
		t.Fatal("generic shard returned a label table")
	}
}

// TestStreamAfterRoundHook: the hook runs between rounds with the
// master quiescent, and its error aborts the stream naming the round.
func TestStreamAfterRoundHook(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	forest := randForest(rng, 10, 30, 5)
	opts := DefaultForestOptions()

	calls := 0
	_, err := MineForestStreamShard(NewSliceIterator(forest), opts, StreamConfig{
		BatchSize: 2,
		Workers:   1,
		AfterRound: func(sh *SupportShard) error {
			calls++
			if sh.Trees()%2 != 0 {
				t.Errorf("hook saw %d trees, want a round multiple", sh.Trees())
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("hook ran %d times, want 5", calls)
	}

	boom := errors.New("boom")
	_, err = MineForestStreamShard(NewSliceIterator(forest), opts, StreamConfig{
		BatchSize:  2,
		Workers:    1,
		AfterRound: func(*SupportShard) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("stream error = %v, want the hook's", err)
	}
	if err == nil || !strings.Contains(err.Error(), "after round") {
		t.Fatalf("error %q does not name the hook", err)
	}
}
