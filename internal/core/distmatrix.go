package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"treemine/internal/faults"
	"treemine/internal/guard"
	"treemine/internal/tree"
)

// DistMatrix is a symmetric pairwise tree-distance matrix with a zero
// diagonal, stored as the row-major condensed upper triangle — the same
// layout internal/cluster.Matrix uses, so the slice can be handed across
// without copying.
type DistMatrix struct {
	n int
	d []float64
}

// Len returns the number of trees.
func (m *DistMatrix) Len() int { return m.n }

// At returns the distance between trees i and j; the diagonal is 0.
func (m *DistMatrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return m.d[i*(2*m.n-i-1)/2+(j-i-1)]
}

// Condensed returns the backing upper triangle: entry (i, j), i < j,
// lives at i*(2n−i−1)/2 + (j−i−1).
func (m *DistMatrix) Condensed() []float64 { return m.d }

// BuildProfiles mines every tree once and freezes each item set into a
// Profile under the variant. When the options are packable the whole
// forest is interned into one shared Symbols table first (a serial
// read-only pass, as MineForestParallel does) and mining fans out over
// workers on packed integer keys; beyond MaxPackedDist the string-keyed
// miner runs instead, still one tree per worker. workers ≤ 0 selects
// GOMAXPROCS.
func BuildProfiles(trees []*tree.Tree, v Variant, opts Options, workers int) []*Profile {
	profiles, err := BuildProfilesCtx(context.Background(), trees, v, opts, workers)
	if err != nil {
		// Unreachable without a cancellable context or an armed
		// failpoint: re-raise to keep the no-error signature honest.
		panic(err)
	}
	return profiles
}

// BuildProfilesCtx is BuildProfiles under a context: workers check ctx
// between trees, and a panicking worker is contained into an error
// naming the offending tree index while the rest of the pool drains.
func BuildProfilesCtx(ctx context.Context, trees []*tree.Tree, v Variant, opts Options, workers int) ([]*Profile, error) {
	profiles := make([]*Profile, len(trees))
	if len(trees) == 0 {
		return profiles, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trees) {
		workers = len(trees)
	}
	var syms *Symbols
	if packable(opts.MaxDist) {
		syms = NewSymbols()
		for _, t := range trees {
			syms.InternTree(t)
		}
	}
	mineOne := func(i int) error {
		err := guard.Run(func() error {
			if err := faults.Hit(faults.ProfileWorker); err != nil {
				return err
			}
			if syms != nil {
				profiles[i] = NewProfileISet(MineISet(trees[i], opts, syms), v)
			} else {
				profiles[i] = NewProfileItems(Mine(trees[i], opts), v)
			}
			return nil
		})
		if err != nil {
			return wrapWorkerErr(err, fmt.Sprintf("core: profiling tree %d", i))
		}
		return nil
	}
	if workers <= 1 {
		for i := range trees {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := mineOne(i); err != nil {
				return nil, err
			}
		}
		return profiles, nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(trees) {
					return
				}
				if err := mineOne(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return nil, err
	}
	return profiles, nil
}

// ProfileDistMatrix fills the all-pairs distance matrix of pre-built
// profiles. The upper triangle is split into bands of rows claimed with
// work-stealing, and each band is filled column-block by column-block:
// every profile of the block stays cache-hot while it merge-joins
// against all rows of the band, instead of being re-fetched once per
// row (§48 applies the same cache-blocking as the mining accumulator).
// Bands never overlap, so no locking; shrinking band widths balance
// themselves across workers. workers ≤ 0 selects GOMAXPROCS.
func ProfileDistMatrix(profiles []*Profile, workers int) *DistMatrix {
	m, err := ProfileDistMatrixCtx(context.Background(), profiles, workers)
	if err != nil {
		panic(err) // unreachable without a cancellable ctx or armed failpoint
	}
	return m
}

// matrixRowBand and matrixColBlock are the tile shape of the condensed
// fill: a worker claims matrixRowBand consecutive rows and joins them
// against the later profiles matrixColBlock columns at a time. The
// block bounds the working set (block profiles + band row profiles); the
// band bounds how many rows each block fetch is amortized over.
const (
	matrixRowBand  = 8
	matrixColBlock = 64
)

// ProfileDistMatrixCtx is ProfileDistMatrix under a context: workers
// check ctx between row bands (the bounded unit of matrix work), and a
// panicking worker is contained into an error naming the row being
// filled when it died. Fault injection stays per row — one
// faults.Hit(MatrixWorker) per row of the band — so chaos coverage is
// independent of the tile shape.
func ProfileDistMatrixCtx(ctx context.Context, profiles []*Profile, workers int) (*DistMatrix, error) {
	n := len(profiles)
	m := &DistMatrix{n: n, d: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return m, nil
	}
	bands := (n - 1 + matrixRowBand - 1) / matrixRowBand
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > bands {
		workers = bands
	}
	fillBand := func(lo int) error {
		hi := lo + matrixRowBand
		if hi > n-1 {
			hi = n - 1
		}
		cur := lo
		err := guard.Run(func() error {
			for i := lo; i < hi; i++ {
				cur = i
				if err := faults.Hit(faults.MatrixWorker); err != nil {
					return err
				}
			}
			for jb := lo + 1; jb < n; jb += matrixColBlock {
				je := jb + matrixColBlock
				if je > n {
					je = n
				}
				// Rows of the band that have entries in this column
				// block: row i covers columns j > i.
				for i := lo; i < hi && i < je-1; i++ {
					j := i + 1
					if j < jb {
						j = jb
					}
					base := i * (2*n - i - 1) / 2
					pi := profiles[i]
					cur = i
					for ; j < je; j++ {
						m.d[base+j-i-1] = TDistProfiles(pi, profiles[j])
					}
				}
			}
			return nil
		})
		if err != nil {
			return wrapWorkerErr(err, fmt.Sprintf("core: distance-matrix row %d", cur))
		}
		return nil
	}
	if workers <= 1 {
		for lo := 0; lo < n-1; lo += matrixRowBand {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := fillBand(lo); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	var nextBand atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				b := int(nextBand.Add(1)) - 1
				if b >= bands {
					return
				}
				if err := fillBand(b * matrixRowBand); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return nil, err
	}
	return m, nil
}

// TDistMatrixParallel computes every pairwise cousin-based tree distance
// under the variant: mine once per tree into one shared symbol table,
// freeze each item set into a sorted Profile, then fill the upper
// triangle across workers with row-chunked work-stealing, each entry an
// allocation-free merge-join. The result is identical to calling
// TDist on every pair, only without the per-pair re-mining, and
// identical at any worker count — pinned by the differential tests.
// workers ≤ 0 selects GOMAXPROCS.
func TDistMatrixParallel(trees []*tree.Tree, v Variant, opts Options, workers int) *DistMatrix {
	return ProfileDistMatrix(BuildProfiles(trees, v, opts, workers), workers)
}

// TDistMatrixParallelCtx is TDistMatrixParallel under a context:
// cancellation is observed within one tree (profiling) or one row
// (matrix fill), and worker panics surface as errors.
func TDistMatrixParallelCtx(ctx context.Context, trees []*tree.Tree, v Variant, opts Options, workers int) (*DistMatrix, error) {
	profiles, err := BuildProfilesCtx(ctx, trees, v, opts, workers)
	if err != nil {
		return nil, err
	}
	return ProfileDistMatrixCtx(ctx, profiles, workers)
}
