package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

// mineStringReference is the pre-refactor Mine: enumerate pairs, build
// string keys one at a time, filter by MinOccur. The interned path must
// be byte-identical to it after boundary conversion.
func mineStringReference(t *tree.Tree, opts Options) ItemSet {
	items := make(ItemSet)
	for _, p := range MinePairs(t, opts) {
		items[NewKey(t.MustLabel(p.U), t.MustLabel(p.V), p.D)]++
	}
	return items.FilterMinOccur(opts.MinOccur)
}

// randAlphaTree builds a random tree over the first alpha labels l0..l<n>,
// with ~20% unlabeled nodes. A bigger alphabet exercises different
// accumulator shapes than randLabeledTree's four labels.
func randAlphaTree(rng *rand.Rand, n, alpha int) *tree.Tree {
	lbl := func() string { return fmt.Sprintf("l%d", rng.Intn(alpha)) }
	b := tree.NewBuilder()
	if rng.Intn(2) == 0 {
		b.RootUnlabeled()
	} else {
		b.Root(lbl())
	}
	for i := 1; i < n; i++ {
		p := tree.NodeID(rng.Intn(i))
		if rng.Intn(5) == 0 {
			b.ChildUnlabeled(p)
		} else {
			b.Child(p, lbl())
		}
	}
	return b.MustBuild()
}

// TestMineInternedMatchesStringPathAndOracle is the headline property
// test for the interned core: across random trees, alphabet sizes,
// maxdist values (including ones past MaxPackedDist, which take the
// string fallback), and minoccur values, Mine must agree with the
// pre-refactor string path and with the brute-force oracle.
func TestMineInternedMatchesStringPathAndOracle(t *testing.T) {
	f := func(seed int64, size, alpha, maxD, minOcc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%60 + 1
		a := int(alpha)%12 + 1
		opts := Options{
			// 0..19 halves: roughly a third of the runs exceed
			// MaxPackedDist (14) and exercise the fallback.
			MaxDist:  Dist(int(maxD) % 20),
			MinOccur: int(minOcc)%3 + 1,
		}
		tr := randAlphaTree(rng, n, a)
		got := Mine(tr, opts)
		if want := mineStringReference(tr, opts); !reflect.DeepEqual(got, want) {
			t.Logf("n=%d a=%d opts=%+v: interned %v != string path %v", n, a, opts, got.Items(), want.Items())
			return false
		}
		if slow := NaiveMine(tr, opts); !reflect.DeepEqual(got, slow) {
			t.Logf("n=%d a=%d opts=%+v: interned %v != naive %v", n, a, opts, got.Items(), slow.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMineCountsInternedMatchesMine re-checks the counting miner on the
// wider alphabet/maxdist space, including the string fallback region.
func TestMineCountsInternedMatchesMine(t *testing.T) {
	f := func(seed int64, size, alpha, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randAlphaTree(rng, int(size)%60+1, int(alpha)%12+1)
		opts := Options{MaxDist: Dist(int(maxD) % 20), MinOccur: 1}
		got := MineCounts(tr, opts)
		want := Mine(tr, opts)
		if !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: MineCounts %v != Mine %v", opts, got.Items(), want.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMineMapModeAccumulator forces the dense accumulator over its cell
// budget (alphabet² × distances > maxDenseCells) so the interned path
// runs in map mode end to end, then checks against the oracle.
func TestMineMapModeAccumulator(t *testing.T) {
	// 1100 distinct labels, maxdist 0 → 1100²·1 cells > 1<<20.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1500; i++ {
		b.Child(r, fmt.Sprintf("l%d", rng.Intn(1100)))
	}
	tr := b.MustBuild()
	opts := Options{MaxDist: D(0), MinOccur: 1}
	got := Mine(tr, opts)
	if want := NaiveMine(tr, opts); !reflect.DeepEqual(got, want) {
		t.Fatalf("map-mode Mine: %d items, naive %d items, sets differ", len(got), len(want))
	}
}

// randForest builds a small forest sharing one alphabet so pairs recur
// across trees and support counting has work to do.
func randForest(rng *rand.Rand, trees, size, alpha int) []*tree.Tree {
	out := make([]*tree.Tree, trees)
	for i := range out {
		out[i] = randAlphaTree(rng, rng.Intn(size)+1, alpha)
	}
	return out
}

// TestMineForestInternedMatchesGeneric checks the interned forest miner
// (and its parallel variant, at several worker counts) against the
// string-keyed reference implementation across random forests, with and
// without IgnoreDist.
func TestMineForestInternedMatchesGeneric(t *testing.T) {
	f := func(seed int64, nt, size, alpha, maxD, minSup uint8, ignore bool) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := randForest(rng, int(nt)%6+1, int(size)%40+1, int(alpha)%8+1)
		opts := ForestOptions{
			Options:    Options{MaxDist: Dist(int(maxD) % 8), MinOccur: 1},
			MinSup:     int(minSup)%3 + 1,
			IgnoreDist: ignore,
		}
		want := mineForestGeneric(forest, opts)
		if got := MineForest(forest, opts); !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: MineForest %v != generic %v", opts, got, want)
			return false
		}
		for _, workers := range []int{2, 3} {
			if got := MineForestParallel(forest, opts, workers); !reflect.DeepEqual(got, want) {
				t.Logf("opts=%+v workers=%d: parallel %v != generic %v", opts, workers, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestMineForestFallbackPastPackedDist pins the behavior of the
// MaxDist > MaxPackedDist region: both forest miners must still agree
// with the generic reference (they all take string-keyed paths there).
func TestMineForestFallbackPastPackedDist(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	forest := randForest(rng, 5, 40, 5)
	opts := ForestOptions{
		Options: Options{MaxDist: MaxPackedDist + 6, MinOccur: 1},
		MinSup:  2,
	}
	want := mineForestGeneric(forest, opts)
	if got := MineForest(forest, opts); !reflect.DeepEqual(got, want) {
		t.Fatalf("MineForest fallback: %v != %v", got, want)
	}
	if got := MineForestParallel(forest, opts, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("MineForestParallel fallback: %v != %v", got, want)
	}
}

// TestTDistInternedMatchesStringPath checks that the interned TDist
// (shared symbol table + packed multisets) returns exactly the floats
// the string-keyed path computes, for every variant.
func TestTDistInternedMatchesStringPath(t *testing.T) {
	variants := []Variant{VariantLabel, VariantDist, VariantOccur, VariantDistOccur}
	f := func(seed int64, n1, n2, alpha, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%8 + 1
		t1 := randAlphaTree(rng, int(n1)%40+1, a)
		t2 := randAlphaTree(rng, int(n2)%40+1, a)
		opts := Options{MaxDist: Dist(int(maxD) % 8), MinOccur: 1}
		i1, i2 := Mine(t1, opts), Mine(t2, opts)
		for _, v := range variants {
			got := TDist(t1, t2, v, opts)
			want := TDistItems(i1, i2, v)
			if got != want {
				t.Logf("%s opts=%+v: TDist %v != TDistItems %v", v, opts, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSimInternedMatchesStringPath does the same for the asymmetric
// similarity measure and its forest average.
func TestSimInternedMatchesStringPath(t *testing.T) {
	f := func(seed int64, n1, n2, alpha, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%8 + 1
		c := randAlphaTree(rng, int(n1)%40+1, a)
		tt := randAlphaTree(rng, int(n2)%40+1, a)
		opts := Options{MaxDist: Dist(int(maxD) % 8), MinOccur: 1}
		got := Sim(c, tt, opts)
		want := SimItems(Mine(c, opts), Mine(tt, opts))
		if got != want {
			t.Logf("opts=%+v: Sim %v != SimItems %v", opts, got, want)
			return false
		}
		set := []*tree.Tree{tt, randAlphaTree(rng, 20, a)}
		avg := AvgSim(c, set, opts)
		wantAvg := (SimItems(Mine(c, opts), Mine(set[0], opts)) +
			SimItems(Mine(c, opts), Mine(set[1], opts))) / 2
		if avg != wantAvg {
			t.Logf("opts=%+v: AvgSim %v != %v", opts, avg, wantAvg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMineDPInternedMatchesMine covers the histogram-DP miner on the
// wider space, including the >MaxPackedDist region where it delegates.
func TestMineDPInternedMatchesMine(t *testing.T) {
	f := func(seed int64, size, alpha, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randAlphaTree(rng, int(size)%50+1, int(alpha)%8+1)
		opts := Options{MaxDist: Dist(int(maxD) % 20), MinOccur: 1}
		got := MineDP(tr, opts)
		want := Mine(tr, opts)
		if !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: MineDP %v != Mine %v", opts, got.Items(), want.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMinerPoolReuseIsClean mines trees of very different shapes through
// the shared pool back to back; stale buckets or un-drained accumulator
// cells from a previous tree would corrupt the later results.
func TestMinerPoolReuseIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opts := Options{MaxDist: D(6), MinOccur: 1}
	for round := 0; round < 30; round++ {
		tr := randAlphaTree(rng, rng.Intn(80)+1, rng.Intn(10)+1)
		if got, want := Mine(tr, opts), NaiveMine(tr, opts); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: pooled Mine diverged from oracle", round)
		}
	}
}
