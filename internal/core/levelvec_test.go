package core

import (
	"fmt"
	"math/rand"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// cellKey identifies one accumulated item without IKey's packed-distance
// limit, so the differential below can compare paths at distances beyond
// MaxPackedDist.
type cellKey struct {
	a, b uint32
	dc   int
}

// accumVia mines t through one accumulate strategy into a plain map.
func accumVia(t *tree.Tree, opts Options, syms *Symbols, run func(*miner, *accum)) map[cellKey]int32 {
	m := getMiner(t, opts, syms)
	defer m.release()
	out := map[cellKey]int32{}
	if m.maxJ == 0 {
		return out
	}
	m.acc.init(syms.Len(), m.nd)
	run(m, &m.acc)
	m.acc.drain(func(a, b uint32, dc int, n int32) {
		out[cellKey{a: a, b: b, dc: dc}] += n
	})
	return out
}

// oracleCells aggregates forEachPair (via MinePairs, the exact node-pair
// oracle) into the same map shape as accumVia.
func oracleCells(t *tree.Tree, opts Options, syms *Symbols) map[cellKey]int32 {
	out := map[cellKey]int32{}
	for _, pr := range MinePairs(t, opts) {
		su, ok1 := syms.Lookup(t.MustLabel(pr.U))
		sv, ok2 := syms.Lookup(t.MustLabel(pr.V))
		if !ok1 || !ok2 {
			panic("test: label missing from table")
		}
		if sv < su {
			su, sv = sv, su
		}
		out[cellKey{a: su, b: sv, dc: int(pr.D)}]++
	}
	return out
}

func diffCells(t *testing.T, name string, got, want map[cellKey]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d items, oracle has %d", name, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: item %+v = %d, oracle %d", name, k, got[k], n)
			return
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: extra item %+v", name, k)
			return
		}
	}
}

// TestLevelVecDifferential quick-checks the symbol-vector accumulation
// (both the blocked production path and the symvec ablation variant)
// bit-for-bit against the forEachPair oracle over random tree shapes, at
// the packable boundary: MaxDist = MaxPackedDist and one past it (where
// packed keys are impossible but the dense accumulator still runs, with
// more distance slots).
func TestLevelVecDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []treegen.Params{
		{TreeSize: 120, Fanout: 5, AlphabetSize: 120}, // fig6-like: mostly distinct labels
		{TreeSize: 120, Fanout: 5, AlphabetSize: 6},   // label-dense
		{TreeSize: 150, Fanout: 40, AlphabetSize: 10}, // hub: wide sibling sets
		{TreeSize: 80, Fanout: 2, AlphabetSize: 4},    // deep: exercises high levels
		{TreeSize: 1, Fanout: 1, AlphabetSize: 1},     // degenerate
	}
	for _, p := range shapes {
		for trial := 0; trial < 3; trial++ {
			tr := treegen.Fanout(rng, p)
			for _, md := range []Dist{MaxPackedDist, MaxPackedDist + 1} {
				opts := Options{MaxDist: md, MinOccur: 1}
				syms := NewSymbols()
				syms.InternTree(tr)
				name := fmt.Sprintf("%+v md=%d trial=%d", p, md, trial)
				want := oracleCells(tr, opts, syms)
				blocked := accumVia(tr, opts, syms, func(m *miner, ac *accum) {
					if ac.dense == nil {
						t.Fatalf("%s: expected dense mode", name)
					}
					m.accumulateBlocked(ac)
				})
				diffCells(t, name+" blocked", blocked, want)
				symvec := accumVia(tr, opts, syms, func(m *miner, ac *accum) {
					m.accumulateSymVec(ac)
				})
				diffCells(t, name+" symvec", symvec, want)
				if md <= MaxPackedDist {
					pairs := accumVia(tr, opts, syms, func(m *miner, ac *accum) {
						m.accumulatePairs(ac)
					})
					diffCells(t, name+" pairs", pairs, want)
				}
			}
		}
	}
}

// TestLevelVecDifferentialMapMode pins the dispatcher at the other
// accumulator mode: a shared symbol table big enough to push the
// accumulator to map mode must give the same items through the public
// MineISet as through a per-tree dense table.
func TestLevelVecDifferentialMapMode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := treegen.Fanout(rng, treegen.Params{TreeSize: 150, Fanout: 5, AlphabetSize: 100})
	opts := Options{MaxDist: MaxPackedDist, MinOccur: 1}

	big := NewSymbols()
	for i := 0; i < 3000; i++ {
		big.Intern(fmt.Sprintf("pad%d", i))
	}
	big.InternTree(tr)
	mapped := MineISet(tr, opts, big)

	small := NewSymbols()
	small.InternTree(tr)
	densed := MineISet(tr, opts, small)

	if len(mapped) != len(densed) {
		t.Fatalf("map mode: %d items, dense mode %d", len(mapped), len(densed))
	}
	for k, n := range densed {
		a, b := k.Syms()
		la, lb := small.Label(a), small.Label(b)
		ba, ok1 := big.Lookup(la)
		bb, ok2 := big.Lookup(lb)
		if !ok1 || !ok2 {
			t.Fatalf("label %q/%q missing from big table", la, lb)
		}
		if got := mapped[NewIKey(ba, bb, k.Dist())]; got != n {
			t.Fatalf("item (%s,%s,%s): map mode %d, dense mode %d", la, lb, k.Dist(), got, n)
		}
	}
}

// TestMineSteadyStateZeroAlloc is the allocation gate on the reworked
// miner (mirroring TestFitchScoreZeroAlloc): once the pooled miner and
// the support accumulator have grown to the forest's shape, the per-tree
// unit behind MineISet and every forest entry point — reset, blocked
// accumulation, drain into support — allocates nothing.
func TestMineSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := NewSymbols()
	trees := make([]*tree.Tree, 8)
	for i := range trees {
		trees[i] = treegen.Fanout(rng, treegen.DefaultParams())
		syms.InternTree(trees[i])
	}
	opts := DefaultForestOptions()
	var sup accum
	sup.init(syms.Len(), supportSlots(opts))
	m := minerPool.Get().(*miner)
	defer m.release()
	for _, tr := range trees {
		m.reset(tr, opts.Options, syms)
		mineTreeSupport(m, opts, &sup)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		tr := trees[i%len(trees)]
		i++
		m.reset(tr, opts.Options, syms)
		mineTreeSupport(m, opts, &sup)
	})
	sup.discard()
	if allocs != 0 {
		t.Fatalf("steady-state mining allocates %v/op, want 0", allocs)
	}
}
