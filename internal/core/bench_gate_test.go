package core

import (
	"math"
	"os"
	"testing"

	"treemine/internal/benchutil"
)

// bench5Path is the recorded §48 mining-core benchmark file at the repo
// root.
const bench5Path = "../../BENCH_5.json"

// measureBest re-runs a benchmark body n times and keeps the fastest
// ns/op — the recording boxes are small, so min-of-N is the stable
// statistic (noise only ever adds time).
func measureBest(n int, f func(b *testing.B)) float64 {
	best := math.MaxFloat64
	for i := 0; i < n; i++ {
		r := testing.Benchmark(f)
		if v := float64(r.NsPerOp()); v < best {
			best = v
		}
	}
	return best
}

// TestBenchMineCoreRegressionGate is the repo's first benchmark
// regression gate: it re-measures the production mining path
// (accumulateBlocked) at the recorded BenchmarkMineCore shapes and
// fails if ns/op regressed more than 20% against BENCH_5.json. Skipped
// under -short; run explicitly via `make bench-mine`.
func TestBenchMineCoreRegressionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark regression gate skipped in -short mode")
	}
	if _, err := os.Stat(bench5Path); err != nil {
		t.Skipf("no recorded %s: %v", bench5Path, err)
	}
	recs, err := benchutil.LoadBenchRecords(bench5Path)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1.2
	for _, shape := range []string{"fig6", "hub"} {
		name := "BenchmarkMineCore/" + shape + "/blocked"
		rec, ok := recs[name]
		if !ok {
			t.Fatalf("%s missing from %s", name, bench5Path)
		}
		measured := measureBest(3, func(b *testing.B) {
			benchAccumulate(b, shape, func(m *miner, ac *accum) { m.accumulateBlocked(ac) })
		})
		if err := benchutil.CheckNsOp(name, measured, rec, tol); err != nil {
			t.Error(err)
		}
	}
}
