package core

import (
	"fmt"

	"treemine/internal/tree"
)

// Symbols interns labels to dense uint32 IDs so the mining hot paths can
// compare and hash labels as integers instead of strings. A Symbols is
// append-only: once a label has an ID, that ID never changes.
//
// Concurrency: Intern and InternTree mutate the table and must not run
// concurrently with anything else. Lookup, Label, and Len only read and
// are safe from any number of goroutines once interning is done — this is
// what lets MineForestParallel build one table in a read-only pass and
// share it lock-free across workers.
type Symbols struct {
	ids    map[string]uint32
	labels []string
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{ids: make(map[string]uint32)}
}

// Intern returns the ID for label, assigning the next dense ID on first
// sight.
func (s *Symbols) Intern(label string) uint32 {
	if id, ok := s.ids[label]; ok {
		return id
	}
	id := uint32(len(s.labels))
	s.ids[label] = id
	s.labels = append(s.labels, label)
	return id
}

// InternTree interns the label of every labeled node of t.
func (s *Symbols) InternTree(t *tree.Tree) {
	for n, size := tree.NodeID(0), tree.NodeID(t.Size()); n < size; n++ {
		if t.Labeled(n) {
			s.Intern(t.MustLabel(n))
		}
	}
}

// Lookup returns the ID of label and whether it has been interned.
func (s *Symbols) Lookup(label string) (uint32, bool) {
	id, ok := s.ids[label]
	return id, ok
}

// Label returns the label for id; it panics on an ID the table never
// issued.
func (s *Symbols) Label(id uint32) string { return s.labels[id] }

// Len returns the number of interned labels.
func (s *Symbols) Len() int { return len(s.labels) }

// reset empties the table for reuse, keeping its allocations.
func (s *Symbols) reset() {
	clear(s.ids)
	s.labels = s.labels[:0]
}

// IKey is a cousin pair item key packed into one machine word:
//
//	bits 34..63  symbol ID of the smaller label (30 bits)
//	bits  4..33  symbol ID of the larger label (30 bits)
//	bits  0..3   cousin distance + 1 (0 encodes the wildcard)
//
// Hashing and comparing an IKey is a single integer operation, which is
// what makes the interned mining paths allocation-free; keys convert back
// to the public string Key only at API boundaries. The packing follows
// symA<<34 | symB<<4 | dist-view.
type IKey uint64

const (
	ikeySymBits  = 30
	ikeyDistBits = 4

	// MaxSymbols is the largest number of distinct labels an IKey can
	// address.
	MaxSymbols = 1 << ikeySymBits
	// MaxPackedDist is the largest cousin distance an IKey can carry
	// (14 halves = distance 7). Options beyond it fall back to the
	// string-keyed paths.
	MaxPackedDist = Dist(1<<ikeyDistBits - 2)
)

// NewIKey packs two symbol IDs and a distance, canonicalizing so the
// smaller ID comes first. Both IDs must be below MaxSymbols and d must be
// DistWild or at most MaxPackedDist.
func NewIKey(a, b uint32, d Dist) IKey {
	if b < a {
		a, b = b, a
	}
	return IKey(uint64(a)<<(ikeySymBits+ikeyDistBits) | uint64(b)<<ikeyDistBits | uint64(d+1))
}

// Syms returns the two symbol IDs, smaller first.
func (k IKey) Syms() (a, b uint32) {
	return uint32(k >> (ikeySymBits + ikeyDistBits)), uint32(k>>ikeyDistBits) & (MaxSymbols - 1)
}

// Dist returns the cousin distance (DistWild when the key is a wildcard
// aggregate).
func (k IKey) Dist() Dist { return Dist(k&(1<<ikeyDistBits-1)) - 1 }

// Key converts back to the public string-keyed form, re-canonicalizing by
// label order.
func (k IKey) Key(syms *Symbols) Key {
	a, b := k.Syms()
	return NewKey(syms.Label(a), syms.Label(b), k.Dist())
}

// String formats the key for debugging; it cannot print labels without a
// table, so it prints raw symbol IDs.
func (k IKey) String() string {
	a, b := k.Syms()
	return fmt.Sprintf("(#%d, #%d, %s)", a, b, k.Dist())
}

// packable reports whether mining at maxDist can use packed integer keys.
func packable(maxDist Dist) bool { return maxDist <= MaxPackedDist }

// ISet is the interned counterpart of ItemSet: a cousin pair item
// multiset keyed by packed IKey. It is the working representation inside
// the mining and distance hot paths; convert with ToItemSet at the
// boundary.
type ISet map[IKey]int32

// ToItemSet converts to the public string-keyed form, dropping items
// below minOccur.
func (s ISet) ToItemSet(syms *Symbols, minOccur int) ItemSet {
	out := make(ItemSet, len(s))
	for k, n := range s {
		if int(n) >= minOccur {
			out[k.Key(syms)] = int(n)
		}
	}
	return out
}

// Total returns the multiset cardinality.
func (s ISet) Total() int64 {
	var n int64
	for _, c := range s {
		n += int64(c)
	}
	return n
}

// view projects the multiset to a Variant's components, mirroring
// Variant.view on ItemSet. VariantDistOccur returns s itself.
func (s ISet) view(v Variant) ISet {
	if v == VariantDistOccur {
		return s
	}
	out := make(ISet, len(s))
	for k, n := range s {
		a, b := k.Syms()
		switch v {
		case VariantLabel:
			out[NewIKey(a, b, DistWild)] = 1
		case VariantDist:
			out[k] = 1
		case VariantOccur:
			out[NewIKey(a, b, DistWild)] += n
		default:
			panic(fmt.Sprintf("core: unknown variant %d", int(v)))
		}
	}
	return out
}
