package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

// naiveForestOracle computes frequent pairs from first principles: the
// brute-force per-tree miner (NaiveMine, LCA per node pair) feeds a
// plain string-keyed support map. Every production forest miner —
// serial, parallel, streamed — is differentially pinned against it.
func naiveForestOracle(trees []*tree.Tree, opts ForestOptions) []FrequentPair {
	support := make(map[Key]int)
	for _, t := range trees {
		items := NaiveMine(t, opts.Options)
		if opts.IgnoreDist {
			items = items.IgnoreDist()
		}
		for k := range items {
			support[k]++
		}
	}
	var out []FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, FrequentPair{Key: k, Support: s})
		}
	}
	SortFrequentPairs(out)
	return out
}

// randDifferentialForest builds a forest stressing the edge cases the
// miners must agree on: duplicate labels (tiny alphabets), single-node
// trees, unlabeled roots, and the empty forest (nt may be 0).
func randDifferentialForest(rng *rand.Rand, nt, size, alpha int) []*tree.Tree {
	out := make([]*tree.Tree, nt)
	for i := range out {
		switch rng.Intn(8) {
		case 0: // single labeled node
			b := tree.NewBuilder()
			b.Root("l0")
			out[i] = b.MustBuild()
		case 1: // single unlabeled node
			b := tree.NewBuilder()
			b.RootUnlabeled()
			out[i] = b.MustBuild()
		default:
			out[i] = randAlphaTree(rng, rng.Intn(size)+1, alpha)
		}
	}
	return out
}

// streamVariants runs MineForestStream over the same forest at several
// worker counts and batch sizes (including batch 1, which exercises a
// merge per tree) and reports the first divergence from want.
func streamVariants(t *testing.T, forest []*tree.Tree, opts ForestOptions, want []FrequentPair) bool {
	t.Helper()
	cases := []StreamConfig{
		{Workers: 1, BatchSize: 1},
		{Workers: 2, BatchSize: 3},
		{Workers: 4, BatchSize: 64},
	}
	for _, cfg := range cases {
		sh, err := MineForestStreamShard(NewSliceIterator(forest), opts, cfg)
		if err != nil {
			t.Logf("stream cfg=%+v: %v", cfg, err)
			return false
		}
		if got := sh.Finalize(opts.MinSup); !reflect.DeepEqual(got, want) {
			t.Logf("stream cfg=%+v: %v != %v", cfg, got, want)
			return false
		}
		if sh.Trees() != len(forest) {
			t.Logf("stream cfg=%+v: Trees() = %d, want %d", cfg, sh.Trees(), len(forest))
			return false
		}
	}
	return true
}

// TestForestMinersDifferential is the harness pinning every forest miner
// to the naive oracle: MineForestStream ≡ MineForestParallel ≡
// MineForest ≡ per-tree NaiveMine support counting, across random
// forests whose MaxDist sweeps the packable boundary (MaxPackedDist =
// 14 halves; ~a quarter of the runs take the string-keyed fallback),
// with varying MinSup, MinOccur, IgnoreDist, duplicate labels,
// single-node trees, and empty forests.
func TestForestMinersDifferential(t *testing.T) {
	f := func(seed int64, nt, size, alpha, maxD, minSup, minOcc, workers uint8, ignore bool) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := randDifferentialForest(rng, int(nt)%7, int(size)%40+1, int(alpha)%6+1)
		opts := ForestOptions{
			Options: Options{
				MaxDist:  Dist(int(maxD) % 20),
				MinOccur: int(minOcc)%3 + 1,
			},
			MinSup:     int(minSup)%4 + 1,
			IgnoreDist: ignore,
		}
		want := naiveForestOracle(forest, opts)
		if got := MineForest(forest, opts); !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: MineForest %v != oracle %v", opts, got, want)
			return false
		}
		if got := MineForestParallel(forest, opts, int(workers)%5); !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: MineForestParallel %v != oracle %v", opts, got, want)
			return false
		}
		return streamVariants(t, forest, opts, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// buildShard folds the trees into a fresh shard serially.
func buildShard(trees []*tree.Tree, opts ForestOptions) *SupportShard {
	sh := NewSupportShard(opts)
	for _, t := range trees {
		sh.AddTree(t)
	}
	return sh
}

// TestShardMergeCommutesAndAssociates checks the algebra streaming
// correctness rests on: splitting a forest into shards and merging them
// in any association — Merge(a,b), Merge(b,a), left-leaning, right-
// leaning, and a random merge tree — always finalizes to the forest's
// MineForest result.
func TestShardMergeCommutesAndAssociates(t *testing.T) {
	f := func(seed int64, nt, size, alpha, maxD, cut1, cut2 uint8, ignore bool) bool {
		rng := rand.New(rand.NewSource(seed))
		forest := randDifferentialForest(rng, int(nt)%9+3, int(size)%30+1, int(alpha)%5+1)
		opts := ForestOptions{
			Options:    Options{MaxDist: Dist(int(maxD) % 18), MinOccur: 1},
			MinSup:     1, // keep every pair visible so merges are fully compared
			IgnoreDist: ignore,
		}
		// Split into three contiguous (possibly empty) parts.
		i := int(cut1) % (len(forest) + 1)
		j := int(cut2) % (len(forest) + 1)
		if j < i {
			i, j = j, i
		}
		parts := [][]*tree.Tree{forest[:i], forest[i:j], forest[j:]}
		want := MineForest(forest, opts)

		finalize := func(sh *SupportShard) []FrequentPair { return sh.Finalize(opts.MinSup) }
		merged := func(order ...int) *SupportShard {
			sh := buildShard(parts[order[0]], opts)
			for _, p := range order[1:] {
				if err := sh.Merge(buildShard(parts[p], opts)); err != nil {
					t.Fatal(err)
				}
			}
			return sh
		}
		// Commutativity over two shards.
		ab := buildShard(parts[0], opts)
		if err := ab.Merge(buildShard(append(append([]*tree.Tree{}, parts[1]...), parts[2]...), opts)); err != nil {
			t.Fatal(err)
		}
		rest := buildShard(append(append([]*tree.Tree{}, parts[1]...), parts[2]...), opts)
		if err := rest.Merge(buildShard(parts[0], opts)); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(finalize(ab), finalize(rest)) {
			t.Logf("opts=%+v: Merge(a,b) != Merge(b,a)", opts)
			return false
		}
		// Every association and order over three shards.
		for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
			if got := finalize(merged(order...)); !reflect.DeepEqual(got, want) {
				t.Logf("opts=%+v order=%v: %v != %v", opts, order, got, want)
				return false
			}
		}
		// Right-leaning merge tree: a + (b + c).
		bc := buildShard(parts[1], opts)
		if err := bc.Merge(buildShard(parts[2], opts)); err != nil {
			t.Fatal(err)
		}
		a := buildShard(parts[0], opts)
		if err := a.Merge(bc); err != nil {
			t.Fatal(err)
		}
		if got := finalize(a); !reflect.DeepEqual(got, want) {
			t.Logf("opts=%+v: a+(b+c) %v != %v", opts, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestShardSnapshotRestoreRoundTrip pins the serialization contract the
// store's v3 format builds on: Restore(Snapshot(sh)) finalizes
// identically, for both the packed and the string-keyed shard modes.
func TestShardSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, maxD := range []Dist{D(3), MaxPackedDist + 4} {
		for _, ignore := range []bool{false, true} {
			opts := ForestOptions{
				Options:    Options{MaxDist: maxD, MinOccur: 1},
				MinSup:     2,
				IgnoreDist: ignore,
			}
			sh := buildShard(randForest(rng, 8, 30, 4), opts)
			o, trees, labels, items := sh.Snapshot()
			back, err := RestoreShard(o, trees, labels, items)
			if err != nil {
				t.Fatalf("maxD=%v ignore=%v: restore: %v", maxD, ignore, err)
			}
			if back.Trees() != sh.Trees() {
				t.Fatalf("maxD=%v ignore=%v: trees %d != %d", maxD, ignore, back.Trees(), sh.Trees())
			}
			if got, want := back.Finalize(1), sh.Finalize(1); !reflect.DeepEqual(got, want) {
				t.Fatalf("maxD=%v ignore=%v: restored shard differs: %v != %v", maxD, ignore, got, want)
			}
		}
	}
}

// TestRestoreShardRejectsCorruptInput enumerates the invalid snapshots a
// corrupt checkpoint file could decode into; every one must error, never
// panic.
func TestRestoreShardRejectsCorruptInput(t *testing.T) {
	opts := ForestOptions{Options: Options{MaxDist: D(3), MinOccur: 1}, MinSup: 2}
	labels := []string{"a", "b"}
	cases := []struct {
		name   string
		opts   ForestOptions
		trees  int
		labels []string
		items  []ShardItem
	}{
		{"negative trees", opts, -1, labels, nil},
		{"symbol out of range", opts, 1, labels, []ShardItem{{A: 0, B: 7, D: 0, N: 1}}},
		{"zero count", opts, 1, labels, []ShardItem{{A: 0, B: 1, D: 0, N: 0}}},
		{"negative count", opts, 1, labels, []ShardItem{{A: 0, B: 1, D: 0, N: -4}}},
		{"distance beyond maxdist", opts, 1, labels, []ShardItem{{A: 0, B: 1, D: 9, N: 1}}},
		{"negative distance", opts, 1, labels, []ShardItem{{A: 0, B: 1, D: -3, N: 1}}},
		{"wild distance without ignoredist", opts, 1, labels, []ShardItem{{A: 0, B: 1, D: DistWild, N: 1}}},
		{"duplicate label", opts, 1, []string{"a", "a"}, nil},
		{
			"concrete distance under ignoredist",
			ForestOptions{Options: opts.Options, MinSup: 2, IgnoreDist: true},
			1, labels, []ShardItem{{A: 0, B: 1, D: 0, N: 1}},
		},
	}
	for _, tc := range cases {
		if _, err := RestoreShard(tc.opts, tc.trees, tc.labels, tc.items); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The valid baseline the cases deviate from must be accepted.
	if _, err := RestoreShard(opts, 1, labels, []ShardItem{{A: 0, B: 1, D: 0, N: 1}}); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
