package core

// Symbol-vector level-pair enumeration (DESIGN.md §48): the miner's
// packed hot path. Instead of enumerating the |bucket_i|×|bucket_j|
// node pairs of every child-pair at every depth combination (one
// accum.add per pair, the seed algorithm kept in accumulatePairs as the
// map-mode fallback and ablation baseline), each LCA candidate builds
// per-level *symbol count vectors* — a dense counts-per-symbol array
// plus a bitset of occupied symbols — and derives the cross-child pair
// counts from the totals-minus-same-child identity
//
//	cross(s1, s2) = total_i(s1)·total_j(s2) − Σ_c count_{c,i}(s1)·count_{c,j}(s2)
//
// so pairing two levels is a blocked sweep over occupied symbols with a
// multiply-accumulate of counts, never a loop over node pairs.
//
// The sweeps are word-blocked and row-major: for each canonical row
// symbol (the smaller of the pair) they walk the partner level's
// occupancy bitset word by word, so every write lands on consecutive
// cells of one accumulator row (the accum layout is distance-major for
// exactly this reason), and the masked occupancy words themselves are
// OR-ed into the accumulator's row bitmap — touched-cell tracking costs
// one word operation per 64 symbols instead of a branch per cell.
// Complexity per LCA and level pair drops from Θ(#node pairs) to
// Θ(#occupied symbol pairs + Σ_c per-child correction) — comparable
// when all labels are distinct, and asymptotically smaller the more
// labels repeat (a single-label star mines in O(n)). Correctness is
// pinned bit-for-bit against forEachPair by the LevelVec differential
// tests.

import (
	"math/bits"

	"treemine/internal/tree"
)

// symCount is one sparse histogram entry: a symbol and its occurrence
// count within one (child, level) bucket.
type symCount struct {
	sym uint32
	n   int32
}

// levelVecs is the reusable per-miner scratch of the symbol-vector
// path. All per-LCA state is cleared through the occupancy lists (cost
// O(occupied), never O(alphabet)), so the dense arrays stay zeroed
// between LCAs, trees, and pool reuses by invariant.
type levelVecs struct {
	l  int // alphabet size the vectors are sized for
	nw int // occupancy words per level: ceil(l/64)

	// Per level 1..maxJ (index 0 unused):
	cnt     [][]int32  // dense counts per symbol, summed across children
	occ     [][]uint64 // occupancy bitset over symbols with cnt > 0
	occList [][]uint32 // occupied symbols in first-touch order (for clearing)
	wsum    []uint64   // summary bitset: which occ words are nonzero (valid for nw ≤ 64, i.e. every dense-mode alphabet — only the sweeps consume it)
	total   []int32    // total labeled nodes at the level
	nchild  []int32    // children contributing ≥ 1 node at the level
	only    []int32    // the single contributing child when nchild == 1

	// Per-bucket grouping scratch shared by all levels, used when a
	// bucket is large enough that its same-child correction is cheaper
	// over grouped symbol counts than over raw node pairs.
	childCnt  []int32
	childSyms []uint32
	entA      []symCount
	entB      []symCount
}

// prepare sizes the scratch for an alphabet of l symbols and levels up
// to maxJ, reusing capacity. Dense arrays rely on the cleared-through-
// occList invariant: any cell a previous pass touched was zeroed, so
// re-slicing to a larger length never exposes stale counts.
func (lv *levelVecs) prepare(l, maxJ int) {
	lv.l, lv.nw = l, (l+63)/64
	if len(lv.cnt) < maxJ+1 {
		n := maxJ + 1
		lv.cnt = append(lv.cnt, make([][]int32, n-len(lv.cnt))...)
		lv.occ = append(lv.occ, make([][]uint64, n-len(lv.occ))...)
		lv.occList = append(lv.occList, make([][]uint32, n-len(lv.occList))...)
	}
	if len(lv.total) < maxJ+1 {
		lv.total = make([]int32, maxJ+1)
		lv.nchild = make([]int32, maxJ+1)
		lv.only = make([]int32, maxJ+1)
		lv.wsum = make([]uint64, maxJ+1)
	}
	for k := 1; k <= maxJ; k++ {
		// cnt is padded to whole 64-symbol words so the sweeps can slice
		// exact 64-cell segments aligned with the occupancy words.
		lv.cnt[k] = growI32Zeroed(lv.cnt[k], lv.nw*64)
		lv.occ[k] = growU64Zeroed(lv.occ[k], lv.nw)
	}
	lv.childCnt = growI32Zeroed(lv.childCnt, l)
}

// clear zeroes every cell the last LCA touched, through the occupancy
// lists. It is safe after a partial build (a contained panic): symbols
// enter occList before their count or bit is set, so the list always
// covers every dirty cell.
func (lv *levelVecs) clear() {
	for k := 1; k < len(lv.cnt); k++ {
		list := lv.occList[k]
		if len(list) == 0 {
			continue
		}
		cnt, occ := lv.cnt[k], lv.occ[k]
		for _, s := range list {
			cnt[s] = 0
			occ[s>>6] &^= 1 << (s & 63)
		}
		lv.occList[k] = list[:0]
		lv.wsum[k] = 0
	}
}

// sanitize restores the all-zero invariant unconditionally — called on
// miner release so a pass abandoned mid-LCA (panic containment) cannot
// poison the pool.
func (lv *levelVecs) sanitize() {
	for _, s := range lv.childSyms {
		lv.childCnt[s] = 0
	}
	lv.childSyms = lv.childSyms[:0]
	lv.clear()
}

// lcaLevels returns the deepest level worth building for an LCA with
// the given children: one past the deepest labeled descendant of any
// child, clamped to maxJ. Zero means no level has a labeled node.
func (m *miner) lcaLevels(kids []tree.NodeID) int {
	lm := 0
	for _, c := range kids {
		if v := int(m.mld[c]) + 1; v > lm {
			lm = v
		}
	}
	if lm > m.maxJ {
		lm = m.maxJ
	}
	return lm
}

// accumulateBlocked is the production accumulate: symbol-vector
// enumeration with the word-blocked row-major sweep. ac must be in
// dense mode.
func (m *miner) accumulateBlocked(ac *accum) {
	if m.maxJ == 0 {
		return
	}
	lv := &m.lv
	lv.prepare(m.syms.Len(), m.maxJ)
	t := m.t
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		lm := m.lcaLevels(kids)
		if lm == 0 {
			continue
		}
		m.buildLevels(kids, lm)
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > lm {
				break // j is nondecreasing in d
			}
			if !lv.pairable(i, j) {
				continue
			}
			dc := int(d)
			// Sweep before correcting: the totals sweep records every cell
			// of the level pair's occupancy pattern (touched list or row
			// bitmap depending on the path), and the same-child correction
			// only ever hits cells inside that pattern, so bump can skip
			// cell tracking entirely (see accum.bump).
			if i == j {
				if len(lv.occList[i]) <= sparseSweepMax/2 {
					lv.sweepSameSparse(ac, i, dc)
				} else {
					lv.sweepSame(ac, i, dc)
				}
			} else if len(lv.occList[i])+len(lv.occList[j]) <= sparseSweepMax {
				lv.sweepCrossSparse(ac, i, j, dc)
			} else {
				lv.sweepCross(ac, i, j, dc)
			}
			m.subtractSameChild(ac, kids, i, j, dc)
		}
		lv.clear()
	}
}

// accumulateSymVec is the mid ablation point: the same symbol-vector
// enumeration, but accumulating through the general accum.add in
// first-touch order instead of the sorted row-major word sweep. Kept so
// BenchmarkMineCore can attribute the win between the counting identity
// and the blocked accumulation separately.
func (m *miner) accumulateSymVec(ac *accum) {
	if m.maxJ == 0 {
		return
	}
	lv := &m.lv
	lv.prepare(m.syms.Len(), m.maxJ)
	t, nodeSym := m.t, m.nodeSym
	for a := tree.NodeID(0); a < tree.NodeID(t.Size()); a++ {
		kids := t.Children(a)
		if len(kids) < 2 {
			continue
		}
		lm := m.lcaLevels(kids)
		if lm == 0 {
			continue
		}
		m.buildLevels(kids, lm)
		for d := Dist(0); d <= m.opts.MaxDist; d++ {
			i, j := d.Levels()
			if j > lm {
				break
			}
			if !lv.pairable(i, j) {
				continue
			}
			dc := int(d)
			// Same-child correction via add (not bump): this variant
			// must work for map-mode accumulators too, and add has no
			// ordering requirement against the totals loop below.
			for _, c := range kids {
				if i == j {
					bkt := m.bucket(c, i)
					for x, u := range bkt {
						su := nodeSym[u]
						for _, v := range bkt[x+1:] {
							ac.add(su, nodeSym[v], dc, -1)
						}
					}
					continue
				}
				us := m.bucket(c, i)
				if len(us) == 0 {
					continue
				}
				for _, u := range us {
					su := nodeSym[u]
					for _, v := range m.bucket(c, j) {
						ac.add(su, nodeSym[v], dc, -1)
					}
				}
			}
			cntI, listI := lv.cnt[i], lv.occList[i]
			cntJ, listJ := lv.cnt[j], lv.occList[j]
			if i == j {
				for x, s1 := range listI {
					n1 := cntI[s1]
					if n1 > 1 {
						ac.add(s1, s1, dc, pairsOf(n1))
					}
					for _, s2 := range listI[x+1:] {
						ac.add(s1, s2, dc, n1*cntI[s2])
					}
				}
				continue
			}
			for _, s1 := range listI {
				n1 := cntI[s1]
				for _, s2 := range listJ {
					ac.add(s1, s2, dc, n1*cntJ[s2])
				}
			}
		}
		lv.clear()
	}
}

// pairable reports whether the level pair (i, j) can produce any
// cross-child pair at the current LCA: both levels populated, and not
// all nodes concentrated under one child.
func (lv *levelVecs) pairable(i, j int) bool {
	if lv.total[i] == 0 || lv.total[j] == 0 {
		return false
	}
	if i == j {
		return lv.nchild[i] > 1
	}
	return lv.nchild[i] > 1 || lv.nchild[j] > 1 || lv.only[i] != lv.only[j]
}

// buildLevels fills the level vectors for one LCA: for every level
// k ≤ lm, the dense total counts and the occupancy bitset. Cost is one
// pass over the LCA's buckets; the mld bound skips children that cannot
// reach a level, and the common single-node bucket takes a direct path
// past the multi-node loop.
func (m *miner) buildLevels(kids []tree.NodeID, lm int) {
	lv := &m.lv
	nodeSym, mld := m.nodeSym, m.mld
	for k := 1; k <= lm; k++ {
		cnt, occ, occList := lv.cnt[k], lv.occ[k], lv.occList[k]
		wsum := lv.wsum[k]
		total, nchild, only := int32(0), int32(0), int32(-1)
		for ci, c := range kids {
			if int(mld[c]) < k-1 {
				continue
			}
			bkt := m.bucket(c, k)
			switch {
			case len(bkt) == 1:
				s := nodeSym[bkt[0]]
				if cnt[s] == 0 {
					occList = append(occList, s)
					w := s >> 6
					if occ[w] == 0 {
						wsum |= 1 << (w & 63)
					}
					occ[w] |= 1 << (s & 63)
				}
				cnt[s]++
				total++
				if nchild == 0 {
					only = int32(ci)
				}
				nchild++
			case len(bkt) > 1:
				for _, v := range bkt {
					s := nodeSym[v]
					if cnt[s] == 0 {
						occList = append(occList, s)
						w := s >> 6
						if occ[w] == 0 {
							wsum |= 1 << (w & 63)
						}
						occ[w] |= 1 << (s & 63)
					}
					cnt[s]++
				}
				total += int32(len(bkt))
				if nchild == 0 {
					only = int32(ci)
				}
				nchild++
			}
		}
		// Re-extract the occupancy list in sorted symbol order from the
		// bitset (first-touch order is arbitrary). Sorted lists are what
		// let the sparse sweeps below walk rows canonically with a
		// two-pointer split instead of a min/max branch per cell. Gated
		// on the word summary being valid (nw ≤ 64 — every dense-mode
		// alphabet); beyond that only map mode runs, which never sweeps.
		if len(occList) > 1 && lv.nw <= 64 {
			occList = occList[:0]
			for su := wsum; su != 0; {
				w := bits.TrailingZeros64(su)
				su &= su - 1
				for bw := occ[w]; bw != 0; {
					occList = append(occList, uint32(w<<6+bits.TrailingZeros64(bw)))
					bw &= bw - 1
				}
			}
		}
		lv.occList[k] = occList
		lv.wsum[k] = wsum
		lv.total[k], lv.nchild[k], lv.only[k] = total, nchild, only
	}
}

// groupThreshold is the bucket size above which a same-child correction
// groups the bucket into sparse symbol counts first. Small buckets are
// corrected over raw node pairs (fewer instructions); large ones (label-
// dense shapes) must group or the correction degrades to the seed's
// quadratic node-pair cost — grouping caps it at O(distinct²).
const groupThreshold = 8

// groupBucket collapses a bucket into sparse (symbol, count) entries
// using the shared counting scratch.
func (m *miner) groupBucket(bkt []tree.NodeID, ents []symCount) []symCount {
	lv := &m.lv
	for _, v := range bkt {
		s := m.nodeSym[v]
		if lv.childCnt[s] == 0 {
			lv.childSyms = append(lv.childSyms, s)
		}
		lv.childCnt[s]++
	}
	for _, s := range lv.childSyms {
		ents = append(ents, symCount{sym: s, n: lv.childCnt[s]})
		lv.childCnt[s] = 0
	}
	lv.childSyms = lv.childSyms[:0]
	return ents
}

// subtractSameChild applies the correction term of the counting
// identity: pairs whose two nodes share a child subtree have a deeper
// LCA and must not be counted here, so each child's own cross product
// is subtracted after the totals sweep adds the full product (the sweep
// must come first — see accum.bump). Corrections read the buckets
// directly; no per-child histogram is materialized.
func (m *miner) subtractSameChild(ac *accum, kids []tree.NodeID, i, j, dc int) {
	if j == 1 {
		// Level 1 below the LCA is the child itself: every bucket has at
		// most one node, so a (1,1) pair can never share a child.
		return
	}
	nodeSym, lv := m.nodeSym, &m.lv
	if i == j {
		for _, c := range kids {
			bkt := m.bucket(c, i)
			if len(bkt) < 2 {
				continue
			}
			if len(bkt) <= groupThreshold {
				for x, u := range bkt {
					su := nodeSym[u]
					for _, v := range bkt[x+1:] {
						ac.bump(su, nodeSym[v], dc, -1)
					}
				}
				continue
			}
			ents := m.groupBucket(bkt, lv.entA[:0])
			lv.entA = ents[:0]
			for x, e1 := range ents {
				if e1.n > 1 {
					ac.bump(e1.sym, e1.sym, dc, -pairsOf(e1.n))
				}
				for _, e2 := range ents[x+1:] {
					ac.bump(e1.sym, e2.sym, dc, -e1.n*e2.n)
				}
			}
		}
		return
	}
	for _, c := range kids {
		us := m.bucket(c, i)
		if len(us) == 0 {
			continue
		}
		vs := m.bucket(c, j)
		if len(vs) == 0 {
			continue
		}
		if len(us) <= groupThreshold && len(vs) <= groupThreshold {
			for _, u := range us {
				su := nodeSym[u]
				for _, v := range vs {
					ac.bump(su, nodeSym[v], dc, -1)
				}
			}
			continue
		}
		eu := m.groupBucket(us, lv.entA[:0])
		lv.entA = eu[:0]
		ev := m.groupBucket(vs, lv.entB[:0])
		lv.entB = ev[:0]
		for _, e1 := range eu {
			for _, e2 := range ev {
				ac.bump(e1.sym, e2.sym, dc, -e1.n*e2.n)
			}
		}
	}
}

// sweepSame adds the totals product for a same-level pair (i == j):
// every unordered occupied symbol pair once, diagonal as C(n, 2). Row
// s1 covers the strictly-greater symbols, so each cell has exactly one
// canonical home and every write moves forward through one row. The
// inner multiply-accumulate runs over exact 64-cell segments aligned
// with the occupancy words — both sides padded to word multiples — so
// the masked bit offset indexes them with no bounds checks.
func (lv *levelVecs) sweepSame(ac *accum, k, dc int) {
	cnt, occ := lv.cnt[k], lv.occ[k]
	sum := lv.wsum[k]
	l, nw := ac.l, ac.nw
	for su := sum; su != 0; {
		w1 := bits.TrailingZeros64(su)
		su &= su - 1
		bits1 := occ[w1]
		for bits1 != 0 {
			b1 := bits.TrailingZeros64(bits1)
			bits1 &= bits1 - 1
			s1 := w1<<6 + b1
			n1 := cnt[s1]
			row := dc*l + s1
			rowBase := row * ac.rowLen
			rowWords := ac.rows[row*ac.nw : row*ac.nw+nw]
			ac.markRow(row, dc, uint32(s1))
			if n1 > 1 {
				ac.dense[rowBase+s1] += pairsOf(n1)
				rowWords[w1] |= 1 << uint(b1)
			}
			// Symbols strictly above s1: the rest of this word, then
			// the remaining occupied words from the summary.
			bw := occ[w1] &^ (^uint64(0) >> (63 - uint(b1)))
			sw := sum &^ (uint64(1)<<uint(w1+1) - 1)
			for wb := w1; ; {
				if bw != 0 {
					rowWords[wb] |= bw
					o := wb << 6
					seg := ac.dense[rowBase+o:][:64]
					cs := cnt[o:][:64]
					for bw != 0 {
						b := bits.TrailingZeros64(bw) & 63
						bw &= bw - 1
						seg[b] += n1 * cs[b]
					}
				}
				if sw == 0 {
					break
				}
				wb = bits.TrailingZeros64(sw)
				sw &= sw - 1
				bw = occ[wb]
			}
		}
	}
}

// sweepCross adds the totals product for a two-level pair (j = i+1).
// Rows run over the union of the two levels' occupied symbols; row r
// receives n_i(r)·n_j(t) for t ≥ r and n_j(r)·n_i(t) for t > r, which
// together cover every ordered level-i × level-j symbol pair exactly
// once in its canonical (min, max) cell — with every write row-major,
// never scattered down a column.
func (lv *levelVecs) sweepCross(ac *accum, i, j, dc int) {
	cntI, occI := lv.cnt[i], lv.occ[i]
	cntJ, occJ := lv.cnt[j], lv.occ[j]
	sumI, sumJ := lv.wsum[i], lv.wsum[j]
	l, nw := ac.l, ac.nw
	for su := sumI | sumJ; su != 0; {
		w1 := bits.TrailingZeros64(su)
		su &= su - 1
		u := occI[w1] | occJ[w1]
		for u != 0 {
			b1 := bits.TrailingZeros64(u)
			u &= u - 1
			r := w1<<6 + b1
			row := dc*l + r
			rowBase := row * ac.rowLen
			rowWords := ac.rows[row*ac.nw : row*ac.nw+nw]
			ac.markRow(row, dc, uint32(r))
			if nI := cntI[r]; nI != 0 {
				// Level-j partners at or above r (diagonal included:
				// the two depth roles make (r, r) a full product).
				bw := occJ[w1] &^ (1<<uint(b1) - 1)
				sw := sumJ &^ (uint64(1)<<uint(w1+1) - 1)
				for wb := w1; ; {
					if bw != 0 {
						rowWords[wb] |= bw
						o := wb << 6
						seg := ac.dense[rowBase+o:][:64]
						cs := cntJ[o:][:64]
						for bw != 0 {
							b := bits.TrailingZeros64(bw) & 63
							bw &= bw - 1
							seg[b] += nI * cs[b]
						}
					}
					if sw == 0 {
						break
					}
					wb = bits.TrailingZeros64(sw)
					sw &= sw - 1
					bw = occJ[wb]
				}
			}
			if nJ := cntJ[r]; nJ != 0 {
				// Level-i partners strictly above r (the diagonal was
				// counted by the first stream).
				bw := occI[w1] &^ (^uint64(0) >> (63 - uint(b1)))
				sw := sumI &^ (uint64(1)<<uint(w1+1) - 1)
				for wb := w1; ; {
					if bw != 0 {
						rowWords[wb] |= bw
						o := wb << 6
						seg := ac.dense[rowBase+o:][:64]
						cs := cntI[o:][:64]
						for bw != 0 {
							b := bits.TrailingZeros64(bw) & 63
							bw &= bw - 1
							seg[b] += nJ * cs[b]
						}
					}
					if sw == 0 {
						break
					}
					wb = bits.TrailingZeros64(sw)
					sw &= sw - 1
					bw = occI[wb]
				}
			}
		}
	}
}

// sparseSweepMax is the combined occupied-symbol count at or below which
// a level pair takes the sparse sweeps instead of the word-blocked ones.
// Small levels are the overwhelmingly common case (a fanout-f LCA rarely
// sees more than a few dozen distinct labels per level), and there the
// word sweep's per-row masking and summary machinery costs more than the
// cells it amortizes over; the sparse sweeps are plain pipelined loops
// over the sorted occupancy lists. Large levels (high-fanout hubs) still
// take the word sweeps, whose per-64-cell bitmap marking and bounds-
// check-free segments win once rows carry many cells.
const sparseSweepMax = 32

// sweepSameSparse is the totals product for a same-level pair over the
// sorted occupancy list: row s1 covers s2 > s1 in ascending order, so
// every write is row-major with the row base hoisted. Cells are tracked
// through the accumulator's touched list (first-touch append, exactly
// like accum.add) rather than the row bitmap — at sparse sizes one
// predictable compare per cell beats a read-modify-write of a bitmap
// word. Correction bumps stay safe: every cell they hit was just
// visited (and recorded) by this sweep.
func (lv *levelVecs) sweepSameSparse(ac *accum, k, dc int) {
	list, cnt := lv.occList[k], lv.cnt[k]
	dense, touched := ac.dense, ac.touched
	rowLen := ac.rowLen
	base := dc * ac.l
	for x, s1 := range list {
		n1 := cnt[s1]
		rowBase := (base + int(s1)) * rowLen
		if n1 > 1 {
			cell := rowBase + int(s1)
			if dense[cell] == 0 {
				touched = append(touched, int32(cell))
			}
			dense[cell] += pairsOf(n1)
		}
		for _, s2 := range list[x+1:] {
			cell := rowBase + int(s2)
			old := dense[cell]
			if old == 0 {
				touched = append(touched, int32(cell))
			}
			dense[cell] = old + n1*cnt[s2]
		}
	}
	ac.touched = touched
}

// sweepCrossSparse is the totals product for a two-level pair over the
// two sorted occupancy lists. The canonical (min, max) split becomes a
// two-pointer walk: stream 1 writes row u ∈ I against partners v ∈ J
// with v ≥ u (diagonal included — the two depth roles make it a full
// product), stream 2 writes row u ∈ J against v ∈ I with v > u. Both
// pointers only ever move forward, so the split costs O(|I|+|J|) total.
func (lv *levelVecs) sweepCrossSparse(ac *accum, i, j, dc int) {
	listI, cntI := lv.occList[i], lv.cnt[i]
	listJ, cntJ := lv.occList[j], lv.cnt[j]
	dense, touched := ac.dense, ac.touched
	rowLen := ac.rowLen
	base := dc * ac.l
	p := 0
	for _, s1 := range listI {
		for p < len(listJ) && listJ[p] < s1 {
			p++
		}
		n1 := cntI[s1]
		rowBase := (base + int(s1)) * rowLen
		for _, s2 := range listJ[p:] {
			cell := rowBase + int(s2)
			old := dense[cell]
			if old == 0 {
				touched = append(touched, int32(cell))
			}
			dense[cell] = old + n1*cntJ[s2]
		}
	}
	q := 0
	for _, s1 := range listJ {
		for q < len(listI) && listI[q] <= s1 {
			q++
		}
		n1 := cntJ[s1]
		rowBase := (base + int(s1)) * rowLen
		for _, s2 := range listI[q:] {
			cell := rowBase + int(s2)
			old := dense[cell]
			if old == 0 {
				touched = append(touched, int32(cell))
			}
			dense[cell] = old + n1*cntI[s2]
		}
	}
	ac.touched = touched
}

// pairsOf returns C(n, 2) with a 64-bit intermediate, so the product
// cannot overflow before the halving even for levels of ~10⁵ same-label
// nodes (the truncation to int32 then matches what one-at-a-time
// accumulation would have wrapped to).
func pairsOf(n int32) int32 {
	return int32(int64(n) * int64(n-1) / 2)
}

// growI32Zeroed returns s resized to n with the extension region
// guaranteed zero under the cleared-through-occList invariant (touched
// cells are always reset before the slice shrinks or is reused).
func growI32Zeroed(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growU64Zeroed(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
