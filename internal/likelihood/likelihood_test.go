package likelihood

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func aln(taxa []string, seqs ...string) *seqsim.Alignment {
	a := &seqsim.Alignment{Taxa: taxa, Seqs: map[string][]byte{}}
	for i, t := range taxa {
		a.Seqs[t] = []byte(seqs[i])
	}
	return a
}

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestScoreTwoTaxaClosedForm(t *testing.T) {
	// Two taxa, one site: the likelihood has a closed form. With states
	// equal: Σ_s π_s P_ss(t)² + cross terms … simpler: root at the
	// midpoint, L = Σ_root π (P_same-or-diff to each leaf). For equal
	// states A,A with branch t each side:
	// L = 0.25·Σ_s P(s→A)² over the four root states.
	a := aln([]string{"x", "y"}, "A", "A")
	tr := parse(t, "(x,y);")
	bl := 0.3
	got, err := Score(tr, a, bl)
	if err != nil {
		t.Fatal(err)
	}
	pS, pD := jcProbs(bl)
	want := math.Log(0.25 * (pS*pS + 3*pD*pD))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	// Different states A,C.
	a2 := aln([]string{"x", "y"}, "A", "C")
	got2, err := Score(tr, a2, bl)
	if err != nil {
		t.Fatal(err)
	}
	want2 := math.Log(0.25 * (2*pS*pD + 2*pD*pD))
	if math.Abs(got2-want2) > 1e-12 {
		t.Fatalf("Score(diff) = %v, want %v", got2, want2)
	}
	// Identical observations are more likely than different ones at
	// short branch lengths.
	if got <= got2 {
		t.Fatal("same-state data should be more likely")
	}
}

func TestScoreSitesAdd(t *testing.T) {
	tr := parse(t, "(x,y);")
	one, err := Score(tr, aln([]string{"x", "y"}, "A", "A"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Score(tr, aln([]string{"x", "y"}, "AA", "AA"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(two-2*one) > 1e-12 {
		t.Fatalf("log-likelihoods must add over sites: %v vs 2·%v", two, one)
	}
}

func TestScorePrefersTrueTopology(t *testing.T) {
	// A,A,G,G on ((a,b),(c,d)) must beat ((a,c),(b,d)).
	a := aln([]string{"a", "b", "c", "d"}, "AAAA", "AAAA", "GGGG", "GGGG")
	good, err := Score(parse(t, "((a,b),(c,d));"), a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Score(parse(t, "((a,c),(b,d));"), a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Fatalf("true topology LL %v not above wrong topology %v", good, bad)
	}
}

func TestScoreAmbiguousBase(t *testing.T) {
	// An all-ambiguous site contributes log(1) = 0… actually with
	// ambiguity the site likelihood is 1 at every root state: P = 1.
	tr := parse(t, "(x,y);")
	got, err := Score(tr, aln([]string{"x", "y"}, "N", "N"), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Fatalf("ambiguous site LL = %v, want 0", got)
	}
}

func TestScoreErrors(t *testing.T) {
	a := aln([]string{"x", "y", "z"}, "A", "A", "A")
	if _, err := Score(parse(t, "(x,y,z);"), a, 0.1); !errors.Is(err, ErrNotBinary) {
		t.Errorf("non-binary err = %v", err)
	}
	if _, err := Score(parse(t, "(x,w);"), a, 0.1); !errors.Is(err, ErrMissingSequence) {
		t.Errorf("missing seq err = %v", err)
	}
	if _, err := Score(parse(t, "(x,y);"), a, 0); !errors.Is(err, ErrBadBranchLength) {
		t.Errorf("zero branch err = %v", err)
	}
	ragged := aln([]string{"x", "y"}, "AA", "A")
	if _, err := Score(parse(t, "(x,y);"), ragged, 0.1); err == nil {
		t.Error("ragged alignment accepted")
	}
}

func TestSearchRecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	taxa := treegen.Alphabet(7)
	model := treegen.Yule(rng, taxa)
	a, err := seqsim.Evolve(rng, model, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	modelLL, err := Score(model, a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, best, err := Search(rng, a, SearchConfig{Starts: 6, MaxRounds: 60, BranchLen: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if best < modelLL-1e-9 {
		t.Fatalf("search LL %v below model tree LL %v", best, modelLL)
	}
	if got == nil || len(got.LeafLabels()) != len(taxa) {
		t.Fatalf("search tree malformed: %v", got)
	}
}

func TestSearchSPRMode(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	taxa := treegen.Alphabet(6)
	model := treegen.Yule(rng, taxa)
	a, err := seqsim.Evolve(rng, model, 150, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	nniTree, nniLL, err := Search(rand.New(rand.NewSource(3)), a,
		SearchConfig{Starts: 3, MaxRounds: 30, BranchLen: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sprTree, sprLL, err := Search(rand.New(rand.NewSource(3)), a,
		SearchConfig{Starts: 3, MaxRounds: 30, BranchLen: 0.1, UseSPR: true})
	if err != nil {
		t.Fatal(err)
	}
	if sprLL < nniLL-1e-9 {
		t.Fatalf("SPR LL %v below NNI LL %v from the same starts", sprLL, nniLL)
	}
	if nniTree == nil || sprTree == nil {
		t.Fatal("nil result tree")
	}
}

func TestSearchTooFewTaxa(t *testing.T) {
	a := aln([]string{"only"}, "ACGT")
	if _, _, err := Search(rand.New(rand.NewSource(0)), a, DefaultSearchConfig()); err == nil {
		t.Fatal("single taxon accepted")
	}
}

func TestJCProbsSaneLimits(t *testing.T) {
	pS, pD := jcProbs(1e-9)
	if pS < 0.999 || pD > 1e-9*2 {
		t.Fatalf("short branch: pS=%v pD=%v", pS, pD)
	}
	pS, pD = jcProbs(1e9)
	if math.Abs(pS-0.25) > 1e-9 || math.Abs(pD-0.25) > 1e-9 {
		t.Fatalf("long branch must saturate at 1/4: pS=%v pD=%v", pS, pD)
	}
	if math.Abs(pS+3*pD-1) > 1e-9 {
		t.Fatal("probabilities must sum to 1")
	}
}
