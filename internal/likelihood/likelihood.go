// Package likelihood implements maximum-likelihood phylogeny scoring and
// search under the Jukes–Cantor (JC69) substitution model: Felsenstein's
// pruning algorithm computes the log-likelihood of a tree given an
// alignment, and an NNI hill-climb searches tree space. Together with
// internal/parsimony this covers both reconstruction families the
// paper's §6 names as producers of the unrooted trees the free-tree
// extension mines ("methods such as MP [14] and ML [12] may produce
// unrooted unordered labeled trees"); reference [12] is Felsenstein's
// original ML paper.
package likelihood

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"treemine/internal/parsimony"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// Errors reported by the scorer.
var (
	// ErrNotBinary is returned when an internal node is not binary.
	ErrNotBinary = errors.New("likelihood: tree is not binary")
	// ErrMissingSequence is returned when a leaf has no sequence.
	ErrMissingSequence = errors.New("likelihood: leaf taxon missing from alignment")
	// ErrBadBranchLength is returned for non-positive branch lengths.
	ErrBadBranchLength = errors.New("likelihood: branch length must be positive")
)

// jcProbs returns the JC69 transition probabilities for one edge of
// length t (expected substitutions per site): pSame for identical
// states, pDiff for each of the three others.
func jcProbs(t float64) (pSame, pDiff float64) {
	e := math.Exp(-4 * t / 3)
	return 0.25 + 0.75*e, 0.25 - 0.25*e
}

// baseIndex maps a base to 0..3, or -1 for unknown (treated as fully
// ambiguous).
func baseIndex(b byte) int {
	switch b {
	case 'A':
		return 0
	case 'C':
		return 1
	case 'G':
		return 2
	case 'T':
		return 3
	default:
		return -1
	}
}

// Score returns the log-likelihood of the binary tree under JC69 with
// every edge at the given branch length. Uniform branch lengths keep the
// model one-parameter — enough for topology search, which is all the
// mining pipeline needs from ML.
func Score(t *tree.Tree, a *seqsim.Alignment, branchLen float64) (float64, error) {
	if branchLen <= 0 {
		return 0, fmt.Errorf("%w (%v)", ErrBadBranchLength, branchLen)
	}
	sites := a.Len()
	pSame, pDiff := jcProbs(branchLen)

	// partial[n][site*4+s] = P(data below n | state s at n).
	partial := make([][]float64, t.Size())
	var err error
	t.PostOrder(func(n tree.NodeID) {
		if err != nil {
			return
		}
		if t.IsLeaf(n) {
			l, ok := t.Label(n)
			if !ok {
				err = fmt.Errorf("%w (unlabeled leaf %d)", ErrMissingSequence, n)
				return
			}
			seq, ok := a.Seqs[l]
			if !ok {
				err = fmt.Errorf("%w (%q)", ErrMissingSequence, l)
				return
			}
			if len(seq) != sites {
				err = fmt.Errorf("likelihood: sequence for %q has %d sites, want %d", l, len(seq), sites)
				return
			}
			p := make([]float64, sites*4)
			for i, b := range seq {
				if s := baseIndex(b); s >= 0 {
					p[i*4+s] = 1
				} else {
					p[i*4], p[i*4+1], p[i*4+2], p[i*4+3] = 1, 1, 1, 1
				}
			}
			partial[n] = p
			return
		}
		kids := t.Children(n)
		if len(kids) != 2 {
			err = fmt.Errorf("%w (node %d has %d children)", ErrNotBinary, n, len(kids))
			return
		}
		l, r := partial[kids[0]], partial[kids[1]]
		p := make([]float64, sites*4)
		for i := 0; i < sites; i++ {
			for s := 0; s < 4; s++ {
				// Sum over child states with JC transition probabilities.
				var fromL, fromR float64
				for c := 0; c < 4; c++ {
					pr := pDiff
					if c == s {
						pr = pSame
					}
					fromL += pr * l[i*4+c]
					fromR += pr * r[i*4+c]
				}
				p[i*4+s] = fromL * fromR
			}
		}
		partial[n] = p
	})
	if err != nil {
		return 0, err
	}
	rootP := partial[t.Root()]
	ll := 0.0
	for i := 0; i < sites; i++ {
		site := 0.25 * (rootP[i*4] + rootP[i*4+1] + rootP[i*4+2] + rootP[i*4+3])
		if site <= 0 {
			return math.Inf(-1), nil
		}
		ll += math.Log(site)
	}
	return ll, nil
}

// SearchConfig tunes the ML topology search.
type SearchConfig struct {
	Starts    int     // random starting trees (default 8)
	MaxRounds int     // NNI improvement rounds per start (default 100)
	BranchLen float64 // uniform branch length (default 0.1)
	// UseSPR widens each climb step to the SPR neighborhood.
	UseSPR bool
}

// DefaultSearchConfig returns defaults suited to the paper-scale
// workloads.
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{Starts: 8, MaxRounds: 100, BranchLen: 0.1}
}

// Search hill-climbs to a maximum-likelihood topology with NNI moves
// from random Yule starts and returns the best tree and its
// log-likelihood.
func Search(rng *rand.Rand, a *seqsim.Alignment, cfg SearchConfig) (*tree.Tree, float64, error) {
	if cfg.Starts <= 0 || cfg.MaxRounds <= 0 || cfg.BranchLen <= 0 {
		useSPR := cfg.UseSPR
		cfg = DefaultSearchConfig()
		cfg.UseSPR = useSPR
	}
	if a.NumTaxa() < 2 {
		return nil, 0, fmt.Errorf("likelihood: need at least 2 taxa, have %d", a.NumTaxa())
	}
	// Neighbors materialize lazily from move descriptors: the greedy
	// first-improvement walk usually accepts early, so building the whole
	// neighborhood up front (as the old NNINeighbors/SPRNeighbors path
	// did) wasted tree constructions for every skipped move.
	next := func(cur *tree.Tree, visit func(*tree.Tree) (bool, error)) (bool, error) {
		if cfg.UseSPR {
			for _, m := range parsimony.SPRMoves(cur) {
				nb := parsimony.ApplySPR(cur, m)
				if nb == nil {
					continue
				}
				if stop, err := visit(nb); err != nil || stop {
					return stop, err
				}
			}
			return false, nil
		}
		for _, m := range parsimony.NNIMoves(cur) {
			if stop, err := visit(parsimony.ApplyNNI(cur, m)); err != nil || stop {
				return stop, err
			}
		}
		return false, nil
	}
	var bestTree *tree.Tree
	best := math.Inf(-1)
	for s := 0; s < cfg.Starts; s++ {
		cur := treegen.Yule(rng, a.Taxa)
		score, err := Score(cur, a, cfg.BranchLen)
		if err != nil {
			return nil, 0, err
		}
		for round := 0; round < cfg.MaxRounds; round++ {
			improved, err := next(cur, func(nb *tree.Tree) (bool, error) {
				ns, err := Score(nb, a, cfg.BranchLen)
				if err != nil {
					return false, err
				}
				if ns > score {
					cur, score = nb, ns
					return true, nil
				}
				return false, nil
			})
			if err != nil {
				return nil, 0, err
			}
			if !improved {
				break
			}
		}
		if score > best {
			best, bestTree = score, cur
		}
	}
	return bestTree, best, nil
}
