// Package phyloio loads phylogenies for the command-line tools: it
// reads Newick streams and NEXUS files interchangeably, sniffing the
// format from the #NEXUS header, so every CLI accepts both of the
// formats TreeBASE-era tooling exchanges.
package phyloio

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"

	"treemine/internal/newick"
	"treemine/internal/nexus"
	"treemine/internal/tree"
)

// ReadTrees loads all trees from the named files, or from stdin when no
// files are given. Each input may be a Newick stream (any number of
// semicolon-terminated trees) or a NEXUS file with a TREES block.
func ReadTrees(files []string, stdin io.Reader) ([]*tree.Tree, error) {
	if len(files) == 0 {
		return readAll("stdin", stdin)
	}
	var trees []*tree.Tree
	for _, f := range files {
		r, err := os.Open(f)
		if err != nil {
			return nil, err
		}
		ts, err := readAll(f, r)
		r.Close()
		if err != nil {
			return nil, err
		}
		trees = append(trees, ts...)
	}
	return trees, nil
}

func readAll(name string, r io.Reader) ([]*tree.Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if IsNexus(data) {
		f, err := nexus.Parse(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		trees := make([]*tree.Tree, len(f.Trees))
		for i, e := range f.Trees {
			trees[i] = e.Tree
		}
		return trees, nil
	}
	trees, err := newick.ParseAll(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return trees, nil
}

// IsNexus reports whether the data starts with the #NEXUS header
// (ignoring leading whitespace, case-insensitively).
func IsNexus(data []byte) bool {
	s := strings.TrimLeft(string(data[:min(len(data), 64)]), " \t\r\n")
	return len(s) >= 6 && strings.EqualFold(s[:6], "#NEXUS")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
