// Package phyloio loads phylogenies for the command-line tools: it
// reads Newick streams and NEXUS files interchangeably, sniffing the
// format from the #NEXUS header, so every CLI accepts both of the
// formats TreeBASE-era tooling exchanges.
package phyloio

import (
	"io"
	"strings"

	"treemine/internal/tree"
)

// ReadTrees loads all trees from the named files, or from stdin when no
// files are given. Each input may be a Newick stream (any number of
// semicolon-terminated trees) or a NEXUS file with a TREES block.
// ReadTrees is the materializing convenience over OpenTrees — use a
// TreeSource directly to mine forests that should not live in memory.
func ReadTrees(files []string, stdin io.Reader) ([]*tree.Tree, error) {
	src := OpenTrees(files, stdin)
	defer src.Close()
	var trees []*tree.Tree
	for {
		t, err := src.Next()
		if err == io.EOF {
			return trees, nil
		}
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
}

// IsNexus reports whether the data starts with the #NEXUS header
// (ignoring leading whitespace, case-insensitively).
func IsNexus(data []byte) bool {
	s := strings.TrimLeft(string(data[:min(len(data), 64)]), " \t\r\n")
	return len(s) >= 6 && strings.EqualFold(s[:6], "#NEXUS")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
