package phyloio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadNewickFromStdin(t *testing.T) {
	trees, err := ReadTrees(nil, strings.NewReader("(a,b);(c,(d,e));"))
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 || trees[1].Size() != 5 {
		t.Fatalf("trees = %d", len(trees))
	}
}

func TestReadNexusFromStdin(t *testing.T) {
	in := "  \n#NEXUS\nBEGIN TREES;\nTREE t1 = (a,b);\nTREE t2 = ((a,b),c);\nEND;\n"
	trees, err := ReadTrees(nil, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 || trees[1].Size() != 5 {
		t.Fatalf("trees = %d", len(trees))
	}
}

func TestReadMixedFiles(t *testing.T) {
	dir := t.TempDir()
	nwk := filepath.Join(dir, "a.nwk")
	nex := filepath.Join(dir, "b.nex")
	if err := os.WriteFile(nwk, []byte("(a,b);"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nex, []byte("#NEXUS\nBEGIN TREES;\nTREE x = (c,d);\nEND;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trees, err := ReadTrees([]string{nwk, nex}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadTrees([]string{"/nonexistent.nwk"}, nil); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := ReadTrees(nil, strings.NewReader("((a,b);")); err == nil {
		t.Error("bad newick accepted")
	}
	if _, err := ReadTrees(nil, strings.NewReader("#NEXUS\nBEGIN TREES;\n")); err == nil {
		t.Error("bad nexus accepted")
	}
}

func TestIsNexus(t *testing.T) {
	if !IsNexus([]byte("#NEXUS\n...")) || !IsNexus([]byte("  \n#nexus")) {
		t.Error("header not detected")
	}
	if IsNexus([]byte("(a,b);")) || IsNexus([]byte("")) {
		t.Error("false positive")
	}
}
