package phyloio

import (
	"fmt"
	"io"

	"treemine/internal/tree"
)

// Range-addressed streaming: the coordinator/worker mining mode splits a
// corpus into contiguous tree ranges, and each worker needs to reach its
// range without materializing (or even parsing) the trees before it.
// CountTrees sizes the corpus for the planner by skimming chunks;
// OpenTreesRange gives a worker an iterator over exactly its slice,
// fast-forwarding past the prefix at chunk-scan speed.

// skimmer is the optional fast-skip capability of an input iterator:
// consume one tree without building it. The Newick scanner implements
// it by chunk-scanning; inputs without it (NEXUS, which is parsed whole
// anyway) fall back to Next.
type skimmer interface {
	Skim() error
}

// Skim advances past the next tree across all inputs without parsing it
// where the input format allows (Newick chunks are scanned, not built;
// NEXUS trees are already parsed and simply dropped). It returns io.EOF
// when every input is exhausted, and a terminal error naming the
// offending input. Skim and Next interleave freely and consume the same
// underlying tree sequence.
func (s *TreeSource) Skim() error {
	if s.err != nil {
		return s.err
	}
	for {
		if s.cur == nil {
			if err := s.advance(); err != nil {
				return s.fail(err)
			}
			if s.cur == nil {
				s.err = io.EOF
				return io.EOF
			}
		}
		var err error
		if sk, ok := s.cur.(skimmer); ok {
			err = sk.Skim()
		} else {
			_, err = s.cur.Next()
		}
		if err == io.EOF {
			s.closeCur()
			continue
		}
		if err != nil {
			return s.fail(fmt.Errorf("%s: %w", s.name, err))
		}
		return nil
	}
}

// Skim drops the next decoded tree — the NEXUS-path counterpart of the
// scanner's chunk skim.
func (it *sliceIter) Skim() error {
	if it.i >= len(it.trees) {
		return io.EOF
	}
	it.i++
	return nil
}

// CountTrees streams through the named inputs and returns the number of
// trees they contain, without materializing a forest: Newick inputs are
// chunk-skimmed, so counting costs one pass of I/O. This is how the
// partition planner sizes a corpus before splitting it. A chunk that
// would later fail to parse still counts — parse errors surface when
// the owning worker mines its range.
func CountTrees(files []string, stdin io.Reader) (int, error) {
	src := OpenTrees(files, stdin)
	defer src.Close()
	n := 0
	for {
		err := src.Skim()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("counting tree %d: %w", n, err)
		}
		n++
	}
}

// RangeSource yields one contiguous tree range [skip, skip+count) of a
// corpus: the prefix is skimmed (not parsed) on the first Next, then
// count trees are parsed and yielded, then io.EOF — regardless of how
// many trees follow the range. It satisfies core.TreeIterator.
type RangeSource struct {
	src     *TreeSource
	skip    int
	remain  int
	skipped bool
}

// OpenTreesRange opens the named inputs (or stdin when none) positioned
// at the tree range [skip, skip+count). A range that extends past the
// corpus simply ends early — the caller can compare trees yielded
// against the planned count.
func OpenTreesRange(files []string, stdin io.Reader, skip, count int) *RangeSource {
	return &RangeSource{src: OpenTrees(files, stdin), skip: skip, remain: count}
}

// Next returns the next tree of the range, io.EOF after its last tree.
func (r *RangeSource) Next() (*tree.Tree, error) {
	if !r.skipped {
		r.skipped = true
		for i := 0; i < r.skip; i++ {
			if err := r.src.Skim(); err != nil {
				if err == io.EOF {
					r.remain = 0
					return nil, io.EOF
				}
				return nil, fmt.Errorf("seeking to tree %d: %w", r.skip, err)
			}
		}
	}
	if r.remain <= 0 {
		return nil, io.EOF
	}
	t, err := r.src.Next()
	if err != nil {
		return nil, err
	}
	r.remain--
	return t, nil
}

// Close releases the underlying inputs.
func (r *RangeSource) Close() error { return r.src.Close() }
