package phyloio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"treemine/internal/newick"
	"treemine/internal/nexus"
	"treemine/internal/tree"
)

// TreeSource yields trees from a sequence of phylogeny files (or stdin)
// one at a time, so forests larger than memory can be mined by the
// streaming pipeline. It satisfies the core.TreeIterator contract
// structurally: Next returns io.EOF after the last tree of the last
// input.
//
// Newick inputs are scanned incrementally — only one tree's text is
// buffered at a time. NEXUS inputs are parsed whole when first touched
// (the block grammar needs the TRANSLATE table before the trees) and
// then drained tree by tree; files are opened lazily and closed as soon
// as they are exhausted.
type TreeSource struct {
	files []string
	stdin io.Reader
	idx   int

	name   string    // name of the open input, for error messages
	cur    treeIter  // iterator over the open input, nil between files
	closer io.Closer // underlying file handle, nil for stdin
	err    error     // terminal error, sticky
}

type treeIter interface {
	Next() (*tree.Tree, error)
}

// OpenTrees returns a TreeSource over the named files, or over stdin
// when no files are given — the streaming counterpart of ReadTrees.
func OpenTrees(files []string, stdin io.Reader) *TreeSource {
	return &TreeSource{files: files, stdin: stdin}
}

// Next returns the next tree across all inputs, io.EOF when every input
// is exhausted, or a terminal error naming the offending input.
func (s *TreeSource) Next() (*tree.Tree, error) {
	if s.err != nil {
		return nil, s.err
	}
	for {
		if s.cur == nil {
			if err := s.advance(); err != nil {
				return nil, s.fail(err)
			}
			if s.cur == nil {
				s.err = io.EOF
				return nil, io.EOF
			}
		}
		t, err := s.cur.Next()
		if err == io.EOF {
			s.closeCur()
			continue
		}
		if err != nil {
			return nil, s.fail(fmt.Errorf("%s: %w", s.name, err))
		}
		return t, nil
	}
}

// Close releases the currently open file, if any. Next after Close
// returns the sticky terminal state.
func (s *TreeSource) Close() error {
	s.closeCur()
	if s.err == nil {
		s.err = io.EOF
	}
	return nil
}

func (s *TreeSource) fail(err error) error {
	s.closeCur()
	s.err = err
	return err
}

func (s *TreeSource) closeCur() {
	if s.closer != nil {
		s.closer.Close()
		s.closer = nil
	}
	s.cur = nil
}

// advance opens the next input, leaving cur nil when none remain.
func (s *TreeSource) advance() error {
	var r io.Reader
	switch {
	case len(s.files) == 0 && s.idx == 0 && s.stdin != nil:
		s.idx++
		s.name = "stdin"
		r = s.stdin
	case s.idx < len(s.files):
		f, err := os.Open(s.files[s.idx])
		if err != nil {
			return err
		}
		s.name = s.files[s.idx]
		s.idx++
		s.closer = f
		r = f
	default:
		return nil
	}

	br := bufio.NewReader(r)
	head, err := br.Peek(64)
	if err != nil && err != io.EOF {
		return fmt.Errorf("%s: %w", s.name, err)
	}
	if IsNexus(head) {
		// NEXUS has no incremental grammar; parse the file now and
		// stream out of the result.
		f, err := nexus.Parse(br)
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		trees := make([]*tree.Tree, len(f.Trees))
		for i, e := range f.Trees {
			trees[i] = e.Tree
		}
		s.closeFileEarly()
		s.cur = &sliceIter{trees: trees}
		return nil
	}
	s.cur = newick.NewScanner(br)
	return nil
}

// closeFileEarly releases the file handle once its contents are fully
// decoded (NEXUS path) while the decoded trees keep streaming.
func (s *TreeSource) closeFileEarly() {
	if s.closer != nil {
		s.closer.Close()
		s.closer = nil
	}
}

type sliceIter struct {
	trees []*tree.Tree
	i     int
}

func (it *sliceIter) Next() (*tree.Tree, error) {
	if it.i >= len(it.trees) {
		return nil, io.EOF
	}
	t := it.trees[it.i]
	it.i++
	return t, nil
}
