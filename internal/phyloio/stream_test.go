package phyloio

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treemine/internal/tree"
)

func drain(t *testing.T, src *TreeSource) []*tree.Tree {
	t.Helper()
	var out []*tree.Tree
	for {
		tr, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, tr)
	}
}

// TestTreeSourceMatchesReadTrees: the streaming and materializing paths
// must yield the same forest over mixed Newick and NEXUS inputs.
func TestTreeSourceMatchesReadTrees(t *testing.T) {
	dir := t.TempDir()
	nwk := filepath.Join(dir, "a.nwk")
	nex := filepath.Join(dir, "b.nex")
	if err := os.WriteFile(nwk, []byte("(a,b);\n((c,d),e);"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nex, []byte("#NEXUS\nBEGIN TREES;\nTREE x = (f,g);\nEND;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	files := []string{nwk, nex}
	want, err := ReadTrees(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, OpenTrees(files, nil))
	if len(got) != len(want) || len(got) != 3 {
		t.Fatalf("streamed %d trees, want %d", len(got), len(want))
	}
	for i := range got {
		if !tree.Isomorphic(got[i], want[i]) {
			t.Fatalf("tree %d differs between stream and batch", i)
		}
	}
}

func TestTreeSourceStdin(t *testing.T) {
	got := drain(t, OpenTrees(nil, strings.NewReader("(a,b);(c,(d,e));")))
	if len(got) != 2 || got[1].Size() != 5 {
		t.Fatalf("trees = %d", len(got))
	}
}

// TestTreeSourceErrors: open failures, Newick syntax errors and NEXUS
// parse errors all surface with the input name attached (or the raw
// open error), and the source goes terminal afterwards.
func TestTreeSourceErrors(t *testing.T) {
	src := OpenTrees([]string{"/nonexistent.nwk"}, nil)
	if _, err := src.Next(); err == nil {
		t.Error("missing file accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.nwk")
	if err := os.WriteFile(bad, []byte("(a,b);((c,d);"), 0o644); err != nil {
		t.Fatal(err)
	}
	src = OpenTrees([]string{bad}, nil)
	if _, err := src.Next(); err != nil {
		t.Fatalf("first tree should parse: %v", err)
	}
	_, err := src.Next()
	if err == nil || !strings.Contains(err.Error(), "bad.nwk") {
		t.Fatalf("err = %v, want it to name bad.nwk", err)
	}
	// Sticky: the same error comes back, not a fresh parse attempt.
	if _, again := src.Next(); again != err {
		t.Fatalf("error not sticky: %v", again)
	}

	src = OpenTrees(nil, strings.NewReader("#NEXUS\nBEGIN TREES;\n"))
	if _, err := src.Next(); err == nil || !strings.Contains(err.Error(), "stdin") {
		t.Fatalf("bad nexus: err = %v", err)
	}
}

func TestTreeSourceClose(t *testing.T) {
	src := OpenTrees(nil, strings.NewReader("(a,b);(c,d);"))
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
}
