package phyloio

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treemine/internal/tree"
)

// rangeFixture writes a mixed Newick+NEXUS corpus of 7 trees across
// two files and returns the file list.
func rangeFixture(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	nwk := filepath.Join(dir, "a.nwk")
	nex := filepath.Join(dir, "b.nex")
	if err := os.WriteFile(nwk, []byte("(a,b);\n((c,d),e);\n(f,(g,h));\n('x;y',q);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nex, []byte("#NEXUS\nBEGIN TREES;\nTREE x = (f,g);\nTREE y = ((a,b),c);\nTREE z = (p,(q,r));\nEND;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return []string{nwk, nex}
}

// TestCountTrees: counting skims the corpus without parsing and agrees
// with the number of trees Next would yield — including a quoted ';'
// that a naive split would overcount, and spanning the Newick→NEXUS
// file boundary.
func TestCountTrees(t *testing.T) {
	files := rangeFixture(t)
	n, err := CountTrees(files, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(drain(t, OpenTrees(files, nil))); n != want {
		t.Fatalf("CountTrees = %d, drain yields %d", n, want)
	}
	if n != 7 {
		t.Fatalf("CountTrees = %d, want 7", n)
	}
}

// TestCountTreesStdin: counting works over stdin too.
func TestCountTreesStdin(t *testing.T) {
	n, err := CountTrees(nil, strings.NewReader("(a,b);(c,d);"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("CountTrees = %d, want 2", n)
	}
}

// TestOpenTreesRange: every contiguous (skip, count) slice of the
// corpus yields exactly the trees a full drain yields at those
// positions — prefix skimming must not desynchronize the stream, even
// across the file boundary.
func TestOpenTreesRange(t *testing.T) {
	files := rangeFixture(t)
	want := drain(t, OpenTrees(files, nil))
	total := len(want)
	for skip := 0; skip <= total; skip++ {
		for count := 0; count <= total-skip+1; count++ {
			r := OpenTreesRange(files, nil, skip, count)
			var got []*tree.Tree
			for {
				tr, err := r.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("skip=%d count=%d: %v", skip, count, err)
				}
				got = append(got, tr)
			}
			r.Close()
			wantN := count
			if skip+count > total {
				wantN = total - skip
			}
			if len(got) != wantN {
				t.Fatalf("skip=%d count=%d: yielded %d trees, want %d", skip, count, len(got), wantN)
			}
			for i, tr := range got {
				if !tree.Isomorphic(tr, want[skip+i]) {
					t.Fatalf("skip=%d count=%d: tree %d differs from full drain", skip, count, i)
				}
			}
		}
	}
}

// TestRangePartitionCoversCorpus: concatenating disjoint ranges
// re-yields the whole corpus in order — the planner/worker contract.
func TestRangePartitionCoversCorpus(t *testing.T) {
	files := rangeFixture(t)
	want := drain(t, OpenTrees(files, nil))
	bounds := []int{0, 3, 5, len(want)}
	var got []*tree.Tree
	for i := 0; i+1 < len(bounds); i++ {
		r := OpenTreesRange(files, nil, bounds[i], bounds[i+1]-bounds[i])
		for {
			tr, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, tr)
		}
		r.Close()
	}
	if len(got) != len(want) {
		t.Fatalf("partitions yield %d trees, corpus has %d", len(got), len(want))
	}
	for i := range got {
		if !tree.Isomorphic(got[i], want[i]) {
			t.Fatalf("tree %d differs after partition reassembly", i)
		}
	}
}

// TestSkimDefersParseErrors: a malformed tree inside a skipped prefix
// does not fail the skim — the error belongs to the worker that owns
// that range (here, surfacing from Next when the range reaches it).
func TestSkimDefersParseErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.nwk")
	if err := os.WriteFile(bad, []byte("(a,b);((oops;(c,d);"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Counting sees three chunks, malformed or not.
	n, err := CountTrees([]string{bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("CountTrees = %d, want 3", n)
	}
	// A range past the malformed chunk opens fine...
	r := OpenTreesRange([]string{bad}, nil, 2, 1)
	if _, err := r.Next(); err != nil {
		t.Fatalf("range after malformed prefix: %v", err)
	}
	r.Close()
	// ...while the range that owns it surfaces the parse error.
	r = OpenTreesRange([]string{bad}, nil, 1, 1)
	if _, err := r.Next(); err == nil {
		t.Fatal("range owning the malformed tree parsed it")
	}
	r.Close()
}

// TestSkimNextInterleave: Skim and Next consume the same sequence.
func TestSkimNextInterleave(t *testing.T) {
	files := rangeFixture(t)
	want := drain(t, OpenTrees(files, nil))
	src := OpenTrees(files, nil)
	defer src.Close()
	if err := src.Skim(); err != nil {
		t.Fatal(err)
	}
	tr, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Isomorphic(tr, want[1]) {
		t.Fatal("Next after Skim did not yield tree 1")
	}
	if err := src.Skim(); err != nil {
		t.Fatal(err)
	}
	tr, err = src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Isomorphic(tr, want[3]) {
		t.Fatal("interleaved Skim/Next desynchronized the stream")
	}
}
