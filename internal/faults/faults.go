// Package faults is the failpoint registry of the mining runtime: named
// injection sites compiled into the long-running pipelines (streaming
// forest mining, the parallel distance-matrix fill, the parsimony
// search, atomic checkpoint writes) that tests — or an operator via the
// TREEMINE_FAULTS environment variable — can arm to inject iterator
// errors, checkpoint-write failures, torn writes, and worker panics.
//
// A disarmed registry costs one atomic load per Hit call, so the
// failpoints stay compiled into production binaries; the chaos suite
// (make chaos) arms them to prove cancellation, panic containment, and
// checkpoint durability under fault.
//
// Activation from the environment uses a comma-separated list of specs:
//
//	TREEMINE_FAULTS='core/stream/next=error@100,core/mine/worker=panic'
//
// where each spec is name=mode[@after][#count][%statefile]: mode is
// "error", "panic", "kill" (the process SIGKILLs itself — an abrupt
// worker death, defers skipped), or "stall" (the hit blocks forever —
// a hung worker an external timeout must reap), after is the number of
// hits to let pass before firing (default 0), and count is how many
// hits fire (default: every hit once triggered).
//
// A %statefile suffix makes the hit/fire counters persistent in the
// named file, shared by every process armed with the same spec — the
// coordinator chaos drills use it to express "this failpoint fires on
// the first K hits across worker restarts, then passes", which a
// per-process registry cannot (a re-executed worker starts fresh).
// Counter updates run under an exclusive file lock (where the platform
// has one), so concurrent workers sharing a spec observe one counter
// sequence — "#1" fires once across the fleet, not once per process.
package faults

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Catalogued failpoint names. Each names the boundary it interrupts;
// see DESIGN.md §47 for the catalogue with the behavior each one
// simulates.
const (
	// StreamNext fires in MineForestStreamShardCtx just before a tree is
	// pulled from the iterator — a mid-stream source failure.
	StreamNext = "core/stream/next"
	// StreamCheckpoint fires just before the stream's checkpoint
	// callback runs — a checkpoint-write failure.
	StreamCheckpoint = "core/stream/checkpoint"
	// MineWorker fires inside every forest-mining worker, per tree — a
	// crashing miner (arm in panic mode to test containment).
	MineWorker = "core/mine/worker"
	// ProfileWorker fires inside BuildProfilesCtx workers, per tree.
	ProfileWorker = "core/profile/worker"
	// MatrixWorker fires inside ProfileDistMatrixCtx workers, per row.
	MatrixWorker = "core/matrix/worker"
	// ClimbWorker fires at the start of every parsimony climb round.
	ClimbWorker = "parsimony/climb"
	// AtomicTorn fires in store.AtomicWrite after the payload is written
	// but before fsync: the temp file is torn in half and abandoned,
	// simulating a crash mid-flush.
	AtomicTorn = "store/atomic/torn"
	// AtomicSync fires in store.AtomicWrite in place of the fsync — an
	// fsync failure surfaced by the filesystem.
	AtomicSync = "store/atomic/sync"
	// AtomicCrash fires in store.AtomicWrite between the durable temp
	// write and the rename: the temp file is left behind and the
	// destination untouched, simulating a kill in the rename window.
	AtomicCrash = "store/atomic/crash"
	// ServeHandler fires at the top of every cousinserve request
	// handler, inside the per-request guard — a failing (error mode) or
	// crashing (panic mode) handler that must surface as a clean 5xx.
	ServeHandler = "serve/handler"
	// ServeSlow stalls the handler until the request context is done —
	// a stuck handler that the per-request deadline must bound.
	ServeSlow = "serve/handler/slow"
	// ServeCache fires in the query server's result-cache lookup and
	// store paths; an armed hit disables the cache for that operation,
	// so responses must stay correct with the cache out of the loop.
	ServeCache = "serve/cache"
	// ServeLoad fires per read while the query server loads its index
	// at startup — a mid-load I/O failure.
	ServeLoad = "serve/load"
	// StoreMmap fires in store.OpenMapped before the file is mapped — a
	// failing mmap (address space exhaustion, a filesystem that refuses
	// the mapping) that must surface as a clean open error.
	StoreMmap = "store/mmap"
	// SpillWrite fires in the out-of-core accumulator just before a
	// spill segment (or the final merged spill file) is written — a disk
	// failure mid-spill that must abort the worker cleanly, leaving the
	// destination shard absent so the coordinator re-mines the range.
	SpillWrite = "store/spill/write"
	// CoordLaunch fires in the supervising coordinator just before a
	// worker attempt is launched — a spawn failure (fork limit, missing
	// binary) the retry machinery must absorb. The coordinator also
	// probes "coord/worker/launch/<partition>", so a drill can target
	// one partition deterministically (e.g. to leave it permanently
	// dead for the -allow-partial degradation path).
	CoordLaunch = "coord/worker/launch"
	// CoordJournal fires just before the coordinator persists its
	// attempt journal — a journal-write failure that must never take
	// the mining run down with it.
	CoordJournal = "coord/journal/write"
)

// ErrInjected is the sentinel all injected failures match with
// errors.Is, whether they surfaced as returned errors or as recovered
// panics.
var ErrInjected = errors.New("faults: injected failure")

// InjectedError is the error value an armed failpoint produces.
type InjectedError struct {
	// Name is the failpoint that fired.
	Name string
}

func (e *InjectedError) Error() string { return "faults: injected failure at " + e.Name }

// Is makes errors.Is(err, ErrInjected) true for every injected failure.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Mode selects what an armed failpoint does when it fires.
type Mode int

const (
	// ModeError makes Hit return an *InjectedError.
	ModeError Mode = iota
	// ModePanic makes Hit panic with an *InjectedError — the injected
	// analogue of a worker bug, used to prove containment.
	ModePanic
	// ModeKill makes Hit SIGKILL the whole process (hard exit on
	// platforms without signals) — the injected analogue of an abrupt
	// worker death: no defers, no atomic-write completion, nothing.
	// Only meaningful in subprocess drills; in-process it kills the
	// test binary.
	ModeKill
	// ModeStall makes Hit block forever — a hung worker that only an
	// external supervisor (attempt timeout, straggler re-execution,
	// SIGKILL) can reap. Only meaningful in subprocess drills.
	ModeStall
)

// Spec arms a failpoint: skip After hits, then fire on the next Count
// hits (Count ≤ 0 fires on every hit once triggered). A non-empty
// StateFile keeps the hit/fire counters in that file instead of in
// process memory, so they survive worker restarts.
type Spec struct {
	Mode      Mode
	After     int
	Count     int
	StateFile string
}

type point struct {
	spec  Spec
	hits  int
	fired int
}

var (
	// armed is the fast-path gate: false whenever no failpoint is
	// enabled anywhere, so production Hit calls cost one atomic load.
	armed  atomic.Bool
	mu     sync.Mutex
	points = map[string]*point{}
)

// Enable arms the named failpoint. Re-enabling resets its hit counters.
func Enable(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	points[name] = &point{spec: spec}
	armed.Store(true)
}

// Disable disarms the named failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
	armed.Store(len(points) > 0)
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	armed.Store(false)
}

// Hit is the injection site: it reports whether the named failpoint
// fires at this call. Disarmed (the production state) it returns nil
// after one atomic load. Armed in ModeError it returns an
// *InjectedError; in ModePanic it panics with one — the caller's
// containment boundary is expected to recover it.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	var fire bool
	if p.spec.StateFile != "" {
		// Counters live on disk so a re-executed process continues where
		// the previous one left off. The read-modify-write runs under an
		// exclusive file lock: concurrent workers sharing a spec must see
		// a single counter sequence, or "#1" could fire once per process.
		p.hits, p.fired, fire = bumpCounters(p.spec.StateFile, p.spec.After, p.spec.Count)
	} else {
		p.hits++
		fire = p.hits > p.spec.After && (p.spec.Count <= 0 || p.fired < p.spec.Count)
		if fire {
			p.fired++
		}
	}
	mode := p.spec.Mode
	mu.Unlock()
	if !fire {
		return nil
	}
	err := &InjectedError{Name: name}
	switch mode {
	case ModePanic:
		panic(err)
	case ModeKill:
		selfKill()
	case ModeStall:
		// Block this goroutine forever; the process is expected to be
		// reaped from outside (timeout kill, speculative twin winning,
		// an operator). Sleeping in a loop avoids tripping the
		// runtime's all-goroutines-asleep deadlock detector.
		for {
			time.Sleep(time.Hour)
		}
	}
	return err
}

// bumpCounters advances the "hits fired" counters in a spec's state
// file by one hit, under an exclusive lock so concurrent processes
// sharing the spec observe one counter sequence, and reports whether
// this hit fires. A missing file reads as zero (the drill's starting
// state); an unopenable one disables firing — best-effort either way:
// a statefile problem degrades the drill, never the mining.
func bumpCounters(path string, after, count int) (hits, fired int, fire bool) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, 0, false
	}
	defer f.Close()
	lockState(f)
	defer unlockState(f)
	data, _ := io.ReadAll(f)
	fmt.Sscanf(string(data), "%d %d", &hits, &fired)
	hits++
	fire = hits > after && (count <= 0 || fired < count)
	if fire {
		fired++
	}
	if _, err := f.Seek(0, io.SeekStart); err == nil {
		if err := f.Truncate(0); err == nil {
			fmt.Fprintf(f, "%d %d\n", hits, fired)
		}
	}
	return hits, fired, fire
}

// Fired returns how many times the named failpoint has fired since it
// was (re-)enabled.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Apply parses and arms a comma-separated failpoint spec list — the
// TREEMINE_FAULTS grammar: name=mode[@after][#count][%statefile], e.g.
// "core/stream/next=error@100", "core/mine/worker=panic#1", or
// "store/spill/write=error#2%/tmp/fp.state" (fires on the first two
// hits across process restarts, then passes).
func Apply(specs string) error {
	for _, part := range strings.Split(specs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("faults: bad spec %q (want name=mode[@after][#count])", part)
		}
		spec, err := parseSpec(rest)
		if err != nil {
			return fmt.Errorf("faults: bad spec %q: %w", part, err)
		}
		Enable(name, spec)
	}
	return nil
}

func parseSpec(s string) (Spec, error) {
	var spec Spec
	// The state-file path comes off first so path bytes can never be
	// mistaken for the @ and # markers.
	if i := strings.IndexByte(s, '%'); i >= 0 {
		spec.StateFile = s[i+1:]
		if spec.StateFile == "" {
			return spec, fmt.Errorf("empty state file")
		}
		s = s[:i]
	}
	if i := strings.IndexByte(s, '#'); i >= 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 1 {
			return spec, fmt.Errorf("count %q", s[i+1:])
		}
		spec.Count = n
		s = s[:i]
	}
	if i := strings.IndexByte(s, '@'); i >= 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 0 {
			return spec, fmt.Errorf("after %q", s[i+1:])
		}
		spec.After = n
		s = s[:i]
	}
	switch s {
	case "error":
		spec.Mode = ModeError
	case "panic":
		spec.Mode = ModePanic
	case "kill":
		spec.Mode = ModeKill
	case "stall":
		spec.Mode = ModeStall
	default:
		return spec, fmt.Errorf("mode %q (want error, panic, kill, or stall)", s)
	}
	return spec, nil
}

func init() {
	if env := os.Getenv("TREEMINE_FAULTS"); env != "" {
		if err := Apply(env); err != nil {
			fmt.Fprintln(os.Stderr, "treemine:", err, "(TREEMINE_FAULTS ignored)")
			Reset()
		}
	}
}
