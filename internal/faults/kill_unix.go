//go:build unix

package faults

import (
	"os"
	"syscall"
)

// selfKill delivers SIGKILL to this process — the closest injectable
// analogue of a machine-level worker death: no deferred cleanup, no
// atomic-write completion, no exit handler runs.
func selfKill() {
	syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	// SIGKILL cannot be caught, but if delivery itself failed, still go
	// down hard.
	os.Exit(137)
}

// lockState takes an exclusive advisory lock on a statefile, so the
// counter read-modify-write is atomic across concurrent processes.
func lockState(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

func unlockState(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
