//go:build !unix

package faults

import "os"

// selfKill hard-exits on platforms without SIGKILL; defers are skipped
// either way, which is the property the drills rely on.
func selfKill() {
	os.Exit(137)
}

// lockState is a no-op without flock; cross-process statefile counters
// are best-effort on these platforms.
func lockState(*os.File) {}

func unlockState(*os.File) {}
