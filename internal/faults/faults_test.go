package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nope"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
}

func TestErrorModeFiresAndMatchesSentinel(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModeError})
	err := Hit("p")
	if err == nil {
		t.Fatal("armed Hit = nil, want injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Name != "p" {
		t.Fatalf("errors.As failed or wrong name: %v", err)
	}
}

func TestAfterAndCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModeError, After: 2, Count: 1})
	var fires []bool
	for i := 0; i < 5; i++ {
		fires = append(fires, Hit("p") != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all %v)", i, fires[i], want[i], fires)
		}
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModePanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic-mode Hit did not panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not match ErrInjected", r)
		}
	}()
	Hit("p")
}

func TestDisableAndOtherNamesUnaffected(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("a", Spec{Mode: ModeError})
	if err := Hit("b"); err != nil {
		t.Fatalf("unarmed name fired: %v", err)
	}
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
}

func TestApplyGrammar(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Apply("x=error@2, y=panic#3 ,z=error"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	mu.Lock()
	px, py := *points["x"], *points["y"]
	mu.Unlock()
	if px.spec != (Spec{Mode: ModeError, After: 2}) {
		t.Fatalf("x spec = %+v", px.spec)
	}
	if py.spec != (Spec{Mode: ModePanic, Count: 3}) {
		t.Fatalf("y spec = %+v", py.spec)
	}
	for _, bad := range []string{"noeq", "x=", "x=warn", "x=error@-1", "x=error#0", "x=error%"} {
		if err := Apply(bad); err == nil {
			t.Fatalf("Apply(%q) accepted", bad)
		}
	}
}

func TestApplyGrammarModesAndStateFile(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Apply("k=kill,s=stall#1,f=error#2%/tmp/with@odd#chars"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	mu.Lock()
	pk, ps, pf := *points["k"], *points["s"], *points["f"]
	mu.Unlock()
	if pk.spec.Mode != ModeKill {
		t.Fatalf("k spec = %+v", pk.spec)
	}
	if ps.spec != (Spec{Mode: ModeStall, Count: 1}) {
		t.Fatalf("s spec = %+v", ps.spec)
	}
	// Everything after the first % is the path, so @ and # inside it
	// never parse as markers.
	if pf.spec != (Spec{Mode: ModeError, Count: 2, StateFile: "/tmp/with@odd#chars"}) {
		t.Fatalf("f spec = %+v", pf.spec)
	}
}

// TestStateFileCountersSurviveRestart simulates the coordinator drill:
// the same spec re-armed in a fresh registry (a re-executed worker)
// continues the on-disk counters, so "fail twice then succeed" spans
// process restarts.
func TestStateFileCountersSurviveRestart(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	state := filepath.Join(t.TempDir(), "fp.state")
	spec := Spec{Mode: ModeError, Count: 2, StateFile: state}

	var fires []bool
	for restart := 0; restart < 4; restart++ {
		Reset() // a fresh process parses the same TREEMINE_FAULTS spec
		Enable("p", spec)
		fires = append(fires, Hit("p") != nil)
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("restart %d fired=%v, want %v (all %v)", i, fires[i], want[i], fires)
		}
	}
	if data, err := os.ReadFile(state); err != nil || string(data) != "4 2\n" {
		t.Fatalf("state file = %q, %v; want \"4 2\\n\"", data, err)
	}
}
