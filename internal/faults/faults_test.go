package faults

import (
	"errors"
	"testing"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("nope"); err != nil {
		t.Fatalf("disarmed Hit = %v, want nil", err)
	}
}

func TestErrorModeFiresAndMatchesSentinel(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModeError})
	err := Hit("p")
	if err == nil {
		t.Fatal("armed Hit = nil, want injected error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Name != "p" {
		t.Fatalf("errors.As failed or wrong name: %v", err)
	}
}

func TestAfterAndCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModeError, After: 2, Count: 1})
	var fires []bool
	for i := 0; i < 5; i++ {
		fires = append(fires, Hit("p") != nil)
	}
	want := []bool{false, false, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all %v)", i, fires[i], want[i], fires)
		}
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("p", Spec{Mode: ModePanic})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic-mode Hit did not panic")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v does not match ErrInjected", r)
		}
	}()
	Hit("p")
}

func TestDisableAndOtherNamesUnaffected(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable("a", Spec{Mode: ModeError})
	if err := Hit("b"); err != nil {
		t.Fatalf("unarmed name fired: %v", err)
	}
	Disable("a")
	if err := Hit("a"); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
}

func TestApplyGrammar(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Apply("x=error@2, y=panic#3 ,z=error"); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	mu.Lock()
	px, py := *points["x"], *points["y"]
	mu.Unlock()
	if px.spec != (Spec{Mode: ModeError, After: 2}) {
		t.Fatalf("x spec = %+v", px.spec)
	}
	if py.spec != (Spec{Mode: ModePanic, Count: 3}) {
		t.Fatalf("y spec = %+v", py.spec)
	}
	for _, bad := range []string{"noeq", "x=", "x=warn", "x=error@-1", "x=error#0"} {
		if err := Apply(bad); err == nil {
			t.Fatalf("Apply(%q) accepted", bad)
		}
	}
}
