package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"

	"treemine/internal/faults"
)

// Concurrency correctness: many goroutines hammering one read-only
// loaded index through every endpoint, LRU races under eviction
// pressure, in-flight requests completing during a graceful drain, and
// no goroutine left behind after shutdown. The whole file runs under
// `make race`.

// stripCacheCounters drops the live cache-counter object from a stats
// body so byte comparisons see only the deterministic backend fields:
// the counters legitimately advance between requests.
var statsCachePattern = regexp.MustCompile(`,"cache":\{[^}]*\}`)

func stripCacheCounters(body string) string {
	return statsCachePattern.ReplaceAllString(body, "")
}

// waitNoExtraGoroutines retries until the goroutine count returns to
// the baseline (the PR 5 leak-check pattern).
func waitNoExtraGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeRaceHammer: 8 goroutines × 250 mixed queries (valid,
// invalid, unknown labels/trees) against one server with a small cache,
// so cache hits, misses, and evictions all race. Every response must be
// a well-formed status from the endpoint's contract, and repeated
// queries must stay byte-identical across goroutines.
func TestServeRaceHammer(t *testing.T) {
	s, ts := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{CacheEntries: 16})

	queries := []struct {
		path string
		want int
	}{
		{"/v1/support?l1=Gnetum&l2=Welwitschia&dist=0", 200},
		{"/v1/support?l1=Gnetum&l2=Welwitschia", 200},
		{"/v1/support?l1=Ephedra&l2=Ginkgoales&dist=1", 200},
		{"/v1/support?l1=NoSuchTaxon&l2=Gnetum", 200},
		{"/v1/support?l1=&l2=x", 400},
		{"/v1/frequent?minsup=2", 200},
		{"/v1/frequent?minsup=1&maxdist=0.5&limit=3", 200},
		{"/v1/frequent?minsup=0", 400},
		{"/v1/tdist?t1=tree_1&t2=tree_2", 200},
		{"/v1/tdist?t1=tree_1&t2=tree_3&variant=occ", 200},
		{"/v1/tdist?t1=tree_1&t2=missing", 404},
		{"/v1/stats", 200},
	}

	// Reference bodies, fetched single-threaded before the hammer.
	ref := make([]string, len(queries))
	for i, q := range queries {
		st, body := get(t, ts, q.path)
		if st != q.want {
			t.Fatalf("%s: status %d, want %d", q.path, st, q.want)
		}
		ref[i] = stripCacheCounters(body)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				qi := (g + i) % len(queries)
				q := queries[qi]
				resp, err := ts.Client().Get(ts.URL + q.path)
				if err != nil {
					t.Errorf("%s: %v", q.path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("%s: read: %v", q.path, err)
					return
				}
				if resp.StatusCode != q.want {
					t.Errorf("%s: status %d, want %d", q.path, resp.StatusCode, q.want)
					return
				}
				if stripCacheCounters(string(body)) != ref[qi] {
					t.Errorf("%s: body diverged under concurrency:\n%s", q.path, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.CacheStats()
	if st.Hits == 0 {
		t.Error("hammer never hit the cache")
	}
}

// TestServeRaceCacheEvict drives far more distinct cacheable queries
// than the cache holds, from many goroutines, so inserts and evictions
// race on every shard; the bound on resident entries must hold
// throughout.
func TestServeRaceCacheEvict(t *testing.T) {
	s, ts := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{CacheEntries: 8})
	labels := []string{"Gnetum", "Welwitschia", "Ephedra", "Ginkgoales", "Pinaceae", "Angiosperms", "Cycadales", "Conifers2"}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				l1 := labels[(g+i)%len(labels)]
				l2 := labels[(g+2*i+1)%len(labels)]
				d := i % 4
				path := fmt.Sprintf("/v1/support?l1=%s&l2=%s&dist=%d", l1, l2, d)
				resp, err := ts.Client().Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	bound := ((8 + cacheShardCount - 1) / cacheShardCount) * cacheShardCount
	if n := s.CacheStats().Entries; n > bound {
		t.Errorf("cache holds %d entries after eviction races, bound %d", n, bound)
	}
}

// TestServeRaceDrainInFlight proves the graceful-drain contract on a
// real http.Server: requests stalled in a handler (the slow failpoint)
// are completed — bounded by the request deadline, answered with a
// clean 503 — while Shutdown waits, and no goroutine survives the
// drain.
func TestServeRaceDrainInFlight(t *testing.T) {
	defer faults.Reset()
	base := runtime.NumGoroutine()

	s := New(openBackend(t, fixtureIndex(t)), Config{CacheEntries: 64, RequestTimeout: 300 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	url := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	// A few normal requests first: the server works, connections warm.
	for _, p := range []string{"/v1/stats", "/v1/support?l1=Gnetum&l2=Welwitschia"} {
		resp, err := client.Get(url + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %d", p, resp.StatusCode)
		}
	}

	// Stall the next 3 requests in-handler until their deadlines.
	const stalled = 3
	faults.Enable(faults.ServeSlow, faults.Spec{Mode: faults.ModeError, Count: stalled})
	type result struct {
		status int
		body   string
		err    error
	}
	results := make(chan result, stalled)
	for i := 0; i < stalled; i++ {
		go func() {
			resp, err := client.Get(url + "/v1/frequent?minsup=2")
			if err != nil {
				results <- result{err: err}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{status: resp.StatusCode, body: string(body)}
		}()
	}

	// Wait until all three are inside handlers, then drain.
	deadline := time.Now().Add(2 * time.Second)
	for s.InFlight() < stalled {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests in flight", s.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v", err)
	}

	// Every stalled request completed during the drain, with a clean
	// deadline 503 — not a dropped connection.
	for i := 0; i < stalled; i++ {
		r := <-results
		if r.err != nil {
			t.Errorf("in-flight request dropped during drain: %v", r.err)
			continue
		}
		if r.status != http.StatusServiceUnavailable {
			t.Errorf("stalled request: status %d (body %s), want 503", r.status, r.body)
		}
	}
	if n := s.InFlight(); n != 0 {
		t.Errorf("%d requests still marked in flight after drain", n)
	}
	client.CloseIdleConnections()
	waitNoExtraGoroutines(t, base)
}

// TestServeRaceShutdownLeak: a full start → hammer → shutdown cycle
// leaves the goroutine count at its baseline.
func TestServeRaceShutdownLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(openBackend(t, fixtureIndex(t)), Config{CacheEntries: 32})
	ts := httptest.NewServer(s.Handler())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := ts.Client().Get(ts.URL + "/v1/frequent?minsup=1")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	ts.Client().CloseIdleConnections()
	ts.Close()
	waitNoExtraGoroutines(t, base)
}
