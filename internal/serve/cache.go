package serve

import (
	"container/list"
	"math/bits"
	"sync"
	"sync/atomic"
)

// CacheKey identifies one cached response body. Kind discriminates the
// endpoint; K1/K2 are the endpoint's parameters packed into two machine
// words — for support queries K1 is the probe's packed core.IKey, for
// tree-distance queries K1 packs the two tree indices and K2 the
// variant, for frequent listings K1/K2 pack (minsup, maxdist, limit).
// Packing the whole query into fixed-width integers keeps lookups
// allocation-free and makes equal queries collide exactly, never
// approximately.
type CacheKey struct {
	Kind   uint8
	K1, K2 uint64
}

// Cache key kinds, one per cacheable endpoint.
const (
	kindSupport uint8 = iota + 1
	kindFrequent
	kindTDist
)

// hash mixes the key into a well-distributed word (splitmix64-style
// finalizer) used to pick a shard.
func (k CacheKey) hash() uint64 {
	h := k.K1 ^ bits.RotateLeft64(k.K2, 31) ^ uint64(k.Kind)<<56
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// cacheShardCount is the number of independently locked LRU shards.
// Requests for different keys usually land on different shards, so the
// cache never serializes the whole query mix behind one mutex.
const cacheShardCount = 16

// Cache is a sharded LRU over serialized response bodies. All methods
// are safe for concurrent use, and safe on a nil *Cache (every lookup
// misses, every store is dropped) so a disabled cache needs no branches
// at call sites. Stored bodies are shared by reference: callers must
// treat both the stored and the returned byte slices as immutable.
type Cache struct {
	shards  [cacheShardCount]cacheShard
	perCap  int
	hits    atomic.Int64
	misses  atomic.Int64
	evicted atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	m     map[CacheKey]*list.Element
	order *list.List // front = most recently used
}

type cacheEntry struct {
	key  CacheKey
	body []byte
}

// NewCache returns a cache holding at most capacity entries (rounded up
// to a multiple of the shard count). capacity ≤ 0 returns nil — the
// disabled cache.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	c := &Cache{perCap: (capacity + cacheShardCount - 1) / cacheShardCount}
	for i := range c.shards {
		c.shards[i].m = make(map[CacheKey]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *Cache) shard(k CacheKey) *cacheShard {
	return &c.shards[k.hash()%cacheShardCount]
}

// Get returns the cached body for k, marking it most recently used.
func (c *Cache) Get(k CacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(k)
	s.mu.Lock()
	var body []byte
	el, ok := s.m[k]
	if ok {
		s.order.MoveToFront(el)
		// Capture the body before unlocking: Put's refresh path rewrites
		// entry.body under the lock, so reading it afterwards races.
		body = el.Value.(*cacheEntry).body
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return body, true
}

// Put stores body under k, evicting the shard's least recently used
// entry when the shard is full. Storing an existing key refreshes its
// body and recency.
func (c *Cache) Put(k CacheKey, body []byte) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok {
		el.Value.(*cacheEntry).body = body
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[k] = s.order.PushFront(&cacheEntry{key: k, body: body})
	var evictions int
	for s.order.Len() > c.perCap {
		last := s.order.Back()
		s.order.Remove(last)
		delete(s.m, last.Value.(*cacheEntry).key)
		evictions++
	}
	s.mu.Unlock()
	if evictions > 0 {
		c.evicted.Add(int64(evictions))
	}
}

// Len returns the number of entries currently cached.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the counters. Hits/misses/evictions are monotonic;
// Entries is the current size.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Entries:   c.Len(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicted.Load(),
	}
}
