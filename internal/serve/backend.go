// Package serve turns a mined cousin-pair index into a long-running
// query service: a Backend loads a store file read-only at startup, a
// Server answers concurrent HTTP+JSON queries over it (pair support,
// frequent-pair listing, tree distance/similarity, index stats) through
// a sharded LRU result cache keyed on packed IKeys. The paper's mining
// pass is the expensive step; this package is the "index once, query
// forever" half of the split.
//
// Every query the server answers is differential-tested against the
// in-process library answer on the same loaded data — the server is a
// transport, never a second implementation of the semantics.
package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"treemine/internal/core"
	"treemine/internal/faults"
	"treemine/internal/store"
)

// Errors the backend maps to non-500 HTTP statuses.
var (
	// ErrUnknownTree reports a tree-distance query naming a tree the
	// index does not contain (HTTP 404).
	ErrUnknownTree = errors.New("serve: unknown tree")
	// ErrUnsupported reports a query the loaded backend cannot answer —
	// e.g. tree distance against a v3 shard, which aggregates support
	// without keeping per-tree item sets (HTTP 501).
	ErrUnsupported = errors.New("serve: query not supported by this backend")
)

// ctxCheckEvery is how many loop iterations a scan runs between request
// context checks; scans over the loaded index are the only per-request
// work proportional to index size.
const ctxCheckEvery = 4096

// Backend answers queries from one immutably loaded index. After Open
// returns, nothing mutates the backend, the wrapped index, or the
// symbol table — which is what makes a Backend safe for any number of
// concurrent readers with no locking.
type Backend struct {
	kind string // "index", "shard", or "mapped"

	// syms interns every label the loaded data mentions; it is used
	// read-only (Lookup) after load, for cache-key packing and, in shard
	// mode, support lookups.
	syms *core.Symbols

	// full is the complete frequent-pair listing at minsup 1, sorted by
	// decreasing support then key. Frequent filters it, which matches
	// store.Index.Frequent / SupportShard.Finalize for every minsup
	// because filtering preserves the shared total order.
	full []core.FrequentPair

	trees int
	items int

	// Index mode: the loaded index, its per-tree item sets, and tree
	// name → entry position (first occurrence wins on duplicates).
	ix    *store.Index
	sets  []core.ItemSet
	names map[string]int

	// Shard mode: support counts plus the shard's mining options. A
	// packed shard (MaxDist ≤ MaxPackedDist) probes sup by packed IKey;
	// a generic shard (mined past MaxPackedDist, so its distances do not
	// fit IKey's 4-bit field) keeps string keys in gsup, exactly as
	// core.SupportShard itself does. Exactly one of the two maps is set.
	// shOpts also carries the mining options in mapped mode, so the
	// aggregate capability rules below read one field for both.
	sup    map[core.IKey]int64
	gsup   map[core.Key]int64
	shOpts core.ForestOptions

	// Mapped mode: a v4 file queried in place. No syms, no full listing,
	// no maps — support probes binary-search the mapped bytes and
	// frequent listings walk the file's support-descending permutation,
	// so opening is O(1) and resident memory is whatever the kernel has
	// paged in.
	m *store.Mapped
}

// faultReader injects the serve/load failpoint into every read, so the
// chaos suite can simulate a mid-load I/O failure.
type faultReader struct{ r io.Reader }

func (fr faultReader) Read(p []byte) (int, error) {
	if err := faults.Hit(faults.ServeLoad); err != nil {
		return 0, err
	}
	return fr.r.Read(p)
}

// Open reads a store file and builds the matching backend: a v1/v2
// index file (cousindex build) serves every endpoint; a v3 shard
// checkpoint (cousinmine -checkpoint) serves support, frequent, and
// stats — a shard holds aggregate counts, not per-tree item sets, so
// tree-distance queries report ErrUnsupported. A v4 compacted file
// (cousindex compact) serves the same aggregate endpoints; Open has
// only a reader, so the bytes are held in memory — prefer OpenPath,
// which memory-maps v4 files instead.
func Open(r io.Reader) (*Backend, error) {
	br := bufio.NewReader(faultReader{r})
	head, err := br.Peek(len("TREEMINEIDX3"))
	if err != nil {
		return nil, fmt.Errorf("serve: read index header: %w", err)
	}
	switch string(head) {
	case "TREEMINEIDX4":
		raw, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("serve: read v4 index: %w", err)
		}
		m, err := store.OpenMappedBytes(raw)
		if err != nil {
			return nil, err
		}
		return newMappedBackend(m), nil
	case "TREEMINEIDX3":
		sh, err := store.LoadShard(br)
		if err != nil {
			return nil, err
		}
		return newShardBackend(sh), nil
	}
	ix, err := store.Load(br)
	if err != nil {
		return nil, err
	}
	return newIndexBackend(ix), nil
}

// OpenPath opens the store file at path, auto-detecting the format by
// magic: v4 files are memory-mapped (store.OpenMapped — O(1) startup,
// zero-copy queries), everything else goes through Open's decode path.
// Close the returned backend when done serving.
func OpenPath(path string) (*Backend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [len("TREEMINEIDX4")]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("serve: read index header: %w", err)
	}
	if string(head[:]) == "TREEMINEIDX4" {
		// The mmap path does no incremental reads, so give the serve/load
		// failpoint its one shot at the open instead.
		if err := faults.Hit(faults.ServeLoad); err != nil {
			return nil, err
		}
		m, err := store.OpenMapped(path)
		if err != nil {
			return nil, err
		}
		return newMappedBackend(m), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return Open(f)
}

// Close releases backend resources — the mmap in mapped mode, nothing
// elsewhere. No queries may be in flight or issued afterwards.
func (b *Backend) Close() error {
	if b.m != nil {
		return b.m.Close()
	}
	return nil
}

// newIndexBackend wraps a loaded (or built) store.Index.
func newIndexBackend(ix *store.Index) *Backend {
	b := &Backend{
		kind:  "index",
		syms:  core.NewSymbols(),
		trees: ix.NumTrees(),
		ix:    ix,
		sets:  ix.ItemSets(),
		names: make(map[string]int, len(ix.Entries)),
	}
	for i, e := range ix.Entries {
		if _, dup := b.names[e.Name]; !dup {
			b.names[e.Name] = i
		}
		b.items += len(e.Items)
		for k := range e.Items {
			b.syms.Intern(k.A)
			b.syms.Intern(k.B)
		}
	}
	b.full = ix.Frequent(1)
	return b
}

// newShardBackend wraps a loaded v3 support shard. The snapshot's label
// table is re-interned in order, so snapshot symbol IDs and backend
// symbol IDs coincide and packed counts can be probed directly. A shard
// mined past MaxPackedDist keeps string keys instead: its distances
// overflow IKey's 4-bit field — NewIKey(a, b, 15) == NewIKey(a, b+1,
// DistWild) — which would silently merge counts of distinct pairs.
func newShardBackend(sh *core.SupportShard) *Backend {
	opts, trees, labels, items := sh.Snapshot()
	b := &Backend{
		kind:   "shard",
		syms:   core.NewSymbols(),
		trees:  trees,
		shOpts: opts,
	}
	for _, l := range labels {
		b.syms.Intern(l)
	}
	if opts.MaxDist <= core.MaxPackedDist {
		b.sup = make(map[core.IKey]int64, len(items))
		for _, it := range items {
			b.sup[core.NewIKey(it.A, it.B, it.D)] += it.N
		}
	} else {
		b.gsup = make(map[core.Key]int64, len(items))
		for _, it := range items {
			b.gsup[core.NewKey(labels[it.A], labels[it.B], it.D)] += it.N
		}
	}
	b.full = sh.Finalize(1)
	return b
}

// newMappedBackend wraps an opened v4 file. Nothing is decoded or
// copied: the backend is a thin capability layer over the mapped
// accessors, with the same aggregate semantics as a shard backend.
func newMappedBackend(m *store.Mapped) *Backend {
	return &Backend{
		kind:   "mapped",
		trees:  m.Trees(),
		items:  int(m.Items()),
		shOpts: m.Options(),
		m:      m,
	}
}

// Kind reports which store format backs the server: "index", "shard",
// or "mapped" (a memory-mapped v4 file).
func (b *Backend) Kind() string { return b.kind }

// Trees returns the number of trees the loaded data covers.
func (b *Backend) Trees() int { return b.trees }

// Support returns the number of trees containing the label pair at
// distance d (DistWild: at any distance). Index mode answers both forms
// from the per-tree item sets, exactly as store.Index.Support does. A
// shard only holds the distance form it was mined with: a
// distance-keyed shard cannot answer wildcard probes (a tree containing
// the pair at two distances would be double-counted) and an IgnoreDist
// shard cannot answer concrete ones — both report ErrUnsupported.
func (b *Backend) Support(ctx context.Context, l1, l2 string, d core.Dist) (int, error) {
	if b.ix != nil {
		if !d.IsWild() {
			return b.ix.Support(l1, l2, d), nil
		}
		// The wildcard probe scans every per-tree item set (the same
		// loop as core.SupportOf), so it honors the request deadline.
		n := 0
		for i, s := range b.sets {
			if i%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if _, ok := s.MinDistOf(l1, l2); ok {
				n++
			}
		}
		return n, nil
	}
	if d.IsWild() != b.shOpts.IgnoreDist {
		if b.shOpts.IgnoreDist {
			return 0, fmt.Errorf("%w: shard was mined distance-insensitively (use dist=*)", ErrUnsupported)
		}
		return 0, fmt.Errorf("%w: wildcard support is not derivable from a distance-keyed shard", ErrUnsupported)
	}
	if b.m != nil {
		if !d.IsWild() && !b.m.Generic() && d > b.shOpts.MaxDist {
			// Same guard as the packed map below: the true count is 0, and
			// a packed probe past MaxPackedDist would overflow IKey's
			// distance field. (A generic file compares distances as
			// integers, so its lookup is total.)
			return 0, nil
		}
		return int(b.m.Support(l1, l2, d)), nil
	}
	if b.gsup != nil {
		// Generic-mode shard: string-keyed counts answer any distance.
		return int(b.gsup[core.NewKey(l1, l2, d)]), nil
	}
	if d > b.shOpts.MaxDist {
		// Nothing was mined past MaxDist, so the true count is 0 — and a
		// packed probe there would overflow IKey's distance field and
		// read some other pair's count (parseDist admits distances up to
		// 1<<16 halves, far past MaxPackedDist).
		return 0, nil
	}
	a, ok1 := b.syms.Lookup(l1)
	bb, ok2 := b.syms.Lookup(l2)
	if !ok1 || !ok2 {
		return 0, nil
	}
	return int(b.sup[core.NewIKey(a, bb, d)]), nil
}

// Frequent returns the pairs with support ≥ minSup whose distance
// passes the maxDist filter, in the shared order (decreasing support,
// then key), truncated to limit when limit > 0. total counts the
// matches before truncation. A DistWild maxDist means no filter;
// wildcard-distance pairs (from IgnoreDist data) pass every filter,
// since they carry no concrete distance to test.
func (b *Backend) Frequent(ctx context.Context, minSup int, maxDist core.Dist, limit int) (pairs []core.FrequentPair, total int, err error) {
	pairs = []core.FrequentPair{}
	if b.m != nil {
		// Walk the file's support-descending permutation: the base record
		// order is CompareKeys order, so a stable support sort over it is
		// exactly the Finalize(1) total order the decoded backends use.
		// Supports along the walk are non-increasing, so the minsup
		// cutoff ends the scan; pairs only materialize when listed.
		for i, n := 0, b.m.Len(); i < n; i++ {
			if i%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			rec := b.m.PermAt(i)
			if b.m.SupportAt(rec) < int64(minSup) {
				break
			}
			if !maxDist.IsWild() {
				if d := b.m.DistAt(rec); !d.IsWild() && d > maxDist {
					continue
				}
			}
			total++
			if limit <= 0 || len(pairs) < limit {
				pairs = append(pairs, b.m.PairAt(rec))
			}
		}
		return pairs, total, nil
	}
	for i, p := range b.full {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		if p.Support < minSup {
			continue
		}
		if !maxDist.IsWild() && !p.Key.D.IsWild() && p.Key.D > maxDist {
			continue
		}
		total++
		if limit <= 0 || len(pairs) < limit {
			pairs = append(pairs, p)
		}
	}
	return pairs, total, nil
}

// resolve maps a tree name to its entry index.
func (b *Backend) resolve(name string) (int, error) {
	i, ok := b.names[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTree, name)
	}
	return i, nil
}

// TDist computes the paper's cousin-based tree distance (Eq. 6, under
// the requested variant) and similarity score (Eq. 4) between two named
// trees, from the item sets mined at index build time — the library's
// core.TDistItems and core.SimItems on the stored sets. Shard backends
// report ErrUnsupported.
func (b *Backend) TDist(t1, t2 string, v core.Variant) (tdist, sim float64, err error) {
	if b.ix == nil {
		return 0, 0, fmt.Errorf("%w: tree distance needs per-tree item sets (serve an index, not a shard)", ErrUnsupported)
	}
	i, err := b.resolve(t1)
	if err != nil {
		return 0, 0, err
	}
	j, err := b.resolve(t2)
	if err != nil {
		return 0, 0, err
	}
	s1, s2 := b.sets[i], b.sets[j]
	return core.TDistItems(s1, s2, v), core.SimItems(s1, s2), nil
}

// Stats describes the loaded data; every field is a pure function of
// the store file, so stats responses are byte-stable across runs.
//
// The supports_* fields advertise which query shapes this backend can
// answer, so clients discover the mapped/shard limitations (no tree
// distance without per-tree item sets; one support keying, concrete or
// wildcard, per shard) from one stats call instead of probing
// endpoints for 501s.
type Stats struct {
	Backend    string    `json:"backend"`
	Trees      int       `json:"trees"`
	Labels     int       `json:"labels"`
	Pairs      int       `json:"pairs"`
	Items      int       `json:"items"`
	MaxDist    core.Dist `json:"maxdist"`
	MinOccur   int       `json:"minoccur"`
	IgnoreDist bool      `json:"ignoredist"`
	// SupportsTDist: /v1/tdist works (index backends only — tree
	// distance needs the per-tree item sets).
	SupportsTDist bool `json:"supports_tdist"`
	// SupportsConcreteDist: /v1/support with a concrete dist works.
	SupportsConcreteDist bool `json:"supports_concrete_dist"`
	// SupportsWildcard: /v1/support with dist=* (or omitted) works.
	SupportsWildcard bool `json:"supports_wildcard"`
}

// Stats returns the backend's description: tree and label counts, the
// number of distinct support entries (Pairs), the total per-tree items
// (Items, index mode only), and the mining parameters.
func (b *Backend) Stats() Stats {
	st := Stats{
		Backend: b.kind,
		Trees:   b.trees,
		Items:   b.items,
		// Mirrors the Support/TDist dispatch exactly: index backends
		// answer everything; shard and mapped backends answer only the
		// keying they were mined under, and never tree distance.
		SupportsTDist:        b.ix != nil,
		SupportsConcreteDist: b.ix != nil || !b.shOpts.IgnoreDist,
		SupportsWildcard:     b.ix != nil || b.shOpts.IgnoreDist,
	}
	switch {
	case b.m != nil:
		st.Labels = b.m.NumSymbols()
		st.Pairs = b.m.Len()
		st.MaxDist = b.shOpts.MaxDist
		st.MinOccur = b.shOpts.MinOccur
		st.IgnoreDist = b.shOpts.IgnoreDist
	case b.ix != nil:
		st.Labels = b.syms.Len()
		st.Pairs = len(b.full)
		st.MaxDist = b.ix.Options.MaxDist
		st.MinOccur = b.ix.Options.MinOccur
	default:
		st.Labels = b.syms.Len()
		st.Pairs = len(b.full)
		st.MaxDist = b.shOpts.MaxDist
		st.MinOccur = b.shOpts.MinOccur
		st.IgnoreDist = b.shOpts.IgnoreDist
	}
	return st
}

// supportCacheKey packs a support probe into a cache key: the pair's
// interned IKey. Probes naming labels the index never saw, or distances
// beyond the packed range, are not cacheable (they also cannot collide
// with any cached answer, which is the invariant that matters).
func (b *Backend) supportCacheKey(l1, l2 string, d core.Dist) (CacheKey, bool) {
	if d > core.MaxPackedDist {
		return CacheKey{}, false
	}
	var a, bb uint32
	var ok1, ok2 bool
	if b.m != nil {
		// Mapped mode has no intern table; label ranks in the sorted
		// symbol section are just as collision-free within one backend.
		a, ok1 = b.m.LookupSymbol(l1)
		bb, ok2 = b.m.LookupSymbol(l2)
	} else {
		a, ok1 = b.syms.Lookup(l1)
		bb, ok2 = b.syms.Lookup(l2)
	}
	if !ok1 || !ok2 {
		return CacheKey{}, false
	}
	return CacheKey{Kind: kindSupport, K1: uint64(core.NewIKey(a, bb, d))}, true
}

// tdistCacheKey packs a tree-distance query: the two entry indices (in
// request order, matching the response echo) and the variant.
func (b *Backend) tdistCacheKey(t1, t2 string, v core.Variant) (CacheKey, bool) {
	i, ok1 := b.names[t1]
	j, ok2 := b.names[t2]
	if !ok1 || !ok2 {
		return CacheKey{}, false
	}
	return CacheKey{
		Kind: kindTDist,
		K1:   uint64(uint32(i))<<32 | uint64(uint32(j)),
		K2:   uint64(v),
	}, true
}

// frequentCacheKey packs a frequent listing query. Parse bounds keep
// every component within its packed width.
func frequentCacheKey(q FrequentQuery) CacheKey {
	return CacheKey{
		Kind: kindFrequent,
		K1:   uint64(q.MinSup),
		K2:   uint64(uint32(q.MaxDist+1))<<32 | uint64(uint32(q.Limit)),
	}
}
