package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"regexp"
	"testing"

	"treemine/internal/core"
	"treemine/internal/store"
)

// The mapped differential harness: a server over a compacted v4 file
// must be byte-for-byte indistinguishable from a server over the
// decoded source it was compacted from, on every /v1/* endpoint. Both
// servers are driven in lockstep with the identical request sequence,
// so even the cache counters in /v1/stats must evolve identically —
// the compaction changes the storage layout, never the observable
// service.

// backendField and capabilityField normalize the legitimate
// differences between the two servers: the stats backend
// discriminator and the capability flags. A mapped backend really
// does answer fewer query shapes than the index it was compacted
// from — the 501 checks at the end of each test pin that — so the
// stats advertisement is allowed to differ too.
var (
	backendField    = regexp.MustCompile(`"backend":"(index|shard|mapped)"`)
	capabilityField = regexp.MustCompile(`"supports_(tdist|concrete_dist|wildcard)":(true|false)`)
)

func normalizeBackend(body string) string {
	body = backendField.ReplaceAllString(body, `"backend":"_"`)
	return capabilityField.ReplaceAllString(body, `"supports_$1":"_"`)
}

// getLockstep fires the same query at the decoded and the mapped
// server and requires equal statuses and equal bodies modulo the
// backend discriminator. Each query runs twice, so the cache-miss and
// cache-hit paths are both compared.
func getLockstep(t *testing.T, decoded, mapped *httptest.Server, path string) {
	t.Helper()
	for _, pass := range []string{"miss", "hit"} {
		ds, db := get(t, decoded, path)
		ms, mb := get(t, mapped, path)
		if ds != ms {
			t.Fatalf("%s (%s pass): decoded status %d, mapped status %d", path, pass, ds, ms)
		}
		if normalizeBackend(db) != normalizeBackend(mb) {
			t.Fatalf("%s (%s pass): mapped backend diverged\n--- decoded ---\n%s--- mapped ---\n%s",
				path, pass, db, mb)
		}
	}
}

// mappedPairFromShard compacts sh to a v4 file and opens both backends:
// the decoded shard (via the v3 bytes) and the mapped file (via
// OpenPath, the daemon's route).
func mappedPairFromShard(t *testing.T, sh *core.SupportShard) (decoded, mapped *httptest.Server) {
	t.Helper()
	var buf bytes.Buffer
	if err := store.SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	db, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.v4")
	if err := store.CompactShardV4(path, sh); err != nil {
		t.Fatal(err)
	}
	mb, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mb.Close() })
	if mb.Kind() != "mapped" {
		t.Fatalf("OpenPath(v4) kind = %q, want mapped", mb.Kind())
	}
	// Large enough that nothing evicts: the two backends pack different
	// symbol IDs into cache keys (intern order vs sorted rank), so LRU
	// shard placement — and therefore eviction timing — is allowed to
	// differ. With evictions out of the picture, the hit/miss/entry
	// counters in /v1/stats must agree exactly.
	cfg := Config{CacheEntries: 1 << 14}
	_, dts := newTestServer(t, db, cfg)
	_, mts := newTestServer(t, mb, cfg)
	return dts, mts
}

// shardQueryMix drives a randomized endpoint mix through both servers
// in lockstep. Every query class a shard-shaped backend can see is
// covered: concrete and wildcard support (valid or 501 depending on
// ignoreDist, identical on both), unknown labels, distances past
// MaxDist and past MaxPackedDist, frequent listings with limits and
// maxdist filters, stats with live cache counters, and tdist (501 on
// both — aggregates have no per-tree item sets).
func shardQueryMix(t *testing.T, seed int64, labels []string, maxDist core.Dist, decoded, mapped *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	randLabel := func() string {
		if rng.Intn(8) == 0 {
			return fmt.Sprintf("unknown-%d", rng.Intn(4))
		}
		return labels[rng.Intn(len(labels))]
	}
	for i := 0; i < 250; i++ {
		switch rng.Intn(5) {
		case 0, 1: // support: concrete distances across and past the mined range
			q := url.Values{"l1": {randLabel()}, "l2": {randLabel()}}
			d := core.Dist(rng.Intn(int(maxDist) + 8))
			q.Set("dist", d.String())
			getLockstep(t, decoded, mapped, "/v1/support?"+q.Encode())
		case 2: // support: wildcard (both answer, or both 501)
			q := url.Values{"l1": {randLabel()}, "l2": {randLabel()}, "dist": {"*"}}
			getLockstep(t, decoded, mapped, "/v1/support?"+q.Encode())
		case 3: // frequent: minsup sweep with filters and limits
			q := url.Values{"minsup": {fmt.Sprint(1 + rng.Intn(6))}}
			if rng.Intn(2) == 0 {
				q.Set("maxdist", core.Dist(rng.Intn(int(maxDist)+2)).String())
			}
			if rng.Intn(2) == 0 {
				q.Set("limit", fmt.Sprint(1+rng.Intn(20)))
			}
			getLockstep(t, decoded, mapped, "/v1/frequent?"+q.Encode())
		case 4: // stats (cache counters included) and tdist (501 on both)
			getLockstep(t, decoded, mapped, "/v1/stats")
			getLockstep(t, decoded, mapped, "/v1/tdist?t1=a&t2=b")
		}
	}
}

// TestMappedDifferentialShard: packed-mode shard (MaxDist within
// MaxPackedDist) vs its v4 compaction.
func TestMappedDifferentialShard(t *testing.T) {
	trees, _ := diffForest(t, 41, 20)
	maxD := core.D(3)
	sh := core.NewSupportShard(core.ForestOptions{
		Options: core.Options{MaxDist: maxD, MinOccur: 1}, MinSup: 2,
	})
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	decoded, mapped := mappedPairFromShard(t, sh)
	shardQueryMix(t, 42, diffLabels(), maxD, decoded, mapped)
}

// TestMappedDifferentialShardGeneric: a shard mined past MaxPackedDist
// compacts into the string-keyed v4 section; its probes — including
// distances past 7 and past the shard's own MaxDist — must agree with
// the decoded generic shard everywhere.
func TestMappedDifferentialShardGeneric(t *testing.T) {
	trees := deepChainForest(t, 43, 14)
	maxD := core.MaxPackedDist + 8
	sh := core.NewSupportShard(core.ForestOptions{
		Options: core.Options{MaxDist: maxD, MinOccur: 1}, MinSup: 2,
	})
	deep := 0
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	for _, p := range sh.Finalize(1) {
		if p.Key.D > core.MaxPackedDist {
			deep++
		}
	}
	if deep == 0 {
		t.Fatal("fixture mined no items past MaxPackedDist; the generic section is untested")
	}
	decoded, mapped := mappedPairFromShard(t, sh)
	shardQueryMix(t, 44, diffLabels(), maxD, decoded, mapped)
}

// TestMappedDifferentialShardIgnoreDist: distance-insensitive mining
// keys every pair at DistWild; wildcard probes answer and concrete ones
// 501 — identically on both sides.
func TestMappedDifferentialShardIgnoreDist(t *testing.T) {
	trees, _ := diffForest(t, 45, 18)
	maxD := core.D(4)
	sh := core.NewSupportShard(core.ForestOptions{
		Options: core.Options{MaxDist: maxD, MinOccur: 1}, MinSup: 2, IgnoreDist: true,
	})
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	decoded, mapped := mappedPairFromShard(t, sh)
	shardQueryMix(t, 46, diffLabels(), maxD, decoded, mapped)
}

// TestMappedDifferentialIndex: a v1/v2 index vs its v4 compaction on
// the queries whose semantics survive compaction — concrete-distance
// support, frequent listings, stats. Wildcard support and tree distance
// need the per-tree item sets the aggregate no longer has, so on the
// mapped side they must answer clean 501s (asserted after the lockstep
// run: error handling differs in cache effects, so comparing stats
// afterwards would diverge).
func TestMappedDifferentialIndex(t *testing.T) {
	trees, names := diffForest(t, 47, 22)
	opts := core.Options{MaxDist: core.D(4), MinOccur: 1}
	ix, err := store.Build(trees, names, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := openBackend(t, ix)
	path := filepath.Join(t.TempDir(), "idx.v4")
	if err := store.CompactIndexV4(path, ix); err != nil {
		t.Fatal(err)
	}
	mb, err := OpenPath(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mb.Close() })
	cfg := Config{CacheEntries: 1 << 14} // evictions off: see mappedPairFromShard
	_, decoded := newTestServer(t, db, cfg)
	_, mapped := newTestServer(t, mb, cfg)

	labels := diffLabels()
	rng := rand.New(rand.NewSource(48))
	randLabel := func() string {
		if rng.Intn(8) == 0 {
			return fmt.Sprintf("unknown-%d", rng.Intn(4))
		}
		return labels[rng.Intn(len(labels))]
	}
	for i := 0; i < 250; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			q := url.Values{"l1": {randLabel()}, "l2": {randLabel()}}
			q.Set("dist", core.Dist(rng.Intn(int(opts.MaxDist)+6)).String())
			getLockstep(t, decoded, mapped, "/v1/support?"+q.Encode())
		case 2:
			q := url.Values{"minsup": {fmt.Sprint(1 + rng.Intn(5))}}
			if rng.Intn(2) == 0 {
				q.Set("limit", fmt.Sprint(1+rng.Intn(15)))
			}
			getLockstep(t, decoded, mapped, "/v1/frequent?"+q.Encode())
		case 3:
			getLockstep(t, decoded, mapped, "/v1/stats")
		}
	}

	// Outside the aggregate's semantics: the mapped side must 501, never
	// answer wrong numbers.
	if st, _ := get(t, mapped, "/v1/support?l1=a&l2=b&dist=*"); st != 501 {
		t.Fatalf("mapped wildcard support status = %d, want 501", st)
	}
	if st, _ := get(t, mapped, "/v1/tdist?t1="+url.QueryEscape(names[0])+"&t2="+url.QueryEscape(names[1])); st != 501 {
		t.Fatalf("mapped tdist status = %d, want 501", st)
	}
	// The decoded index still answers both.
	if st, _ := get(t, decoded, "/v1/tdist?t1="+url.QueryEscape(names[0])+"&t2="+url.QueryEscape(names[1])); st != 200 {
		t.Fatalf("decoded tdist status = %d, want 200", st)
	}
}
