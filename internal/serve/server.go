package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sync/atomic"
	"time"

	"treemine/internal/core"
	"treemine/internal/faults"
	"treemine/internal/guard"
)

// metrics is the process-wide expvar map the daemon exposes at
// /debug/vars: per-endpoint request and error counters plus cache
// hit/miss/bypass tallies. One map per process, shared by every Server.
var metrics = expvar.NewMap("cousinserve")

// Config tunes a Server.
type Config struct {
	// CacheEntries bounds the result cache (total entries across
	// shards). 0 selects the default (4096); negative disables caching.
	CacheEntries int
	// RequestTimeout is the per-request deadline. 0 selects the default
	// (5s); negative disables the deadline.
	RequestTimeout time.Duration
}

// Defaults for Config zero values.
const (
	DefaultCacheEntries   = 4096
	DefaultRequestTimeout = 5 * time.Second
)

// Server answers cousin-pair queries over HTTP+JSON from one loaded
// Backend. The backend is immutable and the cache is internally
// synchronized, so one Server handles any number of concurrent
// requests. Create with New, mount Handler on an http.Server, and stop
// with http.Server.Shutdown — the handlers hold no state that outlives
// a request, so a drained shutdown needs no cooperation from Server.
type Server struct {
	b        *Backend
	cache    *Cache
	timeout  time.Duration
	mux      *http.ServeMux
	inflight atomic.Int64
}

// New returns a Server over b. cfg selects cache size and per-request
// deadline; the zero Config selects the defaults.
func New(b *Backend, cfg Config) *Server {
	entries := cfg.CacheEntries
	if entries == 0 {
		entries = DefaultCacheEntries
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	s := &Server{
		b:       b,
		cache:   NewCache(entries), // nil when entries < 0: cache disabled
		timeout: timeout,
		mux:     http.NewServeMux(),
	}
	// Export the result-cache counters at /debug/vars. The map is
	// process-wide, so the newest Server wins the key — the daemon runs
	// exactly one.
	metrics.Set("cache", expvar.Func(func() any { return s.cache.Stats() }))
	s.mux.HandleFunc("/v1/support", s.endpoint("support", s.handleSupport))
	s.mux.HandleFunc("/v1/frequent", s.endpoint("frequent", s.handleFrequent))
	s.mux.HandleFunc("/v1/tdist", s.endpoint("tdist", s.handleTDist))
	s.mux.HandleFunc("/v1/stats", s.endpoint("stats", s.handleStats))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", s.handleRoot)
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats snapshots the result cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// InFlight returns the number of endpoint requests currently being
// handled — the gauge a graceful drain watches go to zero.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// supportResponse answers /v1/support. The pair echoes in canonical
// (sorted) order — the same order core.Key stores — so equal probes
// produce equal bodies regardless of parameter order.
type supportResponse struct {
	L1      string    `json:"l1"`
	L2      string    `json:"l2"`
	Dist    core.Dist `json:"dist"`
	Support int       `json:"support"`
	Trees   int       `json:"trees"`
}

// pairJSON is one frequent pair in a listing.
type pairJSON struct {
	L1      string    `json:"l1"`
	L2      string    `json:"l2"`
	Dist    core.Dist `json:"dist"`
	Support int       `json:"support"`
}

// frequentResponse answers /v1/frequent. Count is the number of
// matching pairs before the limit truncation.
type frequentResponse struct {
	MinSup  int        `json:"minsup"`
	MaxDist core.Dist  `json:"maxdist"`
	Trees   int        `json:"trees"`
	Count   int        `json:"count"`
	Pairs   []pairJSON `json:"pairs"`
}

// tdistResponse answers /v1/tdist: the requested variant's tree
// distance (Eq. 6) and the similarity score σ (Eq. 4).
type tdistResponse struct {
	T1      string  `json:"t1"`
	T2      string  `json:"t2"`
	Variant string  `json:"variant"`
	TDist   float64 `json:"tdist"`
	Sim     float64 `json:"sim"`
}

// marshal renders a response body: compact JSON plus a trailing
// newline. All differential and golden tests compare these bytes, so
// the encoding must stay deterministic (encoding/json is, for the
// struct types above).
func marshal(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// statusOf maps a handler error to its HTTP status.
func statusOf(err error) int {
	var qe *QueryError
	switch {
	case errors.As(err, &qe):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTree):
		return http.StatusNotFound
	case errors.Is(err, ErrUnsupported):
		return http.StatusNotImplemented
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(body)
}

// endpoint wraps a handler with the per-request runtime: the deadline
// context, the serve/handler and serve/handler/slow failpoints, panic
// containment via guard.Run, error→status mapping, and metrics. The
// response body is fully materialized before the first byte is written,
// so a failing handler can never emit a torn 200.
func (s *Server) endpoint(name string, fn func(ctx context.Context, vals url.Values) ([]byte, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metrics.Add(name+".requests", 1)
		if r.Method != http.MethodGet {
			metrics.Add(name+".errors", 1)
			body, _ := marshal(errorResponse{Error: "method not allowed (GET only)"})
			writeBody(w, http.StatusMethodNotAllowed, body)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		ctx := r.Context()
		if s.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.timeout)
			defer cancel()
		}
		var body []byte
		err := guard.Run(func() error {
			if err := faults.Hit(faults.ServeHandler); err != nil {
				return err
			}
			if faults.Hit(faults.ServeSlow) != nil {
				// A stuck handler: wait for the request deadline (or the
				// client giving up) instead of answering.
				<-ctx.Done()
				return ctx.Err()
			}
			var ferr error
			body, ferr = fn(ctx, r.URL.Query())
			return ferr
		})
		if err != nil {
			metrics.Add(name+".errors", 1)
			eb, _ := marshal(errorResponse{Error: err.Error()})
			writeBody(w, statusOf(err), eb)
			return
		}
		writeBody(w, http.StatusOK, body)
	}
}

// cacheGet consults the result cache, honoring the serve/cache
// failpoint (an armed hit bypasses the cache entirely — the "cache
// disabled" chaos path).
func (s *Server) cacheGet(key CacheKey, cacheable bool) ([]byte, bool) {
	if !cacheable || s.cache == nil || faults.Hit(faults.ServeCache) != nil {
		metrics.Add("cache.bypass", 1)
		return nil, false
	}
	body, ok := s.cache.Get(key)
	if ok {
		metrics.Add("cache.hits", 1)
	} else {
		metrics.Add("cache.misses", 1)
	}
	return body, ok
}

// cachePut stores a computed body, under the same bypass rules as
// cacheGet.
func (s *Server) cachePut(key CacheKey, cacheable bool, body []byte) {
	if !cacheable || s.cache == nil || faults.Hit(faults.ServeCache) != nil {
		return
	}
	s.cache.Put(key, body)
}

func (s *Server) handleSupport(ctx context.Context, vals url.Values) ([]byte, error) {
	q, err := ParseSupportQuery(vals)
	if err != nil {
		return nil, err
	}
	key, cacheable := s.b.supportCacheKey(q.L1, q.L2, q.D)
	if body, ok := s.cacheGet(key, cacheable); ok {
		return body, nil
	}
	n, err := s.b.Support(ctx, q.L1, q.L2, q.D)
	if err != nil {
		return nil, err
	}
	k := core.NewKey(q.L1, q.L2, q.D)
	body, err := marshal(supportResponse{
		L1:      k.A,
		L2:      k.B,
		Dist:    k.D,
		Support: n,
		Trees:   s.b.Trees(),
	})
	if err != nil {
		return nil, err
	}
	s.cachePut(key, cacheable, body)
	return body, nil
}

func (s *Server) handleFrequent(ctx context.Context, vals url.Values) ([]byte, error) {
	q, err := ParseFrequentQuery(vals)
	if err != nil {
		return nil, err
	}
	key := frequentCacheKey(q)
	if body, ok := s.cacheGet(key, true); ok {
		return body, nil
	}
	pairs, total, err := s.b.Frequent(ctx, q.MinSup, q.MaxDist, q.Limit)
	if err != nil {
		return nil, err
	}
	resp := frequentResponse{
		MinSup:  q.MinSup,
		MaxDist: q.MaxDist,
		Trees:   s.b.Trees(),
		Count:   total,
		Pairs:   make([]pairJSON, len(pairs)),
	}
	for i, p := range pairs {
		resp.Pairs[i] = pairJSON{L1: p.Key.A, L2: p.Key.B, Dist: p.Key.D, Support: p.Support}
	}
	body, err := marshal(resp)
	if err != nil {
		return nil, err
	}
	s.cachePut(key, true, body)
	return body, nil
}

func (s *Server) handleTDist(ctx context.Context, vals url.Values) ([]byte, error) {
	q, err := ParseTDistQuery(vals)
	if err != nil {
		return nil, err
	}
	key, cacheable := s.b.tdistCacheKey(q.T1, q.T2, q.Variant)
	if body, ok := s.cacheGet(key, cacheable); ok {
		return body, nil
	}
	td, sim, err := s.b.TDist(q.T1, q.T2, q.Variant)
	if err != nil {
		return nil, err
	}
	body, err := marshal(tdistResponse{
		T1:      q.T1,
		T2:      q.T2,
		Variant: q.Variant.String(),
		TDist:   td,
		Sim:     sim,
	})
	if err != nil {
		return nil, err
	}
	s.cachePut(key, cacheable, body)
	return body, nil
}

// statsResponse answers /v1/stats: the backend description plus a
// point-in-time snapshot of the result-cache counters. Stats responses
// are never cached, so the counters are always current.
type statsResponse struct {
	Stats
	Cache CacheStats `json:"cache"`
}

func (s *Server) handleStats(ctx context.Context, vals url.Values) ([]byte, error) {
	if err := checkParams(vals); err != nil {
		return nil, err
	}
	return marshal(statsResponse{Stats: s.b.Stats(), Cache: s.cache.Stats()})
}

// handleRoot lists the query endpoints at "/" and 404s everything else.
func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		body, _ := marshal(errorResponse{Error: "no such endpoint"})
		writeBody(w, http.StatusNotFound, body)
		return
	}
	body, _ := marshal(struct {
		Endpoints []string `json:"endpoints"`
	}{Endpoints: []string{
		"/v1/support?l1=A&l2=B[&dist=0.5|*]",
		"/v1/frequent[?minsup=2][&maxdist=1.5][&limit=100]",
		"/v1/tdist?t1=NAME&t2=NAME[&variant=label|dist|occ|distocc]",
		"/v1/stats",
		"/healthz",
		"/debug/vars",
		"/debug/pprof/",
	}})
	writeBody(w, http.StatusOK, body)
}
