package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"treemine/internal/core"
	"treemine/internal/newick"
	"treemine/internal/store"
	"treemine/internal/tree"
)

// fixtureForest is the 4-tree gymnosperm forest the CLI golden tests
// use; every deterministic serve test is pinned to it.
const fixtureForest = `
((Gnetum,Welwitschia),(Ephedra,Ginkgoales));
((Gnetum,Welwitschia),Ephedra,(Pinaceae,Ginkgoales));
(((Gnetum,Welwitschia),Ephedra),(Angiosperms,Cycadales));
((Gnetum,Welwitschia),(Ephedra,(Pinaceae,Conifers2)));
`

func fixtureTrees(t testing.TB) []*tree.Tree {
	t.Helper()
	trees, err := newick.ParseAll(strings.NewReader(fixtureForest))
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func fixtureOptions() core.Options {
	return core.Options{MaxDist: core.D(3), MinOccur: 1} // the paper's maxdist 1.5
}

// fixtureIndex builds the index every deterministic test serves.
func fixtureIndex(t testing.TB) *store.Index {
	t.Helper()
	ix, err := store.Build(fixtureTrees(t), nil, fixtureOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// openBackend round-trips the index through Save and Open, so every
// test exercises the load path the daemon uses.
func openBackend(t testing.TB, ix *store.Index) *Backend {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// fixtureShard mines the fixture forest into a v3 shard and round-trips
// it through SaveShard and Open.
func fixtureShard(t testing.TB, ignoreDist bool) *Backend {
	t.Helper()
	sh := core.NewSupportShard(core.ForestOptions{Options: fixtureOptions(), MinSup: 2, IgnoreDist: ignoreDist})
	for _, tr := range fixtureTrees(t) {
		sh.AddTree(tr)
	}
	var buf bytes.Buffer
	if err := store.SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	b, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// get fires one GET and returns status and body.
func get(t testing.TB, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func newTestServer(t testing.TB, b *Backend, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(b, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestOpenDetectsFormats(t *testing.T) {
	if b := openBackend(t, fixtureIndex(t)); b.Kind() != "index" {
		t.Errorf("index file loaded as %q", b.Kind())
	}
	if b := fixtureShard(t, false); b.Kind() != "shard" {
		t.Errorf("shard file loaded as %q", b.Kind())
	}
	if _, err := Open(strings.NewReader("not an index at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Open(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Open(strings.NewReader("TREEMINEIDX3 but torn")); err == nil {
		t.Error("torn shard accepted")
	}
}

// TestSupportCanonicalEcho: the pair echoes in canonical order, so the
// two parameter orders produce byte-identical bodies — and the second
// request is a cache hit on the first's packed IKey.
func TestSupportCanonicalEcho(t *testing.T) {
	s, ts := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{})
	st1, b1 := get(t, ts, "/v1/support?l1=Welwitschia&l2=Gnetum&dist=0")
	st2, b2 := get(t, ts, "/v1/support?l1=Gnetum&l2=Welwitschia&dist=0")
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d, %d", st1, st2)
	}
	if b1 != b2 {
		t.Errorf("parameter order changed the body:\n%s%s", b1, b2)
	}
	if hits := s.CacheStats().Hits; hits != 1 {
		t.Errorf("second probe should hit the cache once, got %d hits", hits)
	}
	if !strings.Contains(b1, `"support":4`) {
		t.Errorf("Gnetum/Welwitschia are siblings in all 4 trees, got %s", b1)
	}
}

// TestBackendReadOnly: queries — including ones naming labels the index
// never saw — must not grow the symbol table (the read-only invariant
// that makes lock-free concurrent serving sound).
func TestBackendReadOnly(t *testing.T) {
	b := openBackend(t, fixtureIndex(t))
	_, ts := newTestServer(t, b, Config{})
	before := b.syms.Len()
	for _, q := range []string{
		"/v1/support?l1=NotATaxon&l2=AlsoNot&dist=1",
		"/v1/support?l1=NotATaxon&l2=Gnetum",
		"/v1/tdist?t1=tree_1&t2=no_such_tree",
		"/v1/frequent?minsup=1",
	} {
		get(t, ts, q)
	}
	if after := b.syms.Len(); after != before {
		t.Errorf("symbol table grew from %d to %d during queries", before, after)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{})
	resp, err := ts.Client().Post(ts.URL+"/v1/support?l1=a&l2=b", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST got %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{})
	if st, body := get(t, ts, "/healthz"); st != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", st, body)
	}
	if st, body := get(t, ts, "/debug/vars"); st != http.StatusOK || !strings.Contains(body, "cousinserve") {
		t.Errorf("expvar endpoint: %d, body without cousinserve map", st)
	}
	if st, _ := get(t, ts, "/debug/pprof/"); st != http.StatusOK {
		t.Errorf("pprof index: %d", st)
	}
	if st, body := get(t, ts, "/"); st != http.StatusOK || !strings.Contains(body, "/v1/support") {
		t.Errorf("root endpoint listing: %d %q", st, body)
	}
	if st, _ := get(t, ts, "/nope"); st != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", st)
	}
}

// TestShardBackendCapabilities pins the shard-mode contract: support in
// the shard's own distance form and frequent listings work; the other
// distance form and tree distance report 501.
func TestShardBackendCapabilities(t *testing.T) {
	_, ts := newTestServer(t, fixtureShard(t, false), Config{})
	if st, body := get(t, ts, "/v1/support?l1=Gnetum&l2=Welwitschia&dist=0"); st != http.StatusOK || !strings.Contains(body, `"support":4`) {
		t.Errorf("concrete support on distance-keyed shard: %d %s", st, body)
	}
	if st, _ := get(t, ts, "/v1/support?l1=Gnetum&l2=Welwitschia"); st != http.StatusNotImplemented {
		t.Errorf("wildcard support on distance-keyed shard: %d, want 501", st)
	}
	if st, _ := get(t, ts, "/v1/tdist?t1=tree_1&t2=tree_2"); st != http.StatusNotImplemented {
		t.Errorf("tdist on shard: %d, want 501", st)
	}
	if st, _ := get(t, ts, "/v1/frequent?minsup=2"); st != http.StatusOK {
		t.Errorf("frequent on shard: %d", st)
	}
	// Distances past the shard's MaxDist were never mined, so the answer
	// is 0 — in particular past MaxPackedDist (e.g. 8 = 16 halves), where
	// a packed probe would overflow IKey's 4-bit distance field and could
	// surface a different pair's nonzero count.
	for _, d := range []string{"2", "7.5", "8", "32000"} {
		path := "/v1/support?l1=Gnetum&l2=Welwitschia&dist=" + d
		if st, body := get(t, ts, path); st != http.StatusOK || !strings.Contains(body, `"support":0`) {
			t.Errorf("support past shard maxdist %s: %d %s, want support 0", d, st, body)
		}
	}

	_, ts = newTestServer(t, fixtureShard(t, true), Config{})
	if st, _ := get(t, ts, "/v1/support?l1=Gnetum&l2=Welwitschia"); st != http.StatusOK {
		t.Errorf("wildcard support on ignoredist shard: %d", st)
	}
	if st, _ := get(t, ts, "/v1/support?l1=Gnetum&l2=Welwitschia&dist=0"); st != http.StatusNotImplemented {
		t.Errorf("concrete support on ignoredist shard: %d, want 501", st)
	}
}

// TestParseQueryValidation tables the parser's rejection paths; the
// fuzzer explores beyond them.
func TestParseQueryValidation(t *testing.T) {
	bad := []string{
		"l2=b&dist=0",              // missing l1
		"l1=a&dist=0",              // missing l2
		"l1=&l2=b",                 // empty label
		"l1=a&l2=b&dist=abc",       // unparsable distance
		"l1=a&l2=b&dist=-0.5",      // negative distance
		"l1=a&l2=b&dist=0.3",       // not a half multiple
		"l1=a&l2=b&dist=99999999",  // beyond maxQueryDist
		"l1=a&l2=b&nope=1",         // unknown parameter
		"l1=a&l1=b&l2=c",           // repeated parameter
		"l1=" + strings.Repeat("x", maxNameLen+1) + "&l2=b", // oversized label
	}
	for _, raw := range bad {
		if _, err := ParseSupportQuery(mustParseQuery(t, raw)); err == nil {
			t.Errorf("support query %q accepted", raw)
		}
	}
	badFreq := []string{
		"minsup=0", "minsup=-3", "minsup=2147483648999", "minsup=x",
		"limit=-1", "maxdist=nope", "bogus=1",
	}
	for _, raw := range badFreq {
		if _, err := ParseFrequentQuery(mustParseQuery(t, raw)); err == nil {
			t.Errorf("frequent query %q accepted", raw)
		}
	}
	badTD := []string{
		"t1=a", "t2=b", "t1=&t2=b", "t1=a&t2=b&variant=weird", "t1=a&t2=b&x=1",
	}
	for _, raw := range badTD {
		if _, err := ParseTDistQuery(mustParseQuery(t, raw)); err == nil {
			t.Errorf("tdist query %q accepted", raw)
		}
	}

	q, err := ParseFrequentQuery(mustParseQuery(t, ""))
	if err != nil || q.MinSup != 2 || !q.MaxDist.IsWild() || q.Limit != 0 {
		t.Errorf("frequent defaults: %+v, %v", q, err)
	}
	sq, err := ParseSupportQuery(mustParseQuery(t, "l1=a&l2=b"))
	if err != nil || !sq.D.IsWild() {
		t.Errorf("support default dist: %+v, %v", sq, err)
	}
}

func mustParseQuery(t *testing.T, raw string) url.Values {
	t.Helper()
	vals, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	return vals
}
