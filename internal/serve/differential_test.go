package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"treemine/internal/core"
	"treemine/internal/newick"
	"treemine/internal/store"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// The differential harness: the server may never disagree with the
// library. Randomized query mixes run against a live httptest server,
// and every response body is compared byte-for-byte with the answer
// computed by calling the library directly on the same loaded data —
// once on the cache-miss path and once on the cache-hit path.

// diffLabels mixes plain taxa with labels that stress parsing and
// escaping: unicode, quotes, spaces, commas, ampersands.
func diffLabels() []string {
	return append(treegen.Alphabet(10),
		"β-taxon", `qu"ote`, "sp ace", "comma,label", "amp&ers=and", "ünïcødé")
}

// diffForest builds a deterministic random forest over diffLabels.
func diffForest(t *testing.T, seed int64, n int) ([]*tree.Tree, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	labels := diffLabels()
	trees := make([]*tree.Tree, n)
	names := make([]string, n)
	for i := range trees {
		trees[i] = treegen.Uniform(rng, 3+rng.Intn(18), labels)
		names[i] = fmt.Sprintf("T%02d", i)
	}
	return trees, names
}

// expect marshals the library's answer through the same response struct
// the server uses, so a comparison failure isolates a semantic
// disagreement, not a formatting one.
func expect(t *testing.T, v any) string {
	t.Helper()
	body, err := marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// getTwice fires the same query twice — cache miss then (for cacheable
// queries) cache hit — and requires both bodies to match want exactly.
func getTwice(t *testing.T, ts *httptest.Server, path string, wantStatus int, want string) {
	t.Helper()
	for pass, label := range []string{"first (miss)", "second (hit)"} {
		st, body := get(t, ts, path)
		if st != wantStatus {
			t.Fatalf("%s: %s pass: status %d, want %d (body %s)", path, label, st, wantStatus, body)
		}
		if want != "" && body != want {
			t.Fatalf("%s: %s pass: server disagrees with library\n--- server ---\n%s--- library ---\n%s",
				path, label, body, want)
		}
		_ = pass
	}
}

func TestServerDifferentialIndex(t *testing.T) {
	trees, names := diffForest(t, 7, 24)
	opts := core.Options{MaxDist: core.D(4), MinOccur: 1}
	ix, err := store.Build(trees, names, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, openBackend(t, ix), Config{CacheEntries: 256})

	labels := diffLabels()
	sets := ix.ItemSets()
	rng := rand.New(rand.NewSource(99))
	randLabel := func() string {
		if rng.Intn(10) == 0 {
			return fmt.Sprintf("unknown-%d", rng.Intn(5)) // label the index never saw
		}
		return labels[rng.Intn(len(labels))]
	}
	dists := []core.Dist{0, 1, 2, 3, 4, 7, core.DistWild}

	for i := 0; i < 400; i++ {
		switch rng.Intn(4) {
		case 0: // pair support, exact and wildcard
			l1, l2, d := randLabel(), randLabel(), dists[rng.Intn(len(dists))]
			k := core.NewKey(l1, l2, d)
			want := expect(t, supportResponse{
				L1: k.A, L2: k.B, Dist: k.D,
				Support: ix.Support(l1, l2, d), // the library answer
				Trees:   ix.NumTrees(),
			})
			q := url.Values{"l1": {l1}, "l2": {l2}, "dist": {d.String()}}
			getTwice(t, ts, "/v1/support?"+q.Encode(), 200, want)

		case 1: // frequent listing with minsup/maxdist/limit filters
			minsup := 1 + rng.Intn(6)
			maxd := dists[rng.Intn(len(dists))]
			limit := rng.Intn(12) // 0 = unlimited
			lib := ix.Frequent(minsup)
			matched := []core.FrequentPair{}
			for _, p := range lib {
				if !maxd.IsWild() && !p.Key.D.IsWild() && p.Key.D > maxd {
					continue
				}
				matched = append(matched, p)
			}
			total := len(matched)
			if limit > 0 && len(matched) > limit {
				matched = matched[:limit]
			}
			resp := frequentResponse{
				MinSup: minsup, MaxDist: maxd, Trees: ix.NumTrees(),
				Count: total, Pairs: make([]pairJSON, len(matched)),
			}
			for j, p := range matched {
				resp.Pairs[j] = pairJSON{L1: p.Key.A, L2: p.Key.B, Dist: p.Key.D, Support: p.Support}
			}
			q := url.Values{
				"minsup":  {fmt.Sprint(minsup)},
				"maxdist": {maxd.String()},
			}
			if limit > 0 {
				q.Set("limit", fmt.Sprint(limit))
			}
			getTwice(t, ts, "/v1/frequent?"+q.Encode(), 200, expect(t, resp))

		case 2: // tree distance + similarity between named trees
			i1, i2 := rng.Intn(len(trees)), rng.Intn(len(trees))
			t1, t2 := names[i1], names[i2]
			variants := []struct {
				param string
				v     core.Variant
			}{
				{"label", core.VariantLabel}, {"dist", core.VariantDist},
				{"occ", core.VariantOccur}, {"distocc", core.VariantDistOccur},
			}
			vc := variants[rng.Intn(len(variants))]
			if rng.Intn(8) == 0 { // sometimes an unknown tree: 404
				q := url.Values{"t1": {t1}, "t2": {"no-such-tree"}, "variant": {vc.param}}
				getTwice(t, ts, "/v1/tdist?"+q.Encode(), 404, "")
				continue
			}
			want := expect(t, tdistResponse{
				T1: t1, T2: t2, Variant: vc.v.String(),
				TDist: core.TDistItems(sets[i1], sets[i2], vc.v), // the library answers
				Sim:   core.SimItems(sets[i1], sets[i2]),
			})
			q := url.Values{"t1": {t1}, "t2": {t2}, "variant": {vc.param}}
			getTwice(t, ts, "/v1/tdist?"+q.Encode(), 200, want)

		case 3: // index stats, computed independently from the index
			distinct := map[string]struct{}{}
			items := 0
			for _, e := range ix.Entries {
				items += len(e.Items)
				for k := range e.Items {
					distinct[k.A] = struct{}{}
					distinct[k.B] = struct{}{}
				}
			}
			// Stats answers aren't cached and stats requests don't touch
			// the cache, so the counter snapshot taken here is exactly what
			// both fetches must report.
			want := expect(t, statsResponse{
				Stats: Stats{
					Backend: "index", Trees: ix.NumTrees(), Labels: len(distinct),
					Pairs: len(ix.Frequent(1)), Items: items,
					MaxDist: opts.MaxDist, MinOccur: opts.MinOccur,
					// An index backend answers every query shape.
					SupportsTDist: true, SupportsConcreteDist: true, SupportsWildcard: true,
				},
				Cache: s.CacheStats(),
			})
			getTwice(t, ts, "/v1/stats", 200, want)
		}
	}
	if st := s.CacheStats(); st.Hits == 0 {
		t.Error("differential mix never hit the cache")
	}
}

// TestServerDifferentialShard: a shard-backed server must agree with
// the index built over the same forest wherever their semantics
// coincide (concrete-distance support at minoccur 1), and with the
// shard's own Finalize for frequent listings.
func TestServerDifferentialShard(t *testing.T) {
	trees, names := diffForest(t, 21, 20)
	opts := core.Options{MaxDist: core.D(3), MinOccur: 1}
	fopts := core.ForestOptions{Options: opts, MinSup: 2}

	sh := core.NewSupportShard(fopts)
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	var buf bytes.Buffer
	if err := store.SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	b, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, b, Config{CacheEntries: 256})

	ix, err := store.Build(trees, names, opts)
	if err != nil {
		t.Fatal(err)
	}

	labels := diffLabels()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		if rng.Intn(2) == 0 {
			l1, l2 := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
			d := core.Dist(rng.Intn(4))
			k := core.NewKey(l1, l2, d)
			want := expect(t, supportResponse{
				L1: k.A, L2: k.B, Dist: k.D,
				Support: ix.Support(l1, l2, d), // independent library path
				Trees:   len(trees),
			})
			q := url.Values{"l1": {l1}, "l2": {l2}, "dist": {d.String()}}
			getTwice(t, ts, "/v1/support?"+q.Encode(), 200, want)
		} else {
			minsup := 1 + rng.Intn(5)
			lib := sh.Finalize(minsup)
			resp := frequentResponse{
				MinSup: minsup, MaxDist: core.DistWild, Trees: len(trees),
				Count: len(lib), Pairs: make([]pairJSON, len(lib)),
			}
			for j, p := range lib {
				resp.Pairs[j] = pairJSON{L1: p.Key.A, L2: p.Key.B, Dist: p.Key.D, Support: p.Support}
			}
			q := url.Values{"minsup": {fmt.Sprint(minsup)}}
			getTwice(t, ts, "/v1/frequent?"+q.Encode(), 200, expect(t, resp))
		}
	}

	// Outside the shard's semantics: clean 501s, never wrong numbers.
	getTwice(t, ts, "/v1/support?l1=a&l2=b", 501, "")
	getTwice(t, ts, "/v1/tdist?t1=T00&t2=T01", 501, "")
}

// deepChainForest appends to a diffForest two-armed chain trees whose
// leaf pairs sit at cousin distances well past MaxPackedDist, so the
// forest is guaranteed to mine items a packed IKey cannot carry.
func deepChainForest(t *testing.T, seed int64, n int) []*tree.Tree {
	t.Helper()
	trees, _ := diffForest(t, seed, n)
	nest := func(label string, depth int) string {
		return strings.Repeat("(", depth) + label + strings.Repeat(")", depth)
	}
	labels := diffLabels()
	var src strings.Builder
	for i := 0; i < 4; i++ {
		l1, l2 := labels[i*2%len(labels)], labels[(i*2+1)%len(labels)]
		depth := 9 + i // cousin distance 8..11 = D(16)..D(22), all > MaxPackedDist
		fmt.Fprintf(&src, "(%s,%s);\n", nest(l1, depth), nest(l2, depth))
	}
	chains, err := newick.ParseAll(strings.NewReader(src.String()))
	if err != nil {
		t.Fatal(err)
	}
	return append(trees, chains...)
}

// TestServerDifferentialShardGeneric: a shard mined past MaxPackedDist
// runs in core's generic string-keyed mode, whose distances do not fit
// the packed IKey's 4-bit field (NewIKey(a,b,15) == NewIKey(a,b+1,
// DistWild)) — repacking such a shard used to silently merge counts of
// distinct pairs. Every concrete-distance probe, including distances
// past 7 and past the shard's own MaxDist, must match the index built
// over the same forest; frequent listings must match the shard's own
// Finalize.
func TestServerDifferentialShardGeneric(t *testing.T) {
	trees := deepChainForest(t, 63, 16)
	opts := core.Options{MaxDist: core.MaxPackedDist + 8, MinOccur: 1}
	fopts := core.ForestOptions{Options: opts, MinSup: 2}

	sh := core.NewSupportShard(fopts)
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	var buf bytes.Buffer
	if err := store.SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	b, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, b, Config{CacheEntries: 256})

	ix, err := store.Build(trees, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The region under test must actually exist in the mined data.
	deep := 0
	for _, p := range ix.Frequent(1) {
		if p.Key.D > core.MaxPackedDist {
			deep++
		}
	}
	if deep == 0 {
		t.Fatal("fixture mined no items past MaxPackedDist; the overflow region is untested")
	}

	labels := diffLabels()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		if rng.Intn(3) > 0 {
			l1, l2 := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
			// Bias toward the overflow region: distances past
			// MaxPackedDist, including past the shard's own MaxDist.
			d := core.Dist(rng.Intn(int(opts.MaxDist) + 6))
			if rng.Intn(2) == 0 {
				d += core.MaxPackedDist
			}
			k := core.NewKey(l1, l2, d)
			want := expect(t, supportResponse{
				L1: k.A, L2: k.B, Dist: k.D,
				Support: ix.Support(l1, l2, d), // independent library path
				Trees:   len(trees),
			})
			q := url.Values{"l1": {l1}, "l2": {l2}, "dist": {d.String()}}
			getTwice(t, ts, "/v1/support?"+q.Encode(), 200, want)
		} else {
			minsup := 1 + rng.Intn(4)
			lib := sh.Finalize(minsup)
			resp := frequentResponse{
				MinSup: minsup, MaxDist: core.DistWild, Trees: len(trees),
				Count: len(lib), Pairs: make([]pairJSON, len(lib)),
			}
			for j, p := range lib {
				resp.Pairs[j] = pairJSON{L1: p.Key.A, L2: p.Key.B, Dist: p.Key.D, Support: p.Support}
			}
			q := url.Values{"minsup": {fmt.Sprint(minsup)}}
			getTwice(t, ts, "/v1/frequent?"+q.Encode(), 200, expect(t, resp))
		}
	}
}

// TestServerDifferentialShardIgnoreDist: an IgnoreDist shard answers
// wildcard probes, and they must equal the index's wildcard support
// (trees containing the pair at any distance).
func TestServerDifferentialShardIgnoreDist(t *testing.T) {
	trees, names := diffForest(t, 42, 16)
	opts := core.Options{MaxDist: core.D(3), MinOccur: 1}
	fopts := core.ForestOptions{Options: opts, MinSup: 2, IgnoreDist: true}

	sh := core.NewSupportShard(fopts)
	for _, tr := range trees {
		sh.AddTree(tr)
	}
	var buf bytes.Buffer
	if err := store.SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	b, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, b, Config{CacheEntries: 64})

	ix, err := store.Build(trees, names, opts)
	if err != nil {
		t.Fatal(err)
	}
	labels := diffLabels()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 80; i++ {
		l1, l2 := labels[rng.Intn(len(labels))], labels[rng.Intn(len(labels))]
		k := core.NewKey(l1, l2, core.DistWild)
		want := expect(t, supportResponse{
			L1: k.A, L2: k.B, Dist: core.DistWild,
			Support: ix.Support(l1, l2, core.DistWild),
			Trees:   len(trees),
		})
		q := url.Values{"l1": {l1}, "l2": {l2}}
		getTwice(t, ts, "/v1/support?"+q.Encode(), 200, want)
	}
	getTwice(t, ts, "/v1/support?l1=a&l2=b&dist=0", 501, "")
}
