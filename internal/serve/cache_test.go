package serve

import (
	"fmt"
	"sync"
	"testing"
)

func ck(n uint64) CacheKey { return CacheKey{Kind: kindSupport, K1: n} }

func TestCacheBasics(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get(ck(1)); ok {
		t.Error("hit on empty cache")
	}
	c.Put(ck(1), []byte("one"))
	if body, ok := c.Get(ck(1)); !ok || string(body) != "one" {
		t.Errorf("got %q, %v", body, ok)
	}
	// Same K1, different kind: distinct entries.
	c.Put(CacheKey{Kind: kindTDist, K1: 1}, []byte("tdist"))
	if body, _ := c.Get(ck(1)); string(body) != "one" {
		t.Errorf("kind collision: %q", body)
	}
	// Re-put refreshes the body.
	c.Put(ck(1), []byte("uno"))
	if body, _ := c.Get(ck(1)); string(body) != "uno" {
		t.Errorf("refresh failed: %q", body)
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Entries != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheNilDisabled(t *testing.T) {
	var c *Cache
	if c := NewCache(0); c != nil {
		t.Error("capacity 0 should disable the cache")
	}
	if c := NewCache(-5); c != nil {
		t.Error("negative capacity should disable the cache")
	}
	c.Put(ck(1), []byte("x")) // must not panic
	if _, ok := c.Get(ck(1)); ok {
		t.Error("nil cache hit")
	}
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Error("nil cache has state")
	}
}

// TestCacheLRUEviction pins the per-shard LRU order: with every key
// forced onto one shard, the least recently used entry is the one that
// leaves.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(cacheShardCount * 2) // 2 entries per shard
	shard0 := func(seed uint64) CacheKey {
		// Probe keys until one lands on shard 0, so all test keys share
		// one shard and its capacity of 2.
		for k := seed; ; k++ {
			key := ck(k)
			if key.hash()%cacheShardCount == 0 {
				return key
			}
		}
	}
	a, b, cc := shard0(0), shard0(1000), shard0(2000)
	c.Put(a, []byte("a"))
	c.Put(b, []byte("b"))
	c.Get(a) // a is now more recent than b
	c.Put(cc, []byte("c"))
	if _, ok := c.Get(b); ok {
		t.Error("least recently used entry b survived eviction")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("recently used entry a was evicted")
	}
	if _, ok := c.Get(cc); !ok {
		t.Error("new entry c missing")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

// TestCacheBoundedUnderLoad: the entry count never exceeds the rounded
// capacity no matter how many distinct keys stream through.
func TestCacheBoundedUnderLoad(t *testing.T) {
	c := NewCache(32)
	for i := uint64(0); i < 10_000; i++ {
		c.Put(ck(i), []byte("v"))
	}
	if n, bound := c.Len(), ((32+cacheShardCount-1)/cacheShardCount)*cacheShardCount; n > bound {
		t.Errorf("cache holds %d entries, bound %d", n, bound)
	}
}

// TestCacheRefreshRace races Put's existing-key refresh path (which
// rewrites the stored body in place) against concurrent Gets of the
// same key. Under -race this pins the contract that Get captures the
// body inside the shard lock; the assertion catches a torn read either
// way.
func TestCacheRefreshRace(t *testing.T) {
	c := NewCache(16)
	k := ck(7)
	bodies := [][]byte{[]byte("alpha"), []byte("bravo")}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if g%2 == 0 {
					c.Put(k, bodies[i%2])
				} else if body, ok := c.Get(k); ok {
					if s := string(body); s != "alpha" && s != "bravo" {
						t.Errorf("torn body %q", s)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheConcurrentRace hammers one small cache from many goroutines
// with overlapping keys, so gets, puts, refreshes, and evictions race;
// run under -race this is the cache's memory-safety proof.
func TestCacheConcurrentRace(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := ck(uint64(i % 200))
				if body, ok := c.Get(k); ok {
					want := fmt.Sprintf("body-%d", i%200)
					if string(body) != want {
						t.Errorf("key %d holds %q, want %q", i%200, body, want)
						return
					}
				} else {
					c.Put(k, []byte(fmt.Sprintf("body-%d", i%200)))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("no lookups recorded")
	}
}
