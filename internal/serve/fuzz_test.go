package serve

import (
	"net/url"
	"testing"

	"treemine/internal/core"
)

// FuzzQueryParse throws arbitrary query strings at all three request
// parsers. A parser may reject, but it must never panic, and anything
// it accepts must satisfy the invariants the handlers and the cache
// keying rely on (bounded names, bounded distances, positive minsup, a
// known variant). Seeds live in testdata/fuzz/FuzzQueryParse.
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"l1=a&l2=b",
		"l1=a&l2=b&dist=0.5",
		"l1=%C3%BCn%C3%AF%C3%A7%C3%B8de&l2=qu%22ote&dist=*",
		"l1=a&l2=b&dist=1e308",
		"l1=&l2=b",
		"minsup=2&maxdist=1.5&limit=10",
		"minsup=-9999999999999999999",
		"minsup=0&limit=-1",
		"t1=T00&t2=T01&variant=distocc",
		"t1=a&t2=b&variant=weird",
		"l1=a;l2=b&dist=%",
		"l1=a&l1=b&l2=c",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}

		if q, err := ParseSupportQuery(vals); err == nil {
			if q.L1 == "" || q.L2 == "" || len(q.L1) > maxNameLen || len(q.L2) > maxNameLen {
				t.Errorf("support accepted unbounded labels: %+v from %q", q, raw)
			}
			if !q.D.IsWild() && (q.D < 0 || q.D > maxQueryDist) {
				t.Errorf("support accepted out-of-range dist %v from %q", q.D, raw)
			}
		}

		if q, err := ParseFrequentQuery(vals); err == nil {
			if q.MinSup < 1 {
				t.Errorf("frequent accepted minsup %d from %q", q.MinSup, raw)
			}
			if q.Limit < 0 || q.Limit > maxQueryLimit {
				t.Errorf("frequent accepted limit %d from %q", q.Limit, raw)
			}
			if !q.MaxDist.IsWild() && (q.MaxDist < 0 || q.MaxDist > maxQueryDist) {
				t.Errorf("frequent accepted maxdist %v from %q", q.MaxDist, raw)
			}
			// The cache key for any accepted query must be computable.
			_ = frequentCacheKey(q)
		}

		if q, err := ParseTDistQuery(vals); err == nil {
			if q.T1 == "" || q.T2 == "" || len(q.T1) > maxNameLen || len(q.T2) > maxNameLen {
				t.Errorf("tdist accepted unbounded names: %+v from %q", q, raw)
			}
			switch q.Variant {
			case core.VariantLabel, core.VariantDist, core.VariantOccur, core.VariantDistOccur:
			default:
				t.Errorf("tdist accepted unknown variant %v from %q", q.Variant, raw)
			}
		}
	})
}
