package serve

import (
	"fmt"
	"net/url"
	"strconv"

	"treemine/internal/core"
)

// Validation bounds. Labels and tree names beyond maxNameLen, distances
// beyond maxQueryDist, and limits beyond maxQueryLimit are rejected up
// front, so no request can make a handler walk data proportional to the
// attacker's input rather than the loaded index.
const (
	maxNameLen    = 1024
	maxQueryDist  = core.Dist(1 << 16)
	maxQueryLimit = 1 << 30
)

// QueryError is a request-validation failure; the server maps it to
// HTTP 400. Every error the parsers return is a QueryError.
type QueryError struct{ msg string }

func (e *QueryError) Error() string { return "bad query: " + e.msg }

func badQuery(format string, args ...any) error {
	return &QueryError{msg: fmt.Sprintf(format, args...)}
}

// SupportQuery is a validated /v1/support request: a label pair and a
// cousin distance (DistWild to count the pair at any distance).
type SupportQuery struct {
	L1, L2 string
	D      core.Dist
}

// FrequentQuery is a validated /v1/frequent request. MaxDist is
// DistWild when no distance filter was given; Limit 0 means unlimited.
type FrequentQuery struct {
	MinSup  int
	MaxDist core.Dist
	Limit   int
}

// TDistQuery is a validated /v1/tdist request: two tree names and the
// distance variant.
type TDistQuery struct {
	T1, T2  string
	Variant core.Variant
}

// checkParams rejects parameters outside the endpoint's vocabulary, so
// a typoed filter fails loudly instead of being silently ignored.
func checkParams(vals url.Values, allowed ...string) error {
	for key := range vals {
		found := false
		for _, a := range allowed {
			if key == a {
				found = true
				break
			}
		}
		if !found {
			return badQuery("unknown parameter %q", key)
		}
		if len(vals[key]) > 1 {
			return badQuery("parameter %q repeated", key)
		}
	}
	return nil
}

// parseName validates a required label or tree-name parameter.
func parseName(vals url.Values, key string) (string, error) {
	if !vals.Has(key) {
		return "", badQuery("missing required parameter %q", key)
	}
	v := vals.Get(key)
	if v == "" {
		return "", badQuery("parameter %q is empty", key)
	}
	if len(v) > maxNameLen {
		return "", badQuery("parameter %q exceeds %d bytes", key, maxNameLen)
	}
	return v, nil
}

// parseDist parses an optional distance parameter, defaulting to def
// when absent. Wildcards parse to DistWild; concrete distances must be
// non-negative multiples of 0.5 no larger than maxQueryDist.
func parseDist(vals url.Values, key string, def core.Dist) (core.Dist, error) {
	if !vals.Has(key) {
		return def, nil
	}
	d, err := core.ParseDist(vals.Get(key))
	if err != nil {
		return 0, badQuery("parameter %q: %v", key, err)
	}
	if d > maxQueryDist {
		return 0, badQuery("parameter %q: distance %s out of range", key, d)
	}
	return d, nil
}

// parseInt parses an optional integer parameter in [min, max],
// defaulting to def when absent.
func parseInt(vals url.Values, key string, def, min, max int) (int, error) {
	if !vals.Has(key) {
		return def, nil
	}
	n, err := strconv.Atoi(vals.Get(key))
	if err != nil {
		return 0, badQuery("parameter %q: %v", key, err)
	}
	if n < min || n > max {
		return 0, badQuery("parameter %q: %d out of range [%d, %d]", key, n, min, max)
	}
	return n, nil
}

// ParseSupportQuery validates /v1/support parameters: required labels
// l1 and l2, optional dist (default "*", the any-distance wildcard).
func ParseSupportQuery(vals url.Values) (SupportQuery, error) {
	var q SupportQuery
	if err := checkParams(vals, "l1", "l2", "dist"); err != nil {
		return q, err
	}
	var err error
	if q.L1, err = parseName(vals, "l1"); err != nil {
		return q, err
	}
	if q.L2, err = parseName(vals, "l2"); err != nil {
		return q, err
	}
	if q.D, err = parseDist(vals, "dist", core.DistWild); err != nil {
		return q, err
	}
	return q, nil
}

// ParseFrequentQuery validates /v1/frequent parameters: optional minsup
// (default 2, ≥ 1), optional maxdist filter (default none), optional
// limit (default 0 = all).
func ParseFrequentQuery(vals url.Values) (FrequentQuery, error) {
	var q FrequentQuery
	if err := checkParams(vals, "minsup", "maxdist", "limit"); err != nil {
		return q, err
	}
	var err error
	if q.MinSup, err = parseInt(vals, "minsup", 2, 1, maxQueryLimit); err != nil {
		return q, err
	}
	if q.MaxDist, err = parseDist(vals, "maxdist", core.DistWild); err != nil {
		return q, err
	}
	if q.Limit, err = parseInt(vals, "limit", 0, 0, maxQueryLimit); err != nil {
		return q, err
	}
	return q, nil
}

// ParseTDistQuery validates /v1/tdist parameters: required tree names
// t1 and t2, optional variant (default distocc, the paper's
// tdist_{occ,dist}).
func ParseTDistQuery(vals url.Values) (TDistQuery, error) {
	var q TDistQuery
	if err := checkParams(vals, "t1", "t2", "variant"); err != nil {
		return q, err
	}
	var err error
	if q.T1, err = parseName(vals, "t1"); err != nil {
		return q, err
	}
	if q.T2, err = parseName(vals, "t2"); err != nil {
		return q, err
	}
	switch v := vals.Get("variant"); v {
	case "", "distocc":
		q.Variant = core.VariantDistOccur
	case "label":
		q.Variant = core.VariantLabel
	case "dist":
		q.Variant = core.VariantDist
	case "occ":
		q.Variant = core.VariantOccur
	default:
		return q, badQuery("parameter %q: unknown variant %q (want label, dist, occ, or distocc)", "variant", v)
	}
	return q, nil
}
