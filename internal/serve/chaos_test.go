package serve

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treemine/internal/core"
	"treemine/internal/faults"
	"treemine/internal/store"
)

// The chaos suite: every injected failure must surface as a clean 5xx
// JSON error on the one request it hits, and must never corrupt the
// result cache or the loaded backend. `make chaos` runs these under
// -race alongside the mining-runtime fault tests.

const chaosQuery = "/v1/support?l1=Gnetum&l2=Welwitschia&dist=0"

// chaosServer builds a fresh server and registers a fault reset, so an
// armed failpoint can never leak into a later test.
func chaosServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	t.Cleanup(faults.Reset)
	return newTestServer(t, openBackend(t, fixtureIndex(t)), cfg)
}

// TestChaosFaultInjectedHandlerError: an error-mode handler failpoint
// turns exactly one request into a 500 whose body names the injection;
// the next identical request answers normally, and the failed request
// left nothing in the cache.
func TestChaosFaultInjectedHandlerError(t *testing.T) {
	s, ts := chaosServer(t, Config{CacheEntries: 64})

	faults.Enable(faults.ServeHandler, faults.Spec{Mode: faults.ModeError, Count: 1})
	st, body := get(t, ts, chaosQuery)
	if st != http.StatusInternalServerError {
		t.Fatalf("injected handler error: status %d (body %s), want 500", st, body)
	}
	if !strings.Contains(body, "injected failure") {
		t.Errorf("500 body does not name the injection: %s", body)
	}
	if n := s.CacheStats().Entries; n != 0 {
		t.Errorf("failed request cached %d entries", n)
	}

	// Failpoint exhausted: the same query now answers from the library.
	st, body = get(t, ts, chaosQuery)
	if st != http.StatusOK || !strings.Contains(body, `"support":4`) {
		t.Errorf("post-fault request: %d %s", st, body)
	}
	// And the recovery response is what got cached, not the failure.
	st2, body2 := get(t, ts, chaosQuery)
	if st2 != http.StatusOK || body2 != body {
		t.Errorf("cache poisoned by fault: %d %s vs %s", st2, body2, body)
	}
}

// TestChaosFaultInjectedHandlerPanic: a panicking handler is contained
// by the per-request guard — clean 500, server stays up, cache stays
// coherent.
func TestChaosFaultInjectedHandlerPanic(t *testing.T) {
	s, ts := chaosServer(t, Config{CacheEntries: 64})

	// Prime the cache before the crash.
	stPre, pre := get(t, ts, chaosQuery)
	if stPre != http.StatusOK {
		t.Fatalf("prime: %d", stPre)
	}

	faults.Enable(faults.ServeHandler, faults.Spec{Mode: faults.ModePanic, Count: 1})
	st, body := get(t, ts, chaosQuery)
	if st != http.StatusInternalServerError {
		t.Fatalf("injected panic: status %d (body %s), want 500", st, body)
	}
	if !strings.Contains(body, "panic") {
		t.Errorf("500 body does not report the contained panic: %s", body)
	}

	// The server survived and the pre-crash cache entry is intact.
	st, body = get(t, ts, chaosQuery)
	if st != http.StatusOK || body != pre {
		t.Errorf("after contained panic: %d %s, want cached %s", st, body, pre)
	}
	if s.CacheStats().Hits == 0 {
		t.Error("cache lost its pre-panic entry")
	}
}

// TestChaosFaultInjectedSlowDeadline: a stalled handler is bounded by
// the per-request deadline and answers 503, not a hung connection.
func TestChaosFaultInjectedSlowDeadline(t *testing.T) {
	_, ts := chaosServer(t, Config{CacheEntries: 64, RequestTimeout: 50 * time.Millisecond})

	faults.Enable(faults.ServeSlow, faults.Spec{Mode: faults.ModeError, Count: 1})
	start := time.Now()
	st, body := get(t, ts, chaosQuery)
	if st != http.StatusServiceUnavailable {
		t.Fatalf("stalled handler: status %d (body %s), want 503", st, body)
	}
	if !strings.Contains(body, "deadline") {
		t.Errorf("503 body does not report the deadline: %s", body)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("deadline did not bound the stall: %v", el)
	}

	if st, _ := get(t, ts, chaosQuery); st != http.StatusOK {
		t.Errorf("request after stall: %d", st)
	}
}

// TestChaosFaultInjectedCacheBypass: with the cache failpoint armed on
// every hit, responses bypass the cache entirely and stay byte-correct;
// disarming restores caching.
func TestChaosFaultInjectedCacheBypass(t *testing.T) {
	s, ts := chaosServer(t, Config{CacheEntries: 64})

	faults.Enable(faults.ServeCache, faults.Spec{Mode: faults.ModeError})
	_, first := get(t, ts, chaosQuery)
	_, second := get(t, ts, chaosQuery)
	if first != second || !strings.Contains(first, `"support":4`) {
		t.Errorf("bypassed responses diverge or are wrong:\n%s%s", first, second)
	}
	if st := s.CacheStats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("cache used while bypassed: %+v", st)
	}

	faults.Reset()
	_, third := get(t, ts, chaosQuery)
	_, fourth := get(t, ts, chaosQuery)
	if third != first || fourth != first {
		t.Error("cached responses differ from bypassed ones")
	}
	if st := s.CacheStats(); st.Entries == 0 || st.Hits == 0 {
		t.Errorf("cache still idle after disarm: %+v", st)
	}
}

// TestChaosFaultInjectedLoadError: an I/O failure during backend load
// fails Open with the injected sentinel — at the first read or deep
// into the file — and never yields a half-loaded backend; the same
// bytes load cleanly once disarmed.
func TestChaosFaultInjectedLoadError(t *testing.T) {
	t.Cleanup(faults.Reset)
	// A forest big enough that the serialized index spans many reads, so
	// the mid-load injection lands inside the decode, not past EOF.
	trees, names := diffForest(t, 17, 64)
	ix, err := store.Build(trees, names, core.Options{MaxDist: core.D(4), MinOccur: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	faults.Enable(faults.ServeLoad, faults.Spec{Mode: faults.ModeError})
	if b, err := Open(bytes.NewReader(raw)); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("load fault at read 0: backend %v, err %v", b, err)
	}

	// After the header read: the failure lands mid-decode. (The loader
	// drains the payload in one large ReadFull, so read 1 is the deepest
	// injection point the stream offers.)
	faults.Enable(faults.ServeLoad, faults.Spec{Mode: faults.ModeError, After: 1})
	if _, err := Open(bytes.NewReader(raw)); err == nil || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("mid-load fault not surfaced: err %v", err)
	}

	faults.Reset()
	b, err := Open(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("clean load after disarm: %v", err)
	}
	if b.Kind() != "index" || b.Trees() != ix.NumTrees() {
		t.Errorf("reloaded backend: kind %q, %d trees", b.Kind(), b.Trees())
	}
}
