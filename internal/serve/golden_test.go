package serve

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenResponses pins the exact wire format of every endpoint —
// status line plus body — over the fixture forest, including the error
// paths. Regenerate with
// `go test ./internal/serve -run Golden -update`.
func TestGoldenResponses(t *testing.T) {
	_, ixSrv := newTestServer(t, openBackend(t, fixtureIndex(t)), Config{})
	_, shSrv := newTestServer(t, fixtureShard(t, false), Config{})
	_, wildSrv := newTestServer(t, fixtureShard(t, true), Config{})

	cases := []struct {
		name string
		srv  string // "index" or "shard"
		path string
	}{
		{"root_listing", "index", "/"},
		{"support_exact", "index", "/v1/support?l1=Gnetum&l2=Welwitschia&dist=0"},
		{"support_halfdist", "index", "/v1/support?l1=Ephedra&l2=Gnetum&dist=0.5"},
		{"support_wild", "index", "/v1/support?l1=Ephedra&l2=Ginkgoales"},
		{"support_unknown_label", "index", "/v1/support?l1=Dinosaur&l2=Gnetum&dist=1"},
		{"frequent_default", "index", "/v1/frequent"},
		{"frequent_filtered", "index", "/v1/frequent?minsup=2&maxdist=1&limit=3"},
		{"tdist_default", "index", "/v1/tdist?t1=tree_1&t2=tree_2"},
		{"tdist_label", "index", "/v1/tdist?t1=tree_1&t2=tree_3&variant=label"},
		{"stats_index", "index", "/v1/stats"},
		{"err_bad_dist", "index", "/v1/support?l1=a&l2=b&dist=nope"},
		{"err_missing_l2", "index", "/v1/support?l1=a"},
		{"err_unknown_tree", "index", "/v1/tdist?t1=tree_1&t2=tyrannosaur"},
		{"err_unknown_param", "index", "/v1/frequent?minsup=2&bogus=1"},
		{"stats_shard", "shard", "/v1/stats"},
		{"stats_shard_wild", "shard_wild", "/v1/stats"},
		{"err_shard_tdist", "shard", "/v1/tdist?t1=tree_1&t2=tree_2"},
		{"err_shard_wild", "shard", "/v1/support?l1=Gnetum&l2=Welwitschia"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := ixSrv
			switch tc.srv {
			case "shard":
				ts = shSrv
			case "shard_wild":
				ts = wildSrv
			}
			st, body := get(t, ts, tc.path)
			got := fmt.Sprintf("HTTP %d\n%s", st, body)
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("response differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}
