package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/reconstruct"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestSearchWithUPGMASeed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	taxa := treegen.Alphabet(10)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, 300, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	names, d, err := reconstruct.PDistance(al)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := reconstruct.UPGMA(names, d) // binary tree over the taxa
	if err != nil {
		t.Fatal(err)
	}
	seedScore, err := Score(seed, al)
	if err != nil {
		t.Fatal(err)
	}
	trees, best, err := Search(rng, al, SearchConfig{
		Seeds: []*tree.Tree{seed}, Starts: 1, MaxTrees: 8, MaxRounds: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best > seedScore {
		t.Fatalf("seeded search best %d worse than the seed's own score %d", best, seedScore)
	}
	if len(trees) == 0 {
		t.Fatal("no trees returned")
	}
}

func TestSearchSeedSurvivesConfigRepair(t *testing.T) {
	// An all-zero config is repaired to defaults; the seed must survive.
	rng := rand.New(rand.NewSource(32))
	taxa := treegen.Alphabet(6)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	seed := treegen.Yule(rng, taxa)
	seedScore, err := Score(seed, al)
	if err != nil {
		t.Fatal(err)
	}
	_, best, err := Search(rng, al, SearchConfig{Seeds: []*tree.Tree{seed}})
	if err != nil {
		t.Fatal(err)
	}
	if best > seedScore {
		t.Fatalf("best %d worse than seed score %d after config repair", best, seedScore)
	}
}
