package parsimony

import (
	"treemine/internal/tree"
)

// Move descriptors let the search enumerate a tree's NNI/SPR
// neighborhood without materializing neighbor trees: the FitchEngine
// delta-scores a move in O(path × words) against its cached state, and
// only moves worth keeping (improvements and ties) are turned into real
// trees with ApplyNNI/ApplySPR. NNINeighbors and SPRNeighbors remain as
// materializing wrappers; for every tree,
// NNINeighbors(t)[i] == ApplyNNI(t, NNIMoves(t)[i]) and likewise for SPR.

// NNIMove is one nearest-neighbor interchange on a rooted binary tree:
// exchange Sib (the sibling of the internal node V) with Child (a child
// of V). After the move V's children are Sib and V's other child, and
// V's parent's children are V and Child.
type NNIMove struct {
	V, Sib, Child tree.NodeID
}

// NNIMoves enumerates the NNI neighborhood of a rooted binary tree, in
// the same order NNINeighbors materializes it: for every internal
// non-root node V under a binary parent, exchanging V's sibling with
// each of V's two children.
func NNIMoves(t *tree.Tree) []NNIMove {
	var out []NNIMove
	for _, v := range t.Nodes() {
		u := t.Parent(v)
		if u == tree.None || t.IsLeaf(v) {
			continue
		}
		// Binary trees: v has exactly one sibling.
		var sib tree.NodeID = tree.None
		for _, c := range t.Children(u) {
			if c != v {
				sib = c
			}
		}
		if sib == tree.None || t.NumChildren(u) != 2 {
			continue
		}
		kids := t.Children(v)
		if len(kids) != 2 {
			continue
		}
		out = append(out,
			NNIMove{V: v, Sib: sib, Child: kids[0]},
			NNIMove{V: v, Sib: sib, Child: kids[1]},
		)
	}
	return out
}

// ApplyNNI materializes the neighbor tree m describes. The input is
// never modified.
func ApplyNNI(t *tree.Tree, m NNIMove) *tree.Tree {
	return rewire(t, map[tree.NodeID]tree.NodeID{m.Sib: m.V, m.Child: t.Parent(m.V)})
}

// NNINeighbors returns the nearest-neighbor-interchange neighborhood of
// a rooted binary tree: for every internal edge (u, v) with v an internal
// child of u, the two topologies obtained by exchanging v's sibling with
// one of v's children. The input is never modified; each neighbor is a
// fresh tree.
func NNINeighbors(t *tree.Tree) []*tree.Tree {
	moves := NNIMoves(t)
	if len(moves) == 0 {
		return nil
	}
	out := make([]*tree.Tree, len(moves))
	for i, m := range moves {
		out[i] = ApplyNNI(t, m)
	}
	return out
}

// rewire rebuilds t with some nodes re-parented per moves (node → new
// parent). The caller must keep the structure a tree.
func rewire(t *tree.Tree, moves map[tree.NodeID]tree.NodeID) *tree.Tree {
	n := t.Size()
	parent := make([]tree.NodeID, n)
	for i := 0; i < n; i++ {
		parent[i] = t.Parent(tree.NodeID(i))
	}
	for child, np := range moves {
		parent[child] = np
	}
	kids := make([][]tree.NodeID, n)
	root := tree.None
	for i := 0; i < n; i++ {
		if parent[i] == tree.None {
			root = tree.NodeID(i)
		} else {
			kids[parent[i]] = append(kids[parent[i]], tree.NodeID(i))
		}
	}
	b := tree.NewBuilder()
	var emit func(old tree.NodeID, newParent tree.NodeID)
	emit = func(old, newParent tree.NodeID) {
		var id tree.NodeID
		if l, ok := t.Label(old); ok {
			if newParent == tree.None {
				id = b.Root(l)
			} else {
				id = b.Child(newParent, l)
			}
		} else {
			if newParent == tree.None {
				id = b.RootUnlabeled()
			} else {
				id = b.ChildUnlabeled(newParent)
			}
		}
		for _, k := range kids[old] {
			emit(k, id)
		}
	}
	emit(root, tree.None)
	return b.MustBuild()
}

// SPRMove is one subtree-prune-and-regraft on a rooted binary tree: the
// subtree at Prune is detached (its former parent is suppressed, the
// sibling takes that place) and regrafted onto the edge above Target via
// a fresh binary node.
type SPRMove struct {
	Prune, Target tree.NodeID
}

// SPRMoves enumerates the SPR neighborhood of a rooted binary tree, in
// the same order SPRNeighbors materializes it: every non-root subtree
// against every regraft edge outside it that does not recreate the
// original topology trivially.
func SPRMoves(t *tree.Tree) []SPRMove {
	var out []SPRMove
	if t.Size() < 4 {
		return nil
	}
	for _, prune := range t.Nodes() {
		parent := t.Parent(prune)
		if parent == tree.None {
			continue // cannot prune the root
		}
		grand := t.Parent(parent)
		if grand == tree.None && t.NumChildren(parent) != 2 {
			continue // suppressing a non-binary root is a different move
		}
		var sibling tree.NodeID = tree.None
		for _, c := range t.Children(parent) {
			if c != prune {
				sibling = c
			}
		}
		if sibling == tree.None || t.NumChildren(parent) != 2 {
			continue
		}
		inSub := markSubtree(t, prune)
		for _, target := range t.Nodes() {
			tp := t.Parent(target)
			if tp == tree.None || inSub[target] || target == parent {
				continue
			}
			// Skip the no-op positions: the edge above the sibling when
			// parent is kept (re-creates the original), and edges
			// touching parent.
			if tp == parent || (target == sibling && tp == parent) {
				continue
			}
			out = append(out, SPRMove{Prune: prune, Target: target})
		}
	}
	return out
}

// ApplySPR materializes the neighbor tree m describes, or nil if the
// surgery would leave the tree malformed (defensive; cannot happen for
// moves from SPRMoves). The input is never modified.
func ApplySPR(t *tree.Tree, m SPRMove) *tree.Tree {
	parent := t.Parent(m.Prune)
	if parent == tree.None {
		return nil
	}
	var sibling tree.NodeID = tree.None
	for _, c := range t.Children(parent) {
		if c != m.Prune {
			sibling = c
		}
	}
	if sibling == tree.None {
		return nil
	}
	return sprApply(t, m.Prune, parent, sibling, m.Target)
}

// SPRNeighbors returns the subtree-prune-and-regraft neighborhood of a
// rooted binary tree: every subtree is detached (its former parent is
// suppressed to keep the tree binary) and regrafted onto every edge not
// inside it (a new binary node subdivides the target edge). SPR strictly
// contains NNI and escapes local optima NNI cannot; parsimony and
// likelihood searches use it via their configs. The input tree is never
// modified.
func SPRNeighbors(t *tree.Tree) []*tree.Tree {
	var out []*tree.Tree
	for _, m := range SPRMoves(t) {
		if nb := ApplySPR(t, m); nb != nil {
			out = append(out, nb)
		}
	}
	return out
}
