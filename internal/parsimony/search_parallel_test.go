package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// searchFixture builds a noisy alignment whose search has plenty of tied
// topologies, to stress the deterministic merge.
func searchFixture(t *testing.T, seed int64, nTaxa, sites int, mut float64) *seqsim.Alignment {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	taxa := treegen.Alphabet(nTaxa)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, sites, mut)
	if err != nil {
		t.Fatal(err)
	}
	return al
}

func runSearch(t *testing.T, al *seqsim.Alignment, cfg SearchConfig, seed int64) ([]string, []string, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	trees, best, err := Search(rng, al, cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon := make([]string, len(trees))
	reps := make([]string, len(trees))
	for i, tr := range trees {
		canon[i] = tr.Canonical()
		reps[i] = tr.String()
	}
	return canon, reps, best
}

// TestSearchWorkerCountInvariance is the parallel-search determinism
// gate: a fixed seed returns the same (trees, best) — including the
// exact tree representatives, not just topologies — at worker counts
// 1, 2, and 8. Run under -race by the Makefile race target.
func TestSearchWorkerCountInvariance(t *testing.T) {
	al := searchFixture(t, 11, 10, 40, 0.15)
	base := SearchConfig{Starts: 8, MaxTrees: 24, MaxRounds: 60}
	refCanon, refReps, refBest := runSearch(t, al, withWorkers(base, 1), 5)
	if len(refCanon) == 0 {
		t.Fatal("reference search returned no trees")
	}
	for _, w := range []int{2, 8} {
		canon, reps, best := runSearch(t, al, withWorkers(base, w), 5)
		if best != refBest {
			t.Fatalf("workers=%d: best %d != %d", w, best, refBest)
		}
		if len(canon) != len(refCanon) {
			t.Fatalf("workers=%d: %d trees != %d", w, len(canon), len(refCanon))
		}
		for i := range canon {
			if canon[i] != refCanon[i] {
				t.Fatalf("workers=%d: topology %d differs", w, i)
			}
			if reps[i] != refReps[i] {
				t.Fatalf("workers=%d: representative %d differs:\n%s\nvs\n%s", w, i, reps[i], refReps[i])
			}
		}
	}
}

// TestSearchWorkerCountInvarianceSPR repeats the gate with the much
// wider SPR neighborhood, which also exercises the batch-parallel
// neighbor scoring.
func TestSearchWorkerCountInvarianceSPR(t *testing.T) {
	al := searchFixture(t, 13, 8, 30, 0.2)
	base := SearchConfig{Starts: 4, MaxTrees: 16, MaxRounds: 20, UseSPR: true}
	refCanon, refReps, refBest := runSearch(t, al, withWorkers(base, 1), 9)
	for _, w := range []int{2, 8} {
		canon, reps, best := runSearch(t, al, withWorkers(base, w), 9)
		if best != refBest || len(canon) != len(refCanon) {
			t.Fatalf("workers=%d: (%d trees, best %d) != (%d trees, best %d)",
				w, len(canon), best, len(refCanon), refBest)
		}
		for i := range canon {
			if canon[i] != refCanon[i] || reps[i] != refReps[i] {
				t.Fatalf("workers=%d: tree %d differs", w, i)
			}
		}
	}
}

func withWorkers(cfg SearchConfig, w int) SearchConfig {
	cfg.Workers = w
	return cfg
}

// TestSearchTiedSetStableAcrossRuns is the regression for the old
// map-insertion-order slack cap, which could drop equally-best
// topologies nondeterministically: the returned set must be identical
// across repeated runs, even when far more tied topologies exist than
// MaxTrees admits.
func TestSearchTiedSetStableAcrossRuns(t *testing.T) {
	// Few sites, heavy noise: the plateau dwarfs the MaxTrees cap.
	al := searchFixture(t, 17, 10, 12, 0.25)
	cfg := SearchConfig{Starts: 10, MaxTrees: 8, MaxRounds: 40}
	refCanon, refReps, refBest := runSearch(t, al, cfg, 21)
	for run := 0; run < 5; run++ {
		canon, reps, best := runSearch(t, al, cfg, 21)
		if best != refBest {
			t.Fatalf("run %d: best %d != %d", run, best, refBest)
		}
		if len(canon) != len(refCanon) {
			t.Fatalf("run %d: %d trees != %d", run, len(canon), len(refCanon))
		}
		for i := range canon {
			if canon[i] != refCanon[i] || reps[i] != refReps[i] {
				t.Fatalf("run %d: tree %d differs", run, i)
			}
		}
	}
}

// TestSearchEngineMatchesNaiveBest cross-checks the engine-driven search
// against the naive scorer: every returned tree scores exactly best
// under the oracle.
func TestSearchEngineMatchesNaiveBest(t *testing.T) {
	al := searchFixture(t, 23, 9, 60, 0.12)
	rng := rand.New(rand.NewSource(3))
	trees, best, err := Search(rng, al, SearchConfig{Starts: 6, MaxTrees: 16, MaxRounds: 50, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	for i, tr := range trees {
		s, err := Score(tr, al)
		if err != nil {
			t.Fatal(err)
		}
		if s != best {
			t.Fatalf("tree %d scores %d under the oracle, tied set claims %d", i, s, best)
		}
	}
}

// TestTiedSetDeterministicEviction checks the collection structure
// directly: the kept keys are the canonically smallest ever offered,
// whatever the offer order.
func TestTiedSetDeterministicEviction(t *testing.T) {
	mk := func(label string) *tree.Tree {
		b := tree.NewBuilder()
		b.Root(label)
		return b.MustBuild()
	}
	labels := []string{"d", "b", "f", "a", "c", "e"}
	perms := [][]int{{0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {3, 0, 5, 1, 4, 2}}
	var want []string
	for _, p := range perms {
		s := newTiedSet(3)
		for _, i := range p {
			s.offer(mk(labels[i]))
		}
		got := s.sortedKeys()
		if want == nil {
			want = got
			if len(want) != 3 {
				t.Fatalf("kept %d keys, want 3", len(want))
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("permutation kept %d keys, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("permutation kept %v, want %v", got, want)
			}
		}
	}
}
