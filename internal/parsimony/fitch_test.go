package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/treegen"
)

// TestBaseMaskTable pins the shared nucleotide table (satellite of the
// historical bug where lowercase bases and IUPAC ambiguity codes all
// collapsed to "fully unknown"): plain bases map to single bits in
// either case, ambiguity codes to their documented subsets, gaps and
// unknowns to the full set.
func TestBaseMaskTable(t *testing.T) {
	const (
		A = seqsim.StateA
		C = seqsim.StateC
		G = seqsim.StateG
		T = seqsim.StateT
		N = seqsim.StateAny
	)
	cases := []struct {
		bases string
		want  uint8
	}{
		{"Aa", A},
		{"Cc", C},
		{"Gg", G},
		{"Tt", T},
		{"Uu", T}, // uracil reads as thymine
		{"Rr", A | G},
		{"Yy", C | T},
		{"Ss", C | G},
		{"Ww", A | T},
		{"Kk", G | T},
		{"Mm", A | C},
		{"Bb", C | G | T},
		{"Dd", A | G | T},
		{"Hh", A | C | T},
		{"Vv", A | C | G},
		{"NnXx", N},
		{"-?.", N},
		{"Zz*7 ", N}, // anything unrecognized stays fully ambiguous
	}
	for _, tc := range cases {
		for i := 0; i < len(tc.bases); i++ {
			b := tc.bases[i]
			if got := baseMask(b); got != tc.want {
				t.Errorf("baseMask(%q) = %04b, want %04b", string(b), got, tc.want)
			}
			if got := seqsim.StateSet(b); got != tc.want {
				t.Errorf("StateSet(%q) = %04b, want %04b", string(b), got, tc.want)
			}
		}
	}
}

// TestBaseMaskAmbiguityScores checks the masks do real Fitch work: R vs
// A is free (they share the A bit), R vs C costs one.
func TestBaseMaskAmbiguityScores(t *testing.T) {
	free := aln([]string{"a", "b"}, "R", "A")
	tr := parse(t, "(a,b);")
	if got, err := Score(tr, free); err != nil || got != 0 {
		t.Fatalf("Score(R vs A) = %d, %v; want 0", got, err)
	}
	costly := aln([]string{"a", "b"}, "R", "C")
	if got, err := Score(tr, costly); err != nil || got != 1 {
		t.Fatalf("Score(R vs C) = %d, %v; want 1", got, err)
	}
	lower := aln([]string{"a", "b"}, "a", "g")
	if got, err := Score(tr, lower); err != nil || got != 1 {
		t.Fatalf("Score(a vs g lowercase) = %d, %v; want 1", got, err)
	}
}

// TestPackStatesBoundary checks the word packing at and around the
// 16-sites-per-word boundary, including the ambiguous padding.
func TestPackStatesBoundary(t *testing.T) {
	for _, sites := range []int{1, 15, 16, 17, 32, 33} {
		seq := make([]byte, sites)
		for i := range seq {
			seq[i] = "ACGT"[i%4]
		}
		v := seqsim.PackStates(seq)
		wantWords := (sites + 15) / 16
		if len(v) != wantWords {
			t.Fatalf("sites=%d: %d words, want %d", sites, len(v), wantWords)
		}
		for i, b := range seq {
			got := uint8(v[i/16] >> uint((i%16)*4) & 0xF)
			if got != seqsim.StateSet(b) {
				t.Fatalf("sites=%d site %d: packed %04b, want %04b", sites, i, got, seqsim.StateSet(b))
			}
		}
		// Padding nibbles are fully ambiguous.
		for i := sites; i < wantWords*16; i++ {
			got := uint8(v[i/16] >> uint((i%16)*4) & 0xF)
			if got != seqsim.StateAny {
				t.Fatalf("sites=%d pad %d: %04b, want %04b", sites, i, got, seqsim.StateAny)
			}
		}
	}
}

// TestFitchScoreZeroAlloc is the steady-state allocation gate: once the
// engine's scratch has grown to the tree size, re-scoring allocates
// nothing.
func TestFitchScoreZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	taxa := treegen.Alphabet(16)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, 500, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewFitchEngine(al)
	if err != nil {
		t.Fatal(err)
	}
	tr := treegen.Yule(rng, taxa)
	if _, err := eng.Score(tr); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.Score(tr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FitchEngine.Score allocates %v/op, want 0", allocs)
	}
	// Delta rescoring is allocation-free too.
	moves := NNIMoves(tr)
	i := 0
	allocs = testing.AllocsPerRun(200, func() {
		eng.ScoreNNI(moves[i%len(moves)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("ScoreNNI allocates %v/op, want 0", allocs)
	}
}

// TestFitchEngineEmptyAlignmentAndTinyTrees covers the degenerate ends.
func TestFitchEngineEmptyAlignmentAndTinyTrees(t *testing.T) {
	al := aln([]string{"a", "b"}, "", "")
	eng, err := NewFitchEngine(al)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := eng.Score(parse(t, "(a,b);")); err != nil || got != 0 {
		t.Fatalf("zero-site score = %d, %v; want 0", got, err)
	}
	single := aln([]string{"a"}, "ACGT")
	eng, err = NewFitchEngine(single)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := eng.Score(parse(t, "a;")); err != nil || got != 0 {
		t.Fatalf("leaf-only score = %d, %v; want 0", got, err)
	}
}
