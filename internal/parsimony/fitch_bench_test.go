package parsimony

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func benchFixture(b *testing.B, nTaxa, sites int) (*seqsim.Alignment, *tree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(nTaxa)*10007 + int64(sites)))
	taxa := treegen.Alphabet(nTaxa)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, sites, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	return al, treegen.Yule(rng, taxa)
}

// BenchmarkFitch compares the three scoring paths on one full tree:
// naive per-site byte masks (the pre-engine implementation, kept as the
// differential oracle), the packed bit-parallel engine, and incremental
// delta rescoring of one NNI move against the engine's cached state
// (what the search actually pays per neighbor).
func BenchmarkFitch(b *testing.B) {
	for _, nTaxa := range []int{16, 32, 64} {
		for _, sites := range []int{500, 2000} {
			al, tr := benchFixture(b, nTaxa, sites)
			name := fmt.Sprintf("taxa=%d/sites=%d", nTaxa, sites)

			b.Run(name+"/naive", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Score(tr, al); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/packed", func(b *testing.B) {
				eng, err := NewFitchEngine(al)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Score(tr); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Score(tr); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/incremental", func(b *testing.B) {
				eng, err := NewFitchEngine(al)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Score(tr); err != nil {
					b.Fatal(err)
				}
				moves := NNIMoves(tr)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.ScoreNNI(moves[i%len(moves)])
				}
			})
		}
	}
}

// BenchmarkParsimonySearch compares serial and parallel multi-start
// search (identical output by construction; wall-clock scales with
// GOMAXPROCS on multi-core machines).
func BenchmarkParsimonySearch(b *testing.B) {
	al, _ := benchFixture(b, 16, 300)
	cfg := SearchConfig{Starts: 8, MaxTrees: 16, MaxRounds: 60}
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Workers = workers
			rng := rand.New(rand.NewSource(42))
			if _, _, err := Search(rng, al, c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, runtime.GOMAXPROCS(0))
	})
}
