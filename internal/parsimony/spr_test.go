package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func evolveFixture(rng *rand.Rand, model *tree.Tree) (*seqsim.Alignment, error) {
	return seqsim.Evolve(rng, model, 120, 0.12)
}

func TestSPRNeighborsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		src := treegen.Yule(rng, treegen.Alphabet(rng.Intn(6)+4))
		want := src.LeafLabels()
		nbs := SPRNeighbors(src)
		if len(nbs) == 0 {
			t.Fatalf("trial %d: empty SPR neighborhood for %d-leaf tree", trial, len(want))
		}
		for _, nb := range nbs {
			if nb.Size() != src.Size() {
				t.Fatalf("size %d != %d", nb.Size(), src.Size())
			}
			got := nb.LeafLabels()
			if len(got) != len(want) {
				t.Fatalf("taxa changed: %v vs %v", got, want)
			}
			for _, n := range nb.Nodes() {
				if !nb.IsLeaf(n) && nb.NumChildren(n) != 2 {
					t.Fatalf("non-binary SPR result: node %d has %d children", n, nb.NumChildren(n))
				}
			}
		}
	}
}

func TestSPRSupersetOfNNITopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := treegen.Yule(rng, treegen.Alphabet(6))
	nni := map[string]bool{}
	for _, nb := range NNINeighbors(src) {
		nni[nb.Canonical()] = true
	}
	spr := map[string]bool{}
	for _, nb := range SPRNeighbors(src) {
		spr[nb.Canonical()] = true
	}
	if len(spr) < len(nni) {
		t.Fatalf("SPR reached %d topologies, NNI %d", len(spr), len(nni))
	}
	// SPR must reach something NNI cannot on 6 leaves.
	extra := 0
	for c := range spr {
		if !nni[c] {
			extra++
		}
	}
	if extra == 0 {
		t.Fatal("SPR added no topologies beyond NNI")
	}
}

func TestSPRTinyTrees(t *testing.T) {
	// Fewer than 4 nodes: no move possible.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "a")
	b.Child(r, "b")
	if nbs := SPRNeighbors(b.MustBuild()); nbs != nil {
		t.Fatalf("3-node SPR = %d neighbors, want none", len(nbs))
	}
}

func TestSearchWithSPRAtLeastAsGood(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	taxa := treegen.Alphabet(8)
	model := treegen.Yule(rng, taxa)
	al, err := evolveFixture(rng, model)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(useSPR bool) int {
		r2 := rand.New(rand.NewSource(7))
		_, best, err := Search(r2, al, SearchConfig{
			Starts: 4, MaxTrees: 8, MaxRounds: 40, UseSPR: useSPR,
		})
		if err != nil {
			t.Fatal(err)
		}
		return best
	}
	nniBest := mk(false)
	sprBest := mk(true)
	if sprBest > nniBest {
		t.Fatalf("SPR best %d worse than NNI best %d (same seeds)", sprBest, nniBest)
	}
}
