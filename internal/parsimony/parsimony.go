// Package parsimony implements maximum-parsimony phylogeny inference:
// Fitch's small-parsimony scoring [Fitch 1971] and a hill-climbing search
// over tree space using nearest-neighbor interchange (NNI) moves. It is
// the reproduction's substitute for PHYLIP's dnapars: the paper obtained
// its sets of equally parsimonious trees from PHYLIP; this package
// obtains them from the same principle, keeping every distinct topology
// tied at the best parsimony score the search finds.
//
// Two scorers coexist: the naive per-site Score below (the differential
// oracle) and the bit-parallel FitchEngine (fitch.go) that the search,
// plateau walk, and pipeline run on.
package parsimony

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"treemine/internal/faults"
	"treemine/internal/guard"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// Errors reported by the scorer.
var (
	// ErrNotBinary is returned when a tree has an internal node without
	// exactly two children; Fitch scoring here requires binary trees.
	ErrNotBinary = errors.New("parsimony: tree is not binary")
	// ErrMissingSequence is returned when a leaf label has no sequence
	// in the alignment.
	ErrMissingSequence = errors.New("parsimony: leaf taxon missing from alignment")
)

// baseMask maps a nucleotide code to its Fitch state-set bits: the four
// bases to single bits, IUPAC ambiguity codes to their subsets, gaps and
// unknown bytes to the fully ambiguous set. Case-insensitive. The packed
// encoder uses the same table (seqsim.StateSet), so the naive and
// bit-parallel scorers read every byte identically.
func baseMask(b byte) uint8 {
	return seqsim.StateSet(b)
}

// Score returns the Fitch parsimony score of the binary tree t under the
// alignment: the minimum total number of substitutions over all internal
// state assignments, summed over sites. This is the naive per-site
// reference implementation; FitchEngine.Score computes the same value
// bit-parallel and allocation-free.
func Score(t *tree.Tree, a *seqsim.Alignment) (int, error) {
	sites := a.Len()
	masks := make([][]uint8, t.Size())
	total := 0
	var err error
	t.PostOrder(func(n tree.NodeID) {
		if err != nil {
			return
		}
		if t.IsLeaf(n) {
			l, ok := t.Label(n)
			if !ok {
				err = fmt.Errorf("%w (unlabeled leaf %d)", ErrMissingSequence, n)
				return
			}
			seq, ok := a.Seqs[l]
			if !ok {
				err = fmt.Errorf("%w (%q)", ErrMissingSequence, l)
				return
			}
			if len(seq) != sites {
				err = fmt.Errorf("parsimony: sequence for %q has %d sites, want %d", l, len(seq), sites)
				return
			}
			m := make([]uint8, sites)
			for i, b := range seq {
				m[i] = baseMask(b)
			}
			masks[n] = m
			return
		}
		kids := t.Children(n)
		if len(kids) != 2 {
			err = fmt.Errorf("%w (node %d has %d children)", ErrNotBinary, n, len(kids))
			return
		}
		l, r := masks[kids[0]], masks[kids[1]]
		m := make([]uint8, sites)
		for i := 0; i < sites; i++ {
			inter := l[i] & r[i]
			if inter != 0 {
				m[i] = inter
			} else {
				m[i] = l[i] | r[i]
				total++
			}
		}
		masks[n] = m
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// SearchConfig tunes the equally-parsimonious-tree search.
type SearchConfig struct {
	Starts    int // random starting trees (default 12)
	MaxTrees  int // cap on the returned tied set (default 64)
	MaxRounds int // cap on NNI improvement rounds per start (default 200)
	// Seeds are additional starting trees searched before the random
	// starts — inject a Neighbor-Joining or UPGMA tree here to warm-start
	// the climb (internal/reconstruct builds them). Seeds must be binary
	// trees over exactly the alignment's taxa.
	Seeds []*tree.Tree
	// UseSPR widens each climb step from the NNI neighborhood to the
	// much larger SPR neighborhood: slower per round, but escapes local
	// optima NNI cannot.
	UseSPR bool
	// Workers bounds the goroutines that climb starts in parallel (and
	// batch-score SPR neighborhoods when capacity is spare). Zero or
	// negative selects GOMAXPROCS. For a fixed seed the result is
	// bit-identical at every worker count: starting trees are drawn from
	// the rng before any climbing, each climb is deterministic given its
	// start, and the tied sets merge in start order.
	Workers int
}

// DefaultSearchConfig returns sensible defaults for the paper-scale
// workloads (16–32 taxa).
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{Starts: 12, MaxTrees: 64, MaxRounds: 200}
}

// tiedSet collects distinct topologies tied at the current best score of
// one climb. It is deterministic under any offer order: it keeps the cap
// canonically-smallest keys ever offered (evicting the largest when
// over), and the stored representative is the first tree offered for its
// key — both properties independent of when duplicates or evictees
// arrive, which is what makes the parallel search's merge reproducible.
type tiedSet struct {
	cap   int
	trees map[string]*tree.Tree
}

func newTiedSet(cap int) *tiedSet {
	return &tiedSet{cap: cap, trees: make(map[string]*tree.Tree)}
}

func (s *tiedSet) reset() {
	for k := range s.trees {
		delete(s.trees, k)
	}
}

func (s *tiedSet) offer(t *tree.Tree) {
	k := t.Canonical()
	if _, ok := s.trees[k]; ok {
		return
	}
	s.trees[k] = t
	if len(s.trees) > s.cap {
		largest := ""
		for key := range s.trees {
			if key > largest {
				largest = key
			}
		}
		delete(s.trees, largest)
	}
}

func (s *tiedSet) sortedKeys() []string {
	keys := make([]string, 0, len(s.trees))
	for k := range s.trees {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// climbResult is one start's deterministic outcome.
type climbResult struct {
	best int
	keys []string // sorted canonical keys of the tied set at best
	tied map[string]*tree.Tree
	err  error
}

// Search looks for maximum-parsimony trees for the alignment: it
// hill-climbs with NNI (or SPR) moves from cfg.Starts random Yule
// starting topologies plus any seeds, delta-scoring each neighborhood on
// a bit-parallel FitchEngine, and returns every distinct topology tied at
// the best score encountered anywhere during the search (the "equally
// parsimonious trees" of the paper's §5.2), sorted by canonical form,
// capped at cfg.MaxTrees. The best score is returned alongside. Climbs
// run on up to cfg.Workers goroutines; the output is bit-identical for a
// fixed seed at every worker count.
func Search(rng *rand.Rand, a *seqsim.Alignment, cfg SearchConfig) ([]*tree.Tree, int, error) {
	return SearchCtx(context.Background(), rng, a, cfg)
}

// SearchCtx is Search under a context: every climb checks ctx between
// improvement rounds (the bounded unit of search work), so cancellation
// surfaces as ctx.Err() within one neighborhood evaluation per worker. A
// panic inside a climb — or inside a batch-scoring helper — is contained
// into an error naming the start it was climbing, and the remaining
// climbs drain cleanly. For a fixed seed an uncancelled SearchCtx is
// bit-identical to Search at every worker count.
func SearchCtx(ctx context.Context, rng *rand.Rand, a *seqsim.Alignment, cfg SearchConfig) ([]*tree.Tree, int, error) {
	if cfg.Starts <= 0 || cfg.MaxTrees <= 0 || cfg.MaxRounds <= 0 {
		seeds, useSPR, workers := cfg.Seeds, cfg.UseSPR, cfg.Workers
		cfg = DefaultSearchConfig()
		cfg.Seeds, cfg.UseSPR, cfg.Workers = seeds, useSPR, workers
	}
	if a.NumTaxa() < 2 {
		return nil, 0, fmt.Errorf("parsimony: need at least 2 taxa, have %d", a.NumTaxa())
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	base, err := NewFitchEngine(a)
	if err != nil {
		return nil, 0, err
	}

	// All randomness is consumed up front so the climbs are rng-free and
	// may run in any order on any number of workers.
	starts := make([]*tree.Tree, 0, cfg.Starts+len(cfg.Seeds))
	starts = append(starts, cfg.Seeds...)
	for s := 0; s < cfg.Starts; s++ {
		starts = append(starts, treegen.Yule(rng, a.Taxa))
	}

	results := make([]climbResult, len(starts))
	tokens := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		tokens <- struct{}{}
	}
	var wg sync.WaitGroup
	for i := range starts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-tokens
			defer func() { tokens <- struct{}{} }()
			// Contain a panicking climb at the pool boundary: the worker
			// records the error instead of killing the process, and the
			// token still returns so sibling climbs drain.
			err := guard.Run(func() error {
				c := &climber{ctx: ctx, eng: base.fork(), cfg: cfg, tokens: tokens}
				results[i] = c.climb(starts[i])
				return nil
			})
			if err != nil {
				results[i] = climbResult{err: fmt.Errorf("parsimony: climb from start %d: %w", i, err)}
			}
		}(i)
	}
	wg.Wait()

	// Deterministic merge in start order; a contained panic or injected
	// fault is preferred over the bare cancellations sibling climbs
	// reported while draining.
	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = r.err
	}
	if err := guard.First(errs); err != nil {
		return nil, 0, err
	}
	best := -1
	for _, r := range results {
		if best < 0 || r.best < best {
			best = r.best
		}
	}
	merged := map[string]*tree.Tree{}
	for _, r := range results {
		if r.best != best {
			continue
		}
		for _, k := range r.keys {
			if _, ok := merged[k]; !ok {
				merged[k] = r.tied[k]
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*tree.Tree, 0, len(keys))
	for _, k := range keys {
		if len(out) == cfg.MaxTrees {
			break
		}
		out = append(out, merged[k])
	}
	return out, best, nil
}

// climber runs one start's hill-climb on its own engine.
type climber struct {
	ctx    context.Context
	eng    *FitchEngine
	cfg    SearchConfig
	tokens chan struct{}

	cur   *tree.Tree
	score int
	tied  *tiedSet

	helpers []*FitchEngine // batch-scoring engines, reused across rounds
}

func (c *climber) climb(start *tree.Tree) climbResult {
	score, err := c.eng.Score(start)
	if err != nil {
		return climbResult{err: err}
	}
	c.cur, c.score = start, score
	c.tied = newTiedSet(c.cfg.MaxTrees * 4) // slack before the final cap
	c.tied.offer(start)

	for round := 0; round < c.cfg.MaxRounds; round++ {
		if err := c.ctx.Err(); err != nil {
			return climbResult{err: err}
		}
		if err := faults.Hit(faults.ClimbWorker); err != nil {
			return climbResult{err: err}
		}
		accepted, err := c.round()
		if err != nil {
			return climbResult{err: err}
		}
		if !accepted {
			break
		}
	}
	return climbResult{best: c.score, keys: c.tied.sortedKeys(), tied: c.tied.trees}
}

// round evaluates the current neighborhood in move order: ties at the
// climb's score are collected until the first improving move, which is
// accepted (greedy first-improvement) and fully rescored. Returns
// whether a move was accepted. The batch-parallel SPR path computes the
// same scores for the same move order, so its outcome is identical to
// the lazy serial walk.
func (c *climber) round() (bool, error) {
	if c.cfg.UseSPR {
		moves := SPRMoves(c.cur)
		scores, err := c.batchScores(moves)
		if err != nil {
			return false, err
		}
		if scores != nil {
			return c.decide(len(moves),
				func(i int) int { return scores[i] },
				func(i int) *tree.Tree { return ApplySPR(c.cur, moves[i]) })
		}
		return c.decide(len(moves),
			func(i int) int { return c.eng.ScoreSPR(moves[i]) },
			func(i int) *tree.Tree { return ApplySPR(c.cur, moves[i]) })
	}
	moves := NNIMoves(c.cur)
	return c.decide(len(moves),
		func(i int) int { return c.eng.ScoreNNI(moves[i]) },
		func(i int) *tree.Tree { return ApplyNNI(c.cur, moves[i]) })
}

// decide walks move scores in index order. scoreAt is only called for
// indices up to and including the first improvement, so the lazy path
// never scores moves the batch path would ignore.
func (c *climber) decide(n int, scoreAt func(int) int, apply func(int) *tree.Tree) (bool, error) {
	for i := 0; i < n; i++ {
		s := scoreAt(i)
		if s < c.score {
			nb := apply(i)
			if nb == nil {
				continue // defensive: malformed surgery, skip the move
			}
			c.tied.reset()
			c.tied.offer(nb)
			c.cur, c.score = nb, s
			// Full rescore on accept: refresh the engine's cached state.
			if _, err := c.eng.Score(nb); err != nil {
				return false, err
			}
			return true, nil
		}
		if s == c.score {
			if nb := apply(i); nb != nil {
				c.tied.offer(nb)
			}
		}
	}
	return false, nil
}

// batchScores evaluates an SPR neighborhood in parallel when spare
// worker tokens are available, or returns (nil, nil) to signal the lazy
// serial path. Scores land by move index, so the result is independent
// of the helper count. A panicking helper is contained into the returned
// error; the other helpers finish their chunks and every borrowed token
// is returned, so the search pool drains instead of deadlocking.
func (c *climber) batchScores(moves []SPRMove) ([]int, error) {
	const minChunk = 64 // below this, forking engines costs more than it saves
	maxHelpers := len(moves)/minChunk - 1
	if maxHelpers <= 0 {
		return nil, nil
	}
	helpers := 0
	for helpers < maxHelpers {
		select {
		case <-c.tokens:
			helpers++
		default:
			maxHelpers = helpers
		}
	}
	if helpers == 0 {
		return nil, nil
	}
	defer func() {
		for i := 0; i < helpers; i++ {
			c.tokens <- struct{}{}
		}
	}()
	for len(c.helpers) < helpers {
		c.helpers = append(c.helpers, c.eng.fork())
	}
	scores := make([]int, len(moves))
	errs := make([]error, helpers+1)
	chunk := (len(moves) + helpers) / (helpers + 1)
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		lo := (h + 1) * chunk
		hi := lo + chunk
		if hi > len(moves) {
			hi = len(moves)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(h int, eng *FitchEngine, lo, hi int) {
			defer wg.Done()
			errs[h+1] = guard.Run(func() error {
				if _, err := eng.Score(c.cur); err != nil {
					return nil // c.eng already scored this tree; cannot fail here
				}
				for i := lo; i < hi; i++ {
					scores[i] = eng.ScoreSPR(moves[i])
				}
				return nil
			})
		}(h, c.helpers[h], lo, hi)
	}
	hi := chunk
	if hi > len(moves) {
		hi = len(moves)
	}
	errs[0] = guard.Run(func() error {
		for i := 0; i < hi; i++ {
			scores[i] = c.eng.ScoreSPR(moves[i])
		}
		return nil
	})
	wg.Wait()
	if err := guard.First(errs); err != nil {
		return nil, fmt.Errorf("parsimony: batch SPR scoring: %w", err)
	}
	return scores, nil
}
