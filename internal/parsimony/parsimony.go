// Package parsimony implements maximum-parsimony phylogeny inference:
// Fitch's small-parsimony scoring [Fitch 1971] and a hill-climbing search
// over tree space using nearest-neighbor interchange (NNI) moves. It is
// the reproduction's substitute for PHYLIP's dnapars: the paper obtained
// its sets of equally parsimonious trees from PHYLIP; this package
// obtains them from the same principle, keeping every distinct topology
// tied at the best parsimony score the search finds.
package parsimony

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// Errors reported by the scorer.
var (
	// ErrNotBinary is returned when a tree has an internal node without
	// exactly two children; Fitch scoring here requires binary trees.
	ErrNotBinary = errors.New("parsimony: tree is not binary")
	// ErrMissingSequence is returned when a leaf label has no sequence
	// in the alignment.
	ErrMissingSequence = errors.New("parsimony: leaf taxon missing from alignment")
)

// baseMask maps a DNA base to its Fitch state-set bit.
func baseMask(b byte) uint8 {
	switch b {
	case 'A':
		return 1
	case 'C':
		return 2
	case 'G':
		return 4
	case 'T':
		return 8
	default:
		return 15 // unknown base: compatible with everything
	}
}

// Score returns the Fitch parsimony score of the binary tree t under the
// alignment: the minimum total number of substitutions over all internal
// state assignments, summed over sites.
func Score(t *tree.Tree, a *seqsim.Alignment) (int, error) {
	sites := a.Len()
	masks := make([][]uint8, t.Size())
	total := 0
	var err error
	t.PostOrder(func(n tree.NodeID) {
		if err != nil {
			return
		}
		if t.IsLeaf(n) {
			l, ok := t.Label(n)
			if !ok {
				err = fmt.Errorf("%w (unlabeled leaf %d)", ErrMissingSequence, n)
				return
			}
			seq, ok := a.Seqs[l]
			if !ok {
				err = fmt.Errorf("%w (%q)", ErrMissingSequence, l)
				return
			}
			if len(seq) != sites {
				err = fmt.Errorf("parsimony: sequence for %q has %d sites, want %d", l, len(seq), sites)
				return
			}
			m := make([]uint8, sites)
			for i, b := range seq {
				m[i] = baseMask(b)
			}
			masks[n] = m
			return
		}
		kids := t.Children(n)
		if len(kids) != 2 {
			err = fmt.Errorf("%w (node %d has %d children)", ErrNotBinary, n, len(kids))
			return
		}
		l, r := masks[kids[0]], masks[kids[1]]
		m := make([]uint8, sites)
		for i := 0; i < sites; i++ {
			inter := l[i] & r[i]
			if inter != 0 {
				m[i] = inter
			} else {
				m[i] = l[i] | r[i]
				total++
			}
		}
		masks[n] = m
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}

// SearchConfig tunes the equally-parsimonious-tree search.
type SearchConfig struct {
	Starts    int // random starting trees (default 12)
	MaxTrees  int // cap on the returned tied set (default 64)
	MaxRounds int // cap on NNI improvement rounds per start (default 200)
	// Seeds are additional starting trees searched before the random
	// starts — inject a Neighbor-Joining or UPGMA tree here to warm-start
	// the climb (internal/reconstruct builds them). Seeds must be binary
	// trees over exactly the alignment's taxa.
	Seeds []*tree.Tree
	// UseSPR widens each climb step from the NNI neighborhood to the
	// much larger SPR neighborhood: slower per round, but escapes local
	// optima NNI cannot.
	UseSPR bool
}

// DefaultSearchConfig returns sensible defaults for the paper-scale
// workloads (16–32 taxa).
func DefaultSearchConfig() SearchConfig {
	return SearchConfig{Starts: 12, MaxTrees: 64, MaxRounds: 200}
}

// Search looks for maximum-parsimony trees for the alignment: it
// hill-climbs with NNI moves from cfg.Starts random Yule starting
// topologies and returns every distinct topology tied at the best score
// encountered anywhere during the search (the "equally parsimonious
// trees" of the paper's §5.2), sorted by canonical form, capped at
// cfg.MaxTrees. The best score is returned alongside.
func Search(rng *rand.Rand, a *seqsim.Alignment, cfg SearchConfig) ([]*tree.Tree, int, error) {
	if cfg.Starts <= 0 || cfg.MaxTrees <= 0 || cfg.MaxRounds <= 0 {
		seeds := cfg.Seeds
		cfg = DefaultSearchConfig()
		cfg.Seeds = seeds
	}
	if a.NumTaxa() < 2 {
		return nil, 0, fmt.Errorf("parsimony: need at least 2 taxa, have %d", a.NumTaxa())
	}
	best := -1
	tied := map[string]*tree.Tree{}
	consider := func(t *tree.Tree, score int) {
		switch {
		case best < 0 || score < best:
			best = score
			tied = map[string]*tree.Tree{t.Canonical(): t}
		case score == best:
			if len(tied) < cfg.MaxTrees*4 { // slack before the final cap
				tied[t.Canonical()] = t
			}
		}
	}
	starts := make([]*tree.Tree, 0, cfg.Starts+len(cfg.Seeds))
	starts = append(starts, cfg.Seeds...)
	for s := 0; s < cfg.Starts; s++ {
		starts = append(starts, treegen.Yule(rng, a.Taxa))
	}
	for _, cur := range starts {
		score, err := Score(cur, a)
		if err != nil {
			return nil, 0, err
		}
		consider(cur, score)
		neighbors := NNINeighbors
		if cfg.UseSPR {
			neighbors = SPRNeighbors
		}
		for round := 0; round < cfg.MaxRounds; round++ {
			improved := false
			for _, nb := range neighbors(cur) {
				ns, err := Score(nb, a)
				if err != nil {
					return nil, 0, err
				}
				consider(nb, ns)
				if ns < score {
					cur, score = nb, ns
					improved = true
					break // greedy first-improvement
				}
			}
			if !improved {
				break
			}
		}
	}
	out := make([]*tree.Tree, 0, len(tied))
	keys := make([]string, 0, len(tied))
	for k := range tied {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if len(out) == cfg.MaxTrees {
			break
		}
		out = append(out, tied[k])
	}
	return out, best, nil
}

// NNINeighbors returns the nearest-neighbor-interchange neighborhood of
// a rooted binary tree: for every internal edge (u, v) with v an internal
// child of u, the two topologies obtained by exchanging v's sibling with
// one of v's children. The input is never modified; each neighbor is a
// fresh tree.
func NNINeighbors(t *tree.Tree) []*tree.Tree {
	var out []*tree.Tree
	for _, v := range t.Nodes() {
		u := t.Parent(v)
		if u == tree.None || t.IsLeaf(v) {
			continue
		}
		// Binary trees: v has exactly one sibling.
		var sib tree.NodeID = tree.None
		for _, c := range t.Children(u) {
			if c != v {
				sib = c
			}
		}
		if sib == tree.None || t.NumChildren(u) != 2 {
			continue
		}
		kids := t.Children(v)
		if len(kids) != 2 {
			continue
		}
		// Exchange sib with kids[0], then with kids[1].
		out = append(out,
			rewire(t, map[tree.NodeID]tree.NodeID{sib: v, kids[0]: u}),
			rewire(t, map[tree.NodeID]tree.NodeID{sib: v, kids[1]: u}),
		)
	}
	return out
}

// rewire rebuilds t with some nodes re-parented per moves (node → new
// parent). The caller must keep the structure a tree.
func rewire(t *tree.Tree, moves map[tree.NodeID]tree.NodeID) *tree.Tree {
	n := t.Size()
	parent := make([]tree.NodeID, n)
	for i := 0; i < n; i++ {
		parent[i] = t.Parent(tree.NodeID(i))
	}
	for child, np := range moves {
		parent[child] = np
	}
	kids := make([][]tree.NodeID, n)
	root := tree.None
	for i := 0; i < n; i++ {
		if parent[i] == tree.None {
			root = tree.NodeID(i)
		} else {
			kids[parent[i]] = append(kids[parent[i]], tree.NodeID(i))
		}
	}
	b := tree.NewBuilder()
	var emit func(old tree.NodeID, newParent tree.NodeID)
	emit = func(old, newParent tree.NodeID) {
		var id tree.NodeID
		if l, ok := t.Label(old); ok {
			if newParent == tree.None {
				id = b.Root(l)
			} else {
				id = b.Child(newParent, l)
			}
		} else {
			if newParent == tree.None {
				id = b.RootUnlabeled()
			} else {
				id = b.ChildUnlabeled(newParent)
			}
		}
		for _, k := range kids[old] {
			emit(k, id)
		}
	}
	emit(root, tree.None)
	return b.MustBuild()
}
