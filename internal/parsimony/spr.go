package parsimony

import (
	"treemine/internal/tree"
)

// The SPR neighborhood enumeration lives in moves.go (SPRMoves /
// ApplySPR / SPRNeighbors); this file keeps the tree surgery itself.

func markSubtree(t *tree.Tree, root tree.NodeID) []bool {
	in := make([]bool, t.Size())
	stack := []tree.NodeID{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		in[n] = true
		stack = append(stack, t.Children(n)...)
	}
	return in
}

// sprApply builds the tree where prune's subtree moves onto the edge
// (parent(target), target); `parent` is suppressed (sibling takes its
// place) and a fresh unlabeled node is inserted above target to hold the
// pruned subtree. Returns nil if the surgery would leave the tree
// malformed (defensive; cannot happen for valid inputs).
func sprApply(t *tree.Tree, prune, parent, sibling, target tree.NodeID) *tree.Tree {
	grand := t.Parent(parent)
	tp := t.Parent(target)

	// New parent assignments expressed over original node IDs, with one
	// extra virtual node (the regraft point).
	type assign struct{ node, parent tree.NodeID }
	virtual := tree.NodeID(t.Size()) // the new regraft node
	moves := []assign{
		{sibling, grand},   // sibling replaces parent (grand may be None: new root)
		{virtual, tp},      // regraft node subdivides (tp, target)
		{target, virtual},  // target hangs under the regraft node
		{prune, virtual},   // pruned subtree hangs under the regraft node
	}
	parentOf := make([]tree.NodeID, t.Size()+1)
	for i := 0; i < t.Size(); i++ {
		parentOf[i] = t.Parent(tree.NodeID(i))
	}
	parentOf[virtual] = tp
	skip := make([]bool, t.Size()+1)
	skip[parent] = true // suppressed
	for _, m := range moves {
		parentOf[m.node] = m.parent
	}

	kids := make([][]tree.NodeID, t.Size()+1)
	var root tree.NodeID = tree.None
	for i := 0; i <= t.Size(); i++ {
		n := tree.NodeID(i)
		if skip[n] {
			continue
		}
		p := parentOf[n]
		if p == tree.None {
			root = n
			continue
		}
		kids[p] = append(kids[p], n)
	}
	if root == tree.None {
		return nil
	}
	b := tree.NewBuilder()
	var emit func(old tree.NodeID, np tree.NodeID) bool
	count := 0
	emit = func(old, np tree.NodeID) bool {
		count++
		if count > t.Size()+1 {
			return false // cycle guard
		}
		var id tree.NodeID
		labeled := old != virtual && t.Labeled(old)
		switch {
		case labeled && np == tree.None:
			id = b.Root(t.MustLabel(old))
		case labeled:
			id = b.Child(np, t.MustLabel(old))
		case np == tree.None:
			id = b.RootUnlabeled()
		default:
			id = b.ChildUnlabeled(np)
		}
		for _, k := range kids[old] {
			if !emit(k, id) {
				return false
			}
		}
		return true
	}
	if !emit(root, tree.None) {
		return nil
	}
	nb := b.MustBuild()
	if nb.Size() != t.Size() {
		return nil
	}
	return nb
}
