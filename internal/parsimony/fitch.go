package parsimony

import (
	"fmt"
	"math/bits"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
)

// FitchEngine scores trees against one alignment with bit-parallel Fitch
// masks: the alignment is packed once into 4-bit state sets, 16 sites per
// uint64 word (seqsim.PackStates), and a whole tree is scored with
// word-wide AND/OR plus a popcount of the empty-intersection nibbles. All
// scratch is reused across calls, so steady-state Score is allocation
// free; Score also caches the per-node state vectors and union counts of
// the scored tree, which is what lets ScoreNNI/ScoreSPR delta-rescore a
// local move by recomputing only the path from the rewired edge to the
// root instead of the whole tree.
//
// An engine is not safe for concurrent use; the parallel search forks one
// per worker (the packed leaf vectors are immutable and shared).
type FitchEngine struct {
	sites int
	words int
	leaf  map[string][]uint64 // packed per-taxon vectors, shared across forks

	// Cached state for the most recently scored tree.
	cur   *tree.Tree
	vec   [][]uint64 // per-node state vectors; leaves alias this engine's leaf map
	cnt   []int      // per-node union (substitution) counts
	total int

	// Reusable scratch, grown monotonically with tree size.
	arena    []uint64      // backing storage for internal-node vectors
	post     []tree.NodeID // postorder buffer
	stack    []tree.NodeID
	dArena   []uint64      // delta-rescore vector arena
	dVec     [][]uint64    // per-node memo of recomputed vectors (SPR)
	affected []bool        // nodes whose vector changes under the move
	touched  []tree.NodeID // affected/memo entries to reset after a move
	capNodes int
}

// nibLSB has the lowest bit of every 4-bit nibble set.
const nibLSB = 0x1111111111111111

// NewFitchEngine packs the alignment for bit-parallel scoring. It fails
// on a missing or ragged sequence; every recognized and unrecognized
// base byte packs exactly as the naive scorer reads it (seqsim.StateSet).
func NewFitchEngine(a *seqsim.Alignment) (*FitchEngine, error) {
	p, err := a.Pack()
	if err != nil {
		return nil, fmt.Errorf("parsimony: %w", err)
	}
	return &FitchEngine{sites: p.Sites, words: p.Words, leaf: p.Vec}, nil
}

// fork returns an engine sharing the immutable packed alignment but with
// private scratch and cache, for use on another goroutine.
func (e *FitchEngine) fork() *FitchEngine {
	return &FitchEngine{sites: e.sites, words: e.words, leaf: e.leaf}
}

// Sites returns the number of alignment columns the engine scores.
func (e *FitchEngine) Sites() int { return e.sites }

// ensure grows the scratch buffers to hold trees of n nodes.
func (e *FitchEngine) ensure(n int) {
	if n <= e.capNodes {
		return
	}
	e.arena = make([]uint64, n*e.words)
	e.vec = make([][]uint64, n)
	e.cnt = make([]int, n)
	e.post = make([]tree.NodeID, 0, n)
	e.stack = make([]tree.NodeID, 0, n)
	// Delta arena: three chain-walk buffers for ScoreNNI plus one memo
	// slot per possible affected node (all n nodes and the SPR virtual).
	e.dArena = make([]uint64, (n+4)*e.words)
	e.dVec = make([][]uint64, n+1)
	e.affected = make([]bool, n+1)
	e.touched = make([]tree.NodeID, 0, n+1)
	e.capNodes = n
}

// combineWords writes the Fitch combination of child vectors l and r
// into dst and returns the number of sites whose state sets were
// disjoint (each costs one substitution). Padding nibbles are fully
// ambiguous by construction, so they never count.
func combineWords(dst, l, r []uint64) int {
	unions := 0
	for w := range dst {
		x := l[w] & r[w]
		u := l[w] | r[w]
		// occ: lowest nibble bit set exactly where the intersection
		// nibble is nonzero.
		t := x | x>>2
		t |= t >> 1
		occ := t & nibLSB
		empty := ^occ & nibLSB
		unions += bits.OnesCount64(empty)
		// Keep the intersection where nonzero, the union where empty:
		// empty*0xF expands the per-nibble flag to a full nibble mask.
		dst[w] = x | (u & (empty * 0xF))
	}
	return unions
}

func equalWords(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Score returns the Fitch parsimony score of the binary tree t —
// identical by construction to the naive Score(t, a) — and caches t's
// per-node state so ScoreNNI/ScoreSPR can delta-rescore moves on t.
// Steady-state re-scoring allocates nothing.
func (e *FitchEngine) Score(t *tree.Tree) (int, error) {
	n := t.Size()
	e.ensure(n)
	e.cur = nil // invalidated until scoring succeeds

	// Children-before-parent order without recursion: reversed preorder
	// (sibling order within the postorder is irrelevant to Fitch).
	e.post = e.post[:0]
	e.stack = append(e.stack[:0], t.Root())
	for len(e.stack) > 0 {
		nd := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		e.post = append(e.post, nd)
		e.stack = append(e.stack, t.Children(nd)...)
	}

	total := 0
	for i := len(e.post) - 1; i >= 0; i-- {
		nd := e.post[i]
		if t.IsLeaf(nd) {
			l, ok := t.Label(nd)
			if !ok {
				return 0, fmt.Errorf("%w (unlabeled leaf %d)", ErrMissingSequence, nd)
			}
			v, ok := e.leaf[l]
			if !ok {
				return 0, fmt.Errorf("%w (%q)", ErrMissingSequence, l)
			}
			e.vec[nd] = v
			e.cnt[nd] = 0
			continue
		}
		kids := t.Children(nd)
		if len(kids) != 2 {
			return 0, fmt.Errorf("%w (node %d has %d children)", ErrNotBinary, nd, len(kids))
		}
		dst := e.arena[int(nd)*e.words : (int(nd)+1)*e.words]
		c := combineWords(dst, e.vec[kids[0]], e.vec[kids[1]])
		e.vec[nd] = dst
		e.cnt[nd] = c
		total += c
	}
	e.cur, e.total = t, total
	return total, nil
}

// otherChild returns the child of p that is not c (binary trees).
func otherChild(t *tree.Tree, p, c tree.NodeID) tree.NodeID {
	kids := t.Children(p)
	if kids[0] == c {
		return kids[1]
	}
	return kids[0]
}

// ScoreNNI returns the Fitch score of the neighbor ApplyNNI(cur, m)
// where cur is the engine's cached tree, by recomputing only the
// vectors on the path from the exchanged edge to the root (with early
// exit as soon as a recomputed vector matches the cached one). The
// cache is left untouched; call Score on the materialized neighbor to
// accept the move. Panics if no tree is cached.
func (e *FitchEngine) ScoreNNI(m NNIMove) int {
	t := e.mustCur()
	u := t.Parent(m.V)
	other := otherChild(t, m.V, m.Child)

	w := e.words
	b0 := e.dArena[:w]
	b1 := e.dArena[w : 2*w]
	b2 := e.dArena[2*w : 3*w]

	// New vectors at V (children: other, Sib) and at u (children: V, Child).
	delta := combineWords(b0, e.vec[other], e.vec[m.Sib]) - e.cnt[m.V]
	delta += combineWords(b1, b0, e.vec[m.Child]) - e.cnt[u]

	// Propagate up while the vector keeps changing.
	node, newVec, spare := u, b1, b2
	for {
		if equalWords(newVec, e.vec[node]) {
			break // identical state set: nothing above can change
		}
		p := t.Parent(node)
		if p == tree.None {
			break
		}
		sib := otherChild(t, p, node)
		delta += combineWords(spare, newVec, e.vec[sib]) - e.cnt[p]
		newVec, spare = spare, newVec
		node = p
	}
	return e.total + delta
}

// sprState carries one ScoreSPR evaluation through the recursive
// recompute of the affected path vectors.
type sprState struct {
	t       *tree.Tree
	virtual tree.NodeID // index t.Size(): the fresh regraft node
	p       tree.NodeID // suppressed parent of Prune
	s       tree.NodeID // Prune's sibling, replaces p
	prune   tree.NodeID
	target  tree.NodeID
	dUsed   int // slots of dArena handed out
	delta   int
}

// ScoreSPR returns the Fitch score of the neighbor ApplySPR(cur, m)
// where cur is the engine's cached tree, recomputing only the nodes
// whose state can change: the fresh regraft node and the (new-topology)
// ancestors of the regraft edge and of the suppressed parent. The cache
// is left untouched. Panics if no tree is cached.
func (e *FitchEngine) ScoreSPR(m SPRMove) int {
	t := e.mustCur()
	st := sprState{
		t:       t,
		virtual: tree.NodeID(t.Size()),
		p:       t.Parent(m.Prune),
		prune:   m.Prune,
		target:  m.Target,
	}
	st.s = otherChild(t, st.p, m.Prune)
	g := t.Parent(st.p)
	tp := t.Parent(m.Target)

	// Mark every node whose vector can change: the virtual node plus the
	// new-topology ancestor chains above the regraft point and above the
	// suppressed parent. newParentUp skips p (S takes its place), so p
	// itself is never marked.
	e.mark(&st, st.virtual)
	for y := tp; y != tree.None; y = e.newParentUp(&st, y) {
		e.mark(&st, y)
	}
	for y := g; y != tree.None; y = e.newParentUp(&st, y) {
		e.mark(&st, y)
	}

	newRoot := t.Root()
	if g == tree.None {
		newRoot = st.s // p was the root; the sibling takes over
	}
	e.sprVec(&st, newRoot)

	// p's union count leaves the total with its node.
	score := e.total - e.cnt[st.p] + st.delta

	// Reset the marks and memos for the next move.
	for _, nd := range e.touched {
		e.affected[nd] = false
		e.dVec[nd] = nil
	}
	e.touched = e.touched[:0]
	return score
}

func (e *FitchEngine) mark(st *sprState, nd tree.NodeID) {
	if !e.affected[nd] {
		e.affected[nd] = true
		e.touched = append(e.touched, nd)
	}
}

// newParentUp follows parent pointers as they are after the move: the
// sibling's parent becomes the pruned subtree's grandparent (p is
// suppressed). No other node on an upward walk can have p as its old
// parent, so this never yields p.
func (e *FitchEngine) newParentUp(st *sprState, nd tree.NodeID) tree.NodeID {
	if nd == st.s {
		return st.t.Parent(st.p)
	}
	return st.t.Parent(nd)
}

// sprVec returns the post-move state vector of nd, recomputing affected
// nodes (memoized) and returning cached vectors for everything else.
// st.delta accumulates new-minus-old union counts along the way.
func (e *FitchEngine) sprVec(st *sprState, nd tree.NodeID) []uint64 {
	if nd != st.virtual && !e.affected[nd] {
		return e.vec[nd]
	}
	if v := e.dVec[nd]; v != nil {
		return v
	}
	var c0, c1 tree.NodeID
	if nd == st.virtual {
		c0, c1 = st.target, st.prune
	} else {
		kids := st.t.Children(nd)
		c0, c1 = kids[0], kids[1]
		// Post-move substitutions: the suppressed parent gives way to the
		// sibling; the regraft target now hangs under the virtual node.
		if c0 == st.p {
			c0 = st.s
		} else if c0 == st.target {
			c0 = st.virtual
		}
		if c1 == st.p {
			c1 = st.s
		} else if c1 == st.target {
			c1 = st.virtual
		}
	}
	l := e.sprVec(st, c0)
	r := e.sprVec(st, c1)
	w := e.words
	slot := e.dArena[(3+st.dUsed)*w : (4+st.dUsed)*w]
	st.dUsed++
	c := combineWords(slot, l, r)
	old := 0
	if nd != st.virtual {
		old = e.cnt[nd]
	}
	st.delta += c - old
	e.dVec[nd] = slot
	return slot
}

func (e *FitchEngine) mustCur() *tree.Tree {
	if e.cur == nil {
		panic("parsimony: FitchEngine move scoring without a cached tree; call Score first")
	}
	return e.cur
}
