package parsimony

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func aln(taxa []string, seqs ...string) *seqsim.Alignment {
	a := &seqsim.Alignment{Taxa: taxa, Seqs: map[string][]byte{}}
	for i, t := range taxa {
		a.Seqs[t] = []byte(seqs[i])
	}
	return a
}

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestScoreTextbookExample(t *testing.T) {
	// Single site, four taxa: ((a,b),(c,d)) with states A,A,G,G needs
	// one substitution; ((a,c),(b,d)) needs two.
	al := aln([]string{"a", "b", "c", "d"}, "A", "A", "G", "G")
	good := parse(t, "((a,b),(c,d));")
	bad := parse(t, "((a,c),(b,d));")
	if got, err := Score(good, al); err != nil || got != 1 {
		t.Fatalf("Score(good) = %d, %v; want 1", got, err)
	}
	if got, err := Score(bad, al); err != nil || got != 2 {
		t.Fatalf("Score(bad) = %d, %v; want 2", got, err)
	}
}

func TestScoreMultipleSites(t *testing.T) {
	// Sites score independently and sum.
	al := aln([]string{"a", "b", "c", "d"}, "AA", "AG", "GA", "GG")
	tr := parse(t, "((a,b),(c,d));")
	// Site 1: A A G G → 1. Site 2: A G A G → 2. Total 3.
	if got, err := Score(tr, al); err != nil || got != 3 {
		t.Fatalf("Score = %d, %v; want 3", got, err)
	}
}

func TestScoreIdenticalSequencesZero(t *testing.T) {
	al := aln([]string{"a", "b", "c"}, "ACGT", "ACGT", "ACGT")
	tr := parse(t, "((a,b),c);")
	if got, err := Score(tr, al); err != nil || got != 0 {
		t.Fatalf("Score = %d, %v; want 0", got, err)
	}
}

func TestScoreErrors(t *testing.T) {
	al := aln([]string{"a", "b", "c"}, "A", "A", "A")
	if _, err := Score(parse(t, "(a,b,c);"), al); !errors.Is(err, ErrNotBinary) {
		t.Errorf("non-binary err = %v", err)
	}
	if _, err := Score(parse(t, "((a,b),z);"), al); !errors.Is(err, ErrMissingSequence) {
		t.Errorf("missing taxon err = %v", err)
	}
	ragged := aln([]string{"a", "b", "c"}, "AC", "A", "AC")
	if _, err := Score(parse(t, "((a,b),c);"), ragged); err == nil {
		t.Error("ragged alignment accepted")
	}
}

func TestScoreUnknownBaseIsFree(t *testing.T) {
	// An unknown base is compatible with everything and never forces a
	// substitution.
	al := aln([]string{"a", "b"}, "N", "A")
	tr := parse(t, "(a,b);")
	if got, err := Score(tr, al); err != nil || got != 0 {
		t.Fatalf("Score = %d, %v; want 0", got, err)
	}
}

func TestNNINeighborsCountAndValidity(t *testing.T) {
	tr := parse(t, "(((a,b),c),(d,e));")
	nbs := NNINeighbors(tr)
	// Internal non-root nodes with internal parent arrangement: every
	// internal child edge yields 2 neighbors.
	if len(nbs)%2 != 0 || len(nbs) == 0 {
		t.Fatalf("NNI count = %d", len(nbs))
	}
	for _, nb := range nbs {
		if nb.Size() != tr.Size() {
			t.Fatalf("neighbor size %d != %d", nb.Size(), tr.Size())
		}
		if got := nb.LeafLabels(); len(got) != 5 {
			t.Fatalf("neighbor lost taxa: %v", got)
		}
		for _, n := range nb.Nodes() {
			if !nb.IsLeaf(n) && nb.NumChildren(n) != 2 {
				t.Fatalf("neighbor not binary")
			}
		}
	}
	// Neighbors differ from the original.
	diff := 0
	for _, nb := range nbs {
		if !tree.Isomorphic(tr, nb) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("all NNI neighbors isomorphic to the original")
	}
}

func TestNNIOnQuartetReachesAllTopologies(t *testing.T) {
	// The three unrooted quartet topologies are mutually reachable by
	// NNI; from ((a,b),(c,d)) the neighborhood must contain trees
	// scoring the other two groupings.
	tr := parse(t, "((a,b),(c,d));")
	seen := map[string]bool{tr.Canonical(): true}
	for _, nb := range NNINeighbors(tr) {
		seen[nb.Canonical()] = true
	}
	if len(seen) < 3 {
		t.Fatalf("NNI reached only %d distinct quartet topologies", len(seen))
	}
}

func TestSearchFindsPerfectTree(t *testing.T) {
	// Evolve an alignment with strong signal down a known model tree;
	// the search must find a tree whose score is no worse than the model
	// tree's own score.
	rng := rand.New(rand.NewSource(42))
	taxa := treegen.Alphabet(8)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, 200, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	modelScore, err := Score(model, al)
	if err != nil {
		t.Fatal(err)
	}
	trees, best, err := Search(rng, al, SearchConfig{Starts: 10, MaxTrees: 32, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if best > modelScore {
		t.Fatalf("search best %d worse than model tree score %d", best, modelScore)
	}
	if len(trees) == 0 {
		t.Fatal("search returned no trees")
	}
	for _, tr := range trees {
		s, err := Score(tr, al)
		if err != nil {
			t.Fatal(err)
		}
		if s != best {
			t.Fatalf("returned tree scores %d, tied set claims %d", s, best)
		}
		if got := len(tr.LeafLabels()); got != len(taxa) {
			t.Fatalf("returned tree has %d taxa, want %d", got, len(taxa))
		}
	}
}

func TestSearchDistinctTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	taxa := treegen.Alphabet(10)
	model := treegen.Yule(rng, taxa)
	// Short, noisy alignment: many ties expected.
	al, err := seqsim.Evolve(rng, model, 30, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	trees, _, err := Search(rng, al, SearchConfig{Starts: 15, MaxTrees: 50, MaxRounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tr := range trees {
		c := tr.Canonical()
		if seen[c] {
			t.Fatal("duplicate topology in tied set")
		}
		seen[c] = true
	}
}

func TestSearchTooFewTaxa(t *testing.T) {
	al := aln([]string{"only"}, "ACGT")
	rng := rand.New(rand.NewSource(0))
	if _, _, err := Search(rng, al, DefaultSearchConfig()); err == nil {
		t.Fatal("expected error for single taxon")
	}
}

func TestSearchDeterministic(t *testing.T) {
	taxa := treegen.Alphabet(6)
	mk := func() ([]*tree.Tree, int) {
		rng := rand.New(rand.NewSource(3))
		model := treegen.Yule(rng, taxa)
		al, err := seqsim.Evolve(rng, model, 60, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		trees, best, err := Search(rng, al, SearchConfig{Starts: 6, MaxTrees: 16, MaxRounds: 50})
		if err != nil {
			t.Fatal(err)
		}
		return trees, best
	}
	a, ba := mk()
	b, bb := mk()
	if ba != bb || len(a) != len(b) {
		t.Fatalf("search not deterministic: %d/%d trees, scores %d/%d", len(a), len(b), ba, bb)
	}
	for i := range a {
		if a[i].Canonical() != b[i].Canonical() {
			t.Fatal("tied sets differ across same-seed runs")
		}
	}
}
