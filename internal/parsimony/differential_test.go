package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// ambiguousAlphabet exercises every path of the state-set table: plain
// bases in both cases, IUPAC ambiguity codes, gaps, and an unknown byte.
var ambiguousAlphabet = []byte("ACGTacgtURYSWKMBDHVNnryswkmbdhv-?.*")

func randomAlignment(rng *rand.Rand, taxa []string, sites int, alphabet []byte) *seqsim.Alignment {
	a := &seqsim.Alignment{Taxa: taxa, Seqs: map[string][]byte{}}
	for _, t := range taxa {
		s := make([]byte, sites)
		for i := range s {
			s[i] = alphabet[rng.Intn(len(alphabet))]
		}
		a.Seqs[t] = s
	}
	return a
}

// TestFitchEngineMatchesNaive quick-checks FitchEngine.Score ≡ Score
// over random Yule trees × random alignments, including ambiguity codes
// and site counts straddling the 16-sites-per-word packing boundary.
func TestFitchEngineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	siteCounts := []int{1, 5, 15, 16, 17, 31, 32, 33, 50, 130}
	for trial := 0; trial < 60; trial++ {
		nTaxa := rng.Intn(12) + 3
		taxa := treegen.Alphabet(nTaxa)
		sites := siteCounts[trial%len(siteCounts)]
		alphabet := ambiguousAlphabet
		if trial%3 == 0 {
			alphabet = []byte("ACGT")
		}
		al := randomAlignment(rng, taxa, sites, alphabet)
		tr := treegen.Yule(rng, taxa)

		want, err := Score(tr, al)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		eng, err := NewFitchEngine(al)
		if err != nil {
			t.Fatalf("trial %d: engine: %v", trial, err)
		}
		got, err := eng.Score(tr)
		if err != nil {
			t.Fatalf("trial %d: engine score: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d (%d taxa × %d sites): packed %d != naive %d",
				trial, nTaxa, sites, got, want)
		}
		// Steady-state rescoring of the same tree must agree too.
		if again, _ := eng.Score(tr); again != want {
			t.Fatalf("trial %d: rescore drifted: %d != %d", trial, again, want)
		}
	}
}

// TestFitchEngineSharedTableWithNaive pins the two scorers to one base
// table: a deliberately ambiguous alignment must give identical scores.
func TestFitchEngineSharedTableWithNaive(t *testing.T) {
	taxa := []string{"a", "b", "c", "d"}
	al := &seqsim.Alignment{Taxa: taxa, Seqs: map[string][]byte{
		"a": []byte("acgtRYn-"),
		"b": []byte("ACGTryN?"),
		"c": []byte("tgcaSWKM"),
		"d": []byte("TGCAswkm"),
	}}
	tr := mustParse(t, "((a,b),(c,d));")
	want, err := Score(tr, al)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewFitchEngine(al)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Score(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("packed %d != naive %d on ambiguous alignment", got, want)
	}
}

// TestIncrementalNNIMatchesFull verifies delta rescoring against full
// rescoring for every NNI neighbor of random trees.
func TestIncrementalNNIMatchesFull(t *testing.T) {
	testIncrementalMatchesFull(t, false)
}

// TestIncrementalSPRMatchesFull verifies delta rescoring against full
// rescoring for every SPR neighbor of random trees.
func TestIncrementalSPRMatchesFull(t *testing.T) {
	testIncrementalMatchesFull(t, true)
}

func testIncrementalMatchesFull(t *testing.T, spr bool) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 25; trial++ {
		nTaxa := rng.Intn(9) + 4
		taxa := treegen.Alphabet(nTaxa)
		sites := []int{15, 16, 17, 40, 64}[trial%5]
		al := randomAlignment(rng, taxa, sites, ambiguousAlphabet)
		tr := treegen.Yule(rng, taxa)

		eng, err := NewFitchEngine(al)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Score(tr); err != nil {
			t.Fatal(err)
		}
		check := func(i int, delta int, nb *tree.Tree) {
			t.Helper()
			full, err := Score(nb, al)
			if err != nil {
				t.Fatalf("trial %d move %d: naive: %v", trial, i, err)
			}
			if delta != full {
				t.Fatalf("trial %d move %d (spr=%v, %d taxa × %d sites): delta %d != full %d",
					trial, i, spr, nTaxa, sites, delta, full)
			}
		}
		if spr {
			for i, m := range SPRMoves(tr) {
				check(i, eng.ScoreSPR(m), ApplySPR(tr, m))
			}
		} else {
			for i, m := range NNIMoves(tr) {
				check(i, eng.ScoreNNI(m), ApplyNNI(tr, m))
			}
		}
		// The cache must be untouched by move scoring: the full score of
		// the current tree is still reproducible.
		want, _ := Score(tr, al)
		if got, _ := eng.Score(tr); got != want {
			t.Fatalf("trial %d: cache corrupted by move scoring: %d != %d", trial, got, want)
		}
	}
}

// TestIncrementalAfterAccept walks a few accepted moves, re-attaching
// each time, and checks the delta scores stay exact along the way.
func TestIncrementalAfterAccept(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	taxa := treegen.Alphabet(8)
	al := randomAlignment(rng, taxa, 33, ambiguousAlphabet)
	cur := treegen.Yule(rng, taxa)
	eng, err := NewFitchEngine(al)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		if _, err := eng.Score(cur); err != nil {
			t.Fatal(err)
		}
		moves := NNIMoves(cur)
		m := moves[rng.Intn(len(moves))]
		nb := ApplyNNI(cur, m)
		want, err := Score(nb, al)
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.ScoreNNI(m); got != want {
			t.Fatalf("step %d: delta %d != full %d", step, got, want)
		}
		cur = nb // accept
	}
}

// TestMovesMatchNeighbors pins the move enumeration to the materializing
// wrappers: same count, same trees, same order.
func TestMovesMatchNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 10; trial++ {
		tr := treegen.Yule(rng, treegen.Alphabet(rng.Intn(7)+4))
		nni := NNINeighbors(tr)
		moves := NNIMoves(tr)
		if len(nni) != len(moves) {
			t.Fatalf("NNI: %d neighbors != %d moves", len(nni), len(moves))
		}
		for i := range moves {
			if nni[i].Canonical() != ApplyNNI(tr, moves[i]).Canonical() {
				t.Fatalf("NNI move %d materializes differently", i)
			}
		}
		spr := SPRNeighbors(tr)
		smoves := SPRMoves(tr)
		if len(spr) != len(smoves) {
			t.Fatalf("SPR: %d neighbors != %d moves", len(spr), len(smoves))
		}
		for i := range smoves {
			if spr[i].Canonical() != ApplySPR(tr, smoves[i]).Canonical() {
				t.Fatalf("SPR move %d materializes differently", i)
			}
		}
	}
}

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	return parse(t, s)
}

// TestFitchEngineErrors mirrors the naive scorer's error contract.
func TestFitchEngineErrors(t *testing.T) {
	al := aln([]string{"a", "b", "c"}, "A", "A", "A")
	eng, err := NewFitchEngine(al)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Score(parse(t, "(a,b,c);")); err == nil {
		t.Error("non-binary tree accepted")
	}
	if _, err := eng.Score(parse(t, "((a,b),z);")); err == nil {
		t.Error("missing taxon accepted")
	}
	ragged := aln([]string{"a", "b"}, "AC", "A")
	if _, err := NewFitchEngine(ragged); err == nil {
		t.Error("ragged alignment accepted")
	}
	missing := &seqsim.Alignment{Taxa: []string{"a", "b"}, Seqs: map[string][]byte{"a": []byte("A")}}
	if _, err := NewFitchEngine(missing); err == nil {
		t.Error("missing sequence accepted")
	}
}
