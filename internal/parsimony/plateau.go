package parsimony

import (
	"treemine/internal/seqsim"
	"treemine/internal/tree"
)

// Plateau expands a set of equally parsimonious trees by walking the
// optimal plateau: starting from the seed trees (all of which must score
// equally under the alignment), it breadth-first explores NNI neighbors
// with the same parsimony score, collecting distinct topologies until
// maxTrees are found or the plateau is exhausted. Real datasets routinely
// have large plateaus — PHYLIP's dnapars reports exactly such sets, which
// is what the paper's consensus experiment consumed.
func Plateau(seeds []*tree.Tree, a *seqsim.Alignment, maxTrees int) ([]*tree.Tree, error) {
	if len(seeds) == 0 || maxTrees <= 0 {
		return nil, nil
	}
	score, err := Score(seeds[0], a)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*tree.Tree
	var queue []*tree.Tree
	push := func(t *tree.Tree) {
		c := t.Canonical()
		if !seen[c] {
			seen[c] = true
			out = append(out, t)
			queue = append(queue, t)
		}
	}
	for _, s := range seeds {
		si, err := Score(s, a)
		if err != nil {
			return nil, err
		}
		if si != score {
			continue // seed off the plateau: skip rather than fail
		}
		push(s)
		if len(out) >= maxTrees {
			return out[:maxTrees], nil
		}
	}
	for len(queue) > 0 && len(out) < maxTrees {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range NNINeighbors(cur) {
			ns, err := Score(nb, a)
			if err != nil {
				return nil, err
			}
			if ns == score {
				push(nb)
				if len(out) >= maxTrees {
					break
				}
			}
		}
	}
	if len(out) > maxTrees {
		out = out[:maxTrees]
	}
	return out, nil
}
