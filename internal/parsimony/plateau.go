package parsimony

import (
	"treemine/internal/seqsim"
	"treemine/internal/tree"
)

// Plateau expands a set of equally parsimonious trees by walking the
// optimal plateau: starting from the seed trees (all of which must score
// equally under the alignment), it breadth-first explores NNI neighbors
// with the same parsimony score, collecting distinct topologies until
// maxTrees are found or the plateau is exhausted. Real datasets routinely
// have large plateaus — PHYLIP's dnapars reports exactly such sets, which
// is what the paper's consensus experiment consumed.
//
// Each frontier tree's neighborhood is delta-rescored on a bit-parallel
// FitchEngine; only the zero-cost moves are materialized, so the walk
// does O(path × words) work per neighbor instead of rebuilding and
// rescoring every candidate tree.
func Plateau(seeds []*tree.Tree, a *seqsim.Alignment, maxTrees int) ([]*tree.Tree, error) {
	if len(seeds) == 0 || maxTrees <= 0 {
		return nil, nil
	}
	eng, err := NewFitchEngine(a)
	if err != nil {
		return nil, err
	}
	score, err := eng.Score(seeds[0])
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []*tree.Tree
	var queue []*tree.Tree
	push := func(t *tree.Tree) {
		c := t.Canonical()
		if !seen[c] {
			seen[c] = true
			out = append(out, t)
			queue = append(queue, t)
		}
	}
	for _, s := range seeds {
		si, err := eng.Score(s)
		if err != nil {
			return nil, err
		}
		if si != score {
			continue // seed off the plateau: skip rather than fail
		}
		push(s)
		if len(out) >= maxTrees {
			return out[:maxTrees], nil
		}
	}
	for len(queue) > 0 && len(out) < maxTrees {
		cur := queue[0]
		queue = queue[1:]
		if _, err := eng.Score(cur); err != nil {
			return nil, err
		}
		for _, m := range NNIMoves(cur) {
			if eng.ScoreNNI(m) == score {
				push(ApplyNNI(cur, m))
				if len(out) >= maxTrees {
					break
				}
			}
		}
	}
	if len(out) > maxTrees {
		out = out[:maxTrees]
	}
	return out, nil
}
