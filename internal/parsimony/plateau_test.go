package parsimony

import (
	"math/rand"
	"testing"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestPlateauAllSameScore(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	taxa := treegen.Alphabet(9)
	model := treegen.Yule(rng, taxa)
	al, err := seqsim.Evolve(rng, model, 40, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	seeds, best, err := Search(rng, al, SearchConfig{Starts: 6, MaxTrees: 8, MaxRounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	plateau, err := Plateau(seeds, al, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(plateau) < len(seeds) {
		t.Fatalf("plateau %d smaller than seed set %d", len(plateau), len(seeds))
	}
	seen := map[string]bool{}
	for _, tr := range plateau {
		s, err := Score(tr, al)
		if err != nil {
			t.Fatal(err)
		}
		if s != best {
			t.Fatalf("plateau tree scores %d, want %d", s, best)
		}
		c := tr.Canonical()
		if seen[c] {
			t.Fatal("duplicate topology on plateau")
		}
		seen[c] = true
	}
}

func TestPlateauRespectsCap(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	taxa := treegen.Alphabet(10)
	model := treegen.Yule(rng, taxa)
	// Uninformative alignment: gigantic plateau.
	al, err := seqsim.Evolve(rng, model, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	seeds, _, err := Search(rng, al, SearchConfig{Starts: 3, MaxTrees: 4, MaxRounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	plateau, err := Plateau(seeds, al, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(plateau) > 15 {
		t.Fatalf("plateau size %d exceeds cap", len(plateau))
	}
}

func TestPlateauSkipsOffPlateauSeeds(t *testing.T) {
	al := aln([]string{"a", "b", "c", "d"}, "AAA", "AAA", "GGG", "GGG")
	good := parse(t, "((a,b),(c,d));") // score 3
	bad := parse(t, "((a,c),(b,d));")  // score 6
	plateau, err := Plateau([]*tree.Tree{good, bad}, al, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range plateau {
		s, err := Score(tr, al)
		if err != nil {
			t.Fatal(err)
		}
		if s != 3 {
			t.Fatalf("off-plateau tree (score %d) in result", s)
		}
	}
}

func TestPlateauEmptyInputs(t *testing.T) {
	if out, err := Plateau(nil, nil, 5); err != nil || out != nil {
		t.Fatalf("Plateau(nil) = %v, %v", out, err)
	}
}
