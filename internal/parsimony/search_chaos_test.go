package parsimony

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"treemine/internal/faults"
	"treemine/internal/guard"
)

// Chaos tests for SearchCtx: cancellation between climb rounds and
// panic containment at the climber and batch-scoring pool boundaries.
// Names start with "Search" so the `make race` parsimony regex covers
// them.

// TestSearchCancelledContextReturnsError: a pre-cancelled context stops
// the search before (or between) climb rounds and surfaces ctx.Err().
func TestSearchCancelledContextReturnsError(t *testing.T) {
	al := searchFixture(t, 11, 8, 30, 0.15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(1))
	_, _, err := SearchCtx(ctx, rng, al, SearchConfig{Starts: 4, MaxTrees: 8, MaxRounds: 50, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SearchCtx error = %v, want context.Canceled", err)
	}

	// Deadline in the past behaves the same with its own error.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, _, err = SearchCtx(dctx, rand.New(rand.NewSource(1)), al,
		SearchConfig{Starts: 4, MaxTrees: 8, MaxRounds: 50, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline SearchCtx error = %v, want DeadlineExceeded", err)
	}
}

// TestSearchClimbPanicContained injects a panic into a climb worker:
// the search must return an error wrapping guard.ErrPanic that names
// the start, drain the remaining climbers, and leak no goroutines.
func TestSearchClimbPanicContained(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	al := searchFixture(t, 13, 8, 30, 0.15)
	base := runtime.NumGoroutine()
	faults.Enable(faults.ClimbWorker, faults.Spec{Mode: faults.ModePanic, After: 2, Count: 1})
	rng := rand.New(rand.NewSource(2))
	_, _, err := SearchCtx(context.Background(), rng, al,
		SearchConfig{Starts: 6, MaxTrees: 8, MaxRounds: 50, Workers: 3})
	if err == nil {
		t.Fatal("injected climb panic swallowed")
	}
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("error = %v, want wrapped guard.ErrPanic", err)
	}
	if !strings.Contains(err.Error(), "start") {
		t.Fatalf("error %q does not name the climbing start", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after contained panic: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSearchClimbErrorFaultContained: the same failpoint in error mode
// surfaces as a plain wrapped error (no panic machinery involved).
func TestSearchClimbErrorFaultContained(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	al := searchFixture(t, 17, 8, 30, 0.15)
	faults.Enable(faults.ClimbWorker, faults.Spec{Mode: faults.ModeError, Count: 1})
	rng := rand.New(rand.NewSource(3))
	_, _, err := SearchCtx(context.Background(), rng, al,
		SearchConfig{Starts: 4, MaxTrees: 8, MaxRounds: 50, Workers: 2})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error = %v, want injected", err)
	}
	if errors.Is(err, guard.ErrPanic) {
		t.Fatalf("plain error fault came back as a panic: %v", err)
	}
}
