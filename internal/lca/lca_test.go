package lca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func buildRandom(rng *rand.Rand, n int) *tree.Tree {
	b := tree.NewBuilder()
	b.Root("n0")
	for i := 1; i < n; i++ {
		b.Child(tree.NodeID(rng.Intn(i)), "n")
	}
	return b.MustBuild()
}

func TestLCAAgainstWalkingBaseline(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%60 + 1
		tr := buildRandom(rng, n)
		idx := New(tr)
		for q := 0; q < 50; q++ {
			u := tree.NodeID(rng.Intn(n))
			v := tree.NodeID(rng.Intn(n))
			if idx.LCA(u, v) != tr.LCA(u, v) {
				t.Logf("seed=%d n=%d u=%d v=%d: fast=%d slow=%d",
					seed, n, u, v, idx.LCA(u, v), tr.LCA(u, v))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLCASingleNode(t *testing.T) {
	b := tree.NewBuilder()
	b.Root("only")
	tr := b.MustBuild()
	idx := New(tr)
	if got := idx.LCA(0, 0); got != 0 {
		t.Fatalf("LCA(0,0) = %d", got)
	}
	if got := idx.Dist(0, 0); got != 0 {
		t.Fatalf("Dist(0,0) = %d", got)
	}
}

func TestLCADeepChain(t *testing.T) {
	// A 10k-deep chain must not overflow the stack during the tour.
	b := tree.NewBuilder()
	n := b.Root("r")
	for i := 0; i < 10000; i++ {
		n = b.Child(n, "c")
	}
	tr := b.MustBuild()
	idx := New(tr)
	if got := idx.LCA(0, n); got != 0 {
		t.Fatalf("LCA(root, deepest) = %d, want 0", got)
	}
	if got := idx.Dist(0, n); got != 10000 {
		t.Fatalf("Dist = %d, want 10000", got)
	}
}

func TestDist(t *testing.T) {
	// ((a,b),(c,d)): dist(a,b)=2, dist(a,c)=4, dist(a, left-internal)=1.
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	l := b.ChildUnlabeled(r)
	a := b.Child(l, "a")
	bb := b.Child(l, "b")
	rr := b.ChildUnlabeled(r)
	c := b.Child(rr, "c")
	b.Child(rr, "d")
	tr := b.MustBuild()
	idx := New(tr)
	if got := idx.Dist(a, bb); got != 2 {
		t.Errorf("Dist(a,b) = %d, want 2", got)
	}
	if got := idx.Dist(a, c); got != 4 {
		t.Errorf("Dist(a,c) = %d, want 4", got)
	}
	if got := idx.Dist(a, l); got != 1 {
		t.Errorf("Dist(a,parent) = %d, want 1", got)
	}
}
