// Package lca answers least-common-ancestor queries on a tree in O(1)
// after O(n log n) preprocessing, using the classic Euler-tour reduction
// to range-minimum queries over a sparse table (Bender & Farach-Colton,
// "The LCA problem revisited", LATIN 2000 — reference [4] of the paper).
//
// The cousin-pair miner itself does not need an LCA index (it enumerates
// cousins level-by-level), but the naive quadratic oracle used to verify
// the miner does, as do the similarity measures that look up the cousin
// distance of specific node pairs.
package lca

import (
	"math/bits"

	"treemine/internal/tree"
)

// Index is a preprocessed LCA index over a single tree. It is safe for
// concurrent queries once built.
type Index struct {
	t     *tree.Tree
	euler []tree.NodeID // Euler tour of the tree, 2n-1 entries
	depth []int         // depth of each tour entry
	first []int         // first tour position of each node
	table [][]int32     // sparse table of tour positions with minimal depth
}

// New builds an LCA index for t. Building is O(n log n).
func New(t *tree.Tree) *Index {
	n := t.Size()
	idx := &Index{
		t:     t,
		euler: make([]tree.NodeID, 0, 2*n-1),
		depth: make([]int, 0, 2*n-1),
		first: make([]int, n),
	}
	for i := range idx.first {
		idx.first[i] = -1
	}
	idx.tour(t.Root())
	idx.buildTable()
	return idx
}

// tour performs an iterative Euler tour so deep trees cannot overflow the
// goroutine stack.
func (idx *Index) tour(root tree.NodeID) {
	if root == tree.None {
		return
	}
	type frame struct {
		node tree.NodeID
		next int // index of next child to visit
	}
	stack := []frame{{node: root}}
	record := func(n tree.NodeID) {
		if idx.first[n] < 0 {
			idx.first[n] = len(idx.euler)
		}
		idx.euler = append(idx.euler, n)
		idx.depth = append(idx.depth, idx.t.Depth(n))
	}
	record(root)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := idx.t.Children(f.node)
		if f.next < len(kids) {
			child := kids[f.next]
			f.next++
			record(child)
			stack = append(stack, frame{node: child})
		} else {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				record(stack[len(stack)-1].node)
			}
		}
	}
}

func (idx *Index) buildTable() {
	m := len(idx.euler)
	levels := 1
	if m > 1 {
		levels = bits.Len(uint(m)) // floor(log2(m)) + 1
	}
	idx.table = make([][]int32, levels)
	idx.table[0] = make([]int32, m)
	for i := 0; i < m; i++ {
		idx.table[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		width := m - (1 << k) + 1
		if width <= 0 {
			idx.table = idx.table[:k]
			break
		}
		idx.table[k] = make([]int32, width)
		half := 1 << (k - 1)
		for i := 0; i < width; i++ {
			a, b := idx.table[k-1][i], idx.table[k-1][i+half]
			if idx.depth[a] <= idx.depth[b] {
				idx.table[k][i] = a
			} else {
				idx.table[k][i] = b
			}
		}
	}
}

// LCA returns the least common ancestor of u and v.
func (idx *Index) LCA(u, v tree.NodeID) tree.NodeID {
	l, r := idx.first[u], idx.first[v]
	if l > r {
		l, r = r, l
	}
	k := bits.Len(uint(r-l+1)) - 1
	a, b := idx.table[k][l], idx.table[k][r-(1<<k)+1]
	if idx.depth[a] <= idx.depth[b] {
		return idx.euler[a]
	}
	return idx.euler[b]
}

// Dist returns the number of edges on the path between u and v.
func (idx *Index) Dist(u, v tree.NodeID) int {
	a := idx.LCA(u, v)
	return idx.t.Depth(u) + idx.t.Depth(v) - 2*idx.t.Depth(a)
}
