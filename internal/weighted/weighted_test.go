package weighted

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/core"
	"treemine/internal/tree"
)

func TestNewValidation(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Child(r, "a")
	tr := b.MustBuild()
	if _, err := New(tr, []float64{0, 1}); err != nil {
		t.Fatalf("valid weights rejected: %v", err)
	}
	if _, err := New(tr, []float64{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := New(tr, []float64{0, 0}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight err = %v", err)
	}
	if _, err := New(tr, []float64{0, -2}); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight err = %v", err)
	}
	// The root's own entry may be anything.
	if _, err := New(tr, []float64{-5, 1}); err != nil {
		t.Errorf("root weight should be ignored: %v", err)
	}
}

func TestWeightAccessor(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	c := b.Child(r, "a")
	tr := b.MustBuild()
	wt, err := New(tr, []float64{0, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if wt.Weight(c) != 2.5 {
		t.Fatalf("Weight = %v", wt.Weight(c))
	}
}

// mkWeighted builds r → (x:wx, y:wy) with labeled leaves.
func mkWeighted(t *testing.T, wx, wy float64) *Tree {
	t.Helper()
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "y")
	wt, err := New(b.MustBuild(), []float64{0, wx, wy})
	if err != nil {
		t.Fatal(err)
	}
	return wt
}

func TestMineWeightedSiblings(t *testing.T) {
	// Unit-weight siblings: wdist = (1+1)/2 − 1 = 0.
	items := Mine(mkWeighted(t, 1, 1), DefaultOptions())
	if got := items[NewKey("x", "y", 0)]; got != 1 {
		t.Fatalf("items = %v", items.Items())
	}
	// Weights 2 and 2: wdist = 1 (longer branches = more distant kin).
	items = Mine(mkWeighted(t, 2, 2), DefaultOptions())
	if got := items[NewKey("x", "y", 1)]; got != 1 {
		t.Fatalf("items = %v", items.Items())
	}
	// Weights 1 and 2: gap 1 allowed, wdist = 0.5.
	items = Mine(mkWeighted(t, 1, 2), DefaultOptions())
	if got := items[NewKey("x", "y", 0.5)]; got != 1 {
		t.Fatalf("items = %v", items.Items())
	}
	// Weights 1 and 3: gap 2 exceeds maxgap 1 → undefined.
	items = Mine(mkWeighted(t, 1, 3), DefaultOptions())
	if len(items) != 0 {
		t.Fatalf("items = %v, want empty", items.Items())
	}
	// Raising maxgap admits the pair at wdist (1+3)/2−1 = 1.
	opts := Options{MaxDist: 2, MaxGap: 2, MinOccur: 1}
	items = Mine(mkWeighted(t, 1, 3), opts)
	if got := items[NewKey("x", "y", 1)]; got != 1 {
		t.Fatalf("items = %v", items.Items())
	}
}

func TestMineMaxDistFilter(t *testing.T) {
	items := Mine(mkWeighted(t, 3, 3), Options{MaxDist: 1.5, MaxGap: 1, MinOccur: 1})
	if len(items) != 0 {
		t.Fatalf("wdist 2 should be filtered at maxdist 1.5: %v", items.Items())
	}
}

// randLabeledTree mirrors the core test generator.
func randLabeledTree(rng *rand.Rand, n int) *tree.Tree {
	labels := []string{"a", "b", "c", "d"}
	b := tree.NewBuilder()
	b.Root(labels[rng.Intn(len(labels))])
	for i := 1; i < n; i++ {
		p := tree.NodeID(rng.Intn(i))
		if rng.Intn(5) == 0 {
			b.ChildUnlabeled(p)
		} else {
			b.Child(p, labels[rng.Intn(len(labels))])
		}
	}
	return b.MustBuild()
}

func TestUnitWeightsReduceToPaperDefinition(t *testing.T) {
	// The central design property: with unit weights and maxgap 1 the
	// weighted miner reproduces internal/core's item set exactly.
	f := func(seed int64, size uint8, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%50 + 1
		tr := randLabeledTree(rng, n)
		halves := int(maxD % 8)
		unweighted := core.Mine(tr, core.Options{MaxDist: core.Dist(halves), MinOccur: 1})
		weighted := Mine(Unit(tr), Options{MaxDist: float64(halves) / 2, MaxGap: 1, MinOccur: 1})
		if len(unweighted) != len(weighted) {
			t.Logf("seed=%d n=%d: %d vs %d items", seed, n, len(unweighted), len(weighted))
			return false
		}
		for k, c := range unweighted {
			wk := NewKey(k.A, k.B, k.D.Float())
			if weighted[wk] != c {
				t.Logf("seed=%d: key %v count %d vs %d", seed, k, c, weighted[wk])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMineMinOccur(t *testing.T) {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "x")
	b.Child(r, "x")
	b.Child(r, "y")
	tr := b.MustBuild()
	opts := DefaultOptions()
	opts.MinOccur = 2
	items := Mine(Unit(tr), opts)
	if len(items) != 1 || items[NewKey("x", "y", 0)] != 2 {
		t.Fatalf("items = %v", items.Items())
	}
}

func TestKeyStringAndItems(t *testing.T) {
	k := NewKey("b", "a", 0.5)
	if k.A != "a" || k.B != "b" {
		t.Fatalf("key not canonical: %+v", k)
	}
	if got := k.String(); got != "(a, b, 0.5)" {
		t.Fatalf("String = %q", got)
	}
	s := ItemSet{
		NewKey("x", "y", 1):   2,
		NewKey("a", "b", 0.5): 1,
		NewKey("a", "b", 0):   3,
	}
	items := s.Items()
	if len(items) != 3 {
		t.Fatalf("Items = %v", items)
	}
	if items[0].Key != NewKey("a", "b", 0) || items[1].Key != NewKey("a", "b", 0.5) ||
		items[2].Key != NewKey("x", "y", 1) {
		t.Fatalf("Items not sorted: %v", items)
	}
	if items[0].Occur != 3 {
		t.Fatalf("occur = %d", items[0].Occur)
	}
}

func TestFractionalWeights(t *testing.T) {
	// Branch lengths 0.5 and 0.7: wdist = 0.6−1 < 0 — kin closer than
	// siblings, still reported (distance is real-valued now).
	items := Mine(mkWeighted(t, 0.5, 0.7), Options{MaxDist: 2, MaxGap: 1, MinOccur: 1})
	if len(items) != 1 {
		t.Fatalf("items = %v", items.Items())
	}
	for k := range items {
		if math.Abs(k.D-(-0.4)) > 1e-12 {
			t.Fatalf("wdist = %v, want -0.4", k.D)
		}
	}
}
