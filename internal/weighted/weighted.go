// Package weighted extends cousin-pair mining to trees whose edges carry
// weights — item (i) of the paper's §7 future work. Edge weights model
// evolutionary time or substitution counts on phylogeny branches.
//
// With u, v labeled nodes, a = lca(u, v), and wu, wv the summed edge
// weights from a down to u and v, the weighted cousin distance is
//
//	wdist(u, v) = (wu + wv)/2 − 1,   defined iff |wu − wv| ≤ maxgap
//
// With unit weights and maxgap = 1 this reduces *exactly* to the paper's
// definition: equal depths h give h−1, depths one generation apart give
// min−1+0.5 — the reduction is property-tested against internal/core on
// random trees. The generation-gap tolerance maxgap generalizes the
// paper's hard |h_u − h_v| ≤ 1 cutoff, which §2 itself flags as a
// heuristic rather than a fundamental restriction.
package weighted

import (
	"errors"
	"fmt"
	"sort"

	"treemine/internal/lca"
	"treemine/internal/tree"
)

// ErrBadWeight is returned when an edge weight is not strictly positive.
var ErrBadWeight = errors.New("weighted: edge weights must be positive")

// Tree couples a rooted unordered labeled tree with positive edge
// weights. The weight at index n belongs to the edge from n to its
// parent; the root's entry is ignored.
type Tree struct {
	T *tree.Tree
	w []float64
}

// New validates the weights (one per node, positive except the root's)
// and returns the weighted tree.
func New(t *tree.Tree, weights []float64) (*Tree, error) {
	if len(weights) != t.Size() {
		return nil, fmt.Errorf("weighted: %d weights for %d nodes", len(weights), t.Size())
	}
	for n, w := range weights {
		if tree.NodeID(n) == t.Root() {
			continue
		}
		if w <= 0 {
			return nil, fmt.Errorf("%w (node %d has %v)", ErrBadWeight, n, w)
		}
	}
	return &Tree{T: t, w: append([]float64(nil), weights...)}, nil
}

// Unit returns t with every edge weight 1, under which mining reduces to
// the paper's unweighted algorithm.
func Unit(t *tree.Tree) *Tree {
	w := make([]float64, t.Size())
	for i := range w {
		w[i] = 1
	}
	wt, err := New(t, w)
	if err != nil {
		panic(err) // unreachable: unit weights are valid
	}
	return wt
}

// Weight returns the weight of the edge from n to its parent.
func (wt *Tree) Weight(n tree.NodeID) float64 { return wt.w[n] }

// Options configure weighted mining.
type Options struct {
	// MaxDist is the largest weighted cousin distance reported.
	MaxDist float64
	// MaxGap is the largest |wu − wv| for which the distance is defined;
	// the paper's unweighted cutoff corresponds to MaxGap = 1.
	MaxGap float64
	// MinOccur is the minimum occurrence count per item.
	MinOccur int
}

// DefaultOptions mirrors the paper's Table 2 under unit weights:
// maxdist 1.5, maxgap 1, minoccur 1.
func DefaultOptions() Options {
	return Options{MaxDist: 1.5, MaxGap: 1, MinOccur: 1}
}

// Key identifies a weighted cousin pair item: an unordered label pair
// and the weighted distance.
type Key struct {
	A, B string
	D    float64
}

// NewKey canonicalizes the label order.
func NewKey(l1, l2 string, d float64) Key {
	if l2 < l1 {
		l1, l2 = l2, l1
	}
	return Key{A: l1, B: l2, D: d}
}

// String formats the key as the paper would print it; the distance is
// shown to four significant digits so accumulated float noise from
// summing branch lengths does not leak into output.
func (k Key) String() string { return fmt.Sprintf("(%s, %s, %.4g)", k.A, k.B, k.D) }

// ItemSet maps weighted items to occurrence counts.
type ItemSet map[Key]int

// Item is one weighted cousin pair item.
type Item struct {
	Key   Key
	Occur int
}

// Items returns the set as a slice sorted by (A, B, D).
func (s ItemSet) Items() []Item {
	out := make([]Item, 0, len(s))
	for k, n := range s {
		out = append(out, Item{Key: k, Occur: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.D < b.D
	})
	return out
}

// Mine returns every weighted cousin pair item of wt with distance at
// most opts.MaxDist, generation gap at most opts.MaxGap, and occurrence
// at least opts.MinOccur. Weighted depths are real numbers, so the
// level-walking enumeration of the unweighted miner does not apply; Mine
// examines all labeled-node pairs through an O(1) LCA index, the Θ(n²)
// bound the paper proves for the unweighted case anyway.
func Mine(wt *Tree, opts Options) ItemSet {
	items := make(ItemSet)
	t := wt.T
	nodes := t.LabeledNodes()
	if len(nodes) >= 2 {
		idx := lca.New(t)
		wdepth := wt.weightedDepths()
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				u, v := nodes[i], nodes[j]
				a := idx.LCA(u, v)
				if a == u || a == v {
					continue
				}
				wu := wdepth[u] - wdepth[a]
				wv := wdepth[v] - wdepth[a]
				gap := wu - wv
				if gap < 0 {
					gap = -gap
				}
				if gap > opts.MaxGap+1e-12 {
					continue
				}
				d := (wu+wv)/2 - 1
				if d > opts.MaxDist+1e-12 {
					continue
				}
				items[NewKey(t.MustLabel(u), t.MustLabel(v), d)]++
			}
		}
	}
	for k, n := range items {
		if n < opts.MinOccur {
			delete(items, k)
		}
	}
	return items
}

// weightedDepths returns the summed edge weight from the root to every
// node.
func (wt *Tree) weightedDepths() []float64 {
	t := wt.T
	out := make([]float64, t.Size())
	t.Walk(func(n tree.NodeID) bool {
		if p := t.Parent(n); p != tree.None {
			out[n] = out[p] + wt.w[n]
		}
		return true
	})
	return out
}
