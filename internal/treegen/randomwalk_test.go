package treegen

import (
	"math/rand"
	"testing"
)

func TestRandomWalkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := Alphabet(30)
	tr := RandomWalk(rng, labels, 100)
	if tr.Size() != 30 {
		t.Fatalf("Size = %d", tr.Size())
	}
	// Every label present exactly once.
	seen := map[string]int{}
	for _, n := range tr.Nodes() {
		l, ok := tr.Label(n)
		if !ok {
			t.Fatal("unlabeled node in walk tree")
		}
		seen[l]++
	}
	if len(seen) != 30 {
		t.Fatalf("distinct labels = %d", len(seen))
	}
	for l, c := range seen {
		if c != 1 {
			t.Fatalf("label %s appears %d times", l, c)
		}
	}
}

func TestRandomWalkZeroStepsIsCaterpillar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := RandomWalk(rng, Alphabet(5), 0)
	if tr.Height() != 4 {
		t.Fatalf("zero-step walk height = %d, want chain of 5", tr.Height())
	}
}

func TestRandomWalkMixes(t *testing.T) {
	// After a long walk the tree should usually not still be the
	// caterpillar, and different seeds should usually disagree.
	labels := Alphabet(12)
	distinct := map[string]bool{}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := RandomWalk(rng, labels, 200)
		distinct[tr.Canonical()] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("only %d distinct topologies from 10 seeds", len(distinct))
	}
}

func TestRandomWalkSingleLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := RandomWalk(rng, []string{"solo"}, 50)
	if tr.Size() != 1 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestRandomWalkPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomWalk(rand.New(rand.NewSource(0)), nil, 10)
}

func TestRandomWalkValidTree(t *testing.T) {
	// The SPR moves must never create cycles: the builder would panic on
	// a child-before-parent emit if parents were inconsistent, so just
	// exercise many walks.
	labels := Alphabet(15)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := RandomWalk(rng, labels, 300)
		if tr.Size() != 15 {
			t.Fatalf("seed %d: size %d", seed, tr.Size())
		}
		// Root is node with label L0 by construction.
		if l, _ := tr.Label(tr.Root()); l != "L0" {
			t.Fatalf("seed %d: root label %q", seed, l)
		}
	}
}
