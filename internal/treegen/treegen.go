// Package treegen generates the random trees used by the paper's
// experiments: fanout-shaped synthetic trees (Table 3), uniformly grown
// random trees (standing in for the Holmes–Diaconis random-walk generator
// the paper's C++ program used — reference [19]), and Yule-process
// phylogenies with labeled leaves and unlabeled internal nodes.
//
// All generators are deterministic functions of the *rand.Rand they are
// given, so experiments are reproducible from a seed.
package treegen

import (
	"fmt"
	"math/rand"

	"treemine/internal/tree"
)

// Alphabet returns the synthetic node-label alphabet of the given size:
// "L0", "L1", …, matching the paper's alphabet_size parameter.
func Alphabet(size int) []string {
	out := make([]string, size)
	for i := range out {
		out[i] = fmt.Sprintf("L%d", i)
	}
	return out
}

// Params are the synthetic-tree parameters of the paper's Table 3 with
// their published default values.
type Params struct {
	TreeSize     int // number of nodes in a tree (default 200)
	Fanout       int // number of children of each internal node (default 5)
	AlphabetSize int // number of distinct node labels (default 200)
}

// DefaultParams returns the Table 3 defaults: treesize 200, fanout 5,
// alphabet_size 200. (The database_size default of 1,000 trees belongs to
// the experiment harness, not to a single tree.)
func DefaultParams() Params {
	return Params{TreeSize: 200, Fanout: 5, AlphabetSize: 200}
}

// DefaultDatabaseSize is the Table 3 default number of trees in a
// synthetic database.
const DefaultDatabaseSize = 1000

// Fanout generates a synthetic tree per the paper's Table 3 model: nodes
// are added breadth-first and every internal node receives exactly
// p.Fanout children until p.TreeSize nodes exist; every node is labeled
// uniformly at random from Alphabet(p.AlphabetSize). Fanout panics if
// p.TreeSize < 1, p.Fanout < 1, or p.AlphabetSize < 1.
func Fanout(rng *rand.Rand, p Params) *tree.Tree {
	if p.TreeSize < 1 || p.Fanout < 1 || p.AlphabetSize < 1 {
		panic(fmt.Sprintf("treegen: invalid params %+v", p))
	}
	labels := Alphabet(p.AlphabetSize)
	pick := func() string { return labels[rng.Intn(len(labels))] }
	b := tree.NewBuilder()
	queue := []tree.NodeID{b.Root(pick())}
	for b.Size() < p.TreeSize {
		n := queue[0]
		queue = queue[1:]
		for i := 0; i < p.Fanout && b.Size() < p.TreeSize; i++ {
			queue = append(queue, b.Child(n, pick()))
		}
	}
	return b.MustBuild()
}

// Uniform generates a random recursive tree of size nodes: each new node
// attaches to a uniformly random existing node. Labels are drawn
// uniformly from the given non-empty label slice. This is the stand-in
// for the paper's Holmes–Diaconis random-walk generator: both sample
// broadly from tree space, and the mining algorithms are insensitive to
// the fine difference in shape distribution (their cost is driven by the
// number of qualified cousin pairs, which the benchmarks sweep directly).
func Uniform(rng *rand.Rand, size int, labels []string) *tree.Tree {
	if size < 1 || len(labels) == 0 {
		panic("treegen: Uniform needs size ≥ 1 and at least one label")
	}
	b := tree.NewBuilder()
	b.Root(labels[rng.Intn(len(labels))])
	for i := 1; i < size; i++ {
		b.Child(tree.NodeID(rng.Intn(i)), labels[rng.Intn(len(labels))])
	}
	return b.MustBuild()
}

// Yule generates a binary phylogeny over the given taxa by the Yule pure
// birth process: starting from a single pendant lineage, a uniformly
// random leaf splits into two until there are len(taxa) leaves; the taxa
// are then assigned to the leaves in random order. Internal nodes are
// unlabeled, as in real phylogenies. Yule panics when fewer than one
// taxon is supplied.
func Yule(rng *rand.Rand, taxa []string) *tree.Tree {
	n := len(taxa)
	if n < 1 {
		panic("treegen: Yule needs at least one taxon")
	}
	perm := rng.Perm(n)
	next := 0
	take := func() string { l := taxa[perm[next]]; next++; return l }
	if n == 1 {
		b := tree.NewBuilder()
		b.Root(take())
		return b.MustBuild()
	}
	// Grow the shape as a parent-pointer forest over virtual nodes, then
	// emit it into a Builder.
	type vnode struct {
		kids  []int
		label string
	}
	nodes := []vnode{{}} // 0 is the root
	leaves := []int{0}
	for len(leaves) < n {
		li := rng.Intn(len(leaves))
		leaf := leaves[li]
		a, bIdx := len(nodes), len(nodes)+1
		nodes = append(nodes, vnode{}, vnode{})
		nodes[leaf].kids = []int{a, bIdx}
		leaves[li] = a
		leaves = append(leaves, bIdx)
	}
	for _, leaf := range leaves {
		nodes[leaf].label = take()
	}
	b := tree.NewBuilder()
	var emit func(v int, parent tree.NodeID)
	emit = func(v int, parent tree.NodeID) {
		var id tree.NodeID
		switch {
		case len(nodes[v].kids) == 0 && parent == tree.None:
			id = b.Root(nodes[v].label)
		case len(nodes[v].kids) == 0:
			id = b.Child(parent, nodes[v].label)
		case parent == tree.None:
			id = b.RootUnlabeled()
		default:
			id = b.ChildUnlabeled(parent)
		}
		for _, k := range nodes[v].kids {
			emit(k, id)
		}
	}
	emit(0, tree.None)
	return b.MustBuild()
}

// Multifurcating generates a phylogeny over the given taxa whose internal
// nodes have between minKids and maxKids children, with small arities
// strongly preferred (the TreeBASE phylogenies the paper mined have 2–9
// children per internal node, "most internal nodes have 2 children").
// The taxa are recursively partitioned: each internal node splits its
// taxon set into k random non-empty blocks. Internal nodes are unlabeled.
func Multifurcating(rng *rand.Rand, taxa []string, minKids, maxKids int) *tree.Tree {
	if len(taxa) == 0 {
		panic("treegen: Multifurcating needs at least one taxon")
	}
	if minKids < 2 || maxKids < minKids {
		panic(fmt.Sprintf("treegen: invalid arity range [%d,%d]", minKids, maxKids))
	}
	shuffled := append([]string(nil), taxa...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := tree.NewBuilder()
	var split func(set []string, parent tree.NodeID)
	split = func(set []string, parent tree.NodeID) {
		if len(set) == 1 {
			if parent == tree.None {
				b.Root(set[0])
			} else {
				b.Child(parent, set[0])
			}
			return
		}
		var id tree.NodeID
		if parent == tree.None {
			id = b.RootUnlabeled()
		} else {
			id = b.ChildUnlabeled(parent)
		}
		k := minKids + skewed(rng, maxKids-minKids)
		if k > len(set) {
			k = len(set)
		}
		// Random partition into k non-empty blocks: seed each block with
		// one element, then scatter the rest.
		blocks := make([][]string, k)
		for i := 0; i < k; i++ {
			blocks[i] = append(blocks[i], set[i])
		}
		for _, s := range set[k:] {
			i := rng.Intn(k)
			blocks[i] = append(blocks[i], s)
		}
		for _, blk := range blocks {
			split(blk, id)
		}
	}
	split(shuffled, tree.None)
	return b.MustBuild()
}

// skewed returns a value in [0, max] heavily weighted toward 0: each
// increment survives with probability 1/3.
func skewed(rng *rand.Rand, max int) int {
	v := 0
	for v < max && rng.Intn(3) == 0 {
		v++
	}
	return v
}
