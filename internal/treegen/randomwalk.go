package treegen

import (
	"math/rand"

	"treemine/internal/tree"
)

// RandomWalk samples a labeled tree by a random walk over tree space,
// the approach of Holmes & Diaconis ("Random walks on trees and
// matchings", reference [19]) that the paper's C++ generator was built
// on: starting from a deterministic caterpillar over the labels, `steps`
// random SPR (subtree-prune-and-regraft) moves scramble the topology.
// Longer walks mix toward the uniform-ish stationary distribution; the
// paper's experiments only need broad coverage of tree space, which a
// walk of a few times the node count provides.
func RandomWalk(rng *rand.Rand, labels []string, steps int) *tree.Tree {
	if len(labels) == 0 {
		panic("treegen: RandomWalk needs at least one label")
	}
	// Mutable scaffold: parent pointers over n nodes, node i labeled
	// labels[i], node 0 the root.
	n := len(labels)
	parent := make([]int, n)
	for i := 1; i < n; i++ {
		parent[i] = i - 1 // caterpillar start
	}
	parent[0] = -1

	inSubtree := func(root, x int) bool {
		for ; x >= 0; x = parent[x] {
			if x == root {
				return true
			}
		}
		return false
	}
	for s := 0; s < steps && n > 1; s++ {
		// SPR: detach a random non-root subtree, reattach under any node
		// outside it.
		v := rng.Intn(n-1) + 1
		var candidates []int
		for u := 0; u < n; u++ {
			if u != parent[v] && !inSubtree(v, u) {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		parent[v] = candidates[rng.Intn(len(candidates))]
	}

	// Emit via the builder in a parent-before-child order.
	kids := make([][]int, n)
	for i := 1; i < n; i++ {
		kids[parent[i]] = append(kids[parent[i]], i)
	}
	b := tree.NewBuilder()
	ids := make([]tree.NodeID, n)
	var emit func(i int, p tree.NodeID)
	emit = func(i int, p tree.NodeID) {
		if p == tree.None {
			ids[i] = b.Root(labels[i])
		} else {
			ids[i] = b.Child(p, labels[i])
		}
		for _, k := range kids[i] {
			emit(k, ids[i])
		}
	}
	emit(0, tree.None)
	return b.MustBuild()
}
