package treegen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func TestAlphabet(t *testing.T) {
	a := Alphabet(3)
	if !reflect.DeepEqual(a, []string{"L0", "L1", "L2"}) {
		t.Fatalf("Alphabet(3) = %v", a)
	}
	if len(Alphabet(0)) != 0 {
		t.Fatal("Alphabet(0) not empty")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.TreeSize != 200 || p.Fanout != 5 || p.AlphabetSize != 200 {
		t.Fatalf("DefaultParams = %+v, want Table 3 values", p)
	}
	if DefaultDatabaseSize != 1000 {
		t.Fatalf("DefaultDatabaseSize = %d", DefaultDatabaseSize)
	}
}

func TestFanoutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := Fanout(rng, Params{TreeSize: 31, Fanout: 5, AlphabetSize: 10})
	if tr.Size() != 31 {
		t.Fatalf("Size = %d, want 31", tr.Size())
	}
	// Breadth-first filling: every internal node except possibly the last
	// filled one has exactly 5 children.
	short := 0
	for _, n := range tr.Nodes() {
		k := tr.NumChildren(n)
		if k == 0 {
			continue
		}
		if k != 5 {
			short++
			if k > 5 {
				t.Fatalf("node %d has %d > fanout children", n, k)
			}
		}
	}
	if short > 1 {
		t.Fatalf("%d internal nodes are under-filled, want at most 1", short)
	}
	// Every node is labeled with an alphabet label.
	for _, n := range tr.Nodes() {
		l, ok := tr.Label(n)
		if !ok || len(l) < 2 || l[0] != 'L' {
			t.Fatalf("node %d label = %q, %v", n, l, ok)
		}
	}
}

func TestFanoutSizeOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := Fanout(rng, Params{TreeSize: 1, Fanout: 3, AlphabetSize: 5})
	if tr.Size() != 1 || !tr.IsLeaf(tr.Root()) {
		t.Fatalf("size-1 tree wrong: %v", tr)
	}
}

func TestFanoutPanicsOnBadParams(t *testing.T) {
	for _, p := range []Params{
		{TreeSize: 0, Fanout: 2, AlphabetSize: 2},
		{TreeSize: 5, Fanout: 0, AlphabetSize: 2},
		{TreeSize: 5, Fanout: 2, AlphabetSize: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fanout(%+v) should panic", p)
				}
			}()
			Fanout(rand.New(rand.NewSource(0)), p)
		}()
	}
}

func TestFanoutDeterministic(t *testing.T) {
	p := Params{TreeSize: 50, Fanout: 3, AlphabetSize: 8}
	t1 := Fanout(rand.New(rand.NewSource(9)), p)
	t2 := Fanout(rand.New(rand.NewSource(9)), p)
	if !tree.Isomorphic(t1, t2) {
		t.Fatal("same seed produced different trees")
	}
}

func TestUniformProperties(t *testing.T) {
	labels := Alphabet(5)
	f := func(seed int64, size uint8) bool {
		n := int(size)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		tr := Uniform(rng, n, labels)
		return tr.Size() == n && tr.Labeled(tr.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestYuleShape(t *testing.T) {
	taxa := []string{"t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	rng := rand.New(rand.NewSource(3))
	tr := Yule(rng, taxa)
	// Binary tree over n leaves: n leaves, n-1 internal nodes.
	if got := len(tr.Leaves()); got != len(taxa) {
		t.Fatalf("leaves = %d, want %d", got, len(taxa))
	}
	if tr.Size() != 2*len(taxa)-1 {
		t.Fatalf("Size = %d, want %d", tr.Size(), 2*len(taxa)-1)
	}
	for _, n := range tr.Nodes() {
		if tr.IsLeaf(n) {
			if !tr.Labeled(n) {
				t.Fatalf("leaf %d unlabeled", n)
			}
		} else {
			if tr.Labeled(n) {
				t.Fatalf("internal node %d labeled", n)
			}
			if tr.NumChildren(n) != 2 {
				t.Fatalf("internal node %d has %d children", n, tr.NumChildren(n))
			}
		}
	}
	if got := tr.LeafLabels(); len(got) != len(taxa) {
		t.Fatalf("distinct leaf labels = %d, want %d (all taxa used once)", len(got), len(taxa))
	}
}

func TestYuleSingleTaxon(t *testing.T) {
	tr := Yule(rand.New(rand.NewSource(0)), []string{"only"})
	if tr.Size() != 1 || tr.MustLabel(tr.Root()) != "only" {
		t.Fatalf("Yule(1 taxon) = %v", tr)
	}
}

func TestMultifurcatingArity(t *testing.T) {
	taxa := make([]string, 60)
	for i := range taxa {
		taxa[i] = Alphabet(60)[i]
	}
	rng := rand.New(rand.NewSource(4))
	tr := Multifurcating(rng, taxa, 2, 9)
	if got := len(tr.LeafLabels()); got != 60 {
		t.Fatalf("distinct leaves = %d, want 60", got)
	}
	for _, n := range tr.Nodes() {
		if tr.IsLeaf(n) {
			continue
		}
		k := tr.NumChildren(n)
		if k < 2 || k > 9 {
			t.Fatalf("internal node %d has arity %d outside [2,9]", n, k)
		}
		if tr.Labeled(n) {
			t.Fatalf("internal node %d labeled", n)
		}
	}
}

func TestMultifurcatingMostlyBinary(t *testing.T) {
	// TreeBASE-like: "most internal nodes have 2 children".
	taxa := Alphabet(200)
	rng := rand.New(rand.NewSource(5))
	binary, internal := 0, 0
	for trial := 0; trial < 10; trial++ {
		tr := Multifurcating(rng, taxa, 2, 9)
		for _, n := range tr.Nodes() {
			if !tr.IsLeaf(n) {
				internal++
				if tr.NumChildren(n) == 2 {
					binary++
				}
			}
		}
	}
	if ratio := float64(binary) / float64(internal); ratio < 0.5 {
		t.Fatalf("binary internal node ratio = %.2f, want ≥ 0.5", ratio)
	}
}

func TestMultifurcatingPanics(t *testing.T) {
	for _, c := range []struct {
		taxa     []string
		min, max int
	}{
		{nil, 2, 9},
		{[]string{"a"}, 1, 9},
		{[]string{"a"}, 3, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Multifurcating(%v,%d,%d) should panic", c.taxa, c.min, c.max)
				}
			}()
			Multifurcating(rand.New(rand.NewSource(0)), c.taxa, c.min, c.max)
		}()
	}
}
