package updown

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"treemine/internal/lca"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// stringMatrix is the pre-interning Matrix, verbatim: string-pair map
// keys, per-pair Label calls. Kept as the reference the packed
// implementation must reproduce exactly.
func stringMatrix(t *tree.Tree) map[[2]string]Value {
	out := make(map[[2]string]Value)
	nodes := t.LabeledNodes()
	if len(nodes) < 2 {
		return out
	}
	idx := lca.New(t)
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			lu, _ := t.Label(u)
			lv, _ := t.Label(v)
			if lu == lv {
				continue
			}
			a := idx.LCA(u, v)
			val := Value{
				Up:   t.Depth(u) - t.Depth(a),
				Down: t.Depth(v) - t.Depth(a),
			}
			k := [2]string{lu, lv}
			if old, ok := out[k]; !ok || less(val, old) {
				out[k] = val
			}
		}
	}
	return out
}

// stringDistanceFrom is the pre-interning distanceFrom, verbatim.
func stringDistanceFrom(m1, m2 map[[2]string]Value) float64 {
	var diffs []float64
	for k, v1 := range m1 {
		if v2, ok := m2[k]; ok {
			diffs = append(diffs, abs(v1.Up-v2.Up)+abs(v1.Down-v2.Down))
		}
	}
	if len(diffs) == 0 {
		return 0
	}
	sort.Float64s(diffs)
	sum := 0.0
	for _, d := range diffs {
		sum += d
	}
	return sum / float64(len(diffs))
}

// rankDB builds a query plus a database of Yule trees over partially
// overlapping taxon sets.
func rankDB(seed int64, n int) (*tree.Tree, []*tree.Tree) {
	rng := rand.New(rand.NewSource(seed))
	taxa := treegen.Alphabet(30)
	query := treegen.Yule(rng, taxa[:20])
	db := make([]*tree.Tree, n)
	for i := range db {
		off := rng.Intn(10)
		db[i] = treegen.Yule(rng, taxa[off:off+20])
	}
	return query, db
}

// TestRankMatchesStringReference pins the interned ranking to the
// string-keyed implementation it replaced: identical order and
// bit-identical distances (both implementations sort the per-pair diffs
// before summing, and the diffs are small integers, so float equality
// is exact).
func TestRankMatchesStringReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		query, db := rankDB(seed, 40)
		got := Rank(query, db, 0)
		qm := stringMatrix(query)
		want := make([]Ranked, len(db))
		for i, tr := range db {
			want[i] = Ranked{Index: i, Dist: stringDistanceFrom(qm, stringMatrix(tr))}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].Dist < want[j].Dist })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed=%d: ranking diverged\n got %v\nwant %v", seed, got, want)
		}
	}
}

// TestDistanceFromTranslatesTables: matrices interned into different
// symbol tables must compare identically to matrices sharing one.
func TestDistanceFromTranslatesTables(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		taxa := treegen.Alphabet(12)
		t1 := treegen.Yule(rng, taxa[:8])
		t2 := treegen.Yule(rng, taxa[4:])
		// Separate tables, interned in opposite orders on each side.
		a := distanceFrom(NewPairMatrix(t1, nil), NewPairMatrix(t2, nil))
		if want := Distance(t1, t2); a != want {
			t.Fatalf("seed=%d: separate tables %v != shared %v", seed, a, want)
		}
	}
}

func BenchmarkRank(b *testing.B) {
	query, db := rankDB(42, 200)
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Rank(query, db, 10)
		}
	})
	b.Run("string-maps", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qm := stringMatrix(query)
			out := make([]Ranked, len(db))
			for j, tr := range db {
				out[j] = Ranked{Index: j, Dist: stringDistanceFrom(qm, stringMatrix(tr))}
			}
			sort.SliceStable(out, func(x, y int) bool { return out[x].Dist < out[y].Dist })
		}
	})
}
