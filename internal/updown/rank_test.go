package updown

import (
	"math/rand"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestRankSelfFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	taxa := treegen.Alphabet(10)
	query := treegen.Yule(rng, taxa)
	db := []*tree.Tree{
		treegen.Yule(rng, taxa),
		query.Clone(),
		treegen.Yule(rng, taxa),
	}
	ranked := Rank(query, db, 0)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Index != 1 || ranked[0].Dist != 0 {
		t.Fatalf("clone not ranked first: %+v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Dist < ranked[i-1].Dist {
			t.Fatal("not sorted ascending")
		}
	}
}

func TestRankTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	taxa := treegen.Alphabet(8)
	query := treegen.Yule(rng, taxa)
	var db []*tree.Tree
	for i := 0; i < 10; i++ {
		db = append(db, treegen.Yule(rng, taxa))
	}
	top := Rank(query, db, 3)
	if len(top) != 3 {
		t.Fatalf("top-k = %d", len(top))
	}
	full := Rank(query, db, 99)
	if len(full) != 10 {
		t.Fatalf("k>n = %d", len(full))
	}
	for i := range top {
		if top[i] != full[i] {
			t.Fatal("top-k not a prefix of full ranking")
		}
	}
}

func TestRankConsistentWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	taxa := treegen.Alphabet(7)
	query := treegen.Yule(rng, taxa)
	db := []*tree.Tree{treegen.Yule(rng, taxa), treegen.Yule(rng, taxa)}
	for _, r := range Rank(query, db, 0) {
		if want := Distance(query, db[r.Index]); r.Dist != want {
			t.Fatalf("Rank dist %v != Distance %v", r.Dist, want)
		}
	}
}

func TestRankEmptyDB(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	query := treegen.Yule(rng, treegen.Alphabet(4))
	if got := Rank(query, nil, 5); len(got) != 0 {
		t.Fatalf("empty db = %v", got)
	}
}
