package updown

import (
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMatrixBasic(t *testing.T) {
	// ((a,b),c): up/down values are asymmetric pairs.
	tr := parse(t, "((a,b),c);")
	m := Matrix(tr)
	if got := m[[2]string{"a", "b"}]; got != (Value{Up: 1, Down: 1}) {
		t.Errorf("(a,b) = %+v, want {1,1}", got)
	}
	if got := m[[2]string{"a", "c"}]; got != (Value{Up: 2, Down: 1}) {
		t.Errorf("(a,c) = %+v, want {2,1}", got)
	}
	if got := m[[2]string{"c", "a"}]; got != (Value{Up: 1, Down: 2}) {
		t.Errorf("(c,a) = %+v, want {1,2}", got)
	}
}

func TestMatrixIncludesVerticalPairs(t *testing.T) {
	// Unlike the cousin measure, UpDown covers ancestor–descendant
	// pairs: in a labeled chain a→b, (a,b) has Up 0, Down 1.
	b := tree.NewBuilder()
	r := b.Root("a")
	b.Child(r, "b")
	tr := b.MustBuild()
	m := Matrix(tr)
	if got := m[[2]string{"a", "b"}]; got != (Value{Up: 0, Down: 1}) {
		t.Fatalf("(a,b) = %+v, want {0,1}", got)
	}
	if got := m[[2]string{"b", "a"}]; got != (Value{Up: 1, Down: 0}) {
		t.Fatalf("(b,a) = %+v, want {1,0}", got)
	}
}

func TestMatrixMinimalRepresentative(t *testing.T) {
	// Two b's at different depths: (a,b) takes the closest.
	tr := parse(t, "((a,b),(x,(y,b)));")
	m := Matrix(tr)
	if got := m[[2]string{"a", "b"}]; got != (Value{Up: 1, Down: 1}) {
		t.Fatalf("(a,b) = %+v, want {1,1}", got)
	}
}

func TestDistanceIdentity(t *testing.T) {
	tr := parse(t, "((a,b),((c,d),e));")
	if got := Distance(tr, tr.Clone()); got != 0 {
		t.Fatalf("Distance(T,T) = %v", got)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	taxa := treegen.Alphabet(10)
	for trial := 0; trial < 15; trial++ {
		t1 := treegen.Yule(rng, taxa)
		t2 := treegen.Yule(rng, taxa)
		if d1, d2 := Distance(t1, t2), Distance(t2, t1); d1 != d2 {
			t.Fatalf("not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestDistanceKnownValue(t *testing.T) {
	// (a,b) siblings vs a above b: values {1,1} vs {0,1} and {1,1} vs
	// {1,0} → per-pair diffs 1 and 1, mean 1.
	sib := parse(t, "(a,b);")
	b := tree.NewBuilder()
	r := b.Root("a")
	b.Child(r, "b")
	chain := b.MustBuild()
	if got := Distance(sib, chain); got != 1 {
		t.Fatalf("Distance = %v, want 1", got)
	}
}

func TestDistanceNoSharedPairs(t *testing.T) {
	t1 := parse(t, "(a,b);")
	t2 := parse(t, "(x,y);")
	if got := Distance(t1, t2); got != 0 {
		t.Fatalf("Distance(disjoint) = %v, want 0", got)
	}
}

func TestMatrixSkipsSameLabelAndUnlabeled(t *testing.T) {
	tr := parse(t, "((a,a),b);")
	m := Matrix(tr)
	if _, ok := m[[2]string{"a", "a"}]; ok {
		t.Fatal("same-label pair present")
	}
	if len(m) != 2 {
		t.Fatalf("matrix size = %d, want 2 ((a,b) and (b,a))", len(m))
	}
}
