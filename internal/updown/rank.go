package updown

import (
	"sort"

	"treemine/internal/tree"
)

// Ranked is one database tree scored against a query.
type Ranked struct {
	Index int     // position in the database slice
	Dist  float64 // UpDown distance to the query
}

// Rank orders database trees by UpDown distance to the query, nearest
// first — the nearest-neighbor search TreeRank (reference [39] of the
// paper) performs over phylogenetic databases. The query's matrix is
// computed once; ties are broken by database position so results are
// deterministic. k ≤ 0 or k > len(db) returns the full ranking.
func Rank(query *tree.Tree, db []*tree.Tree, k int) []Ranked {
	qm := Matrix(query)
	out := make([]Ranked, len(db))
	for i, t := range db {
		out[i] = Ranked{Index: i, Dist: distanceFrom(qm, Matrix(t))}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// distanceFrom mirrors Distance on precomputed matrices.
func distanceFrom(m1, m2 map[[2]string]Value) float64 {
	var diffs []float64
	for k, v1 := range m1 {
		if v2, ok := m2[k]; ok {
			diffs = append(diffs, abs(v1.Up-v2.Up)+abs(v1.Down-v2.Down))
		}
	}
	if len(diffs) == 0 {
		return 0
	}
	sort.Float64s(diffs)
	sum := 0.0
	for _, d := range diffs {
		sum += d
	}
	return sum / float64(len(diffs))
}
