package updown

import (
	"sort"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// Ranked is one database tree scored against a query.
type Ranked struct {
	Index int     // position in the database slice
	Dist  float64 // UpDown distance to the query
}

// Rank orders database trees by UpDown distance to the query, nearest
// first — the nearest-neighbor search TreeRank (reference [39] of the
// paper) performs over phylogenetic databases. The query's matrix is
// computed once, and one symbol table is shared across the whole
// database, so every comparison is packed-key lookups with no string
// hashing; ties are broken by database position so results are
// deterministic. k ≤ 0 or k > len(db) returns the full ranking.
func Rank(query *tree.Tree, db []*tree.Tree, k int) []Ranked {
	syms := core.NewSymbols()
	qm := NewPairMatrix(query, syms)
	out := make([]Ranked, len(db))
	for i, t := range db {
		out[i] = Ranked{Index: i, Dist: distanceFrom(qm, NewPairMatrix(t, syms))}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// distanceFrom mirrors Distance on precomputed matrices. Matrices over
// the same Symbols table compare by direct key lookups; otherwise m1's
// symbols are translated into m2's once, up front. The per-pair diffs
// are sorted before summing, exactly as the string-keyed implementation
// did, so the result is bit-identical to it.
func distanceFrom(m1, m2 *PairMatrix) float64 {
	const missing = ^uint32(0)
	var xl []uint32
	if m1.syms != m2.syms {
		xl = make([]uint32, m1.syms.Len())
		for id := range xl {
			xl[id] = missing
			if id2, ok := m2.syms.Lookup(m1.syms.Label(uint32(id))); ok {
				xl[id] = id2
			}
		}
	}
	diffs := make([]float64, 0, len(m1.vals))
	for k, v1 := range m1.vals {
		if xl != nil {
			a, b := xl[uint32(k>>32)], xl[uint32(k)]
			if a == missing || b == missing {
				continue
			}
			k = pairKey(a, b)
		}
		if v2, ok := m2.vals[k]; ok {
			diffs = append(diffs, abs(v1.Up-v2.Up)+abs(v1.Down-v2.Down))
		}
	}
	if len(diffs) == 0 {
		return 0
	}
	sort.Float64s(diffs)
	sum := 0.0
	for _, d := range diffs {
		sum += d
	}
	return sum / float64(len(diffs))
}
