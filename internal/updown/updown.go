// Package updown implements the UpDown distance of Wang, Shan, Shasha &
// Piel's TreeRank (SSDBM 2003) — reference [39] of the paper, cited in §2
// as the generalization of cousin distance that also covers parent–child
// (vertical) relationships. For an ordered pair of labeled nodes (u, v)
// the UpDown value is the pair (up, down): the number of edges from u up
// to lca(u, v), and from there down to v. The UpDown distance between two
// trees compares these values over shared label pairs.
package updown

import (
	"treemine/internal/core"
	"treemine/internal/lca"
	"treemine/internal/tree"
)

// Value is the UpDown value of an ordered node pair.
type Value struct {
	Up   int // edges from the first node up to the LCA
	Down int // edges from the LCA down to the second node
}

// PairMatrix is the interned form of Matrix: taxa are interned into a
// core.Symbols table and each ordered label pair is keyed by one packed
// uint64, so building and comparing matrices never hashes strings.
// Matrices built against the same Symbols table (pass the table to
// NewPairMatrix, as Rank does for a whole database) compare by direct
// key lookups; matrices with distinct tables are bridged by a per-call
// symbol translation.
type PairMatrix struct {
	syms *core.Symbols
	vals map[uint64]Value
}

func pairKey(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// NewPairMatrix builds the interned UpDown matrix of t. Labels are
// interned into syms; pass nil for a private table. When several node
// pairs realize the same label pair, the lexicographically smallest
// (Up, Down) value represents it — the closest relationship the tree
// asserts, mirroring how the similarity measure in internal/core picks
// minimal cousin distances. Unlabeled nodes are skipped.
func NewPairMatrix(t *tree.Tree, syms *core.Symbols) *PairMatrix {
	if syms == nil {
		syms = core.NewSymbols()
	}
	m := &PairMatrix{syms: syms, vals: make(map[uint64]Value)}
	nodes := t.LabeledNodes()
	if len(nodes) < 2 {
		return m
	}
	// Intern and memoize per node once, so the quadratic pair loop below
	// touches only ints.
	labs := make([]uint32, len(nodes))
	depths := make([]int, len(nodes))
	for i, n := range nodes {
		labs[i] = syms.Intern(t.MustLabel(n))
		depths[i] = t.Depth(n)
	}
	idx := lca.New(t)
	for i, u := range nodes {
		for j, v := range nodes {
			if i == j || labs[i] == labs[j] {
				continue
			}
			a := idx.LCA(u, v)
			da := t.Depth(a)
			val := Value{Up: depths[i] - da, Down: depths[j] - da}
			k := pairKey(labs[i], labs[j])
			if old, ok := m.vals[k]; !ok || less(val, old) {
				m.vals[k] = val
			}
		}
	}
	return m
}

// Len returns the number of ordered label pairs in the matrix.
func (m *PairMatrix) Len() int { return len(m.vals) }

// Matrix maps each ordered pair of distinct labels to its UpDown value
// in t — the string-keyed view of NewPairMatrix, kept for callers that
// want to inspect pairs by name.
func Matrix(t *tree.Tree) map[[2]string]Value {
	pm := NewPairMatrix(t, nil)
	out := make(map[[2]string]Value, len(pm.vals))
	for k, v := range pm.vals {
		out[[2]string{pm.syms.Label(uint32(k >> 32)), pm.syms.Label(uint32(k))}] = v
	}
	return out
}

func less(a, b Value) bool {
	if a.Up != b.Up {
		return a.Up < b.Up
	}
	return a.Down < b.Down
}

// Distance is the normalized L1 UpDown distance between two trees: the
// mean of |up1−up2| + |down1−down2| over label pairs present in both
// trees, divided by the number of such pairs; trees sharing no label
// pairs are at distance 0 by convention (nothing comparable), matching
// how TreeRank scores against a query tree's own pairs. The result is
// symmetric and 0 for isomorphic trees.
func Distance(t1, t2 *tree.Tree) float64 {
	syms := core.NewSymbols()
	return distanceFrom(NewPairMatrix(t1, syms), NewPairMatrix(t2, syms))
}

func abs(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
