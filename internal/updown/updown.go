// Package updown implements the UpDown distance of Wang, Shan, Shasha &
// Piel's TreeRank (SSDBM 2003) — reference [39] of the paper, cited in §2
// as the generalization of cousin distance that also covers parent–child
// (vertical) relationships. For an ordered pair of labeled nodes (u, v)
// the UpDown value is the pair (up, down): the number of edges from u up
// to lca(u, v), and from there down to v. The UpDown distance between two
// trees compares these values over shared label pairs.
package updown

import (
	"treemine/internal/lca"
	"treemine/internal/tree"
)

// Value is the UpDown value of an ordered node pair.
type Value struct {
	Up   int // edges from the first node up to the LCA
	Down int // edges from the LCA down to the second node
}

// Matrix maps each ordered pair of distinct labels to its UpDown value
// in t. When several node pairs realize the same label pair, the
// lexicographically smallest (Up, Down) value represents it — the
// closest relationship the tree asserts, mirroring how the similarity
// measure in internal/core picks minimal cousin distances. Unlabeled
// nodes are skipped.
func Matrix(t *tree.Tree) map[[2]string]Value {
	out := make(map[[2]string]Value)
	nodes := t.LabeledNodes()
	if len(nodes) < 2 {
		return out
	}
	idx := lca.New(t)
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			lu, _ := t.Label(u)
			lv, _ := t.Label(v)
			if lu == lv {
				continue
			}
			a := idx.LCA(u, v)
			val := Value{
				Up:   t.Depth(u) - t.Depth(a),
				Down: t.Depth(v) - t.Depth(a),
			}
			k := [2]string{lu, lv}
			if old, ok := out[k]; !ok || less(val, old) {
				out[k] = val
			}
		}
	}
	return out
}

func less(a, b Value) bool {
	if a.Up != b.Up {
		return a.Up < b.Up
	}
	return a.Down < b.Down
}

// Distance is the normalized L1 UpDown distance between two trees: the
// mean of |up1−up2| + |down1−down2| over label pairs present in both
// trees, divided by the number of such pairs; trees sharing no label
// pairs are at distance 0 by convention (nothing comparable), matching
// how TreeRank scores against a query tree's own pairs. The result is
// symmetric and 0 for isomorphic trees.
func Distance(t1, t2 *tree.Tree) float64 {
	return distanceFrom(Matrix(t1), Matrix(t2))
}

func abs(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
