// Package supertree assembles a single phylogeny from source trees whose
// taxon sets overlap but differ — the application the paper's §5.3
// motivates ("assembling information from smaller phylogenies that share
// some but not necessarily all taxa"; its kernel trees "could constitute
// a good starting point in building a supertree"). The core is the BUILD
// algorithm of Aho, Sagiv, Szymanski & Ullman (1981) over rooted
// triples, plus a MinCut-style relaxation (after Semple & Steel 2000)
// that resolves conflicts by majority weight instead of failing.
package supertree

import (
	"errors"
	"fmt"
	"sort"

	"treemine/internal/lca"
	"treemine/internal/tree"
)

// Triple is the rooted triple ab|c: taxa A and B are closer to each
// other than either is to C. A < B canonically.
type Triple struct {
	A, B, C string
}

// NewTriple canonicalizes the sibling order.
func NewTriple(a, b, c string) Triple {
	if b < a {
		a, b = b, a
	}
	return Triple{A: a, B: b, C: c}
}

// String renders the triple as "ab|c".
func (t Triple) String() string { return fmt.Sprintf("%s,%s|%s", t.A, t.B, t.C) }

// TriplesOf extracts every resolved rooted triple of t (leaves with
// duplicate labels are rejected). Θ(k³) in the leaf count.
func TriplesOf(t *tree.Tree) ([]Triple, error) {
	leaves := t.Leaves()
	labels := t.LeafLabels()
	if len(labels) != len(leaves) {
		return nil, errors.New("supertree: duplicate leaf labels")
	}
	byLabel := make(map[string]tree.NodeID, len(leaves))
	for _, n := range leaves {
		l, _ := t.Label(n)
		byLabel[l] = n
	}
	idx := lca.New(t)
	var out []Triple
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			for k := j + 1; k < len(labels); k++ {
				a, b, c := labels[i], labels[j], labels[k]
				na, nb, nc := byLabel[a], byLabel[b], byLabel[c]
				dab := t.Depth(idx.LCA(na, nb))
				dac := t.Depth(idx.LCA(na, nc))
				dbc := t.Depth(idx.LCA(nb, nc))
				switch {
				case dab > dac && dab > dbc:
					out = append(out, NewTriple(a, b, c))
				case dac > dab && dac > dbc:
					out = append(out, NewTriple(a, c, b))
				case dbc > dab && dbc > dac:
					out = append(out, NewTriple(b, c, a))
				}
			}
		}
	}
	return out, nil
}

// ErrIncompatible is returned by Build when the triples cannot coexist
// in one tree.
var ErrIncompatible = errors.New("supertree: incompatible triples")

// Build runs the strict BUILD algorithm: it returns a tree over the taxa
// displaying every weighted triple, or ErrIncompatible when none exists.
// Weights are ignored in strict mode (they matter to the relaxed
// variant); zero-weight entries are skipped.
func Build(taxa []string, triples map[Triple]int) (*tree.Tree, error) {
	return build(taxa, triples, false)
}

// Supertree assembles a supertree from source trees with overlapping
// taxa: triples are extracted from every source, vote-aggregated
// (conflicting resolutions of the same taxon trio keep only the
// majority; exact ties drop the trio), and assembled with the relaxed
// BUILD that cuts minimum-weight edges instead of failing. It never
// returns ErrIncompatible; with no usable taxa it errors.
func Supertree(trees []*tree.Tree) (*tree.Tree, error) {
	seen := map[string]bool{}
	var taxa []string
	votes := map[Triple]int{}
	for i, t := range trees {
		for _, l := range t.LeafLabels() {
			if !seen[l] {
				seen[l] = true
				taxa = append(taxa, l)
			}
		}
		ts, err := TriplesOf(t)
		if err != nil {
			return nil, fmt.Errorf("supertree: source %d: %w", i, err)
		}
		for _, tr := range ts {
			votes[tr]++
		}
	}
	if len(taxa) == 0 {
		return nil, errors.New("supertree: no labeled leaves in any source")
	}
	sort.Strings(taxa)
	majority := resolveVotes(votes)
	return build(taxa, majority, true)
}

// resolveVotes keeps, per taxon trio, the resolution with the strictly
// largest vote count.
func resolveVotes(votes map[Triple]int) map[Triple]int {
	type trioKey [3]string
	trioOf := func(t Triple) trioKey {
		k := trioKey{t.A, t.B, t.C}
		sort.Strings(k[:])
		return k
	}
	best := map[trioKey]Triple{}
	bestW := map[trioKey]int{}
	tied := map[trioKey]bool{}
	for t, w := range votes {
		k := trioOf(t)
		switch {
		case w > bestW[k]:
			best[k], bestW[k], tied[k] = t, w, false
		case w == bestW[k] && best[k] != t:
			tied[k] = true
		}
	}
	out := map[Triple]int{}
	for k, t := range best {
		if !tied[k] {
			out[t] = bestW[k]
		}
	}
	return out
}

func build(taxa []string, triples map[Triple]int, relaxed bool) (*tree.Tree, error) {
	b := tree.NewBuilder()
	if err := buildRec(taxa, triples, relaxed, tree.None, b); err != nil {
		return nil, err
	}
	return b.Build()
}

func buildRec(taxa []string, triples map[Triple]int, relaxed bool, parent tree.NodeID, b *tree.Builder) error {
	if len(taxa) == 1 {
		if parent == tree.None {
			b.Root(taxa[0])
		} else {
			b.Child(parent, taxa[0])
		}
		return nil
	}
	inSet := make(map[string]bool, len(taxa))
	for _, t := range taxa {
		inSet[t] = true
	}
	// Aho graph: vertices = taxa, edge (A,B) weighted by the triples
	// AB|C fully inside the current set.
	weights := map[edge]int{}
	for t, w := range triples {
		if w > 0 && inSet[t.A] && inSet[t.B] && inSet[t.C] {
			weights[edge{t.A, t.B}] += w
		}
	}
	comp := components(taxa, weights)
	if len(comp) == 1 && len(taxa) > 1 {
		if !relaxed {
			return fmt.Errorf("%w over %v", ErrIncompatible, taxa)
		}
		// MinCut-style relaxation: repeatedly delete all minimum-weight
		// edges until the graph disconnects or runs out of edges.
		for len(comp) == 1 && len(weights) > 0 {
			min := 0
			first := true
			for _, w := range weights {
				if first || w < min {
					min, first = w, false
				}
			}
			for e, w := range weights {
				if w == min {
					delete(weights, e)
				}
			}
			comp = components(taxa, weights)
		}
		if len(comp) == 1 {
			// No edges left and still one component: emit a star.
			id := emitInternal(parent, b)
			for _, t := range taxa {
				b.Child(id, t)
			}
			return nil
		}
	}
	id := emitInternal(parent, b)
	for _, block := range comp {
		if err := buildRec(block, triples, relaxed, id, b); err != nil {
			return err
		}
	}
	return nil
}

func emitInternal(parent tree.NodeID, b *tree.Builder) tree.NodeID {
	if parent == tree.None {
		return b.RootUnlabeled()
	}
	return b.ChildUnlabeled(parent)
}

// edge is an undirected Aho-graph edge between two taxa.
type edge struct{ a, b string }

// components returns the connected components of the Aho graph, each
// sorted, in order of their smallest member.
func components(taxa []string, weights map[edge]int) [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	for _, t := range taxa {
		parent[t] = t
	}
	for e := range weights {
		parent[find(e.a)] = find(e.b)
	}
	groups := map[string][]string{}
	for _, t := range taxa {
		r := find(t)
		groups[r] = append(groups[r], t)
	}
	var out [][]string
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
