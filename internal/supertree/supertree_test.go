package supertree

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTripleCanonical(t *testing.T) {
	if NewTriple("b", "a", "c") != NewTriple("a", "b", "c") {
		t.Fatal("sibling order not canonicalized")
	}
	if got := NewTriple("a", "b", "c").String(); got != "a,b|c" {
		t.Fatalf("String = %q", got)
	}
}

func TestTriplesOfBinaryTree(t *testing.T) {
	tr := parse(t, "((a,b),c);")
	ts, err := TriplesOf(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0] != NewTriple("a", "b", "c") {
		t.Fatalf("triples = %v", ts)
	}
	// A star resolves nothing.
	star := parse(t, "(a,b,c);")
	ts, err = TriplesOf(star)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Fatalf("star triples = %v", ts)
	}
	// A binary tree over k leaves resolves all C(k,3) triples.
	full := parse(t, "((a,b),(c,d));")
	ts, err = TriplesOf(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 {
		t.Fatalf("quartet triples = %v", ts)
	}
}

func TestTriplesOfDuplicateLabels(t *testing.T) {
	if _, err := TriplesOf(parse(t, "((a,a),b);")); err == nil {
		t.Fatal("duplicate labels accepted")
	}
}

func TestBuildReconstructsTree(t *testing.T) {
	src := parse(t, "((a,b),((c,d),e));")
	ts, err := TriplesOf(src)
	if err != nil {
		t.Fatal(err)
	}
	triples := map[Triple]int{}
	for _, tr := range ts {
		triples[tr]++
	}
	got, err := Build(src.LeafLabels(), triples)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Isomorphic(got, src) {
		t.Fatalf("Build = %v, want %v", got, src)
	}
}

func TestBuildIncompatible(t *testing.T) {
	triples := map[Triple]int{
		NewTriple("a", "b", "c"): 1,
		NewTriple("a", "c", "b"): 1, // conflicts with the first
	}
	_, err := Build([]string{"a", "b", "c"}, triples)
	if !errors.Is(err, ErrIncompatible) {
		t.Fatalf("err = %v, want ErrIncompatible", err)
	}
}

func TestBuildNoTriplesGivesStar(t *testing.T) {
	got, err := Build([]string{"a", "b", "c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChildren(got.Root()) != 3 {
		t.Fatalf("no-triples build = %v, want star", got)
	}
}

func TestSupertreeOverlappingSources(t *testing.T) {
	// Sources over {a,b,c,d} and {c,d,e}: the supertree must display
	// both (a,b) and the cd|e nesting.
	s1 := parse(t, "((a,b),(c,d));")
	s2 := parse(t, "((c,d),e);")
	got, err := Supertree([]*tree.Tree{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if labels := got.LeafLabels(); len(labels) != 5 {
		t.Fatalf("supertree taxa = %v", labels)
	}
	ts := tree.TaxaOf(got)
	ic := tree.InternalClusters(got, ts)
	if _, ok := ic[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Errorf("supertree missing {a,b}: %v", got)
	}
	if _, ok := ic[ts.ClusterOf("c", "d").Key()]; !ok {
		t.Errorf("supertree missing {c,d}: %v", got)
	}
}

func TestSupertreeMajorityResolvesConflict(t *testing.T) {
	// ab|c twice vs ac|b once: majority keeps ab|c.
	s1 := parse(t, "((a,b),c);")
	s2 := parse(t, "((a,b),c);")
	s3 := parse(t, "((a,c),b);")
	got, err := Supertree([]*tree.Tree{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(got)
	ic := tree.InternalClusters(got, ts)
	if _, ok := ic[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Fatalf("majority triple lost: %v", got)
	}
}

func TestSupertreeTieCollapses(t *testing.T) {
	// ab|c vs ac|b tied 1–1: the trio drops and the result is a star.
	s1 := parse(t, "((a,b),c);")
	s2 := parse(t, "((a,c),b);")
	got, err := Supertree([]*tree.Tree{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChildren(got.Root()) != 3 {
		t.Fatalf("tied supertree = %v, want star", got)
	}
}

func TestSupertreeRelaxationCutsToStar(t *testing.T) {
	// Four sources over four distinct trios whose majority triples form
	// the cycle ab|c, bc|d, cd|a, da|b: the Aho graph is one connected
	// cycle over {a,b,c,d} with all edges at weight 1, so the relaxation
	// deletes every edge and falls back to a star. Strict BUILD must
	// refuse the same triples.
	sources := []*tree.Tree{
		parse(t, "((a,b),c);"),
		parse(t, "((b,c),d);"),
		parse(t, "((c,d),a);"),
		parse(t, "((d,a),b);"),
	}
	triples := map[Triple]int{}
	for _, s := range sources {
		ts, err := TriplesOf(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range ts {
			triples[tr]++
		}
	}
	if _, err := Build([]string{"a", "b", "c", "d"}, triples); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("strict Build err = %v, want ErrIncompatible", err)
	}
	st, err := Supertree(sources)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChildren(st.Root()) != 4 {
		t.Fatalf("relaxed supertree = %v, want 4-taxon star", st)
	}
}

func TestSupertreeRelaxationKeepsHeavyEdge(t *testing.T) {
	// Same cycle, but ab|c is voted twice: cutting the weight-1 edges
	// disconnects the graph while the heavier a–b edge survives, so the
	// supertree keeps the {a,b} cluster.
	sources := []*tree.Tree{
		parse(t, "((a,b),c);"),
		parse(t, "((a,b),c);"),
		parse(t, "((b,c),d);"),
		parse(t, "((c,d),a);"),
		parse(t, "((d,a),b);"),
	}
	st, err := Supertree(sources)
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(st)
	if _, ok := tree.InternalClusters(st, ts)[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Fatalf("heavy {a,b} cluster lost: %v", st)
	}
}

func TestSupertreeNoSources(t *testing.T) {
	if _, err := Supertree(nil); err == nil {
		t.Fatal("empty source list accepted")
	}
}

func TestSupertreeSingleSourceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		src := treegen.Yule(rng, treegen.Alphabet(9))
		got, err := Supertree([]*tree.Tree{src})
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Isomorphic(got, src) {
			t.Fatalf("single-source supertree differs:\n got %v\nwant %v", got, src)
		}
	}
}

func TestSupertreeDisplaysCompatibleSources(t *testing.T) {
	// Split a random binary tree's taxa into two overlapping windows and
	// restrict the tree to each; the supertree of the restrictions must
	// display every input cluster (restricted to its window).
	rng := rand.New(rand.NewSource(6))
	full := treegen.Yule(rng, treegen.Alphabet(10))
	ts := tree.TaxaOf(full)
	restrict := func(keep map[string]bool) *tree.Tree {
		// Prune leaves not in keep, collapsing unary nodes.
		var prune func(n tree.NodeID) *prunedNode
		prune = func(n tree.NodeID) *prunedNode {
			if full.IsLeaf(n) {
				l, _ := full.Label(n)
				if keep[l] {
					return &prunedNode{label: l}
				}
				return nil
			}
			var kids []*prunedNode
			for _, k := range full.Children(n) {
				if p := prune(k); p != nil {
					kids = append(kids, p)
				}
			}
			switch len(kids) {
			case 0:
				return nil
			case 1:
				return kids[0]
			default:
				return &prunedNode{kids: kids}
			}
		}
		root := prune(full.Root())
		b := tree.NewBuilder()
		emitPruned(root, tree.None, b)
		return b.MustBuild()
	}
	alpha := treegen.Alphabet(10)
	keep1 := map[string]bool{}
	keep2 := map[string]bool{}
	for i, l := range alpha {
		if i < 7 {
			keep1[l] = true
		}
		if i >= 3 {
			keep2[l] = true
		}
	}
	s1, s2 := restrict(keep1), restrict(keep2)
	got, err := Supertree([]*tree.Tree{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if labels := got.LeafLabels(); len(labels) != 10 {
		t.Fatalf("supertree taxa = %d", len(labels))
	}
	_ = ts
}

type prunedNode struct {
	label string
	kids  []*prunedNode
}

func emitPruned(p *prunedNode, parent tree.NodeID, b *tree.Builder) {
	var id tree.NodeID
	switch {
	case len(p.kids) == 0 && parent == tree.None:
		b.Root(p.label)
		return
	case len(p.kids) == 0:
		b.Child(parent, p.label)
		return
	case parent == tree.None:
		id = b.RootUnlabeled()
	default:
		id = b.ChildUnlabeled(parent)
	}
	for _, k := range p.kids {
		emitPruned(k, id, b)
	}
}
