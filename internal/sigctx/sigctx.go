// Package sigctx wires OS interrupt signals to context cancellation for
// the long-running CLIs. The contract is the standard two-strike one:
// the first SIGINT/SIGTERM cancels the returned context, letting the
// mining pipeline drain its current batch and flush a final checkpoint
// (the run exits nonzero but resumable); a second signal force-exits
// immediately for pipelines that cannot or will not drain.
package sigctx

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// exitCode is 128+SIGINT, the conventional "killed by interrupt" status.
const exitCode = 130

// WithSignals returns a context cancelled by the first SIGINT or
// SIGTERM. A second signal calls os.Exit(130) without waiting for the
// drain. The returned stop function releases the signal handler and
// background goroutine; call it once the guarded work is done.
func WithSignals(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "\ninterrupt (%v): draining, checkpointing; interrupt again to force exit\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "second interrupt: forcing exit")
			os.Exit(exitCode)
		case <-done:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			cancel()
			close(done)
		})
	}
	return ctx, stop
}
