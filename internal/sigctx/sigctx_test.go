package sigctx

import (
	"context"
	"syscall"
	"testing"
	"time"
)

func TestFirstSignalCancels(t *testing.T) {
	ctx, stop := WithSignals(context.Background())
	defer stop()
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh context already done: %v", err)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled by SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
}

func TestStopReleasesAndIsIdempotent(t *testing.T) {
	ctx, stop := WithSignals(context.Background())
	stop()
	stop() // must not panic on double close
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() after stop = %v, want Canceled", ctx.Err())
	}
	// After stop, signals are back to default disposition for this
	// channel; nothing to assert beyond "no goroutine is stuck", which
	// the race detector and test exit cover.
}
