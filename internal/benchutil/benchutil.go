// Package benchutil provides the small harness shared by the
// paper-reproduction experiments: wall-clock timing, parameter sweeps,
// and aligned table/series printing so every figure of the paper can be
// regenerated as rows of numbers with the same axes.
package benchutil

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Time runs f once and returns its wall-clock duration.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// AvgTime runs f(i) for i in [0, n) and returns the mean duration per
// call. It panics if n < 1.
func AvgTime(n int, f func(i int)) time.Duration {
	if n < 1 {
		panic("benchutil: AvgTime needs n ≥ 1")
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f(i)
	}
	return time.Since(start) / time.Duration(n)
}

// Table accumulates rows and prints them with aligned columns, suitable
// for terminal output of an experiment's results.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; formatting verbs are applied per cell via
// fmt.Sprint on each value.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// fmtDuration renders durations compactly with stable units per
// magnitude so experiment output diffs cleanly.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	printRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.rows {
		printRow(row)
	}
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// FprintCSV writes the table as RFC-4180 CSV (header first), the format
// the experiment harness emits for plotting.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Sweep returns n values from lo to hi inclusive, evenly spaced and
// rounded to ints — the x-axes of the paper's figures. Sweep(1, lo, hi)
// returns just lo.
func Sweep(n, lo, hi int) []int {
	if n <= 1 {
		return []int{lo}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = lo + (hi-lo)*i/(n-1)
	}
	return out
}
