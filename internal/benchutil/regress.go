package benchutil

// Benchmark-regression gating against the repo's recorded BENCH_*.json
// files: a recording session stores ns/op per benchmark, and a gate test
// re-measures the hot path and fails when it has slowed past the
// tolerated factor. The first consumer is the §48 mining core
// (BENCH_5.json, gated by TestBenchMineCoreRegressionGate in
// internal/core).

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchRecord is one recorded benchmark entry.
type BenchRecord struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"B_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// benchFile is the subset of a BENCH_*.json a regression gate reads.
type benchFile struct {
	Benchmarks map[string]BenchRecord `json:"benchmarks"`
}

// LoadBenchRecords reads the "benchmarks" section of a recorded
// BENCH_*.json file.
func LoadBenchRecords(path string) (map[string]BenchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchutil: parsing %s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchutil: %s has no benchmarks section", path)
	}
	return f.Benchmarks, nil
}

// CheckNsOp compares a fresh ns/op measurement against the recorded one
// and returns an error when it regressed beyond the tolerance factor
// (tol = 1.2 tolerates a 20% slowdown — the recording boxes are small
// and shared, so some noise headroom is deliberate). Faster is never an
// error.
func CheckNsOp(name string, measured float64, recorded BenchRecord, tol float64) error {
	if recorded.NsOp <= 0 {
		return fmt.Errorf("benchutil: %s has no recorded ns/op", name)
	}
	if measured > recorded.NsOp*tol {
		return fmt.Errorf("benchutil: %s regressed: %.0f ns/op measured vs %.0f recorded (tolerance %.0f%%)",
			name, measured, recorded.NsOp, (tol-1)*100)
	}
	return nil
}
