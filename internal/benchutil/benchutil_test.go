package benchutil

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTimePositive(t *testing.T) {
	d := Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("Time = %v, want ≥ 1ms", d)
	}
}

func TestAvgTime(t *testing.T) {
	calls := 0
	AvgTime(5, func(i int) {
		if i != calls {
			t.Fatalf("index %d, want %d", i, calls)
		}
		calls++
	})
	if calls != 5 {
		t.Fatalf("calls = %d", calls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AvgTime(0) should panic")
		}
	}()
	AvgTime(0, func(int) {})
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("x", "time")
	tb.AddRow(10, 1500*time.Microsecond)
	tb.AddRow(100000, 2*time.Second)
	tb.AddRow(5, 0.123456)
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + separator + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.500ms") {
		t.Errorf("ms formatting missing:\n%s", out)
	}
	if !strings.Contains(out, "2.000s") {
		t.Errorf("s formatting missing:\n%s", out)
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float formatting missing:\n%s", out)
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableMicroseconds(t *testing.T) {
	tb := NewTable("t")
	tb.AddRow(42 * time.Microsecond)
	var sb strings.Builder
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "42µs") {
		t.Fatalf("µs formatting missing:\n%s", sb.String())
	}
}

func TestFprintCSV(t *testing.T) {
	tb := NewTable("x", "label")
	tb.AddRow(1, "plain")
	tb.AddRow(2, "has, comma")
	var sb strings.Builder
	if err := tb.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "x,label\n1,plain\n2,\"has, comma\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSweep(t *testing.T) {
	if got := Sweep(5, 0, 100); !reflect.DeepEqual(got, []int{0, 25, 50, 75, 100}) {
		t.Fatalf("Sweep = %v", got)
	}
	if got := Sweep(1, 7, 100); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("Sweep(1) = %v", got)
	}
	got := Sweep(7, 5, 35)
	if got[0] != 5 || got[len(got)-1] != 35 {
		t.Fatalf("Sweep endpoints = %v", got)
	}
}
