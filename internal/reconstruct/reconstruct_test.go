package reconstruct

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/seqsim"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestValidateErrors(t *testing.T) {
	if _, err := UPGMA([]string{"a"}, [][]float64{{0}}); !errors.Is(err, ErrTooFewTaxa) {
		t.Errorf("one taxon err = %v", err)
	}
	bad := [][]float64{{0, 1}, {1, 0}, {0, 0}}
	if _, err := UPGMA([]string{"a", "b"}, bad); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("wrong rows err = %v", err)
	}
	asym := [][]float64{{0, 1}, {2, 0}}
	if _, err := NeighborJoining([]string{"a", "b"}, asym); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("asymmetric err = %v", err)
	}
	negDiag := [][]float64{{1, 1}, {1, 0}}
	if _, err := UPGMA([]string{"a", "b"}, negDiag); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("diagonal err = %v", err)
	}
	neg := [][]float64{{0, -1}, {-1, 0}}
	if _, err := UPGMA([]string{"a", "b"}, neg); !errors.Is(err, ErrBadMatrix) {
		t.Errorf("negative err = %v", err)
	}
}

func TestUPGMAUltrametric(t *testing.T) {
	// Ultrametric distances for ((a,b),(c,d)): sisters at 2, cross at 6.
	names := []string{"a", "b", "c", "d"}
	d := [][]float64{
		{0, 2, 6, 6},
		{2, 0, 6, 6},
		{6, 6, 0, 2},
		{6, 6, 2, 0},
	}
	got, err := UPGMA(names, d)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := newick.Parse("((a,b),(c,d));")
	if !tree.Isomorphic(got, want) {
		t.Fatalf("UPGMA = %v, want ((a,b),(c,d))", got)
	}
}

func TestUPGMATwoTaxa(t *testing.T) {
	got, err := UPGMA([]string{"x", "y"}, [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 3 || len(got.LeafLabels()) != 2 {
		t.Fatalf("two-taxon UPGMA = %v", got)
	}
}

func TestNJAdditive(t *testing.T) {
	// Additive (non-clock) distances on the quartet ((a,b),(c,d)) with
	// very unequal rates: a is fast-evolving. UPGMA is fooled by rate
	// variation; NJ is not — the classic separation between the methods.
	names := []string{"a", "b", "c", "d"}
	// Edge lengths: a=10, b=1, c=1, d=1, internal=1.
	d := [][]float64{
		{0, 11, 12, 12},
		{11, 0, 3, 3},
		{12, 3, 0, 2},
		{12, 3, 2, 0},
	}
	got, err := NeighborJoining(names, d)
	if err != nil {
		t.Fatal(err)
	}
	// NJ roots at the final 3-way join; check the ab and cd groupings
	// survive as clusters of the unrooted topology: at least one of
	// {a,b} or {c,d} must be an internal cluster.
	ts := tree.TaxaOf(got)
	ic := tree.InternalClusters(got, ts)
	ab := ts.ClusterOf("a", "b")
	cd := ts.ClusterOf("c", "d")
	_, hasAB := ic[ab.Key()]
	_, hasCD := ic[cd.Key()]
	if !hasAB && !hasCD {
		t.Fatalf("NJ lost the true quartet split: %v", got)
	}
}

func TestNJThreeTaxa(t *testing.T) {
	got, err := NeighborJoining([]string{"a", "b", "c"},
		[][]float64{{0, 2, 3}, {2, 0, 3}, {3, 3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChildren(got.Root()) != 3 {
		t.Fatalf("3-taxon NJ should have trifurcating root: %v", got)
	}
}

func TestPDistance(t *testing.T) {
	a := &seqsim.Alignment{
		Taxa: []string{"x", "y", "z"},
		Seqs: map[string][]byte{
			"x": []byte("AAAA"),
			"y": []byte("AAAT"),
			"z": []byte("TTTT"),
		},
	}
	names, d, err := PDistance(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	if d[0][1] != 0.25 || d[0][2] != 1 || d[1][2] != 0.75 {
		t.Fatalf("d = %v", d)
	}
	if d[1][0] != d[0][1] {
		t.Fatal("asymmetric output")
	}
	bad := &seqsim.Alignment{Taxa: []string{"x"}, Seqs: map[string][]byte{"x": []byte("AZ")}}
	if _, _, err := PDistance(bad); err == nil {
		t.Fatal("invalid alignment accepted")
	}
}

func TestPipelineRecoverTopology(t *testing.T) {
	// End-to-end: simulate a clock-like alignment on a known tree, build
	// the p-distance matrix, and reconstruct with both methods. With a
	// strong signal both must recover the sister pairs of the model tree
	// most of the time; require at least 70% cluster recovery for UPGMA.
	rng := rand.New(rand.NewSource(8))
	taxa := treegen.Alphabet(8)
	recovered, total := 0, 0
	for trial := 0; trial < 10; trial++ {
		model := treegen.Yule(rng, taxa)
		al, err := seqsim.Evolve(rng, model, 600, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		names, d, err := PDistance(al)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UPGMA(names, d)
		if err != nil {
			t.Fatal(err)
		}
		ts := tree.TaxaOf(model)
		want := tree.InternalClusters(model, ts)
		have := tree.InternalClusters(got, ts)
		for k := range want {
			total++
			if _, ok := have[k]; ok {
				recovered++
			}
		}
	}
	if ratio := float64(recovered) / float64(total); ratio < 0.7 {
		t.Fatalf("UPGMA recovered only %.0f%% of true clusters", 100*ratio)
	}
}
