// Package reconstruct builds phylogenies from pairwise distance data:
// UPGMA (average-linkage agglomeration, which assumes a molecular clock)
// and Neighbor-Joining (Saitou & Nei 1987, consistent on any additive
// distance). Together with internal/parsimony these cover the two
// classic reconstruction families the paper's pipeline draws trees from
// — §6 notes that MP and ML methods produce the unrooted trees the
// free-tree extension targets, and distance methods are the third
// standard source of input phylogenies for mining.
package reconstruct

import (
	"errors"
	"fmt"

	"treemine/internal/seqsim"
	"treemine/internal/tree"
)

// Errors reported by the builders.
var (
	// ErrBadMatrix is returned when the distance matrix is not square,
	// not symmetric, has a non-zero diagonal, or has negative entries.
	ErrBadMatrix = errors.New("reconstruct: invalid distance matrix")
	// ErrTooFewTaxa is returned for fewer than two taxa.
	ErrTooFewTaxa = errors.New("reconstruct: need at least 2 taxa")
)

func validate(names []string, d [][]float64) error {
	n := len(names)
	if n < 2 {
		return ErrTooFewTaxa
	}
	if len(d) != n {
		return fmt.Errorf("%w: %d rows for %d taxa", ErrBadMatrix, len(d), n)
	}
	for i := range d {
		if len(d[i]) != n {
			return fmt.Errorf("%w: row %d has %d entries", ErrBadMatrix, i, len(d[i]))
		}
		if d[i][i] != 0 {
			return fmt.Errorf("%w: non-zero diagonal at %d", ErrBadMatrix, i)
		}
		for j := range d[i] {
			if d[i][j] < 0 {
				return fmt.Errorf("%w: negative entry (%d,%d)", ErrBadMatrix, i, j)
			}
			if d[i][j] != d[j][i] {
				return fmt.Errorf("%w: asymmetric at (%d,%d)", ErrBadMatrix, i, j)
			}
		}
	}
	return nil
}

// shape is a parent-pointer scaffold emitted into a tree.Builder once
// construction finishes.
type shape struct {
	label string
	kids  []*shape
}

func emit(s *shape, parent tree.NodeID, b *tree.Builder) {
	var id tree.NodeID
	switch {
	case len(s.kids) == 0 && parent == tree.None:
		id = b.Root(s.label)
	case len(s.kids) == 0:
		id = b.Child(parent, s.label)
	case parent == tree.None:
		id = b.RootUnlabeled()
	default:
		id = b.ChildUnlabeled(parent)
	}
	for _, k := range s.kids {
		emit(k, id, b)
	}
}

// UPGMA reconstructs a rooted binary phylogeny by repeatedly joining the
// closest pair of clusters under average linkage. On ultrametric
// distances (a perfect molecular clock) it recovers the true topology.
func UPGMA(names []string, d [][]float64) (*tree.Tree, error) {
	if err := validate(names, d); err != nil {
		return nil, err
	}
	n := len(names)
	nodes := make([]*shape, n)
	sizes := make([]int, n)
	for i, name := range names {
		nodes[i] = &shape{label: name}
		sizes[i] = 1
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), d[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 1 {
		bi, bj := 0, 1
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if dist[active[i]][active[j]] < dist[active[bi]][active[bj]] {
					bi, bj = i, j
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := &shape{kids: []*shape{nodes[a], nodes[b]}}
		// Average-linkage update, stored in slot a.
		for _, k := range active {
			if k == a || k == b {
				continue
			}
			dist[a][k] = (dist[a][k]*float64(sizes[a]) + dist[b][k]*float64(sizes[b])) /
				float64(sizes[a]+sizes[b])
			dist[k][a] = dist[a][k]
		}
		nodes[a] = merged
		sizes[a] += sizes[b]
		active[bj] = active[len(active)-1]
		active = active[:len(active)-1]
	}
	b := tree.NewBuilder()
	emit(nodes[active[0]], tree.None, b)
	return b.Build()
}

// NeighborJoining reconstructs a phylogeny with the Saitou–Nei
// neighbor-joining criterion. NJ trees are inherently unrooted; the
// returned rooted tree places the root at the final three-way join (the
// conventional presentation), leaving a trifurcating root for n ≥ 3.
// On additive distances NJ recovers the true topology.
func NeighborJoining(names []string, d [][]float64) (*tree.Tree, error) {
	if err := validate(names, d); err != nil {
		return nil, err
	}
	n := len(names)
	nodes := make([]*shape, n)
	for i, name := range names {
		nodes[i] = &shape{label: name}
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), d[i]...)
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 3 {
		m := len(active)
		// Row sums over active entries.
		r := make(map[int]float64, m)
		for _, i := range active {
			for _, j := range active {
				r[i] += dist[i][j]
			}
		}
		// Minimize the Q criterion.
		bi, bj := 0, 1
		bestQ := 0.0
		first := true
		for x := 0; x < m; x++ {
			for y := x + 1; y < m; y++ {
				i, j := active[x], active[y]
				q := float64(m-2)*dist[i][j] - r[i] - r[j]
				if first || q < bestQ {
					bestQ, bi, bj, first = q, x, y, false
				}
			}
		}
		a, b := active[bi], active[bj]
		merged := &shape{kids: []*shape{nodes[a], nodes[b]}}
		for _, k := range active {
			if k == a || k == b {
				continue
			}
			nd := (dist[a][k] + dist[b][k] - dist[a][b]) / 2
			if nd < 0 {
				nd = 0
			}
			dist[a][k] = nd
			dist[k][a] = nd
		}
		nodes[a] = merged
		active[bj] = active[len(active)-1]
		active = active[:len(active)-1]
	}
	root := &shape{}
	for _, i := range active {
		root.kids = append(root.kids, nodes[i])
	}
	if len(root.kids) == 1 {
		root = root.kids[0]
	}
	b := tree.NewBuilder()
	emit(root, tree.None, b)
	return b.Build()
}

// PDistance returns the observed-proportion (Hamming) distance matrix of
// an alignment, the standard input to UPGMA/NJ on sequence data.
func PDistance(a *seqsim.Alignment) ([]string, [][]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}
	n := a.NumTaxa()
	sites := a.Len()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		si := a.Seqs[a.Taxa[i]]
		for j := i + 1; j < n; j++ {
			sj := a.Seqs[a.Taxa[j]]
			diff := 0
			for k := 0; k < sites; k++ {
				if si[k] != sj[k] {
					diff++
				}
			}
			p := 0.0
			if sites > 0 {
				p = float64(diff) / float64(sites)
			}
			d[i][j], d[j][i] = p, p
		}
	}
	return a.Taxa, d, nil
}
