package kernel

import (
	"context"
	"errors"
	"testing"
	"time"

	"treemine/internal/faults"
	"treemine/internal/guard"
)

// TestFindCtxCancelled: both search regimes observe cancellation — the
// exact product walk and the descent fallback.
func TestFindCtxCancelled(t *testing.T) {
	groups := groupsFixture(3, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FindCtx(ctx, groups, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("exact FindCtx error = %v, want Canceled", err)
	}
	cfg := DefaultConfig()
	cfg.ExactBudget = 1 // force the descent fallback
	if _, err := FindCtx(ctx, groups, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("descent FindCtx error = %v, want Canceled", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := FindCtx(dctx, groups, DefaultConfig()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline FindCtx error = %v, want DeadlineExceeded", err)
	}
}

// TestFindCtxProfilePanicContained: a panic injected into the profile
// workers under FindCtx surfaces as an error, not a crash.
func TestFindCtxProfilePanicContained(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	groups := groupsFixture(5, 3, 4)
	faults.Enable(faults.ProfileWorker, faults.Spec{Mode: faults.ModePanic, After: 3, Count: 1})
	_, err := FindCtx(context.Background(), groups, DefaultConfig())
	if err == nil {
		t.Fatal("injected profile panic swallowed")
	}
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("error = %v, want wrapped guard.ErrPanic", err)
	}

	// Disarmed, the same call succeeds.
	faults.Reset()
	if _, err := FindCtx(context.Background(), groups, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}
