// Package kernel finds kernel trees from groups of phylogenies (§5.3 of
// the paper): given s groups of trees — each group typically the equally
// parsimonious trees for one taxon set, with different groups sharing
// some but not all taxa — it selects one tree per group so that the
// average pairwise cousin-based tree distance among the selected trees is
// minimized. The paper proposes the selected trees as a starting point
// for supertree construction, precisely because the cousin-based distance
// (unlike COMPONENT's measures) tolerates unequal taxon sets.
package kernel

import (
	"context"
	"errors"
	"math/rand"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// ErrEmptyGroup is returned when any group contains no trees.
var ErrEmptyGroup = errors.New("kernel: empty group")

// Config tunes the kernel search.
type Config struct {
	// Variant selects the tree-distance measure; the paper's experiment
	// uses VariantDistOccur.
	Variant core.Variant
	// Mining options for the per-tree cousin pair items.
	Options core.Options
	// ExactBudget caps the number of tree combinations the exact search
	// may enumerate; larger inputs fall back to coordinate descent.
	ExactBudget int
	// Restarts for the coordinate-descent fallback.
	Restarts int
	// Seed drives the fallback's randomized restarts.
	Seed int64
}

// DefaultConfig mirrors the paper's kernel experiment: tdist_{occ,dist}
// with the Table 2 mining defaults.
func DefaultConfig() Config {
	return Config{
		Variant:     core.VariantDistOccur,
		Options:     core.DefaultOptions(),
		ExactBudget: 1_000_000,
		Restarts:    8,
		Seed:        1,
	}
}

// Result is the outcome of a kernel search.
type Result struct {
	// Choice[g] is the index of the selected tree within group g.
	Choice []int
	// AvgDist is the average pairwise tree distance among the selected
	// trees (0 when there are fewer than two groups).
	AvgDist float64
	// Exact reports whether the result came from exhaustive enumeration
	// (true) or the coordinate-descent fallback (false).
	Exact bool
}

// Find selects one tree per group minimizing the average pairwise
// distance. Every tree is mined exactly once into a frozen posting-list
// Profile (one shared symbol table across all groups when the options
// are packable), and the full pairwise distance matrix is filled up
// front by parallel merge-joins — so the search itself, exact or
// descent, only ever reads a flat array. The selected trees and
// distances are identical to evaluating TDist per candidate pair,
// pinned by the differential test in kernel_test.go.
func Find(groups [][]*tree.Tree, cfg Config) (*Result, error) {
	return FindCtx(context.Background(), groups, cfg)
}

// FindCtx is Find under a context: the profiling and matrix-fill phases
// inherit the core engine's cooperative cancellation and panic
// containment, the exact enumeration checks ctx between top-level
// branches, and the descent checks it between restarts — so even
// budget-sized searches return ctx.Err() promptly.
func FindCtx(ctx context.Context, groups [][]*tree.Tree, cfg Config) (*Result, error) {
	s := len(groups)
	if s == 0 {
		return &Result{}, nil
	}
	for _, g := range groups {
		if len(g) == 0 {
			return nil, ErrEmptyGroup
		}
	}
	if s == 1 {
		return &Result{Choice: []int{0}, AvgDist: 0, Exact: true}, nil
	}
	// Flatten the groups, profile each tree once, and precompute all
	// pairwise distances; off[gi]+ti is tree ti of group gi in the flat
	// ordering.
	off := make([]int, s)
	var flat []*tree.Tree
	for gi, g := range groups {
		off[gi] = len(flat)
		flat = append(flat, g...)
	}
	profiles, err := core.BuildProfilesCtx(ctx, flat, cfg.Variant, cfg.Options, 0)
	if err != nil {
		return nil, err
	}
	dm, err := core.ProfileDistMatrixCtx(ctx, profiles, 0)
	if err != nil {
		return nil, err
	}
	dist := func(gi, ti, gj, tj int) float64 {
		return dm.At(off[gi]+ti, off[gj]+tj)
	}

	product := 1
	exact := true
	for _, g := range groups {
		product *= len(g)
		if product > cfg.ExactBudget {
			exact = false
			break
		}
	}

	var best *Result
	if exact {
		best, err = findExact(ctx, groups, dist)
		if err != nil {
			return nil, err
		}
		best.Exact = true
	} else {
		best, err = findDescent(ctx, groups, dist, cfg)
		if err != nil {
			return nil, err
		}
		best.Exact = false
	}
	return best, nil
}

// findExact enumerates the full cross product with partial-sum pruning,
// checking ctx once per top-level branch (each branch is a bounded slice
// of the cross product, so cancellation lands within one of them).
func findExact(ctx context.Context, groups [][]*tree.Tree, dist func(gi, ti, gj, tj int) float64) (*Result, error) {
	s := len(groups)
	pairs := float64(s*(s-1)) / 2
	bestSum := -1.0
	bestChoice := make([]int, s)
	cur := make([]int, s)
	var rec func(g int, sum float64) error
	rec = func(g int, sum float64) error {
		if bestSum >= 0 && sum >= bestSum {
			return nil // distances are non-negative: prune
		}
		if g == s {
			bestSum = sum
			copy(bestChoice, cur)
			return nil
		}
		for ti := range groups[g] {
			if g <= 1 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			cur[g] = ti
			add := 0.0
			for gj := 0; gj < g; gj++ {
				add += dist(g, ti, gj, cur[gj])
			}
			if err := rec(g+1, sum+add); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, err
	}
	return &Result{Choice: bestChoice, AvgDist: bestSum / pairs}, nil
}

// findDescent runs randomized coordinate descent: starting from a random
// choice, repeatedly re-optimize one group's selection holding the others
// fixed, until no single-group change improves; keep the best of several
// restarts.
//
// The descent keeps a per-(group, tree) distance-sum cache: sums[g][ti]
// is Σ over the other groups of the distance from tree ti of group g to
// those groups' current selections. Re-optimizing a group is then an
// argmin over its cached row, and an accepted change updates every other
// row by the two affected terms — O(Σ|g|) per accepted move instead of
// recomputing s−1 distances per candidate per visit.
func findDescent(ctx context.Context, groups [][]*tree.Tree, dist func(gi, ti, gj, tj int) float64, cfg Config) (*Result, error) {
	s := len(groups)
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := float64(s*(s-1)) / 2
	score := func(choice []int) float64 {
		sum := 0.0
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				sum += dist(i, choice[i], j, choice[j])
			}
		}
		return sum
	}
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	sums := make([][]float64, s)
	for g := range sums {
		sums[g] = make([]float64, len(groups[g]))
	}
	var bestChoice []int
	bestSum := -1.0
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		choice := make([]int, s)
		for g := range choice {
			choice[g] = rng.Intn(len(groups[g]))
		}
		for g := 0; g < s; g++ {
			for ti := range groups[g] {
				sum := 0.0
				for gj := 0; gj < s; gj++ {
					if gj != g {
						sum += dist(g, ti, gj, choice[gj])
					}
				}
				sums[g][ti] = sum
			}
		}
		for improved := true; improved; {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			improved = false
			for g := 0; g < s; g++ {
				curBest, curIdx := -1.0, choice[g]
				for ti, sum := range sums[g] {
					if curBest < 0 || sum < curBest {
						curBest, curIdx = sum, ti
					}
				}
				if curIdx != choice[g] {
					old := choice[g]
					choice[g] = curIdx
					for h := 0; h < s; h++ {
						if h == g {
							continue
						}
						for ti := range sums[h] {
							sums[h][ti] += dist(h, ti, g, curIdx) - dist(h, ti, g, old)
						}
					}
					improved = true
				}
			}
		}
		// The reported sum is recomputed fresh so cache drift can never
		// reach the result.
		if total := score(choice); bestSum < 0 || total < bestSum {
			bestSum = total
			bestChoice = append([]int(nil), choice...)
		}
	}
	return &Result{Choice: bestChoice, AvgDist: bestSum / pairs}, nil
}
