package kernel

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// groupsFixture builds s groups of k random phylogenies over overlapping
// taxon windows.
func groupsFixture(seed int64, s, k int) [][]*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	all := treegen.Alphabet(40)
	groups := make([][]*tree.Tree, s)
	for g := 0; g < s; g++ {
		taxa := all[g*5 : g*5+20] // consecutive windows share 15 taxa
		for i := 0; i < k; i++ {
			groups[g] = append(groups[g], treegen.Yule(rng, taxa))
		}
	}
	return groups
}

func TestFindEmptyAndSingle(t *testing.T) {
	res, err := Find(nil, DefaultConfig())
	if err != nil || len(res.Choice) != 0 {
		t.Fatalf("Find(nil) = %+v, %v", res, err)
	}
	groups := groupsFixture(1, 1, 3)
	res, err = Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choice) != 1 || res.AvgDist != 0 || !res.Exact {
		t.Fatalf("single group result = %+v", res)
	}
}

func TestFindEmptyGroupError(t *testing.T) {
	groups := [][]*tree.Tree{{}, nil}
	if _, err := Find(groups, DefaultConfig()); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v, want ErrEmptyGroup", err)
	}
}

func TestFindPicksIdenticalTrees(t *testing.T) {
	// Two groups; one tree of each group is identical across groups, the
	// others are scrambles. The kernel must select the identical pair
	// (distance 0).
	rng := rand.New(rand.NewSource(3))
	taxa := treegen.Alphabet(15)
	shared := treegen.Yule(rng, taxa)
	groups := [][]*tree.Tree{
		{treegen.Yule(rng, taxa), shared, treegen.Yule(rng, taxa)},
		{treegen.Yule(rng, taxa), treegen.Yule(rng, taxa), shared.Clone()},
	}
	res, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small product should use exact search")
	}
	if res.AvgDist != 0 {
		t.Fatalf("AvgDist = %v, want 0", res.AvgDist)
	}
	if res.Choice[0] != 1 || res.Choice[1] != 2 {
		t.Fatalf("Choice = %v, want [1 2]", res.Choice)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	groups := groupsFixture(7, 3, 4)
	cfg := DefaultConfig()
	res, err := Find(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over all 64 combinations.
	items := make([][]core.ItemSet, len(groups))
	for gi, g := range groups {
		for _, tr := range g {
			items[gi] = append(items[gi], core.Mine(tr, cfg.Options))
		}
	}
	bestSum := -1.0
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				sum := core.TDistItems(items[0][a], items[1][b], cfg.Variant) +
					core.TDistItems(items[0][a], items[2][c], cfg.Variant) +
					core.TDistItems(items[1][b], items[2][c], cfg.Variant)
				if bestSum < 0 || sum < bestSum {
					bestSum = sum
				}
			}
		}
	}
	want := bestSum / 3
	if diff := res.AvgDist - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AvgDist = %v, brute force = %v", res.AvgDist, want)
	}
}

func TestDescentFallback(t *testing.T) {
	groups := groupsFixture(11, 3, 5)
	cfg := DefaultConfig()
	cfg.ExactBudget = 10 // force fallback (125 combos > 10)
	res, err := Find(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("expected fallback search")
	}
	// Fallback must not beat exact (sanity) and must be within 2x.
	exact, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDist < exact.AvgDist-1e-12 {
		t.Fatalf("fallback %v beat exact %v", res.AvgDist, exact.AvgDist)
	}
	if exact.AvgDist > 0 && res.AvgDist > 2*exact.AvgDist {
		t.Fatalf("fallback %v more than 2x exact %v", res.AvgDist, exact.AvgDist)
	}
}

func TestFindDeterministic(t *testing.T) {
	groups := groupsFixture(13, 2, 3)
	a, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDist != b.AvgDist || a.Choice[0] != b.Choice[0] || a.Choice[1] != b.Choice[1] {
		t.Fatalf("Find not deterministic: %+v vs %+v", a, b)
	}
}
