package kernel

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// groupsFixture builds s groups of k random phylogenies over overlapping
// taxon windows.
func groupsFixture(seed int64, s, k int) [][]*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	all := treegen.Alphabet(40)
	groups := make([][]*tree.Tree, s)
	for g := 0; g < s; g++ {
		taxa := all[g*5 : g*5+20] // consecutive windows share 15 taxa
		for i := 0; i < k; i++ {
			groups[g] = append(groups[g], treegen.Yule(rng, taxa))
		}
	}
	return groups
}

func TestFindEmptyAndSingle(t *testing.T) {
	res, err := Find(nil, DefaultConfig())
	if err != nil || len(res.Choice) != 0 {
		t.Fatalf("Find(nil) = %+v, %v", res, err)
	}
	groups := groupsFixture(1, 1, 3)
	res, err = Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choice) != 1 || res.AvgDist != 0 || !res.Exact {
		t.Fatalf("single group result = %+v", res)
	}
}

func TestFindEmptyGroupError(t *testing.T) {
	groups := [][]*tree.Tree{{}, nil}
	if _, err := Find(groups, DefaultConfig()); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("err = %v, want ErrEmptyGroup", err)
	}
}

func TestFindPicksIdenticalTrees(t *testing.T) {
	// Two groups; one tree of each group is identical across groups, the
	// others are scrambles. The kernel must select the identical pair
	// (distance 0).
	rng := rand.New(rand.NewSource(3))
	taxa := treegen.Alphabet(15)
	shared := treegen.Yule(rng, taxa)
	groups := [][]*tree.Tree{
		{treegen.Yule(rng, taxa), shared, treegen.Yule(rng, taxa)},
		{treegen.Yule(rng, taxa), treegen.Yule(rng, taxa), shared.Clone()},
	}
	res, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small product should use exact search")
	}
	if res.AvgDist != 0 {
		t.Fatalf("AvgDist = %v, want 0", res.AvgDist)
	}
	if res.Choice[0] != 1 || res.Choice[1] != 2 {
		t.Fatalf("Choice = %v, want [1 2]", res.Choice)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	groups := groupsFixture(7, 3, 4)
	cfg := DefaultConfig()
	res, err := Find(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over all 64 combinations.
	items := make([][]core.ItemSet, len(groups))
	for gi, g := range groups {
		for _, tr := range g {
			items[gi] = append(items[gi], core.Mine(tr, cfg.Options))
		}
	}
	bestSum := -1.0
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				sum := core.TDistItems(items[0][a], items[1][b], cfg.Variant) +
					core.TDistItems(items[0][a], items[2][c], cfg.Variant) +
					core.TDistItems(items[1][b], items[2][c], cfg.Variant)
				if bestSum < 0 || sum < bestSum {
					bestSum = sum
				}
			}
		}
	}
	want := bestSum / 3
	if diff := res.AvgDist - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("AvgDist = %v, brute force = %v", res.AvgDist, want)
	}
}

func TestDescentFallback(t *testing.T) {
	groups := groupsFixture(11, 3, 5)
	cfg := DefaultConfig()
	cfg.ExactBudget = 10 // force fallback (125 combos > 10)
	res, err := Find(groups, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("expected fallback search")
	}
	// Fallback must not beat exact (sanity) and must be within 2x.
	exact, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDist < exact.AvgDist-1e-12 {
		t.Fatalf("fallback %v beat exact %v", res.AvgDist, exact.AvgDist)
	}
	if exact.AvgDist > 0 && res.AvgDist > 2*exact.AvgDist {
		t.Fatalf("fallback %v more than 2x exact %v", res.AvgDist, exact.AvgDist)
	}
}

func TestFindDeterministic(t *testing.T) {
	groups := groupsFixture(13, 2, 3)
	a, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find(groups, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgDist != b.AvgDist || a.Choice[0] != b.Choice[0] || a.Choice[1] != b.Choice[1] {
		t.Fatalf("Find not deterministic: %+v vs %+v", a, b)
	}
}

// findRef is the pre-engine Find, verbatim: per-tree ISets/ItemSets,
// lazily memoized TDistISets/TDistItems per pair, and a descent that
// recomputes every candidate sum freshly. The profile-engine Find must
// produce identical choices, distances, and exactness flags.
func findRef(groups [][]*tree.Tree, cfg Config) *Result {
	s := len(groups)
	var rawDist func(gi, ti, gj, tj int) float64
	if cfg.Options.MaxDist <= core.MaxPackedDist {
		syms := core.NewSymbols()
		for _, g := range groups {
			for _, t := range g {
				syms.InternTree(t)
			}
		}
		isets := make([][]core.ISet, s)
		for gi, g := range groups {
			isets[gi] = make([]core.ISet, len(g))
			for ti, t := range g {
				isets[gi][ti] = core.MineISet(t, cfg.Options, syms)
			}
		}
		rawDist = func(gi, ti, gj, tj int) float64 {
			return core.TDistISets(isets[gi][ti], isets[gj][tj], cfg.Variant)
		}
	} else {
		items := make([][]core.ItemSet, s)
		for gi, g := range groups {
			items[gi] = make([]core.ItemSet, len(g))
			for ti, t := range g {
				items[gi][ti] = core.Mine(t, cfg.Options)
			}
		}
		rawDist = func(gi, ti, gj, tj int) float64 {
			return core.TDistItems(items[gi][ti], items[gj][tj], cfg.Variant)
		}
	}
	type pairKey struct{ gi, ti, gj, tj int }
	memo := map[pairKey]float64{}
	dist := func(gi, ti, gj, tj int) float64 {
		if gi > gj || (gi == gj && ti > tj) {
			gi, ti, gj, tj = gj, tj, gi, ti
		}
		k := pairKey{gi, ti, gj, tj}
		if d, ok := memo[k]; ok {
			return d
		}
		d := rawDist(gi, ti, gj, tj)
		memo[k] = d
		return d
	}
	product := 1
	exact := true
	for _, g := range groups {
		product *= len(g)
		if product > cfg.ExactBudget {
			exact = false
			break
		}
	}
	if exact {
		res, err := findExact(context.Background(), groups, dist)
		if err != nil {
			panic(err) // Background ctx: unreachable
		}
		res.Exact = true
		return res
	}
	// Pre-engine descent: candidate sums recomputed freshly each visit.
	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := float64(s*(s-1)) / 2
	score := func(choice []int) float64 {
		sum := 0.0
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				sum += dist(i, choice[i], j, choice[j])
			}
		}
		return sum
	}
	restarts := cfg.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var bestChoice []int
	bestSum := -1.0
	for r := 0; r < restarts; r++ {
		choice := make([]int, s)
		for g := range choice {
			choice[g] = rng.Intn(len(groups[g]))
		}
		for improved := true; improved; {
			improved = false
			for g := 0; g < s; g++ {
				curBest, curIdx := -1.0, choice[g]
				for ti := range groups[g] {
					sum := 0.0
					for gj := 0; gj < s; gj++ {
						if gj != g {
							sum += dist(g, ti, gj, choice[gj])
						}
					}
					if curBest < 0 || sum < curBest {
						curBest, curIdx = sum, ti
					}
				}
				if curIdx != choice[g] {
					choice[g] = curIdx
					improved = true
				}
			}
		}
		if total := score(choice); bestSum < 0 || total < bestSum {
			bestSum = total
			bestChoice = append([]int(nil), choice...)
		}
	}
	return &Result{Choice: bestChoice, AvgDist: bestSum / pairs, Exact: false}
}

// TestFindMatchesReference is the differential pin for the profile
// rewire: across fixed seeds, group shapes, variants, the packable
// boundary, and both search regimes (exact, and descent forced by a
// tiny budget), Find returns exactly the reference's choices, average
// distance, and exactness.
func TestFindMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		s := int(rng.Int63n(4)) + 2
		k := int(rng.Int63n(4)) + 1
		groups := groupsFixture(seed, s, k)
		for _, maxD := range []core.Dist{core.D(3), core.MaxPackedDist + 4} {
			for _, budget := range []int{1_000_000, 1} {
				cfg := DefaultConfig()
				cfg.Options.MaxDist = maxD
				cfg.ExactBudget = budget
				cfg.Variant = []core.Variant{core.VariantLabel, core.VariantDist,
					core.VariantOccur, core.VariantDistOccur}[seed%4]
				got, err := Find(groups, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := findRef(groups, cfg)
				if !reflect.DeepEqual(got.Choice, want.Choice) {
					t.Fatalf("seed=%d maxD=%v budget=%d: Choice %v != %v",
						seed, maxD, budget, got.Choice, want.Choice)
				}
				if got.AvgDist != want.AvgDist || got.Exact != want.Exact {
					t.Fatalf("seed=%d maxD=%v budget=%d: (%v, %v) != (%v, %v)",
						seed, maxD, budget, got.AvgDist, got.Exact, want.AvgDist, want.Exact)
				}
			}
		}
	}
}
