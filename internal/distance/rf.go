// Package distance implements the Robinson–Foulds distance, the classic
// cluster-based phylogenetic distance implemented by the COMPONENT tool
// the paper contrasts with (§5.3). RF requires both trees to be over the
// same taxa — exactly the limitation that motivates the paper's
// cousin-based tree distance, which has no such requirement.
package distance

import (
	"errors"
	"fmt"

	"treemine/internal/tree"
)

// ErrTaxaMismatch is returned when the trees have different leaf label
// sets; Robinson–Foulds is undefined in that case.
var ErrTaxaMismatch = errors.New("distance: Robinson–Foulds requires identical taxa")

// RF returns the Robinson–Foulds distance between two phylogenies over
// the same taxa: the size of the symmetric difference of their
// non-trivial cluster sets.
func RF(t1, t2 *tree.Tree) (int, error) {
	l1, l2 := t1.LeafLabels(), t2.LeafLabels()
	if len(l1) != len(l2) {
		return 0, fmt.Errorf("%w (%d vs %d taxa)", ErrTaxaMismatch, len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			return 0, fmt.Errorf("%w (%q vs %q)", ErrTaxaMismatch, l1[i], l2[i])
		}
	}
	ts := tree.TaxaOf(t1)
	c1 := tree.InternalClusters(t1, ts)
	c2 := tree.InternalClusters(t2, ts)
	d := 0
	for k := range c1 {
		if _, ok := c2[k]; !ok {
			d++
		}
	}
	for k := range c2 {
		if _, ok := c1[k]; !ok {
			d++
		}
	}
	return d, nil
}

// RFNormalized returns RF scaled to [0, 1] by the total number of
// non-trivial clusters in both trees. Two trees with no non-trivial
// clusters (stars) are at distance 0.
func RFNormalized(t1, t2 *tree.Tree) (float64, error) {
	d, err := RF(t1, t2)
	if err != nil {
		return 0, err
	}
	ts := tree.TaxaOf(t1)
	total := len(tree.InternalClusters(t1, ts)) + len(tree.InternalClusters(t2, ts))
	if total == 0 {
		return 0, nil
	}
	return float64(d) / float64(total), nil
}
