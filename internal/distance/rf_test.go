package distance

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRFIdentical(t *testing.T) {
	tr := parse(t, "((a,b),((c,d),e));")
	if d, err := RF(tr, tr.Clone()); err != nil || d != 0 {
		t.Fatalf("RF = %d, %v; want 0", d, err)
	}
	if d, err := RFNormalized(tr, tr.Clone()); err != nil || d != 0 {
		t.Fatalf("RFNormalized = %v, %v; want 0", d, err)
	}
}

func TestRFKnownValue(t *testing.T) {
	// t1 clusters: {a,b}, {a,b,c}; t2 clusters: {a,b}, {c,d}.
	// Symmetric difference: {a,b,c}, {c,d} → RF = 2.
	t1 := parse(t, "(((a,b),c),d);")
	t2 := parse(t, "((a,b),(c,d));")
	d, err := RF(t1, t2)
	if err != nil || d != 2 {
		t.Fatalf("RF = %d, %v; want 2", d, err)
	}
	n, err := RFNormalized(t1, t2)
	if err != nil || n != 0.5 {
		t.Fatalf("RFNormalized = %v, %v; want 0.5", n, err)
	}
}

func TestRFMaximal(t *testing.T) {
	// Completely conflicting resolutions: every cluster differs.
	t1 := parse(t, "((a,b),(c,d));")
	t2 := parse(t, "((a,c),(b,d));")
	d, err := RF(t1, t2)
	if err != nil || d != 4 {
		t.Fatalf("RF = %d, %v; want 4", d, err)
	}
	n, err := RFNormalized(t1, t2)
	if err != nil || n != 1 {
		t.Fatalf("RFNormalized = %v, %v; want 1", n, err)
	}
}

func TestRFStars(t *testing.T) {
	t1 := parse(t, "(a,b,c,d);")
	t2 := parse(t, "(a,b,c,d);")
	if d, err := RFNormalized(t1, t2); err != nil || d != 0 {
		t.Fatalf("RFNormalized(stars) = %v, %v", d, err)
	}
}

func TestRFTaxaMismatch(t *testing.T) {
	t1 := parse(t, "((a,b),c);")
	t2 := parse(t, "((a,b),d);")
	if _, err := RF(t1, t2); !errors.Is(err, ErrTaxaMismatch) {
		t.Fatalf("err = %v, want ErrTaxaMismatch", err)
	}
	t3 := parse(t, "((a,b),(c,d));")
	if _, err := RFNormalized(t1, t3); !errors.Is(err, ErrTaxaMismatch) {
		t.Fatalf("err = %v, want ErrTaxaMismatch", err)
	}
}

func TestRFSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	taxa := treegen.Alphabet(12)
	for trial := 0; trial < 20; trial++ {
		t1 := treegen.Yule(rng, taxa)
		t2 := treegen.Yule(rng, taxa)
		d12, err1 := RF(t1, t2)
		d21, err2 := RF(t2, t1)
		if err1 != nil || err2 != nil || d12 != d21 {
			t.Fatalf("RF not symmetric: %d/%d (%v/%v)", d12, d21, err1, err2)
		}
	}
}
