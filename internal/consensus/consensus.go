// Package consensus implements the five classical consensus-tree methods
// the paper evaluates with its cousin-pair similarity score (§5.2):
// strict [Day 1985], majority-rule [Margush & McMorris 1981], semi-strict
// (combinable components) [Bremer 1990], Adams [Adams 1972], and Nelson
// [Nelson 1979].
//
// All methods take a non-empty set of phylogenies over the same taxa
// (labeled leaves, unlabeled internal nodes) and return a single
// consensus phylogeny over those taxa.
package consensus

import (
	"errors"
	"fmt"
	"sort"

	"treemine/internal/tree"
)

// Errors reported by the consensus methods.
var (
	// ErrNoTrees is returned when the input set is empty.
	ErrNoTrees = errors.New("consensus: no input trees")
	// ErrTaxaMismatch is returned when the input trees do not all have
	// the same leaf label set.
	ErrTaxaMismatch = errors.New("consensus: input trees have different taxa")
	// ErrDuplicateTaxa is returned when a tree carries the same leaf
	// label twice; clusters are ill-defined in that case.
	ErrDuplicateTaxa = errors.New("consensus: duplicate leaf label in input tree")
)

// Method identifies one of the five consensus methods.
type Method int

const (
	MethodStrict Method = iota
	MethodSemiStrict
	MethodMajority
	MethodNelson
	MethodAdams
)

// Methods returns all five methods in the order the paper lists them.
func Methods() []Method {
	return []Method{MethodAdams, MethodStrict, MethodMajority, MethodSemiStrict, MethodNelson}
}

// String returns the method's conventional name.
func (m Method) String() string {
	switch m {
	case MethodStrict:
		return "strict"
	case MethodSemiStrict:
		return "semi-strict"
	case MethodMajority:
		return "majority"
	case MethodNelson:
		return "Nelson"
	case MethodAdams:
		return "Adams"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Compute applies the method to the trees.
func Compute(m Method, trees []*tree.Tree) (*tree.Tree, error) {
	switch m {
	case MethodStrict:
		return Strict(trees)
	case MethodSemiStrict:
		return SemiStrict(trees)
	case MethodMajority:
		return Majority(trees)
	case MethodNelson:
		return Nelson(trees)
	case MethodAdams:
		return Adams(trees)
	default:
		return nil, fmt.Errorf("consensus: unknown method %d", int(m))
	}
}

// validate checks the input set and returns the common TaxonSet.
func validate(trees []*tree.Tree) (*tree.TaxonSet, error) {
	if len(trees) == 0 {
		return nil, ErrNoTrees
	}
	ts := tree.TaxaOf(trees[0])
	for i, t := range trees {
		leaves := t.Leaves()
		labels := t.LeafLabels()
		if len(labels) != len(leaves) {
			return nil, fmt.Errorf("%w (tree %d)", ErrDuplicateTaxa, i)
		}
		if i == 0 {
			continue
		}
		if len(labels) != ts.Len() {
			return nil, fmt.Errorf("%w (tree %d has %d taxa, tree 0 has %d)",
				ErrTaxaMismatch, i, len(labels), ts.Len())
		}
		for _, l := range labels {
			if _, ok := ts.Index(l); !ok {
				return nil, fmt.Errorf("%w (tree %d has unexpected taxon %q)",
					ErrTaxaMismatch, i, l)
			}
		}
	}
	return ts, nil
}

// countedCluster is a cluster with its replication count across the
// input trees.
type countedCluster struct {
	c     tree.Cluster
	count int
}

// clusterCounts returns every distinct non-trivial internal cluster
// appearing in the trees with the number of trees containing it, sorted
// by decreasing count then decreasing size for deterministic iteration.
func clusterCounts(trees []*tree.Tree, ts *tree.TaxonSet) []countedCluster {
	counts := map[string]*countedCluster{}
	for _, t := range trees {
		for key, c := range tree.InternalClusters(t, ts) {
			if cc, ok := counts[key]; ok {
				cc.count++
			} else {
				counts[key] = &countedCluster{c: c, count: 1}
			}
		}
	}
	out := make([]countedCluster, 0, len(counts))
	for _, cc := range counts {
		out = append(out, *cc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		if ci, cj := out[i].c.Count(), out[j].c.Count(); ci != cj {
			return ci > cj
		}
		return out[i].c.Key() < out[j].c.Key()
	})
	return out
}

// buildFromClusters assembles a phylogeny from a pairwise-compatible
// cluster set over ts: every cluster becomes an internal node nested
// under the smallest cluster properly containing it, and every taxon
// becomes a leaf under the smallest cluster containing it. The full
// taxon set is always added as the root.
func buildFromClusters(ts *tree.TaxonSet, clusters []tree.Cluster) *tree.Tree {
	full := ts.Full()
	nested := make([]tree.Cluster, 0, len(clusters)+1)
	nested = append(nested, full)
	seen := map[string]bool{full.Key(): true}
	for _, c := range clusters {
		if k := c.Key(); !seen[k] && c.Count() >= 2 {
			seen[k] = true
			nested = append(nested, c)
		}
	}
	// Parents must be built before children: sort by decreasing size.
	sort.Slice(nested, func(i, j int) bool {
		if ci, cj := nested[i].Count(), nested[j].Count(); ci != cj {
			return ci > cj
		}
		return nested[i].Key() < nested[j].Key()
	})
	b := tree.NewBuilder()
	ids := make([]tree.NodeID, len(nested))
	ids[0] = b.RootUnlabeled()
	for i := 1; i < len(nested); i++ {
		// The smallest already-placed cluster containing nested[i]; the
		// later the entry in the sorted order, the smaller it is.
		parent := 0
		for j := i - 1; j >= 1; j-- {
			if nested[i].SubsetOf(nested[j]) {
				parent = j
				break
			}
		}
		ids[i] = b.ChildUnlabeled(ids[parent])
	}
	for ti := 0; ti < ts.Len(); ti++ {
		parent := 0
		for j := len(nested) - 1; j >= 1; j-- {
			if nested[j].Has(ti) {
				parent = j
				break
			}
		}
		b.Child(ids[parent], ts.Name(ti))
	}
	return b.MustBuild()
}

// Strict returns the strict consensus: exactly the clusters present in
// every input tree.
func Strict(trees []*tree.Tree) (*tree.Tree, error) {
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	var keep []tree.Cluster
	for _, cc := range clusterCounts(trees, ts) {
		if cc.count == len(trees) {
			keep = append(keep, cc.c)
		}
	}
	return buildFromClusters(ts, keep), nil
}

// Majority returns the majority-rule consensus: the clusters present in
// strictly more than half of the input trees. Majority clusters are
// pairwise compatible, so the tree always exists.
func Majority(trees []*tree.Tree) (*tree.Tree, error) {
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	var keep []tree.Cluster
	for _, cc := range clusterCounts(trees, ts) {
		if 2*cc.count > len(trees) {
			keep = append(keep, cc.c)
		}
	}
	return buildFromClusters(ts, keep), nil
}

// SemiStrict returns the semi-strict (combinable components) consensus:
// every input cluster that is compatible with all clusters of all input
// trees. Such clusters are pairwise compatible, so the tree exists.
func SemiStrict(trees []*tree.Tree) (*tree.Tree, error) {
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	counted := clusterCounts(trees, ts)
	var keep []tree.Cluster
	for _, cc := range counted {
		ok := true
		for _, other := range counted {
			if !cc.c.CompatibleWith(other.c) {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, cc.c)
		}
	}
	return buildFromClusters(ts, keep), nil
}
