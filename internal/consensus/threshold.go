package consensus

import (
	"fmt"

	"treemine/internal/tree"
)

// MajorityThreshold generalizes the majority rule to the M-ℓ consensus
// family (Margush & McMorris): a cluster survives when it appears in
// strictly more than frac·|trees| of the inputs. frac = 0.5 is the
// classic majority rule; frac → 1 approaches the strict consensus (frac
// = 1 would keep nothing, so values must lie in [0.5, 1)). Clusters
// above half replication are pairwise compatible, which is exactly why
// the threshold cannot go below 0.5.
func MajorityThreshold(trees []*tree.Tree, frac float64) (*tree.Tree, error) {
	if frac < 0.5 || frac >= 1 {
		return nil, fmt.Errorf("consensus: threshold %v outside [0.5, 1)", frac)
	}
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	need := frac * float64(len(trees))
	var keep []tree.Cluster
	for _, cc := range clusterCounts(trees, ts) {
		if float64(cc.count) > need {
			keep = append(keep, cc.c)
		}
	}
	return buildFromClusters(ts, keep), nil
}
