package consensus

import (
	"fmt"
	"math/rand"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func benchSet(k, taxa int) []*tree.Tree {
	rng := rand.New(rand.NewSource(1))
	names := treegen.Alphabet(taxa)
	out := make([]*tree.Tree, k)
	for i := range out {
		out[i] = treegen.Yule(rng, names)
	}
	return out
}

func BenchmarkConsensusMethods(b *testing.B) {
	set := benchSet(20, 20)
	for _, m := range Methods() {
		b.Run(fmt.Sprintf("%s/trees=20/taxa=20", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Compute(m, set); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
