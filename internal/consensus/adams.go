package consensus

import (
	"sort"
	"strconv"

	"treemine/internal/tree"
)

// Adams returns the Adams consensus [Adams 1972]: at every level the
// taxa are partitioned by the product (common refinement) of the
// partitions the input trees' roots induce, and the construction recurses
// into each product block with every tree restricted to that block.
// The Adams consensus preserves common nesting information even when the
// trees disagree on clusters, which is why it can resolve relationships
// the strict consensus collapses.
func Adams(trees []*tree.Tree) (*tree.Tree, error) {
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	// Precompute, per tree, the cluster of every node once.
	clusters := make([]map[tree.NodeID]tree.Cluster, len(trees))
	for i, t := range trees {
		clusters[i] = tree.Clusters(t, ts)
	}
	b := tree.NewBuilder()
	adamsRec(trees, clusters, ts, ts.Full(), tree.None, b)
	return b.Build()
}

// adamsRec emits the Adams consensus of the trees restricted to the
// taxon set s under the given parent (None for the root).
func adamsRec(trees []*tree.Tree, clusters []map[tree.NodeID]tree.Cluster,
	ts *tree.TaxonSet, s tree.Cluster, parent tree.NodeID, b *tree.Builder) {
	members := s.Members()
	if len(members) == 1 {
		name := ts.Name(members[0])
		if parent == tree.None {
			b.Root(name)
		} else {
			b.Child(parent, name)
		}
		return
	}
	// Partition product: two taxa stay together iff every tree puts them
	// in the same child block of the restricted root.
	type sig = string
	blockOf := make(map[int]sig, len(members))
	for ti := range trees {
		part := rootPartition(trees[ti], clusters[ti], s)
		for bi, blk := range part {
			for _, m := range blk.Members() {
				blockOf[m] += strconv.Itoa(ti) + ":" + strconv.Itoa(bi) + ";"
			}
		}
	}
	groups := map[sig][]int{}
	var order []sig
	for _, m := range members {
		k := blockOf[m]
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], m)
	}
	sort.Strings(order)
	var id tree.NodeID
	if len(order) == 1 {
		// Every tree keeps the whole set in one block — impossible when
		// the restricted root is the LCA of s, but guard against it by
		// emitting a flat node rather than recursing forever.
		id = emitInternal(parent, b)
		for _, m := range members {
			b.Child(id, ts.Name(m))
		}
		return
	}
	id = emitInternal(parent, b)
	for _, k := range order {
		blk := ts.NewCluster()
		for _, m := range groups[k] {
			blk.Set(m)
		}
		adamsRec(trees, clusters, ts, blk, id, b)
	}
}

func emitInternal(parent tree.NodeID, b *tree.Builder) tree.NodeID {
	if parent == tree.None {
		return b.RootUnlabeled()
	}
	return b.ChildUnlabeled(parent)
}

// rootPartition returns the partition of s induced by the children of
// the root of t restricted to s: the restricted root is the lowest node
// whose cluster contains s, and each block is the intersection of s with
// one child's cluster.
func rootPartition(t *tree.Tree, cl map[tree.NodeID]tree.Cluster, s tree.Cluster) []tree.Cluster {
	// Descend from the root while a single child still contains all of s.
	node := t.Root()
	for {
		next := tree.None
		for _, k := range t.Children(node) {
			if kc, ok := cl[k]; ok && s.SubsetOf(kc) {
				next = k
				break
			}
		}
		if next == tree.None {
			break
		}
		node = next
	}
	var part []tree.Cluster
	for _, k := range t.Children(node) {
		if kc, ok := cl[k]; ok {
			if blk := kc.Intersect(s); !blk.Empty() {
				part = append(part, blk)
			}
		}
	}
	return part
}
