package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// randomSet builds k random binary phylogenies over the same taxa.
func randomSet(rng *rand.Rand, k, nTaxa int) []*tree.Tree {
	taxa := treegen.Alphabet(nTaxa)
	out := make([]*tree.Tree, k)
	for i := range out {
		out[i] = treegen.Yule(rng, taxa)
	}
	return out
}

func TestStrictClustersInEveryInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 4, 10)
		st, err := Strict(set)
		if err != nil {
			return false
		}
		ts := tree.TaxaOf(set[0])
		stc := tree.InternalClusters(st, ts)
		for _, in := range set {
			inc := tree.InternalClusters(in, ts)
			for k := range stc {
				if _, ok := inc[k]; !ok {
					t.Logf("seed %d: strict cluster missing from an input", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusContainmentLaws(t *testing.T) {
	// strict ⊆ majority and strict ⊆ semi-strict as cluster sets.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 5, 9)
		ts := tree.TaxaOf(set[0])
		get := func(m Method) map[string]tree.Cluster {
			c, err := Compute(m, set)
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			return tree.InternalClusters(c, ts)
		}
		st := get(MethodStrict)
		mj := get(MethodMajority)
		ss := get(MethodSemiStrict)
		for k := range st {
			if _, ok := mj[k]; !ok {
				t.Logf("seed %d: strict ⊄ majority", seed)
				return false
			}
			if _, ok := ss[k]; !ok {
				t.Logf("seed %d: strict ⊄ semi-strict", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusOrderInvariance(t *testing.T) {
	// The consensus must not depend on the order of the input trees.
	f := func(seed int64, mi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 5, 8)
		m := Methods()[int(mi)%len(Methods())]
		a, err := Compute(m, set)
		if err != nil {
			return false
		}
		shuffled := append([]*tree.Tree(nil), set...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b, err := Compute(m, shuffled)
		if err != nil {
			return false
		}
		if !tree.Isomorphic(a, b) {
			t.Logf("seed %d method %v: order dependent", seed, m)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConsensusClustersPairwiseCompatible(t *testing.T) {
	// Every method must emit a tree, whose clusters are automatically a
	// laminar family; verify explicitly as a safety net on the builders.
	f := func(seed int64, mi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := randomSet(rng, 6, 9)
		m := Methods()[int(mi)%len(Methods())]
		c, err := Compute(m, set)
		if err != nil {
			return false
		}
		ts := tree.TaxaOf(set[0])
		var clusters []tree.Cluster
		for _, cl := range tree.InternalClusters(c, ts) {
			clusters = append(clusters, cl)
		}
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if !clusters[i].CompatibleWith(clusters[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityOfOddCopiesIsInput(t *testing.T) {
	// Majority over {T, T, U} returns T's clusters whenever T and U
	// disagree: 2/3 > half for T's clusters, 1/3 < half for U's own.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		taxa := treegen.Alphabet(8)
		T := treegen.Yule(rng, taxa)
		U := treegen.Yule(rng, taxa)
		mj, err := Majority([]*tree.Tree{T, T.Clone(), U})
		if err != nil {
			return false
		}
		ts := tree.TaxaOf(T)
		want := tree.InternalClusters(T, ts)
		got := tree.InternalClusters(mj, ts)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
