package consensus

import (
	"errors"
	"math/rand"
	"testing"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return tr
}

// clusterSet extracts the internal cluster keys of a consensus tree for
// comparison.
func clusterSet(t *testing.T, tr *tree.Tree, ts *tree.TaxonSet) map[string]tree.Cluster {
	t.Helper()
	return tree.InternalClusters(tr, ts)
}

func TestValidateErrors(t *testing.T) {
	if _, err := Strict(nil); !errors.Is(err, ErrNoTrees) {
		t.Errorf("Strict(nil) err = %v, want ErrNoTrees", err)
	}
	t1 := parse(t, "((a,b),c);")
	t2 := parse(t, "((a,b),d);")
	if _, err := Strict([]*tree.Tree{t1, t2}); !errors.Is(err, ErrTaxaMismatch) {
		t.Errorf("taxa mismatch err = %v", err)
	}
	dup := parse(t, "((a,a),c);")
	if _, err := Majority([]*tree.Tree{dup}); !errors.Is(err, ErrDuplicateTaxa) {
		t.Errorf("duplicate taxa err = %v", err)
	}
	t3 := parse(t, "((a,b),(c,d));")
	if _, err := Adams([]*tree.Tree{t1, t3}); !errors.Is(err, ErrTaxaMismatch) {
		t.Errorf("different sizes err = %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := Compute(Method(99), []*tree.Tree{parse(t, "(a,b);")}); err == nil {
		t.Fatal("expected error for unknown method")
	}
	if got := Method(99).String(); got != "Method(99)" {
		t.Errorf("String = %q", got)
	}
}

func TestMethodNames(t *testing.T) {
	want := map[Method]string{
		MethodStrict:     "strict",
		MethodSemiStrict: "semi-strict",
		MethodMajority:   "majority",
		MethodNelson:     "Nelson",
		MethodAdams:      "Adams",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if len(Methods()) != 5 {
		t.Fatalf("Methods() = %v", Methods())
	}
}

func TestConsensusOfIdenticalTrees(t *testing.T) {
	// Every method applied to copies of one tree returns that tree.
	src := parse(t, "((a,b),((c,d),e));")
	set := []*tree.Tree{src, src.Clone(), src.Clone()}
	for _, m := range Methods() {
		got, err := Compute(m, set)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !tree.Isomorphic(got, src) {
			t.Errorf("%s of identical trees: got %v, want %v", m, got, src)
		}
	}
}

func TestStrictDropsConflicts(t *testing.T) {
	// Two trees agreeing on {a,b} but conflicting on the placement of
	// c/d: the strict consensus keeps only {a,b}.
	t1 := parse(t, "(((a,b),c),d);")
	t2 := parse(t, "(((a,b),d),c);")
	got, err := Strict([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	cs := clusterSet(t, got, ts)
	if len(cs) != 1 {
		t.Fatalf("strict clusters = %d, want 1: %v", len(cs), got)
	}
	ab := ts.ClusterOf("a", "b")
	if _, ok := cs[ab.Key()]; !ok {
		t.Fatalf("strict consensus missing {a,b}: %v", got)
	}
}

func TestMajorityRule(t *testing.T) {
	// {a,b} in 2 of 3 trees (> half) survives; {c,d} in 1 of 3 does not.
	t1 := parse(t, "((a,b),(c,(d,e)));")
	t2 := parse(t, "((a,b),((c,d),e));")
	t3 := parse(t, "((a,(b,c)),(d,e));")
	got, err := Majority([]*tree.Tree{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	cs := clusterSet(t, got, ts)
	if _, ok := cs[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Errorf("majority missing {a,b}: %v", got)
	}
	if _, ok := cs[ts.ClusterOf("c", "d").Key()]; ok {
		t.Errorf("majority kept minority cluster {c,d}: %v", got)
	}
}

func TestMajorityContainsStrict(t *testing.T) {
	// Strict clusters (in all trees) are a subset of majority clusters.
	rng := rand.New(rand.NewSource(5))
	taxa := treegen.Alphabet(12)
	for trial := 0; trial < 10; trial++ {
		set := []*tree.Tree{
			treegen.Yule(rng, taxa),
			treegen.Yule(rng, taxa),
			treegen.Yule(rng, taxa),
		}
		st, err := Strict(set)
		if err != nil {
			t.Fatal(err)
		}
		mj, err := Majority(set)
		if err != nil {
			t.Fatal(err)
		}
		ts := tree.TaxaOf(set[0])
		stc := clusterSet(t, st, ts)
		mjc := clusterSet(t, mj, ts)
		for k := range stc {
			if _, ok := mjc[k]; !ok {
				t.Fatalf("strict cluster missing from majority (trial %d)", trial)
			}
		}
	}
}

func TestSemiStrictKeepsUncontradicted(t *testing.T) {
	// t1 resolves {a,b}; t2 is a star and contradicts nothing, so the
	// semi-strict consensus keeps {a,b} while the strict consensus
	// (cluster in ALL trees) drops it.
	t1 := parse(t, "((a,b),c,d);")
	t2 := parse(t, "(a,b,c,d);")
	ss, err := SemiStrict([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	if _, ok := clusterSet(t, ss, ts)[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Errorf("semi-strict missing {a,b}: %v", ss)
	}
	st, err := Strict([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusterSet(t, st, ts)) != 0 {
		t.Errorf("strict should be a star: %v", st)
	}
}

func TestSemiStrictDropsContradicted(t *testing.T) {
	t1 := parse(t, "((a,b),c,d);")
	t2 := parse(t, "((b,c),a,d);") // {b,c} overlaps {a,b}: conflict
	ss, err := SemiStrict([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	if got := len(clusterSet(t, ss, ts)); got != 0 {
		t.Errorf("semi-strict kept %d conflicting clusters: %v", got, ss)
	}
}

func TestNelsonPicksHeaviestClique(t *testing.T) {
	// {a,b} appears twice, the conflicting {b,c} once: Nelson keeps the
	// replicated cluster.
	t1 := parse(t, "((a,b),c,d);")
	t2 := parse(t, "((a,b),c,d);")
	t3 := parse(t, "((b,c),a,d);")
	got, err := Nelson([]*tree.Tree{t1, t2, t3})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	cs := clusterSet(t, got, ts)
	if _, ok := cs[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Errorf("Nelson missing {a,b}: %v", got)
	}
	if _, ok := cs[ts.ClusterOf("b", "c").Key()]; ok {
		t.Errorf("Nelson kept lighter conflicting {b,c}: %v", got)
	}
}

func TestNelsonTieIntersection(t *testing.T) {
	// {a,b} and {b,c} conflict and both appear once: the two maximum
	// cliques tie, and neither cluster is in every maximum clique, so the
	// consensus keeps neither.
	t1 := parse(t, "((a,b),c,d);")
	t2 := parse(t, "((b,c),a,d);")
	got, err := Nelson([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	cs := clusterSet(t, got, ts)
	if _, ok := cs[ts.ClusterOf("a", "b").Key()]; ok {
		t.Errorf("Nelson kept tied cluster {a,b}: %v", got)
	}
	if _, ok := cs[ts.ClusterOf("b", "c").Key()]; ok {
		t.Errorf("Nelson kept tied cluster {b,c}: %v", got)
	}
}

func TestAdamsResolvesCommonNesting(t *testing.T) {
	// Classic Adams behavior: both trees nest {a,b} deepest but disagree
	// about c/d order; Adams keeps the {a,b} group.
	t1 := parse(t, "(((a,b),c),d);")
	t2 := parse(t, "(((a,b),d),c);")
	got, err := Adams([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	ts := tree.TaxaOf(t1)
	cs := clusterSet(t, got, ts)
	if _, ok := cs[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Errorf("Adams missing {a,b}: %v", got)
	}
}

func TestAdamsProductPartition(t *testing.T) {
	// The root partitions {{a,b},{c,d}} and {{a,c},{b,d}} intersect to
	// singletons: the Adams consensus root is a star over the four taxa.
	t1 := parse(t, "((a,b),(c,d));")
	t2 := parse(t, "((a,c),(b,d));")
	got, err := Adams([]*tree.Tree{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChildren(got.Root()) != 4 {
		t.Fatalf("Adams root arity = %d, want 4: %v", got.NumChildren(got.Root()), got)
	}
}

func TestAllMethodsPreserveTaxa(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	taxa := treegen.Alphabet(15)
	var set []*tree.Tree
	for i := 0; i < 7; i++ {
		set = append(set, treegen.Yule(rng, taxa))
	}
	for _, m := range Methods() {
		got, err := Compute(m, set)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if labels := got.LeafLabels(); len(labels) != len(taxa) {
			t.Errorf("%s consensus has %d taxa, want %d", m, len(labels), len(taxa))
		}
		// Consensus trees never invent clusters outside the union of
		// input clusters (Adams can, in principle, create new clusters;
		// for the others verify containment).
		if m == MethodAdams {
			continue
		}
		ts := tree.TaxaOf(set[0])
		all := map[string]bool{}
		for _, in := range set {
			for k := range tree.InternalClusters(in, ts) {
				all[k] = true
			}
		}
		for k := range clusterSet(t, got, ts) {
			if !all[k] {
				t.Errorf("%s invented a cluster not present in any input", m)
			}
		}
	}
}

func TestSingleTreeConsensusIsIdentity(t *testing.T) {
	src := parse(t, "((a,(b,c)),(d,e),f);")
	for _, m := range Methods() {
		got, err := Compute(m, []*tree.Tree{src})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !tree.Isomorphic(got, src) {
			t.Errorf("%s of single tree: got %v, want %v", m, got, src)
		}
	}
}
