package consensus

import (
	"sort"

	"treemine/internal/tree"
)

// Nelson returns the Nelson consensus [Nelson 1979]: the clusters of the
// input trees are weighted by replication (the number of trees containing
// them) and a maximum-weight clique of mutually compatible clusters is
// selected; the consensus is built from that clique. When several cliques
// tie at the maximum weight, their intersection is used (the components
// Nelson calls unambiguously supported). The clique search is exact
// (branch and bound over the compatibility graph); tree collections over
// tens of taxa yield small graphs, so the exponential worst case is not
// reached in practice.
func Nelson(trees []*tree.Tree) (*tree.Tree, error) {
	ts, err := validate(trees)
	if err != nil {
		return nil, err
	}
	counted := clusterCounts(trees, ts)
	n := len(counted)
	if n == 0 {
		return buildFromClusters(ts, nil), nil
	}
	// Compatibility graph over the distinct clusters.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if counted[i].c.CompatibleWith(counted[j].c) {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	s := &nelsonSearch{counted: counted, adj: adj, budget: nelsonBudget}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Visit heavier clusters first so good bounds appear early.
	sort.Slice(order, func(a, b int) bool {
		return counted[order[a]].count > counted[order[b]].count
	})
	// Seed the bound with the greedy clique so pruning bites immediately.
	greedy := greedyClique(counted, adj, order)
	s.bestW = cliqueWeight(counted, greedy)
	s.best = [][]int{greedy}
	s.extend(nil, order, 0)
	if s.budget <= 0 {
		// Search exhausted its node budget (computing the Nelson
		// consensus is NP-hard — Day & Sankoff 1986); fall back to the
		// greedy clique, which is what practical implementations report
		// on adversarial inputs.
		s.best = [][]int{greedy}
	}

	// Intersect all maximum cliques.
	inClique := make([]int, n)
	for _, cl := range s.best {
		for _, v := range cl {
			inClique[v]++
		}
	}
	var keep []tree.Cluster
	for v, c := range inClique {
		if c == len(s.best) && c > 0 {
			keep = append(keep, counted[v].c)
		}
	}
	return buildFromClusters(ts, keep), nil
}

// nelsonBudget bounds the number of branch-and-bound nodes explored
// before Nelson falls back to the greedy clique.
const nelsonBudget = 4_000_000

// greedyClique takes clusters in the given order, keeping each one
// compatible with everything kept so far.
func greedyClique(counted []countedCluster, adj [][]bool, order []int) []int {
	var keep []int
	for _, v := range order {
		ok := true
		for _, u := range keep {
			if !adj[v][u] {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, v)
		}
	}
	return keep
}

func cliqueWeight(counted []countedCluster, clique []int) int {
	w := 0
	for _, v := range clique {
		w += counted[v].count
	}
	return w
}

// maxNelsonCliques caps how many tied maximum cliques are retained; ties
// beyond the cap cannot change the intersection because intersecting is
// monotone, so the cap only bounds memory.
const maxNelsonCliques = 64

type nelsonSearch struct {
	counted []countedCluster
	adj     [][]bool
	best    [][]int // all maximum-weight cliques found (up to cap)
	bestW   int
	budget  int
}

// extend grows the current clique cur (weight w) with candidates cand,
// branch-and-bound style.
func (s *nelsonSearch) extend(cur, cand []int, w int) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	if len(cand) == 0 {
		if w > s.bestW {
			s.bestW = w
			s.best = s.best[:0]
		}
		if w == s.bestW && w > 0 && len(s.best) < maxNelsonCliques {
			s.best = append(s.best, append([]int(nil), cur...))
		}
		return
	}
	// Bound: total remaining weight cannot lift us past the best.
	rem := w
	for _, v := range cand {
		rem += s.counted[v].count
	}
	if rem < s.bestW {
		return
	}
	v := cand[0]
	rest := cand[1:]
	// Branch 1: include v.
	var next []int
	for _, u := range rest {
		if s.adj[v][u] {
			next = append(next, u)
		}
	}
	s.extend(append(cur, v), next, w+s.counted[v].count)
	// Branch 2: exclude v.
	s.extend(cur, rest, w)
}
