package consensus

import (
	"math/rand"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestMajorityThresholdBounds(t *testing.T) {
	set := []*tree.Tree{parse(t, "((a,b),c);")}
	for _, bad := range []float64{0.49, -1, 1, 1.5} {
		if _, err := MajorityThreshold(set, bad); err == nil {
			t.Errorf("threshold %v accepted", bad)
		}
	}
}

func TestMajorityThresholdAtHalfIsMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	taxa := treegen.Alphabet(9)
	for trial := 0; trial < 10; trial++ {
		set := []*tree.Tree{
			treegen.Yule(rng, taxa),
			treegen.Yule(rng, taxa),
			treegen.Yule(rng, taxa),
		}
		a, err := MajorityThreshold(set, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Majority(set)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Isomorphic(a, b) {
			t.Fatalf("threshold 0.5 ≠ majority (trial %d)", trial)
		}
	}
}

func TestMajorityThresholdMonotone(t *testing.T) {
	// Raising the threshold can only drop clusters: the 0.9-consensus
	// clusters are a subset of the 0.5-consensus clusters, and the
	// 0.99-threshold result over k trees equals the strict consensus.
	rng := rand.New(rand.NewSource(15))
	taxa := treegen.Alphabet(10)
	set := []*tree.Tree{
		treegen.Yule(rng, taxa),
		treegen.Yule(rng, taxa),
		treegen.Yule(rng, taxa),
		treegen.Yule(rng, taxa),
	}
	ts := tree.TaxaOf(set[0])
	lo, err := MajorityThreshold(set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := MajorityThreshold(set, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	loC := tree.InternalClusters(lo, ts)
	hiC := tree.InternalClusters(hi, ts)
	for k := range hiC {
		if _, ok := loC[k]; !ok {
			t.Fatal("higher threshold introduced a cluster")
		}
	}
	strictT, err := Strict(set)
	if err != nil {
		t.Fatal(err)
	}
	top, err := MajorityThreshold(set, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Isomorphic(strictT, top) {
		t.Fatal("threshold → 1 should coincide with strict consensus")
	}
}

func TestMajorityThresholdDropsMiddleClusters(t *testing.T) {
	// A cluster in 3 of 5 trees survives at 0.5 but not at 0.7.
	base := parse(t, "((a,b),c,d);")
	star := parse(t, "(a,b,c,d);")
	set := []*tree.Tree{base, base.Clone(), base.Clone(), star, star.Clone()}
	ts := tree.TaxaOf(base)
	lo, err := MajorityThreshold(set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.InternalClusters(lo, ts)[ts.ClusterOf("a", "b").Key()]; !ok {
		t.Fatal("3/5 cluster should survive at 0.5")
	}
	hi, err := MajorityThreshold(set, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.InternalClusters(hi, ts)) != 0 {
		t.Fatal("3/5 cluster should drop at 0.7")
	}
}
