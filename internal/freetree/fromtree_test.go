package freetree

import (
	"math/rand"
	"reflect"
	"testing"

	"treemine/internal/core"
	"treemine/internal/likelihood"
	"treemine/internal/newick"
	"treemine/internal/seqsim"
	"treemine/internal/treegen"
)

func TestFromTreeBasic(t *testing.T) {
	tr, err := newick.Parse("((a,b),(c,d));")
	if err != nil {
		t.Fatal(err)
	}
	g := FromTree(tr, false)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Size() != tr.Size() {
		t.Fatalf("size = %d, want %d", g.Size(), tr.Size())
	}
}

func TestFromTreeSuppressRoot(t *testing.T) {
	tr, err := newick.Parse("((a,b),(c,d));")
	if err != nil {
		t.Fatal(err)
	}
	g := FromTree(tr, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Size() != tr.Size()-1 {
		t.Fatalf("size = %d, want %d (root suppressed)", g.Size(), tr.Size()-1)
	}
	// The two former root children are now adjacent: path a–…–c has 3
	// edges, so dist(a, c) = 0.5 in the unrooted view.
	items, err := Mine(g, core.Options{MaxDist: core.D(4), MinOccur: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := core.ItemSet{
		core.NewKey("a", "b", core.D(0)): 1,
		core.NewKey("c", "d", core.D(0)): 1,
		core.NewKey("a", "c", core.D(1)): 1,
		core.NewKey("a", "d", core.D(1)): 1,
		core.NewKey("b", "c", core.D(1)): 1,
		core.NewKey("b", "d", core.D(1)): 1,
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("items = %v\nwant %v", items.Items(), want.Items())
	}
}

func TestFromTreeNoSuppressWhenRootLabeledOrWide(t *testing.T) {
	labeled, err := newick.Parse("((a,b),(c,d))root;")
	if err != nil {
		t.Fatal(err)
	}
	if g := FromTree(labeled, true); g.Size() != labeled.Size() {
		t.Fatal("labeled root must not be suppressed")
	}
	wide, err := newick.Parse("(a,b,c);")
	if err != nil {
		t.Fatal(err)
	}
	if g := FromTree(wide, true); g.Size() != wide.Size() {
		t.Fatal("degree-3 root must not be suppressed")
	}
}

func TestFromTreeRandomValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		tr := treegen.Yule(rng, treegen.Alphabet(rng.Intn(10)+2))
		for _, suppress := range []bool{false, true} {
			g := FromTree(tr, suppress)
			if err := g.Validate(); err != nil {
				t.Fatalf("trial %d suppress=%v: %v", trial, suppress, err)
			}
		}
	}
}

// TestMLToFreeTreePipeline exercises the §6 story end to end: an ML
// search produces a (rooted-representation) tree, unrooting gives the
// UAG, and free-tree mining extracts its cousin pairs.
func TestMLToFreeTreePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	taxa := treegen.Alphabet(6)
	model := treegen.Yule(rng, taxa)
	a, err := seqsim.Evolve(rng, model, 200, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	ml, _, err := likelihood.Search(rng, a, likelihood.SearchConfig{Starts: 4, MaxRounds: 40, BranchLen: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g := FromTree(ml, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	items, err := Mine(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("ML free tree mined to nothing")
	}
	// Cross-check against the oracle.
	slow, err := NaiveMine(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, slow) {
		t.Fatal("fast and naive free-tree mining disagree on the ML tree")
	}
}
