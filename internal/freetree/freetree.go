// Package freetree extends cousin-pair mining to free trees — unrooted
// unordered labeled trees, i.e. undirected acyclic graphs (UAGs) — as
// described in §6 of the paper. Reconstruction methods such as maximum
// parsimony and maximum likelihood naturally produce unrooted trees, so
// the extension matters in practice.
//
// In a UAG the cousin distance of two labeled nodes u, v is
//
//	cdist(u, v) = n/2 − 1
//
// where n is the number of edges on the unique u–v path (Eq. 7). Paths
// of length 1 (adjacent nodes — the unrooted analogue of parent–child
// pairs) are excluded, exactly as the rooted algorithm excludes
// ancestor–descendant pairs.
package freetree

import (
	"errors"
	"fmt"

	"treemine/internal/core"
)

// Errors reported by graph construction.
var (
	// ErrCycle is returned by Validate when the graph contains a cycle.
	ErrCycle = errors.New("freetree: graph contains a cycle")
	// ErrDisconnected is returned by Validate when the graph is not
	// connected.
	ErrDisconnected = errors.New("freetree: graph is not connected")
)

// Graph is an undirected acyclic graph with optionally labeled nodes.
// Build it with AddNode/AddEdge, then Validate before mining.
type Graph struct {
	adj     [][]int
	labels  []string
	labeled []bool
	edges   int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddNode adds a labeled node and returns its index.
func (g *Graph) AddNode(label string) int { return g.add(label, true) }

// AddNodeUnlabeled adds an unlabeled node and returns its index.
func (g *Graph) AddNodeUnlabeled() int { return g.add("", false) }

func (g *Graph) add(label string, labeled bool) int {
	g.adj = append(g.adj, nil)
	g.labels = append(g.labels, label)
	g.labeled = append(g.labeled, labeled)
	return len(g.adj) - 1
}

// AddEdge connects nodes u and v. It returns an error for out-of-range
// endpoints, self-loops, and duplicate edges.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("freetree: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return fmt.Errorf("freetree: self-loop on node %d", u)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("freetree: duplicate edge (%d,%d)", u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return nil
}

// Size returns the number of nodes.
func (g *Graph) Size() int { return len(g.adj) }

// Label returns the label of node n and whether n is labeled.
func (g *Graph) Label(n int) (string, bool) {
	if !g.labeled[n] {
		return "", false
	}
	return g.labels[n], true
}

// Neighbors returns the adjacency list of n; the slice is owned by the
// graph.
func (g *Graph) Neighbors(n int) []int { return g.adj[n] }

// Validate checks that the graph is a free tree: connected and acyclic.
// The empty graph is valid.
func (g *Graph) Validate() error {
	n := len(g.adj)
	if n == 0 {
		return nil
	}
	if g.edges != n-1 {
		if g.edges > n-1 {
			return fmt.Errorf("%w (%d nodes, %d edges)", ErrCycle, n, g.edges)
		}
		return fmt.Errorf("%w (%d nodes, %d edges)", ErrDisconnected, n, g.edges)
	}
	// n−1 edges: connected ⟺ acyclic; check connectivity by BFS.
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	if count != n {
		return fmt.Errorf("%w (reached %d of %d nodes)", ErrDisconnected, count, n)
	}
	return nil
}

// Mine finds every cousin pair item of the free tree g with distance at
// most opts.MaxDist and occurrence at least opts.MinOccur, implementing
// the rooted-conversion algorithm of §6: an arbitrary edge is subdivided
// by an artificial root r, and for each distance d all level
// combinations (i, j) with i + j = 2(d+1) are enumerated below every
// potential meeting node — or i + j = 2(d+1)+1 below r itself, to
// account for the extra edge the subdivision inserted (Eq. 8–10). The
// caller should Validate first; Mine returns an error otherwise.
func Mine(g *Graph, opts core.Options) (core.ItemSet, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	items := make(core.ItemSet)
	if g.Size() < 2 || opts.MaxDist < 0 {
		return items.FilterMinOccur(opts.MinOccur), nil
	}
	r := rootedView(g)
	// Deepest level reachable by any qualified pair: at the artificial
	// root i + j = n+1 edges with n = maxdist·2 + 2 and the partner at
	// least at level 1, so j ≤ n + 1 − 1 = int(MaxDist) + 2.
	maxJ := int(opts.MaxDist) + 2
	groups := r.buildGroups(maxJ)
	for _, d := range core.ValidDistances(opts.MaxDist) {
		pathLen := int(d) + 2 // edges between the cousins: n = 2(dist+1)
		for a, g2 := range groups {
			target := pathLen
			if a == 0 { // the artificial root: one extra edge (Eq. 10)
				target = pathLen + 1
			}
			for i := 1; 2*i < target; i++ {
				emitCross(r, g2, i, target-i, d, items)
			}
			if target%2 == 0 {
				emitCross(r, g2, target/2, target/2, d, items)
			}
			// Vertical pairs: unrooted trees have no ancestors, so a
			// labeled node a and a labeled node pathLen edges straight
			// below it in the rooted view are cousins too — a case the
			// up-i/down-j enumeration (i, j ≥ 1) cannot reach.
			if a != 0 && r.g.labeled[r.orig[a]] {
				emitVertical(r, a, g2, pathLen, d, items)
			}
		}
	}
	return items.FilterMinOccur(opts.MinOccur), nil
}

// NaiveMine is the brute-force oracle: BFS from every labeled node
// counting path lengths, then d = n/2 − 1 (Eq. 7).
func NaiveMine(g *Graph, opts core.Options) (core.ItemSet, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	items := make(core.ItemSet)
	n := g.Size()
	for u := 0; u < n; u++ {
		if !g.labeled[u] {
			continue
		}
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[u] = 0
		queue := []int{u}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range g.adj[x] {
				if dist[y] < 0 {
					dist[y] = dist[x] + 1
					queue = append(queue, y)
				}
			}
		}
		for v := u + 1; v < n; v++ {
			if !g.labeled[v] || dist[v] < 2 {
				continue
			}
			d := core.Dist(dist[v] - 2) // halves: n/2−1 ⇒ 2d = n−2
			if d > opts.MaxDist {
				continue
			}
			items[core.NewKey(g.labels[u], g.labels[v], d)]++
		}
	}
	return items.FilterMinOccur(opts.MinOccur), nil
}

// rooted is the rooted view of a free tree: node 0 is the artificial
// root subdividing the chosen edge; nodes 1.. map back to graph nodes.
type rooted struct {
	g        *Graph
	parent   []int   // parent in the rooted view, -1 for the root
	children [][]int // children in the rooted view
	orig     []int   // rooted-view index → graph node (-1 for the root)
}

// rootedView subdivides the first edge of the graph with an artificial
// root. The graph has at least two nodes (hence at least one edge).
func rootedView(g *Graph) *rooted {
	n := g.Size()
	r := &rooted{
		g:        g,
		parent:   make([]int, n+1),
		children: make([][]int, n+1),
		orig:     make([]int, n+1),
	}
	// Pick the edge between node 0 and its first neighbor.
	x, y := 0, g.adj[0][0]
	r.parent[0] = -1
	r.orig[0] = -1
	// Graph node v is rooted-view node v+1.
	for v := 0; v < n; v++ {
		r.orig[v+1] = v
	}
	attach := func(child, par int) {
		r.parent[child+1] = par
		r.children[par] = append(r.children[par], child+1)
	}
	attach(x, 0)
	attach(y, 0)
	// BFS orienting away from the subdivided edge.
	seen := make([]bool, n)
	seen[x], seen[y] = true, true
	queue := []int{x, y}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if u == x && v == y || u == y && v == x {
				continue
			}
			if !seen[v] {
				seen[v] = true
				attach(v, u+1)
				queue = append(queue, v)
			}
		}
	}
	return r
}

// buildGroups returns, for every rooted-view node a, the labeled
// descendants grouped by (child subtree of a, depth below a), for depths
// up to maxJ. groups[a][ci][depth-1] lists graph nodes.
func (r *rooted) buildGroups(maxJ int) map[int][][][]int {
	groups := make(map[int][][][]int)
	childIndex := make([]int, len(r.parent))
	for a := range r.children {
		for i, c := range r.children[a] {
			childIndex[c] = i
		}
	}
	for v := 1; v < len(r.parent); v++ {
		ov := r.orig[v]
		if !r.g.labeled[ov] {
			continue
		}
		child := v
		a := r.parent[v]
		for depth := 1; depth <= maxJ && a >= 0; depth++ {
			gr := groups[a]
			if gr == nil {
				gr = make([][][]int, len(r.children[a]))
				groups[a] = gr
			}
			ci := childIndex[child]
			for len(gr[ci]) < depth {
				gr[ci] = append(gr[ci], nil)
			}
			gr[ci][depth-1] = append(gr[ci][depth-1], ov)
			child = a
			a = r.parent[a]
		}
	}
	return groups
}

// emitCross counts label pairs between depth-i nodes of one child
// subtree and depth-j nodes of a different child subtree. For i == j
// unordered child pairs are visited once.
func emitCross(r *rooted, g2 [][][]int, i, j int, d core.Dist, items core.ItemSet) {
	for c1 := range g2 {
		if len(g2[c1]) < i {
			continue
		}
		us := g2[c1][i-1]
		if len(us) == 0 {
			continue
		}
		start := 0
		if i == j {
			start = c1 + 1
		}
		for c2 := start; c2 < len(g2); c2++ {
			if c2 == c1 || len(g2[c2]) < j {
				continue
			}
			for _, u := range us {
				for _, v := range g2[c2][j-1] {
					items[core.NewKey(r.g.labels[u], r.g.labels[v], d)]++
				}
			}
		}
	}
}

// emitVertical counts pairs between the labeled node a and every labeled
// node exactly depth edges below it in the rooted view.
func emitVertical(r *rooted, a int, g2 [][][]int, depth int, d core.Dist, items core.ItemSet) {
	la := r.g.labels[r.orig[a]]
	for c := range g2 {
		if len(g2[c]) < depth {
			continue
		}
		for _, v := range g2[c][depth-1] {
			items[core.NewKey(la, r.g.labels[v], d)]++
		}
	}
}

// MineForest finds frequent cousin pairs across multiple free trees,
// mirroring core.MineForest. Graphs failing validation abort with an
// error.
func MineForest(graphs []*Graph, opts core.ForestOptions) ([]core.FrequentPair, error) {
	support := make(map[core.Key]int)
	for gi, g := range graphs {
		items, err := Mine(g, opts.Options)
		if err != nil {
			return nil, fmt.Errorf("freetree: graph %d: %w", gi, err)
		}
		if opts.IgnoreDist {
			items = items.IgnoreDist()
		}
		for k := range items {
			support[k]++
		}
	}
	var out []core.FrequentPair
	for k, s := range support {
		if s >= opts.MinSup {
			out = append(out, core.FrequentPair{Key: k, Support: s})
		}
	}
	sortFrequent(out)
	return out, nil
}

func sortFrequent(fp []core.FrequentPair) {
	// Same ordering as core.MineForest: support desc, then key.
	for i := 1; i < len(fp); i++ {
		for j := i; j > 0 && lessFrequent(fp[j], fp[j-1]); j-- {
			fp[j], fp[j-1] = fp[j-1], fp[j]
		}
	}
}

func lessFrequent(a, b core.FrequentPair) bool {
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	if a.Key.A != b.Key.A {
		return a.Key.A < b.Key.A
	}
	if a.Key.B != b.Key.B {
		return a.Key.B < b.Key.B
	}
	return a.Key.D < b.Key.D
}
