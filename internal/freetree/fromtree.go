package freetree

import (
	"treemine/internal/tree"
)

// FromTree converts a rooted tree into the corresponding free tree
// (UAG): nodes map one-to-one and every parent–child edge becomes an
// undirected edge. When suppressRoot is set and the root is an unlabeled
// degree-2 node — the shape a rooted binary phylogeny gets from rooting
// an inherently unrooted ML/MP result — the root is removed and its two
// children joined directly, undoing the rooting exactly as §6's Figure
// 11 depicts in reverse.
func FromTree(t *tree.Tree, suppressRoot bool) *Graph {
	g := NewGraph()
	suppress := suppressRoot && !t.Labeled(t.Root()) && t.NumChildren(t.Root()) == 2

	// id[n] is the graph node for tree node n; the suppressed root gets
	// no graph node.
	id := make([]int, t.Size())
	for _, n := range t.Nodes() {
		if suppress && n == t.Root() {
			id[n] = -1
			continue
		}
		if l, ok := t.Label(n); ok {
			id[n] = g.AddNode(l)
		} else {
			id[n] = g.AddNodeUnlabeled()
		}
	}
	for _, n := range t.Nodes() {
		p := t.Parent(n)
		if p == tree.None {
			continue
		}
		if suppress && p == t.Root() {
			continue // handled below
		}
		// Adding each child edge once keeps the edge set exact.
		if err := g.AddEdge(id[p], id[n]); err != nil {
			panic(err) // unreachable: tree edges are unique, no self-loops
		}
	}
	if suppress {
		kids := t.Children(t.Root())
		if err := g.AddEdge(id[kids[0]], id[kids[1]]); err != nil {
			panic(err) // unreachable for a valid tree
		}
	}
	return g
}
