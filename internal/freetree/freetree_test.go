package freetree

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"treemine/internal/core"
)

// path builds the labeled path a—b—c—…
func path(t *testing.T, labels ...string) *Graph {
	t.Helper()
	g := NewGraph()
	prev := -1
	for _, l := range labels {
		n := g.AddNode(l)
		if prev >= 0 {
			if err := g.AddEdge(prev, n); err != nil {
				t.Fatal(err)
			}
		}
		prev = n
	}
	return g
}

func TestGraphValidate(t *testing.T) {
	if err := NewGraph().Validate(); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	g := path(t, "a", "b", "c")
	if err := g.Validate(); err != nil {
		t.Errorf("path: %v", err)
	}
	// Cycle.
	g = path(t, "a", "b", "c")
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle err = %v", err)
	}
	// Disconnected.
	g = NewGraph()
	g.AddNode("a")
	g.AddNode("b")
	if err := g.Validate(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected err = %v", err)
	}
}

func TestGraphAddEdgeErrors(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, a); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestMinePathDistances(t *testing.T) {
	// On the path a—b—c—d—e: pairs two edges apart have distance 0,
	// three apart 0.5, four apart 1; adjacent pairs are excluded.
	g := path(t, "a", "b", "c", "d", "e")
	items, err := Mine(g, core.Options{MaxDist: core.D(4), MinOccur: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := core.ItemSet{
		core.NewKey("a", "c", core.D(0)): 1,
		core.NewKey("b", "d", core.D(0)): 1,
		core.NewKey("c", "e", core.D(0)): 1,
		core.NewKey("a", "d", core.D(1)): 1,
		core.NewKey("b", "e", core.D(1)): 1,
		core.NewKey("a", "e", core.D(2)): 1,
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Mine(path) = %v\nwant %v", items.Items(), want.Items())
	}
}

func TestMineStar(t *testing.T) {
	// Star with center c and leaves x,y,z: every leaf pair is two edges
	// apart (distance 0); center–leaf pairs are adjacent and excluded.
	g := NewGraph()
	c := g.AddNode("c")
	for _, l := range []string{"x", "y", "z"} {
		n := g.AddNode(l)
		if err := g.AddEdge(c, n); err != nil {
			t.Fatal(err)
		}
	}
	items, err := Mine(g, core.Options{MaxDist: core.D(4), MinOccur: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := core.ItemSet{
		core.NewKey("x", "y", core.D(0)): 1,
		core.NewKey("x", "z", core.D(0)): 1,
		core.NewKey("y", "z", core.D(0)): 1,
	}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Mine(star) = %v\nwant %v", items.Items(), want.Items())
	}
}

func TestMinePaperCombinationExample(t *testing.T) {
	// §6: for distance 2 the level combinations are (1,5) … (5,1):
	// n = 6 edges. On a path of 7 labeled nodes the endpoints are 6
	// edges apart, so exactly one pair at distance 2 regardless of which
	// edge the artificial root subdivides.
	g := path(t, "n1", "n2", "n3", "n4", "n5", "n6", "n7")
	items, err := Mine(g, core.Options{MaxDist: core.D(4), MinOccur: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := items[core.NewKey("n1", "n7", core.D(4))]; got != 1 {
		t.Fatalf("(n1,n7,2) = %d, want 1; items %v", got, items.Items())
	}
}

func TestMineInvalidGraph(t *testing.T) {
	g := NewGraph()
	g.AddNode("a")
	g.AddNode("b") // disconnected
	if _, err := Mine(g, core.DefaultOptions()); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NaiveMine(g, core.DefaultOptions()); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("naive err = %v", err)
	}
}

func TestMineTinyGraphs(t *testing.T) {
	// Empty, single node, and single edge all mine to nothing.
	for _, g := range []*Graph{
		NewGraph(),
		func() *Graph { g := NewGraph(); g.AddNode("a"); return g }(),
		path(t, "a", "b"),
	} {
		items, err := Mine(g, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 0 {
			t.Fatalf("items = %v, want empty", items.Items())
		}
	}
}

// randFreeTree builds a random free tree: node i connects to a random
// earlier node.
func randFreeTree(rng *rand.Rand, n int) *Graph {
	labels := []string{"a", "b", "c", "d"}
	g := NewGraph()
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			g.AddNodeUnlabeled()
		} else {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		if i > 0 {
			if err := g.AddEdge(i, rng.Intn(i)); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func TestMineEquivalentToNaive(t *testing.T) {
	f := func(seed int64, size uint8, maxD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%40 + 1
		g := randFreeTree(rng, n)
		opts := core.Options{MaxDist: core.Dist(maxD % 10), MinOccur: 1}
		fast, err := Mine(g, opts)
		if err != nil {
			t.Logf("Mine error: %v", err)
			return false
		}
		slow, err := NaiveMine(g, opts)
		if err != nil {
			t.Logf("NaiveMine error: %v", err)
			return false
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Logf("seed=%d n=%d maxdist=%s\nfast=%v\nslow=%v",
				seed, n, opts.MaxDist, fast.Items(), slow.Items())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMineRootEdgeIndependence(t *testing.T) {
	// The result must not depend on which edge the artificial root
	// subdivides. rootedView picks the first edge of node 0, so reorder
	// node insertion to vary the choice and compare.
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%25 + 2
		g1 := randFreeTree(rng, n)
		// Rebuild the same graph with nodes inserted in reverse.
		g2 := NewGraph()
		for i := n - 1; i >= 0; i-- {
			if l, ok := g1.Label(i); ok {
				g2.AddNode(l)
			} else {
				g2.AddNodeUnlabeled()
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g1.Neighbors(u) {
				if u < v {
					if err := g2.AddEdge(n-1-u, n-1-v); err != nil {
						panic(err)
					}
				}
			}
		}
		opts := core.Options{MaxDist: core.D(5), MinOccur: 1}
		a, err1 := Mine(g1, opts)
		b, err2 := Mine(g2, opts)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMineForestFreeTrees(t *testing.T) {
	g1 := path(t, "a", "b", "c")
	g2 := path(t, "a", "x", "c")
	g3 := path(t, "a", "y", "c", "d")
	opts := core.DefaultForestOptions()
	fp, err := MineForest([]*Graph{g1, g2, g3}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// (a, c, 0) occurs in all three.
	if len(fp) == 0 || fp[0].Key != core.NewKey("a", "c", core.D(0)) || fp[0].Support != 3 {
		t.Fatalf("MineForest = %v", fp)
	}
	// Invalid member graph surfaces an error.
	bad := NewGraph()
	bad.AddNode("q")
	bad.AddNode("r")
	if _, err := MineForest([]*Graph{g1, bad}, opts); err == nil {
		t.Fatal("expected error for invalid graph in forest")
	}
}
