package newick

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"treemine/internal/tree"
)

// Scanner reads a stream of semicolon-terminated Newick trees one tree
// at a time, in bounded memory: only the bytes of the tree currently
// being assembled are buffered. It is the streaming counterpart of
// ParseAll (which is built on it) and plugs directly into the forest
// miners' TreeIterator contract: Next returns io.EOF after the last
// tree, and any other error is terminal.
//
// Chunking is syntax-aware: a ';' inside a quoted label ('Miller; 1988')
// or inside a [nested [comment]] does not terminate a tree, which a
// naive byte split would get wrong.
type Scanner struct {
	r      *bufio.Reader
	offset int // bytes consumed from the stream so far
	buf    []byte
	done   bool
}

// NewScanner returns a Scanner reading from r.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r)}
}

// Next parses and returns the next tree from the stream. It returns
// io.EOF when the stream is exhausted (trailing whitespace and nothing
// else), and a *ParseError with stream-absolute Offset on malformed
// input. After any error the Scanner is done and keeps returning it
// or io.EOF.
func (s *Scanner) Next() (*tree.Tree, error) {
	chunkStart := s.offset
	if err := s.chunk(); err != nil {
		return nil, err
	}
	t, err := Parse(string(s.buf))
	if err != nil {
		s.done = true
		var pe *ParseError
		if errors.As(err, &pe) {
			pe.Offset += chunkStart
		}
		return nil, err
	}
	return t, nil
}

// Skim consumes the next tree chunk without parsing it — the same
// syntax-aware chunking as Next (quoted and commented ';' do not
// terminate), but the tree is never built. It returns io.EOF when the
// stream is exhausted. Skimming is how range-addressed mining seeks a
// worker's partition: the trees before its range are chunk-scanned at
// I/O speed instead of parsed, so K workers each fast-forwarding over
// the corpus prefix cost bytes, not tree builds. A chunk Skim accepted
// may still fail to parse — the worker that owns that range surfaces
// the error; skimming counts chunks, exactly the trees Next would
// attempt.
func (s *Scanner) Skim() error {
	return s.chunk()
}

// chunk scans one semicolon-terminated tree chunk into s.buf.
func (s *Scanner) chunk() error {
	if s.done {
		return io.EOF
	}
	s.buf = s.buf[:0]
	inQuote := false
	commentDepth := 0
	for {
		c, err := s.r.ReadByte()
		if err == io.EOF {
			s.done = true
			if isBlank(string(s.buf)) {
				return io.EOF
			}
			return &ParseError{Offset: s.offset, Msg: "missing ';'"}
		}
		if err != nil {
			s.done = true
			return fmt.Errorf("newick: read: %w", err)
		}
		s.offset++
		s.buf = append(s.buf, c)
		// State order matters: comments may contain quote characters and
		// quoted labels may contain brackets, mirroring the parser.
		switch {
		case commentDepth > 0:
			if c == '[' {
				commentDepth++
			} else if c == ']' {
				commentDepth--
			}
		case inQuote:
			if c == '\'' {
				inQuote = false
			}
		case c == '\'':
			inQuote = true
		case c == '[':
			commentDepth++
		case c == ';':
			return nil
		}
	}
}

// Offset returns the number of bytes consumed from the stream so far.
func (s *Scanner) Offset() int { return s.offset }
