package newick

import (
	"testing"

	"treemine/internal/tree"
)

// FuzzParse checks two safety properties on arbitrary input: the parser
// never panics, and anything it accepts survives a Write/Parse round
// trip isomorphically. The seed corpus runs as part of `go test`; use
// `go test -fuzz=FuzzParse` for open-ended exploration.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(A,B,(C,D));",
		"(A:0.1,B:0.2,(C:0.3,D:0.4)E:0.5)F;",
		"('Homo sapiens','it''s',(X)'q(r)');",
		"[c](A[n],B) [t [nested]] ;",
		"A;",
		"(,);",
		"((((((deep))))));",
		"(A,B));",
		"('unterminated",
		"(A:xyz);",
		";",
		"()();",
		"(\x00,\xff);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := Write(parsed)
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Write produced unparseable output %q from %q: %v", out, input, err)
		}
		if !tree.Isomorphic(parsed, back) {
			t.Fatalf("round trip changed tree: %q → %q", input, out)
		}
	})
}
