package newick

import (
	"errors"
	"io"
	"strings"
	"testing"

	"treemine/internal/tree"
)

// FuzzParse checks two safety properties on arbitrary input: the parser
// never panics, and anything it accepts survives a Write/Parse round
// trip isomorphically. The seed corpus runs as part of `go test`; use
// `go test -fuzz=FuzzParse` for open-ended exploration.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(A,B,(C,D));",
		"(A:0.1,B:0.2,(C:0.3,D:0.4)E:0.5)F;",
		"('Homo sapiens','it''s',(X)'q(r)');",
		"[c](A[n],B) [t [nested]] ;",
		"A;",
		"(,);",
		"((((((deep))))));",
		"(A,B));",
		"('unterminated",
		"(A:xyz);",
		";",
		"()();",
		"(\x00,\xff);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := Write(parsed)
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Write produced unparseable output %q from %q: %v", out, input, err)
		}
		if !tree.Isomorphic(parsed, back) {
			t.Fatalf("round trip changed tree: %q → %q", input, out)
		}
		// Write must be a fixed point: serializing the reparse yields the
		// same bytes.
		if again := Write(back); again != out {
			t.Fatalf("Write not stable: %q then %q", out, again)
		}
	})
}

// FuzzScanner feeds arbitrary byte streams through the syntax-aware
// chunker: it must terminate, never panic, fail only with ParseErrors
// (or clean io.EOF), and every tree it does yield must survive the
// Write round trip. Multi-tree streams with ';' hidden in quotes and
// comments are the seeds — exactly the cases a naive byte split chunks
// wrong.
func FuzzScanner(f *testing.F) {
	seeds := []string{
		"(a,b);(c,d);",
		"('a;b',c);[x;](d,e);",
		"(a,b);garbage",
		"'open quote(a,b);",
		"[unclosed comment (a,b);",
		"(a,b);((c,d);",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sc := NewScanner(strings.NewReader(input))
		for {
			tr, err := sc.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrSyntax) {
					t.Fatalf("non-syntax error from Scanner on %q: %v", input, err)
				}
				// Errors are terminal: the next call reports EOF.
				if _, next := sc.Next(); next != io.EOF {
					t.Fatalf("Scanner not terminal after error: %v", next)
				}
				return
			}
			if _, err := Parse(Write(tr)); err != nil {
				t.Fatalf("scanned tree does not round-trip: %v", err)
			}
		}
	})
}
