package newick

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func TestParseWithLengthsBasic(t *testing.T) {
	tr, lens, err := ParseWithLengths("(A:0.5,B:2,(C:1,D)E:0.25);", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lens) != tr.Size() {
		t.Fatalf("lengths = %d for %d nodes", len(lens), tr.Size())
	}
	if lens[tr.Root()] != 0 {
		t.Fatalf("root length = %v", lens[tr.Root()])
	}
	byLabel := map[string]tree.NodeID{}
	tr.Walk(func(n tree.NodeID) bool {
		if l, ok := tr.Label(n); ok {
			byLabel[l] = n
		}
		return true
	})
	for label, want := range map[string]float64{"A": 0.5, "B": 2, "C": 1, "D": 1, "E": 0.25} {
		if got := lens[byLabel[label]]; got != want {
			t.Errorf("length(%s) = %v, want %v", label, got, want)
		}
	}
}

func TestParseWithLengthsDefaults(t *testing.T) {
	tr, lens, err := ParseWithLengths("(A,B);", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes() {
		if n == tr.Root() {
			continue
		}
		if lens[n] != 7 {
			t.Fatalf("default length = %v, want 7", lens[n])
		}
	}
}

func TestParseWithLengthsErrors(t *testing.T) {
	for _, s := range []string{"(A:x,B);", "((A,B);", "(A,B);x", "(A,B"} {
		if _, _, err := ParseWithLengths(s, 1); err == nil {
			t.Errorf("ParseWithLengths(%q): expected error", s)
		}
	}
}

func TestParseWithLengthsMatchesParse(t *testing.T) {
	// The weighted parser accepts exactly what Parse accepts and builds
	// the same topology.
	inputs := []string{
		"(A,B,(C,D));",
		"('x y':1,(B)Inner:2)R;",
		"A;",
		"((((a))));",
	}
	for _, s := range inputs {
		plain, err1 := Parse(s)
		withL, _, err2 := ParseWithLengths(s, 1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("accept mismatch on %q: %v vs %v", s, err1, err2)
		}
		if err1 == nil && !tree.Isomorphic(plain, withL) {
			t.Fatalf("topology mismatch on %q", s)
		}
	}
}

func TestWriteWithLengthsRoundTrip(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%25 + 2
		b := tree.NewBuilder()
		b.Root("r")
		for i := 1; i < n; i++ {
			b.Child(tree.NodeID(rng.Intn(i)), "n")
		}
		tr := b.MustBuild()
		lens := make([]float64, n)
		for i := 1; i < n; i++ {
			lens[i] = float64(rng.Intn(1000)+1) / 100
		}
		out := WriteWithLengths(tr, lens)
		back, backLens, err := ParseWithLengths(out, -1)
		if err != nil {
			t.Logf("reparse %q: %v", out, err)
			return false
		}
		if !tree.Isomorphic(tr, back) {
			return false
		}
		// All lengths explicit, so the default -1 must never appear.
		for i, l := range backLens {
			if tree.NodeID(i) != back.Root() && l <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
