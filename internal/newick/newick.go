// Package newick parses and serializes phylogenetic trees in the Newick
// format, the interchange format used by TreeBASE, PHYLIP and virtually
// every phylogenetics tool.
//
// The grammar accepted is the standard one:
//
//	tree    ::= subtree ";"
//	subtree ::= leaf | "(" subtree ("," subtree)* ")" [label] [":" length]
//	leaf    ::= [label] [":" length]
//	label   ::= unquoted | "'" quoted "'"
//
// Comments in square brackets and all whitespace between tokens are
// skipped. Quoted labels may contain any character, with '' standing for
// a single quote. Branch lengths are validated as numbers and then
// discarded: the cousin-pair algorithms of the paper operate on tree
// topology and labels only.
package newick

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"treemine/internal/tree"
)

// ErrSyntax is wrapped by all parse errors; use errors.Is to detect them.
var ErrSyntax = errors.New("newick: syntax error")

// ParseError describes a syntax error at a byte offset of the input.
type ParseError struct {
	Offset int    // byte offset where the error was detected
	Msg    string // human-readable description
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("newick: syntax error at offset %d: %s", e.Offset, e.Msg)
}

// Unwrap makes errors.Is(err, ErrSyntax) succeed for ParseErrors.
func (e *ParseError) Unwrap() error { return ErrSyntax }

type parser struct {
	s   string
	pos int
	b   *tree.Builder
}

// Parse parses a single Newick tree from s. Input after the terminating
// semicolon (other than whitespace and comments) is an error.
func Parse(s string) (*tree.Tree, error) {
	p := &parser{s: s, b: tree.NewBuilder()}
	if err := p.parseTree(); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, p.errorf("trailing input after ';'")
	}
	return p.b.Build()
}

// ParseAll parses a sequence of Newick trees from r, one per terminating
// semicolon. Trees may span or share lines. It returns the trees parsed
// before the first error, along with that error (nil on clean EOF).
// ParseAll is the materializing convenience over Scanner — use Scanner
// directly to mine streams that should not live in memory at once.
func ParseAll(r io.Reader) ([]*tree.Tree, error) {
	sc := NewScanner(r)
	var trees []*tree.Tree
	for {
		t, err := sc.Next()
		if err == io.EOF {
			return trees, nil
		}
		if err != nil {
			return trees, err
		}
		trees = append(trees, t)
	}
}

func isBlank(s string) bool {
	for _, c := range s {
		switch c {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '[':
			depth := 0
			start := p.pos
			for ; p.pos < len(p.s); p.pos++ {
				if p.s[p.pos] == '[' {
					depth++
				} else if p.s[p.pos] == ']' {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if depth != 0 {
				p.pos = start
				return // unterminated comment surfaces as a later error
			}
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func (p *parser) parseTree() error {
	p.skipSpace()
	if err := p.parseSubtree(tree.None); err != nil {
		return err
	}
	p.skipSpace()
	if p.peek() != ';' {
		return p.errorf("expected ';', got %q", string(p.peek()))
	}
	p.pos++
	return nil
}

func (p *parser) parseSubtree(parent tree.NodeID) error {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		// Internal node: create it first so children can attach, then
		// read its optional label afterwards. Since labels are stored on
		// nodes at creation, parse children into a temporary list? The
		// Builder assigns labels at creation, so instead we parse the
		// whole group into a staging structure.
		return p.parseInternal(parent)
	}
	label, labeled, err := p.parseLabel()
	if err != nil {
		return err
	}
	if err := p.parseLength(); err != nil {
		return err
	}
	p.addNode(parent, label, labeled)
	return nil
}

// staged is a parse-time node; the tree is rebuilt from staged nodes once
// each internal node's trailing label has been read.
type staged struct {
	label    string
	labeled  bool
	children []*staged
}

func (p *parser) parseInternal(parent tree.NodeID) error {
	st, err := p.parseStagedGroup()
	if err != nil {
		return err
	}
	p.emit(st, parent)
	return nil
}

// parseStagedGroup parses "(...)label:len" with p.pos just past '('.
func (p *parser) parseStagedGroup() (*staged, error) {
	node := &staged{}
	for {
		child, err := p.parseStagedSubtree()
		if err != nil {
			return nil, err
		}
		node.children = append(node.children, child)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			label, labeled, err := p.parseLabel()
			if err != nil {
				return nil, err
			}
			if err := p.parseLength(); err != nil {
				return nil, err
			}
			node.label, node.labeled = label, labeled
			return node, nil
		case 0:
			return nil, p.errorf("unexpected end of input inside '('")
		default:
			return nil, p.errorf("expected ',' or ')', got %q", string(p.peek()))
		}
	}
}

func (p *parser) parseStagedSubtree() (*staged, error) {
	p.skipSpace()
	if p.peek() == '(' {
		p.pos++
		return p.parseStagedGroup()
	}
	label, labeled, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	if err := p.parseLength(); err != nil {
		return nil, err
	}
	return &staged{label: label, labeled: labeled}, nil
}

func (p *parser) emit(st *staged, parent tree.NodeID) {
	id := p.addNode(parent, st.label, st.labeled)
	for _, c := range st.children {
		p.emit(c, id)
	}
}

func (p *parser) addNode(parent tree.NodeID, label string, labeled bool) tree.NodeID {
	if parent == tree.None {
		if labeled {
			return p.b.Root(label)
		}
		return p.b.RootUnlabeled()
	}
	if labeled {
		return p.b.Child(parent, label)
	}
	return p.b.ChildUnlabeled(parent)
}

// parseLabel reads an optional label. It returns labeled=false when no
// label is present.
func (p *parser) parseLabel() (string, bool, error) {
	p.skipSpace()
	if p.peek() == '\'' {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.s) {
				return "", false, p.errorf("unterminated quoted label")
			}
			c := p.s[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.s) && p.s[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), true, nil
			}
			b.WriteByte(c)
			p.pos++
		}
	}
	start := p.pos
	for p.pos < len(p.s) && !isDelim(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", false, nil
	}
	return p.s[start:p.pos], true, nil
}

func isDelim(c byte) bool {
	switch c {
	case '(', ')', ',', ':', ';', '[', ']', '\'', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}

// parseLength reads an optional ":<number>" branch length, validating the
// number and discarding it.
func (p *parser) parseLength() error {
	p.skipSpace()
	if p.peek() != ':' {
		return nil
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && !isDelim(p.s[p.pos]) {
		p.pos++
	}
	if _, err := strconv.ParseFloat(p.s[start:p.pos], 64); err != nil {
		p.pos = start
		return p.errorf("invalid branch length %q", p.s[start:p.pos])
	}
	return nil
}

// Write serializes t as a Newick string terminated by ';'. Labels
// containing delimiter characters are quoted; sibling order follows node
// IDs, so Parse(Write(t)) is isomorphic to t.
func Write(t *tree.Tree) string {
	var b strings.Builder
	writeNode(t, t.Root(), &b)
	b.WriteByte(';')
	return b.String()
}

func writeNode(t *tree.Tree, n tree.NodeID, b *strings.Builder) {
	if kids := t.Children(n); len(kids) > 0 {
		b.WriteByte('(')
		for i, k := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			writeNode(t, k, b)
		}
		b.WriteByte(')')
	}
	if l, ok := t.Label(n); ok {
		writeLabel(l, b)
	}
}

func writeLabel(l string, b *strings.Builder) {
	if l != "" && !strings.ContainsAny(l, "()[]',;: \t\n\r") {
		b.WriteString(l)
		return
	}
	b.WriteByte('\'')
	b.WriteString(strings.ReplaceAll(l, "'", "''"))
	b.WriteByte('\'')
}
