package newick

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"treemine/internal/tree"
)

func mustParse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return tr
}

func TestParseSimple(t *testing.T) {
	tr := mustParse(t, "(A,B,(C,D));")
	if tr.Size() != 6 {
		t.Fatalf("Size = %d, want 6", tr.Size())
	}
	if tr.Labeled(tr.Root()) {
		t.Error("root should be unlabeled")
	}
	want := []string{"A", "B", "C", "D"}
	got := tr.LeafLabels()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("leaves = %v, want %v", got, want)
	}
}

func TestParseInternalLabelsAndLengths(t *testing.T) {
	tr := mustParse(t, "(A:0.1,B:0.2,(C:0.3,D:0.4)E:0.5)F;")
	if l, ok := tr.Label(tr.Root()); !ok || l != "F" {
		t.Fatalf("root label = %q,%v, want F", l, ok)
	}
	// E is the internal child with two children.
	var foundE bool
	tr.Walk(func(n tree.NodeID) bool {
		if l, ok := tr.Label(n); ok && l == "E" {
			foundE = true
			if tr.NumChildren(n) != 2 {
				t.Errorf("E children = %d, want 2", tr.NumChildren(n))
			}
		}
		return true
	})
	if !foundE {
		t.Fatal("internal label E not found")
	}
}

func TestParseQuotedLabels(t *testing.T) {
	tr := mustParse(t, "('Homo sapiens','it''s',(A)'x(y)');")
	labels := map[string]bool{}
	tr.Walk(func(n tree.NodeID) bool {
		if l, ok := tr.Label(n); ok {
			labels[l] = true
		}
		return true
	})
	for _, want := range []string{"Homo sapiens", "it's", "x(y)", "A"} {
		if !labels[want] {
			t.Errorf("missing label %q; have %v", want, labels)
		}
	}
}

func TestParseComments(t *testing.T) {
	tr := mustParse(t, "[comment](A[note],B) [trailing [nested]] ;")
	if tr.Size() != 3 {
		t.Fatalf("Size = %d, want 3", tr.Size())
	}
}

func TestParseWhitespace(t *testing.T) {
	tr := mustParse(t, " ( A ,\n\tB , ( C , D ) ) ;\n")
	if tr.Size() != 6 {
		t.Fatalf("Size = %d, want 6", tr.Size())
	}
}

func TestParseSingleLeaf(t *testing.T) {
	tr := mustParse(t, "A;")
	if tr.Size() != 1 || tr.MustLabel(tr.Root()) != "A" {
		t.Fatalf("single leaf parse wrong: %v", tr)
	}
}

func TestParseNegativeAndExponentLengths(t *testing.T) {
	tr := mustParse(t, "(A:-0.5,B:1e-3);")
	if tr.Size() != 3 {
		t.Fatalf("Size = %d", tr.Size())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"(A,B)",          // missing ;
		"(A,B;",          // unclosed paren
		"(A,B));",        // extra paren
		"(A,,B);",        // empty sibling is a label-less leaf: actually legal
		"(A,B); junk",    // trailing input
		"(A:xyz,B);",     // bad branch length
		"('unterminated", // unterminated quote
		"[unterminated (A,B);",
	}
	for _, s := range cases {
		if s == "(A,,B);" {
			// Newick permits anonymous leaves; ensure it parses.
			if _, err := Parse(s); err != nil {
				t.Errorf("Parse(%q) should accept anonymous leaf: %v", s, err)
			}
			continue
		}
		_, err := Parse(s)
		if err == nil {
			t.Errorf("Parse(%q): expected error", s)
			continue
		}
		if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q): error %v is not ErrSyntax", s, err)
		}
	}
}

func TestParseErrorOffset(t *testing.T) {
	_, err := Parse("(A,B));")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not *ParseError", err)
	}
	if pe.Offset != 5 {
		t.Errorf("Offset = %d, want 5", pe.Offset)
	}
	if !strings.Contains(pe.Error(), "offset 5") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestParseAll(t *testing.T) {
	in := "(A,B);\n(C,(D,E));\n[x]\n(F,G);"
	trees, err := ParseAll(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(trees) != 3 {
		t.Fatalf("ParseAll returned %d trees, want 3", len(trees))
	}
	if trees[1].Size() != 5 {
		t.Errorf("second tree size = %d, want 5", trees[1].Size())
	}
}

func TestParseAllEmpty(t *testing.T) {
	trees, err := ParseAll(strings.NewReader("  \n\t"))
	if err != nil || len(trees) != 0 {
		t.Fatalf("ParseAll(blank) = %d trees, err %v", len(trees), err)
	}
}

func TestParseAllErrorOffsetShifted(t *testing.T) {
	_, err := ParseAll(strings.NewReader("(A,B);(C));"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not *ParseError", err)
	}
	if pe.Offset <= 6 {
		t.Errorf("Offset = %d, want > 6 (shifted past first tree)", pe.Offset)
	}
}

func TestWriteQuoting(t *testing.T) {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, "plain")
	b.Child(r, "has space")
	b.Child(r, "it's")
	tr := b.MustBuild()
	s := Write(tr)
	if !strings.Contains(s, "'has space'") || !strings.Contains(s, "'it''s'") {
		t.Fatalf("Write = %q, quoting missing", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !tree.Isomorphic(tr, back) {
		t.Fatal("round trip lost structure")
	}
}

func TestRoundTripProperty(t *testing.T) {
	labels := []string{"a", "b", "c", "Homo sapiens", "x'y", "n:1", ""}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%30 + 1
		b := tree.NewBuilder()
		b.Root(labels[rng.Intn(len(labels))])
		for i := 1; i < n; i++ {
			p := tree.NodeID(rng.Intn(i))
			if rng.Intn(5) == 0 {
				b.ChildUnlabeled(p)
			} else {
				b.Child(p, labels[rng.Intn(len(labels))])
			}
		}
		tr := b.MustBuild()
		back, err := Parse(Write(tr))
		if err != nil {
			t.Logf("reparse error: %v for %q", err, Write(tr))
			return false
		}
		return tree.Isomorphic(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
