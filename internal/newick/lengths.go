package newick

import (
	"strconv"
	"strings"

	"treemine/internal/tree"
)

// ParseWithLengths parses a Newick tree keeping its branch lengths: the
// returned slice has one entry per node (indexed by NodeID) holding the
// length of the edge to the node's parent. Edges without an explicit
// ":length" get defaultLen; the root's entry is always 0. Feed the
// result to internal/weighted for weighted cousin mining over real
// phylogeny branch lengths.
func ParseWithLengths(s string, defaultLen float64) (*tree.Tree, []float64, error) {
	p := &lengthParser{parser: parser{s: s, b: tree.NewBuilder()}, def: defaultLen}
	if err := p.parseTree(); err != nil {
		return nil, nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, nil, p.errorf("trailing input after ';'")
	}
	t, err := p.b.Build()
	if err != nil {
		return nil, nil, err
	}
	return t, p.lengths, nil
}

// lengthParser wraps the standard parser, re-running the grammar while
// capturing the per-node lengths. The grammar is small enough that a
// second specialized implementation stays clearer than threading an
// optional collector through the fast path.
type lengthParser struct {
	parser
	def     float64
	lengths []float64
}

func (p *lengthParser) parseTree() error {
	p.skipSpace()
	if err := p.parseSubtree(tree.None); err != nil {
		return err
	}
	p.skipSpace()
	if p.peek() != ';' {
		return p.errorf("expected ';', got %q", string(p.peek()))
	}
	p.pos++
	return nil
}

type stagedL struct {
	label    string
	labeled  bool
	length   float64
	children []*stagedL
}

func (p *lengthParser) parseSubtree(parent tree.NodeID) error {
	p.skipSpace()
	var st *stagedL
	var err error
	if p.peek() == '(' {
		p.pos++
		st, err = p.parseGroup()
	} else {
		st, err = p.parseLeaf()
	}
	if err != nil {
		return err
	}
	p.emit(st, parent)
	return nil
}

func (p *lengthParser) parseGroup() (*stagedL, error) {
	node := &stagedL{length: p.def}
	for {
		var child *stagedL
		var err error
		p.skipSpace()
		if p.peek() == '(' {
			p.pos++
			child, err = p.parseGroup()
		} else {
			child, err = p.parseLeaf()
		}
		if err != nil {
			return nil, err
		}
		node.children = append(node.children, child)
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			label, labeled, err := p.parseLabel()
			if err != nil {
				return nil, err
			}
			length, err := p.parseLengthValue()
			if err != nil {
				return nil, err
			}
			node.label, node.labeled, node.length = label, labeled, length
			return node, nil
		case 0:
			return nil, p.errorf("unexpected end of input inside '('")
		default:
			return nil, p.errorf("expected ',' or ')', got %q", string(p.peek()))
		}
	}
}

func (p *lengthParser) parseLeaf() (*stagedL, error) {
	label, labeled, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	length, err := p.parseLengthValue()
	if err != nil {
		return nil, err
	}
	return &stagedL{label: label, labeled: labeled, length: length}, nil
}

// parseLengthValue reads an optional ":<number>", returning the default
// when absent.
func (p *lengthParser) parseLengthValue() (float64, error) {
	p.skipSpace()
	if p.peek() != ':' {
		return p.def, nil
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) && !isDelim(p.s[p.pos]) {
		p.pos++
	}
	v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil {
		p.pos = start
		return 0, p.errorf("invalid branch length %q", p.s[start:p.pos])
	}
	return v, nil
}

func (p *lengthParser) emit(st *stagedL, parent tree.NodeID) {
	id := p.addNode(parent, st.label, st.labeled)
	for int(id) >= len(p.lengths) {
		p.lengths = append(p.lengths, 0)
	}
	if parent == tree.None {
		p.lengths[id] = 0
	} else {
		p.lengths[id] = st.length
	}
	for _, c := range st.children {
		p.emit(c, id)
	}
}

// WriteWithLengths serializes t with the given per-node branch lengths
// (indexed by NodeID; the root's entry is ignored), producing input that
// ParseWithLengths round-trips.
func WriteWithLengths(t *tree.Tree, lengths []float64) string {
	var b strings.Builder
	writeNodeL(t, t.Root(), lengths, &b)
	b.WriteByte(';')
	return b.String()
}

func writeNodeL(t *tree.Tree, n tree.NodeID, lengths []float64, b *strings.Builder) {
	if kids := t.Children(n); len(kids) > 0 {
		b.WriteByte('(')
		for i, k := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			writeNodeL(t, k, lengths, b)
		}
		b.WriteByte(')')
	}
	if l, ok := t.Label(n); ok {
		writeLabel(l, b)
	}
	if t.Parent(n) != tree.None {
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(lengths[n], 'g', -1, 64))
	}
}
