package newick

import (
	"errors"
	"io"
	"strings"
	"testing"

	"treemine/internal/tree"
)

func scanAll(t *testing.T, input string) []*tree.Tree {
	t.Helper()
	sc := NewScanner(strings.NewReader(input))
	var out []*tree.Tree
	for {
		tr, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, tr)
	}
}

func TestScannerMultipleTrees(t *testing.T) {
	trees := scanAll(t, "(a,b);\n(c,(d,e));  ((f,g),h) ;")
	if len(trees) != 3 {
		t.Fatalf("got %d trees, want 3", len(trees))
	}
	if got := Write(trees[1]); got != "(c,(d,e));" {
		t.Fatalf("tree 2 = %q", got)
	}
}

// TestScannerQuotedSemicolon pins the syntax-aware chunking: a ';'
// inside a quoted label must not terminate the tree.
func TestScannerQuotedSemicolon(t *testing.T) {
	trees := scanAll(t, "('Miller; 1988',b);('x''y;z',c);")
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	kids := trees[0].Children(trees[0].Root())
	if l, _ := trees[0].Label(kids[0]); l != "Miller; 1988" {
		t.Fatalf("label = %q", l)
	}
	kids = trees[1].Children(trees[1].Root())
	if l, _ := trees[1].Label(kids[0]); l != "x'y;z" {
		t.Fatalf("escaped label = %q", l)
	}
}

// TestScannerCommentSemicolon: a ';' inside a (possibly nested) comment
// is not a terminator either.
func TestScannerCommentSemicolon(t *testing.T) {
	trees := scanAll(t, "[header; [nested;]](a,b);(c,d)[trailing;];")
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if got := Write(trees[0]); got != "(a,b);" {
		t.Fatalf("tree 1 = %q", got)
	}
}

// TestScannerErrorOffset: parse errors in later trees report
// stream-absolute offsets, matching ParseAll's contract.
func TestScannerErrorOffset(t *testing.T) {
	sc := NewScanner(strings.NewReader("(a,b);(c,d));"))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := sc.Next()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ParseError", err)
	}
	// The stray ')' sits at absolute offset 11.
	if pe.Offset != 11 {
		t.Fatalf("Offset = %d, want 11", pe.Offset)
	}
	if !errors.Is(err, ErrSyntax) {
		t.Fatal("not ErrSyntax")
	}
	// After an error the scanner is done.
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("post-error Next = %v, want io.EOF", err)
	}
}

func TestScannerMissingSemicolon(t *testing.T) {
	sc := NewScanner(strings.NewReader("(a,b);(c,d)"))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := sc.Next()
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Msg != "missing ';'" {
		t.Fatalf("err = %v, want missing ';'", err)
	}
	if pe.Offset != len("(a,b);(c,d)") {
		t.Fatalf("Offset = %d", pe.Offset)
	}
}

func TestScannerBlankInput(t *testing.T) {
	for _, input := range []string{"", "  \n\t\r\n"} {
		sc := NewScanner(strings.NewReader(input))
		if _, err := sc.Next(); err != io.EOF {
			t.Fatalf("input %q: err = %v, want io.EOF", input, err)
		}
	}
}

// TestScannerAgreesWithParseAll: the streaming and materializing paths
// must see the same forest.
func TestScannerAgreesWithParseAll(t *testing.T) {
	const input = "(a,(b,c))root;\n'q t':1.5;\n(x,y,z);"
	fromAll, err := ParseAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	fromScan := scanAll(t, input)
	if len(fromAll) != len(fromScan) {
		t.Fatalf("%d vs %d trees", len(fromAll), len(fromScan))
	}
	for i := range fromAll {
		if Write(fromAll[i]) != Write(fromScan[i]) {
			t.Fatalf("tree %d differs: %q vs %q", i, Write(fromAll[i]), Write(fromScan[i]))
		}
	}
}

// TestScannerOffsetProgress: Offset tracks consumed bytes, usable for
// progress reporting over large files.
func TestScannerOffsetProgress(t *testing.T) {
	sc := NewScanner(strings.NewReader("(a,b);(c,d);"))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if sc.Offset() != 6 {
		t.Fatalf("Offset after first tree = %d, want 6", sc.Offset())
	}
}

// TestScannerSkim: Skim consumes exactly the chunks Next would —
// including quoted and commented semicolons — and interleaves with
// Next without desynchronizing.
func TestScannerSkim(t *testing.T) {
	const input = "(a,b);('x;y',c);[c;mm](d,e);(f,g);"
	s := NewScanner(strings.NewReader(input))
	if err := s.Skim(); err != nil {
		t.Fatalf("skim 0: %v", err)
	}
	tr, err := s.Next()
	if err != nil {
		t.Fatalf("next after skim: %v", err)
	}
	if got := tr.MustLabel(tr.Children(tr.Root())[0]); got != "x;y" {
		t.Fatalf("tree after skim starts with %q, want the quoted label", got)
	}
	if err := s.Skim(); err != nil {
		t.Fatalf("skim 2: %v", err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatalf("next 3: %v", err)
	}
	if err := s.Skim(); err != io.EOF {
		t.Fatalf("skim past end = %v, want io.EOF", err)
	}
}

// TestScannerSkimAcceptsMalformed: a chunk that would fail to parse
// still skims — parse errors belong to whoever calls Next on it.
func TestScannerSkimAcceptsMalformed(t *testing.T) {
	s := NewScanner(strings.NewReader("((broken;(a,b);"))
	if err := s.Skim(); err != nil {
		t.Fatalf("skim over malformed chunk: %v", err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatalf("next after malformed skim: %v", err)
	}
}
