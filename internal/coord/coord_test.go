package coord

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treemine/internal/faults"
	"treemine/internal/store"
)

// countingRunner tracks attempts per partition and concurrency, and
// fails a partition until its failure budget is spent.
type countingRunner struct {
	mu        sync.Mutex
	attempts  map[int]int
	failUntil map[int]int // partition → fail this many attempts first
	inflight  int32
	peak      int32
	delay     time.Duration
}

func newCountingRunner() *countingRunner {
	return &countingRunner{attempts: map[int]int{}, failUntil: map[int]int{}}
}

func (r *countingRunner) Run(ctx context.Context, part, attempt int) error {
	cur := atomic.AddInt32(&r.inflight, 1)
	defer atomic.AddInt32(&r.inflight, -1)
	for {
		old := atomic.LoadInt32(&r.peak)
		if cur <= old || atomic.CompareAndSwapInt32(&r.peak, old, cur) {
			break
		}
	}
	r.mu.Lock()
	r.attempts[part]++
	n := r.attempts[part]
	fail := n <= r.failUntil[part]
	r.mu.Unlock()
	if r.delay > 0 {
		select {
		case <-time.After(r.delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fail {
		return fmt.Errorf("injected failure %d for partition %d", n, part)
	}
	return nil
}

func (r *countingRunner) count(part int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts[part]
}

func allDone(t *testing.T, res *Result) {
	t.Helper()
	for i, p := range res.Partitions {
		if p.State != Done {
			t.Fatalf("partition %d state = %v, want done (err %v)", i, p.State, p.Err)
		}
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("Quarantined = %v, want none", res.Quarantined)
	}
}

func TestSuperviseAllSucceedBoundedPool(t *testing.T) {
	r := newCountingRunner()
	r.delay = 5 * time.Millisecond
	res, err := Supervise(context.Background(), Config{Partitions: 9, Workers: 3}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	for i := 0; i < 9; i++ {
		if r.count(i) != 1 {
			t.Fatalf("partition %d ran %d times, want 1", i, r.count(i))
		}
	}
	if peak := atomic.LoadInt32(&r.peak); peak > 3 {
		t.Fatalf("peak concurrency %d exceeds -dist-workers 3", peak)
	}
}

func TestSuperviseRetriesThenSucceeds(t *testing.T) {
	r := newCountingRunner()
	r.failUntil[1] = 2
	var log strings.Builder
	res, err := Supervise(context.Background(), Config{
		Partitions: 3, Workers: 2, Retries: 3,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Log: &log,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	if r.count(1) != 3 {
		t.Fatalf("partition 1 ran %d times, want 3 (2 failures + success)", r.count(1))
	}
	atts := res.Partitions[1].Attempts
	if len(atts) != 3 {
		t.Fatalf("partition 1 recorded %d attempts, want 3", len(atts))
	}
	for i, want := range []string{store.AttemptError, store.AttemptError, store.AttemptOK} {
		if atts[i].Outcome != want {
			t.Fatalf("attempt %d outcome %q, want %q", i, atts[i].Outcome, want)
		}
	}
	if !strings.Contains(log.String(), "retry 1/3") {
		t.Fatalf("log missing retry line:\n%s", log.String())
	}
}

func TestSuperviseQuarantineAfterBudget(t *testing.T) {
	r := newCountingRunner()
	r.failUntil[0] = 1000
	var log strings.Builder
	res, err := Supervise(context.Background(), Config{
		Partitions: 2, Workers: 2, Retries: 2,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		Log: &log,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	if got := res.Quarantined; len(got) != 1 || got[0] != 0 {
		t.Fatalf("Quarantined = %v, want [0]", got)
	}
	if res.Partitions[0].State != Quarantined {
		t.Fatalf("partition 0 state = %v", res.Partitions[0].State)
	}
	if r.count(0) != 3 {
		t.Fatalf("partition 0 ran %d times, want 3 (1 + 2 retries)", r.count(0))
	}
	if res.Partitions[0].Err == nil || !strings.Contains(res.Partitions[0].Err.Error(), "injected failure") {
		t.Fatalf("partition 0 err = %v", res.Partitions[0].Err)
	}
	if res.Partitions[1].State != Done {
		t.Fatalf("partition 1 state = %v, want done", res.Partitions[1].State)
	}
	if !strings.Contains(log.String(), "quarantined after 3 failed attempt(s)") {
		t.Fatalf("log missing quarantine line:\n%s", log.String())
	}
}

func TestSuperviseTimeoutCountsAsFailure(t *testing.T) {
	var first int32
	r := RunnerFunc(func(ctx context.Context, part, attempt int) error {
		if part == 0 && atomic.CompareAndSwapInt32(&first, 0, 1) {
			<-ctx.Done() // stall until the per-attempt timeout reaps us
			return ctx.Err()
		}
		return nil
	})
	res, err := Supervise(context.Background(), Config{
		Partitions: 2, Workers: 2, Retries: 1,
		Backoff: time.Millisecond, Timeout: 50 * time.Millisecond,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	atts := res.Partitions[0].Attempts
	if len(atts) != 2 {
		t.Fatalf("partition 0 recorded %d attempts, want 2", len(atts))
	}
	if atts[0].Outcome != store.AttemptTimeout {
		t.Fatalf("attempt 0 outcome %q, want timeout", atts[0].Outcome)
	}
	if !strings.Contains(atts[0].Error, "-attempt-timeout") {
		t.Fatalf("timeout attempt error %q does not name the knob", atts[0].Error)
	}
}

func TestSuperviseStragglerSpeculation(t *testing.T) {
	// Partition 2's first attempt stalls forever; with speculation on,
	// a duplicate attempt is launched and wins, and the stalled twin is
	// cancelled and recorded superseded.
	var stall int32
	r := RunnerFunc(func(ctx context.Context, part, attempt int) error {
		if part == 2 && atomic.CompareAndSwapInt32(&stall, 0, 1) {
			<-ctx.Done()
			return ctx.Err()
		}
		select { // fast enough to calibrate the median, slow enough to overlap
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
		return nil
	})
	var log strings.Builder
	res, err := Supervise(context.Background(), Config{
		Partitions: 3, Workers: 4, Retries: 0,
		StragglerFactor: 1.5, StragglerMin: 30 * time.Millisecond,
		Log: &log,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	atts := res.Partitions[2].Attempts
	if len(atts) != 2 {
		t.Fatalf("partition 2 recorded %d attempts, want 2 (straggler + speculative):\n%s", len(atts), log.String())
	}
	var sawSpecOK, sawSuperseded bool
	for _, a := range atts {
		if a.Speculative && a.Outcome == store.AttemptOK {
			sawSpecOK = true
		}
		if !a.Speculative && a.Outcome == store.AttemptSuperseded {
			sawSuperseded = true
		}
	}
	if !sawSpecOK || !sawSuperseded {
		t.Fatalf("attempts = %+v; want speculative ok + original superseded", atts)
	}
	if !strings.Contains(log.String(), "launching speculative attempt") {
		t.Fatalf("log missing speculation line:\n%s", log.String())
	}
}

func TestSuperviseOriginalBeatsSpeculative(t *testing.T) {
	// The straggler is merely slow, not dead: the original completes
	// first and the speculative twin is reaped as superseded.
	var slow int32
	r := RunnerFunc(func(ctx context.Context, part, attempt int) error {
		d := 5 * time.Millisecond
		if part == 2 && attempt == 0 && atomic.CompareAndSwapInt32(&slow, 0, 1) {
			d = 80 * time.Millisecond
		} else if part == 2 {
			d = 5 * time.Second // the twin would take far longer
		}
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	res, err := Supervise(context.Background(), Config{
		Partitions: 3, Workers: 4, Retries: 0,
		StragglerFactor: 1.5, StragglerMin: 20 * time.Millisecond,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	atts := res.Partitions[2].Attempts
	if len(atts) != 2 {
		t.Fatalf("partition 2 recorded %d attempts, want 2: %+v", len(atts), atts)
	}
	var originalWon bool
	for _, a := range atts {
		if !a.Speculative && a.Outcome == store.AttemptOK {
			originalWon = true
		}
	}
	if !originalWon {
		t.Fatalf("attempts = %+v; want original attempt to win", atts)
	}
}

func TestSuperviseSkipCompleted(t *testing.T) {
	r := newCountingRunner()
	var log strings.Builder
	res, err := Supervise(context.Background(), Config{
		Partitions: 4, Workers: 2,
		Completed: func(part int) bool { return part == 0 || part == 2 },
		Log:       &log,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	for _, i := range []int{0, 2} {
		if r.count(i) != 0 {
			t.Fatalf("completed partition %d was re-run %d times", i, r.count(i))
		}
		if !res.Partitions[i].Skipped || len(res.Partitions[i].Attempts) != 0 {
			t.Fatalf("partition %d result = %+v, want skipped with no attempts", i, res.Partitions[i])
		}
	}
	for _, i := range []int{1, 3} {
		if r.count(i) != 1 {
			t.Fatalf("partition %d ran %d times, want 1", i, r.count(i))
		}
	}
	if !strings.Contains(log.String(), "partition 0: valid shard present, skipping") {
		t.Fatalf("log missing skip line:\n%s", log.String())
	}
}

func TestSuperviseContextCancelDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 8)
	r := RunnerFunc(func(rctx context.Context, part, attempt int) error {
		started <- struct{}{}
		<-rctx.Done()
		return rctx.Err()
	})
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = Supervise(ctx, Config{Partitions: 5, Workers: 2, Retries: 3, Backoff: time.Millisecond}, r)
	}()
	<-started
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Supervise did not drain after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Supervise err = %v, want context.Canceled", err)
	}
	for i, p := range res.Partitions {
		if p.State != Aborted {
			t.Fatalf("partition %d state = %v, want aborted", i, p.State)
		}
	}
}

func TestSuperviseWritesJournal(t *testing.T) {
	r := newCountingRunner()
	r.failUntil[1] = 1
	journal := filepath.Join(t.TempDir(), "coordinator.json")
	res, err := Supervise(context.Background(), Config{
		Partitions: 2, Workers: 2, Retries: 2,
		Backoff: time.Millisecond,
		Journal: journal, Manifest: "plan.json",
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	j, err := store.LoadJournal(journal)
	if err != nil {
		t.Fatalf("LoadJournal: %v", err)
	}
	if j.Manifest != "plan.json" || len(j.Partitions) != 2 {
		t.Fatalf("journal = %+v", j)
	}
	if j.Partitions[0].State != "done" || j.Partitions[1].State != "done" {
		t.Fatalf("journal states = %q, %q", j.Partitions[0].State, j.Partitions[1].State)
	}
	if len(j.Partitions[1].Attempts) != 2 || j.Partitions[1].Attempts[0].Outcome != store.AttemptError {
		t.Fatalf("journal partition 1 attempts = %+v", j.Partitions[1].Attempts)
	}
}

func TestSuperviseJournalFailureIsNonFatal(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	faults.Enable(faults.CoordJournal, faults.Spec{Mode: faults.ModeError})
	r := newCountingRunner()
	var log strings.Builder
	res, err := Supervise(context.Background(), Config{
		Partitions: 2, Workers: 2,
		Journal: filepath.Join(t.TempDir(), "coordinator.json"),
		Log:     &log,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	if !strings.Contains(log.String(), "cannot write coordinator journal") {
		t.Fatalf("log missing journal warning:\n%s", log.String())
	}
}

func TestSuperviseLaunchFailpointPerPartition(t *testing.T) {
	// The coordinator-side launch failpoint for partition 1 fires twice
	// then stays quiet: supervision retries through it and the worker
	// itself only ever runs once.
	faults.Reset()
	t.Cleanup(faults.Reset)
	faults.Enable(faults.CoordLaunch+"/1", faults.Spec{Mode: faults.ModeError, Count: 2})
	r := newCountingRunner()
	res, err := Supervise(context.Background(), Config{
		Partitions: 3, Workers: 2, Retries: 3,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	}, r)
	if err != nil {
		t.Fatalf("Supervise: %v", err)
	}
	allDone(t, res)
	if r.count(1) != 1 {
		t.Fatalf("partition 1 worker ran %d times, want 1 (launch failures precede it)", r.count(1))
	}
	atts := res.Partitions[1].Attempts
	if len(atts) != 3 {
		t.Fatalf("partition 1 recorded %d attempts, want 3", len(atts))
	}
	for i, want := range []string{store.AttemptError, store.AttemptError, store.AttemptOK} {
		if atts[i].Outcome != want {
			t.Fatalf("attempt %d outcome %q, want %q", i, atts[i].Outcome, want)
		}
	}
}

func TestSuperviseRejectsBadConfig(t *testing.T) {
	if _, err := Supervise(context.Background(), Config{Partitions: 0}, newCountingRunner()); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := Supervise(context.Background(), Config{Partitions: 1}, nil); err == nil {
		t.Fatal("nil runner accepted")
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	base, max := 250*time.Millisecond, 30*time.Second
	for part := 0; part < 4; part++ {
		prevBase := time.Duration(0)
		for retry := 1; retry <= 10; retry++ {
			d1 := backoffDelay(base, max, part, retry)
			d2 := backoffDelay(base, max, part, retry)
			if d1 != d2 {
				t.Fatalf("backoffDelay(part=%d retry=%d) nondeterministic: %v vs %v", part, retry, d1, d2)
			}
			// The un-jittered component doubles until the cap; jitter adds
			// at most half of it.
			want := base << (retry - 1)
			if want > max || want <= 0 {
				want = max
			}
			if d1 < want || d1 > want+want/2 {
				t.Fatalf("backoffDelay(part=%d retry=%d) = %v, want in [%v, %v]", part, retry, d1, want, want+want/2)
			}
			if want == prevBase && retry > 1 {
				// capped region: fine
			}
			prevBase = want
		}
	}
	// Different partitions retry at different moments (jitter spreads).
	if backoffDelay(base, max, 0, 1) == backoffDelay(base, max, 1, 1) &&
		backoffDelay(base, max, 0, 2) == backoffDelay(base, max, 1, 2) {
		t.Fatal("jitter identical across partitions for two consecutive retries")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Pending: "pending", Running: "running", Retrying: "retrying",
		Done: "done", Quarantined: "quarantined", Aborted: "aborted",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if got := State(99).String(); got != "state(99)" {
		t.Fatalf("out-of-range State.String() = %q", got)
	}
}
