// Package coord is the supervising coordinator runtime of distributed
// mining (DESIGN.md §52). It drives a partition manifest's worker
// attempts through a per-partition state machine
//
//	pending → running → done
//	            ↓  ↑
//	         retrying → quarantined
//
// under a bounded worker pool, with per-attempt timeouts, exponential
// backoff with deterministic jitter between retries, straggler
// detection with speculative re-execution, and skip-completed resume.
//
// Everything the supervisor does is safe because of two properties the
// worker protocol already guarantees: shard writes are atomic (a
// killed attempt leaves nothing), and SupportShard.Snapshot is
// canonical (two successful attempts over the same range produce
// byte-identical shards). Re-executing a partition — after a failure,
// speculatively beside a straggler, or across a coordinator restart —
// therefore never changes the merged result; the first completed
// attempt wins and duplicates are harmless rewrites of identical
// bytes.
//
// The coordinator journals its supervision state (attempts, outcomes,
// durations) to an atomically-written JSON file so an operator can
// reconstruct what a flaky run did, and so a killed-and-restarted
// coordinator documents its resume.
package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"time"

	"treemine/internal/faults"
	"treemine/internal/store"
)

// State is a partition's position in the supervision state machine.
type State int

const (
	// Pending: no attempt has been launched yet.
	Pending State = iota
	// Running: at least one attempt is in flight.
	Running
	// Retrying: the last attempt failed; the next waits out a backoff.
	Retrying
	// Done: an attempt completed (or a valid shard already existed).
	Done
	// Quarantined: the retry budget is exhausted; the partition needs
	// operator attention (or -allow-partial degradation).
	Quarantined
	// Aborted: the coordinator itself was cancelled first.
	Aborted
)

var stateNames = [...]string{"pending", "running", "retrying", "done", "quarantined", "aborted"}

func (s State) String() string {
	if int(s) >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(" + strconv.Itoa(int(s)) + ")"
}

// terminal reports whether the state machine is finished with a
// partition.
func (s State) terminal() bool { return s == Done || s == Quarantined || s == Aborted }

// Runner executes one worker attempt for a partition and blocks until
// it finishes. Cancelling ctx must terminate the attempt — the
// supervisor relies on it for timeouts, for reaping the loser of a
// speculative race, and for coordinator shutdown.
type Runner interface {
	Run(ctx context.Context, part, attempt int) error
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, part, attempt int) error

func (f RunnerFunc) Run(ctx context.Context, part, attempt int) error { return f(ctx, part, attempt) }

// Config parameterizes a supervision run. The zero value of every
// knob means "use the default" noted on it.
type Config struct {
	// Partitions is the manifest's partition count. Required.
	Partitions int
	// Workers bounds concurrently running attempts (speculative ones
	// included). Default: runtime.NumCPU().
	Workers int
	// Retries is how many times a partition is retried after its first
	// failed attempt before quarantine (speculative attempts that were
	// superseded do not count). Default 3.
	Retries int
	// Backoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff, plus a deterministic jitter of
	// up to half the delay. Default 250ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Default 30s.
	MaxBackoff time.Duration
	// Timeout bounds each attempt; past it the attempt's context is
	// cancelled and the failure counts like any other. 0 disables.
	Timeout time.Duration
	// StragglerFactor enables speculative re-execution: when a running
	// attempt's elapsed time exceeds StragglerFactor × the median
	// completed-attempt duration (and the pool has an idle slot), a
	// duplicate attempt is launched beside it and the first to
	// complete wins. 0 disables speculation.
	StragglerFactor float64
	// StragglerMin is the floor below which speculation never
	// triggers, so short jobs don't speculate on scheduling noise.
	// Default 1s.
	StragglerMin time.Duration
	// Completed, when non-nil, is the skip-completed probe: a
	// partition for which it reports true is marked Done without
	// launching anything — the resume path after a coordinator crash.
	Completed func(part int) bool
	// Journal, when non-empty, is the path the supervision journal is
	// atomically rewritten to after every state change.
	Journal string
	// Manifest is recorded in the journal for operator orientation.
	Manifest string
	// Log, when non-nil, receives human-oriented progress lines.
	Log io.Writer
}

// PartitionResult is one partition's final supervision record.
type PartitionResult struct {
	// State is the terminal state (Done, Quarantined, or Aborted).
	State State
	// Skipped marks a skip-completed resume hit: Done with no attempts.
	Skipped bool
	// Attempts are the executions, in launch order.
	Attempts []store.Attempt
	// Err is the last real failure; set when State is Quarantined (and
	// possibly when Aborted mid-attempt).
	Err error
}

// Result is the outcome of a supervision run.
type Result struct {
	// Partitions holds one result per partition, by index.
	Partitions []PartitionResult
	// Quarantined lists the partitions that exhausted their retry
	// budget, in index order.
	Quarantined []int
}

// partSup is the supervisor's per-partition bookkeeping.
type partSup struct {
	state    State
	seq      int // next attempt sequence number
	failures int // failed attempts (excluding superseded/aborted)
	readyAt  time.Time
	inflight int
	cancels  map[int]context.CancelFunc
	starts   map[int]time.Time
	specs    map[int]bool // attempt seq → speculative
	res      PartitionResult
}

// attemptEnd is the event an attempt goroutine reports back.
type attemptEnd struct {
	part, seq  int
	spec       bool
	err        error
	start      time.Time
	dur        time.Duration
	timedOut   bool
	launchFail bool
}

// Supervise drives every partition to a terminal state and returns the
// per-partition record. The returned error is non-nil only when ctx
// was cancelled (the Result is still returned, with unfinished
// partitions Aborted); quarantined partitions are reported in the
// Result, not as an error — degrading or failing on them is the
// caller's policy.
func Supervise(ctx context.Context, cfg Config, r Runner) (*Result, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("coord: partition count must be positive, got %d", cfg.Partitions)
	}
	if r == nil {
		return nil, fmt.Errorf("coord: nil runner")
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.StragglerMin <= 0 {
		cfg.StragglerMin = time.Second
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}

	s := &supervisor{
		cfg:    cfg,
		runner: r,
		log:    log,
		parts:  make([]*partSup, cfg.Partitions),
		events: make(chan attemptEnd, 4*cfg.Partitions),
	}
	for i := range s.parts {
		p := &partSup{
			cancels: map[int]context.CancelFunc{},
			starts:  map[int]time.Time{},
			specs:   map[int]bool{},
		}
		if cfg.Completed != nil && cfg.Completed(i) {
			p.state = Done
			p.res.Skipped = true
			fmt.Fprintf(log, "cousinmine: partition %d: valid shard present, skipping (resume)\n", i)
		}
		s.parts[i] = p
	}
	s.writeJournal()
	err := s.loop(ctx)
	s.writeJournal()

	res := &Result{Partitions: make([]PartitionResult, cfg.Partitions)}
	for i, p := range s.parts {
		pr := p.res
		pr.State = p.state
		res.Partitions[i] = pr
		if p.state == Quarantined {
			res.Quarantined = append(res.Quarantined, i)
		}
	}
	return res, err
}

type supervisor struct {
	cfg         Config
	runner      Runner
	log         io.Writer
	parts       []*partSup
	events      chan attemptEnd
	inflight    int
	doneDurs    []time.Duration
	canceled    bool
	journalWarn bool
}

// loop is the single-threaded scheduler: all state transitions happen
// here, attempt goroutines only run workers and report events.
func (s *supervisor) loop(ctx context.Context) error {
	for {
		if !s.canceled && ctx.Err() != nil {
			s.cancelAll(ctx)
		}
		allTerminal := true
		for _, p := range s.parts {
			if !p.state.terminal() {
				allTerminal = false
				break
			}
		}
		if allTerminal && s.inflight == 0 {
			if s.canceled {
				return ctx.Err()
			}
			return nil
		}

		now := time.Now()
		if !s.canceled {
			// Primary launches: every launchable partition, oldest first,
			// until the pool is full.
			for i, p := range s.parts {
				if s.inflight >= s.cfg.Workers {
					break
				}
				if (p.state == Pending || p.state == Retrying) && p.inflight == 0 && !now.Before(p.readyAt) {
					s.launch(ctx, i, false)
				}
			}
			// Speculative launches: only with idle slots (the primary loop
			// above has already consumed every launchable partition), and
			// only once at least one attempt has completed to calibrate
			// the straggler threshold.
			if thresh, ok := s.stragglerThreshold(); ok {
				for i, p := range s.parts {
					if s.inflight >= s.cfg.Workers {
						break
					}
					if p.state == Running && p.inflight == 1 && s.elapsedOldest(p, now) > thresh {
						fmt.Fprintf(s.log, "cousinmine: partition %d: straggling (%.1fs > %.1fs); launching speculative attempt\n",
							i, s.elapsedOldest(p, now).Seconds(), thresh.Seconds())
						s.launch(ctx, i, true)
					}
				}
			}
		}

		timerC, stop := s.nextWake(now)
		if s.canceled {
			select {
			case ev := <-s.events:
				s.handle(ctx, ev)
			case <-timerC:
			}
		} else {
			select {
			case ev := <-s.events:
				s.handle(ctx, ev)
			case <-timerC:
			case <-ctx.Done():
				s.cancelAll(ctx)
			}
		}
		stop()
	}
}

// cancelAll transitions the run to draining: idle partitions abort
// immediately, in-flight attempts are cancelled and abort as their
// events arrive.
func (s *supervisor) cancelAll(ctx context.Context) {
	s.canceled = true
	for _, p := range s.parts {
		if (p.state == Pending || p.state == Retrying) && p.inflight == 0 {
			p.state = Aborted
			if p.res.Err == nil {
				p.res.Err = ctx.Err()
			}
		}
		for _, cancel := range p.cancels {
			cancel()
		}
	}
	fmt.Fprintf(s.log, "cousinmine: coordinator cancelled; draining %d in-flight attempt(s)\n", s.inflight)
}

// stragglerThreshold returns the elapsed time past which a running
// attempt counts as a straggler, when speculation is enabled and
// calibrated.
func (s *supervisor) stragglerThreshold() (time.Duration, bool) {
	if s.cfg.StragglerFactor <= 0 || len(s.doneDurs) == 0 {
		return 0, false
	}
	durs := append([]time.Duration(nil), s.doneDurs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	med := durs[len(durs)/2]
	thresh := time.Duration(float64(med) * s.cfg.StragglerFactor)
	if thresh < s.cfg.StragglerMin {
		thresh = s.cfg.StragglerMin
	}
	return thresh, true
}

// elapsedOldest is how long the partition's oldest in-flight attempt
// has been running.
func (s *supervisor) elapsedOldest(p *partSup, now time.Time) time.Duration {
	var oldest time.Time
	for _, t := range p.starts {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}

// nextWake arms a timer for the earliest future decision point: a
// retry leaving backoff, or a running attempt crossing the straggler
// threshold. With neither pending, the loop blocks on events alone.
func (s *supervisor) nextWake(now time.Time) (<-chan time.Time, func()) {
	wait := time.Duration(-1)
	consider := func(d time.Duration) {
		if d < time.Millisecond {
			d = time.Millisecond
		}
		if wait < 0 || d < wait {
			wait = d
		}
	}
	if !s.canceled {
		for _, p := range s.parts {
			if (p.state == Pending || p.state == Retrying) && p.inflight == 0 {
				consider(p.readyAt.Sub(now))
			}
		}
		if thresh, ok := s.stragglerThreshold(); ok && s.inflight < s.cfg.Workers {
			for _, p := range s.parts {
				if p.state == Running && p.inflight == 1 {
					consider(thresh - s.elapsedOldest(p, now))
				}
			}
		}
	}
	if wait < 0 {
		return nil, func() {}
	}
	t := time.NewTimer(wait)
	return t.C, func() { t.Stop() }
}

// launch starts one attempt for partition i. The coordinator-side
// launch failpoints fire here, modeling spawn failures the retry
// machinery must absorb.
func (s *supervisor) launch(ctx context.Context, i int, spec bool) {
	p := s.parts[i]
	seq := p.seq
	p.seq++
	var actx context.Context
	var cancel context.CancelFunc
	if s.cfg.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	p.cancels[seq] = cancel
	p.starts[seq] = time.Now()
	p.specs[seq] = spec
	p.inflight++
	s.inflight++
	p.state = Running

	if err := firstErr(
		faults.Hit(faults.CoordLaunch),
		faults.Hit(faults.CoordLaunch+"/"+strconv.Itoa(i)),
	); err != nil {
		start := p.starts[seq]
		go func() {
			s.events <- attemptEnd{part: i, seq: seq, spec: spec, err: err, start: start, launchFail: true}
		}()
		return
	}
	start := p.starts[seq]
	run := s.runner
	go func() {
		err := run.Run(actx, i, seq)
		s.events <- attemptEnd{
			part: i, seq: seq, spec: spec,
			err:      err,
			start:    start,
			dur:      time.Since(start),
			timedOut: err != nil && errors.Is(actx.Err(), context.DeadlineExceeded),
		}
	}()
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// handle applies one finished attempt to the state machine.
func (s *supervisor) handle(ctx context.Context, ev attemptEnd) {
	p := s.parts[ev.part]
	p.inflight--
	s.inflight--
	if cancel, ok := p.cancels[ev.seq]; ok {
		cancel()
		delete(p.cancels, ev.seq)
	}
	delete(p.starts, ev.seq)
	delete(p.specs, ev.seq)

	rec := store.Attempt{
		Seq:         ev.seq,
		Speculative: ev.spec,
		StartUnixMs: ev.start.UnixMilli(),
		DurationMs:  ev.dur.Milliseconds(),
	}
	switch {
	case ev.err == nil:
		if p.state == Done {
			// A duplicate success after another attempt already won: its
			// shard write rewrote identical bytes, nothing to undo.
			rec.Outcome = store.AttemptSuperseded
			break
		}
		rec.Outcome = store.AttemptOK
		p.state = Done
		p.res.Err = nil
		s.doneDurs = append(s.doneDurs, ev.dur)
		// First completed attempt wins: reap the twin, if any.
		for _, cancel := range p.cancels {
			cancel()
		}
		label := ""
		if ev.spec {
			label = " (speculative)"
		}
		fmt.Fprintf(s.log, "cousinmine: partition %d: done in %v (attempt %d%s)\n", ev.part, ev.dur.Round(time.Millisecond), ev.seq, label)
	case p.state == Done:
		// The loser of a speculative race, cancelled after the win.
		rec.Outcome = store.AttemptSuperseded
		rec.Error = ev.err.Error()
	case s.canceled || ctx.Err() != nil:
		rec.Outcome = store.AttemptAborted
		rec.Error = ev.err.Error()
		p.res.Err = ev.err
		if p.inflight == 0 {
			p.state = Aborted
		}
	default:
		p.failures++
		rec.Outcome = store.AttemptError
		if ev.timedOut {
			rec.Outcome = store.AttemptTimeout
			ev.err = fmt.Errorf("attempt exceeded -attempt-timeout %v: %w", s.cfg.Timeout, ev.err)
		}
		rec.Error = ev.err.Error()
		p.res.Err = ev.err
		switch {
		case p.inflight > 0:
			// A twin is still running; its outcome decides what happens
			// next.
			fmt.Fprintf(s.log, "cousinmine: partition %d: attempt %d failed (%v); twin still in flight\n", ev.part, ev.seq, ev.err)
		case p.failures > s.cfg.Retries:
			p.state = Quarantined
			fmt.Fprintf(s.log, "cousinmine: partition %d: quarantined after %d failed attempt(s): %v\n", ev.part, p.failures, ev.err)
		default:
			p.state = Retrying
			delay := backoffDelay(s.cfg.Backoff, s.cfg.MaxBackoff, ev.part, p.failures)
			p.readyAt = time.Now().Add(delay)
			fmt.Fprintf(s.log, "cousinmine: partition %d: attempt %d failed (%v); retry %d/%d in %v\n",
				ev.part, ev.seq, ev.err, p.failures, s.cfg.Retries, delay.Round(time.Millisecond))
		}
	}
	p.res.Attempts = append(p.res.Attempts, rec)
	s.writeJournal()
}

// writeJournal atomically rewrites the supervision journal. Journal
// failures are warnings: supervision metadata must never take the
// mining run down with it.
func (s *supervisor) writeJournal() {
	if s.cfg.Journal == "" {
		return
	}
	err := faults.Hit(faults.CoordJournal)
	if err == nil {
		j := &store.Journal{
			Manifest:      s.cfg.Manifest,
			UpdatedUnixMs: time.Now().UnixMilli(),
			Partitions:    make([]store.PartitionStatus, len(s.parts)),
		}
		for i, p := range s.parts {
			j.Partitions[i] = store.PartitionStatus{
				Index:             i,
				State:             p.state.String(),
				SkippedValidShard: p.res.Skipped,
				Attempts:          p.res.Attempts,
			}
		}
		err = j.Save(s.cfg.Journal)
	}
	if err != nil && !s.journalWarn {
		s.journalWarn = true
		fmt.Fprintf(s.log, "cousinmine: warning: cannot write coordinator journal %s: %v (mining continues)\n", s.cfg.Journal, err)
	}
}

// backoffDelay is the wait before a partition's retry-th retry
// (1-based): base doubled per retry, capped at max, plus a
// deterministic jitter of up to half the capped delay derived from
// (part, retry) — so concurrent retries spread out without the
// schedule changing between identical runs.
func backoffDelay(base, max time.Duration, part, retry int) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := base
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= max {
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	frac := float64(mix64(uint64(part)<<32|uint64(retry))>>11) / float64(uint64(1)<<53)
	return d + time.Duration(float64(d)*frac/2)
}

// mix64 is SplitMix64's finalizer — a cheap, well-distributed hash for
// deterministic jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
