package seqsim

import (
	"math/rand"
	"testing"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func TestEvolveBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	taxa := []string{"t1", "t2", "t3", "t4", "t5"}
	model := treegen.Yule(rng, taxa)
	a, err := Evolve(rng, model, 100, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 5 {
		t.Fatalf("NumTaxa = %d, want 5", a.NumTaxa())
	}
	if a.Len() != 100 {
		t.Fatalf("Len = %d, want 100", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEvolveZeroMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := treegen.Yule(rng, []string{"a", "b", "c"})
	a, err := Evolve(rng, model, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With no mutation all sequences equal the root sequence.
	ref := a.Seqs[a.Taxa[0]]
	for _, taxon := range a.Taxa {
		if string(a.Seqs[taxon]) != string(ref) {
			t.Fatalf("sequences differ with mutProb 0")
		}
	}
}

func TestEvolveFullMutationChangesEverySite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A root with a single labeled leaf child: one edge.
	model := treegen.Yule(rng, []string{"x", "y"})
	a, err := Evolve(rng, model, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// With p=1 every edge mutates every site, so sister taxa (two edges
	// apart) may coincide by double mutation, but each sequence must
	// still be valid DNA — checked above. Also check determinism.
	rng2 := rand.New(rand.NewSource(3))
	model2 := treegen.Yule(rng2, []string{"x", "y"})
	b, err := Evolve(rng2, model2, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, taxon := range a.Taxa {
		if string(a.Seqs[taxon]) != string(b.Seqs[taxon]) {
			t.Fatal("Evolve not deterministic for same seed")
		}
	}
}

func TestEvolveBadProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := treegen.Yule(rng, []string{"a", "b"})
	if _, err := Evolve(rng, model, 10, -0.1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := Evolve(rng, model, 10, 1.5); err == nil {
		t.Error("probability > 1 accepted")
	}
}

func TestEvolveSignalPreserved(t *testing.T) {
	// Sister taxa should agree on more sites than distant taxa, on
	// average, when mutation is moderate: that is the phylogenetic
	// signal parsimony search relies on.
	rng := rand.New(rand.NewSource(5))
	// Model: ((a,b),(c,d)) built by hand for controlled distances.
	qb := tree.NewBuilder()
	r := qb.RootUnlabeled()
	l := qb.ChildUnlabeled(r)
	qb.Child(l, "a")
	qb.Child(l, "b")
	rr := qb.ChildUnlabeled(r)
	qb.Child(rr, "c")
	qb.Child(rr, "d")
	bld := qb.MustBuild()
	agree := func(s1, s2 []byte) int {
		n := 0
		for i := range s1 {
			if s1[i] == s2[i] {
				n++
			}
		}
		return n
	}
	sisters, distant := 0, 0
	for trial := 0; trial < 30; trial++ {
		a, err := Evolve(rng, bld, 300, 0.08)
		if err != nil {
			t.Fatal(err)
		}
		sisters += agree(a.Seqs["a"], a.Seqs["b"])
		distant += agree(a.Seqs["a"], a.Seqs["d"])
	}
	if sisters <= distant {
		t.Fatalf("sister agreement %d not above distant agreement %d", sisters, distant)
	}
}

func TestValidateErrors(t *testing.T) {
	a := &Alignment{Taxa: []string{"x"}, Seqs: map[string][]byte{}}
	if err := a.Validate(); err == nil {
		t.Error("missing sequence accepted")
	}
	a = &Alignment{Taxa: []string{"x", "y"}, Seqs: map[string][]byte{
		"x": []byte("ACGT"), "y": []byte("ACG"),
	}}
	if err := a.Validate(); err == nil {
		t.Error("ragged alignment accepted")
	}
	a = &Alignment{Taxa: []string{"x"}, Seqs: map[string][]byte{"x": []byte("ACGZ")}}
	if err := a.Validate(); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestEmptyAlignment(t *testing.T) {
	a := &Alignment{}
	if a.Len() != 0 || a.NumTaxa() != 0 {
		t.Fatal("empty alignment dims wrong")
	}
}
