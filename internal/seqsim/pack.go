package seqsim

// Packed-alignment view: nucleotide codes become 4-bit Fitch state sets
// (bit 0 = A, 1 = C, 2 = G, 3 = T) packed 16 sites to a uint64 word.
// Word-wide AND/OR over these vectors is what makes bit-parallel Fitch
// scoring possible (internal/parsimony.FitchEngine); the same StateSet
// table backs the naive per-site scorer so the two can never disagree on
// how a base is read.

// State-set bits for the four nucleotides.
const (
	StateA uint8 = 1 << iota
	StateC
	StateG
	StateT
	// StateAny is the fully ambiguous state set (N, gaps, unknowns).
	StateAny uint8 = StateA | StateC | StateG | StateT
)

// SitesPerWord is how many 4-bit site states one uint64 packs.
const SitesPerWord = 16

// stateTable maps every byte to its Fitch state set. Unlisted bytes are
// fully ambiguous (StateAny), preserving the historical "unknown base is
// compatible with everything" behavior; the IUPAC ambiguity codes and
// both letter cases map to their proper subsets.
var stateTable = buildStateTable()

// knownBase marks the bytes Validate accepts: the IUPAC nucleotide
// alphabet (both cases) plus gap/missing markers.
var knownBase = buildKnownBase()

func buildStateTable() [256]uint8 {
	var t [256]uint8
	for i := range t {
		t[i] = StateAny
	}
	set := func(codes string, mask uint8) {
		for i := 0; i < len(codes); i++ {
			c := codes[i]
			t[c] = mask
			if c >= 'A' && c <= 'Z' {
				t[c+'a'-'A'] = mask
			}
		}
	}
	set("A", StateA)
	set("C", StateC)
	set("G", StateG)
	set("TU", StateT) // uracil reads as thymine
	set("R", StateA|StateG)
	set("Y", StateC|StateT)
	set("S", StateC|StateG)
	set("W", StateA|StateT)
	set("K", StateG|StateT)
	set("M", StateA|StateC)
	set("B", StateC|StateG|StateT)
	set("D", StateA|StateG|StateT)
	set("H", StateA|StateC|StateT)
	set("V", StateA|StateC|StateG)
	set("NX", StateAny)
	set("-?.", StateAny)
	return t
}

func buildKnownBase() [256]bool {
	var k [256]bool
	for i := 0; i < len(iupac); i++ {
		c := iupac[i]
		k[c] = true
		if c >= 'A' && c <= 'Z' {
			k[c+'a'-'A'] = true
		}
	}
	return k
}

const iupac = "ACGTURYSWKMBDHVNX-?."

// StateSet returns the 4-bit Fitch state set for a nucleotide code:
// the four bases map to single bits, the IUPAC ambiguity codes to their
// documented subsets (R = A|G, Y = C|T, …), U to T, and gaps, N, and any
// unrecognized byte to the fully ambiguous set. Case-insensitive.
func StateSet(b byte) uint8 { return stateTable[b] }

// KnownBase reports whether b is a recognized nucleotide code (IUPAC
// alphabet, either case, or a gap/missing marker). Validate accepts
// exactly these.
func KnownBase(b byte) bool { return knownBase[b] }

// PackStates packs a sequence into 4-bit state sets, 16 sites per word,
// site i in bits 4i..4i+3 of word i/16. Padding nibbles of the last word
// are StateAny so that bit-parallel scoring never counts a substitution
// in them.
func PackStates(seq []byte) []uint64 {
	words := (len(seq) + SitesPerWord - 1) / SitesPerWord
	v := make([]uint64, words)
	for i, b := range seq {
		v[i/SitesPerWord] |= uint64(stateTable[b]) << uint((i%SitesPerWord)*4)
	}
	if r := len(seq) % SitesPerWord; r != 0 {
		for i := r; i < SitesPerWord; i++ {
			v[words-1] |= uint64(StateAny) << uint(i*4)
		}
	}
	return v
}

// PackedAlignment is the bit-parallel view of an Alignment: one packed
// state vector per taxon, all of equal word length. It is immutable once
// built and safe to share across goroutines.
type PackedAlignment struct {
	Taxa  []string // taxon order, as in the source alignment
	Sites int      // number of sites (columns)
	Words int      // uint64 words per vector: ceil(Sites/16)
	Vec   map[string][]uint64
}

// Pack builds the packed view of the alignment. It fails on a missing or
// ragged sequence; unlike Validate it does not reject unusual bytes —
// they pack as fully ambiguous, matching the naive scorer.
func (a *Alignment) Pack() (*PackedAlignment, error) {
	sites := a.Len()
	p := &PackedAlignment{
		Taxa:  a.Taxa,
		Sites: sites,
		Words: (sites + SitesPerWord - 1) / SitesPerWord,
		Vec:   make(map[string][]uint64, len(a.Taxa)),
	}
	for _, t := range a.Taxa {
		s, ok := a.Seqs[t]
		if !ok {
			return nil, errTaxon(t)
		}
		if len(s) != sites {
			return nil, errRagged(t, len(s), sites)
		}
		p.Vec[t] = PackStates(s)
	}
	return p, nil
}
