// Package seqsim simulates molecular sequence evolution along a model
// phylogeny. It stands in for the real gene sequences the paper fed to
// PHYLIP (500 nucleotides from six genes across 16 Mus species for the
// consensus experiment; LSU rDNA across 32 ascomycetes for the
// kernel-tree experiment): a random ancestral DNA sequence evolves down
// a model tree under the Jukes–Cantor model, producing an alignment whose
// phylogenetic signal reflects the model tree. Parsimony search over such
// an alignment yields sets of equally parsimonious trees exactly the way
// the paper's pipeline did.
package seqsim

import (
	"errors"
	"fmt"
	"math/rand"

	"treemine/internal/tree"
)

// Bases are the DNA alphabet used in alignments.
var Bases = []byte{'A', 'C', 'G', 'T'}

// Alignment is a set of equal-length DNA sequences keyed by taxon name.
type Alignment struct {
	Taxa []string // taxon order, fixed at construction
	Seqs map[string][]byte
}

// Len returns the number of sites (columns).
func (a *Alignment) Len() int {
	if len(a.Taxa) == 0 {
		return 0
	}
	return len(a.Seqs[a.Taxa[0]])
}

// NumTaxa returns the number of sequences.
func (a *Alignment) NumTaxa() int { return len(a.Taxa) }

// Validate checks that every taxon has a sequence of equal length over
// the recognized nucleotide alphabet (IUPAC codes, either case, plus
// gap/missing markers — see KnownBase).
func (a *Alignment) Validate() error {
	want := a.Len()
	for _, t := range a.Taxa {
		s, ok := a.Seqs[t]
		if !ok {
			return errTaxon(t)
		}
		if len(s) != want {
			return errRagged(t, len(s), want)
		}
		for i, b := range s {
			if !KnownBase(b) {
				return fmt.Errorf("seqsim: taxon %q site %d has invalid base %q", t, i, string(b))
			}
		}
	}
	return nil
}

func errTaxon(t string) error { return fmt.Errorf("seqsim: taxon %q has no sequence", t) }

func errRagged(t string, got, want int) error {
	return fmt.Errorf("seqsim: taxon %q has %d sites, want %d", t, got, want)
}

// ErrNoLeaves is returned when the model tree has no labeled leaves.
var ErrNoLeaves = errors.New("seqsim: model tree has no labeled leaves")

// Evolve evolves a random ancestral sequence of length sites down the
// model tree: along every edge each site independently mutates with
// probability mutProb, drawing a uniformly random different base
// (Jukes–Cantor). Leaf labels become the alignment's taxa. Unlabeled
// leaves are skipped.
func Evolve(rng *rand.Rand, model *tree.Tree, sites int, mutProb float64) (*Alignment, error) {
	if mutProb < 0 || mutProb > 1 {
		return nil, fmt.Errorf("seqsim: mutation probability %v outside [0,1]", mutProb)
	}
	root := make([]byte, sites)
	for i := range root {
		root[i] = Bases[rng.Intn(4)]
	}
	a := &Alignment{Seqs: map[string][]byte{}}
	seqs := make([][]byte, model.Size())
	for _, n := range model.Nodes() {
		var s []byte
		if p := model.Parent(n); p == tree.None {
			s = root
		} else {
			s = mutate(rng, seqs[p], mutProb)
		}
		seqs[n] = s
		if model.IsLeaf(n) {
			if l, ok := model.Label(n); ok {
				a.Taxa = append(a.Taxa, l)
				a.Seqs[l] = s
			}
		}
	}
	if len(a.Taxa) == 0 {
		return nil, ErrNoLeaves
	}
	return a, nil
}

func mutate(rng *rand.Rand, parent []byte, p float64) []byte {
	out := make([]byte, len(parent))
	copy(out, parent)
	for i := range out {
		if rng.Float64() < p {
			b := Bases[rng.Intn(3)]
			if b == out[i] { // pick from the three other bases
				b = Bases[3]
			}
			out[i] = b
		}
	}
	return out
}
