package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestRunPassesThrough(t *testing.T) {
	if err := Run(func() error { return nil }); err != nil {
		t.Fatalf("Run(nil fn) = %v", err)
	}
	want := errors.New("boom")
	if err := Run(func() error { return want }); err != want {
		t.Fatalf("Run passthrough = %v, want %v", err, want)
	}
}

func TestRunContainsPanic(t *testing.T) {
	err := Run(func() error { panic("exploded") })
	if err == nil {
		t.Fatal("panic not contained")
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("errors.Is(%v, ErrPanic) = false", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As PanicError failed: %v", err)
	}
	if pe.Value != "exploded" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = %+v", pe)
	}
	// Wrapping at a pool boundary must keep the sentinel reachable.
	wrapped := fmt.Errorf("core: mining tree 17: %w", err)
	if !errors.Is(wrapped, ErrPanic) {
		t.Fatalf("wrapped panic lost ErrPanic: %v", wrapped)
	}
}

func TestRunUnwrapsErrorPanicValue(t *testing.T) {
	sentinel := errors.New("inner")
	err := Run(func() error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("panic(error) not reachable via errors.Is: %v", err)
	}
}

func TestFirstPrefersRealErrors(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		errs []error
		want error
	}{
		{nil, nil},
		{[]error{nil, nil}, nil},
		{[]error{nil, boom, context.Canceled}, boom},
		{[]error{context.Canceled, boom}, boom},
		{[]error{context.Canceled, context.DeadlineExceeded}, context.Canceled},
		{[]error{nil, context.DeadlineExceeded}, context.DeadlineExceeded},
	}
	for i, c := range cases {
		if got := First(c.errs); got != c.want {
			t.Fatalf("case %d: First = %v, want %v", i, got, c.want)
		}
	}
}
