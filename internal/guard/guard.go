// Package guard contains worker panics at pool boundaries. Every
// parallel entry point of the runtime (forest mining, the streaming
// pipeline, the distance-matrix fill, the parsimony search) runs each
// unit of worker work through Run, so a panicking worker becomes an
// error the pool can drain on and return — instead of killing the
// process or deadlocking the pool's WaitGroup.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrPanic is the sentinel every contained panic matches with
// errors.Is, however deeply the pool wrapped it.
var ErrPanic = errors.New("panic recovered")

// PanicError is a worker panic converted into an error: the recovered
// value plus the goroutine stack at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Is makes errors.Is(err, ErrPanic) true for every contained panic.
func (e *PanicError) Is(target error) bool { return target == ErrPanic }

// Unwrap exposes a panic value that was itself an error (e.g. an
// injected fault) to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run executes fn, converting a panic into a *PanicError. The success
// path costs one deferred call; the stack is only captured when a panic
// actually fires, so callers can afford a Run per work unit and wrap
// the result with the offending tree index or shard id.
func Run(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// First picks the error a drained pool should report: the first entry
// (in worker order, which callers keep deterministic) that is not a
// bare context cancellation, falling back to the first non-nil entry.
// This keeps a real failure — a contained panic, an injected fault —
// from being shadowed by the ctx.Err() every sibling worker returned
// while the pool drained.
func First(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}
