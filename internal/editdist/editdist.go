// Package editdist implements the constrained edit distance between
// rooted unordered labeled trees (Zhang, "A constrained edit distance
// between unordered labeled trees", Algorithmica 1996) with unit costs.
// Unrestricted unordered tree edit distance is NP-hard; the constrained
// variant — mappings must preserve the structure of disjoint subtrees —
// is polynomial via a minimum-cost matching at every node pair, and is
// the classical edit-style baseline against which the paper positions
// its cousin-based measures (§1.1 cites the edit-distance line of work
// [15, 49]; §5.3 proposes tdist precisely because edit-style measures
// need full tree comparison).
package editdist

import (
	"treemine/internal/assign"
	"treemine/internal/tree"
)

// Distance returns the constrained unordered edit distance between t1
// and t2 under unit costs: deleting a node costs 1, inserting costs 1,
// and relabeling costs 1 when the labels differ (an unlabeled node
// matches another unlabeled node for free and any labeled node at cost
// 1).
func Distance(t1, t2 *tree.Tree) int {
	c := &calc{
		t1:   t1,
		t2:   t2,
		size: [2][]int{subtreeSizes(t1), subtreeSizes(t2)},
		memo: make(map[[2]tree.NodeID]int),
	}
	return c.dist(t1.Root(), t2.Root())
}

// Normalized scales Distance by the total size of both trees, yielding a
// value in [0, 1] comparable across tree sizes (0 only for isomorphic
// trees; 1 is approached when nothing aligns). Two empty trees are at 0.
func Normalized(t1, t2 *tree.Tree) float64 {
	total := t1.Size() + t2.Size()
	if total == 0 {
		return 0
	}
	return float64(Distance(t1, t2)) / float64(total)
}

func subtreeSizes(t *tree.Tree) []int {
	out := make([]int, t.Size())
	t.PostOrder(func(n tree.NodeID) {
		s := 1
		for _, k := range t.Children(n) {
			s += out[k]
		}
		out[n] = s
	})
	return out
}

type calc struct {
	t1, t2 *tree.Tree
	size   [2][]int
	memo   map[[2]tree.NodeID]int
}

// relabel returns the cost of turning node u of t1 into node v of t2.
func (c *calc) relabel(u, v tree.NodeID) int {
	l1, ok1 := c.t1.Label(u)
	l2, ok2 := c.t2.Label(v)
	if ok1 == ok2 && l1 == l2 {
		return 0
	}
	return 1
}

// dist is the constrained edit distance between the subtree of t1 at u
// and the subtree of t2 at v.
func (c *calc) dist(u, v tree.NodeID) int {
	key := [2]tree.NodeID{u, v}
	if d, ok := c.memo[key]; ok {
		return d
	}
	ak := c.t1.Children(u)
	bk := c.t2.Children(v)

	// Option 1: match u to v, then match the child subtree forests.
	best := c.relabel(u, v) + c.forest(ak, bk)

	// Option 2: delete u, map the v-subtree into one child subtree of u
	// (paying for deleting the others plus u itself).
	if len(ak) > 0 {
		rest := c.size[0][u] // everything except the chosen child
		for _, a := range ak {
			cand := c.dist(a, v) + (rest - c.size[0][a])
			if cand < best {
				best = cand
			}
		}
	}
	// Option 3: symmetric — insert v, map the u-subtree into one child
	// subtree of v.
	if len(bk) > 0 {
		rest := c.size[1][v]
		for _, b := range bk {
			cand := c.dist(u, b) + (rest - c.size[1][b])
			if cand < best {
				best = cand
			}
		}
	}
	c.memo[key] = best
	return best
}

// forest returns the minimum cost of matching the two subtree lists,
// allowing any subtree to be deleted or inserted whole: a min-cost
// assignment over an (m+n)×(m+n) matrix padded with dummy rows/columns
// priced at full deletion/insertion.
func (c *calc) forest(ak, bk []tree.NodeID) int {
	m, n := len(ak), len(bk)
	if m == 0 {
		total := 0
		for _, b := range bk {
			total += c.size[1][b]
		}
		return total
	}
	if n == 0 {
		total := 0
		for _, a := range ak {
			total += c.size[0][a]
		}
		return total
	}
	dim := m + n
	cost := make([][]float64, dim)
	for i := range cost {
		cost[i] = make([]float64, dim)
		for j := range cost[i] {
			switch {
			case i < m && j < n:
				cost[i][j] = float64(c.dist(ak[i], bk[j]))
			case i < m: // delete Ai
				cost[i][j] = float64(c.size[0][ak[i]])
			case j < n: // insert Bj
				cost[i][j] = float64(c.size[1][bk[j]])
			default:
				cost[i][j] = 0
			}
		}
	}
	_, total := assign.Solve(cost)
	return int(total + 0.5)
}
