package editdist

import (
	"math/rand"
	"testing"

	"treemine/internal/treegen"
)

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	taxa := treegen.Alphabet(20)
	t1 := treegen.Yule(rng, taxa)
	t2 := treegen.Yule(rng, taxa)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(t1, t2)
	}
}
