package editdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treemine/internal/newick"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func parse(t *testing.T, s string) *tree.Tree {
	t.Helper()
	tr, err := newick.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDistanceIdentity(t *testing.T) {
	tr := parse(t, "((a,b),((c,d),e));")
	if d := Distance(tr, tr.Clone()); d != 0 {
		t.Fatalf("D(T,T) = %d", d)
	}
}

func TestDistanceSingleRelabel(t *testing.T) {
	t1 := parse(t, "((a,b),c);")
	t2 := parse(t, "((a,x),c);")
	if d := Distance(t1, t2); d != 1 {
		t.Fatalf("single relabel = %d, want 1", d)
	}
}

func TestDistanceLeafInsertion(t *testing.T) {
	t1 := parse(t, "(a,b);")
	t2 := parse(t, "(a,b,c);")
	if d := Distance(t1, t2); d != 1 {
		t.Fatalf("one insertion = %d, want 1", d)
	}
}

func TestDistanceToSingleNode(t *testing.T) {
	// Mapping a 5-node tree onto a single identical-labeled node keeps
	// that node and deletes the rest.
	t1 := parse(t, "((x,y),(z,w))r;")
	b := tree.NewBuilder()
	b.Root("r")
	t2 := b.MustBuild()
	if d := Distance(t1, t2); d != t1.Size()-1 {
		t.Fatalf("D = %d, want %d", d, t1.Size()-1)
	}
}

func TestDistanceConstrainedSemantics(t *testing.T) {
	// ((a,b)x,c) vs (a,b,c): the general edit distance is 1 (delete x,
	// promote a and b), but that mapping violates the constrained
	// condition — lca(a,b) ≠ lca(a,c) in the first tree while they
	// coincide in the second — so the constrained distance keeps only
	// two leaves aligned: delete x and b, insert b ⇒ 3. This pins the
	// constrained (Zhang 1996) semantics the package implements.
	t1 := parse(t, "((a,b)x,c);")
	t2 := parse(t, "(a,b,c);")
	if d := Distance(t1, t2); d != 3 {
		t.Fatalf("constrained distance = %d, want 3", d)
	}
}

func TestDistanceUnlabeledMatchesFree(t *testing.T) {
	// Unlabeled internal nodes match each other at no cost.
	t1 := parse(t, "((a,b),(c,d));")
	t2 := parse(t, "((a,b),(c,d));")
	if d := Distance(t1, t2); d != 0 {
		t.Fatalf("D = %d", d)
	}
	// Unlabeled vs labeled root costs a relabel.
	t3 := parse(t, "((a,b),(c,d))root;")
	if d := Distance(t1, t3); d != 1 {
		t.Fatalf("root relabel = %d, want 1", d)
	}
}

func TestDistanceSiblingOrderIrrelevant(t *testing.T) {
	t1 := parse(t, "((a,b),(c,d));")
	t2 := parse(t, "((d,c),(b,a));")
	if d := Distance(t1, t2); d != 0 {
		t.Fatalf("unordered distance = %d, want 0", d)
	}
}

func randTree(rng *rand.Rand, n int) *tree.Tree {
	labels := []string{"a", "b", "c"}
	b := tree.NewBuilder()
	if rng.Intn(2) == 0 {
		b.RootUnlabeled()
	} else {
		b.Root(labels[rng.Intn(len(labels))])
	}
	for i := 1; i < n; i++ {
		p := tree.NodeID(rng.Intn(i))
		if rng.Intn(4) == 0 {
			b.ChildUnlabeled(p)
		} else {
			b.Child(p, labels[rng.Intn(len(labels))])
		}
	}
	return b.MustBuild()
}

func TestDistanceMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTree(rng, rng.Intn(12)+1)
		b := randTree(rng, rng.Intn(12)+1)
		c := randTree(rng, rng.Intn(12)+1)
		dab, dba := Distance(a, b), Distance(b, a)
		if dab != dba {
			t.Logf("seed %d: asymmetric %d vs %d", seed, dab, dba)
			return false
		}
		if Distance(a, a) != 0 {
			return false
		}
		// Triangle inequality.
		if dab > Distance(a, c)+Distance(c, b) {
			t.Logf("seed %d: triangle violated", seed)
			return false
		}
		// Bounded by total deletion + insertion.
		return dab <= a.Size()+b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceIsomorphicIsZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTree(rng, rng.Intn(15)+1)
		// Shuffle children by rebuilding in random order.
		b := rebuildShuffled(rng, a)
		return Distance(a, b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func rebuildShuffled(rng *rand.Rand, t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder()
	var rec func(old, parent tree.NodeID)
	rec = func(old, parent tree.NodeID) {
		var id tree.NodeID
		if l, ok := t.Label(old); ok {
			if parent == tree.None {
				id = b.Root(l)
			} else {
				id = b.Child(parent, l)
			}
		} else {
			if parent == tree.None {
				id = b.RootUnlabeled()
			} else {
				id = b.ChildUnlabeled(parent)
			}
		}
		kids := append([]tree.NodeID(nil), t.Children(old)...)
		rng.Shuffle(len(kids), func(i, j int) { kids[i], kids[j] = kids[j], kids[i] })
		for _, k := range kids {
			rec(k, id)
		}
	}
	rec(t.Root(), tree.None)
	return b.MustBuild()
}

func TestNormalized(t *testing.T) {
	t1 := parse(t, "(a,b);")
	t2 := parse(t, "(x,y);")
	n := Normalized(t1, t2)
	if n <= 0 || n > 1 {
		t.Fatalf("Normalized = %v", n)
	}
	if Normalized(t1, t1.Clone()) != 0 {
		t.Fatal("Normalized identity not 0")
	}
}

func TestDistancePhylogenies(t *testing.T) {
	// Sanity at phylogeny scale: same taxa, different topologies yield a
	// small positive distance; disjoint taxa yield near-total cost.
	rng := rand.New(rand.NewSource(5))
	taxa := treegen.Alphabet(12)
	a := treegen.Yule(rng, taxa)
	b := treegen.Yule(rng, taxa)
	dSame := Distance(a, b)
	if dSame < 0 || dSame > a.Size()+b.Size() {
		t.Fatalf("same-taxa distance out of bounds: %d", dSame)
	}
	other := treegen.Yule(rng, treegen.Alphabet(24)[12:])
	dDiff := Distance(a, other)
	if dDiff <= dSame {
		t.Fatalf("disjoint-taxa distance %d not above same-taxa %d", dDiff, dSame)
	}
}
