package treebase

import (
	"testing"

	"treemine/internal/core"
)

func TestMineStudies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTrees = 30
	c := mustCorpus(t, 2, cfg)
	got := MineStudies(c, core.DefaultForestOptions())
	if len(got) == 0 {
		t.Fatal("no study produced frequent patterns; studies share taxa, so this should be rare")
	}
	for _, sp := range got {
		if sp.StudyID == "" {
			t.Fatal("missing study id")
		}
		for _, p := range sp.Pairs {
			if p.Support < 2 {
				t.Fatalf("study %s pair %v below minsup", sp.StudyID, p)
			}
		}
	}
	// Per-study support can never exceed the study's tree count.
	byID := map[string]Study{}
	for _, s := range c.Studies {
		byID[s.ID] = s
	}
	for _, sp := range got {
		n := len(byID[sp.StudyID].Trees)
		for _, p := range sp.Pairs {
			if p.Support > n {
				t.Fatalf("study %s: support %d exceeds %d trees", sp.StudyID, p.Support, n)
			}
		}
	}
}

func TestMineStudiesSeedPlants(t *testing.T) {
	c := &Corpus{Studies: []Study{SeedPlantStudy()}}
	got := MineStudies(c, core.DefaultForestOptions())
	if len(got) != 1 || got[0].StudyID != "DoyleDonoghue1992" {
		t.Fatalf("MineStudies = %+v", got)
	}
	found := false
	for _, p := range got[0].Pairs {
		if p.Key == core.NewKey(Gnetum, Welwitschia, core.D(0)) && p.Support == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("seed-plant headline pattern missing")
	}
}
