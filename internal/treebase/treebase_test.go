package treebase

import (
	"errors"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// mustNames and mustCorpus unwrap the error-returning constructors for
// tests whose configs are known-feasible.
func mustNames(t *testing.T, n int) []string {
	t.Helper()
	names, err := Names(n)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

func mustCorpus(t *testing.T, seed int64, cfg Config) *Corpus {
	t.Helper()
	c, err := NewCorpus(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNamesDistinctAndPrefixStable(t *testing.T) {
	n := 2000
	names := mustNames(t, n)
	if len(names) != n {
		t.Fatalf("len = %d", len(names))
	}
	seen := make(map[string]bool, n)
	for _, s := range names {
		if seen[s] {
			t.Fatalf("duplicate name %q", s)
		}
		seen[s] = true
	}
	short := mustNames(t, 100)
	for i := range short {
		if short[i] != names[i] {
			t.Fatalf("Names not prefix-stable at %d: %q vs %q", i, short[i], names[i])
		}
	}
}

func TestNamesFullAlphabet(t *testing.T) {
	names := mustNames(t, DefaultAlphabetSize)
	if len(names) != DefaultAlphabetSize {
		t.Fatalf("len = %d, want %d", len(names), DefaultAlphabetSize)
	}
	seen := make(map[string]bool, len(names))
	for _, s := range names {
		if seen[s] {
			t.Fatalf("duplicate name %q in full alphabet", s)
		}
		seen[s] = true
	}
}

// TestInfeasibleConfigsReturnErrors pins the panic→error conversion:
// runtime-input failures (bad CLI flags, absurd experiment configs) must
// come back as sentinel errors, never crash the process.
func TestInfeasibleConfigsReturnErrors(t *testing.T) {
	if _, err := Names(100 * 1000 * 1000); !errors.Is(err, ErrNamespaceExhausted) {
		t.Fatalf("oversized Names error = %v, want ErrNamespaceExhausted", err)
	}
	cfg := DefaultConfig()
	cfg.NumTrees = 1
	cfg.AlphabetSize = 100 * 1000 * 1000
	if _, err := NewCorpus(1, cfg); !errors.Is(err, ErrNamespaceExhausted) {
		t.Fatalf("oversized-alphabet NewCorpus error = %v, want ErrNamespaceExhausted", err)
	}
	if _, err := NewStream(1, cfg); !errors.Is(err, ErrNamespaceExhausted) {
		t.Fatalf("oversized-alphabet NewStream error = %v, want ErrNamespaceExhausted", err)
	}

	// Two taxa can never make a 50-node tree: node bounds are infeasible.
	cfg = DefaultConfig()
	cfg.NumTrees = 1
	cfg.MinTaxa, cfg.MaxTaxa = 2, 2
	if _, err := NewCorpus(1, cfg); !errors.Is(err, ErrNodeBoundsInfeasible) {
		t.Fatalf("infeasible-bounds NewCorpus error = %v, want ErrNodeBoundsInfeasible", err)
	}
	s, err := NewStream(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); !errors.Is(err, ErrNodeBoundsInfeasible) {
		t.Fatalf("infeasible-bounds Next error = %v, want ErrNodeBoundsInfeasible", err)
	}
}

func TestCorpusShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTrees = 60 // keep the unit test quick; the bench uses 1500
	c := mustCorpus(t, 1, cfg)
	if got := c.NumTrees(); got != 60 {
		t.Fatalf("NumTrees = %d, want 60", got)
	}
	if len(c.AllTrees()) != 60 {
		t.Fatalf("AllTrees length mismatch")
	}
	for _, s := range c.Studies {
		if len(s.Trees) < 1 {
			t.Fatalf("study %s empty", s.ID)
		}
		for _, tr := range s.Trees {
			if tr.Size() < cfg.MinNodes || tr.Size() > cfg.MaxNodes {
				t.Fatalf("study %s tree has %d nodes outside [%d,%d]",
					s.ID, tr.Size(), cfg.MinNodes, cfg.MaxNodes)
			}
			for _, n := range tr.Nodes() {
				if tr.IsLeaf(n) {
					continue
				}
				if k := tr.NumChildren(n); k < 2 || k > 9 {
					t.Fatalf("internal arity %d outside [2,9]", k)
				}
			}
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTrees = 10
	a := mustCorpus(t, 7, cfg)
	b := mustCorpus(t, 7, cfg)
	if a.NumTrees() != b.NumTrees() {
		t.Fatal("corpus size differs across same-seed runs")
	}
	for i := range a.Studies {
		for j := range a.Studies[i].Trees {
			if !tree.Isomorphic(a.Studies[i].Trees[j], b.Studies[i].Trees[j]) {
				t.Fatalf("study %d tree %d differs across same-seed runs", i, j)
			}
		}
	}
}

func TestStudiesShareTaxa(t *testing.T) {
	// Trees within a study must overlap in taxa, otherwise cross-tree
	// mining would be vacuous.
	cfg := DefaultConfig()
	cfg.NumTrees = 20
	c := mustCorpus(t, 3, cfg)
	for _, s := range c.Studies {
		if len(s.Trees) < 2 {
			continue
		}
		l0 := map[string]bool{}
		for _, l := range s.Trees[0].LeafLabels() {
			l0[l] = true
		}
		shared := 0
		for _, l := range s.Trees[1].LeafLabels() {
			if l0[l] {
				shared++
			}
		}
		if shared == 0 {
			t.Fatalf("study %s trees share no taxa", s.ID)
		}
	}
}

func TestSeedPlantStudyPatterns(t *testing.T) {
	s := SeedPlantStudy()
	if len(s.Trees) != 4 {
		t.Fatalf("trees = %d, want 4", len(s.Trees))
	}
	if len(s.Taxa) != 8 {
		t.Fatalf("taxa = %d, want 8", len(s.Taxa))
	}
	opts := core.DefaultOptions()
	// (Gnetum, Welwitschia) at distance 0 occurs in all four trees.
	if got := core.Support(s.Trees, Gnetum, Welwitschia, core.D(0), opts); got != 4 {
		t.Errorf("support of (Gnetum, Welwitschia, 0) = %d, want 4", got)
	}
	// (Ginkgoales, Ephedra) at distance 1.5 occurs in exactly two trees.
	if got := core.Support(s.Trees, Ginkgoales, Ephedra, core.D(3), opts); got != 2 {
		t.Errorf("support of (Ginkgoales, Ephedra, 1.5) = %d, want 2", got)
	}
	// Both patterns are frequent at the Table 2 default minsup = 2.
	fp := core.MineForest(s.Trees, core.DefaultForestOptions())
	want := map[core.Key]int{
		core.NewKey(Gnetum, Welwitschia, core.D(0)): 4,
		core.NewKey(Ginkgoales, Ephedra, core.D(3)): 2,
	}
	found := 0
	for _, p := range fp {
		if sup, ok := want[p.Key]; ok {
			found++
			if p.Support != sup {
				t.Errorf("%v support = %d, want %d", p.Key, p.Support, sup)
			}
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d expected frequent pairs in %v", found, len(want), fp)
	}
	// Each tree covers all eight taxa as leaves.
	for i, tr := range s.Trees {
		if got := len(tr.LeafLabels()); got != 8 {
			t.Errorf("tree %d has %d distinct leaf labels, want 8", i+1, got)
		}
	}
}
