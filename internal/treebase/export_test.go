package treebase

import (
	"os"
	"testing"

	"treemine/internal/phyloio"
	"treemine/internal/tree"
)

func TestExportNexusRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTrees = 12
	c := mustCorpus(t, 4, cfg)
	dir := t.TempDir()
	files, err := c.ExportNexus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(c.Studies) {
		t.Fatalf("files = %d, studies = %d", len(files), len(c.Studies))
	}
	// Every exported file loads back through the standard reader with
	// isomorphic trees.
	for si, f := range files {
		trees, err := phyloio.ReadTrees([]string{f}, nil)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		want := c.Studies[si].Trees
		if len(trees) != len(want) {
			t.Fatalf("%s: %d trees, want %d", f, len(trees), len(want))
		}
		for i := range trees {
			if !tree.Isomorphic(trees[i], want[i]) {
				t.Fatalf("%s tree %d not isomorphic after round trip", f, i)
			}
		}
	}
}

func TestExportNexusBadDir(t *testing.T) {
	c := &Corpus{Studies: []Study{SeedPlantStudy()}}
	if _, err := c.ExportNexus("/nonexistent-dir-xyz"); err == nil {
		t.Fatal("bad directory accepted")
	}
	_ = os.ErrNotExist
}
