// Package treebase simulates the TreeBASE phylogeny repository
// (www.treebase.org) the paper mined, which is unavailable in this
// offline reproduction. The simulated corpus matches the measured shape
// the paper reports for its 1,500-tree extract: each phylogeny has
// between 50 and 200 nodes, internal nodes have 2–9 children (most have
// 2), leaves carry taxon names from an alphabet of 18,870 distinct
// labels, and the trees are grouped into studies whose trees share taxa —
// which is what makes cross-tree cousin patterns (the paper's §5.1)
// discoverable at all.
//
// Everything is deterministic in the seed, so experiments are
// reproducible.
package treebase

import (
	"errors"
	"fmt"
	"math/rand"

	"treemine/internal/tree"
	"treemine/internal/treegen"
)

// Errors reported for infeasible corpus configurations. These are
// runtime-input failures (the config ultimately comes from CLI flags and
// experiment parameters), so they return as errors rather than panicking
// — the library reserves panics for programmer-error invariants (see
// DESIGN.md §47).
var (
	// ErrNamespaceExhausted is returned when more distinct taxon names
	// are requested than the binomial namespace can produce.
	ErrNamespaceExhausted = errors.New("treebase: name namespace exhausted")
	// ErrNodeBoundsInfeasible is returned when no generated tree can
	// satisfy the configured node-count bounds for a study's taxon set.
	ErrNodeBoundsInfeasible = errors.New("treebase: node-count bounds infeasible")
)

// DefaultAlphabetSize is the number of distinct node labels in the
// paper's TreeBASE extract.
const DefaultAlphabetSize = 18870

// DefaultNumTrees is the number of phylogenies in the paper's extract.
const DefaultNumTrees = 1500

var (
	genusRoots = []string{
		"Acanth", "Brachy", "Calo", "Dendro", "Eri", "Festu", "Gymno",
		"Helio", "Ischn", "Junc", "Krameri", "Lepto", "Micro", "Notho",
		"Orycto", "Phyll", "Quill", "Rhodo", "Strepto", "Tricho",
		"Urtic", "Viburn", "Withani", "Xanth", "Yucc", "Zelkov",
		"Amphi", "Blepharo", "Crypto", "Diplo",
	}
	genusSuffixes = []string{
		"ella", "opsis", "anthus", "ium", "odon", "ophora", "ix",
		"aria", "ensis", "ula", "astrum", "ites", "ina", "oides",
		"ago", "icola", "omyces",
	}
	speciesEpithets = []string{
		"alba", "borealis", "communis", "dubia", "elegans", "fragilis",
		"gracilis", "hirsuta", "incana", "juncea", "kentukea", "laevis",
		"maritima", "nitida", "obtusa", "palustris", "quadrata",
		"rugosa", "sylvatica", "tenuis", "uniflora", "vulgaris",
		"wilsonii", "xalapensis", "yunnanensis", "zeylanica", "aurea",
		"bicolor", "cordata", "decora", "exigua", "flava", "glabra",
		"humilis", "insignis", "lanata", "minor",
	}
)

// Names returns n distinct plausible Latin binomials ("Acanthella alba",
// "Acanthella borealis", …). The sequence is fixed, so Names(k) is always
// a prefix of Names(k+1). It returns ErrNamespaceExhausted when n exceeds
// the namespace (genera × epithets × numeric varieties).
func Names(n int) ([]string, error) {
	out := make([]string, 0, n)
	variety := 0
	for len(out) < n {
		for _, root := range genusRoots {
			for _, suf := range genusSuffixes {
				for _, sp := range speciesEpithets {
					if len(out) == n {
						return out, nil
					}
					name := root + suf + " " + sp
					if variety > 0 {
						name = fmt.Sprintf("%s var. %d", name, variety)
					}
					out = append(out, name)
				}
			}
		}
		variety++
		if variety > 100 {
			return nil, fmt.Errorf("%w: generating %d names", ErrNamespaceExhausted, n)
		}
	}
	return out, nil
}

// Config shapes a simulated corpus. Use DefaultConfig for the paper's
// extract.
type Config struct {
	NumTrees      int // total phylogenies in the corpus
	AlphabetSize  int // distinct taxon names available
	MinTaxa       int // minimum taxa per study
	MaxTaxa       int // maximum taxa per study
	MinTreesStudy int // minimum trees per study
	MaxTreesStudy int // maximum trees per study
	MinNodes      int // minimum nodes per phylogeny
	MaxNodes      int // maximum nodes per phylogeny
}

// DefaultConfig matches the corpus statistics reported in §4: 1,500
// trees, 50–200 nodes each, label alphabet of 18,870.
func DefaultConfig() Config {
	return Config{
		NumTrees:      DefaultNumTrees,
		AlphabetSize:  DefaultAlphabetSize,
		MinTaxa:       28,
		MaxTaxa:       95,
		MinTreesStudy: 2,
		MaxTreesStudy: 6,
		MinNodes:      50,
		MaxNodes:      200,
	}
}

// Study is one TreeBASE study: a set of phylogenies over a shared taxon
// set (e.g. the equally parsimonious trees a publication reported).
type Study struct {
	ID    string
	Taxa  []string
	Trees []*tree.Tree
}

// Corpus is a simulated TreeBASE extract.
type Corpus struct {
	Studies []Study
}

// NewCorpus builds a corpus deterministically from the seed. Study taxon
// sets are sampled from the global dictionary with overlap across
// studies, and every tree respects cfg's node-count bounds. Infeasible
// configurations (an alphabet beyond the namespace, node bounds no
// generated tree can hit) return errors.
func NewCorpus(seed int64, cfg Config) (*Corpus, error) {
	rng := rand.New(rand.NewSource(seed))
	dict, err := Names(cfg.AlphabetSize)
	if err != nil {
		return nil, err
	}
	c := &Corpus{}
	total := 0
	for total < cfg.NumTrees {
		k := cfg.MinTreesStudy + rng.Intn(cfg.MaxTreesStudy-cfg.MinTreesStudy+1)
		if total+k > cfg.NumTrees {
			k = cfg.NumTrees - total
		}
		s := Study{ID: fmt.Sprintf("S%04d", len(c.Studies)+1)}
		nTaxa := cfg.MinTaxa + rng.Intn(cfg.MaxTaxa-cfg.MinTaxa+1)
		s.Taxa = sampleTaxa(rng, dict, nTaxa)
		for i := 0; i < k; i++ {
			t, err := genTree(rng, s.Taxa, cfg)
			if err != nil {
				return nil, err
			}
			s.Trees = append(s.Trees, t)
		}
		c.Studies = append(c.Studies, s)
		total += k
	}
	return c, nil
}

// sampleTaxa draws n distinct names. Draws are localized around a random
// dictionary region so different studies overlap in taxa the way real
// studies of related clades do.
func sampleTaxa(rng *rand.Rand, dict []string, n int) []string {
	window := n * 4
	if window > len(dict) {
		window = len(dict)
	}
	start := rng.Intn(len(dict) - window + 1)
	idx := rng.Perm(window)[:n]
	out := make([]string, n)
	for i, j := range idx {
		out[i] = dict[start+j]
	}
	return out
}

// genTree generates one phylogeny over a subset of the study's taxa whose
// node count falls within the configured bounds, retrying with adjusted
// leaf counts when multifurcation lands outside them. After 200 failed
// attempts the bounds are deemed infeasible for this taxon set and an
// error is returned.
func genTree(rng *rand.Rand, taxa []string, cfg Config) (*tree.Tree, error) {
	for attempt := 0; ; attempt++ {
		nLeaves := len(taxa)
		// A multifurcating tree over L leaves has between L+1 and 2L−1
		// nodes; shrink the leaf set if even the binary bound overflows.
		if max := (cfg.MaxNodes + 1) / 2; nLeaves > max {
			nLeaves = max
		}
		sub := taxa
		if nLeaves < len(taxa) {
			idx := rng.Perm(len(taxa))[:nLeaves]
			sub = make([]string, nLeaves)
			for i, j := range idx {
				sub[i] = taxa[j]
			}
		}
		t := treegen.Multifurcating(rng, sub, 2, 9)
		if t.Size() >= cfg.MinNodes && t.Size() <= cfg.MaxNodes {
			return t, nil
		}
		if attempt > 200 {
			return nil, fmt.Errorf("%w: [%d,%d] nodes with %d taxa",
				ErrNodeBoundsInfeasible, cfg.MinNodes, cfg.MaxNodes, len(taxa))
		}
	}
}

// AllTrees returns every phylogeny in the corpus in study order.
func (c *Corpus) AllTrees() []*tree.Tree {
	var out []*tree.Tree
	for _, s := range c.Studies {
		out = append(out, s.Trees...)
	}
	return out
}

// NumTrees returns the total number of phylogenies.
func (c *Corpus) NumTrees() int {
	n := 0
	for _, s := range c.Studies {
		n += len(s.Trees)
	}
	return n
}
