package treebase

import (
	"io"
	"testing"

	"treemine/internal/tree"
)

// TestStreamMatchesCorpus pins the streaming generator to NewCorpus:
// same seed and config must yield the identical tree sequence, so a
// streamed experiment reproduces the materialized one bit for bit.
func TestStreamMatchesCorpus(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTrees = 40
	want := mustCorpus(t, 9, cfg).AllTrees()

	s, err := NewStream(9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []*tree.Tree
	for {
		tr, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d trees, corpus has %d", len(got), len(want))
	}
	for i := range got {
		if !tree.Isomorphic(got[i], want[i]) {
			t.Fatalf("tree %d differs between Stream and NewCorpus", i)
		}
	}
	// Exhausted streams stay exhausted.
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}
