package treebase

import (
	"fmt"
	"os"
	"path/filepath"

	"treemine/internal/nexus"
)

// ExportNexus writes the corpus to dir as one NEXUS file per study
// (S0001.nex, …), each with a TAXA block and a TREES block holding the
// study's phylogenies — the on-disk layout TreeBASE study downloads use,
// so the CLI tools can be exercised against the simulated corpus
// end-to-end. The directory must exist. It returns the files written.
func (c *Corpus) ExportNexus(dir string) ([]string, error) {
	var files []string
	for _, s := range c.Studies {
		f := &nexus.File{Taxa: s.Taxa}
		for i, t := range s.Trees {
			f.Trees = append(f.Trees, nexus.TreeEntry{
				Name:   fmt.Sprintf("%s_tree%d", s.ID, i+1),
				Rooted: true,
				Tree:   t,
			})
		}
		path := filepath.Join(dir, s.ID+".nex")
		out, err := os.Create(path)
		if err != nil {
			return files, fmt.Errorf("treebase: %w", err)
		}
		if err := nexus.Write(out, f); err != nil {
			out.Close()
			return files, fmt.Errorf("treebase: write %s: %w", path, err)
		}
		if err := out.Close(); err != nil {
			return files, fmt.Errorf("treebase: close %s: %w", path, err)
		}
		files = append(files, path)
	}
	return files, nil
}
