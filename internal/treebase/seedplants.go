package treebase

import "treemine/internal/tree"

// Seed-plant taxa of the Doyle & Donoghue study the paper mines in §5.1
// (Figure 8).
const (
	Cycadales   = "Cycadales"
	Ginkgoales  = "Ginkgoales"
	Coniferales = "Coniferales"
	Ephedra     = "Ephedra"
	Welwitschia = "Welwitschia"
	Gnetum      = "Gnetum"
	Angiosperms = "Angiosperms"
	Outgroup    = "Outgroup to Seed Plants"
)

// SeedPlantStudy reconstructs the four seed-plant phylogenies of the
// paper's Figure 8 workload. The published figure is a screenshot too
// small to recover branch-for-branch, so the trees are built to exhibit
// exactly the mining results the paper reports: (Gnetum, Welwitschia) is
// a frequent cousin pair at distance 0 occurring in all four trees, and
// (Ginkgoales, Ephedra) is a frequent cousin pair at distance 1.5
// occurring in two of the four trees.
func SeedPlantStudy() Study {
	return Study{
		ID: "DoyleDonoghue1992",
		Taxa: []string{
			Cycadales, Ginkgoales, Coniferales, Ephedra,
			Welwitschia, Gnetum, Angiosperms, Outgroup,
		},
		Trees: []*tree.Tree{
			seedPlantTree1(), seedPlantTree2(),
			seedPlantTree3(), seedPlantTree4(),
		},
	}
}

// seedPlantTree1 places Ginkgoales two levels and Ephedra three levels
// below their common ancestor: cousin distance 1.5.
func seedPlantTree1() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, Outgroup)
	a := b.ChildUnlabeled(r)
	x1 := b.ChildUnlabeled(a)
	b.Child(x1, Cycadales)
	b.Child(x1, Ginkgoales)
	x2 := b.ChildUnlabeled(a)
	b.Child(x2, Angiosperms)
	g := b.ChildUnlabeled(x2)
	b.Child(g, Ephedra)
	w := b.ChildUnlabeled(g)
	b.Child(w, Gnetum)
	b.Child(w, Welwitschia)
	b.Child(a, Coniferales)
	return b.MustBuild()
}

// seedPlantTree2 also realizes (Ginkgoales, Ephedra) at distance 1.5,
// with a different arrangement of the remaining taxa.
func seedPlantTree2() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, Outgroup)
	a := b.ChildUnlabeled(r)
	x1 := b.ChildUnlabeled(a)
	b.Child(x1, Ginkgoales)
	b.Child(x1, Coniferales)
	x2 := b.ChildUnlabeled(a)
	b.Child(x2, Cycadales)
	g := b.ChildUnlabeled(x2)
	b.Child(g, Ephedra)
	w := b.ChildUnlabeled(g)
	b.Child(w, Gnetum)
	b.Child(w, Welwitschia)
	b.Child(a, Angiosperms)
	return b.MustBuild()
}

// seedPlantTree3 is an anthophyte-style ladder: Ginkgoales and Ephedra
// are more than one generation apart, so their cousin distance is
// undefined here.
func seedPlantTree3() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, Outgroup)
	c := b.ChildUnlabeled(r)
	b.Child(c, Cycadales)
	b.Child(c, Ginkgoales)
	d := b.ChildUnlabeled(c)
	b.Child(d, Coniferales)
	e := b.ChildUnlabeled(d)
	b.Child(e, Angiosperms)
	f := b.ChildUnlabeled(e)
	b.Child(f, Ephedra)
	w := b.ChildUnlabeled(f)
	b.Child(w, Gnetum)
	b.Child(w, Welwitschia)
	return b.MustBuild()
}

// seedPlantTree4 keeps the Gnetales clade but separates Ginkgoales and
// Ephedra by two generations, again leaving their distance undefined.
func seedPlantTree4() *tree.Tree {
	b := tree.NewBuilder()
	r := b.RootUnlabeled()
	b.Child(r, Outgroup)
	h := b.ChildUnlabeled(r)
	x := b.ChildUnlabeled(h)
	b.Child(x, Cycadales)
	b.Child(x, Ginkgoales)
	y := b.ChildUnlabeled(h)
	b.Child(y, Coniferales)
	f := b.ChildUnlabeled(y)
	b.Child(f, Angiosperms)
	g := b.ChildUnlabeled(f)
	b.Child(g, Ephedra)
	w := b.ChildUnlabeled(g)
	b.Child(w, Gnetum)
	b.Child(w, Welwitschia)
	return b.MustBuild()
}
