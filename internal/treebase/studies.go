package treebase

import (
	"treemine/internal/core"
)

// StudyPatterns couples a study with the cousin pairs frequent among its
// trees.
type StudyPatterns struct {
	StudyID string
	Pairs   []core.FrequentPair
}

// MineStudies applies Multiple_Tree_Mining to each study of the corpus
// separately — exactly the §5.1 workflow ("we applied
// Multiple_Tree_Mining to the phylogenies associated with each study in
// TreeBASE to discover co-occurring patterns"). Studies whose frequent
// set is empty are omitted.
func MineStudies(c *Corpus, opts core.ForestOptions) []StudyPatterns {
	var out []StudyPatterns
	for _, s := range c.Studies {
		fp := core.MineForest(s.Trees, opts)
		if len(fp) > 0 {
			out = append(out, StudyPatterns{StudyID: s.ID, Pairs: fp})
		}
	}
	return out
}
