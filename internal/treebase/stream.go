package treebase

import (
	"io"
	"math/rand"

	"treemine/internal/tree"
)

// Stream generates the corpus NewCorpus(seed, cfg) would build, one
// phylogeny at a time, without ever materializing it: only the current
// study's taxon set is resident. It satisfies the core.TreeIterator
// contract (Next returns io.EOF after the last tree), so experiments at
// 10× and beyond the paper's corpus can run through the streaming miner
// in bounded memory.
//
// The RNG draw order is exactly NewCorpus's — per study: tree count,
// taxon count, taxon sample, then one genTree per tree — so the yielded
// sequence is identical, tree for tree, to Corpus.AllTrees().
type Stream struct {
	rng   *rand.Rand
	dict  []string
	cfg   Config
	total int      // trees yielded so far
	left  int      // trees remaining in the current study
	taxa  []string // current study's taxon set
}

// NewStream returns a Stream equivalent to NewCorpus(seed, cfg). It
// fails with ErrNamespaceExhausted when cfg's alphabet exceeds the
// binomial namespace.
func NewStream(seed int64, cfg Config) (*Stream, error) {
	dict, err := Names(cfg.AlphabetSize)
	if err != nil {
		return nil, err
	}
	return &Stream{
		rng:  rand.New(rand.NewSource(seed)),
		dict: dict,
		cfg:  cfg,
	}, nil
}

// Next returns the next phylogeny, or io.EOF after the NumTrees-th.
// Infeasible node bounds surface as ErrNodeBoundsInfeasible mid-stream,
// which the streaming miner reports with the failing tree's index.
func (s *Stream) Next() (*tree.Tree, error) {
	if s.left == 0 {
		if s.total >= s.cfg.NumTrees {
			return nil, io.EOF
		}
		k := s.cfg.MinTreesStudy + s.rng.Intn(s.cfg.MaxTreesStudy-s.cfg.MinTreesStudy+1)
		if s.total+k > s.cfg.NumTrees {
			k = s.cfg.NumTrees - s.total
		}
		nTaxa := s.cfg.MinTaxa + s.rng.Intn(s.cfg.MaxTaxa-s.cfg.MinTaxa+1)
		s.taxa = sampleTaxa(s.rng, s.dict, nTaxa)
		s.left = k
	}
	t, err := genTree(s.rng, s.taxa, s.cfg)
	if err != nil {
		return nil, err
	}
	s.left--
	s.total++
	return t, nil
}
