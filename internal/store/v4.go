package store

// Store format v4: a single flat file laid out for zero-copy mmap
// serving. Where v1–v3 are gob streams that must be decoded into Go
// maps before the first query (cost and resident heap proportional to
// index size, nothing shared between processes), a v4 file IS the
// queryable structure: a fixed-width header, the interned symbol table
// as offset-indexed string data sorted by label, and the support table
// as a sorted array of fixed-width (packed IKey, count) records — every
// lookup is a binary search directly on the mapped bytes, so a daemon
// opens in ~O(1) and the kernel page cache shares the postings across
// any number of processes.
//
// Shards mined past core.MaxPackedDist cannot use packed IKeys (the
// 4-bit distance field overflows: NewIKey(a,b,15) == NewIKey(a,b+1,
// DistWild), which PR 7's review fix established must never merge
// distinct pairs' counts). Those compact into a string-keyed section
// instead: length-prefixed (labelA, labelB, dist, count) records sorted
// by (A, B, D) behind a fixed-width offset index, binary-searched by
// direct byte comparison. A file holds exactly one of the two sections.
//
// Both sections carry a support-descending permutation so frequent-pair
// listings walk the mapped records in Finalize(1) order without
// materializing anything. Symbol IDs in a v4 file are RANKS in the
// sorted label table, which makes packed-IKey numeric order coincide
// with core.CompareKeys order — the base record order doubles as the
// tie-break order, so the permutation is just a stable support sort.
//
// Layout (all integers little-endian, sections 8-byte aligned):
//
//	offset 0    magic "TREEMINEIDX4" (12 bytes)
//	offset 12   fixed-width header (see v4Hdr* constants)
//	            symbol offset index: (symCount+1) × u64, relative to symData
//	            symbol string data (labels concatenated, sorted ascending)
//	            packed postings: postCount × (IKey u64, count i64)
//	            generic offset index: (genCount+1) × u64, relative to genData
//	            generic records: lenA u32, lenB u32, dist i64, count i64, A, B
//	            permutation: recCount × u32, support-descending stable order
//
// The header stores a CRC32-C of itself and of the whole payload;
// OpenMapped verifies both plus every structural invariant binary
// search depends on (sorted labels, sorted keys, in-bounds offsets, a
// true permutation), so a corrupt or adversarial file errors out
// cleanly and can never panic a serving process.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"treemine/internal/core"
	"treemine/internal/faults"
)

const magicV4 = "TREEMINEIDX4"

// Fixed header field offsets (from the start of the file) and lengths.
const (
	v4HdrFlags      = 12  // u64: bit0 IgnoreDist, bit1 generic section
	v4HdrMaxDist    = 20  // i64, core.Dist halves
	v4HdrMinOccur   = 28  // i64
	v4HdrMinSup     = 36  // i64
	v4HdrTrees      = 44  // i64
	v4HdrItems      = 52  // i64: source per-tree item total (0 for shards)
	v4HdrSymCount   = 60  // u64
	v4HdrSymIdxOff  = 68  // u64
	v4HdrSymDataOff = 76  // u64
	v4HdrSymDataLen = 84  // u64
	v4HdrPostCount  = 92  // u64
	v4HdrPostOff    = 100 // u64
	v4HdrGenCount   = 108 // u64
	v4HdrGenIdxOff  = 116 // u64
	v4HdrGenDataOff = 124 // u64
	v4HdrGenDataLen = 132 // u64
	v4HdrPermOff    = 140 // u64
	v4HdrFileSize   = 148 // u64
	v4HdrPayloadCRC = 156 // u32, CRC32-C of bytes [v4HeaderLen, fileSize)
	v4HdrHeaderCRC  = 160 // u32, CRC32-C of bytes [0, v4HdrHeaderCRC)
	v4HeaderLen     = 164

	v4FlagIgnoreDist = 1 << 0
	v4FlagGeneric    = 1 << 1

	v4PostRecLen    = 16 // packed posting: IKey u64 + count i64
	v4GenPreludeLen = 24 // generic record prelude: lenA u32, lenB u32, d i64, n i64
)

var v4CRCTable = crc32.MakeTable(crc32.Castagnoli)

// v4image is the in-memory form a source index or shard is normalized
// into before serialization: flat fixed-width slices (no maps), so the
// compaction sort runs in memory bounded by the number of distinct
// support entries plus labels, never by trees × items.
type v4image struct {
	opts   core.ForestOptions
	trees  int
	items  int64       // per-tree item total of the source, 0 for shards
	labels []string    // sorted ascending, unique; IDs below are ranks
	post   []v4Posting // packed section (MaxDist ≤ MaxPackedDist)
	gen    []v4GenRec  // generic section (past MaxPackedDist)
	perm   []uint32    // support-descending stable order over post or gen
}

type v4Posting struct {
	key core.IKey
	n   int64
}

type v4GenRec struct {
	a, b string // canonical: a ≤ b
	d    core.Dist
	n    int64
}

func (img *v4image) generic() bool {
	return !img.opts.MaxDist.IsWild() && img.opts.MaxDist > core.MaxPackedDist
}

func (img *v4image) recCount() int {
	if img.generic() {
		return len(img.gen)
	}
	return len(img.post)
}

// sortAndPermute sorts the record section into key order (which, with
// rank-coded symbols, is exactly core.CompareKeys order), merges any
// duplicate keys by summing counts, and builds the support-descending
// stable permutation — the Finalize(1) listing order.
func (img *v4image) sortAndPermute() {
	if img.generic() {
		sort.Slice(img.gen, func(i, j int) bool {
			return cmpGenRec(&img.gen[i], &img.gen[j]) < 0
		})
		out := img.gen[:0]
		for _, r := range img.gen {
			if len(out) > 0 {
				last := &out[len(out)-1]
				if last.a == r.a && last.b == r.b && last.d == r.d {
					last.n += r.n
					continue
				}
			}
			out = append(out, r)
		}
		img.gen = out
	} else {
		sort.Slice(img.post, func(i, j int) bool { return img.post[i].key < img.post[j].key })
		out := img.post[:0]
		for _, p := range img.post {
			if len(out) > 0 && out[len(out)-1].key == p.key {
				out[len(out)-1].n += p.n
				continue
			}
			out = append(out, p)
		}
		img.post = out
	}
	img.perm = make([]uint32, img.recCount())
	for i := range img.perm {
		img.perm[i] = uint32(i)
	}
	supportAt := func(i uint32) int64 {
		if img.generic() {
			return img.gen[i].n
		}
		return img.post[i].n
	}
	sort.SliceStable(img.perm, func(i, j int) bool {
		return supportAt(img.perm[i]) > supportAt(img.perm[j])
	})
}

func cmpGenRec(x, y *v4GenRec) int {
	if c := bytes.Compare([]byte(x.a), []byte(y.a)); c != 0 {
		return c
	}
	if c := bytes.Compare([]byte(x.b), []byte(y.b)); c != 0 {
		return c
	}
	switch {
	case x.d < y.d:
		return -1
	case x.d > y.d:
		return 1
	}
	return 0
}

// rankLabels sorts a unique label set and returns the sorted slice plus
// the label → rank map used to recode items.
func rankLabels(labels []string) ([]string, map[string]uint32) {
	sorted := make([]string, len(labels))
	copy(sorted, labels)
	sort.Strings(sorted)
	rank := make(map[string]uint32, len(sorted))
	for i, l := range sorted {
		rank[l] = uint32(i)
	}
	return sorted, rank
}

// imageFromSnapshot normalizes a shard snapshot (the v3 payload shape)
// into a v4 image.
func imageFromSnapshot(opts core.ForestOptions, trees int, labels []string, items []core.ShardItem) (*v4image, error) {
	if len(labels) > core.MaxSymbols {
		return nil, fmt.Errorf("store: compact: %d labels exceed the symbol space", len(labels))
	}
	img := &v4image{opts: opts, trees: trees}
	sorted, rank := rankLabels(labels)
	img.labels = sorted
	if img.generic() {
		img.gen = make([]v4GenRec, 0, len(items))
		for _, it := range items {
			if int(it.A) >= len(labels) || int(it.B) >= len(labels) {
				return nil, fmt.Errorf("store: compact: symbol id out of range")
			}
			k := core.NewKey(labels[it.A], labels[it.B], it.D)
			img.gen = append(img.gen, v4GenRec{a: k.A, b: k.B, d: k.D, n: it.N})
		}
	} else {
		img.post = make([]v4Posting, 0, len(items))
		for _, it := range items {
			if int(it.A) >= len(labels) || int(it.B) >= len(labels) {
				return nil, fmt.Errorf("store: compact: symbol id out of range")
			}
			img.post = append(img.post, v4Posting{
				key: core.NewIKey(rank[labels[it.A]], rank[labels[it.B]], it.D),
				n:   it.N,
			})
		}
	}
	img.sortAndPermute()
	return img, nil
}

// imageFromIndex normalizes a v1/v2 per-tree index into a v4 image: the
// aggregate support table becomes the record section. The per-tree item
// sets themselves do not survive compaction — v4 is an aggregate format
// — so tree-distance queries need the original index.
func imageFromIndex(ix *Index) (*v4image, error) {
	img := &v4image{
		opts:  core.ForestOptions{Options: ix.Options, MinSup: 1},
		trees: ix.NumTrees(),
	}
	for _, e := range ix.Entries {
		img.items += int64(len(e.Items))
	}
	sup := ix.supportTable()
	labelSet := make(map[string]struct{})
	for k := range sup {
		labelSet[k.A] = struct{}{}
		labelSet[k.B] = struct{}{}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sorted, rank := rankLabels(labels)
	img.labels = sorted
	if len(sorted) > core.MaxSymbols {
		return nil, fmt.Errorf("store: compact: %d labels exceed the symbol space", len(sorted))
	}
	if img.generic() {
		img.gen = make([]v4GenRec, 0, len(sup))
		for k, n := range sup {
			img.gen = append(img.gen, v4GenRec{a: k.A, b: k.B, d: k.D, n: int64(n)})
		}
	} else {
		img.post = make([]v4Posting, 0, len(sup))
		for k, n := range sup {
			img.post = append(img.post, v4Posting{
				key: core.NewIKey(rank[k.A], rank[k.B], k.D),
				n:   int64(n),
			})
		}
	}
	img.sortAndPermute()
	return img, nil
}

// align8 pads buf to the next 8-byte boundary.
func align8(buf []byte) []byte {
	for len(buf)%8 != 0 {
		buf = append(buf, 0)
	}
	return buf
}

// appendV4 serializes the image into the complete file byte image,
// checksums included.
func (img *v4image) appendV4() []byte {
	var symData []byte
	symIdx := make([]byte, 0, 8*(len(img.labels)+1))
	off := uint64(0)
	for _, l := range img.labels {
		symIdx = binary.LittleEndian.AppendUint64(symIdx, off)
		symData = append(symData, l...)
		off += uint64(len(l))
	}
	symIdx = binary.LittleEndian.AppendUint64(symIdx, off)

	var post, genIdx, genData []byte
	if img.generic() {
		genIdx = make([]byte, 0, 8*(len(img.gen)+1))
		goff := uint64(0)
		for _, r := range img.gen {
			genIdx = binary.LittleEndian.AppendUint64(genIdx, goff)
			genData = binary.LittleEndian.AppendUint32(genData, uint32(len(r.a)))
			genData = binary.LittleEndian.AppendUint32(genData, uint32(len(r.b)))
			genData = binary.LittleEndian.AppendUint64(genData, uint64(int64(r.d)))
			genData = binary.LittleEndian.AppendUint64(genData, uint64(r.n))
			genData = append(genData, r.a...)
			genData = append(genData, r.b...)
			goff = uint64(len(genData))
		}
		genIdx = binary.LittleEndian.AppendUint64(genIdx, goff)
	} else {
		post = make([]byte, 0, v4PostRecLen*len(img.post))
		for _, p := range img.post {
			post = binary.LittleEndian.AppendUint64(post, uint64(p.key))
			post = binary.LittleEndian.AppendUint64(post, uint64(p.n))
		}
	}
	perm := make([]byte, 0, 4*len(img.perm))
	for _, p := range img.perm {
		perm = binary.LittleEndian.AppendUint32(perm, p)
	}

	// Assemble: header placeholder, then the 8-aligned sections.
	buf := make([]byte, v4HeaderLen, v4HeaderLen+len(symIdx)+len(symData)+len(post)+len(genIdx)+len(genData)+len(perm)+64)
	place := func(section []byte) uint64 {
		buf = align8(buf)
		at := uint64(len(buf))
		buf = append(buf, section...)
		return at
	}
	symIdxOff := place(symIdx)
	symDataOff := place(symData)
	postOff := place(post)
	genIdxOff := place(genIdx)
	genDataOff := place(genData)
	permOff := place(perm)

	copy(buf, magicV4)
	var flags uint64
	if img.opts.IgnoreDist {
		flags |= v4FlagIgnoreDist
	}
	if img.generic() {
		flags |= v4FlagGeneric
	}
	le := binary.LittleEndian
	le.PutUint64(buf[v4HdrFlags:], flags)
	le.PutUint64(buf[v4HdrMaxDist:], uint64(int64(img.opts.MaxDist)))
	le.PutUint64(buf[v4HdrMinOccur:], uint64(int64(img.opts.MinOccur)))
	le.PutUint64(buf[v4HdrMinSup:], uint64(int64(img.opts.MinSup)))
	le.PutUint64(buf[v4HdrTrees:], uint64(int64(img.trees)))
	le.PutUint64(buf[v4HdrItems:], uint64(img.items))
	le.PutUint64(buf[v4HdrSymCount:], uint64(len(img.labels)))
	le.PutUint64(buf[v4HdrSymIdxOff:], symIdxOff)
	le.PutUint64(buf[v4HdrSymDataOff:], symDataOff)
	le.PutUint64(buf[v4HdrSymDataLen:], uint64(len(symData)))
	le.PutUint64(buf[v4HdrPostCount:], uint64(len(img.post)))
	le.PutUint64(buf[v4HdrPostOff:], postOff)
	le.PutUint64(buf[v4HdrGenCount:], uint64(len(img.gen)))
	le.PutUint64(buf[v4HdrGenIdxOff:], genIdxOff)
	le.PutUint64(buf[v4HdrGenDataOff:], genDataOff)
	le.PutUint64(buf[v4HdrGenDataLen:], uint64(len(genData)))
	le.PutUint64(buf[v4HdrPermOff:], permOff)
	le.PutUint64(buf[v4HdrFileSize:], uint64(len(buf)))
	le.PutUint32(buf[v4HdrPayloadCRC:], crc32.Checksum(buf[v4HeaderLen:], v4CRCTable))
	le.PutUint32(buf[v4HdrHeaderCRC:], crc32.Checksum(buf[:v4HdrHeaderCRC], v4CRCTable))
	return buf
}

// CompactIndexV4 compacts a loaded (or freshly built) v1/v2 index into
// a v4 file at dst, written durably via AtomicWrite. Only the aggregate
// support table survives — serve tree-distance queries from the
// original index if you need them.
func CompactIndexV4(dst string, ix *Index) error {
	img, err := imageFromIndex(ix)
	if err != nil {
		return err
	}
	return writeV4(dst, img)
}

// CompactShardV4 compacts a support shard into a v4 file at dst,
// written durably via AtomicWrite.
func CompactShardV4(dst string, sh *core.SupportShard) error {
	opts, trees, labels, items := sh.Snapshot()
	img, err := imageFromSnapshot(opts, trees, labels, items)
	if err != nil {
		return err
	}
	return writeV4(dst, img)
}

func writeV4(dst string, img *v4image) error {
	buf := img.appendV4()
	return AtomicWrite(dst, func(w io.Writer) error {
		_, err := w.Write(buf)
		return err
	})
}

// CompactV4 streams any store file — a v1/v2 index, a v3 shard
// checkpoint, or an existing v4 file (validated and copied verbatim) —
// into a v4 file at dst. The write goes through AtomicWrite, so a crash
// or torn write at any point leaves dst's previous contents intact and
// never touches the source. Postings are sorted on flat fixed-width
// slices, so compaction memory is bounded by the distinct support
// entries plus the label table, not by the source's tree count.
func CompactV4(dst string, src io.Reader) error {
	br := bufio.NewReader(src)
	head, err := br.Peek(len(magicV4))
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	switch string(head) {
	case magicV4:
		raw, err := io.ReadAll(br)
		if err != nil {
			return fmt.Errorf("store: compact: %w", err)
		}
		if _, err := OpenMappedBytes(raw); err != nil {
			return err
		}
		return AtomicWrite(dst, func(w io.Writer) error {
			_, err := w.Write(raw)
			return err
		})
	case magicV3:
		sh, err := LoadShard(br)
		if err != nil {
			return err
		}
		return CompactShardV4(dst, sh)
	default:
		ix, err := Load(br)
		if err != nil {
			return err
		}
		return CompactIndexV4(dst, ix)
	}
}

// Mapped is a v4 file opened for in-place querying: every accessor
// reads the underlying bytes directly (mmap'd by OpenMapped, or any
// in-memory byte slice via OpenMappedBytes) and the support lookups are
// allocation-free binary searches. A Mapped is immutable and safe for
// any number of concurrent readers. Close unmaps the file; no accessor
// may be called afterwards.
type Mapped struct {
	data  []byte
	unmap func() error

	opts    core.ForestOptions
	trees   int
	items   int64
	generic bool

	symCount int
	symIdx   []byte // (symCount+1) × u64
	symData  []byte

	postCount int
	post      []byte // postCount × v4PostRecLen

	genCount int
	genIdx   []byte // (genCount+1) × u64
	genData  []byte

	perm []byte // recCount × u32
}

func v4Corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: v4: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// section bounds-checks one header-described region of data and
// returns it.
func v4Section(data []byte, off, length uint64, name string) ([]byte, error) {
	size := uint64(len(data))
	if off > size || length > size-off {
		return nil, v4Corrupt("%s section [%d, %d+%d) outside file of %d bytes", name, off, off, length, size)
	}
	return data[off : off+length], nil
}

// OpenMappedBytes validates a complete v4 byte image and returns the
// queryable view over it. Every structural invariant the binary
// searches rely on is checked here — truncated headers, checksum
// mismatches, unsorted postings or labels, out-of-bounds string
// offsets, and non-permutation perm sections all error out cleanly.
func OpenMappedBytes(data []byte) (*Mapped, error) {
	if len(data) < v4HeaderLen {
		return nil, fmt.Errorf("%w: v4 header truncated (%d bytes)", ErrBadMagic, len(data))
	}
	if string(data[:len(magicV4)]) != magicV4 {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	if got, want := crc32.Checksum(data[:v4HdrHeaderCRC], v4CRCTable), le.Uint32(data[v4HdrHeaderCRC:]); got != want {
		return nil, v4Corrupt("header checksum mismatch (%08x, want %08x)", got, want)
	}
	if fileSize := le.Uint64(data[v4HdrFileSize:]); fileSize != uint64(len(data)) {
		return nil, v4Corrupt("file size %d in header, %d on disk", fileSize, len(data))
	}
	if got, want := crc32.Checksum(data[v4HeaderLen:], v4CRCTable), le.Uint32(data[v4HdrPayloadCRC:]); got != want {
		return nil, v4Corrupt("payload checksum mismatch (%08x, want %08x)", got, want)
	}

	flags := le.Uint64(data[v4HdrFlags:])
	if flags&^uint64(v4FlagIgnoreDist|v4FlagGeneric) != 0 {
		return nil, v4Corrupt("unknown flags %#x", flags)
	}
	m := &Mapped{
		data:    data,
		generic: flags&v4FlagGeneric != 0,
		opts: core.ForestOptions{
			Options: core.Options{
				MaxDist:  core.Dist(int64(le.Uint64(data[v4HdrMaxDist:]))),
				MinOccur: int(int64(le.Uint64(data[v4HdrMinOccur:]))),
			},
			MinSup:     int(int64(le.Uint64(data[v4HdrMinSup:]))),
			IgnoreDist: flags&v4FlagIgnoreDist != 0,
		},
		trees: int(int64(le.Uint64(data[v4HdrTrees:]))),
		items: int64(le.Uint64(data[v4HdrItems:])),
	}
	if m.trees < 0 || m.items < 0 || m.opts.MaxDist < 0 || m.opts.MinOccur < 0 || m.opts.MinSup < 0 {
		return nil, v4Corrupt("negative header field (trees %d, items %d, opts %+v)", m.trees, m.items, m.opts)
	}
	if wantGeneric := m.opts.MaxDist > core.MaxPackedDist; wantGeneric != m.generic {
		return nil, v4Corrupt("generic flag %v inconsistent with maxdist %s", m.generic, m.opts.MaxDist)
	}

	// Symbol table: offset index plus string data, labels sorted strictly
	// ascending so lookup can binary-search.
	symCount := le.Uint64(data[v4HdrSymCount:])
	if symCount > uint64(core.MaxSymbols) || symCount > uint64(len(data))/8 {
		return nil, v4Corrupt("symbol count %d out of range", symCount)
	}
	m.symCount = int(symCount)
	var err error
	if m.symIdx, err = v4Section(data, le.Uint64(data[v4HdrSymIdxOff:]), (symCount+1)*8, "symbol index"); err != nil {
		return nil, err
	}
	symDataLen := le.Uint64(data[v4HdrSymDataLen:])
	if m.symData, err = v4Section(data, le.Uint64(data[v4HdrSymDataOff:]), symDataLen, "symbol data"); err != nil {
		return nil, err
	}
	prevOff := uint64(0)
	var prevLabel []byte
	for i := 0; i <= m.symCount; i++ {
		off := le.Uint64(m.symIdx[i*8:])
		if off < prevOff || off > symDataLen {
			return nil, v4Corrupt("symbol offset %d at #%d out of bounds (prev %d, data %d)", off, i, prevOff, symDataLen)
		}
		if i > 0 {
			label := m.symData[prevOff:off]
			if prevLabel != nil && bytes.Compare(prevLabel, label) >= 0 {
				return nil, v4Corrupt("symbol table not strictly sorted at #%d", i-1)
			}
			prevLabel = label
		}
		prevOff = off
	}
	if m.symCount >= 0 && le.Uint64(m.symIdx[m.symCount*8:]) != symDataLen {
		return nil, v4Corrupt("symbol index does not span the symbol data")
	}

	// Record section: exactly one of packed postings or generic records.
	postCount := le.Uint64(data[v4HdrPostCount:])
	genCount := le.Uint64(data[v4HdrGenCount:])
	if postCount > uint64(len(data))/v4PostRecLen || genCount > uint64(len(data))/8 {
		return nil, v4Corrupt("record counts out of range (post %d, generic %d)", postCount, genCount)
	}
	if m.generic && postCount != 0 || !m.generic && genCount != 0 {
		return nil, v4Corrupt("both record sections populated (post %d, generic %d, generic flag %v)", postCount, genCount, m.generic)
	}
	m.postCount, m.genCount = int(postCount), int(genCount)
	if m.post, err = v4Section(data, le.Uint64(data[v4HdrPostOff:]), postCount*v4PostRecLen, "postings"); err != nil {
		return nil, err
	}
	if m.genIdx, err = v4Section(data, le.Uint64(data[v4HdrGenIdxOff:]), (genCount+1)*8, "generic index"); err != nil {
		return nil, err
	}
	genDataLen := le.Uint64(data[v4HdrGenDataLen:])
	if m.genData, err = v4Section(data, le.Uint64(data[v4HdrGenDataOff:]), genDataLen, "generic data"); err != nil {
		return nil, err
	}
	if err := m.validateRecords(); err != nil {
		return nil, err
	}

	recCount := uint64(m.Len())
	if m.perm, err = v4Section(data, le.Uint64(data[v4HdrPermOff:]), recCount*4, "permutation"); err != nil {
		return nil, err
	}
	if err := m.validatePerm(); err != nil {
		return nil, err
	}
	return m, nil
}

// validateRecords checks the record section invariants: strictly
// ascending keys (what binary search needs), positive counts, symbol
// references within the table, and distances consistent with the
// header options — the same rules core.RestoreShard enforces on v3.
func (m *Mapped) validateRecords() error {
	if m.generic {
		le := binary.LittleEndian
		prevEnd := uint64(0)
		genDataLen := uint64(len(m.genData))
		var pa, pb []byte
		var pd core.Dist
		for i := 0; i < m.genCount; i++ {
			start, end := le.Uint64(m.genIdx[i*8:]), le.Uint64(m.genIdx[(i+1)*8:])
			if start != prevEnd || end < start || end > genDataLen || end-start < v4GenPreludeLen {
				return v4Corrupt("generic record #%d spans [%d, %d) in data of %d", i, start, end, genDataLen)
			}
			rec := m.genData[start:end]
			lenA, lenB := uint64(le.Uint32(rec)), uint64(le.Uint32(rec[4:]))
			if v4GenPreludeLen+lenA+lenB != end-start {
				return v4Corrupt("generic record #%d length mismatch (%d + %d + %d != %d)", i, v4GenPreludeLen, lenA, lenB, end-start)
			}
			d := core.Dist(int64(le.Uint64(rec[8:])))
			n := int64(le.Uint64(rec[16:]))
			a := rec[v4GenPreludeLen : v4GenPreludeLen+lenA]
			b := rec[v4GenPreludeLen+lenA:]
			if n < 1 {
				return v4Corrupt("generic record #%d has non-positive count %d", i, n)
			}
			if bytes.Compare(a, b) > 0 {
				return v4Corrupt("generic record #%d not canonical (A > B)", i)
			}
			if err := m.checkDist(d); err != nil {
				return fmt.Errorf("%w (generic record #%d)", err, i)
			}
			if i > 0 {
				if c := bytes.Compare(pa, a); c > 0 || c == 0 && (bytes.Compare(pb, b) > 0 || bytes.Equal(pb, b) && pd >= d) {
					return v4Corrupt("generic records not strictly sorted at #%d", i)
				}
			}
			pa, pb, pd = a, b, d
			prevEnd = end
		}
		if m.genCount >= 0 && prevEnd != genDataLen {
			return v4Corrupt("generic index does not span the generic data")
		}
		return nil
	}
	le := binary.LittleEndian
	var prev uint64
	for i := 0; i < m.postCount; i++ {
		key := le.Uint64(m.post[i*v4PostRecLen:])
		n := int64(le.Uint64(m.post[i*v4PostRecLen+8:]))
		if i > 0 && key <= prev {
			return v4Corrupt("postings not strictly sorted at #%d", i)
		}
		prev = key
		if n < 1 {
			return v4Corrupt("posting #%d has non-positive count %d", i, n)
		}
		ik := core.IKey(key)
		a, b := ik.Syms()
		if int(a) >= m.symCount || int(b) >= m.symCount {
			return v4Corrupt("posting #%d references symbol out of range (%d, %d of %d)", i, a, b, m.symCount)
		}
		if err := m.checkDist(ik.Dist()); err != nil {
			return fmt.Errorf("%w (posting #%d)", err, i)
		}
	}
	return nil
}

func (m *Mapped) checkDist(d core.Dist) error {
	if m.opts.IgnoreDist != d.IsWild() {
		return v4Corrupt("distance %s inconsistent with IgnoreDist=%v", d, m.opts.IgnoreDist)
	}
	if !d.IsWild() && d > m.opts.MaxDist {
		return v4Corrupt("distance %s beyond maxdist %s", d, m.opts.MaxDist)
	}
	return nil
}

// validatePerm checks the support-descending section is a true
// permutation of the records with non-increasing counts — what lets
// frequent listings early-exit at the minsup cutoff.
func (m *Mapped) validatePerm() error {
	n := m.Len()
	seen := make([]uint64, (n+63)/64)
	prev := int64(math.MaxInt64)
	for i := 0; i < n; i++ {
		rec := int(binary.LittleEndian.Uint32(m.perm[i*4:]))
		if rec >= n {
			return v4Corrupt("permutation entry #%d references record %d of %d", i, rec, n)
		}
		if seen[rec/64]&(1<<(rec%64)) != 0 {
			return v4Corrupt("permutation repeats record %d", rec)
		}
		seen[rec/64] |= 1 << (rec % 64)
		if s := m.SupportAt(rec); s > prev {
			return v4Corrupt("permutation support increases at #%d (%d after %d)", i, s, prev)
		} else {
			prev = s
		}
	}
	return nil
}

// OpenMapped memory-maps the v4 file at path read-only and validates it
// (header and payload checksums, every structural invariant). The
// returned Mapped serves queries directly from the page cache: nothing
// is decoded, resident memory stays at whatever the kernel pages in,
// and several processes serving the same file share one copy.
func OpenMapped(path string) (*Mapped, error) {
	if err := faults.Hit(faults.StoreMmap); err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < v4HeaderLen {
		return nil, fmt.Errorf("%w: v4 header truncated (%d bytes)", ErrBadMagic, st.Size())
	}
	if st.Size() > math.MaxInt {
		return nil, fmt.Errorf("store: mmap %s: file too large (%d bytes)", path, st.Size())
	}
	data, unmap, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	m, err := OpenMappedBytes(data)
	if err != nil {
		unmap()
		return nil, err
	}
	m.unmap = unmap
	return m, nil
}

// Close releases the mapping (a no-op for OpenMappedBytes views). No
// accessor may be used after Close.
func (m *Mapped) Close() error {
	if m.unmap == nil {
		return nil
	}
	unmap := m.unmap
	m.unmap = nil
	m.data, m.symIdx, m.symData, m.post, m.genIdx, m.genData, m.perm = nil, nil, nil, nil, nil, nil, nil
	return unmap()
}

// Options returns the mining options recorded in the header. Files
// compacted from v1/v2 indexes carry MinSup 1 and IgnoreDist false.
func (m *Mapped) Options() core.ForestOptions { return m.opts }

// Trees returns the number of trees the compacted source covered.
func (m *Mapped) Trees() int { return m.trees }

// Items returns the source's per-tree item total (0 for shard sources)
// — the Stats quantity, carried through compaction.
func (m *Mapped) Items() int64 { return m.items }

// Generic reports whether the file uses the string-keyed section
// (source mined past core.MaxPackedDist).
func (m *Mapped) Generic() bool { return m.generic }

// Len returns the number of support records.
func (m *Mapped) Len() int {
	if m.generic {
		return m.genCount
	}
	return m.postCount
}

// Size returns the file image size in bytes.
func (m *Mapped) Size() int { return len(m.data) }

// NumSymbols returns the label-table size.
func (m *Mapped) NumSymbols() int { return m.symCount }

// symbolBytes returns label i's bytes without copying.
func (m *Mapped) symbolBytes(i int) []byte {
	le := binary.LittleEndian
	return m.symData[le.Uint64(m.symIdx[i*8:]):le.Uint64(m.symIdx[(i+1)*8:])]
}

// Symbol returns label i (labels are sorted ascending; IDs are ranks).
func (m *Mapped) Symbol(i int) string { return string(m.symbolBytes(i)) }

// cmpBytesString is bytes.Compare against a string without converting
// either side — the allocation-free core of every lookup.
func cmpBytesString(b []byte, s string) int {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// LookupSymbol binary-searches the sorted label table. It allocates
// nothing.
func (m *Mapped) LookupSymbol(label string) (uint32, bool) {
	lo, hi := 0, m.symCount
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cmpBytesString(m.symbolBytes(mid), label) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m.symCount && cmpBytesString(m.symbolBytes(lo), label) == 0 {
		return uint32(lo), true
	}
	return 0, false
}

// postingAt decodes packed record i.
func (m *Mapped) postingAt(i int) (core.IKey, int64) {
	le := binary.LittleEndian
	return core.IKey(le.Uint64(m.post[i*v4PostRecLen:])), int64(le.Uint64(m.post[i*v4PostRecLen+8:]))
}

// genAt decodes generic record i into its byte views (no copies).
func (m *Mapped) genAt(i int) (a, b []byte, d core.Dist, n int64) {
	le := binary.LittleEndian
	rec := m.genData[le.Uint64(m.genIdx[i*8:]):le.Uint64(m.genIdx[(i+1)*8:])]
	lenA := uint64(le.Uint32(rec))
	d = core.Dist(int64(le.Uint64(rec[8:])))
	n = int64(le.Uint64(rec[16:]))
	a = rec[v4GenPreludeLen : v4GenPreludeLen+lenA]
	b = rec[v4GenPreludeLen+lenA:]
	return a, b, d, n
}

// Support returns the recorded count for the label pair at distance d
// (0 when absent), by binary search directly on the mapped bytes with
// zero allocation. It answers exactly what the file holds: callers own
// the capability rules (wildcard vs IgnoreDist, distances past
// MaxDist), as internal/serve.Backend does.
func (m *Mapped) Support(l1, l2 string, d core.Dist) int64 {
	if l2 < l1 {
		l1, l2 = l2, l1
	}
	if m.generic {
		lo, hi := 0, m.genCount
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			a, b, rd, _ := m.genAt(mid)
			c := cmpBytesString(a, l1)
			if c == 0 {
				c = cmpBytesString(b, l2)
			}
			if c == 0 {
				switch {
				case rd < d:
					c = -1
				case rd > d:
					c = 1
				}
			}
			if c < 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < m.genCount {
			if a, b, rd, n := m.genAt(lo); rd == d && cmpBytesString(a, l1) == 0 && cmpBytesString(b, l2) == 0 {
				return n
			}
		}
		return 0
	}
	ra, ok1 := m.LookupSymbol(l1)
	rb, ok2 := m.LookupSymbol(l2)
	if !ok1 || !ok2 {
		return 0
	}
	want := uint64(core.NewIKey(ra, rb, d))
	le := binary.LittleEndian
	lo, hi := 0, m.postCount
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if le.Uint64(m.post[mid*v4PostRecLen:]) < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m.postCount && le.Uint64(m.post[lo*v4PostRecLen:]) == want {
		return int64(le.Uint64(m.post[lo*v4PostRecLen+8:]))
	}
	return 0
}

// PermAt returns the record index at position i of the
// support-descending permutation.
func (m *Mapped) PermAt(i int) int {
	return int(binary.LittleEndian.Uint32(m.perm[i*4:]))
}

// SupportAt returns record rec's count.
func (m *Mapped) SupportAt(rec int) int64 {
	if m.generic {
		_, _, _, n := m.genAt(rec)
		return n
	}
	_, n := m.postingAt(rec)
	return n
}

// DistAt returns record rec's distance without materializing labels.
func (m *Mapped) DistAt(rec int) core.Dist {
	if m.generic {
		_, _, d, _ := m.genAt(rec)
		return d
	}
	k, _ := m.postingAt(rec)
	return k.Dist()
}

// PairAt materializes record rec as a public FrequentPair (this is the
// one accessor that allocates — the label strings of the returned key).
func (m *Mapped) PairAt(rec int) core.FrequentPair {
	if m.generic {
		a, b, d, n := m.genAt(rec)
		return core.FrequentPair{Key: core.Key{A: string(a), B: string(b), D: d}, Support: int(n)}
	}
	k, n := m.postingAt(rec)
	a, b := k.Syms()
	return core.FrequentPair{
		Key:     core.Key{A: m.Symbol(int(a)), B: m.Symbol(int(b)), D: k.Dist()},
		Support: int(n),
	}
}

// Frequent renders the pairs with support ≥ minsup in Finalize(1)
// order by walking the permutation — the convenience form for CLIs;
// the serve backend walks the permutation itself to honor limits and
// request deadlines.
func (m *Mapped) Frequent(minsup int) []core.FrequentPair {
	var out []core.FrequentPair
	for i, n := 0, m.Len(); i < n; i++ {
		rec := m.PermAt(i)
		if m.SupportAt(rec) < int64(minsup) {
			break
		}
		out = append(out, m.PairAt(rec))
	}
	return out
}
