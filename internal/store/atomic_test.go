package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"treemine/internal/core"
	"treemine/internal/faults"
)

// shardWithTrees builds a shard over n random trees for checkpoint
// round-trips, reusing the shard_test fixtures.
func shardWithTrees(t *testing.T, seed int64, n int) *core.SupportShard {
	t.Helper()
	return mineShard(shardForest(seed, n, 30), core.DefaultForestOptions())
}

func saveShardTo(t *testing.T, path string, sh *core.SupportShard) error {
	t.Helper()
	return AtomicWrite(path, func(w io.Writer) error { return SaveShard(w, sh) })
}

func loadShardFrom(t *testing.T, path string) (*core.SupportShard, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadShard(f)
}

func TestAtomicWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	sh := shardWithTrees(t, 1, 12)
	if err := saveShardTo(t, path, sh); err != nil {
		t.Fatal(err)
	}
	got, err := loadShardFrom(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trees() != sh.Trees() || got.Len() != sh.Len() {
		t.Fatalf("round-trip shard: trees %d/%d, entries %d/%d",
			got.Trees(), sh.Trees(), got.Len(), sh.Len())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after successful write: %v", err)
	}
}

// TestAtomicWriteCrashBeforeRenameKeepsOldCheckpoint simulates a kill in
// the window between the durable temp write and the rename, and proves
// the previous checkpoint stays valid and loadable — the acceptance
// criterion for checkpoint durability.
func TestAtomicWriteCrashBeforeRenameKeepsOldCheckpoint(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	path := filepath.Join(t.TempDir(), "ck")
	old := shardWithTrees(t, 2, 10)
	if err := saveShardTo(t, path, old); err != nil {
		t.Fatal(err)
	}

	faults.Enable(faults.AtomicCrash, faults.Spec{Mode: faults.ModeError, Count: 1})
	next := shardWithTrees(t, 3, 25)
	err := saveShardTo(t, path, next)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("crash-window write error = %v, want injected", err)
	}
	// The temp file from the aborted write is allowed to linger; the
	// checkpoint itself must still be the old, fully valid one.
	got, lerr := loadShardFrom(t, path)
	if lerr != nil {
		t.Fatalf("previous checkpoint corrupted by crash window: %v", lerr)
	}
	if got.Trees() != old.Trees() {
		t.Fatalf("previous checkpoint trees = %d, want %d", got.Trees(), old.Trees())
	}

	// After the "reboot" (failpoint disarmed) the write goes through and
	// replaces the checkpoint.
	if err := saveShardTo(t, path, next); err != nil {
		t.Fatal(err)
	}
	got, lerr = loadShardFrom(t, path)
	if lerr != nil || got.Trees() != next.Trees() {
		t.Fatalf("post-recovery checkpoint: %v, trees %d want %d", lerr, got.Trees(), next.Trees())
	}
}

// TestAtomicWriteTornTmpKeepsOldCheckpoint tears the temp file mid-flush
// (a crash during writeback): the destination must stay valid, and the
// torn temp file must never be picked up as a checkpoint.
func TestAtomicWriteTornTmpKeepsOldCheckpoint(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	path := filepath.Join(t.TempDir(), "ck")
	old := shardWithTrees(t, 4, 10)
	if err := saveShardTo(t, path, old); err != nil {
		t.Fatal(err)
	}

	faults.Enable(faults.AtomicTorn, faults.Spec{Mode: faults.ModeError, Count: 1})
	err := saveShardTo(t, path, shardWithTrees(t, 5, 30))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn write error = %v, want injected", err)
	}
	if got, lerr := loadShardFrom(t, path); lerr != nil || got.Trees() != old.Trees() {
		t.Fatalf("previous checkpoint corrupted by torn write: %v", lerr)
	}
	// The torn temp file is half a gob stream — loading it must error,
	// not yield a bogus shard.
	if fi, err := os.Stat(path + ".tmp"); err != nil || fi.Size() == 0 {
		t.Fatalf("expected a torn temp file: %v", err)
	}
	if _, err := loadShardFrom(t, path+".tmp"); err == nil {
		t.Fatal("torn temp file loaded as a valid checkpoint")
	}
}

func TestAtomicWriteSyncFailureCleansUp(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	path := filepath.Join(t.TempDir(), "ck")
	faults.Enable(faults.AtomicSync, faults.Spec{Mode: faults.ModeError, Count: 1})
	err := saveShardTo(t, path, shardWithTrees(t, 6, 5))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("sync failure error = %v, want injected", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file not cleaned up after sync failure")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("destination created despite sync failure")
	}
}

func TestAtomicWritePayloadErrorCleansUp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	boom := errors.New("encode exploded")
	if err := AtomicWrite(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("payload error = %v, want %v", err, boom)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file not cleaned up after payload error")
	}
}
