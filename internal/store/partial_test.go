package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// foldFixtureTrees plans a forest into parts ranges under dir and
// mines a valid shard for every partition, returning the manifest and
// forest.
func foldFixtureTrees(t *testing.T, dir string, nTrees, parts int) (*Manifest, []*tree.Tree) {
	t.Helper()
	opts := core.DefaultForestOptions()
	forest := shardForest(31, nTrees, 30)
	m, err := NewManifest(absInputs(t, "a.nwk"), nTrees, parts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(filepath.Join(dir, "plan.json")); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Partitions {
		sh := mineShard(forest[p.Skip:p.Skip+p.Trees], opts)
		if err := AtomicWrite(m.ShardPath(p.Index), func(w io.Writer) error {
			return SaveShard(w, sh)
		}); err != nil {
			t.Fatal(err)
		}
	}
	return m, forest
}

// TestFoldManifestShardsComplete: with every shard valid, the fold
// reports full coverage and the master matches a direct mine.
func TestFoldManifestShardsComplete(t *testing.T) {
	dir := t.TempDir()
	m, forest := foldFixtureTrees(t, dir, 12, 3)
	opts := m.Options.ForestOptions()

	master := core.NewSupportShard(opts)
	rep, err := FoldManifestShards(master, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() || rep.TreesMerged != 12 || !reflect.DeepEqual(rep.Merged, []int{0, 1, 2}) {
		t.Fatalf("report = %+v, want complete 12-tree fold", rep)
	}
	want := mineShard(forest, opts)
	if !bytes.Equal(shardBytes(t, master), shardBytes(t, want)) {
		t.Fatal("complete fold differs from a direct mine")
	}
}

// TestFoldManifestShardsStopsAtFirstInvalid: without keepGoing, the
// first bad partition aborts the fold with a typed *PartitionError.
func TestFoldManifestShardsStopsAtFirstInvalid(t *testing.T) {
	dir := t.TempDir()
	m, _ := foldFixtureTrees(t, dir, 12, 3)
	if err := os.Remove(m.ShardPath(1)); err != nil {
		t.Fatal(err)
	}

	master := core.NewSupportShard(m.Options.ForestOptions())
	rep, err := FoldManifestShards(master, m, false)
	var pe *PartitionError
	if !errors.As(err, &pe) || pe.Index != 1 || pe.TreesGot != -1 || pe.Err == nil {
		t.Fatalf("err = %v, want *PartitionError for partition 1", err)
	}
	if !reflect.DeepEqual(rep.Merged, []int{0}) || len(rep.Failed) != 1 {
		t.Fatalf("report = %+v, want partition 0 merged then stop", rep)
	}
}

// TestFoldManifestShardsPartial: with keepGoing, invalid partitions —
// one missing, one torn, one with a wrong tree tally — are excluded
// (never folded, so the master stays exact over the valid ranges) and
// the report carries exact coverage.
func TestFoldManifestShardsPartial(t *testing.T) {
	dir := t.TempDir()
	m, forest := foldFixtureTrees(t, dir, 20, 5)
	opts := m.Options.ForestOptions()

	// Partition 1: missing. Partition 2: torn. Partition 3: valid shard
	// covering the wrong number of trees.
	if err := os.Remove(m.ShardPath(1)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(m.ShardPath(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(m.ShardPath(2), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	p3 := m.Partitions[3]
	wrong := mineShard(forest[p3.Skip:p3.Skip+p3.Trees-1], opts)
	if err := AtomicWrite(m.ShardPath(3), func(w io.Writer) error {
		return SaveShard(w, wrong)
	}); err != nil {
		t.Fatal(err)
	}

	master := core.NewSupportShard(opts)
	rep, err := FoldManifestShards(master, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete() {
		t.Fatal("report claims completeness with three bad partitions")
	}
	if !reflect.DeepEqual(rep.Merged, []int{0, 4}) {
		t.Fatalf("merged = %v, want [0 4]", rep.Merged)
	}
	if rep.TreesMerged != 8 || rep.TreesTotal != 20 {
		t.Fatalf("coverage = %d/%d, want 8/20", rep.TreesMerged, rep.TreesTotal)
	}
	gotIdx := []int{}
	for _, pe := range rep.Failed {
		gotIdx = append(gotIdx, pe.Index)
	}
	if !reflect.DeepEqual(gotIdx, []int{1, 2, 3}) {
		t.Fatalf("failed partitions = %v, want [1 2 3]", gotIdx)
	}
	if pe := rep.Failed[2]; pe.TreesGot != p3.Trees-1 || pe.TreesWant != p3.Trees || pe.Err != nil {
		t.Fatalf("tally-mismatch error = %+v", pe)
	}

	// The partial master is exactly the mine of the two valid ranges.
	want := core.NewSupportShard(opts)
	for _, i := range []int{0, 4} {
		p := m.Partitions[i]
		if err := want.Merge(mineShard(forest[p.Skip:p.Skip+p.Trees], opts)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(shardBytes(t, master), shardBytes(t, want)) {
		t.Fatal("partial master differs from a direct mine of the valid ranges")
	}
}

// TestVerifyShardFile: valid v3 and spilled shards verify with their
// tree tallies; missing files, torn files, and mismatched options are
// rejected without touching any master.
func TestVerifyShardFile(t *testing.T) {
	opts := core.DefaultForestOptions()
	forest := shardForest(32, 10, 30)
	dir := t.TempDir()

	v3 := filepath.Join(dir, "v3.shard")
	if err := AtomicWrite(v3, func(w io.Writer) error {
		return SaveShard(w, mineShard(forest, opts))
	}); err != nil {
		t.Fatal(err)
	}
	spilled, segs := spillMine(t, forest, opts, 8, t.TempDir())
	if segs == 0 {
		t.Fatal("spill fixture never spilled")
	}

	for _, path := range []string{v3, spilled} {
		trees, err := VerifyShardFile(path, opts)
		if err != nil || trees != len(forest) {
			t.Fatalf("VerifyShardFile(%s) = %d, %v; want %d, nil", path, trees, err, len(forest))
		}
		other := opts
		other.MinSup++
		if _, err := VerifyShardFile(path, other); err == nil {
			t.Fatalf("VerifyShardFile(%s) accepted mismatched options", path)
		}
	}
	if _, err := VerifyShardFile(filepath.Join(dir, "absent.shard"), opts); err == nil {
		t.Fatal("missing shard verified")
	}
	data, err := os.ReadFile(v3)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.shard")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyShardFile(torn, opts); err == nil {
		t.Fatal("torn shard verified")
	}
}
