// Package store persists mined cousin-pair item sets so a phylogeny
// database can be mined once and queried many times — the natural
// database-systems complement to the paper's algorithms (mining 1,500
// TreeBASE phylogenies takes sub-second here, but the paper's original
// K implementation took minutes, and either way re-mining on every
// support query is waste). An Index holds each tree's item set plus the
// aggregate support table, serializes with encoding/gob behind a
// versioned magic header, and answers support/frequent/containment
// queries without touching the source trees.
package store

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// Magic strings identifying index files; the trailing digit is the
// format version. Version 2 stores one file-global symbol table and
// integer-coded items (labels appear once in the file no matter how many
// items share them); version 1 stored string-keyed item maps. Save
// writes v2; Load reads both.
const (
	magicV1 = "TREEMINEIDX1"
	magicV2 = "TREEMINEIDX2"
)

// Errors reported by Load.
var (
	// ErrBadMagic is returned when the input is not an index file or is
	// a different format version.
	ErrBadMagic = errors.New("store: not a treemine index (bad magic)")
	// ErrCorrupt is returned when the payload fails to decode.
	ErrCorrupt = errors.New("store: corrupt index")
)

// TreeEntry is the persisted mining result of one tree.
type TreeEntry struct {
	Name  string
	Nodes int
	Items core.ItemSet
}

// Index is a queryable collection of per-tree item sets. Build one with
// Build, persist with Save, and reload with Load. Once built or loaded,
// an Index is safe for concurrent queries.
type Index struct {
	// Options are the mining parameters the index was built with;
	// queries are only meaningful at these parameters.
	Options core.Options
	Entries []TreeEntry

	supportOnce sync.Once
	support     map[core.Key]int // lazily built aggregate

	setsOnce sync.Once
	sets     []core.ItemSet // per-entry item sets, for SupportOf probes
}

// Build mines every tree and assembles the index. names may be nil (trees
// are then named by position) or must match trees in length.
func Build(trees []*tree.Tree, names []string, opts core.Options) (*Index, error) {
	if names != nil && len(names) != len(trees) {
		return nil, fmt.Errorf("store: %d names for %d trees", len(names), len(trees))
	}
	ix := &Index{Options: opts}
	for i, t := range trees {
		name := fmt.Sprintf("tree_%d", i+1)
		if names != nil {
			name = names[i]
		}
		ix.Entries = append(ix.Entries, TreeEntry{
			Name:  name,
			Nodes: t.Size(),
			Items: core.Mine(t, opts),
		})
	}
	return ix, nil
}

// NumTrees returns the number of indexed trees.
func (ix *Index) NumTrees() int { return len(ix.Entries) }

// supportTable builds (once, concurrency-safe) the aggregate tree-count
// per key.
func (ix *Index) supportTable() map[core.Key]int {
	ix.supportOnce.Do(func() {
		ix.support = make(map[core.Key]int)
		for _, e := range ix.Entries {
			for k := range e.Items {
				ix.support[k]++
			}
		}
	})
	return ix.support
}

// ItemSets returns the per-tree item sets in index order (built once,
// concurrency-safe). Pass the result to core.SupportOf to probe many
// pairs without re-walking the entries.
func (ix *Index) ItemSets() []core.ItemSet {
	ix.setsOnce.Do(func() {
		ix.sets = make([]core.ItemSet, len(ix.Entries))
		for i, e := range ix.Entries {
			ix.sets[i] = e.Items
		}
	})
	return ix.sets
}

// Support returns the number of indexed trees containing the label pair
// at distance d; DistWild counts trees containing the pair at any
// distance.
func (ix *Index) Support(l1, l2 string, d core.Dist) int {
	if !d.IsWild() {
		return ix.supportTable()[core.NewKey(l1, l2, d)]
	}
	return core.SupportOf(ix.ItemSets(), l1, l2, d)
}

// Frequent returns the pairs with support ≥ minSup, sorted like
// core.MineForest's output.
func (ix *Index) Frequent(minSup int) []core.FrequentPair {
	var out []core.FrequentPair
	for k, s := range ix.supportTable() {
		if s >= minSup {
			out = append(out, core.FrequentPair{Key: k, Support: s})
		}
	}
	core.SortFrequentPairs(out)
	return out
}

// TreesWith returns the indices of the trees containing the key, in
// index order.
func (ix *Index) TreesWith(k core.Key) []int {
	var out []int
	for i, e := range ix.Entries {
		if _, ok := e.Items[k]; ok {
			out = append(out, i)
		}
	}
	return out
}

// savedIndexV1 is the version-1 gob payload: per-tree string-keyed item
// maps. Kept for backward-compatible reads (and to author fixtures in
// tests); Save no longer writes it.
type savedIndexV1 struct {
	Options core.Options
	Entries []TreeEntry
}

// savedItem is one cousin pair item coded against the file's symbol
// table: two symbol IDs (order irrelevant; keys re-canonicalize on
// load), a distance, and the occurrence count.
type savedItem struct {
	A, B uint32
	D    core.Dist
	N    int
}

// savedTreeV2 is one tree's mining result in the version-2 payload.
type savedTreeV2 struct {
	Name  string
	Nodes int
	Items []savedItem
}

// savedIndexV2 is the version-2 gob payload: one symbol table for the
// whole file (Labels[id] is the label of symbol id) and integer-coded
// items, so each label is stored once no matter how many trees and items
// share it.
type savedIndexV2 struct {
	Options core.Options
	Labels  []string
	Trees   []savedTreeV2
}

// Save writes the index: magic header, then a gob stream of the
// version-2 interned payload.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV2); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	syms := core.NewSymbols()
	saved := savedIndexV2{Options: ix.Options, Trees: make([]savedTreeV2, len(ix.Entries))}
	for i, e := range ix.Entries {
		st := savedTreeV2{Name: e.Name, Nodes: e.Nodes, Items: make([]savedItem, 0, len(e.Items))}
		for k, n := range e.Items {
			st.Items = append(st.Items, savedItem{
				A: syms.Intern(k.A),
				B: syms.Intern(k.B),
				D: k.D,
				N: n,
			})
		}
		saved.Trees[i] = st
	}
	saved.Labels = make([]string, syms.Len())
	for id := range saved.Labels {
		saved.Labels[id] = syms.Label(uint32(id))
	}
	if err := gob.NewEncoder(bw).Encode(saved); err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads an index written by Save, accepting both the current
// version-2 format and the original version-1 format.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	switch string(head) {
	case magicV2:
		var saved savedIndexV2
		if err := gob.NewDecoder(br).Decode(&saved); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		ix := &Index{Options: saved.Options, Entries: make([]TreeEntry, len(saved.Trees))}
		for i, st := range saved.Trees {
			items := make(core.ItemSet, len(st.Items))
			for _, it := range st.Items {
				if int(it.A) >= len(saved.Labels) || int(it.B) >= len(saved.Labels) {
					return nil, fmt.Errorf("%w: symbol id out of range", ErrCorrupt)
				}
				items[core.NewKey(saved.Labels[it.A], saved.Labels[it.B], it.D)] = it.N
			}
			ix.Entries[i] = TreeEntry{Name: st.Name, Nodes: st.Nodes, Items: items}
		}
		return ix, nil
	case magicV1:
		var saved savedIndexV1
		if err := gob.NewDecoder(br).Decode(&saved); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		return &Index{Options: saved.Options, Entries: saved.Entries}, nil
	default:
		return nil, ErrBadMagic
	}
}
