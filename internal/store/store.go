// Package store persists mined cousin-pair item sets so a phylogeny
// database can be mined once and queried many times — the natural
// database-systems complement to the paper's algorithms (mining 1,500
// TreeBASE phylogenies takes sub-second here, but the paper's original
// K implementation took minutes, and either way re-mining on every
// support query is waste). An Index holds each tree's item set plus the
// aggregate support table, serializes with encoding/gob behind a
// versioned magic header, and answers support/frequent/containment
// queries without touching the source trees.
package store

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"treemine/internal/core"
	"treemine/internal/tree"
)

// magic identifies index files; the trailing digit is the format
// version.
const magic = "TREEMINEIDX1"

// Errors reported by Load.
var (
	// ErrBadMagic is returned when the input is not an index file or is
	// a different format version.
	ErrBadMagic = errors.New("store: not a treemine index (bad magic)")
	// ErrCorrupt is returned when the payload fails to decode.
	ErrCorrupt = errors.New("store: corrupt index")
)

// TreeEntry is the persisted mining result of one tree.
type TreeEntry struct {
	Name  string
	Nodes int
	Items core.ItemSet
}

// Index is a queryable collection of per-tree item sets. Build one with
// Build, persist with Save, and reload with Load. Once built or loaded,
// an Index is safe for concurrent queries.
type Index struct {
	// Options are the mining parameters the index was built with;
	// queries are only meaningful at these parameters.
	Options core.Options
	Entries []TreeEntry

	supportOnce sync.Once
	support     map[core.Key]int // lazily built aggregate
}

// Build mines every tree and assembles the index. names may be nil (trees
// are then named by position) or must match trees in length.
func Build(trees []*tree.Tree, names []string, opts core.Options) (*Index, error) {
	if names != nil && len(names) != len(trees) {
		return nil, fmt.Errorf("store: %d names for %d trees", len(names), len(trees))
	}
	ix := &Index{Options: opts}
	for i, t := range trees {
		name := fmt.Sprintf("tree_%d", i+1)
		if names != nil {
			name = names[i]
		}
		ix.Entries = append(ix.Entries, TreeEntry{
			Name:  name,
			Nodes: t.Size(),
			Items: core.Mine(t, opts),
		})
	}
	return ix, nil
}

// NumTrees returns the number of indexed trees.
func (ix *Index) NumTrees() int { return len(ix.Entries) }

// supportTable builds (once, concurrency-safe) the aggregate tree-count
// per key.
func (ix *Index) supportTable() map[core.Key]int {
	ix.supportOnce.Do(func() {
		ix.support = make(map[core.Key]int)
		for _, e := range ix.Entries {
			for k := range e.Items {
				ix.support[k]++
			}
		}
	})
	return ix.support
}

// Support returns the number of indexed trees containing the label pair
// at distance d; DistWild counts trees containing the pair at any
// distance.
func (ix *Index) Support(l1, l2 string, d core.Dist) int {
	if !d.IsWild() {
		return ix.supportTable()[core.NewKey(l1, l2, d)]
	}
	n := 0
	for _, e := range ix.Entries {
		if _, ok := e.Items.IgnoreDist()[core.NewKey(l1, l2, core.DistWild)]; ok {
			n++
		}
	}
	return n
}

// Frequent returns the pairs with support ≥ minSup, sorted like
// core.MineForest's output.
func (ix *Index) Frequent(minSup int) []core.FrequentPair {
	var out []core.FrequentPair
	for k, s := range ix.supportTable() {
		if s >= minSup {
			out = append(out, core.FrequentPair{Key: k, Support: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		a, b := out[i].Key, out[j].Key
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.D < b.D
	})
	return out
}

// TreesWith returns the indices of the trees containing the key, in
// index order.
func (ix *Index) TreesWith(k core.Key) []int {
	var out []int
	for i, e := range ix.Entries {
		if _, ok := e.Items[k]; ok {
			out = append(out, i)
		}
	}
	return out
}

// savedIndex is the gob payload; the transient support table stays out.
type savedIndex struct {
	Options core.Options
	Entries []TreeEntry
}

// Save writes the index: magic header, then a gob stream.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	if err := gob.NewEncoder(bw).Encode(savedIndex{Options: ix.Options, Entries: ix.Entries}); err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	return bw.Flush()
}

// Load reads an index written by Save.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	var saved savedIndex
	if err := gob.NewDecoder(br).Decode(&saved); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &Index{Options: saved.Options, Entries: saved.Entries}, nil
}
