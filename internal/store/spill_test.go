package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"treemine/internal/core"
	"treemine/internal/faults"
	"treemine/internal/tree"
)

// spillMine runs the streaming miner over forest with an out-of-core
// accumulator budgeted at maxEntries resident pairs, finishing to a
// shard file in dir, and returns that path plus the segment count
// written before Finish.
func spillMine(t *testing.T, forest []*tree.Tree, opts core.ForestOptions, maxEntries int, dir string) (string, int) {
	t.Helper()
	sh := core.NewSupportShard(opts)
	acc, err := NewSpillAccumulator(sh, maxEntries, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.MineForestStreamShard(core.NewSliceIterator(forest), opts, core.StreamConfig{
		Resume:     sh,
		BatchSize:  2,
		AfterRound: acc.AfterRound,
	}); err != nil {
		t.Fatal(err)
	}
	segs := acc.Segments()
	out := filepath.Join(dir, "worker.shard")
	if err := acc.Finish(out); err != nil {
		t.Fatal(err)
	}
	return out, segs
}

// shardBytes is the canonical v3 serialization — the byte-identity
// yardstick for every distributed path.
func shardBytes(t *testing.T, sh *core.SupportShard) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveShard(&buf, sh); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSpillRoundTrip: a run squeezed through a tiny resident budget —
// forcing many spill segments — folds back into a master whose v3
// bytes are identical to a fully-resident mine of the same forest.
func TestSpillRoundTrip(t *testing.T) {
	forest := shardForest(11, 20, 40)
	opts := core.DefaultForestOptions()
	dir := t.TempDir()

	path, segs := spillMine(t, forest, opts, 8, dir)
	if segs == 0 {
		t.Fatal("budget of 8 entries never spilled — test exercises nothing")
	}

	master := core.NewSupportShard(opts)
	trees, err := FoldShardFile(master, path)
	if err != nil {
		t.Fatal(err)
	}
	if trees != len(forest) {
		t.Fatalf("folded %d trees, mined %d", trees, len(forest))
	}

	want := mineShard(forest, opts)
	if got, exp := shardBytes(t, master), shardBytes(t, want); !bytes.Equal(got, exp) {
		t.Fatal("spilled run folds to different bytes than a resident mine")
	}
	if got, exp := master.Finalize(opts.MinSup), want.Finalize(opts.MinSup); !reflect.DeepEqual(got, exp) {
		t.Fatal("spilled run finalizes differently than a resident mine")
	}
}

// TestSpillNoSegmentsWritesPlainShard: a budget the run never exceeds
// produces a plain v3 checkpoint, loadable by LoadShard directly.
func TestSpillNoSegmentsWritesPlainShard(t *testing.T) {
	forest := shardForest(12, 6, 25)
	opts := core.DefaultForestOptions()
	dir := t.TempDir()

	path, segs := spillMine(t, forest, opts, 1<<20, dir)
	if segs != 0 {
		t.Fatalf("huge budget spilled %d segments", segs)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sh, err := LoadShard(f)
	if err != nil {
		t.Fatalf("unspilled Finish output is not a v3 shard: %v", err)
	}
	want := mineShard(forest, opts)
	if !bytes.Equal(shardBytes(t, sh), shardBytes(t, want)) {
		t.Fatal("unspilled Finish output differs from a direct mine")
	}
}

// TestSpilledShardReader: the streaming reader yields the merged
// records sorted by (A, B, D) with no duplicate keys, and the header
// carries options, trees, and labels.
func TestSpilledShardReader(t *testing.T) {
	forest := shardForest(13, 15, 35)
	opts := core.DefaultForestOptions()
	path, segs := spillMine(t, forest, opts, 8, t.TempDir())
	if segs == 0 {
		t.Fatal("run never spilled")
	}

	r, err := OpenSpilledShard(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Opts != opts {
		t.Fatalf("header options %+v, want %+v", r.Opts, opts)
	}
	if r.Trees != len(forest) {
		t.Fatalf("header trees %d, want %d", r.Trees, len(forest))
	}
	if len(r.Labels) == 0 {
		t.Fatal("header has no labels")
	}
	var prev core.ShardItem
	first := true
	n := 0
	for {
		it, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !first && !spillItemLess(prev, it) {
			t.Fatalf("records out of order or duplicated: %+v then %+v", prev, it)
		}
		if err := validateSpillItem(it, r.Opts, len(r.Labels)); err != nil {
			t.Fatalf("record %d: %v", n, err)
		}
		prev, first = it, false
		n++
	}
	if n == 0 {
		t.Fatal("spilled shard has no records")
	}
}

// TestMergeRuns: the k-way merge sums equal keys across runs and emits
// strictly increasing keys.
func TestMergeRuns(t *testing.T) {
	mk := func(items ...core.ShardItem) func() (core.ShardItem, error) {
		i := 0
		return func() (core.ShardItem, error) {
			if i >= len(items) {
				return core.ShardItem{}, io.EOF
			}
			it := items[i]
			i++
			return it, nil
		}
	}
	item := func(a, b uint32, d core.Dist, n int64) core.ShardItem {
		return core.ShardItem{A: a, B: b, D: d, N: n}
	}
	runs := []func() (core.ShardItem, error){
		mk(item(0, 1, 2, 5), item(0, 2, 1, 1), item(3, 3, 0, 7)),
		mk(item(0, 1, 2, 3), item(3, 3, 0, 1)),
		mk(item(0, 1, 1, 2), item(0, 1, 2, 10), item(9, 9, 4, 1)),
		mk(), // empty run
	}
	var got []core.ShardItem
	if err := mergeRuns(runs, func(it core.ShardItem) error {
		got = append(got, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []core.ShardItem{
		item(0, 1, 1, 2),
		item(0, 1, 2, 18),
		item(0, 2, 1, 1),
		item(3, 3, 0, 8),
		item(9, 9, 4, 1),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge produced %+v, want %+v", got, want)
	}
}

// TestFoldShardFileTorn: corrupting any region of a spilled shard —
// flipped record bytes, a truncated tail, garbage past the checksum —
// is detected before a single record reaches the master.
func TestFoldShardFileTorn(t *testing.T) {
	forest := shardForest(14, 15, 35)
	opts := core.DefaultForestOptions()
	path, _ := spillMine(t, forest, opts, 8, t.TempDir())
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{
		"flipped record": append([]byte{}, orig...),
		"truncated":      orig[:len(orig)-9],
		"trailing junk":  append(append([]byte{}, orig...), 0xFF),
	}
	corrupt["flipped record"][len(orig)-20] ^= 0x40

	for name, data := range corrupt {
		t.Run(name, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.shard")
			if err := os.WriteFile(bad, data, 0o644); err != nil {
				t.Fatal(err)
			}
			master := core.NewSupportShard(opts)
			if _, err := FoldShardFile(master, bad); err == nil {
				t.Fatal("fold accepted a corrupted spilled shard")
			}
			if master.Len() != 0 || master.Trees() != 0 {
				t.Fatal("corrupted fold tainted the master")
			}
		})
	}
}

// TestFoldShardFileOptionsMismatch: a spilled shard mined under
// different options is refused.
func TestFoldShardFileOptionsMismatch(t *testing.T) {
	forest := shardForest(15, 10, 30)
	opts := core.DefaultForestOptions()
	path, _ := spillMine(t, forest, opts, 8, t.TempDir())

	other := opts
	other.MinOccur = 2
	master := core.NewSupportShard(other)
	if _, err := FoldShardFile(master, path); err == nil {
		t.Fatal("fold accepted a shard mined under different options")
	}
}

// TestFoldShardFileV3: the fold path sniffs and merges plain v3
// checkpoints too — the unspilled worker case.
func TestFoldShardFileV3(t *testing.T) {
	forest := shardForest(16, 10, 30)
	opts := core.DefaultForestOptions()
	sh := mineShard(forest, opts)
	path := filepath.Join(t.TempDir(), "plain.shard")
	if err := AtomicWrite(path, func(w io.Writer) error { return SaveShard(w, sh) }); err != nil {
		t.Fatal(err)
	}
	master := core.NewSupportShard(opts)
	trees, err := FoldShardFile(master, path)
	if err != nil {
		t.Fatal(err)
	}
	if trees != len(forest) {
		t.Fatalf("fold reported %d trees, want %d", trees, len(forest))
	}
	if !bytes.Equal(shardBytes(t, master), shardBytes(t, sh)) {
		t.Fatal("v3 fold differs from the source shard")
	}
}

// TestSpillWriteFailpoint: an armed spill-write failpoint aborts the
// run with the injected error — the disk-failure path a worker must
// surface rather than half-write.
func TestSpillWriteFailpoint(t *testing.T) {
	defer faults.Reset()
	faults.Enable(faults.SpillWrite, faults.Spec{Mode: faults.ModeError})

	forest := shardForest(17, 15, 35)
	opts := core.DefaultForestOptions()
	sh := core.NewSupportShard(opts)
	acc, err := NewSpillAccumulator(sh, 8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.MineForestStreamShard(core.NewSliceIterator(forest), opts, core.StreamConfig{
		Resume:     sh,
		BatchSize:  2,
		AfterRound: acc.AfterRound,
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("stream error = %v, want injected spill failure", err)
	}
}

// TestNewSpillAccumulatorRejects: generic-keyed shards and nonsense
// budgets are refused up front.
func TestNewSpillAccumulatorRejects(t *testing.T) {
	generic := core.ForestOptions{
		Options: core.Options{MaxDist: core.MaxPackedDist + 2, MinOccur: 1},
		MinSup:  2,
	}
	if _, err := NewSpillAccumulator(core.NewSupportShard(generic), 10, t.TempDir()); err == nil {
		t.Fatal("accepted a generic-mode shard")
	}
	if _, err := NewSpillAccumulator(core.NewSupportShard(core.DefaultForestOptions()), 0, t.TempDir()); err == nil {
		t.Fatal("accepted a zero budget")
	}
}
