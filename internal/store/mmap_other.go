//go:build !unix

package store

import (
	"io"
	"os"
)

// mmapFile on platforms without a memory-mapping syscall wrapper falls
// back to reading the whole file into memory. Queries behave
// identically; only the page-cache sharing and lazy paging are lost.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
