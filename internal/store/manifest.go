package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"treemine/internal/core"
)

// Partition manifests (DESIGN.md §51) are the coordinator/worker
// protocol of distributed mining. The planner splits a corpus into
// contiguous tree ranges, writes one manifest naming every range and
// the shard file its worker must produce, and exits. Workers and the
// merger are then driven entirely by the manifest: a worker looks up
// its partition's (skip, trees) range and mines it to the named shard;
// the merger folds every partition's shard into the master, verifying
// per-partition provenance (the shard exists, loads, and covers
// exactly the trees the plan assigned) so a missing or torn worker
// output names the one range that must be re-mined.
//
// The format is JSON — it is the one artifact of the pipeline meant to
// be read, diffed, and hand-edited by operators — with a format tag and
// version for forward compatibility, written through AtomicWrite like
// every other checkpoint.

// ManifestFormat tags a partition-manifest file.
const ManifestFormat = "treemine-partition-manifest"

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ManifestOptions is the JSON image of core.ForestOptions. MaxDist is
// kept in half-edge units (the Dist representation) so the manifest
// round-trips exactly.
type ManifestOptions struct {
	// MaxDistHalves is core.Dist's integer representation: twice the
	// paper's maxdist (3 ⇒ 1.5).
	MaxDistHalves int  `json:"maxdist_halves"`
	MinOccur      int  `json:"minoccur"`
	MinSup        int  `json:"minsup"`
	IgnoreDist    bool `json:"ignoredist"`
}

// ForestOptions converts back to the mining options.
func (o ManifestOptions) ForestOptions() core.ForestOptions {
	return core.ForestOptions{
		Options: core.Options{MaxDist: core.Dist(o.MaxDistHalves), MinOccur: o.MinOccur},
		MinSup:  o.MinSup,
		// IgnoreDist rides on ForestOptions, not Options.
		IgnoreDist: o.IgnoreDist,
	}
}

// manifestOptions converts mining options to their JSON image.
func manifestOptions(opts core.ForestOptions) ManifestOptions {
	return ManifestOptions{
		MaxDistHalves: int(opts.MaxDist),
		MinOccur:      opts.MinOccur,
		MinSup:        opts.MinSup,
		IgnoreDist:    opts.IgnoreDist,
	}
}

// Partition is one contiguous tree range and the worker shard that
// covers it.
type Partition struct {
	// Index is the partition's position in the plan, 0-based.
	Index int `json:"index"`
	// Skip is the number of corpus trees before the range.
	Skip int `json:"skip"`
	// Trees is the number of trees in the range.
	Trees int `json:"trees"`
	// Shard is the worker's output file, relative to the manifest's
	// directory.
	Shard string `json:"shard"`
}

// Manifest is a distributed mining plan: the corpus, the mining
// options, and the partition table. Inputs are absolute paths (workers
// may run from any directory); shard names are relative to the
// manifest's directory (the whole work directory can be moved or
// archived as a unit).
type Manifest struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Options are the mining options every worker must use — the merge
	// refuses shards mined under anything else.
	Options ManifestOptions `json:"options"`
	// Inputs are the corpus files, absolute, in mining order.
	Inputs []string `json:"inputs"`
	// TotalTrees is the corpus size the planner counted; partitions
	// must tile [0, TotalTrees) exactly.
	TotalTrees int `json:"total_trees"`
	// Master is the merged output shard, relative to the manifest's
	// directory.
	Master string `json:"master"`
	// Partitions is the partition table, in range order.
	Partitions []Partition `json:"partitions"`

	// dir is the directory the manifest was loaded from (or will be
	// saved under), the base for relative shard paths.
	dir string
}

// NewManifest plans an even split of totalTrees trees across at most
// parts partitions (clamped so no partition is empty; a corpus smaller
// than the partition count gets one tree per partition). Inputs must
// already be absolute.
func NewManifest(inputs []string, totalTrees, parts int, opts core.ForestOptions) (*Manifest, error) {
	if parts < 1 {
		return nil, fmt.Errorf("store: manifest: partition count must be positive, got %d", parts)
	}
	if totalTrees < 1 {
		return nil, fmt.Errorf("store: manifest: corpus has no trees to partition")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("store: manifest: no input files")
	}
	for _, in := range inputs {
		if !filepath.IsAbs(in) {
			return nil, fmt.Errorf("store: manifest: input %q is not absolute", in)
		}
	}
	if parts > totalTrees {
		parts = totalTrees
	}
	m := &Manifest{
		Format:     ManifestFormat,
		Version:    ManifestVersion,
		Options:    manifestOptions(opts),
		Inputs:     append([]string(nil), inputs...),
		TotalTrees: totalTrees,
		Master:     "master.shard",
	}
	// Spread the remainder over the leading partitions so sizes differ
	// by at most one tree.
	per, rem := totalTrees/parts, totalTrees%parts
	skip := 0
	for i := 0; i < parts; i++ {
		n := per
		if i < rem {
			n++
		}
		m.Partitions = append(m.Partitions, Partition{
			Index: i,
			Skip:  skip,
			Trees: n,
			Shard: fmt.Sprintf("worker-%03d.shard", i),
		})
		skip += n
	}
	return m, nil
}

// validate checks the structural invariants every manifest consumer
// relies on: format tag, version, options in range, and a partition
// table that tiles [0, TotalTrees) contiguously.
func (m *Manifest) validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("store: manifest: format %q, want %q", m.Format, ManifestFormat)
	}
	if m.Version != ManifestVersion {
		return fmt.Errorf("store: manifest: version %d unsupported (have %d)", m.Version, ManifestVersion)
	}
	if m.Options.MaxDistHalves < 0 {
		return fmt.Errorf("store: manifest: negative maxdist")
	}
	if len(m.Inputs) == 0 {
		return fmt.Errorf("store: manifest: no inputs")
	}
	if m.Master == "" {
		return fmt.Errorf("store: manifest: no master shard name")
	}
	if len(m.Partitions) == 0 {
		return fmt.Errorf("store: manifest: no partitions")
	}
	skip := 0
	for i, p := range m.Partitions {
		if p.Index != i {
			return fmt.Errorf("store: manifest: partition %d has index %d", i, p.Index)
		}
		if p.Skip != skip {
			return fmt.Errorf("store: manifest: partition %d starts at tree %d, want %d (ranges must be contiguous)", i, p.Skip, skip)
		}
		if p.Trees < 1 {
			return fmt.Errorf("store: manifest: partition %d is empty", i)
		}
		if p.Shard == "" {
			return fmt.Errorf("store: manifest: partition %d has no shard name", i)
		}
		skip += p.Trees
	}
	if skip != m.TotalTrees {
		return fmt.Errorf("store: manifest: partitions cover %d trees, corpus has %d", skip, m.TotalTrees)
	}
	return nil
}

// Describes reports whether the manifest plans exactly the job given
// by inputs (absolute corpus paths, in order) and opts — the check a
// resuming coordinator makes before reusing a work directory's plan,
// so a stale plan for a different corpus or different mining options
// can never silently shape a resumed run.
func (m *Manifest) Describes(inputs []string, opts core.ForestOptions) error {
	if len(inputs) != len(m.Inputs) {
		return fmt.Errorf("store: manifest plans %d input files, job has %d", len(m.Inputs), len(inputs))
	}
	for i, in := range inputs {
		if m.Inputs[i] != in {
			return fmt.Errorf("store: manifest input %d is %s, job names %s", i, m.Inputs[i], in)
		}
	}
	if m.Options != manifestOptions(opts) {
		return fmt.Errorf("store: manifest was planned under different mining options")
	}
	return nil
}

// Save atomically writes the manifest to path and remembers path's
// directory as the base for relative shard names.
func (m *Manifest) Save(path string) error {
	if err := m.validate(); err != nil {
		return err
	}
	m.dir = filepath.Dir(path)
	return AtomicWrite(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest reads and validates a manifest, remembering its
// directory as the base for relative shard names.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("store: manifest %s: %w", path, err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	m.dir = filepath.Dir(path)
	return m, nil
}

// ShardPath resolves partition i's shard file against the manifest's
// directory.
func (m *Manifest) ShardPath(i int) string {
	return filepath.Join(m.dir, m.Partitions[i].Shard)
}

// MasterPath resolves the master shard file against the manifest's
// directory.
func (m *Manifest) MasterPath() string {
	return filepath.Join(m.dir, m.Master)
}
