package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleJournal() *Journal {
	return &Journal{
		Manifest:      "/work/plan.json",
		UpdatedUnixMs: 1723100000000,
		Partitions: []PartitionStatus{
			{Index: 0, State: "done", Attempts: []Attempt{
				{Seq: 0, StartUnixMs: 1, DurationMs: 40, Outcome: AttemptError, Error: "exit status 1"},
				{Seq: 1, StartUnixMs: 60, DurationMs: 35, Outcome: AttemptOK},
			}},
			{Index: 1, State: "done", SkippedValidShard: true},
			{Index: 2, State: "quarantined", Attempts: []Attempt{
				{Seq: 0, StartUnixMs: 2, DurationMs: 10, Outcome: AttemptTimeout, Error: "context deadline exceeded"},
			}},
		},
	}
}

// TestJournalSaveLoadRoundTrip: a saved journal reloads equal, with the
// format tag and version stamped by Save.
func TestJournalSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coordinator.json")
	j := sampleJournal()
	if err := j.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != JournalFormat || got.Version != JournalVersion {
		t.Fatalf("loaded format/version = %q/%d", got.Format, got.Version)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, j)
	}
}

// TestJournalLoadRejectsBadFiles: wrong format tag, wrong version, and
// out-of-order partition indexes all refuse to load.
func TestJournalLoadRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coordinator.json")
	if err := sampleJournal().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ name, old, new string }{
		{"format", JournalFormat, "not-a-journal"},
		{"version", `"version": 1`, `"version": 99`},
		{"index", `"index": 2`, `"index": 7`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			broken := strings.Replace(string(data), c.old, c.new, 1)
			if broken == string(data) {
				t.Fatalf("fixture does not contain %q", c.old)
			}
			bad := filepath.Join(dir, c.name+".json")
			if err := os.WriteFile(bad, []byte(broken), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadJournal(bad); err == nil {
				t.Fatal("corrupt journal loaded")
			}
		})
	}
}
