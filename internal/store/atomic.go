package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"treemine/internal/faults"
)

// AtomicWrite durably replaces the file at path with whatever write
// produces: the payload goes to a temp file in the same directory, is
// fsynced before close (so the data — not just the rename — is on disk),
// renamed over path, and the parent directory is fsynced so the rename
// itself survives a crash. At every point in that sequence the previous
// contents of path remain intact: a kill between the temp write and the
// rename leaves at worst a stray .tmp file next to a valid checkpoint —
// proven by the crash-window fault-injection tests in atomic_test.go.
//
// All store saves (shard checkpoints, index files) should go through
// this helper rather than hand-rolling create/rename.
func AtomicWrite(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	discard := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return discard(err)
	}
	if ferr := faults.Hit(faults.AtomicTorn); ferr != nil {
		// Injected crash mid-flush: tear the temp file in half and
		// abandon it without renaming, as an interrupted page writeback
		// would. path is untouched.
		if st, serr := f.Stat(); serr == nil {
			f.Truncate(st.Size() / 2)
		}
		f.Close()
		return fmt.Errorf("store: atomic write %s: %w", path, ferr)
	}
	if ferr := faults.Hit(faults.AtomicSync); ferr != nil {
		return discard(fmt.Errorf("store: atomic write %s: %w", path, ferr))
	}
	if err := f.Sync(); err != nil {
		return discard(fmt.Errorf("store: atomic write %s: sync: %w", path, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	if ferr := faults.Hit(faults.AtomicCrash); ferr != nil {
		// Injected kill between the durable temp write and the rename:
		// the temp file is left behind, path is untouched.
		return fmt.Errorf("store: atomic write %s: %w", path, ferr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: atomic write %s: %w", path, err)
	}
	// Fsync the parent directory so the rename is durable. Some
	// filesystems reject directory fsync; that leaves the write exactly
	// as durable as a plain rename, so it is not reported as a failure.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
