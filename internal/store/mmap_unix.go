//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: the kernel page
// cache backs the data, so many processes serving the same index share
// one physical copy and cold pages fault in on demand instead of being
// read up front.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
