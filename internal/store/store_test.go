package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"treemine/internal/core"
	"treemine/internal/tree"
	"treemine/internal/treegen"
)

func fixtureForest(seed int64, n int) []*tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	taxa := treegen.Alphabet(10)
	out := make([]*tree.Tree, n)
	for i := range out {
		out[i] = treegen.Yule(rng, taxa)
	}
	return out
}

func TestBuildAndQuery(t *testing.T) {
	forest := fixtureForest(1, 20)
	opts := core.DefaultOptions()
	ix, err := Build(forest, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumTrees() != 20 {
		t.Fatalf("NumTrees = %d", ix.NumTrees())
	}
	if ix.Entries[0].Name != "tree_1" {
		t.Fatalf("default name = %q", ix.Entries[0].Name)
	}
	// Index queries must agree with direct mining.
	fp := core.MineForest(forest, core.ForestOptions{Options: opts, MinSup: 2})
	got := ix.Frequent(2)
	if !reflect.DeepEqual(got, fp) {
		t.Fatalf("Frequent = %d pairs, MineForest = %d", len(got), len(fp))
	}
	for _, p := range fp[:min(5, len(fp))] {
		if s := ix.Support(p.Key.A, p.Key.B, p.Key.D); s != p.Support {
			t.Fatalf("Support(%v) = %d, want %d", p.Key, s, p.Support)
		}
		trees := ix.TreesWith(p.Key)
		if len(trees) != p.Support {
			t.Fatalf("TreesWith(%v) = %d trees, want %d", p.Key, len(trees), p.Support)
		}
	}
}

func TestSupportWildcard(t *testing.T) {
	forest := fixtureForest(2, 10)
	opts := core.DefaultOptions()
	ix, err := Build(forest, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp := ix.Frequent(1)
	if len(fp) == 0 {
		t.Fatal("no pairs")
	}
	k := fp[0].Key
	wild := ix.Support(k.A, k.B, core.DistWild)
	exact := ix.Support(k.A, k.B, k.D)
	if wild < exact {
		t.Fatalf("wildcard support %d < exact %d", wild, exact)
	}
	if want := core.Support(forest, k.A, k.B, core.DistWild, opts); wild != want {
		t.Fatalf("wildcard support %d, direct %d", wild, want)
	}
}

func TestNamesValidation(t *testing.T) {
	forest := fixtureForest(3, 3)
	if _, err := Build(forest, []string{"only one"}, core.DefaultOptions()); err == nil {
		t.Fatal("mismatched names accepted")
	}
	ix, err := Build(forest, []string{"a", "b", "c"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Entries[2].Name != "c" {
		t.Fatalf("name = %q", ix.Entries[2].Name)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	forest := fixtureForest(4, 15)
	opts := core.DefaultOptions()
	ix, err := Build(forest, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Options != ix.Options {
		t.Fatalf("options = %+v, want %+v", back.Options, ix.Options)
	}
	if !reflect.DeepEqual(back.Frequent(2), ix.Frequent(2)) {
		t.Fatal("frequent pairs differ after round trip")
	}
	if !reflect.DeepEqual(back.Entries, ix.Entries) {
		t.Fatal("entries differ after round trip")
	}
}

func TestLoadV1Fixture(t *testing.T) {
	// Author a version-1 file the way the old Save did — magicV1 header
	// followed by a gob of the string-keyed payload — and check the
	// current Load reads it into an index equivalent to a fresh Build.
	forest := fixtureForest(7, 12)
	opts := core.DefaultOptions()
	ix, err := Build(forest, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(magicV1)
	if err := gob.NewEncoder(&buf).Encode(savedIndexV1{Options: ix.Options, Entries: ix.Entries}); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load of v1 fixture: %v", err)
	}
	if back.Options != ix.Options {
		t.Fatalf("options = %+v, want %+v", back.Options, ix.Options)
	}
	if !reflect.DeepEqual(back.Entries, ix.Entries) {
		t.Fatal("entries differ after v1 read")
	}
	if !reflect.DeepEqual(back.Frequent(2), ix.Frequent(2)) {
		t.Fatal("frequent pairs differ after v1 read")
	}
}

func TestLoadV2RejectsBadSymbolID(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magicV2)
	payload := savedIndexV2{
		Options: core.DefaultOptions(),
		Labels:  []string{"a"},
		Trees: []savedTreeV2{{
			Name:  "t",
			Nodes: 2,
			Items: []savedItem{{A: 0, B: 7, D: core.D(0), N: 1}}, // B out of range
		}},
	}
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range symbol err = %v", err)
	}
}

func TestSaveSharesLabelsAcrossTrees(t *testing.T) {
	// The v2 payload stores each label once for the whole file; with many
	// trees over one small taxon set it must be smaller than a v1 payload
	// of the same index.
	forest := fixtureForest(8, 40)
	ix, err := Build(forest, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := ix.Save(&v2); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	v1.WriteString(magicV1)
	if err := gob.NewEncoder(&v1).Encode(savedIndexV1{Options: ix.Options, Entries: ix.Entries}); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 file (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}

func TestConcurrentQueries(t *testing.T) {
	// Queries after Load must be safe from multiple goroutines; run with
	// -race to catch regressions in the lazy support table.
	forest := fixtureForest(6, 10)
	ix, err := Build(forest, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- true }()
			for i := 0; i < 50; i++ {
				loaded.Frequent(2)
				loaded.Support("x", "y", core.DistWild)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Load(bytes.NewReader([]byte("NOTANINDEX00"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic err = %v", err)
	}
	// Valid magic, garbage payload.
	if _, err := Load(bytes.NewReader(append([]byte(magicV2), 0xde, 0xad))); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt err = %v", err)
	}
	// Truncated valid file.
	forest := fixtureForest(5, 5)
	ix, err := Build(forest, nil, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated err = %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
