package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"treemine/internal/core"
)

// magicV3 identifies a serialized support shard — the checkpoint format
// of the streaming mining pipeline. Unlike v1/v2 index files (per-tree
// item sets for querying), a v3 file is a partial aggregate: the label
// table and packed support counts of a core.SupportShard, plus the
// mining options and how many trees have been folded in. Shards saved
// from different machines or runs can be reloaded and merged.
const magicV3 = "TREEMINEIDX3"

// savedShardV3 is the version-3 gob payload: shard header (options +
// tree count), the shard-local label table, and the packed counts.
type savedShardV3 struct {
	Opts   core.ForestOptions
	Trees  int
	Labels []string
	Items  []core.ShardItem
}

// SaveShard writes sh as a v3 checkpoint: magic header, then the gob
// payload of its snapshot. The shard stays usable — Snapshot does not
// consume it — so a streaming run can checkpoint and keep mining.
func SaveShard(w io.Writer, sh *core.SupportShard) error {
	opts, trees, labels, items := sh.Snapshot()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicV3); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	saved := savedShardV3{Opts: opts, Trees: trees, Labels: labels, Items: items}
	if err := gob.NewEncoder(bw).Encode(saved); err != nil {
		return fmt.Errorf("store: encode shard: %w", err)
	}
	return bw.Flush()
}

// LoadShard reads a v3 checkpoint written by SaveShard and rebuilds the
// shard, validating the payload (symbol ranges, count positivity,
// distance bounds) so corrupt or adversarial files error out instead of
// poisoning a resumed run. ErrBadMagic and ErrCorrupt wrap the failure
// modes like Load's.
func LoadShard(r io.Reader) (*core.SupportShard, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicV3))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	if string(head) != magicV3 {
		return nil, ErrBadMagic
	}
	var saved savedShardV3
	if err := gob.NewDecoder(br).Decode(&saved); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	sh, err := core.RestoreShard(saved.Opts, saved.Trees, saved.Labels, saved.Items)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return sh, nil
}
